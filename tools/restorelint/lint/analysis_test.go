package lint

import "testing"

func TestParseIgnore(t *testing.T) {
	cases := []struct {
		text string
		ok   bool
		want []string // nil = all analyzers
	}{
		{"// plain comment", false, nil},
		{"//restorelint:ignore", true, nil},
		{"//restorelint:ignore determinism", true, []string{"determinism"}},
		{"//restorelint:ignore statemut bitwidth -- justified", true, []string{"statemut", "bitwidth"}},
		{"//restorelint:ignore stateregister — em-dash justification", true, []string{"stateregister"}},
		{"//statecheck:ignore — legacy spelling", true, []string{"stateregister"}},
	}
	for _, tc := range cases {
		dir, ok := parseIgnore(tc.text)
		if ok != tc.ok {
			t.Errorf("parseIgnore(%q) ok = %v, want %v", tc.text, ok, tc.ok)
			continue
		}
		if !ok {
			continue
		}
		if tc.want == nil {
			if dir.analyzers != nil {
				t.Errorf("parseIgnore(%q) = %v, want all-analyzer directive", tc.text, dir.analyzers)
			}
			continue
		}
		if len(dir.analyzers) != len(tc.want) {
			t.Errorf("parseIgnore(%q) = %v, want %v", tc.text, dir.analyzers, tc.want)
			continue
		}
		for _, name := range tc.want {
			if !dir.analyzers[name] {
				t.Errorf("parseIgnore(%q) missing analyzer %q", tc.text, name)
			}
		}
	}
}

func TestSuppresses(t *testing.T) {
	idx := ignoreIndex{
		"f.go": {
			10: ignoreDirective{},
			20: ignoreDirective{analyzers: map[string]bool{"statemut": true}},
		},
	}
	diag := func(line int, analyzer string) Diagnostic {
		d := Diagnostic{Analyzer: analyzer}
		d.Pos.Filename = "f.go"
		d.Pos.Line = line
		return d
	}
	if !idx.suppresses(diag(10, "bitwidth")) {
		t.Error("bare directive must suppress every analyzer on its line")
	}
	if !idx.suppresses(diag(11, "bitwidth")) {
		t.Error("directive must suppress the following line")
	}
	if idx.suppresses(diag(12, "bitwidth")) {
		t.Error("directive must not reach two lines down")
	}
	if !idx.suppresses(diag(20, "statemut")) {
		t.Error("named directive must suppress its analyzer")
	}
	if idx.suppresses(diag(20, "determinism")) {
		t.Error("named directive must not suppress other analyzers")
	}
}
