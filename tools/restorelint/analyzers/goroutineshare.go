package analyzers

import (
	"go/types"

	"repro/tools/restorelint/lint"
)

// GoroutineShare gates how the campaign engine's goroutines touch shared
// state.
//
// The parallel engine's determinism contract rests on one idiom: every
// result a worker produces lands in a pre-assigned slot of a shared slice
// (`trials[slot] = trial`), indexed by a per-task value, so no two workers
// ever write the same word and no ordering matters. Everything else a
// spawned closure does to shared mutable state is a race in waiting — and a
// race in a fault-injection campaign doesn't just crash, it silently breaks
// the byte-identical-at-any-worker-count guarantee the resumable/sharded
// machinery depends on.
//
// Using the dataflow engine's reaches-goroutine capture analysis, this
// analyzer flags a closure spawned with `go` or handed to a worker pool
// (submit/Submit/Go/Spawn) when it:
//
//   - captures a package-level variable that some function in the package
//     mutates (even a read races with those writers), or
//   - writes a captured variable declared outside its task's loop
//     iteration — direct assignment, field assignment, append, map write,
//     or a slice write at an index that is not itself a per-task value.
//
// Captures of synchronization-safe types (channels, sync.* / sync/atomic
// types) are exempt, as are closures that visibly lock or use atomics.
var GoroutineShare = &lint.Analyzer{
	Name: "goroutineshare",
	Doc:  "goroutines must not share unsynchronized mutable state outside the indexed-slot idiom",
	Run:  runGoroutineShare,
}

func runGoroutineShare(pass *lint.Pass) {
	df := lint.NewDataflow(pass.Pkg)
	for _, fnSum := range df.PackageSummaries(pass.Pkg) {
		for _, cl := range fnSum.Closures {
			if cl.UsesSync {
				continue
			}
			spawn := "go statement"
			if cl.Handoff != "" {
				spawn = "worker-pool handoff (" + cl.Handoff + ")"
			}
			for _, cap := range cl.Captures {
				checkCapture(pass, df, spawn, cap)
			}
		}
	}
}

func checkCapture(pass *lint.Pass, df *lint.Dataflow, spawn string, cap lint.Capture) {
	if syncSafeType(cap.Obj.Type()) {
		return
	}
	if cap.PkgLevel && df.MutatedPkgVar(cap.Obj) {
		pass.Reportf(cap.FirstUse,
			"goroutine (%s) captures package-level variable %q, which this package mutates, without synchronization",
			spawn, cap.Obj.Name())
		return
	}
	if cap.PerIteration {
		// Each spawned task sees its own instance (declared inside the
		// spawn loop): writes are task-local.
		return
	}
	for _, w := range cap.Writes {
		switch w.Kind {
		case lint.WriteIndex:
			if w.IndexPerTask {
				continue // the sanctioned pre-assigned-slot idiom
			}
			pass.Reportf(w.Pos,
				"goroutine (%s) writes shared slice %q at an index that is not a per-task value; use the pre-assigned indexed-slot idiom or a sync primitive",
				spawn, cap.Obj.Name())
		case lint.WriteMap:
			pass.Reportf(w.Pos,
				"goroutine (%s) writes shared map %q without synchronization; map writes race even on distinct keys",
				spawn, cap.Obj.Name())
		case lint.WriteAppend:
			pass.Reportf(w.Pos,
				"goroutine (%s) appends to shared slice %q; append moves the backing array and races with every other reader",
				spawn, cap.Obj.Name())
		default: // WriteAssign, WriteField
			pass.Reportf(w.Pos,
				"goroutine (%s) writes captured variable %q declared outside the task loop without synchronization",
				spawn, cap.Obj.Name())
		}
	}
}

// syncSafeType reports whether a captured value of this type synchronizes by
// construction: channels, and the sync / sync/atomic types (pointers
// included — capturing a *sync.WaitGroup is the normal form).
func syncSafeType(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return false
	}
	return pkg.Path() == "sync" || pkg.Path() == "sync/atomic"
}
