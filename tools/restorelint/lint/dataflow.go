// Intra-procedural dataflow with module-local call-graph summaries.
//
// The per-file AST walks that power the original analyzers cannot prove the
// properties the campaign engine actually depends on — "the trial inner loop
// does not allocate", "no goroutine shares unsynchronized mutable state" —
// because those are properties of whole call trees and of where values flow,
// not of single expressions. This file adds the missing layer: for every
// function of a loaded package it computes
//
//   - allocation/escape facts: make/new, escaping composite literals,
//     append growth, closure creation, interface boxing, string<->[]byte
//     conversions, and map iteration;
//   - use-def chains: the definition sites that may reach each use of a
//     local or package-level variable;
//   - a call summary: every static callee (module-local functions resolve
//     to their own summaries; interface calls devirtualize against every
//     implementation in the loaded package set; calls through func-typed
//     values are recorded as dynamic);
//   - a "reaches goroutine" capture analysis: the variables each go-closure
//     or worker-pool handoff closure captures, whether they are
//     per-iteration or shared, and how the closure writes them.
//
// Soundness stance (documented in DESIGN.md): the engine is conservative
// about allocation — an unresolvable call is assumed to allocate unless it is
// on the small stdlib allowlist — and optimistic about calls through
// func-typed fields (hooks), which hot-path callers install knowingly.
// Everything is stdlib-only and reuses the source-level loader, so summaries
// share one FileSet and one type-identity universe.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// AllocKind classifies one static allocation fact.
type AllocKind string

// Allocation fact kinds.
const (
	AllocMake         AllocKind = "make"
	AllocNew          AllocKind = "new"
	AllocCompositeLit AllocKind = "composite-literal" // escaping (&T{...}) or reference-kind ([]T{...}, map literals)
	AllocAppend       AllocKind = "append-growth"     // append may grow its backing array
	AllocClosure      AllocKind = "closure"           // func literal (captures force heap allocation)
	AllocIfaceBox     AllocKind = "interface-boxing"  // concrete value converted into an interface
	AllocStringConv   AllocKind = "string-conversion" // string <-> []byte/[]rune copies
	AllocCallUnknown  AllocKind = "call-unresolved"   // callee outside the summary universe; assumed allocating
	AllocCallStdlib   AllocKind = "call-stdlib"       // stdlib call off the allowlist; assumed allocating
)

// AllocSite is one potential allocation inside a single function.
type AllocSite struct {
	Pos        token.Pos
	Kind       AllocKind
	Desc       string
	Sanctioned bool // covered by a //restorelint:allowalloc directive
}

// CallKind distinguishes how a call site resolves.
type CallKind uint8

// Call site kinds.
const (
	// CallStatic resolves to a known *types.Func (possibly in another
	// loaded package).
	CallStatic CallKind = iota + 1
	// CallInterface is a method call through an interface value; the
	// engine devirtualizes it against every loaded implementation.
	CallInterface
	// CallDynamic goes through a func-typed value (a hook field, a
	// callback parameter); the target is unknowable module-locally.
	CallDynamic
)

// CallSite is one call inside a function body.
type CallSite struct {
	Pos    token.Pos
	Kind   CallKind
	Callee *types.Func // static callee, or the interface method object
	InGo   bool        // the call is the operand of a go statement
	// Sanctioned marks a call edge covered by //restorelint:allowalloc:
	// nothing reached through it is reported. This is how a caller
	// sanctions an allocation it cannot annotate at the site (a
	// legitimately-allocating callee in another package, reached only on a
	// non-steady-state path).
	Sanctioned bool
}

// CaptureWriteKind classifies how a goroutine closure writes a captured
// variable.
type CaptureWriteKind string

// Capture write kinds. Index writes are listed separately because writing
// disjoint pre-assigned slots of a shared slice is the campaign engine's
// sanctioned idiom.
const (
	WriteAssign CaptureWriteKind = "assign"       // x = v, x += v
	WriteField  CaptureWriteKind = "field-assign" // x.f = v
	WriteIndex  CaptureWriteKind = "index-assign" // x[i] = v
	WriteAppend CaptureWriteKind = "append"       // x = append(x, ...)
	WriteMap    CaptureWriteKind = "map-assign"   // x[k] = v where x is a map
)

// CaptureWrite is one write to a captured variable inside a closure.
type CaptureWrite struct {
	Pos  token.Pos
	Kind CaptureWriteKind
	// IndexPerTask is set for WriteIndex when the index expression is
	// itself a per-iteration value (the pre-assigned-slot idiom).
	IndexPerTask bool
}

// Capture is one variable a spawned closure captures from its environment.
type Capture struct {
	Obj      *types.Var
	FirstUse token.Pos
	// PkgLevel marks package-level variables; DeclPos locates the
	// declaration otherwise.
	PkgLevel bool
	// PerIteration is set when the variable is declared inside the
	// innermost loop that also contains the spawn site: each spawned task
	// then sees its own instance (Go 1.22 loop-variable semantics).
	PerIteration bool
	Writes       []CaptureWrite
}

// ClosureInfo describes one closure that escapes to another goroutine:
// either the operand of a go statement or a handoff into a worker pool.
type ClosureInfo struct {
	Lit *ast.FuncLit
	// SpawnPos is the go statement or the handoff call.
	SpawnPos token.Pos
	// Handoff names the pool method the closure was passed to ("submit"),
	// empty for a plain go statement.
	Handoff string
	// UsesSync is set when the closure body itself takes a lock or uses
	// sync/atomic, i.e. it visibly synchronizes its shared accesses.
	UsesSync bool
	Captures []Capture
}

// NamedCall is one method call on a tracked receiver variable, used by
// analyzers that reason about operation ordering (e.g. Sync before Rename).
type NamedCall struct {
	Name string
	Pos  token.Pos
}

// FuncSummary is the engine's per-function fact bundle.
type FuncSummary struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package

	Allocs    []AllocSite
	Calls     []CallSite
	Closures  []ClosureInfo
	MapRanges []token.Pos // positions of range statements over maps

	// Defs and Uses index the function's dataflow by object: definition
	// sites (parameters, :=, =, range and type-switch bindings) and use
	// sites. Package-level variables appear too when the body touches them.
	Defs map[*types.Var][]token.Pos
	Uses map[*types.Var][]token.Pos

	// RecvCalls records method calls keyed by receiver variable (locals
	// and struct fields): x.Sync() lands under x's object.
	RecvCalls map[*types.Var][]NamedCall

	// Hotpath is set when the declaration carries //restorelint:hotpath.
	Hotpath bool
	// SanctionedFunc is set when the whole function carries
	// //restorelint:allowalloc (every alloc site inside is sanctioned).
	SanctionedFunc bool
}

// ReachingDefs returns the definition sites of v that may reach a use at
// pos: every def positioned before the use, or any def when the use sits in
// a loop body that also contains a def after it (back-edge). The chains are
// flow-insensitive beyond position ordering — kills are not computed — which
// over-approximates reachability; analyzers built on this must treat the
// result as "may reach".
func (s *FuncSummary) ReachingDefs(v *types.Var, pos token.Pos) []token.Pos {
	var out []token.Pos
	for _, d := range s.Defs[v] {
		if d <= pos {
			out = append(out, d)
		}
	}
	if len(out) == 0 {
		// All defs are positionally later: only possible through a loop
		// back-edge (or a bug in the using code); return them all.
		out = append(out, s.Defs[v]...)
	}
	return out
}

// Dataflow owns the summaries for one loaded package universe.
type Dataflow struct {
	root *Package
	pkgs []*Package

	summaries map[*types.Func]*FuncSummary

	// mutatedPkgVars records every package-level variable that some
	// function in its own package assigns to (beyond initialization).
	mutatedPkgVars map[*types.Var][]token.Pos

	// implCache memoizes devirtualization: interface method -> candidate
	// concrete methods across the loaded universe.
	implCache map[*types.Func][]*types.Func

	transitive map[*types.Func][]AllocFinding
	inProgress map[*types.Func]bool
}

// AllocFinding is one allocation reachable from a root function, with the
// call chain that reaches it.
type AllocFinding struct {
	Site  AllocSite
	In    *types.Func   // function containing the site
	Chain []*types.Func // root ... In (inclusive)
}

// NewDataflow builds summaries for the pass package and every module-local
// package its loader has checked. Building is a single pass over each
// function body; queries (TransitiveAllocs, devirtualization) memoize.
func NewDataflow(root *Package) *Dataflow {
	d := &Dataflow{
		root:           root,
		pkgs:           root.LoadedPackages(),
		summaries:      make(map[*types.Func]*FuncSummary),
		mutatedPkgVars: make(map[*types.Var][]token.Pos),
		implCache:      make(map[*types.Func][]*types.Func),
		transitive:     make(map[*types.Func][]AllocFinding),
		inProgress:     make(map[*types.Func]bool),
	}
	for _, pkg := range d.pkgs {
		d.summarizePackage(pkg)
	}
	return d
}

// Summary returns fn's summary, or nil when fn is outside the loaded
// universe (stdlib, unexported in an unloaded package).
func (d *Dataflow) Summary(fn *types.Func) *FuncSummary { return d.summaries[fn] }

// HotPaths returns the summaries of pkg's //restorelint:hotpath functions in
// declaration order.
func (d *Dataflow) HotPaths(pkg *Package) []*FuncSummary {
	var out []*FuncSummary
	for _, s := range d.summaries {
		if s.Hotpath && s.Pkg == pkg {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Decl.Pos() < out[j].Decl.Pos() })
	return out
}

// PackageSummaries returns every summary belonging to pkg in declaration
// order, for analyzers that sweep a whole package deterministically.
func (d *Dataflow) PackageSummaries(pkg *Package) []*FuncSummary {
	var out []*FuncSummary
	for _, s := range d.summaries {
		if s.Pkg == pkg {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Decl.Pos() < out[j].Decl.Pos() })
	return out
}

// MutatedPkgVar reports whether some function in v's own package assigns to
// the package-level variable v.
func (d *Dataflow) MutatedPkgVar(v *types.Var) bool {
	return len(d.mutatedPkgVars[v]) > 0
}

// ---------------------------------------------------------------------------
// Summary construction

// directiveIndex locates //restorelint:hotpath and //restorelint:allowalloc
// comments by file and line.
type directiveIndex struct {
	hotpath    map[string]map[int]bool
	allowalloc map[string]map[int]string // line -> justification ("" = none given)
}

func buildDirectiveIndex(pkg *Package) *directiveIndex {
	idx := &directiveIndex{
		hotpath:    make(map[string]map[int]bool),
		allowalloc: make(map[string]map[int]string),
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := pkg.Fset.Position(c.Pos())
				if strings.Contains(c.Text, "restorelint:hotpath") {
					if idx.hotpath[pos.Filename] == nil {
						idx.hotpath[pos.Filename] = make(map[int]bool)
					}
					idx.hotpath[pos.Filename][pos.Line] = true
				}
				if i := strings.Index(c.Text, "restorelint:allowalloc"); i >= 0 {
					rest := c.Text[i+len("restorelint:allowalloc"):]
					just := ""
					if j := strings.Index(rest, "--"); j >= 0 {
						just = strings.TrimSpace(rest[j+2:])
					} else if j := strings.Index(rest, "—"); j >= 0 {
						just = strings.TrimSpace(rest[j+len("—"):])
					}
					if idx.allowalloc[pos.Filename] == nil {
						idx.allowalloc[pos.Filename] = make(map[int]string)
					}
					idx.allowalloc[pos.Filename][pos.Line] = just
				}
			}
		}
	}
	return idx
}

// onDecl reports whether a directive in the index covers the declaration:
// any line of its doc comment, the declaration line itself, or the line
// directly above it.
func (idx *directiveIndex) onDecl(byLine map[string]map[int]bool, pkg *Package, fd *ast.FuncDecl) bool {
	lines := byLine[pkg.Fset.Position(fd.Pos()).Filename]
	if lines == nil {
		return false
	}
	declLine := pkg.Fset.Position(fd.Pos()).Line
	if lines[declLine] || lines[declLine-1] {
		return true
	}
	if fd.Doc != nil {
		from := pkg.Fset.Position(fd.Doc.Pos()).Line
		for l := from; l < declLine; l++ {
			if lines[l] {
				return true
			}
		}
	}
	return false
}

// allowallocLines converts the justification map to a presence map for
// onDecl reuse.
func (idx *directiveIndex) allowallocPresence() map[string]map[int]bool {
	out := make(map[string]map[int]bool, len(idx.allowalloc))
	for file, lines := range idx.allowalloc {
		m := make(map[int]bool, len(lines))
		for l := range lines {
			m[l] = true
		}
		out[file] = m
	}
	return out
}

// siteSanctioned reports whether an allowalloc directive sits on the site's
// line or the line above.
func (idx *directiveIndex) siteSanctioned(pkg *Package, pos token.Pos) bool {
	p := pkg.Fset.Position(pos)
	lines := idx.allowalloc[p.Filename]
	if lines == nil {
		return false
	}
	_, same := lines[p.Line]
	_, above := lines[p.Line-1]
	return same || above
}

// AllowallocDirective is one //restorelint:allowalloc comment in a package.
type AllowallocDirective struct {
	Pos           token.Pos
	Justification string // text after "--"; empty when none was given
}

// AllowallocDirectives returns every allowalloc directive in pkg in source
// order, for analyzers that audit them (a sanction without a justification
// is itself a finding).
func AllowallocDirectives(pkg *Package) []AllowallocDirective {
	idx := buildDirectiveIndex(pkg)
	var out []AllowallocDirective
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.Contains(c.Text, "restorelint:allowalloc") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				out = append(out, AllowallocDirective{
					Pos:           c.Pos(),
					Justification: idx.allowalloc[pos.Filename][pos.Line],
				})
			}
		}
	}
	return out
}

func (d *Dataflow) summarizePackage(pkg *Package) {
	dirs := buildDirectiveIndex(pkg)
	allowPresence := dirs.allowallocPresence()
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			s := &FuncSummary{
				Fn:             obj,
				Decl:           fd,
				Pkg:            pkg,
				Defs:           make(map[*types.Var][]token.Pos),
				Uses:           make(map[*types.Var][]token.Pos),
				RecvCalls:      make(map[*types.Var][]NamedCall),
				Hotpath:        dirs.onDecl(dirs.hotpath, pkg, fd),
				SanctionedFunc: dirs.onDecl(allowPresence, pkg, fd),
			}
			d.summaries[obj] = s
			d.walkBody(s, dirs)
			for i := range s.Calls {
				s.Calls[i].Sanctioned = s.SanctionedFunc ||
					dirs.siteSanctioned(pkg, s.Calls[i].Pos)
			}
		}
	}
}

// walkBody fills one function's summary.
func (d *Dataflow) walkBody(s *FuncSummary, dirs *directiveIndex) {
	pkg := s.Pkg
	info := pkg.Info
	fd := s.Decl

	// Parameters, results, and receiver are definitions at the signature.
	sig := s.Fn.Type().(*types.Signature)
	for _, tuple := range []*types.Tuple{sig.Params(), sig.Results()} {
		for i := 0; i < tuple.Len(); i++ {
			if v := tuple.At(i); v.Name() != "" {
				s.Defs[v] = append(s.Defs[v], fd.Pos())
			}
		}
	}
	if recv := sig.Recv(); recv != nil && recv.Name() != "" {
		s.Defs[recv] = append(s.Defs[recv], fd.Pos())
	}

	addAlloc := func(pos token.Pos, kind AllocKind, desc string) {
		s.Allocs = append(s.Allocs, AllocSite{
			Pos:        pos,
			Kind:       kind,
			Desc:       desc,
			Sanctioned: s.SanctionedFunc || dirs.siteSanctioned(pkg, pos),
		})
	}

	var goCallPos map[*ast.CallExpr]bool // calls that are go-statement operands
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			if goCallPos == nil {
				goCallPos = make(map[*ast.CallExpr]bool)
			}
			goCallPos[n.Call] = true
			d.recordSpawn(s, n.Call, n.Pos(), "")

		case *ast.CallExpr:
			d.recordCall(s, n, goCallPos[n], addAlloc)
			d.recordHandoff(s, n)

		case *ast.FuncLit:
			addAlloc(n.Pos(), AllocClosure, "func literal allocates a closure")

		case *ast.CompositeLit:
			d.recordCompositeLit(s, n, addAlloc)

		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if cl, ok := unparen(n.X).(*ast.CompositeLit); ok {
					addAlloc(cl.Pos(), AllocCompositeLit,
						"address-taken composite literal escapes to the heap")
				}
			}

		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					s.MapRanges = append(s.MapRanges, n.Pos())
				}
			}
			d.recordRangeDefs(s, n)

		case *ast.AssignStmt:
			d.recordAssign(s, n, addAlloc)

		case *ast.IncDecStmt:
			if id, ok := unparen(n.X).(*ast.Ident); ok {
				if v, ok := info.Uses[id].(*types.Var); ok {
					s.Defs[v] = append(s.Defs[v], id.Pos())
					if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() && !v.IsField() {
						d.mutatedPkgVars[v] = append(d.mutatedPkgVars[v], id.Pos())
					}
				}
			}

		case *ast.ValueSpec:
			for _, name := range n.Names {
				if v, ok := info.Defs[name].(*types.Var); ok {
					s.Defs[v] = append(s.Defs[v], name.Pos())
				}
			}

		case *ast.Ident:
			if v, ok := info.Uses[n].(*types.Var); ok {
				s.Uses[v] = append(s.Uses[v], n.Pos())
			}
		}
		return true
	})
}

// recordCall classifies one call site, records interface boxing of
// arguments, and detects builtin allocators.
func (d *Dataflow) recordCall(s *FuncSummary, call *ast.CallExpr, inGo bool, addAlloc func(token.Pos, AllocKind, string)) {
	info := s.Pkg.Info

	// Builtins and conversions first.
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := info.Uses[fun].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				addAlloc(call.Pos(), AllocMake, "make allocates")
			case "new":
				addAlloc(call.Pos(), AllocNew, "new allocates")
			case "append":
				target := "slice"
				if id, ok := unparen(call.Args[0]).(*ast.Ident); ok {
					target = id.Name
				}
				addAlloc(call.Pos(), AllocAppend,
					fmt.Sprintf("append may grow %q's backing array", target))
			}
			return
		}
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		// Type conversion: string <-> []byte/[]rune copies allocate.
		if len(call.Args) == 1 {
			from, okFrom := info.Types[call.Args[0]]
			if okFrom && isStringBytesConv(tv.Type, from.Type) {
				addAlloc(call.Pos(), AllocStringConv,
					fmt.Sprintf("conversion %s -> %s copies its contents", from.Type, tv.Type))
			}
			// Conversion into an interface boxes.
			if _, isIface := tv.Type.Underlying().(*types.Interface); isIface && okFrom {
				if boxes(from.Type) {
					addAlloc(call.Pos(), AllocIfaceBox,
						fmt.Sprintf("conversion of %s into interface %s boxes", from.Type, tv.Type))
				}
			}
		}
		return
	}

	// Interface boxing at argument positions of ordinary calls.
	if sig, ok := calleeSignature(info, call); ok {
		d.recordArgBoxing(s, call, sig, addAlloc)
	}

	// Resolve the callee.
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			s.Calls = append(s.Calls, CallSite{Pos: call.Pos(), Kind: CallStatic, Callee: fn, InGo: inGo})
			return
		}
		// A func-typed variable.
		if _, ok := info.Uses[fun].(*types.Var); ok {
			s.Calls = append(s.Calls, CallSite{Pos: call.Pos(), Kind: CallDynamic, InGo: inGo})
			return
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			switch sel.Kind() {
			case types.MethodVal:
				fn := sel.Obj().(*types.Func)
				kind := CallStatic
				if _, isIface := sel.Recv().Underlying().(*types.Interface); isIface {
					kind = CallInterface
				}
				s.Calls = append(s.Calls, CallSite{Pos: call.Pos(), Kind: kind, Callee: fn, InGo: inGo})
				// x.M() on a tracked receiver variable.
				if v := fieldOrLocalVar(info, fun.X); v != nil {
					s.RecvCalls[v] = append(s.RecvCalls[v], NamedCall{Name: fun.Sel.Name, Pos: call.Pos()})
				}
				return
			case types.FieldVal:
				// Call through a func-typed field (a hook).
				s.Calls = append(s.Calls, CallSite{Pos: call.Pos(), Kind: CallDynamic, InGo: inGo})
				return
			}
		}
		// Package-qualified call: pkg.F(...).
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			s.Calls = append(s.Calls, CallSite{Pos: call.Pos(), Kind: CallStatic, Callee: fn, InGo: inGo})
			return
		}
	case *ast.FuncLit:
		// Immediately-invoked literal: the body is walked in place; the
		// closure alloc is already recorded by the FuncLit case.
		return
	}
	s.Calls = append(s.Calls, CallSite{Pos: call.Pos(), Kind: CallDynamic, InGo: inGo})
}

// recordArgBoxing flags concrete values passed into interface-typed
// parameters (including variadic ...interface{}).
func (d *Dataflow) recordArgBoxing(s *FuncSummary, call *ast.CallExpr, sig *types.Signature, addAlloc func(token.Pos, AllocKind, string)) {
	info := s.Pkg.Info
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			last := params.At(params.Len() - 1)
			if sl, ok := last.Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at, ok := info.Types[arg]
		if !ok || at.Type == nil || !boxes(at.Type) {
			continue
		}
		addAlloc(arg.Pos(), AllocIfaceBox,
			fmt.Sprintf("passing %s as interface parameter boxes", at.Type))
	}
}

// recordCompositeLit flags reference-kind literals (slices and maps always
// allocate backing storage). Value struct/array literals are not flagged
// here: they only allocate when they escape, which the &lit and boxing
// rules catch.
func (d *Dataflow) recordCompositeLit(s *FuncSummary, cl *ast.CompositeLit, addAlloc func(token.Pos, AllocKind, string)) {
	tv, ok := s.Pkg.Info.Types[cl]
	if !ok {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice:
		addAlloc(cl.Pos(), AllocCompositeLit, "slice literal allocates its backing array")
	case *types.Map:
		addAlloc(cl.Pos(), AllocCompositeLit, "map literal allocates")
	}
}

// recordAssign records definition sites and interface boxing through
// assignment into interface-typed destinations.
func (d *Dataflow) recordAssign(s *FuncSummary, as *ast.AssignStmt, addAlloc func(token.Pos, AllocKind, string)) {
	info := s.Pkg.Info
	for i, lhs := range as.Lhs {
		id, ok := unparen(lhs).(*ast.Ident)
		if !ok {
			continue
		}
		var v *types.Var
		if as.Tok == token.DEFINE {
			v, _ = info.Defs[id].(*types.Var)
		} else {
			v, _ = info.Uses[id].(*types.Var)
		}
		if v == nil {
			continue
		}
		s.Defs[v] = append(s.Defs[v], id.Pos())
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() && !v.IsField() {
			d.mutatedPkgVars[v] = append(d.mutatedPkgVars[v], id.Pos())
		}
		// Boxing on plain assignment into an interface-typed variable.
		if as.Tok == token.ASSIGN && i < len(as.Rhs) && len(as.Lhs) == len(as.Rhs) {
			if _, isIface := v.Type().Underlying().(*types.Interface); isIface {
				if rt, ok := info.Types[as.Rhs[i]]; ok && rt.Type != nil && boxes(rt.Type) {
					addAlloc(as.Rhs[i].Pos(), AllocIfaceBox,
						fmt.Sprintf("assigning %s into interface variable %q boxes", rt.Type, v.Name()))
				}
			}
		}
	}
}

func (d *Dataflow) recordRangeDefs(s *FuncSummary, rs *ast.RangeStmt) {
	info := s.Pkg.Info
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if e == nil {
			continue
		}
		id, ok := unparen(e).(*ast.Ident)
		if !ok {
			continue
		}
		var v *types.Var
		if rs.Tok == token.DEFINE {
			v, _ = info.Defs[id].(*types.Var)
		} else {
			v, _ = info.Uses[id].(*types.Var)
		}
		if v != nil {
			s.Defs[v] = append(s.Defs[v], id.Pos())
		}
	}
}

// handoffNames are callee names that hand a closure to another goroutine:
// the campaign engine's worker pool (submit) and the common Go fan-out
// helpers.
var handoffNames = map[string]bool{
	"submit": true, "Submit": true, "Go": true, "Spawn": true,
}

// recordHandoff recognizes closures passed into a worker pool.
func (d *Dataflow) recordHandoff(s *FuncSummary, call *ast.CallExpr) {
	var name string
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return
	}
	if !handoffNames[name] {
		return
	}
	for _, arg := range call.Args {
		if lit, ok := unparen(arg).(*ast.FuncLit); ok {
			d.recordClosure(s, lit, call.Pos(), name)
		}
	}
}

// recordSpawn handles `go f(...)` statements: closures are analyzed for
// captures; named-function spawns only pass values and need no capture
// analysis.
func (d *Dataflow) recordSpawn(s *FuncSummary, call *ast.CallExpr, pos token.Pos, handoff string) {
	if lit, ok := unparen(call.Fun).(*ast.FuncLit); ok {
		d.recordClosure(s, lit, pos, handoff)
	}
}

// syncPkgs are packages whose types/functions synchronize by construction.
var syncPkgs = map[string]bool{"sync": true, "sync/atomic": true}

// recordClosure computes the capture set of one spawned closure.
func (d *Dataflow) recordClosure(s *FuncSummary, lit *ast.FuncLit, spawnPos token.Pos, handoff string) {
	info := s.Pkg.Info
	ci := ClosureInfo{Lit: lit, SpawnPos: spawnPos, Handoff: handoff}

	loop := enclosingLoopBody(s.Decl, spawnPos)

	caps := make(map[*types.Var]*Capture)
	order := []*types.Var{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		// Locks and atomics inside the closure mark it as synchronized.
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
				if sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock" {
					ci.UsesSync = true
				}
				if p := pkgPath(info, sel.X); syncPkgs[p] {
					ci.UsesSync = true
				}
			}
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true // declared inside the closure: goroutine-local
		}
		c := caps[v]
		if c == nil {
			pkgLevel := v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
			c = &Capture{
				Obj:      v,
				FirstUse: id.Pos(),
				PkgLevel: pkgLevel,
				PerIteration: !pkgLevel && loop != nil &&
					v.Pos() >= loop.Pos() && v.Pos() <= loop.End(),
			}
			caps[v] = c
			order = append(order, v)
		}
		return true
	})

	// Classify writes to captured variables inside the closure body.
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				d.classifyCaptureWrite(info, caps, lhs, n, i)
			}
		case *ast.IncDecStmt:
			if id, ok := unparen(n.X).(*ast.Ident); ok {
				if v, ok := info.Uses[id].(*types.Var); ok {
					if c := caps[v]; c != nil {
						c.Writes = append(c.Writes, CaptureWrite{Pos: n.Pos(), Kind: WriteAssign})
					}
				}
			}
		}
		return true
	})

	for _, v := range order {
		ci.Captures = append(ci.Captures, *caps[v])
	}
	s.Closures = append(s.Closures, ci)
}

// classifyCaptureWrite attributes one assignment LHS to a captured variable.
func (d *Dataflow) classifyCaptureWrite(info *types.Info, caps map[*types.Var]*Capture, lhs ast.Expr, as *ast.AssignStmt, i int) {
	switch l := unparen(lhs).(type) {
	case *ast.Ident:
		v, ok := info.Uses[l].(*types.Var)
		if !ok {
			return
		}
		c := caps[v]
		if c == nil {
			return
		}
		kind := WriteAssign
		// x = append(x, ...) is an append-shaped write.
		if i < len(as.Rhs) {
			if call, ok := unparen(as.Rhs[i]).(*ast.CallExpr); ok {
				if id, ok := unparen(call.Fun).(*ast.Ident); ok {
					if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
						kind = WriteAppend
					}
				}
			}
		}
		c.Writes = append(c.Writes, CaptureWrite{Pos: lhs.Pos(), Kind: kind})
	case *ast.IndexExpr:
		base, ok := unparen(l.X).(*ast.Ident)
		if !ok {
			return
		}
		v, ok := info.Uses[base].(*types.Var)
		if !ok {
			return
		}
		c := caps[v]
		if c == nil {
			return
		}
		kind := WriteIndex
		if tv, ok := info.Types[l.X]; ok {
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				kind = WriteMap
			}
		}
		w := CaptureWrite{Pos: lhs.Pos(), Kind: kind}
		if kind == WriteIndex {
			w.IndexPerTask = indexIsPerTask(info, caps, l.Index)
		}
		c.Writes = append(c.Writes, w)
	case *ast.SelectorExpr:
		base, ok := unparen(l.X).(*ast.Ident)
		if !ok {
			return
		}
		v, ok := info.Uses[base].(*types.Var)
		if !ok {
			return
		}
		if c := caps[v]; c != nil {
			c.Writes = append(c.Writes, CaptureWrite{Pos: lhs.Pos(), Kind: WriteField})
		}
	}
}

// indexIsPerTask reports whether an index expression is a constant or a
// captured per-iteration variable — the disjoint pre-assigned-slot idiom.
func indexIsPerTask(info *types.Info, caps map[*types.Var]*Capture, idx ast.Expr) bool {
	idx = unparen(idx)
	if tv, ok := info.Types[idx]; ok && tv.Value != nil {
		return true // constant index: one slot, but not racing per-task state
	}
	id, ok := idx.(*ast.Ident)
	if !ok {
		// Arithmetic over per-iteration values (pi*trialsPerPoint + t):
		// accept when every identifier inside is per-task or constant.
		ok := true
		found := false
		ast.Inspect(idx, func(n ast.Node) bool {
			nid, isID := n.(*ast.Ident)
			if !isID {
				return true
			}
			v, isVar := info.Uses[nid].(*types.Var)
			if !isVar {
				return true
			}
			found = true
			if c := caps[v]; c == nil || !c.PerIteration {
				ok = false
			}
			return true
		})
		return ok && found
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok {
		return false
	}
	c := caps[v]
	return c != nil && c.PerIteration
}

// ---------------------------------------------------------------------------
// Transitive allocation analysis

// stdlibAllocFree lists stdlib call targets known not to allocate, by
// package path (whole package) or path.Func / (Type).Method name.
var stdlibAllocFree = map[string]bool{
	"math/bits":   true,
	"math":        true,
	"sync/atomic": true,
	// encoding/binary's byte-order methods operate on caller storage.
	"encoding/binary.littleEndian": true,
	"encoding/binary.bigEndian":    true,
	"encoding/binary.LittleEndian": true,
	"encoding/binary.BigEndian":    true,
}

func stdlibCallAllocFree(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return true // builtins like error.Error — no package; treat as opaque-safe? no: unreachable
	}
	if stdlibAllocFree[pkg.Path()] {
		return true
	}
	// Method on a named type: key by package.TypeName.
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			if stdlibAllocFree[pkg.Path()+"."+named.Obj().Name()] {
				return true
			}
		}
	}
	return stdlibAllocFree[pkg.Path()+"."+fn.Name()]
}

// TransitiveAllocs returns every unsanctioned allocation reachable from fn
// through the module-local call graph. Interface calls are devirtualized
// against every implementation in the loaded package set; calls that cannot
// be resolved at all are themselves reported as assumed-allocating. Calls
// through func-typed values (hooks, callbacks) are NOT followed — the
// documented soundness caveat. Results are memoized; recursion is handled
// by treating in-progress callees as alloc-free (their own sites are
// reported when their traversal completes).
func (d *Dataflow) TransitiveAllocs(fn *types.Func) []AllocFinding {
	if cached, ok := d.transitive[fn]; ok {
		return cached
	}
	if d.inProgress[fn] {
		return nil
	}
	d.inProgress[fn] = true
	defer delete(d.inProgress, fn)

	var out []AllocFinding
	s := d.summaries[fn]
	if s == nil {
		// Outside the loaded universe: callers report the edge.
		d.transitive[fn] = nil
		return nil
	}
	for _, site := range s.Allocs {
		if site.Sanctioned {
			continue
		}
		out = append(out, AllocFinding{Site: site, In: fn, Chain: []*types.Func{fn}})
	}
	for _, call := range s.Calls {
		if call.Sanctioned {
			continue
		}
		out = append(out, d.callFindings(fn, call)...)
	}
	d.transitive[fn] = out
	return out
}

func (d *Dataflow) callFindings(caller *types.Func, call CallSite) []AllocFinding {
	prepend := func(findings []AllocFinding) []AllocFinding {
		out := make([]AllocFinding, len(findings))
		for i, f := range findings {
			chain := make([]*types.Func, 0, len(f.Chain)+1)
			chain = append(chain, caller)
			chain = append(chain, f.Chain...)
			out[i] = AllocFinding{Site: f.Site, In: f.In, Chain: chain}
		}
		return out
	}
	switch call.Kind {
	case CallStatic:
		callee := call.Callee
		if d.summaries[callee] != nil {
			return prepend(d.TransitiveAllocs(callee))
		}
		if stdlibCallAllocFree(callee) {
			return nil
		}
		kind := AllocCallStdlib
		if callee.Pkg() != nil && !isStdlibPath(callee.Pkg().Path()) {
			kind = AllocCallUnknown
		}
		return []AllocFinding{{
			Site: AllocSite{
				Pos:  call.Pos,
				Kind: kind,
				Desc: fmt.Sprintf("call to %s is assumed to allocate (no summary, not on the allowlist)", funcLabel(callee)),
			},
			In:    caller,
			Chain: []*types.Func{caller},
		}}
	case CallInterface:
		impls := d.devirtualize(call.Callee)
		if len(impls) == 0 {
			return []AllocFinding{{
				Site: AllocSite{
					Pos:  call.Pos,
					Kind: AllocCallUnknown,
					Desc: fmt.Sprintf("interface call %s has no loaded implementation; assumed to allocate", funcLabel(call.Callee)),
				},
				In:    caller,
				Chain: []*types.Func{caller},
			}}
		}
		var out []AllocFinding
		for _, impl := range impls {
			out = append(out, prepend(d.TransitiveAllocs(impl))...)
		}
		return out
	default: // CallDynamic: hooks/callbacks are the caller's responsibility.
		return nil
	}
}

// devirtualize finds every concrete method in the loaded universe that an
// interface method call may dispatch to.
func (d *Dataflow) devirtualize(ifaceMethod *types.Func) []*types.Func {
	if cached, ok := d.implCache[ifaceMethod]; ok {
		return cached
	}
	sig := ifaceMethod.Type().(*types.Signature)
	var iface *types.Interface
	if recv := sig.Recv(); recv != nil {
		iface, _ = recv.Type().Underlying().(*types.Interface)
	}
	var impls []*types.Func
	if iface != nil {
		for _, pkg := range d.pkgs {
			scope := pkg.Types.Scope()
			for _, name := range scope.Names() {
				tn, ok := scope.Lookup(name).(*types.TypeName)
				if !ok || tn.IsAlias() {
					continue
				}
				named, ok := tn.Type().(*types.Named)
				if !ok {
					continue
				}
				for _, t := range []types.Type{named, types.NewPointer(named)} {
					if _, isIface := named.Underlying().(*types.Interface); isIface {
						continue
					}
					if !types.Implements(t, iface) {
						continue
					}
					obj, _, _ := types.LookupFieldOrMethod(t, true, pkg.Types, ifaceMethod.Name())
					if m, ok := obj.(*types.Func); ok && d.summaries[m] != nil {
						impls = append(impls, m)
					}
					break // pointer form adds nothing if value form implements
				}
			}
		}
	}
	sort.Slice(impls, func(i, j int) bool { return funcLabel(impls[i]) < funcLabel(impls[j]) })
	impls = dedupFuncs(impls)
	d.implCache[ifaceMethod] = impls
	return impls
}

func dedupFuncs(fns []*types.Func) []*types.Func {
	out := fns[:0]
	var prev *types.Func
	for _, f := range fns {
		if f != prev {
			out = append(out, f)
		}
		prev = f
	}
	return out
}

// ChainString renders a call chain for diagnostics: "Step -> Cycle -> doIssue".
func ChainString(chain []*types.Func) string {
	parts := make([]string, len(chain))
	for i, fn := range chain {
		parts[i] = funcLabel(fn)
	}
	return strings.Join(parts, " -> ")
}

func funcLabel(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	if fn.Pkg() != nil && fn.Pkg().Name() != "" {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// ---------------------------------------------------------------------------
// Small helpers

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func pkgPath(info *types.Info, expr ast.Expr) string {
	id, ok := unparen(expr).(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}

// fieldOrLocalVar resolves the variable a method call's receiver expression
// names: a local/package variable or a struct field (w.f.Sync() -> Writer.f).
func fieldOrLocalVar(info *types.Info, expr ast.Expr) *types.Var {
	switch e := unparen(expr).(type) {
	case *ast.Ident:
		v, _ := info.Uses[e].(*types.Var)
		return v
	case *ast.SelectorExpr:
		if v, ok := info.Uses[e.Sel].(*types.Var); ok {
			return v
		}
	}
	return nil
}

// calleeSignature extracts the called signature for boxing analysis.
func calleeSignature(info *types.Info, call *ast.CallExpr) (*types.Signature, bool) {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return nil, false
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	return sig, ok
}

// boxes reports whether converting a value of type t into an interface
// allocates: interfaces and pointers don't (the word is stored directly),
// zero-size types don't, everything else may.
func boxes(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Interface:
		return false
	case *types.Pointer, *types.Chan, *types.Signature:
		return false
	case *types.Basic:
		return u.Kind() != types.UntypedNil
	case *types.Struct:
		return u.NumFields() > 0
	}
	return true
}

func isStringBytesConv(to, from types.Type) bool {
	toB, toOK := to.Underlying().(*types.Basic)
	fromB, fromOK := from.Underlying().(*types.Basic)
	toSlice, toSliceOK := to.Underlying().(*types.Slice)
	fromSlice, fromSliceOK := from.Underlying().(*types.Slice)

	isStr := func(b *types.Basic, ok bool) bool { return ok && b.Info()&types.IsString != 0 }
	isByteRune := func(s *types.Slice, ok bool) bool {
		if !ok {
			return false
		}
		b, isB := s.Elem().Underlying().(*types.Basic)
		return isB && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
			b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(toB, toOK) && isByteRune(fromSlice, fromSliceOK)) ||
		(isByteRune(toSlice, toSliceOK) && isStr(fromB, fromOK))
}

// isStdlibPath reports whether an import path is standard library (no dot
// in the first path element, and not this module).
func isStdlibPath(path string) bool {
	first := path
	if i := strings.IndexByte(path, '/'); i >= 0 {
		first = path[:i]
	}
	return !strings.Contains(first, ".")
}

// enclosingLoopBody returns the innermost for/range statement in fd that
// contains pos, or nil.
func enclosingLoopBody(fd *ast.FuncDecl, pos token.Pos) ast.Node {
	var best ast.Node
	ast.Inspect(fd, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			if n.Pos() <= pos && pos <= n.End() {
				best = n // keep innermost: later matches are nested deeper
			}
		}
		return true
	})
	return best
}
