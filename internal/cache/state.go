package cache

import (
	"encoding/binary"
	"fmt"
)

// entryRec is the serialised size of one cache entry: u8 valid | u64 tag |
// u32 lru.
const entryRec = 1 + 8 + 4

// SaveState serialises the cache's mutable state — entries plus the
// access/miss counters — for a golden checkpoint. Geometry (sets, ways,
// latencies) comes from the Config and is not stored: a loaded image must
// be applied to an identically configured cache.
func (c *Cache) SaveState() []byte {
	out := make([]byte, 16+len(c.entries)*entryRec)
	binary.LittleEndian.PutUint64(out[0:8], c.accesses)
	binary.LittleEndian.PutUint64(out[8:16], c.misses)
	off := 16
	for i := range c.entries {
		e := &c.entries[i]
		if e.valid {
			out[off] = 1
		}
		binary.LittleEndian.PutUint64(out[off+1:], e.tag)
		binary.LittleEndian.PutUint32(out[off+9:], e.lru)
		off += entryRec
	}
	return out
}

// LoadState restores state serialised by SaveState into an identically
// configured cache.
func (c *Cache) LoadState(b []byte) error {
	want := 16 + len(c.entries)*entryRec
	if len(b) != want {
		return fmt.Errorf("cache: state blob %d bytes, want %d (geometry mismatch?)", len(b), want)
	}
	c.accesses = binary.LittleEndian.Uint64(b[0:8])
	c.misses = binary.LittleEndian.Uint64(b[8:16])
	off := 16
	for i := range c.entries {
		e := &c.entries[i]
		e.valid = b[off] != 0
		e.tag = binary.LittleEndian.Uint64(b[off+1:])
		e.lru = binary.LittleEndian.Uint32(b[off+9:])
		off += entryRec
	}
	return nil
}
