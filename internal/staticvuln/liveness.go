package staticvuln

import (
	"fmt"
	"math/bits"

	"repro/internal/isa"
	"repro/internal/workload"
)

// Backward bit-level liveness. For every program point and register the
// analysis keeps, per symptom class, the set of bits whose corruption can
// reach that class's trigger (and a lower bound on how soon, in
// instructions). A result bit that reaches no class is un-ACE: the dynamic
// campaign must eventually classify a flip of it as masked, because every
// architectural effect of the flip washes out.

const maxDist = 1 << 30

const allBits = ^uint64(0)

// fact is the per-register liveness at one program point.
type fact struct {
	mask [numClasses]uint64
	dist [numClasses]uint32
}

func emptyFact() fact {
	var f fact
	for c := range f.dist {
		f.dist[c] = maxDist
	}
	return f
}

func (f *fact) add(cls int, mask uint64, dist uint32) {
	if mask == 0 {
		return
	}
	f.mask[cls] |= mask
	if dist < f.dist[cls] {
		f.dist[cls] = dist
	}
}

func (f *fact) or(o *fact) {
	for c := 0; c < numClasses; c++ {
		f.add(c, o.mask[c], o.dist[c])
	}
}

// orChanged merges o into f and reports whether f grew. Used by the memory
// cells, whose growth must extend the fixpoint.
func (f *fact) orChanged(o *fact) bool {
	changed := false
	for c := 0; c < numClasses; c++ {
		if o.mask[c]&^f.mask[c] != 0 || (o.mask[c] != 0 && o.dist[c] < f.dist[c]) {
			changed = true
		}
		f.add(c, o.mask[c], o.dist[c])
	}
	return changed
}

func (f *fact) bump() {
	for c := 0; c < numClasses; c++ {
		if f.mask[c] != 0 && f.dist[c] < maxDist {
			f.dist[c]++
		}
	}
}

func (f *fact) union() uint64 {
	var u uint64
	for c := 0; c < numClasses; c++ {
		u |= f.mask[c]
	}
	return u
}

func (f *fact) live() bool { return f.union() != 0 }

// minDist returns the smallest distance over live classes.
func (f *fact) minDist() uint32 {
	d := uint32(maxDist)
	for c := 0; c < numClasses; c++ {
		if f.mask[c] != 0 && f.dist[c] < d {
			d = f.dist[c]
		}
	}
	return d
}

type regFacts [isa.NumRegs]fact

func emptyRegFacts() regFacts {
	var rf regFacts
	for r := range rf {
		rf[r] = emptyFact()
	}
	return rf
}

func (rf *regFacts) bump() {
	for r := range rf {
		rf[r].bump()
	}
}

// memCells is the flow-insensitive memory side of the analysis. Loads
// deposit their destination's liveness into the cell they read; stores pick
// up the liveness of every cell they may write. Constant addresses get exact
// quadword cells; indexed accesses share one per-segment region cell. The
// control-block convention (constant slots below slotArea, arrays above)
// keeps a dead result slot from aliasing the indexed array next to it.
type memCells struct {
	lay     *layout
	slot    map[uint64]*fact
	region  map[int]*fact
	anyLoad fact
	changed bool
}

func newMemCells(lay *layout) *memCells {
	return &memCells{
		lay:    lay,
		slot:   make(map[uint64]*fact),
		region: make(map[int]*fact),
	}
}

func (mc *memCells) slotFact(key uint64) *fact {
	f, ok := mc.slot[key]
	if !ok {
		nf := emptyFact()
		f = &nf
		mc.slot[key] = f
	}
	return f
}

func (mc *memCells) regionFact(seg int) *fact {
	f, ok := mc.region[seg]
	if !ok {
		nf := emptyFact()
		f = &nf
		mc.region[seg] = f
	}
	return f
}

// foldLDL maps the liveness of an LDL destination back onto the 32 memory
// bits it reads: bits 32..63 of the register are copies of memory bit 31.
func foldLDL(m uint64) uint64 {
	f := m & 0x7FFF_FFFF
	if m>>31 != 0 {
		f |= 1 << 31
	}
	return f
}

// addLoad records that the load at site reads memory whose corruption
// surfaces with the load destination's liveness l.
func (mc *memCells) addLoad(site *memSite, l *fact) {
	cell := *l
	if site.size == 4 {
		folded := emptyFact()
		for c := 0; c < numClasses; c++ {
			folded.add(c, foldLDL(l.mask[c]), l.dist[c])
		}
		cell = folded
	}
	switch site.kind {
	case avConst:
		f := &cell
		if site.size == 4 && site.addr%8 == 4 {
			shifted := emptyFact()
			for c := 0; c < numClasses; c++ {
				shifted.add(c, cell.mask[c]<<32, cell.dist[c])
			}
			f = &shifted
		}
		if mc.slotFact(site.addr &^ 7).orChanged(f) {
			mc.changed = true
		}
	case avRegion:
		if mc.regionFact(site.seg).orChanged(&cell) {
			mc.changed = true
		}
	default:
		if mc.anyLoad.orChanged(&cell) {
			mc.changed = true
		}
	}
}

// demandStore returns the liveness of the memory a store may write, i.e. the
// demand on its data register. A store no load can observe returns an empty
// fact — the dead-store half of software-level masking.
func (mc *memCells) demandStore(site *memSite) fact {
	d := emptyFact()
	d.or(&mc.anyLoad)
	lay := mc.lay
	inArray := func(addr uint64) bool {
		seg := lay.resolveSeg(addr)
		if seg == segNone {
			return false
		}
		if lay.isDataSeg(seg) {
			return addr-lay.segBase(seg) >= lay.slotArea
		}
		return true // stack and code cells alias their whole region
	}
	switch site.kind {
	case avConst:
		if f, ok := mc.slot[site.addr&^7]; ok {
			d.or(f)
		}
		if inArray(site.addr) {
			if f, ok := mc.region[site.seg]; ok {
				d.or(f)
			}
		}
	case avRegion:
		if f, ok := mc.region[site.seg]; ok {
			d.or(f)
		}
		for addr, f := range mc.slot {
			if lay.resolveSeg(addr) == site.seg && inArray(addr) {
				d.or(f)
			}
		}
	default:
		for _, f := range mc.slot {
			d.or(f)
		}
		for _, f := range mc.region {
			d.or(f)
		}
	}
	// Map cell bits onto data-register bits for 32-bit stores.
	if site.size == 4 {
		narrowed := emptyFact()
		for c := 0; c < numClasses; c++ {
			m := d.mask[c]
			switch {
			case site.kind == avConst && site.addr%8 == 4:
				m >>= 32
			case site.kind == avConst:
				m &= 0xFFFF_FFFF
			default:
				m = (m | m>>32) & 0xFFFF_FFFF
			}
			narrowed.add(c, m, d.dist[c])
		}
		d = narrowed
	}
	return d
}

// liveness is the backward solver.
type liveness struct {
	g        *cfg
	ab       *absResult
	opt      Options
	cells    *memCells
	boundary regFacts
	liveIn   []regFacts
	liveOut  []regFacts
	dest     []fact // per instruction: liveness of its result bits
	selfLive [isa.NumRegs]bool
	// Indirect-target bit classification, from the code extent.
	targetCFV uint64
	reach     []bool // blocks reachable from entry
}

func newLiveness(g *cfg, ab *absResult, opt Options) *liveness {
	lv := &liveness{
		g:       g,
		ab:      ab,
		opt:     opt,
		cells:   newMemCells(ab.layout),
		liveIn:  make([]regFacts, len(g.blocks)),
		liveOut: make([]regFacts, len(g.blocks)),
		dest:    make([]fact, len(g.insts)),
	}
	for b := range lv.liveIn {
		lv.liveIn[b] = emptyRegFacts()
		lv.liveOut[b] = emptyRegFacts()
	}
	for i := range lv.dest {
		lv.dest[i] = emptyFact()
	}
	lv.computeReach()
	lv.computeSelfLive()
	lv.boundary = lv.makeBoundary()
	lv.targetCFV = lv.makeTargetMask()
	return lv
}

func (lv *liveness) computeReach() {
	lv.reach = make([]bool, len(lv.g.blocks))
	stack := []int{lv.g.entry}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if lv.reach[b] {
			continue
		}
		lv.reach[b] = true
		stack = append(stack, lv.g.blocks[b].succs...)
	}
}

// computeSelfLive finds registers whose corruption can never wash out: no
// recurrent (re-executable) definition overwrites them with a value
// independent of their old contents. The global iteration counter and the
// stack pointer are the canonical cases — both are only ever updated from
// themselves, so a flip diverges architectural state for the rest of the run
// (the dynamic campaign's "register" outcome).
func (lv *liveness) computeSelfLive() {
	// Recurrent blocks: members of natural loops plus everything reachable
	// from them (callees entered from loop bodies re-execute every
	// iteration even though the CFG has no return edges).
	recurrent := make([]bool, len(lv.g.blocks))
	var stack []int
	for b := range lv.g.blocks {
		if lv.reach[b] && lv.g.loopDepth[b] > 0 {
			stack = append(stack, b)
		}
	}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if recurrent[b] {
			continue
		}
		recurrent[b] = true
		stack = append(stack, lv.g.blocks[b].succs...)
	}

	var defined, washed [isa.NumRegs]bool
	for b := range lv.g.blocks {
		if !lv.reach[b] {
			continue
		}
		for i := lv.g.blocks[b].start; i < lv.g.blocks[b].end; i++ {
			inst := lv.g.insts[i]
			d, ok := inst.Dest()
			if !ok || d == isa.RegZero {
				continue
			}
			defined[d] = true
			if !recurrent[b] {
				continue
			}
			if inst.Op == isa.OpCMOVEQ || inst.Op == isa.OpCMOVNE {
				continue // partial write preserves old bits
			}
			usesSelf := false
			for _, u := range inst.Uses() {
				if u.Reg == d {
					usesSelf = true
				}
			}
			if !usesSelf {
				washed[d] = true
			}
		}
	}
	for r := range lv.selfLive {
		lv.selfLive[r] = defined[r] && !washed[r]
	}
}

// makeBoundary is the liveness fact at program exits. Synthetic workloads
// loop forever, so this matters only for HALT-terminated test programs: the
// calling convention's long-lived registers (stack, globals, kernel bases,
// return address, iteration counter) are live, scratch registers are dead.
func (lv *liveness) makeBoundary() regFacts {
	rf := emptyRegFacts()
	for r := isa.Reg(15); r <= 25; r++ {
		rf[r].add(clsException, allBits, maxDist-1)
	}
	rf[isa.RegSP].add(clsException, allBits, maxDist-1)
	rf[isa.RegGP].add(clsException, allBits, maxDist-1)
	rf[isa.RegRA].add(clsCFV, allBits&^3, maxDist-1)
	rf[workload.RegIter].add(clsRegister, allBits, maxDist-1)
	return rf
}

// makeTargetMask classifies indirect-target bits: flips that may stay inside
// the code image cause a control-flow violation; flips that leave it fault on
// fetch; bits 0..1 are ignored by the hardware (targets are masked to
// instruction alignment).
func (lv *liveness) makeTargetMask() uint64 {
	lay := lv.ab.layout
	rep := lay.codeLo + (lay.codeHi-lay.codeLo)/2&^3
	var cfv uint64
	for b := uint(2); b < 64; b++ {
		bit := uint64(1) << b
		if bit < lay.codeHi-lay.codeLo || (rep^bit >= lay.codeLo && rep^bit < lay.codeHi) {
			cfv |= bit
		}
	}
	return cfv
}

// solve runs the backward fixpoint (including the memory cells) and then a
// final recording pass that captures each instruction's result-bit fact.
func (lv *liveness) solve() error {
	order := lv.g.reversePostorder()
	// Process blocks in postorder (successors first) for fast convergence.
	post := make([]int, 0, len(order))
	for i := len(order) - 1; i >= 0; i-- {
		post = append(post, order[i])
	}
	for round := 0; ; round++ {
		if round > lv.opt.MaxRounds {
			return fmt.Errorf("staticvuln: liveness did not converge in %d rounds", lv.opt.MaxRounds)
		}
		changed := false
		for _, b := range post {
			if !lv.reach[b] {
				continue
			}
			out := lv.joinSuccs(b)
			if out != lv.liveOut[b] {
				lv.liveOut[b] = out
				changed = true
			}
			in := lv.transferBlock(b, out)
			if in != lv.liveIn[b] {
				lv.liveIn[b] = in
				changed = true
			}
		}
		if lv.cells.changed {
			lv.cells.changed = false
			changed = true
		}
		if !changed {
			break
		}
	}
	// Recording pass from converged out-facts.
	for b := range lv.g.blocks {
		if lv.reach[b] {
			lv.transferBlock(b, lv.liveOut[b])
		}
	}
	return nil
}

func (lv *liveness) joinSuccs(b int) regFacts {
	succs := lv.g.blocks[b].succs
	if len(succs) == 0 {
		return lv.boundary
	}
	out := emptyRegFacts()
	for _, s := range succs {
		for r := range out {
			out[r].or(&lv.liveIn[s][r])
		}
	}
	return out
}

func (lv *liveness) transferBlock(b int, out regFacts) regFacts {
	st := out
	for i := lv.g.blocks[b].end - 1; i >= lv.g.blocks[b].start; i-- {
		lv.transferInst(i, &st)
	}
	return st
}

// transferInst rewinds the state across instruction idx: capture and kill the
// destination, then add the demands the instruction's uses generate.
func (lv *liveness) transferInst(idx int, st *regFacts) {
	inst := lv.g.insts[idx]
	var l fact
	d, hasDest := inst.Dest()
	if hasDest && d != isa.RegZero {
		l = st[d]
		if lv.selfLive[d] {
			l.add(clsRegister, allBits, maxDist-1)
		}
		lv.dest[idx] = l
		if inst.Op != isa.OpCMOVEQ && inst.Op != isa.OpCMOVNE {
			st[d] = emptyFact()
		}
	}
	st.bump()

	site := lv.ab.sites[idx]
	if inst.IsLoad() && site != nil {
		lv.cells.addLoad(site, &l)
	}
	var storeDemand fact
	if inst.IsStore() && site != nil {
		storeDemand = lv.cells.demandStore(site)
	}

	for _, u := range inst.Uses() {
		if u.Reg == isa.RegZero {
			continue
		}
		rf := &st[u.Reg]
		switch u.Kind {
		case isa.UseOperand:
			for c := 0; c < numClasses; c++ {
				dm := srcDemand(inst, u.Reg == inst.Ra, l.mask[c],
					lv.ab.ka[idx], lv.ab.kb[idx])
				rf.add(c, dm, satAdd(l.dist[c], 1))
			}
		case isa.UseCondition:
			if inst.IsCondBranch() {
				rf.add(clsCFV, condMask(inst.Op, lv.ab.ka[idx]), 1)
			} else { // conditional move: outcome feeds the destination
				for c := 0; c < numClasses; c++ {
					if l.mask[c] != 0 {
						rf.add(c, allBits, satAdd(l.dist[c], 1))
					}
				}
			}
		case isa.UseTarget:
			rf.add(clsCFV, lv.targetCFV, 1)
			rf.add(clsException, ^(lv.targetCFV | 3), 1)
		case isa.UseAddrBase:
			if site == nil {
				rf.add(clsException, allBits, 1)
				break
			}
			rf.add(clsException, site.excBits(), 1)
			if inst.IsStore() {
				// In-page flips write a live-looking cell at the wrong
				// address; the stale divergence surfaces as mem-data.
				rf.add(clsMem, site.stay, 1)
			} else {
				for c := 0; c < numClasses; c++ {
					if l.mask[c] != 0 {
						rf.add(c, site.stay, satAdd(l.dist[c], 1))
					}
				}
			}
		case isa.UseStoreData:
			for c := 0; c < numClasses; c++ {
				rf.add(c, storeDemand.mask[c], satAdd(storeDemand.dist[c], 1))
			}
		}
	}
}

func satAdd(d uint32, n uint32) uint32 {
	if d >= maxDist-n {
		return maxDist - 1
	}
	return d + n
}

// condMask returns the condition-register bits that can change a conditional
// branch's direction. Sign tests depend only on the sign bit. Zero-involved
// tests depend on every bit the value can actually hold: flipping a
// known-zero bit of a flag that is currently non-zero cannot turn it into
// zero, so for the common flag idiom (AND x,1 feeding BNE) only bit 0 is
// predicted live. A flip of a known-zero bit while the flag happens to be 0
// does change the direction — that residue is value-dependent masking the
// static model charges to the masked side, matching how rarely it fires.
func condMask(op isa.Op, cond kbits) uint64 {
	switch op {
	case isa.OpBLT, isa.OpBGE:
		return 1 << 63
	default:
		// Zero-involved tests (BEQ/BNE/BLE/BGT/BLBC/BLBS) and everything
		// else: any bit the value can hold may flip the direction.
	}
	return allBits &^ cond.zero
}

// belowSmear widens a live mask downward: every source bit at or below the
// highest live result bit may matter when bit positions are not preserved.
func belowSmear(m uint64) uint64 {
	if m == 0 {
		return 0
	}
	n := bits.Len64(m)
	if n >= 64 {
		return allBits
	}
	return (uint64(1) << n) - 1
}

// fold32 maps liveness of a sign-extended 32-bit result onto the 32
// low source bits: bits 32..63 are copies of bit 31.
func fold32(m uint64) uint64 {
	f := m & 0x7FFF_FFFF
	if m>>31 != 0 {
		f |= 1 << 31
	}
	return f
}

// srcDemand is the bit-transfer function: given the liveness mask m of an
// instruction's result, it returns the demand on one source register.
// Known-bits of the other operand sharpen AND/OR/shift transfers; that
// sharpening is where most statically provable masking comes from.
//
// Addition and subtraction are treated as bit-position-preserving: flipping
// source bit k flips result bit k plus, when a carry chain happens to cross
// it, a run of higher bits. The carry residue is rare for the address and
// counter arithmetic that dominates these programs, so charging demand only
// at the same position predicts the dynamic outcome far better than the
// sound-but-weak "every bit at or below the highest live bit" smear, which
// is kept for multiplication where positions genuinely scramble.
func srcDemand(inst isa.Inst, isRa bool, m uint64, ka, kb kbits) uint64 {
	if m == 0 {
		return 0
	}
	other := kb
	if !isRa {
		other = ka
	}
	switch inst.Op {
	case isa.OpADDQ, isa.OpSUBQ, isa.OpADDQV, isa.OpSUBQV,
		isa.OpLDA, isa.OpLDAH:
		return m
	case isa.OpADDL, isa.OpSUBL:
		return fold32(m)
	case isa.OpMULQ, isa.OpMULQV:
		return belowSmear(m)
	case isa.OpAND:
		return m &^ other.zero // known-zero bits of the mask absorb flips
	case isa.OpBIS:
		return m &^ other.one // known-one bits of the other side dominate
	case isa.OpBIC: // ra &^ rb
		if isRa {
			return m &^ other.one
		}
		return m &^ other.zero
	case isa.OpORNOT: // ra | ^rb
		if isRa {
			return m &^ other.zero
		}
		return m &^ other.one
	case isa.OpXOR:
		return m
	case isa.OpSLL, isa.OpSRL, isa.OpSRA:
		if !isRa { // shift amount: low six bits select the distance
			return 0x3F
		}
		if !kb.ok() {
			return allBits
		}
		s := uint(kb.val() & 63)
		switch inst.Op {
		case isa.OpSLL:
			return m >> s
		case isa.OpSRL:
			return m << s
		default: // SRA: bits shifted past the top collapse onto the sign
			d := m << s
			if s > 0 && m>>(64-s) != 0 {
				d |= 1 << 63
			}
			return d
		}
	case isa.OpCMPEQ, isa.OpCMPLT, isa.OpCMPLE, isa.OpCMPULT, isa.OpCMPULE:
		if m&1 != 0 {
			return allBits
		}
		return 0
	case isa.OpCMOVEQ, isa.OpCMOVNE: // value operand moves through
		return m
	default:
		// Remaining opcodes are treated as bit-position-preserving.
	}
	return m
}
