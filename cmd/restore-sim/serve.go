package main

import (
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/workload"
)

// runServe starts the campaign service daemon: an HTTP job queue over the
// same deterministic campaign machinery the one-shot CLI uses. The daemon
// owns a service root directory; jobs, shard journals, merged results and
// golden images all live under it, so killing the daemon loses nothing —
// a restarted `restore-sim serve` on the same root resumes its queue.
//
// Interruption follows the CLI's two-level protocol: the first SIGINT or
// SIGTERM drains in-flight shards (journals flush, the running job is
// re-queued on disk) and stops the server; a second signal forces an
// immediate exit after flushing completed trial records.
func runServe(root, addr string, maxShards, workers int) error {
	if root == "" {
		return fmt.Errorf("serve requires -root <dir>: the service directory holding jobs, journals and golden images")
	}
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	if workers < 0 {
		workers = runtime.NumCPU()
	}
	reg := obs.NewRegistry()
	svc, err := service.New(service.Config{
		Root:      root,
		MaxShards: maxShards,
		Workers:   workers,
		Obs:       reg,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "restore-sim: serve: "+format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	srv := service.NewServer(svc)
	bound, err := srv.Start(addr)
	if err != nil {
		svc.Close()
		return err
	}
	fmt.Printf("restore-sim: campaign service on http://%s (root %s)\n", bound, root)

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	stopped := make(chan error, 1)
	go watchInterrupts(sigc, func() {
		// Shutdown drains the running job's shards; run it off the watcher
		// goroutine so a second signal can still force an exit mid-drain.
		go func() { stopped <- srv.Shutdown() }()
	}, forceExit)

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Wait() }()
	select {
	case err := <-stopped:
		fmt.Fprintln(os.Stderr, "restore-sim: serve: stopped; queued jobs resume on the next `restore-sim serve`")
		return err
	case err := <-serveErr:
		// The listener died underneath us; wind the service down cleanly.
		_ = srv.Shutdown()
		return err
	}
}

// serviceClient resolves the daemon address: -addr wins, otherwise the
// daemon's serve.addr file under -root.
func serviceClient(root, addr string) (*service.Client, error) {
	if addr != "" {
		return &service.Client{Base: addr}, nil
	}
	if root == "" {
		return nil, fmt.Errorf("client subcommands need -root <dir> (to discover the daemon) or -addr <host:port>")
	}
	return service.NewClientFromRoot(root)
}

// runSubmit submits one experiment as a job, reusing the campaign flags the
// one-shot CLI takes (-seed, -scale, -trials, -bench, -workers,
// -compress-journal) plus -shards for the fan-out.
func runSubmit(root, addr, experiment, benches string, seed int64, scale, trials float64,
	shards, workers int, compress, wait bool) error {
	cl, err := serviceClient(root, addr)
	if err != nil {
		return err
	}
	if workers < 0 {
		workers = runtime.NumCPU()
	}
	spec := service.JobSpec{
		Experiment:      experiment,
		Seed:            seed,
		Scale:           scale,
		TrialFactor:     trials,
		Shards:          shards,
		Workers:         workers,
		CompressJournal: compress,
	}
	if benches != "" {
		for _, name := range strings.Split(benches, ",") {
			spec.Benchmarks = append(spec.Benchmarks, strings.TrimSpace(name))
		}
	}
	j, err := cl.Submit(spec)
	if err != nil {
		return err
	}
	printJob(j)
	if !wait {
		fmt.Printf("follow with: restore-sim -root %s -wait status %s\n", root, j.ID)
		return nil
	}
	return waitForJob(cl, j.ID)
}

// runStatus prints one job's state; with -wait it follows the job to a
// terminal state.
func runStatus(root, addr, id string, wait bool) error {
	cl, err := serviceClient(root, addr)
	if err != nil {
		return err
	}
	j, err := cl.Job(id)
	if err != nil {
		return err
	}
	printJob(j)
	if !wait || j.State.Terminal() {
		return jobExitErr(j)
	}
	return waitForJob(cl, id)
}

func waitForJob(cl *service.Client, id string) error {
	j, err := cl.Wait(id, 500*time.Millisecond, func(j *service.Job) {
		fmt.Fprintf(os.Stderr, "\r%s: %s (%d trials done)      ", j.ID, j.State, j.TrialsDone)
	})
	fmt.Fprintln(os.Stderr)
	if err != nil {
		return err
	}
	printJob(j)
	return jobExitErr(j)
}

// jobExitErr maps a terminal job onto the process exit status: failed jobs
// fail the client invocation too.
func jobExitErr(j *service.Job) error {
	if j.State == service.StateFailed {
		return fmt.Errorf("job %s failed: %s", j.ID, j.Error)
	}
	return nil
}

func runCancel(root, addr, id string) error {
	cl, err := serviceClient(root, addr)
	if err != nil {
		return err
	}
	j, err := cl.Cancel(id)
	if err != nil {
		return err
	}
	printJob(j)
	return nil
}

func runJobs(root, addr string) error {
	cl, err := serviceClient(root, addr)
	if err != nil {
		return err
	}
	jobs, err := cl.Jobs()
	if err != nil {
		return err
	}
	if len(jobs) == 0 {
		fmt.Println("no jobs")
		return nil
	}
	fmt.Printf("%-12s %-10s %-14s %7s %8s %10s\n", "job", "state", "experiment", "shards", "trials", "campaigns")
	for _, j := range jobs {
		fmt.Printf("%-12s %-10s %-14s %7d %8d %10d\n",
			j.ID, j.State, j.Spec.Experiment, j.Spec.Shards, j.TrialsDone, len(j.Campaigns))
	}
	return nil
}

// printJob renders one job's full record for the submit/status/cancel
// subcommands.
func printJob(j *service.Job) {
	fmt.Printf("%s: %s\n", j.ID, j.State)
	fmt.Printf("  experiment %s  seed %d  scale %g  trials %g  shards %d\n",
		j.Spec.Experiment, j.Spec.Seed, j.Spec.Scale, j.Spec.TrialFactor, j.Spec.Shards)
	if len(j.Spec.Benchmarks) > 0 {
		fmt.Printf("  benchmarks %s\n", strings.Join(j.Spec.Benchmarks, ","))
	} else {
		all := workload.Benchmarks()
		names := make([]string, len(all))
		for i, b := range all {
			names[i] = string(b)
		}
		fmt.Printf("  benchmarks %s (all)\n", strings.Join(names, ","))
	}
	if j.TrialsDone > 0 {
		fmt.Printf("  trials done %d (this daemon lifetime)\n", j.TrialsDone)
	}
	if j.Error != "" {
		fmt.Printf("  error %s\n", j.Error)
	}
	if len(j.Campaigns) > 0 {
		sorted := append([]string(nil), j.Campaigns...)
		sort.Strings(sorted)
		fmt.Printf("  merged campaigns: %s\n", strings.Join(sorted, ", "))
	}
}
