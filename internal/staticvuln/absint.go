package staticvuln

import (
	"math/bits"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/workload"
)

// The forward pass answers two questions the backward bit-liveness pass
// cannot on its own: which memory does each load and store touch, and which
// bits of each operand are provably constant. Addresses are tracked through a
// small abstract domain — bottom, exact constant, "somewhere in segment s",
// anything — precise enough to separate a kernel's control slots (constant
// offsets in the control block) from its indexed array area, which is exactly
// the distinction software-level masking hinges on: a store to a result slot
// nobody loads is dead, a store to a state slot that is reloaded is live.
// Alongside, every register carries known-zero/known-one bit masks (the
// classic KnownBits domain) so the backward pass can see through masking
// idioms: an AND with a flag constant, a hash narrowed by a shift, a
// condition register that can only ever hold 0 or 1.

type avKind uint8

const (
	avBot avKind = iota
	avConst
	avRegion
	avAny
)

// kbits are per-bit value facts: zero bits are provably 0, one bits provably
// 1. The empty fact (0,0) knows nothing; a constant knows every bit.
type kbits struct {
	zero, one uint64
}

func kbConst(c uint64) kbits { return kbits{zero: ^c, one: c} }

var kbTop = kbits{}

// ok reports whether every bit is known, i.e. the value is a constant.
func (k kbits) ok() bool { return k.zero|k.one == ^uint64(0) }

func (k kbits) val() uint64 { return k.one }

func (k kbits) join(o kbits) kbits {
	return kbits{zero: k.zero & o.zero, one: k.one & o.one}
}

// width returns the number of low bits the value can occupy: bits at or
// above width are known zero.
func (k kbits) width() int { return 64 - bits.LeadingZeros64(^k.zero) }

// aval is an abstract register value: an address-domain component plus
// known-bits. seg is meaningful for avRegion.
type aval struct {
	kind avKind
	c    uint64 // exact value when avConst
	seg  int    // segment id when avRegion
	kb   kbits
}

var anyAV = aval{kind: avAny}

func constAV(c uint64) aval { return aval{kind: avConst, c: c, kb: kbConst(c)} }

// Segment ids extend the program's data-segment indices with the stack and
// the code image.
const segNone = -1

// layout resolves addresses against the program image: segment membership,
// page-granular mappedness (separately for reads and writes, since code pages
// are readable but not writable), and the code extent for jump targets.
type layout struct {
	prog     *workload.Program
	segStack int
	segCode  int
	readPg   map[uint64]bool
	writePg  map[uint64]bool
	codeLo   uint64
	codeHi   uint64
	slotArea uint64
}

func newLayout(p *workload.Program, slotArea uint64) *layout {
	l := &layout{
		prog:     p,
		segStack: len(p.Segments),
		segCode:  len(p.Segments) + 1,
		readPg:   make(map[uint64]bool),
		writePg:  make(map[uint64]bool),
		codeLo:   p.CodeBase,
		codeHi:   p.CodeBase + uint64(len(p.Code))*isa.InstBytes,
		slotArea: slotArea,
	}
	addPages := func(base, size uint64, writable bool) {
		lo := base &^ (mem.PageSize - 1)
		hi := (base + size + mem.PageSize - 1) &^ (mem.PageSize - 1)
		for pg := lo; pg < hi; pg += mem.PageSize {
			l.readPg[pg] = true
			if writable {
				l.writePg[pg] = true
			}
		}
	}
	for _, seg := range p.Segments {
		addPages(seg.Base, uint64(len(seg.Data)), seg.Perm&mem.PermWrite != 0)
	}
	addPages(workload.StackBase, workload.StackSize, true)
	addPages(l.codeLo, l.codeHi-l.codeLo, false)
	return l
}

func (l *layout) mapped(addr uint64, write bool) bool {
	pg := addr &^ (mem.PageSize - 1)
	if write {
		return l.writePg[pg]
	}
	return l.readPg[pg]
}

// resolveSeg classifies an address into a segment id, or segNone.
func (l *layout) resolveSeg(addr uint64) int {
	if i := l.prog.SegmentFor(addr); i >= 0 {
		return i
	}
	if addr >= workload.StackBase && addr < workload.StackBase+workload.StackSize {
		return l.segStack
	}
	if addr >= l.codeLo && addr < l.codeHi {
		return l.segCode
	}
	return segNone
}

func (l *layout) segBase(seg int) uint64 {
	switch seg {
	case l.segStack:
		return workload.StackBase
	case l.segCode:
		return l.codeLo
	default:
		return l.prog.Segments[seg].Base
	}
}

func (l *layout) segLen(seg int) uint64 {
	switch seg {
	case l.segStack:
		return workload.StackSize
	case l.segCode:
		return l.codeHi - l.codeLo
	default:
		return uint64(len(l.prog.Segments[seg].Data))
	}
}

// isDataSeg reports whether seg is a program data segment whose control-block
// layout (constant slots below slotArea, indexed array area above) applies.
func (l *layout) isDataSeg(seg int) bool {
	return seg >= 0 && seg < len(l.prog.Segments)
}

func (l *layout) joinAV(a, b aval) aval {
	if a.kind == avBot {
		return b
	}
	if b.kind == avBot {
		return a
	}
	kb := a.kb.join(b.kb)
	if a.kind == avAny || b.kind == avAny {
		return aval{kind: avAny, kb: kb}
	}
	segOf := func(v aval) int {
		if v.kind == avRegion {
			return v.seg
		}
		return l.resolveSeg(v.c)
	}
	if a.kind == avConst && b.kind == avConst && a.c == b.c {
		return a
	}
	sa, sb := segOf(a), segOf(b)
	if sa != segNone && sa == sb {
		return aval{kind: avRegion, seg: sa, kb: kb}
	}
	return aval{kind: avAny, kb: kb}
}

// addDelta shifts an abstract value by a known constant.
func addDelta(v aval, d uint64) aval {
	if v.kind == avConst {
		return constAV(v.c + d)
	}
	out := v // regions absorb constant offsets; any/bot unchanged
	out.kb = kbAdd(v.kb, kbConst(d))
	return out
}

// combineAdd models x+y when at least one side is not constant. The locality
// heuristic — a segment-based value plus an unknown index stays in its
// segment — is what lets pointer-chasing loads keep a usable region.
func (l *layout) combineAdd(a, b aval) aval {
	kb := kbAdd(a.kb, b.kb)
	if a.kind == avConst && b.kind == avConst {
		return constAV(a.c + b.c)
	}
	base := func(x, y aval) aval {
		// y is the non-anchoring side (any/bot or a second region).
		switch x.kind {
		case avRegion:
			if y.kind == avRegion {
				return aval{kind: avAny, kb: kb} // two bases: not an address
			}
			return aval{kind: avRegion, seg: x.seg, kb: kb}
		case avConst:
			if s := l.resolveSeg(x.c); s != segNone {
				return aval{kind: avRegion, seg: s, kb: kb}
			}
		}
		return aval{kind: avAny, kb: kb}
	}
	if a.kind == avRegion || a.kind == avConst {
		if b.kind == avConst {
			out := addDelta(a, b.c)
			out.kb = kb
			return out
		}
		return base(a, b)
	}
	if b.kind == avRegion || b.kind == avConst {
		if a.kind == avConst {
			out := addDelta(b, a.c)
			out.kb = kb
			return out
		}
		return base(b, a)
	}
	return aval{kind: avAny, kb: kb}
}

func (l *layout) combineSub(a, b aval) aval {
	if a.kind == avConst && b.kind == avConst {
		return constAV(a.c - b.c)
	}
	if b.kind == avConst {
		out := addDelta(a, -b.c)
		out.kb = kbTop // subtraction can borrow through every bit
		return out
	}
	if a.kind == avRegion {
		return aval{kind: avRegion, seg: a.seg}
	}
	if a.kind == avConst {
		if s := l.resolveSeg(a.c); s != segNone {
			return aval{kind: avRegion, seg: s}
		}
	}
	return anyAV
}

// kbAdd: the sum of two values of bounded width is itself width-bounded;
// individual bits below that are unknown (carries).
func kbAdd(a, b kbits) kbits {
	if a.ok() && b.ok() {
		return kbConst(a.val() + b.val())
	}
	w := a.width()
	if bw := b.width(); bw > w {
		w = bw
	}
	if w >= 64 {
		return kbTop
	}
	return kbits{zero: ^((uint64(1) << (w + 1)) - 1)}
}

// kbEval evaluates the known-bits transfer of one operate instruction.
func kbEval(op isa.Op, a, b kbits) kbits {
	if a.ok() && b.ok() {
		if v, ok := isa.EvalOperate(op, a.val(), b.val()); ok {
			return kbConst(v)
		}
	}
	switch op {
	case isa.OpADDQ, isa.OpADDQV:
		return kbAdd(a, b)
	case isa.OpMULQ, isa.OpMULQV:
		wa, wb := a.width(), b.width()
		if wa+wb >= 64 {
			return kbTop
		}
		return kbits{zero: ^((uint64(1) << (wa + wb)) - 1)}
	case isa.OpAND:
		return kbits{zero: a.zero | b.zero, one: a.one & b.one}
	case isa.OpBIS:
		return kbits{zero: a.zero & b.zero, one: a.one | b.one}
	case isa.OpXOR:
		return kbits{zero: a.zero&b.zero | a.one&b.one, one: a.zero&b.one | a.one&b.zero}
	case isa.OpBIC: // a &^ b
		return kbits{zero: a.zero | b.one, one: a.one & b.zero}
	case isa.OpORNOT: // a | ^b
		return kbits{zero: a.zero & b.one, one: a.one | b.zero}
	case isa.OpSLL:
		if b.ok() {
			s := uint(b.val() & 63)
			return kbits{zero: a.zero<<s | (uint64(1)<<s - 1), one: a.one << s}
		}
	case isa.OpSRL:
		if b.ok() {
			s := uint(b.val() & 63)
			hi := ^uint64(0) << (64 - s)
			if s == 0 {
				hi = 0
			}
			return kbits{zero: a.zero>>s | hi, one: a.one >> s}
		}
	case isa.OpSRA:
		if b.ok() {
			s := uint(b.val() & 63)
			if s == 0 {
				return a
			}
			hi := ^uint64(0) << (64 - s)
			switch {
			case a.zero>>63 != 0: // sign known zero
				return kbits{zero: a.zero>>s | hi, one: a.one >> s}
			case a.one>>63 != 0: // sign known one
				return kbits{zero: a.zero >> s &^ hi, one: a.one>>s | hi}
			}
		}
	case isa.OpCMPEQ, isa.OpCMPLT, isa.OpCMPLE, isa.OpCMPULT, isa.OpCMPULE:
		return kbits{zero: ^uint64(1)} // result is 0 or 1
	case isa.OpADDL, isa.OpSUBL:
		return kbTop // sign extension spoils width reasoning
	default:
		// Branches, memory ops, and remaining operates have no known-bits
		// transfer worth modelling.
	}
	return kbTop
}

// memSite is the resolved address behaviour of one load or store: where it
// points, which address-bit flips merely misalign it (immediate alignment
// fault), which may land on mapped memory (fault-free, wrong location), and —
// implicitly — which leave the mapped space entirely (access fault).
type memSite struct {
	isStore bool
	size    uint64
	kind    avKind
	addr    uint64 // exact address when kind == avConst
	seg     int    // segment id when const/region resolves, else segNone
	align   uint64 // flip mask: misaligns the access
	stay    uint64 // flip mask: may stay on mapped memory (excludes align)
}

// excBits returns the address-bit flips that must fault: misalignment plus
// departures from mapped memory.
func (s *memSite) excBits() uint64 { return ^s.stay }

type absResult struct {
	layout *layout
	sites  []*memSite // per instruction index; nil for non-memory ops
	ka, kb []kbits    // per instruction operand known-bits (Ra, Rb sides)
}

type astate [isa.NumRegs]aval

func (ai *absinterp) get(st *astate, r isa.Reg) aval {
	if r == isa.RegZero {
		return constAV(0)
	}
	return st[r]
}

type absinterp struct {
	g   *cfg
	lay *layout
	res *absResult
}

// runAbsint runs the forward analysis to fixpoint and materialises per-site
// address facts and per-instruction operand known-bits.
func runAbsint(g *cfg, lay *layout) *absResult {
	ai := &absinterp{
		g:   g,
		lay: lay,
		res: &absResult{
			layout: lay,
			sites:  make([]*memSite, len(g.insts)),
			ka:     make([]kbits, len(g.insts)),
			kb:     make([]kbits, len(g.insts)),
		},
	}
	n := len(g.blocks)
	in := make([]astate, n)
	seen := make([]bool, n)
	order := g.reversePostorder()

	seen[g.entry] = true
	for changed := true; changed; {
		changed = false
		for _, b := range order {
			if !seen[b] {
				continue
			}
			st := in[b]
			for i := g.blocks[b].start; i < g.blocks[b].end; i++ {
				ai.xfer(&st, i, false)
			}
			for _, s := range g.blocks[b].succs {
				if !seen[s] {
					seen[s] = true
					in[s] = st
					changed = true
					continue
				}
				merged := in[s]
				diff := false
				for r := range merged {
					j := ai.lay.joinAV(merged[r], st[r])
					if j != merged[r] {
						merged[r] = j
						diff = true
					}
				}
				if diff {
					in[s] = merged
					changed = true
				}
			}
		}
	}
	// Final pass: record sites and operand facts from converged states.
	for b := range g.blocks {
		if !seen[b] {
			continue
		}
		st := in[b]
		for i := g.blocks[b].start; i < g.blocks[b].end; i++ {
			ai.xfer(&st, i, true)
		}
	}
	return ai.res
}

// xfer advances the abstract state over instruction idx. When record is set,
// memory sites and operand known-bits are captured.
func (ai *absinterp) xfer(st *astate, idx int, record bool) {
	inst := ai.g.insts[idx]
	lay := ai.lay
	set := func(r isa.Reg, v aval) {
		if r != isa.RegZero {
			st[r] = v
		}
	}
	if record {
		switch {
		case isa.ClassOf(inst.Op) == isa.ClassALU || isa.ClassOf(inst.Op) == isa.ClassMul:
			ai.res.ka[idx] = ai.get(st, inst.Ra).kb
			if inst.UseLit {
				ai.res.kb[idx] = kbConst(uint64(inst.Lit))
			} else {
				ai.res.kb[idx] = ai.get(st, inst.Rb).kb
			}
		case inst.IsCondBranch():
			ai.res.ka[idx] = ai.get(st, inst.Ra).kb
		}
	}

	switch isa.ClassOf(inst.Op) {
	case isa.ClassALU, isa.ClassMul:
		switch inst.Op {
		case isa.OpLDA:
			set(inst.Ra, addDelta(ai.get(st, inst.Rb), uint64(int64(inst.Disp))))
			return
		case isa.OpLDAH:
			set(inst.Ra, addDelta(ai.get(st, inst.Rb), uint64(int64(inst.Disp))<<16))
			return
		case isa.OpCMOVEQ, isa.OpCMOVNE:
			set(inst.Rc, lay.joinAV(ai.get(st, inst.Rc), ai.get(st, inst.Rb)))
			return
		default:
			// Every other ALU/Mul opcode takes the generic operate path below.
		}
		a := ai.get(st, inst.Ra)
		b := constAV(uint64(inst.Lit))
		if !inst.UseLit {
			b = ai.get(st, inst.Rb)
		}
		var res aval
		switch {
		case a.kind == avConst && b.kind == avConst:
			v, _ := isa.EvalOperate(inst.Op, a.c, b.c)
			res = constAV(v)
		case inst.Op == isa.OpADDQ || inst.Op == isa.OpADDQV ||
			inst.Op == isa.OpADDL:
			res = lay.combineAdd(a, b)
		case inst.Op == isa.OpSUBQ || inst.Op == isa.OpSUBQV ||
			inst.Op == isa.OpSUBL:
			res = lay.combineSub(a, b)
		case inst.Op == isa.OpBIS && !inst.UseLit && inst.Ra == inst.Rb:
			res = a // register-to-register move idiom
		default:
			res = aval{kind: avAny, kb: kbEval(inst.Op, a.kb, b.kb)}
		}
		set(inst.Rc, res)

	case isa.ClassLoad:
		av := addDelta(ai.get(st, inst.Rb), uint64(int64(inst.Disp)))
		if record {
			ai.res.sites[idx] = ai.makeSite(av, inst.MemBytes(), false)
		}
		// Locality heuristic: a value loaded from segment s is, if later
		// used as an address, assumed to point back into s (linked nodes
		// and stored cursors stay in their own structure).
		seg := segNone
		switch av.kind {
		case avConst:
			seg = lay.resolveSeg(av.c)
		case avRegion:
			seg = av.seg
		}
		if seg != segNone {
			set(inst.Ra, aval{kind: avRegion, seg: seg})
		} else {
			set(inst.Ra, anyAV)
		}

	case isa.ClassStore:
		if record {
			av := addDelta(ai.get(st, inst.Rb), uint64(int64(inst.Disp)))
			ai.res.sites[idx] = ai.makeSite(av, inst.MemBytes(), true)
		}

	case isa.ClassBranch:
		if d, ok := inst.Dest(); ok {
			set(d, constAV(ai.g.pc(idx)+isa.InstBytes))
		}
	}
}

// makeSite classifies every address bit of a memory access by what flipping
// it does: misalign (immediate alignment fault), stay on mapped memory
// (access succeeds at a wrong location), or leave the mapped space (access
// fault — the paper's dominant symptom, enabled by the sparse address space).
func (ai *absinterp) makeSite(av aval, size uint64, isStore bool) *memSite {
	lay := ai.lay
	s := &memSite{isStore: isStore, size: size, kind: av.kind, seg: segNone}
	switch size {
	case 8:
		s.align = 0x7
	case 4:
		s.align = 0x3
	}
	var rep uint64
	haveRep := false
	switch av.kind {
	case avConst:
		s.addr = av.c
		s.seg = lay.resolveSeg(av.c)
		rep, haveRep = av.c, true
	case avRegion:
		s.seg = av.seg
		rep, haveRep = lay.segBase(av.seg)+lay.slotArea, true
	}
	if !haveRep {
		// Unknown address: treat every non-alignment flip as leaving the
		// mapped space. Junk pointers overwhelmingly fault (Section 3.1).
		return s
	}
	segPages := (lay.segLen(s.seg) + mem.PageSize - 1) / mem.PageSize
	for b := uint(0); b < 64; b++ {
		bit := uint64(1) << b
		if bit&s.align != 0 {
			continue
		}
		if av.kind == avRegion && bit < segPages*mem.PageSize {
			// Some offset in the segment keeps the flipped address inside
			// the segment's mapped pages.
			s.stay |= bit
			continue
		}
		if lay.mapped(rep^bit, isStore) {
			s.stay |= bit
		}
	}
	return s
}
