// Package fixture holds registration patterns stateregister must accept.
package fixture

type StateSpace struct{}

func (s *StateSpace) Register(name string, kind, class int, word *uint64, bits int) {}

type queue struct {
	slots [2]uint64
	head  uint64
	// Timing bookkeeping is exempted with a justification; the legacy
	// statecheck spelling on doneAt must keep working after migration.
	stamp  uint64 //restorelint:ignore stateregister -- scheduling metadata, not a latch
	doneAt uint64 //statecheck:ignore — completion timing
	busy   bool   // non-uint64 fields carry no obligation
}

func (q *queue) register(s *StateSpace) {
	for i := range q.slots {
		s.Register("q.slots", 0, 0, &q.slots[i], 64)
	}
	s.Register("q.head", 0, 0, &q.head, 1)
}

// plain has no register method and no registered fields: no obligation.
type plain struct {
	a uint64
	b [8]uint64
}
