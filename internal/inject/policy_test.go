package inject

import (
	"path/filepath"
	"testing"

	"repro/internal/harden"
	"repro/internal/protect"
)

// testPolicy is a small static-budget policy mixing a parity latch domain
// with the ECC register-file domain. Assignments are listed in sorted
// element order, matching what the constructors produce.
func testPolicy() *protect.Policy {
	return &protect.Policy{
		Name: "test-policy", Kind: protect.KindStaticBudget, BudgetBits: 1300,
		Assign: []protect.Assignment{
			{Elem: "fetchPC", Prot: harden.Parity},
			{Elem: "prf.val", Prot: harden.ECC},
			{Elem: "rob.flags", Prot: harden.Parity},
		},
	}
}

// A campaign under a protection policy must stay deterministic across
// worker counts and sharding, and must visit the exact trial plan of the
// unprotected campaign at the same seed — the pick-before-consult property
// every offline policy comparison in internal/experiments rests on.
func TestUArchPolicyCampaignDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test is slow")
	}
	pol := testPolicy()

	base := resumeUArch("gzip")
	baseline, err := RunUArch(base)
	if err != nil {
		t.Fatal(err)
	}

	cfg := resumeUArch("gzip")
	cfg.Policy = pol
	serial, err := RunUArch(cfg)
	if err != nil {
		t.Fatal(err)
	}

	cfg = resumeUArch("gzip")
	cfg.Policy = pol
	cfg.Workers = 3
	parallel, err := RunUArch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sameUArchResults(t, "serial vs parallel", serial, parallel)

	dirs := []string{filepath.Join(t.TempDir(), "s0"), filepath.Join(t.TempDir(), "s1")}
	for i, d := range dirs {
		scfg := resumeUArch("gzip")
		scfg.Policy = pol
		scfg.ResumeFrom = d
		scfg.ShardIndex, scfg.ShardCount = i, 2
		scfg.Workers = 2
		if _, err := RunUArch(scfg); err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
	}
	mcfg := resumeUArch("gzip")
	mcfg.Policy = pol
	merged, err := MergeUArch(mcfg, dirs)
	if err != nil {
		t.Fatal(err)
	}
	sameUArchResults(t, "shard+merge", serial, merged)

	// Pick identity with the unprotected baseline: same points, same
	// elements, same bits, slot for slot. Protection changes outcomes,
	// never picks.
	if len(serial.Trials) != len(baseline.Trials) {
		t.Fatalf("policy campaign visited %d trials, baseline %d", len(serial.Trials), len(baseline.Trials))
	}
	covered := 0
	for i := range baseline.Trials {
		b, s := baseline.Trials[i], serial.Trials[i]
		if b.PointCycle != s.PointCycle || b.Elem != s.Elem || b.Bit != s.Bit {
			t.Fatalf("trial %d picks diverged under policy:\n  baseline %+v\n  policy   %+v", i, b, s)
		}
		wantProt := pol.ProtectionOf(s.Elem) != harden.Unprotected
		if s.Protected != wantProt {
			t.Errorf("trial %d (%s): Protected=%v, policy covers=%v", i, s.Elem, s.Protected, wantProt)
		}
		if s.Protected {
			covered++
			if s.Failing() {
				t.Errorf("trial %d (%s): protected flip classified as failing", i, s.Elem)
			}
		}
	}
	if covered == 0 {
		t.Error("no trial landed in a policy-covered element; pick-identity check is vacuous")
	}
}

// The policy fingerprint is part of the campaign plan: resuming a journal
// under a different policy must be refused, not silently blended.
func TestUArchPolicyEntersPlan(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "campaign")
	cfg := resumeUArch("gzip")
	cfg.Policy = testPolicy()
	cfg.ResumeFrom = dir
	if _, err := RunUArch(cfg); err != nil {
		t.Fatal(err)
	}

	other := resumeUArch("gzip")
	other.Policy = nil
	other.ResumeFrom = dir
	if _, err := RunUArch(other); err == nil {
		t.Fatal("resuming a policy campaign without its policy succeeded")
	}
}

// The VM campaign's software-level fault model injects register-file
// values, so a policy covering prf.val absorbs every trial; one not
// covering it changes nothing.
func TestVMPolicyAbsorbsRegisterFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test is slow")
	}
	baseline, err := RunVM(resumeVM("gzip"))
	if err != nil {
		t.Fatal(err)
	}

	cfg := resumeVM("gzip")
	cfg.Policy = testPolicy()
	covered, err := RunVM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(covered.Trials) != len(baseline.Trials) {
		t.Fatalf("%d trials vs baseline %d", len(covered.Trials), len(baseline.Trials))
	}
	for i, tr := range covered.Trials {
		if !tr.Protected || !tr.Masked {
			t.Fatalf("trial %d under prf.val ECC: %+v, want Protected+Masked", i, tr)
		}
		if b := baseline.Trials[i]; tr.Point != b.Point || tr.Bit != b.Bit {
			t.Fatalf("trial %d picks diverged: %+v vs %+v", i, tr, b)
		}
	}

	// Same campaign under parallel workers agrees bit for bit.
	cfg = resumeVM("gzip")
	cfg.Policy = testPolicy()
	cfg.Workers = 3
	par, err := RunVM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sameVMResults(t, "serial vs parallel", covered, par)

	// A policy that leaves the register file unprotected reproduces the
	// baseline exactly.
	latchOnly := &protect.Policy{Name: "latch-only", Kind: protect.KindStaticBudget,
		Assign: []protect.Assignment{{Elem: "fetchPC", Prot: harden.Parity}}}
	cfg = resumeVM("gzip")
	cfg.Policy = latchOnly
	same, err := RunVM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sameVMResults(t, "latch-only vs baseline", baseline, same)
}
