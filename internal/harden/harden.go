// Package harden models the "low-hanging fruit" protection of the paper's
// Section 5.2.2 (from the authors' DSN-2004 work): parity on the control
// word latches within the pipeline and ECC on the register file and other
// key data stores (alias tables, fetch queue).
//
// The protection map classifies every element of a pipeline's state space
// into a protection domain. Fault-injection campaigns consult the map: a
// flip landing in an ECC-protected element is corrected in place, and one
// landing in a parity-protected element is detected on read and recovered
// by a pipeline flush — in both cases the fault cannot cause failure, which
// is exactly how the paper's hardened-pipeline campaign (Figure 6) treats
// them.
package harden

import (
	"strings"

	"repro/internal/pipeline"
)

// Protection is the domain of one state element.
type Protection uint8

// Protection domains.
const (
	// Unprotected elements take faults at face value.
	Unprotected Protection = iota
	// Parity detects single-bit flips on read; recovery is a pipeline
	// flush (the corrupt in-flight state is discarded and refetched).
	Parity
	// ECC corrects single-bit flips on read.
	ECC
)

// String names the protection domain.
func (p Protection) String() string {
	switch p {
	case Parity:
		return "parity"
	case ECC:
		return "ecc"
	}
	return "unprotected"
}

// Scheme selects a placement of protection over the state space.
type Scheme uint8

// Available schemes.
const (
	// None leaves the whole pipeline unprotected (the baseline).
	None Scheme = iota
	// LowHangingFruit is the paper's Section 5.2.2 placement: ECC on the
	// SRAM arrays whose data lives long enough to protect cheaply
	// (register file, both alias tables, free list, fetch queue), parity
	// on the in-pipeline control word latches (decoded instructions in
	// the ROB and scheduler and the raw words in the fetch queue).
	LowHangingFruit
)

// eccPrefixes and parityPrefixes classify elements by registered name.
var (
	eccPrefixes = []string{
		"prf.val", "prf.ready", "specRAT", "archRAT", "freelist",
	}
	parityPrefixes = []string{
		"rob.ctl", "fq.word", "fq.pc", "sched.",
	}
)

// Map assigns a protection domain to every element of one state space.
type Map struct {
	prot []Protection
}

// NewMap classifies the elements of the given state space under the scheme.
func NewMap(space *pipeline.StateSpace, scheme Scheme) *Map {
	elems := space.Elements()
	m := &Map{prot: make([]Protection, len(elems))}
	if scheme == None {
		return m
	}
	for i := range elems {
		name := elems[i].Name
		switch {
		case hasAnyPrefix(name, eccPrefixes):
			m.prot[i] = ECC
		case hasAnyPrefix(name, parityPrefixes):
			m.prot[i] = Parity
		}
	}
	return m
}

func hasAnyPrefix(name string, prefixes []string) bool {
	for _, p := range prefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// Protection returns the domain of element index i.
func (m *Map) Protection(i int) Protection {
	if i < 0 || i >= len(m.prot) {
		return Unprotected
	}
	return m.prot[i]
}

// Protected reports whether the element is covered by parity or ECC.
func (m *Map) Protected(i int) bool { return m.prot[i] != Unprotected }

// Stats summarises a protection map over its state space.
type Stats struct {
	TotalBits    uint64
	ECCBits      uint64
	ParityBits   uint64
	OverheadBits uint64 // extra check bits the protection costs
}

// CoveredFraction returns the fraction of state bits under any protection.
func (s Stats) CoveredFraction() float64 {
	if s.TotalBits == 0 {
		return 0
	}
	return float64(s.ECCBits+s.ParityBits) / float64(s.TotalBits)
}

// OverheadFraction returns check bits relative to total state, the paper's
// "approximately 7% additional state in the execution core".
func (s Stats) OverheadFraction() float64 {
	if s.TotalBits == 0 {
		return 0
	}
	return float64(s.OverheadBits) / float64(s.TotalBits)
}

// Survey computes coverage and overhead statistics for the map over its
// space. Overhead: parity costs 1 check bit per protected word; ECC costs
// SEC-DED width (⌈log2 n⌉ + 2) per protected word.
func Survey(space *pipeline.StateSpace, m *Map) Stats {
	var s Stats
	for i, e := range space.Elements() {
		bits := uint64(e.Bits)
		s.TotalBits += bits
		switch m.Protection(i) {
		case ECC:
			s.ECCBits += bits
			s.OverheadBits += secdedBits(bits)
		case Parity:
			s.ParityBits += bits
			s.OverheadBits++
		}
	}
	return s
}

func secdedBits(dataBits uint64) uint64 {
	check := uint64(0)
	for (uint64(1) << check) < dataBits+check+1 {
		check++
	}
	return check + 1 // +1 for double-error detection
}
