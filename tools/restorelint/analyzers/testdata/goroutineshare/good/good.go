// Package fixture holds the goroutine-sharing shapes the analyzer must
// accept: the engine's pre-assigned indexed-slot idiom, channel and
// sync-typed captures, closures that visibly lock, per-iteration captures,
// read-only package state, and a justified //restorelint:ignore escape.
package fixture

import "sync"

// slotIdiom is the campaign engine's determinism pattern: every goroutine
// writes a disjoint pre-assigned slot indexed by a per-task value.
func slotIdiom(n int) []int {
	trials := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		slot := i
		wg.Add(1)
		go func() {
			trials[slot] = slot * 2
			wg.Done()
		}()
	}
	wg.Wait()
	return trials
}

func channels(n int) int {
	ch := make(chan int, n)
	for i := 0; i < n; i++ {
		go func() { ch <- i }()
	}
	sum := 0
	for j := 0; j < n; j++ {
		sum += <-ch
	}
	return sum
}

func locked(n int) int {
	var mu sync.Mutex
	total := 0
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			total++
			mu.Unlock()
		}()
	}
	wg.Wait()
	return total
}

func perIteration(n int) {
	done := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		local := []int{}
		go func() {
			local = append(local, i) // per-iteration instance: task-local
			done <- struct{}{}
		}()
	}
}

// readOnlyConfig is never assigned after initialization, so capturing it is
// harmless.
var readOnlyConfig = 42

func readsConfig(done chan struct{}) {
	go func() {
		_ = readOnlyConfig
		done <- struct{}{}
	}()
}

// tuned is mutated by test helpers only; the single-goroutine harness never
// runs the spawn concurrently with the tuning, which the directive records.
var tuned int

func setTuned(v int) { tuned = v }

func spawnIgnored(done chan struct{}) {
	go func() {
		//restorelint:ignore goroutineshare -- harness is single-goroutine; tuning finishes before the spawn
		_ = tuned
		done <- struct{}{}
	}()
}
