// Package restore implements the ReStore architecture — the paper's primary
// contribution: symptom-based soft-error detection layered on checkpoint/
// rollback hardware.
//
// A restore.Processor wraps the detailed pipeline with:
//
//   - periodic architectural checkpoints every Interval instructions, two of
//     which are live at any time, so rollback always reaches at least one
//     full interval into the past (Section 5.2.3);
//   - symptom detectors: ISA exceptions, high-confidence branch
//     mispredictions (via the JRS estimator in the pipeline front end), and
//     watchdog-timer saturation (Sections 3.2.1-3.2.2);
//   - rollback on symptom, with immediate or delayed policy;
//   - an event log of branch outcomes that detects soft errors by
//     comparing the original and redundant executions (Section 3.2.3), and
//     distinguishes genuine exceptions (recur on replay) from fault-induced
//     ones (vanish);
//   - dynamic tuning: when false-positive rollbacks cluster, branch
//     symptoms are temporarily ignored to bound the performance loss
//     (Section 3.2.3).
package restore

import (
	"errors"
	"fmt"

	"repro/internal/arch"
	"repro/internal/checkpoint"
	"repro/internal/obs"
	"repro/internal/pipeline"
)

// Policy selects when a detected symptom triggers the rollback.
type Policy uint8

// Rollback policies evaluated in Section 5.2.3.
const (
	// PolicyImmediate rolls back as soon as a symptom fires. Several
	// symptoms within one interval can each pay the rollback cost.
	PolicyImmediate Policy = iota + 1
	// PolicyDelayed defers the rollback to the end of the current
	// checkpoint interval, coalescing multiple symptoms into one
	// rollback.
	PolicyDelayed
)

// Config parameterises the ReStore mechanisms. The zero value of each
// Disable* field leaves the corresponding detector enabled.
type Config struct {
	// Interval is the number of retired instructions between
	// checkpoints (the paper sweeps 25..2000; default 100).
	Interval uint64
	// Checkpoints is the number of live checkpoints (default 2).
	Checkpoints int
	// Policy is the rollback policy (default PolicyImmediate).
	Policy Policy

	// Symptom selection.
	DisableExceptionSymptom bool
	DisableBranchSymptom    bool
	DisableDeadlockSymptom  bool

	// EventLogSize is the branch-outcome log capacity (default 8192).
	EventLogSize int

	// LogLoadValues additionally records committed load values in a load
	// value queue (Section 3.2.3's LVQ) and compares them during replay:
	// a value divergence is a detected soft error even when no branch
	// outcome changed.
	LogLoadValues bool

	// Dynamic tuning (0 disables): if more than TuneLimit rollbacks
	// occur within TuneWindow retired instructions, branch symptoms are
	// muted for TuneCooldown instructions.
	TuneWindow   uint64
	TuneLimit    uint64
	TuneCooldown uint64

	// EnableCacheMissSymptom treats L1 data-cache misses as rollback
	// triggers. Section 3.3 evaluates this candidate and rejects it:
	// misses score well on coverage and latency but are far too common
	// in error-free execution, so enabling this drowns the machine in
	// false-positive rollbacks. It is provided to make that trade-off
	// measurable in the framework.
	EnableCacheMissSymptom bool

	// VerifyDetections enables the paper's optional third execution
	// (Section 3.2.3): when the event log detects a divergence between
	// the original and redundant executions, roll back once more and
	// re-execute; if the third pass agrees with the second, the soft
	// error is confirmed to have corrupted the ORIGINAL execution.
	VerifyDetections bool

	// Obs, if non-nil, receives symptom/rollback telemetry under the
	// restore_* namespace: per-kind symptom counters plus rollback-depth
	// and detection-latency histograms. Write-only: the processor never
	// reads it back, so runs are identical with or without a sink.
	Obs obs.Sink

	// Trace, if non-nil, receives one event per symptom-triggered rollback
	// (named by symptom kind, with cycle/index/depth/latency fields). Like
	// Obs, purely observational.
	Trace *obs.Trace
}

// Validate reports configuration errors that applyDefaults cannot repair.
// Zero values mean "use the default"; negative sizes are contradictions (a
// backwards checkpoint store, a sub-empty event log) and are rejected
// instead of being silently clamped, so a caller that computed a size wrong
// hears about it. (Interval and the tuning windows are unsigned and cannot
// go negative.)
func (c Config) Validate() error {
	if c.Checkpoints < 0 {
		return fmt.Errorf("restore: negative Checkpoints %d", c.Checkpoints)
	}
	if c.EventLogSize < 0 {
		return fmt.Errorf("restore: negative EventLogSize %d", c.EventLogSize)
	}
	if c.Policy != 0 && c.Policy != PolicyImmediate && c.Policy != PolicyDelayed {
		return fmt.Errorf("restore: unknown Policy %d", c.Policy)
	}
	return nil
}

func (c *Config) applyDefaults() {
	if c.Interval == 0 {
		c.Interval = 100
	}
	if c.Checkpoints == 0 {
		c.Checkpoints = 2
	}
	if c.Policy == 0 {
		c.Policy = PolicyImmediate
	}
	if c.EventLogSize == 0 {
		c.EventLogSize = 8192
	}
}

// ErrorRecord describes one soft error the event log detected (Section
// 3.2.3: "soft errors can be detected and logged").
type ErrorRecord struct {
	// Index is the architectural instruction index of the divergent
	// branch.
	Index uint64
	// PC is the branch whose outcome differed between executions.
	PC uint64
	// OriginalTaken/ReplayTaken are the two recorded outcomes.
	OriginalTaken bool
	ReplayTaken   bool
	// Cycle is the pipeline cycle of the detection.
	Cycle uint64
}

// Report accumulates ReStore activity counters.
type Report struct {
	Retired     uint64 // architectural instructions completed (net of replay)
	Cycles      uint64 // total cycles including re-execution
	Checkpoints uint64
	Rollbacks   uint64

	BranchSymptoms    uint64 // high-confidence mispredict symptoms acted on
	ExceptionSymptoms uint64
	DeadlockSymptoms  uint64
	CacheMissSymptoms uint64 // optional cache-miss symptoms acted on
	MutedSymptoms     uint64 // branch symptoms ignored by dynamic tuning

	DetectedErrors    uint64 // event-log divergences between runs
	VanishedSymptoms  uint64 // exception/deadlock symptoms that did not recur
	FalsePositives    uint64 // branch-symptom rollbacks with clean replays
	GenuineExceptions uint64

	// Third-execution verification outcomes (Section 3.2.3, optional).
	VerifiedDetections uint64 // third pass agreed with the replay: original was corrupt
	ReplayCorruptions  uint64 // third pass disagreed again: the replay itself was hit
}

// Terminal run conditions.
var (
	// ErrGenuineException reports an exception that recurred on replay:
	// a real program fault the OS must handle, not a soft error.
	ErrGenuineException = errors.New("restore: genuine exception")
	// ErrUnrecoverable reports a deadlock that recurred after rollback.
	ErrUnrecoverable = errors.New("restore: unrecoverable deadlock")
	// ErrCycleBudget reports that the run hit its cycle budget before
	// retiring the requested instructions.
	ErrCycleBudget = errors.New("restore: cycle budget exhausted")
)

// Processor is a pipeline wrapped with the ReStore mechanisms.
type Processor struct {
	pipe  *pipeline.Pipeline
	store *checkpoint.Store
	cfg   Config
	log   *EventLog
	lvq   *LoadValueQueue

	report Report

	// archIndex counts architecturally completed instructions: it rewinds
	// on rollback (unlike the pipeline's raw retirement counter).
	archIndex     uint64
	lastNextPC    uint64
	sinceCP       uint64
	pendingBranch bool // symptom awaiting rollback
	pendingMiss   bool // cache-miss symptom awaiting rollback
	halted        bool

	// Replay bookkeeping.
	replayUntil   uint64 // archIndex the replay must pass; 0 = not replaying
	replaying     bool
	divergence    bool
	branchCause   bool // current replay was triggered by a branch symptom
	pendingVerify bool // event-log divergence awaiting a third execution
	verifying     bool // currently in the third execution

	// Recurring-symptom detection.
	excArmed bool
	excPC    uint64
	excIdx   uint64
	dlArmed  bool
	dlIdx    uint64

	// Dynamic tuning.
	muteUntil   uint64
	windowStart uint64
	windowCount uint64

	errorLog []ErrorRecord
}

// New wraps a pipeline. The pipeline must be freshly positioned at an
// architecturally clean point (its in-flight state is absorbed into the
// first checkpoint). An invalid configuration (Config.Validate) is a
// programming error and panics; call Validate first to handle it as data.
func New(pipe *pipeline.Pipeline, cfg Config) *Processor {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	cfg.applyDefaults()
	p := &Processor{
		pipe:       pipe,
		store:      checkpoint.NewStore(pipe.Memory(), cfg.Checkpoints),
		cfg:        cfg,
		log:        NewEventLog(cfg.EventLogSize),
		lastNextPC: pipe.CommitPC(),
	}
	if cfg.LogLoadValues {
		p.lvq = NewLoadValueQueue(cfg.EventLogSize)
	}
	p.pipe.CommitHook = p.onCommit
	p.pipe.BranchHook = p.onBranch
	if cfg.EnableCacheMissSymptom {
		p.pipe.MissHook = p.onCacheMiss
	}
	if cfg.Obs != nil {
		// The wrapped pipeline reports its per-stage counters into the
		// same sink as the ReStore symptom telemetry.
		p.pipe.AttachObs(cfg.Obs, "pipeline")
	}
	p.createCheckpoint()
	return p
}

// Pipeline exposes the wrapped pipeline (for state injection in campaigns
// and examples).
func (p *Processor) Pipeline() *pipeline.Pipeline { return p.pipe }

// Store exposes the checkpoint store (for checkpoint-cost accounting; see
// checkpoint.Store.EnableCosting).
func (p *Processor) Store() *checkpoint.Store { return p.store }

// Report returns a copy of the activity counters.
func (p *Processor) Report() Report {
	r := p.report
	r.Retired = p.archIndex
	r.Cycles = p.pipe.Cycles()
	return r
}

// Replaying reports whether the processor is currently re-executing a
// rolled-back region.
func (p *Processor) Replaying() bool { return p.replaying }

// ErrorLog returns the detected-error records accumulated so far (a copy).
func (p *Processor) ErrorLog() []ErrorRecord {
	return append([]ErrorRecord(nil), p.errorLog...)
}

func (p *Processor) createCheckpoint() {
	p.store.Create(p.pipe.ArchRegs(), p.lastNextPC, p.archIndex)
	p.report.Checkpoints++
	p.sinceCP = 0
}

// onCommit runs inside the pipeline's commit stage for every retired
// instruction.
func (p *Processor) onCommit(ev pipeline.CommitEvent) {
	if ev.Exception != arch.ExcNone {
		return // handled via pipeline status after the cycle
	}
	p.archIndex++
	p.lastNextPC = ev.Target
	p.sinceCP++
	if ev.Halted {
		p.halted = true
		return
	}

	if ev.IsBranch {
		rec := BranchRecord{Index: p.archIndex - 1, PC: ev.PC, Taken: ev.Taken, Target: ev.Target}
		if p.replaying && !p.divergence {
			if prev, ok := p.log.Lookup(rec.Index); ok && !prev.Equal(rec) {
				// The original and redundant executions disagree:
				// a soft error corrupted one of them (Section
				// 3.2.3's detection mechanism).
				p.report.DetectedErrors++
				p.divergence = true
				p.errorLog = append(p.errorLog, ErrorRecord{
					Index:         rec.Index,
					PC:            rec.PC,
					OriginalTaken: prev.Taken,
					ReplayTaken:   rec.Taken,
					Cycle:         p.pipe.Cycles(),
				})
			}
		}
		p.log.Append(rec)
	}

	if ev.IsLoad && p.lvq != nil {
		rec := LoadRecord{Index: p.archIndex - 1, Addr: ev.MemAddr, Value: ev.DestVal}
		if p.replaying && !p.divergence {
			if prev, ok := p.lvq.Lookup(rec.Index); ok && prev != rec {
				// The same dynamic load produced a different value:
				// a soft error corrupted data without disturbing
				// control flow. Only the LVQ can see this.
				p.report.DetectedErrors++
				p.divergence = true
				p.errorLog = append(p.errorLog, ErrorRecord{
					Index: rec.Index,
					PC:    ev.PC,
					Cycle: p.pipe.Cycles(),
				})
			}
		}
		p.lvq.Append(rec)
	}

	if p.replaying && p.archIndex >= p.replayUntil {
		p.finishReplay()
	}

	if p.sinceCP >= p.cfg.Interval {
		if (p.pendingBranch || p.pendingMiss) && p.cfg.Policy == PolicyDelayed {
			return // rollback happens after this cycle, not a checkpoint
		}
		p.createCheckpoint()
	}
}

func (p *Processor) finishReplay() {
	p.replaying = false
	p.replayUntil = 0
	diverged := p.divergence
	p.divergence = false

	if p.verifying {
		// This pass was the optional third execution. Agreement with
		// the (logged) second pass confirms the original execution
		// was the corrupted one; another disagreement means the
		// replay itself was struck.
		p.verifying = false
		if diverged {
			p.report.ReplayCorruptions++
		} else {
			p.report.VerifiedDetections++
		}
		p.branchCause = false
		return
	}

	if p.branchCause && !diverged {
		// The redundant execution reproduced the original exactly:
		// the high-confidence misprediction was a real misprediction,
		// not a soft error. The rollback cost was wasted.
		p.report.FalsePositives++
	}
	p.branchCause = false
	if diverged && p.cfg.VerifyDetections {
		p.pendingVerify = true
	}
	if p.excArmed && p.archIndex > p.excIdx {
		// The exception did not recur: it was fault-induced and is now
		// recovered.
		p.report.VanishedSymptoms++
		p.excArmed = false
	}
	if p.dlArmed && p.archIndex > p.dlIdx {
		p.report.VanishedSymptoms++
		p.dlArmed = false
	}
}

// onBranch observes branch resolutions for the high-confidence-misprediction
// symptom.
func (p *Processor) onBranch(ev pipeline.BranchEvent) {
	if !ev.Symptom() || p.cfg.DisableBranchSymptom {
		return
	}
	if p.replaying {
		// The event log supplies known-good outcomes during
		// re-execution; mispredictions there are expected noise, not
		// fresh symptoms (Section 5.2.3 models replay with perfect
		// prediction).
		return
	}
	if p.muted() {
		p.report.MutedSymptoms++
		return
	}
	p.pendingBranch = true
}

// onCacheMiss treats a data-cache miss as a symptom when enabled. Misses
// share the branch symptom's muting and replay suppression.
func (p *Processor) onCacheMiss(uint64) {
	if p.replaying {
		return
	}
	if p.muted() {
		p.report.MutedSymptoms++
		return
	}
	p.pendingMiss = true
}

func (p *Processor) muted() bool {
	return p.cfg.TuneWindow > 0 && p.archIndex < p.muteUntil
}

func (p *Processor) noteRollbackForTuning() {
	if p.cfg.TuneWindow == 0 {
		return
	}
	if p.archIndex-p.windowStart > p.cfg.TuneWindow {
		p.windowStart = p.archIndex
		p.windowCount = 0
	}
	p.windowCount++
	if p.windowCount > p.cfg.TuneLimit {
		p.muteUntil = p.archIndex + p.cfg.TuneCooldown
		p.windowCount = 0
		p.windowStart = p.archIndex
	}
}

// rollback restores the oldest checkpoint and enters replay mode up to the
// given architectural index. kind names the triggering symptom for
// telemetry ("branch", "cache_miss", "exception", "deadlock", "verify").
func (p *Processor) rollback(symptomIdx uint64, branchCause bool, kind string) error {
	// Detection latency proxy: how far past the restored-to region the
	// machine had run when the symptom fired (instructions since the last
	// checkpoint was taken). Captured before the counters reset.
	latency := p.sinceCP
	cp, err := p.store.RestoreOldest()
	if err != nil {
		return fmt.Errorf("rollback without checkpoint: %w", err)
	}
	p.pipe.Reset(cp.Regs, cp.PC)
	p.archIndex = cp.Retired
	p.lastNextPC = cp.PC
	p.report.Rollbacks++
	p.pendingBranch = false
	p.replaying = true
	p.divergence = false
	p.branchCause = branchCause
	if symptomIdx < cp.Retired {
		symptomIdx = cp.Retired
	}
	p.replayUntil = symptomIdx + 1
	// Re-anchor a checkpoint at the restore point so a repeated symptom
	// can roll back again.
	p.store.Create(cp.Regs, cp.PC, cp.Retired)
	p.report.Checkpoints++
	p.sinceCP = 0
	p.noteRollbackForTuning()
	p.noteRollbackObs(kind, symptomIdx, p.replayUntil-cp.Retired, latency)
	return nil
}

// noteRollbackObs emits the write-only telemetry for one rollback. Every
// handle is nil-safe, so without a sink/trace this is a handful of nil
// checks and nothing more.
func (p *Processor) noteRollbackObs(kind string, symptomIdx, depth, latency uint64) {
	sink := p.cfg.Obs
	sink.Counter("restore_rollbacks_total").Inc()
	sink.Counter("restore_symptom_" + kind + "_total").Inc()
	sink.Hist("restore_rollback_depth_insts").Observe(int64(depth))
	sink.Hist("restore_detection_latency_insts").Observe(int64(latency))
	p.cfg.Trace.Emit(kind,
		obs.F("cycle", int64(p.pipe.Cycles())),
		obs.F("index", int64(symptomIdx)),
		obs.F("depth", int64(depth)),
		obs.F("latency", int64(latency)),
	)
}

// Run executes until n architectural instructions have been retired (net of
// replays), the program halts, the cycle budget is exhausted, or a genuine
// exception/deadlock terminates execution. It returns the final report.
func (p *Processor) Run(n, maxCycles uint64) (Report, error) {
	budget := p.pipe.Cycles() + maxCycles
	for p.archIndex < n && !p.halted {
		if p.pipe.Cycles() >= budget {
			return p.Report(), ErrCycleBudget
		}
		p.pipe.Cycle()

		switch p.pipe.Status() {
		case pipeline.StatusRunning:
			if p.pendingVerify {
				p.pendingVerify = false
				p.verifying = true
				if err := p.rollback(p.archIndex, false, "verify"); err != nil {
					return p.Report(), err
				}
				continue
			}
			pending := p.pendingBranch || p.pendingMiss
			immediate := pending && p.cfg.Policy == PolicyImmediate
			// Delayed policy: hold the symptom until the interval
			// boundary, coalescing repeats into one rollback.
			delayed := pending && p.cfg.Policy == PolicyDelayed &&
				p.sinceCP >= p.cfg.Interval
			if immediate || delayed {
				kind := "cache_miss"
				if p.pendingBranch {
					p.report.BranchSymptoms++
					kind = "branch"
				}
				if p.pendingMiss {
					p.report.CacheMissSymptoms++
					p.pendingMiss = false
				}
				if err := p.rollback(p.archIndex, p.pendingBranch, kind); err != nil {
					return p.Report(), err
				}
			}

		case pipeline.StatusHalted:
			p.halted = true

		case pipeline.StatusExcepted:
			kind, pc, _ := p.pipe.Exception()
			if p.cfg.DisableExceptionSymptom {
				return p.Report(), fmt.Errorf("%w: %v at %#x", ErrGenuineException, kind, pc)
			}
			if p.excArmed && p.excPC == pc && p.archIndex == p.excIdx {
				// Recurred at the same architectural point: the
				// exception is genuine (Section 3.2.1).
				p.report.GenuineExceptions++
				return p.Report(), fmt.Errorf("%w: %v at %#x", ErrGenuineException, kind, pc)
			}
			p.report.ExceptionSymptoms++
			p.excArmed = true
			p.excPC = pc
			p.excIdx = p.archIndex
			if err := p.rollback(p.archIndex, false, "exception"); err != nil {
				return p.Report(), err
			}

		case pipeline.StatusDeadlocked:
			if p.cfg.DisableDeadlockSymptom {
				return p.Report(), ErrUnrecoverable
			}
			if p.dlArmed && p.archIndex == p.dlIdx {
				return p.Report(), ErrUnrecoverable
			}
			p.report.DeadlockSymptoms++
			p.dlArmed = true
			p.dlIdx = p.archIndex
			if err := p.rollback(p.archIndex, false, "deadlock"); err != nil {
				return p.Report(), err
			}
		}
	}
	return p.Report(), nil
}
