package fit

import (
	"math"
	"testing"
)

func TestPaperHeadlineNumbers(t *testing.T) {
	m := PaperModel()
	// 2x MTBF for ReStore, 7x for lhf+ReStore (paper abstract).
	if got := m.MTBFImprovement(ReStore); math.Abs(got-2.0) > 0.01 {
		t.Errorf("ReStore MTBF improvement = %.2f, want 2.0", got)
	}
	if got := m.MTBFImprovement(LHFReStore); math.Abs(got-7.0) > 0.01 {
		t.Errorf("lhf+ReStore MTBF improvement = %.2f, want 7.0", got)
	}
	if got := m.MTBFImprovement(Baseline); got != 1.0 {
		t.Errorf("baseline improvement = %v", got)
	}
}

func TestGoalFIT(t *testing.T) {
	// Paper: "a reliability goal of 1000 MTBF (years) is reflected by the
	// horizontal line at 115 FIT".
	got := GoalFIT(1000)
	if math.Abs(got-114.2) > 1 {
		t.Errorf("GoalFIT(1000) = %.1f, want ~114-115", got)
	}
}

func TestFITLinearInSize(t *testing.T) {
	m := PaperModel()
	f1 := m.FIT(Baseline, 50_000)
	f2 := m.FIT(Baseline, 100_000)
	if math.Abs(f2/f1-2.0) > 1e-9 {
		t.Errorf("FIT not linear: %v vs %v", f1, f2)
	}
	// 46k bits baseline: 46000*0.001*0.07 = 3.22 FIT.
	if got := m.FIT(Baseline, 46_000); math.Abs(got-3.22) > 0.01 {
		t.Errorf("FIT(46k) = %v", got)
	}
}

func TestMTBFConversion(t *testing.T) {
	// 115 FIT ~ 1000 years.
	if got := MTBFYears(114.2); math.Abs(got-1000) > 5 {
		t.Errorf("MTBFYears(114.2) = %v", got)
	}
	if !math.IsInf(MTBFYears(0), 1) {
		t.Error("zero FIT should be infinite MTBF")
	}
}

func TestSeventhSizeObservation(t *testing.T) {
	// Paper Section 5.3: lhf+ReStore yields an MTBF comparable to a
	// design 1/7th the size (of the unprotected baseline).
	m := PaperModel()
	goal := GoalFIT(1000)
	base := m.MaxSizeMeetingGoal(Baseline, goal)
	best := m.MaxSizeMeetingGoal(LHFReStore, goal)
	ratio := best / base
	if math.Abs(ratio-7.0) > 0.01 {
		t.Errorf("size ratio = %.2f, want 7.0", ratio)
	}
}

func TestSweepShape(t *testing.T) {
	m := PaperModel()
	sizes := DefaultSizes()
	if len(sizes) < 8 {
		t.Fatalf("too few sizes: %d", len(sizes))
	}
	if sizes[0] != 50_000 {
		t.Errorf("first size = %v", sizes[0])
	}
	series := m.Sweep(sizes)
	if len(series) != 4 {
		t.Fatalf("series count = %d", len(series))
	}
	// Ordering at every size: baseline > ReStore > lhf > lhf+ReStore.
	byName := map[string]int{}
	for i, s := range series {
		byName[s.Name] = i
	}
	for i := range sizes {
		b := series[byName["baseline"]].Y[i]
		r := series[byName["ReStore"]].Y[i]
		l := series[byName["lhf"]].Y[i]
		lr := series[byName["lhf+ReStore"]].Y[i]
		if !(b > r && r > l && l > lr) {
			t.Fatalf("ordering violated at size %v: %v %v %v %v", sizes[i], b, r, l, lr)
		}
	}
}

func TestZeroRawDefaults(t *testing.T) {
	m := Model{FailFrac: map[Variant]float64{Baseline: 0.07}}
	if m.FIT(Baseline, 1000) != 1000*RawFITPerBit*0.07 {
		t.Error("zero RawPerBit should default")
	}
	if !math.IsInf(m.MaxSizeMeetingGoal(ReStore, 100), 1) {
		t.Error("missing variant should allow infinite size")
	}
}
