package predictor

// This file holds the golden-checkpoint serialisation of the predictor
// structures. Each SaveState emits only mutable state (tables, history,
// stack contents) in a fixed little-endian layout; geometry comes from each
// structure's configuration, so LoadState validates sizes against the live
// structure and refuses blobs from a differently configured one.

import (
	"encoding/binary"
	"fmt"
)

// SaveState serialises the combined predictor: bimodal table | gshare table
// | chooser table | u64 global history.
func (c *Combined) SaveState() []byte {
	nb, ng, nc := len(c.bimodal.table), len(c.gshare.table), len(c.chooser)
	out := make([]byte, 0, nb+ng+nc+8)
	out = append(out, c.bimodal.table...)
	out = append(out, c.gshare.table...)
	out = append(out, c.chooser...)
	var u [8]byte
	binary.LittleEndian.PutUint64(u[:], c.gshare.hist)
	return append(out, u[:]...)
}

// LoadState restores a Combined blob into an identically configured
// predictor.
func (c *Combined) LoadState(b []byte) error {
	nb, ng, nc := len(c.bimodal.table), len(c.gshare.table), len(c.chooser)
	if len(b) != nb+ng+nc+8 {
		return fmt.Errorf("predictor: combined state blob %d bytes, want %d", len(b), nb+ng+nc+8)
	}
	copy(c.bimodal.table, b[:nb])
	copy(c.gshare.table, b[nb:nb+ng])
	copy(c.chooser, b[nb+ng:nb+ng+nc])
	c.gshare.hist = binary.LittleEndian.Uint64(b[nb+ng+nc:])
	return nil
}

// btbRec is the serialised size of one BTB entry: u8 valid | u64 tag |
// u64 target | u32 lru.
const btbRec = 1 + 8 + 8 + 4

// SaveState serialises the BTB's entries.
func (b *BTB) SaveState() []byte {
	out := make([]byte, len(b.entries)*btbRec)
	off := 0
	for i := range b.entries {
		e := &b.entries[i]
		if e.valid {
			out[off] = 1
		}
		binary.LittleEndian.PutUint64(out[off+1:], e.tag)
		binary.LittleEndian.PutUint64(out[off+9:], e.target)
		binary.LittleEndian.PutUint32(out[off+17:], e.lru)
		off += btbRec
	}
	return out
}

// LoadState restores a BTB blob into an identically configured BTB.
func (b *BTB) LoadState(blob []byte) error {
	if len(blob) != len(b.entries)*btbRec {
		return fmt.Errorf("predictor: btb state blob %d bytes, want %d", len(blob), len(b.entries)*btbRec)
	}
	off := 0
	for i := range b.entries {
		e := &b.entries[i]
		e.valid = blob[off] != 0
		e.tag = binary.LittleEndian.Uint64(blob[off+1:])
		e.target = binary.LittleEndian.Uint64(blob[off+9:])
		e.lru = binary.LittleEndian.Uint32(blob[off+17:])
		off += btbRec
	}
	return nil
}

// SaveState serialises the return-address stack: u64 top | u64 depth |
// stack words.
func (r *RAS) SaveState() []byte {
	out := make([]byte, 16+len(r.stack)*8)
	binary.LittleEndian.PutUint64(out[0:8], uint64(r.top))
	binary.LittleEndian.PutUint64(out[8:16], uint64(r.depth))
	for i, v := range r.stack {
		binary.LittleEndian.PutUint64(out[16+i*8:], v)
	}
	return out
}

// LoadState restores a RAS blob into a same-capacity stack.
func (r *RAS) LoadState(b []byte) error {
	if len(b) != 16+len(r.stack)*8 {
		return fmt.Errorf("predictor: ras state blob %d bytes, want %d", len(b), 16+len(r.stack)*8)
	}
	top := binary.LittleEndian.Uint64(b[0:8])
	depth := binary.LittleEndian.Uint64(b[8:16])
	if top >= uint64(len(r.stack)) || depth > uint64(len(r.stack)) {
		return fmt.Errorf("predictor: ras state top %d / depth %d out of range for capacity %d", top, depth, len(r.stack))
	}
	r.top = int(top)
	r.depth = int(depth)
	for i := range r.stack {
		r.stack[i] = binary.LittleEndian.Uint64(b[16+i*8:])
	}
	return nil
}

// SaveState serialises the JRS confidence table.
func (j *JRS) SaveState() []byte {
	return append([]byte(nil), j.table...)
}

// LoadState restores a JRS blob into an identically configured estimator.
func (j *JRS) LoadState(b []byte) error {
	if len(b) != len(j.table) {
		return fmt.Errorf("predictor: jrs state blob %d bytes, want %d", len(b), len(j.table))
	}
	copy(j.table, b)
	return nil
}

// SaveState serialises the memory-dependence predictor table.
func (m *MemDep) SaveState() []byte {
	return append([]byte(nil), m.table...)
}

// LoadState restores a MemDep blob into an identically configured predictor.
func (m *MemDep) LoadState(b []byte) error {
	if len(b) != len(m.table) {
		return fmt.Errorf("predictor: memdep state blob %d bytes, want %d", len(b), len(m.table))
	}
	copy(m.table, b)
	return nil
}
