package restore

import (
	"testing"

	"repro/internal/pipeline"
	"repro/internal/workload"
)

// TestCacheMissSymptomIsAPoorDetector reproduces the Section 3.3 analysis
// quantitatively: treating data-cache misses as symptoms triggers rollback
// storms on fault-free runs, costing far more cycles than the default
// detectors for the same work.
func TestCacheMissSymptomIsAPoorDetector(t *testing.T) {
	run := func(cacheMiss bool) Report {
		// mcf's pointer chase misses constantly — the worst case the
		// paper warns about.
		prog := workload.MustGenerate(workload.MCF, workload.Config{Seed: 3})
		m, err := prog.NewMemory()
		if err != nil {
			t.Fatal(err)
		}
		pipe, err := pipeline.New(pipeline.DefaultConfig(), m, prog.Entry)
		if err != nil {
			t.Fatal(err)
		}
		proc := New(pipe, Config{
			Interval:               100,
			EnableCacheMissSymptom: cacheMiss,
		})
		rep, err := proc.Run(20_000, 100_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	normal := run(false)
	miss := run(true)

	t.Logf("default detectors: rollbacks=%d cycles=%d", normal.Rollbacks, normal.Cycles)
	t.Logf("with cache-miss symptom: rollbacks=%d (miss symptoms %d) cycles=%d",
		miss.Rollbacks, miss.CacheMissSymptoms, miss.Cycles)

	if miss.CacheMissSymptoms == 0 {
		t.Fatal("cache-miss symptom never fired on mcf")
	}
	if miss.Rollbacks <= normal.Rollbacks {
		t.Error("cache-miss symptom should multiply rollbacks")
	}
	if miss.Cycles <= normal.Cycles {
		t.Error("cache-miss symptom should cost cycles")
	}
	// The point of the paper's metric (3): false positives per kinstruction
	// are orders of magnitude above the branch symptom's.
	missRate := float64(miss.CacheMissSymptoms) / float64(miss.Retired) * 1000
	if missRate < 1 {
		t.Errorf("mcf should miss more than once per kinsn, got %.2f", missRate)
	}
}

// TestCacheMissSymptomStillRecovers confirms the machine remains correct —
// just slow — under miss-triggered rollbacks.
func TestCacheMissSymptomStillRecovers(t *testing.T) {
	prog := workload.MustGenerate(workload.Parser, workload.Config{Seed: 3, Scale: 0.5})
	m, err := prog.NewMemory()
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := pipeline.New(pipeline.DefaultConfig(), m, prog.Entry)
	if err != nil {
		t.Fatal(err)
	}
	proc := New(pipe, Config{Interval: 100, EnableCacheMissSymptom: true})
	rep, err := proc.Run(10_000, 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := goldenRegs(t, prog, rep.Retired)
	if pipe.ArchRegs() != want {
		t.Error("cache-miss rollbacks corrupted architectural state")
	}
}

func TestCacheMissSymptomUnderDelayedPolicy(t *testing.T) {
	// Regression: a pending miss symptom must trigger the delayed-policy
	// rollback at the interval boundary, same as a branch symptom.
	prog := workload.MustGenerate(workload.MCF, workload.Config{Seed: 3, Scale: 0.5})
	m, err := prog.NewMemory()
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := pipeline.New(pipeline.DefaultConfig(), m, prog.Entry)
	if err != nil {
		t.Fatal(err)
	}
	proc := New(pipe, Config{
		Interval:               100,
		Policy:                 PolicyDelayed,
		EnableCacheMissSymptom: true,
	})
	rep, err := proc.Run(10_000, 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CacheMissSymptoms == 0 || rep.Rollbacks == 0 {
		t.Fatalf("delayed policy ignored miss symptoms: %+v", rep)
	}
	// Delayed coalescing: at most one rollback per interval traversed.
	if rep.Rollbacks > rep.Retired/100+rep.Checkpoints {
		t.Errorf("more rollbacks (%d) than intervals", rep.Rollbacks)
	}
}
