package perf

import (
	"math"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/restore"
	"repro/internal/workload"
)

func referenceInputs() Inputs {
	// Suite-typical values: CPI under 1, replay slightly cheaper, one
	// high-confidence mispredict per ~1000 instructions (the JRS
	// estimator is conservative but branch-heavy phases still fire).
	return Inputs{
		BaseCPI:      0.8,
		ReplayCPI:    0.7,
		SymptomRate:  1e-3,
		FlushPenalty: 20,
	}
}

func TestSpeedupShape(t *testing.T) {
	in := referenceInputs()
	intervals := []uint64{50, 100, 200, 500, 1000}

	prevImm := 1.0
	for _, iv := range intervals {
		s := Speedup(in, iv, restore.PolicyImmediate)
		if s <= 0 || s > 1 {
			t.Fatalf("speedup(%d) = %v out of range", iv, s)
		}
		if s > prevImm+1e-12 {
			t.Errorf("immediate speedup increased with interval at %d", iv)
		}
		prevImm = s
	}

	// Paper: ~6% hit at a 100-instruction interval; the model lands in
	// the same minor-loss regime (5-20% depending on the symptom rate).
	s100 := Speedup(in, 100, restore.PolicyImmediate)
	if s100 < 0.80 || s100 > 0.99 {
		t.Errorf("speedup at 100 = %.3f, want minor loss (0.80-0.99)", s100)
	}
}

func TestPolicyCrossover(t *testing.T) {
	// Paper: delayed slightly underperforms immediate at small intervals
	// and gains the advantage around 500.
	in := referenceInputs()
	small := Speedup(in, 50, restore.PolicyImmediate) - Speedup(in, 50, restore.PolicyDelayed)
	large := Speedup(in, 2000, restore.PolicyDelayed) - Speedup(in, 2000, restore.PolicyImmediate)
	if small < 0 {
		t.Errorf("delayed should underperform at small intervals (diff=%v)", small)
	}
	if large <= 0 {
		t.Errorf("delayed should win at large intervals (diff=%v)", large)
	}
	// A crossover interval exists (paper places it near 500).
	crossed := false
	for _, iv := range []uint64{100, 200, 500, 1000, 2000} {
		if Speedup(in, iv, restore.PolicyDelayed) > Speedup(in, iv, restore.PolicyImmediate) {
			crossed = true
			break
		}
	}
	if !crossed {
		t.Error("no crossover interval found up to 2000")
	}
}

func TestOverheadLimits(t *testing.T) {
	in := referenceInputs()
	// Zero symptom rate: zero overhead, unit speedup.
	in0 := in
	in0.SymptomRate = 0
	for _, pol := range []restore.Policy{restore.PolicyImmediate, restore.PolicyDelayed} {
		if o := Overhead(in0, 100, pol); o != 0 {
			t.Errorf("overhead with no symptoms = %v", o)
		}
		if s := Speedup(in0, 100, pol); s != 1 {
			t.Errorf("speedup with no symptoms = %v", s)
		}
	}
	// Delayed overhead saturates: at most one rollback per interval.
	perInst := Overhead(in, 100000, restore.PolicyDelayed)
	bound := 2*in.ReplayCPI + in.FlushPenalty/100000 + 1e-9
	if perInst > bound {
		t.Errorf("delayed overhead %v exceeds saturation bound %v", perInst, bound)
	}
}

func TestSweepSeries(t *testing.T) {
	imm, del := Sweep(referenceInputs(), []uint64{50, 100, 200})
	if len(imm.X) != 3 || len(del.X) != 3 {
		t.Fatal("sweep lengths wrong")
	}
	if imm.Name != "imm" || del.Name != "delayed" {
		t.Error("series names wrong")
	}
}

func TestMeasureInputs(t *testing.T) {
	in, err := MeasureInputs(workload.GCC, 42, 40_000, pipeline.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("gcc inputs: %+v", in)
	if in.BaseCPI < 0.2 || in.BaseCPI > 5 {
		t.Errorf("BaseCPI = %v implausible", in.BaseCPI)
	}
	if in.ReplayCPI > in.BaseCPI {
		t.Errorf("replay CPI %v exceeds base %v", in.ReplayCPI, in.BaseCPI)
	}
	if in.SymptomRate < 0 || in.SymptomRate > 0.05 {
		t.Errorf("symptom rate %v implausible", in.SymptomRate)
	}
	if in.FlushPenalty <= 0 {
		t.Error("flush penalty must be positive")
	}
}

func TestAverage(t *testing.T) {
	a := Inputs{BaseCPI: 1, ReplayCPI: 0.8, SymptomRate: 1e-3, FlushPenalty: 10}
	b := Inputs{BaseCPI: 3, ReplayCPI: 2.0, SymptomRate: 3e-3, FlushPenalty: 30}
	avg := Average([]Inputs{a, b})
	if avg.BaseCPI != 2 || avg.ReplayCPI != 1.4 || avg.FlushPenalty != 20 {
		t.Errorf("average = %+v", avg)
	}
	if math.Abs(avg.SymptomRate-2e-3) > 1e-12 {
		t.Errorf("avg symptom rate = %v", avg.SymptomRate)
	}
	if (Average(nil) != Inputs{}) {
		t.Error("empty average should be zero")
	}
}

// TestCheckpointPricing pins the opt-in nature of the checkpoint-cost term:
// zero pricing inputs reproduce the classic zero-latency numbers exactly,
// and a priced model loses speedup monotonically in the per-checkpoint size.
func TestCheckpointPricing(t *testing.T) {
	base := referenceInputs()
	priced := base
	priced.CheckpointBytes = 2048
	priced.CheckpointBandwidth = 16
	for _, policy := range []restore.Policy{restore.PolicyImmediate, restore.PolicyDelayed} {
		for _, iv := range []uint64{50, 100, 500} {
			classic := Overhead(base, iv, policy)
			half := base
			half.CheckpointBytes = 2048 // bandwidth unset: still classic
			if got := Overhead(half, iv, policy); got != classic {
				t.Fatalf("policy %v iv %d: bytes without bandwidth changed overhead: %v vs %v",
					policy, iv, got, classic)
			}
			withCost := Overhead(priced, iv, policy)
			want := classic + 2048.0/16.0/float64(iv)
			if math.Abs(withCost-want) > 1e-12 {
				t.Fatalf("policy %v iv %d: priced overhead %v, want %v", policy, iv, withCost, want)
			}
			if Speedup(priced, iv, policy) >= Speedup(base, iv, policy) {
				t.Fatalf("policy %v iv %d: pricing did not reduce speedup", policy, iv)
			}
		}
	}
	bigger := priced
	bigger.CheckpointBytes *= 4
	if Speedup(bigger, 100, restore.PolicyImmediate) >= Speedup(priced, 100, restore.PolicyImmediate) {
		t.Fatal("larger checkpoints should cost more")
	}
}

// TestMeasureCheckpointCost drives a fault-free ReStore processor with
// costing on and sanity-checks the priced traffic.
func TestMeasureCheckpointCost(t *testing.T) {
	cost, err := MeasureCheckpointCost(workload.GCC, 42, 20_000, pipeline.DefaultConfig(),
		restore.Config{Interval: 200, Policy: restore.PolicyImmediate})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("gcc checkpoint cost: %+v (%.0f B/cp, ratio %.2f)",
		cost, cost.BytesPerCheckpoint(), cost.Ratio())
	// ~20k instructions at interval 200 → on the order of 100 checkpoints
	// (replays add more); anything wildly off means costing miscounts.
	if cost.Checkpoints < 50 || cost.Checkpoints > 10_000 {
		t.Fatalf("implausible checkpoint count %d", cost.Checkpoints)
	}
	if cost.StoredBytes <= 0 || cost.RawBytes < cost.Checkpoints*34*8 {
		t.Fatalf("implausible byte totals: %+v", cost)
	}
	if cost.BytesPerCheckpoint() < 34*8 {
		t.Fatalf("mean checkpoint smaller than its register frame: %v", cost.BytesPerCheckpoint())
	}
}

func TestModelAgreesWithSimulation(t *testing.T) {
	// The analytic model and a direct simulation of the ReStore processor
	// must agree on the order of magnitude of the fault-free slowdown.
	if testing.Short() {
		t.Skip("simulation cross-check is slow")
	}
	const insts = 30_000
	pcfg := pipeline.DefaultConfig()
	in, err := MeasureInputs(workload.GCC, 42, insts, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	model := Speedup(in, 100, restore.PolicyImmediate)

	measured, err := MeasureSlowdown(workload.GCC, 42, insts, pcfg,
		restore.Config{Interval: 100, Policy: restore.PolicyImmediate})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("speedup at interval 100: model=%.3f simulated=%.3f", model, measured)
	if measured <= 0 || measured > 1.02 {
		t.Fatalf("simulated speedup %v out of range", measured)
	}
	if math.Abs(model-measured) > 0.15 {
		t.Errorf("model %.3f and simulation %.3f disagree badly", model, measured)
	}
}
