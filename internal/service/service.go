package service

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/campaignio"
	"repro/internal/experiments"
	"repro/internal/inject"
	"repro/internal/obs"
	"repro/internal/workload"
)

// Config sizes and wires a Service.
type Config struct {
	// Root is the service directory (see store): jobs, shard journals,
	// merged results and golden images all live under it.
	Root string
	// MaxShards bounds how many shard simulations run concurrently across
	// all jobs (0 = 2). Each shard additionally fans trials across its
	// job's Workers goroutines.
	MaxShards int
	// Workers is the default per-shard engine goroutine count for jobs
	// that leave Spec.Workers at 0 (0 = serial).
	Workers int
	// Obs receives service metrics (queue depth, jobs by state, shards in
	// flight, trial completions) alongside the campaign telemetry every
	// shard already emits. Nil means the service allocates its own
	// registry — the /metrics endpoint always has something to export.
	Obs obs.Sink
	// Logf, if non-nil, receives one-line operational logs (job started,
	// merged, failed...).
	Logf func(format string, args ...any)
}

// Service owns the job queue and the scheduler. One scheduler goroutine
// runs jobs strictly in ID (submission) order — queue position survives
// restarts because IDs are allocated durably — while each job's shards run
// concurrently under the MaxShards pool bound.
type Service struct {
	cfg Config
	st  *store

	mu      sync.Mutex
	jobs    map[string]*Job
	cancels map[string]chan struct{}
	ticks   map[string]*atomic.Int64

	wake     chan struct{}
	shutdown chan struct{}
	loopDone chan struct{}
	closing  sync.Once
	shardSem chan struct{}
	inFlight atomic.Int64 // shards currently simulating
}

// New opens (or creates) a service root, recovers its queue, and starts the
// scheduler. Jobs found in state running were in flight when a previous
// daemon died; their shard journals hold every completed trial, so they are
// re-queued and resume exactly where the crash left them.
func New(cfg Config) (*Service, error) {
	if cfg.MaxShards <= 0 {
		cfg.MaxShards = 2
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.NewRegistry()
	}
	st, err := newStore(cfg.Root)
	if err != nil {
		return nil, err
	}
	s := &Service{
		cfg:      cfg,
		st:       st,
		jobs:     make(map[string]*Job),
		cancels:  make(map[string]chan struct{}),
		ticks:    make(map[string]*atomic.Int64),
		wake:     make(chan struct{}, 1),
		shutdown: make(chan struct{}),
		loopDone: make(chan struct{}),
		shardSem: make(chan struct{}, cfg.MaxShards),
	}
	jobs, err := st.listJobs()
	if err != nil {
		return nil, err
	}
	for _, j := range jobs {
		if j.State == StateRunning {
			// The previous daemon died mid-job. The job record says so;
			// re-queue it durably before the scheduler can pick it up.
			j.State = StateQueued
			if err := st.saveJob(j); err != nil {
				return nil, err
			}
			s.logf("job %s: recovered from crashed daemon, re-queued", j.ID)
		}
		s.jobs[j.ID] = j
		s.ticks[j.ID] = new(atomic.Int64)
	}
	s.publishMetrics()
	go s.schedule()
	return s, nil
}

// Root returns the service directory.
func (s *Service) Root() string { return s.st.root }

// ShuttingDown returns a channel closed when Close begins, for handlers that
// stream and must wind down with the daemon.
func (s *Service) ShuttingDown() <-chan struct{} { return s.shutdown }

func (s *Service) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Submit validates, persists and enqueues a job.
func (s *Service) Submit(spec JobSpec) (*Job, error) {
	spec.normalize()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	select {
	case <-s.shutdown:
		return nil, fmt.Errorf("service: shutting down, not accepting jobs")
	default:
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	id, err := s.st.nextID()
	if err != nil {
		return nil, err
	}
	j := &Job{
		ID:        id,
		Spec:      spec,
		State:     StateQueued,
		Submitted: time.Now().UTC(),
	}
	if err := s.st.saveJob(j); err != nil {
		return nil, err
	}
	s.jobs[id] = j
	s.ticks[id] = new(atomic.Int64)
	s.publishMetricsLocked()
	s.logf("job %s: queued (%s, %d shards)", id, spec.Experiment, spec.Shards)
	select {
	case s.wake <- struct{}{}:
	default:
	}
	return s.snapshotLocked(j), nil
}

// Job returns a point-in-time copy of one job, with live progress.
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, false
	}
	return s.snapshotLocked(j), true
}

// Jobs returns point-in-time copies of every job, in ID order.
func (s *Service) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, s.snapshotLocked(j))
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

func (s *Service) snapshotLocked(j *Job) *Job {
	c := j.clone()
	if t := s.ticks[j.ID]; t != nil {
		c.TrialsDone = t.Load()
	}
	return c
}

// Cancel stops a job: a queued job is cancelled on the spot, a running job's
// shards are interrupted (they drain, flush their journals and the job
// lands in cancelled), and a terminal job is left as it is.
func (s *Service) Cancel(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("service: no job %s", id)
	}
	switch j.State {
	case StateQueued:
		j.State = StateCancelled
		now := time.Now().UTC()
		j.Finished = &now
		if err := s.st.saveJob(j); err != nil {
			return nil, err
		}
		s.publishMetricsLocked()
		s.logf("job %s: cancelled while queued", id)
	case StateRunning:
		if ch := s.cancels[id]; ch != nil {
			select {
			case <-ch:
			default:
				close(ch)
			}
		}
		s.logf("job %s: cancel requested, draining shards", id)
	}
	return s.snapshotLocked(j), nil
}

// Close shuts the scheduler down gracefully: the running job's shards see
// their Interrupt channel close, drain in-flight trials, flush journals, and
// the job is re-queued on disk. Close returns when the scheduler has
// stopped; a subsequent New on the same root picks the queue back up.
func (s *Service) Close() error {
	s.closing.Do(func() { close(s.shutdown) })
	<-s.loopDone
	return nil
}

// schedule is the single scheduler goroutine: pick the lowest-ID queued job,
// run it to completion (or interruption), repeat.
func (s *Service) schedule() {
	defer close(s.loopDone)
	for {
		select {
		case <-s.shutdown:
			return
		default:
		}
		id := s.nextQueued()
		if id == "" {
			select {
			case <-s.wake:
			case <-s.shutdown:
				return
			}
			continue
		}
		s.runJob(id)
	}
}

func (s *Service) nextQueued() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	best := ""
	for id, j := range s.jobs {
		if j.State == StateQueued && (best == "" || id < best) {
			best = id
		}
	}
	return best
}

// runJob executes one job: persist the running state (the crash marker),
// fan the shards out under the pool bound, then merge or re-queue.
func (s *Service) runJob(id string) {
	s.mu.Lock()
	j := s.jobs[id]
	if j == nil || j.State != StateQueued {
		s.mu.Unlock()
		return
	}
	j.State = StateRunning
	if j.Started == nil {
		now := time.Now().UTC()
		j.Started = &now
	}
	cancel := make(chan struct{})
	s.cancels[id] = cancel
	ticks := s.ticks[id]
	spec := j.Spec
	if err := s.st.saveJob(j); err != nil {
		j.State = StateFailed
		j.Error = fmt.Sprintf("persisting running state: %v", err)
		s.mu.Unlock()
		return
	}
	s.publishMetricsLocked()
	s.mu.Unlock()
	s.logf("job %s: running %s (%d shards)", id, spec.Experiment, spec.Shards)

	// stop is the Interrupt channel every shard watches; it closes on
	// cancel or daemon shutdown (and harmlessly after the job finishes).
	stop := make(chan struct{})
	jobDone := make(chan struct{})
	go func() {
		defer close(stop)
		select {
		case <-cancel:
		case <-s.shutdown:
		case <-jobDone:
		}
	}()

	errs := make([]error, spec.Shards)
	var wg sync.WaitGroup
	for k := 0; k < spec.Shards; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			select {
			case s.shardSem <- struct{}{}:
			case <-stop:
				errs[k] = inject.ErrInterrupted
				return
			}
			defer func() { <-s.shardSem }()
			s.inFlight.Add(1)
			s.publishMetrics()
			defer func() {
				s.inFlight.Add(-1)
				s.publishMetrics()
			}()
			errs[k] = experiments.RunShardable(spec.Experiment, s.shardOptions(id, spec, k, stop, ticks))
		}(k)
	}
	wg.Wait()
	close(jobDone)

	var runErr error
	stopped := false
	for _, err := range errs {
		switch {
		case err == nil:
		case errors.Is(err, inject.ErrInterrupted):
			stopped = true
		case runErr == nil:
			runErr = err
		}
	}
	s.finishJob(id, cancel, runErr, stopped)
}

// shardOptions builds the experiments.Options for one shard of a job. Every
// field that could perturb results is either part of the spec (and thus the
// plan) or provably inert (workers, progress, obs, golden images).
func (s *Service) shardOptions(id string, spec JobSpec, k int, stop <-chan struct{}, ticks *atomic.Int64) experiments.Options {
	workers := spec.Workers
	if workers == 0 {
		workers = s.cfg.Workers
	}
	benches := make([]workload.Benchmark, len(spec.Benchmarks))
	for i, b := range spec.Benchmarks {
		benches[i] = workload.Benchmark(b)
	}
	trials := s.cfg.Obs.Counter("service_trials_completed_total")
	return experiments.Options{
		Seed:            spec.Seed,
		Scale:           spec.Scale,
		TrialFactor:     spec.TrialFactor,
		Benchmarks:      benches,
		Workers:         workers,
		CampaignRoot:    s.st.shardRoot(id, k),
		ShardIndex:      k,
		ShardCount:      spec.Shards,
		GoldenImageRoot: s.st.goldenRoot(),
		CompressJournal: spec.CompressJournal,
		Interrupt:       stop,
		Obs:             s.cfg.Obs,
		Progress: func(done, total int) {
			ticks.Add(1)
			trials.Inc()
		},
	}
}

// finishJob records the outcome of a run: merge on success, cancelled or
// re-queued on interruption, failed otherwise.
func (s *Service) finishJob(id string, cancel chan struct{}, runErr error, stopped bool) {
	cancelled := false
	select {
	case <-cancel:
		cancelled = true
	default:
	}

	var campaigns []string
	if runErr == nil && !stopped {
		campaigns, runErr = s.mergeJob(id)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	delete(s.cancels, id)
	now := time.Now().UTC()
	switch {
	case runErr != nil:
		j.State = StateFailed
		j.Error = runErr.Error()
		j.Finished = &now
		s.logf("job %s: failed: %v", id, runErr)
	case stopped && cancelled:
		j.State = StateCancelled
		j.Finished = &now
		s.logf("job %s: cancelled", id)
	case stopped:
		// Daemon shutdown: back to the queue, durably, so the next daemon
		// resumes it. Everything journalled so far is already on disk.
		j.State = StateQueued
		s.logf("job %s: interrupted by shutdown, re-queued", id)
	default:
		j.State = StateDone
		j.Campaigns = campaigns
		j.Finished = &now
		s.logf("job %s: done (%d campaigns merged)", id, len(campaigns))
	}
	if err := s.st.saveJob(j); err != nil && j.State != StateFailed {
		j.State = StateFailed
		j.Error = fmt.Sprintf("persisting %s state: %v", j.State, err)
		_ = s.st.saveJob(j)
	}
	s.publishMetricsLocked()
}

// mergeJob combines every campaign's shard journals into merged campaign
// directories byte-identical to what a serial one-shot run with -out would
// have written.
func (s *Service) mergeJob(id string) ([]string, error) {
	s.mu.Lock()
	shards := s.jobs[id].Spec.Shards
	s.mu.Unlock()
	dirs := make([]string, shards)
	for k := range dirs {
		dirs[k] = s.st.shardRoot(id, k)
	}
	ids, err := campaignio.ListCampaigns(dirs[0])
	if err != nil {
		return nil, err
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("%w: job %s journalled no campaigns under %s",
			campaignio.ErrNoCampaign, id, dirs[0])
	}
	for _, cid := range ids {
		shardDirs := make([]string, len(dirs))
		for k, d := range dirs {
			shardDirs[k] = filepath.Join(d, cid)
		}
		man, payloads, err := campaignio.MergeScan(shardDirs)
		if err != nil {
			return nil, fmt.Errorf("merging %s: %w", cid, err)
		}
		if err := campaignio.WriteMerged(filepath.Join(s.st.mergedDir(id), cid), man, payloads); err != nil {
			return nil, fmt.Errorf("writing merged %s: %w", cid, err)
		}
	}
	return ids, nil
}

// publishMetrics exports the queue shape to the obs registry.
func (s *Service) publishMetrics() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.publishMetricsLocked()
}

func (s *Service) publishMetricsLocked() {
	counts := map[JobState]int{}
	for _, j := range s.jobs {
		counts[j.State]++
	}
	o := s.cfg.Obs
	o.Gauge("service_queue_depth").Set(float64(counts[StateQueued]))
	for _, st := range []JobState{StateQueued, StateRunning, StateDone, StateFailed, StateCancelled} {
		o.Gauge("service_jobs_" + string(st)).Set(float64(counts[st]))
	}
	o.Gauge("service_shards_in_flight").Set(float64(s.inFlight.Load()))
}
