package obs

// Snapshot is a point-in-time copy of every metric in a registry, in sorted
// name order. Snapshots are plain data: taking one does not disturb the
// registry, and two snapshots can be diffed to isolate a phase (e.g. "what
// did this one campaign add on top of the warm-up").
type Snapshot struct {
	Metrics []Metric `json:"metrics"`
}

// Metric is one exported metric. Value carries the kind's scalar: the count
// for counters, the last value for gauges, the sum for histograms, and total
// seconds for timers. Count and Buckets are populated for histograms and
// timers only (timers export a single +Inf bucket).
type Metric struct {
	Name    string        `json:"name"`
	Kind    string        `json:"kind"` // counter | gauge | histogram | timer
	Value   float64       `json:"value"`
	Count   int64         `json:"count,omitempty"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Snapshot captures the current value of every registered metric. Safe to
// call while writers are active (each atomic is read once; the snapshot is
// per-metric consistent, not globally). A nil registry yields an empty
// snapshot.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var s Snapshot
	for _, name := range r.names() {
		switch r.kinds[name] {
		case "counter":
			s.Metrics = append(s.Metrics, Metric{
				Name: name, Kind: "counter",
				Value: float64(r.counters[name].Value()),
			})
		case "gauge":
			s.Metrics = append(s.Metrics, Metric{
				Name: name, Kind: "gauge",
				Value: r.gauges[name].Value(),
			})
		case "histogram":
			h := r.hists[name]
			s.Metrics = append(s.Metrics, Metric{
				Name: name, Kind: "histogram",
				Value:   float64(h.Sum()),
				Count:   h.Count(),
				Buckets: h.Buckets(),
			})
		case "timer":
			t := r.timers[name]
			s.Metrics = append(s.Metrics, Metric{
				Name: name, Kind: "timer",
				Value: t.Total().Seconds(),
				Count: t.Count(),
			})
		}
	}
	return s
}

// Get returns the named metric from the snapshot.
func (s Snapshot) Get(name string) (Metric, bool) {
	for _, m := range s.Metrics {
		if m.Name == name {
			return m, true
		}
	}
	return Metric{}, false
}

// Diff returns s minus prev: cumulative kinds (counters, histograms,
// timers) have prev's counts subtracted, gauges keep their current value
// (a gauge is already instantaneous). Metrics absent from prev pass through
// unchanged; metrics absent from s are dropped. Diffing snapshots from the
// same registry isolates what happened between the two captures.
func (s Snapshot) Diff(prev Snapshot) Snapshot {
	var out Snapshot
	for _, m := range s.Metrics {
		p, ok := prev.Get(m.Name)
		if !ok || p.Kind != m.Kind || m.Kind == "gauge" {
			out.Metrics = append(out.Metrics, m)
			continue
		}
		d := m
		d.Value -= p.Value
		d.Count -= p.Count
		if len(m.Buckets) > 0 {
			d.Buckets = diffBuckets(m.Buckets, p.Buckets)
		}
		out.Metrics = append(out.Metrics, d)
	}
	return out
}

// diffBuckets subtracts prev's cumulative bucket counts from cur's. Both
// sides are sorted by upper bound, and because export is sparse the right
// subtrahend for a cur bucket is prev's cumulative count at the largest
// bound not exceeding it (prev's cumulative curve is flat across bounds it
// did not materialise).
func diffBuckets(cur, prev []BucketCount) []BucketCount {
	out := make([]BucketCount, 0, len(cur))
	j := 0
	prevCum := int64(0)
	for _, b := range cur {
		for j < len(prev) && prev[j].Le <= b.Le {
			prevCum = prev[j].Count
			j++
		}
		b.Count -= prevCum
		out = append(out, b)
	}
	return out
}
