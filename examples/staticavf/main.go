// Staticavf: predict a workload's soft-error masking rate without injecting
// a single fault, then check the prediction against a real injection
// campaign.
//
// The static analysis (internal/staticvuln) classifies every bit of every
// instruction's result as ACE or un-ACE by backward bit-level liveness over
// the program's CFG: a bit is ACE only if some path propagates it into an
// exception-raising address, a branch decision, a store that a later load
// observes, or a register that is never overwritten. Each ACE bit also gets
// the symptom class a flip of it would trigger — the Section 3 taxonomy the
// ReStore detector is built on — and a static latency bound from flip to
// symptom.
//
// Part 1 analyses one benchmark and prints the full static report.
// Part 2 runs a small dynamic campaign over the same generated program and
// compares the measured masked fraction with the prediction.
//
// Run with: go run ./examples/staticavf
package main

import (
	"fmt"
	"log"

	"repro/internal/inject"
	"repro/internal/staticvuln"
	"repro/internal/workload"
)

const (
	bench = workload.GCC
	seed  = 7
	scale = 0.25
)

func main() {
	// Both sides must look at the same program: the generator derives
	// program shape from the seed and scale.
	prog := workload.MustGenerate(bench, workload.Config{Seed: seed, Scale: scale})

	rep, err := staticvuln.Analyze(prog, staticvuln.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Render(false))

	fmt.Println("\nvalidating against a live injection campaign (same program)...")
	res, err := inject.RunVM(inject.VMConfig{
		Bench:  bench,
		Seed:   seed,
		Scale:  scale,
		Trials: 1200,
		Points: 150,
		Spread: 60000,
		Window: 20000,
	})
	if err != nil {
		log.Fatal(err)
	}

	static := rep.MaskedFraction(false)
	dynamic := res.MaskedFraction()
	fmt.Printf("\n  static prediction: %5.1f%% masked (no simulation of faults at all)\n", 100*static)
	fmt.Printf("  dynamic measure:   %5.1f%% masked (%d injected faults)\n", 100*dynamic, len(res.Trials))
	fmt.Printf("  disagreement:      %5.1f percentage points\n", 100*abs(static-dynamic))
	fmt.Println("\nThe static report also names the most vulnerable registers — the")
	fmt.Println("per-register AVF ranking above is where selective hardening (Section")
	fmt.Println("5.2.2's low-hanging fruit) buys the most coverage per protected bit.")
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
