package pipeline

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/arch"
	"repro/internal/ckptio"
	"repro/internal/predictor"
)

// This file serialises a warmed pipeline — every injectable state word plus
// the simulator bookkeeping, predictors, caches and the memory image — into
// a ckptio golden image, so campaign workers can load a warm-up result
// instead of re-simulating it. The frame layout:
//
//	frame 0            meta (raw): one caller-supplied identification buffer
//	frame 1            bookkeeping (raw): shape guard + cycle/status/stats +
//	                   exec-window scheduling metadata
//	frame 2            straggler scalar state words (flate)
//	frames 3..3+E-1    the StateSpace's packed backing, one extent per frame
//	                   (flate) — E = number of equal-mask extents
//	frame 3+E          predictors (flate): dir | btb | ras | jrs | memdep
//	frame 4+E          caches (flate): l1i | l1d | l2 | itlb | dtlb
//	frames 5+E..       the memory page image in memChunk-byte slices (flate)
//
// Every frame is independent, so ckptio's worker fan-out applies to both
// save and load; the bytes are identical for any worker count.

// ErrGoldenMismatch means a golden image was produced by a different
// configuration (or kind of simulator) than the one trying to load it.
var ErrGoldenMismatch = errors.New("pipeline: golden image does not match")

// memChunk is the memory-image slice carried per frame: large enough to
// compress well, small enough that frames spread across workers.
const memChunk = 1 << 18

// goldenFixedFrames is the number of non-extent, non-memory frames.
const goldenFixedFrames = 5

// WriteGoldenImage saves the pipeline's complete state to path, compressing
// frames across workers goroutines. meta identifies the producing
// configuration; LoadGoldenImage refuses images whose meta differs.
func (p *Pipeline) WriteGoldenImage(path string, meta []byte, workers int) (ckptio.Stats, error) {
	p.space.reindex()
	w := ckptio.NewWriter()
	w.Frame(ckptio.StyleRaw).Add(meta)
	w.Frame(ckptio.StyleRaw).Add(p.goldenBookkeeping())

	strag := make([]byte, 8*len(p.space.stragglers))
	for i, idx := range p.space.stragglers {
		binary.LittleEndian.PutUint64(strag[i*8:], *p.space.elems[idx].word)
	}
	w.Frame(ckptio.StyleFlate).Add(strag)

	for _, ex := range p.space.extents {
		buf := make([]byte, 8*(ex.end-ex.off))
		for i, word := range p.space.packed[ex.off:ex.end] {
			binary.LittleEndian.PutUint64(buf[i*8:], word)
		}
		w.Frame(ckptio.StyleFlate).Add(buf)
	}

	pf := w.Frame(ckptio.StyleFlate)
	pf.Add(p.dir.SaveState())
	pf.Add(p.btb.SaveState())
	pf.Add(p.ras.SaveState())
	if jrs, ok := p.conf.(*predictor.JRS); ok {
		pf.Add(jrs.SaveState())
	} else {
		pf.Add(nil)
	}
	if p.memdep != nil {
		pf.Add(p.memdep.SaveState())
	} else {
		pf.Add(nil)
	}

	cf := w.Frame(ckptio.StyleFlate)
	cf.Add(p.l1i.SaveState())
	cf.Add(p.l1d.SaveState())
	cf.Add(p.l2.SaveState())
	cf.Add(p.itlb.SaveState())
	cf.Add(p.dtlb.SaveState())

	img := p.mem.SaveState()
	for off := 0; off < len(img) || off == 0; off += memChunk {
		end := off + memChunk
		if end > len(img) {
			end = len(img)
		}
		w.Frame(ckptio.StyleFlate).Add(img[off:end])
		if end == len(img) {
			break
		}
	}

	if err := w.WriteFile(path, workers); err != nil {
		return ckptio.Stats{}, err
	}
	return w.Stats(), nil
}

// LoadGoldenImage restores a WriteGoldenImage file into this pipeline,
// decoding frames across workers goroutines. The pipeline must be built
// from the same Config the image was saved under; wantMeta must equal the
// meta the image was saved with, or ErrGoldenMismatch is returned. Hooks
// and telemetry are untouched.
func (p *Pipeline) LoadGoldenImage(path string, wantMeta []byte, workers int) error {
	p.space.reindex()
	f, err := ckptio.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	frames, err := f.ReadAll(workers)
	if err != nil {
		return err
	}
	nExt := len(p.space.extents)
	if len(frames) < goldenFixedFrames+nExt {
		return fmt.Errorf("%w: image has %d frames, configuration needs at least %d",
			ErrGoldenMismatch, len(frames), goldenFixedFrames+nExt)
	}
	if len(frames[0]) != 1 || !bytes.Equal(frames[0][0], wantMeta) {
		return fmt.Errorf("%w: image meta %q, want %q", ErrGoldenMismatch, firstBuf(frames[0]), wantMeta)
	}
	if len(frames[1]) != 1 {
		return fmt.Errorf("%w: bookkeeping frame has %d buffers", ErrGoldenMismatch, len(frames[1]))
	}
	if err := p.loadGoldenBookkeeping(frames[1][0]); err != nil {
		return err
	}

	strag := frames[2]
	if len(strag) != 1 || len(strag[0]) != 8*len(p.space.stragglers) {
		return fmt.Errorf("%w: straggler frame holds %d bytes, want %d",
			ErrGoldenMismatch, len(firstBuf(strag)), 8*len(p.space.stragglers))
	}
	for i, idx := range p.space.stragglers {
		*p.space.elems[idx].word = binary.LittleEndian.Uint64(strag[0][i*8:])
	}

	for e, ex := range p.space.extents {
		fr := frames[3+e]
		want := 8 * (ex.end - ex.off)
		if len(fr) != 1 || len(fr[0]) != want {
			return fmt.Errorf("%w: extent frame %d holds %d bytes, want %d",
				ErrGoldenMismatch, e, len(firstBuf(fr)), want)
		}
		for i := range p.space.packed[ex.off:ex.end] {
			p.space.packed[ex.off+i] = binary.LittleEndian.Uint64(fr[0][i*8:])
		}
	}

	pf := frames[3+nExt]
	if len(pf) != 5 {
		return fmt.Errorf("%w: predictor frame has %d buffers, want 5", ErrGoldenMismatch, len(pf))
	}
	if err := p.dir.LoadState(pf[0]); err != nil {
		return err
	}
	if err := p.btb.LoadState(pf[1]); err != nil {
		return err
	}
	if err := p.ras.LoadState(pf[2]); err != nil {
		return err
	}
	if jrs, ok := p.conf.(*predictor.JRS); ok {
		if err := jrs.LoadState(pf[3]); err != nil {
			return err
		}
	} else if len(pf[3]) != 0 {
		return fmt.Errorf("%w: image carries JRS state but this pipeline has none", ErrGoldenMismatch)
	}
	switch {
	case p.memdep != nil && len(pf[4]) > 0:
		if err := p.memdep.LoadState(pf[4]); err != nil {
			return err
		}
	case p.memdep == nil && len(pf[4]) == 0:
		// both absent
	default:
		return fmt.Errorf("%w: memory-dependence predictor presence differs", ErrGoldenMismatch)
	}

	cf := frames[4+nExt]
	if len(cf) != 5 {
		return fmt.Errorf("%w: cache frame has %d buffers, want 5", ErrGoldenMismatch, len(cf))
	}
	for i, c := range []interface{ LoadState([]byte) error }{p.l1i, p.l1d, p.l2, p.itlb, p.dtlb} {
		if err := c.LoadState(cf[i]); err != nil {
			return err
		}
	}

	var img []byte
	for _, fr := range frames[goldenFixedFrames+nExt:] {
		for _, b := range fr {
			img = append(img, b...)
		}
	}
	return p.mem.LoadState(img)
}

// GoldenMeta reads just the identification buffer of a golden image.
func GoldenMeta(path string) ([]byte, error) {
	f, err := ckptio.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if f.Frames() == 0 {
		return nil, fmt.Errorf("%w: image has no frames", ErrGoldenMismatch)
	}
	bufs, err := f.ReadFrame(0)
	if err != nil {
		return nil, err
	}
	if len(bufs) != 1 {
		return nil, fmt.Errorf("%w: meta frame has %d buffers", ErrGoldenMismatch, len(bufs))
	}
	return bufs[0], nil
}

// firstBuf returns a frame's first buffer for error messages (nil-safe).
func firstBuf(bufs [][]byte) []byte {
	if len(bufs) == 0 {
		return nil
	}
	return bufs[0]
}

// goldenBookkeeping serialises the non-injectable simulator state plus a
// shape guard over the state space, so a mismatched configuration fails
// loudly before any word is written.
func (p *Pipeline) goldenBookkeeping() []byte {
	out := make([]byte, 0, 64+18*8+execSlots*9)
	u64 := func(v uint64) {
		var u [8]byte
		binary.LittleEndian.PutUint64(u[:], v)
		out = append(out, u[:]...)
	}
	u64(uint64(len(p.space.packed)))
	u64(uint64(len(p.space.stragglers)))
	u64(uint64(len(p.space.extents)))
	u64(p.cycle)
	out = append(out, byte(p.status), byte(p.excKind), boolByte(p.fetchFaulted))
	u64(p.excPC)
	u64(p.excAddr)
	u64(p.fetchStallUntil)
	s := p.stats
	for _, v := range []uint64{
		s.Cycles, s.Retired, s.Fetched, s.Dispatched, s.Issued,
		s.Branches, s.CondBranches, s.Mispredicts, s.CondMispredicts,
		s.CommittedCondMispredicts, s.HCMispredicts, s.Flushes,
		s.LoadsIssued, s.StoresRetired, s.ICacheMisses, s.DCacheMisses,
		s.L2Misses, s.MemOrderViolations,
	} {
		u64(v)
	}
	for i := 0; i < execSlots; i++ {
		out = append(out, boolByte(p.exec.busy[i]))
	}
	for i := 0; i < execSlots; i++ {
		u64(p.exec.doneAt[i])
	}
	return out
}

// loadGoldenBookkeeping is the inverse of goldenBookkeeping; it checks the
// shape guard against the live space before mutating anything.
func (p *Pipeline) loadGoldenBookkeeping(b []byte) error {
	want := 3*8 + 8 + 3 + 3*8 + 18*8 + execSlots + execSlots*8
	if len(b) != want {
		return fmt.Errorf("%w: bookkeeping frame %d bytes, want %d", ErrGoldenMismatch, len(b), want)
	}
	off := 0
	u64 := func() uint64 {
		v := binary.LittleEndian.Uint64(b[off:])
		off += 8
		return v
	}
	if packed, strag, ext := u64(), u64(), u64(); packed != uint64(len(p.space.packed)) ||
		strag != uint64(len(p.space.stragglers)) || ext != uint64(len(p.space.extents)) {
		return fmt.Errorf("%w: state-space shape %d/%d/%d, this configuration has %d/%d/%d",
			ErrGoldenMismatch, packed, strag, ext,
			len(p.space.packed), len(p.space.stragglers), len(p.space.extents))
	}
	p.cycle = u64()
	p.status = Status(b[off])
	p.excKind = arch.ExceptionKind(b[off+1])
	p.fetchFaulted = b[off+2] != 0
	off += 3
	p.excPC = u64()
	p.excAddr = u64()
	p.fetchStallUntil = u64()
	s := &p.stats
	for _, dst := range []*uint64{
		&s.Cycles, &s.Retired, &s.Fetched, &s.Dispatched, &s.Issued,
		&s.Branches, &s.CondBranches, &s.Mispredicts, &s.CondMispredicts,
		&s.CommittedCondMispredicts, &s.HCMispredicts, &s.Flushes,
		&s.LoadsIssued, &s.StoresRetired, &s.ICacheMisses, &s.DCacheMisses,
		&s.L2Misses, &s.MemOrderViolations,
	} {
		*dst = u64()
	}
	for i := 0; i < execSlots; i++ {
		p.exec.busy[i] = b[off] != 0
		off++
	}
	for i := 0; i < execSlots; i++ {
		p.exec.doneAt[i] = u64()
	}
	return nil
}

func boolByte(v bool) byte {
	if v {
		return 1
	}
	return 0
}
