package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The CLI's run() is exercised end-to-end with tiny campaigns; output goes
// to stdout, so these tests assert behaviour through error values and flag
// handling.

func tinyArgs(experiment string) []string {
	return []string{"-trials", "0.05", "-scale", "0.5", "-bench", "gzip", experiment}
}

func TestRunExperimentsSmoke(t *testing.T) {
	experiments := []string{
		"fig2", "fig4", "fig5", "fig6", "fig8", "summary", "compare",
		"ablate-ckpt", "vulnerability", "analyze",
	}
	for _, exp := range experiments {
		exp := exp
		t.Run(exp, func(t *testing.T) {
			if err := run(tinyArgs(exp)); err != nil {
				t.Fatalf("%s: %v", exp, err)
			}
		})
	}
}

func TestRunFig7AndDemo(t *testing.T) {
	if err := run([]string{"-trials", "0.05", "-bench", "gzip", "fig7"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-bench", "gzip", "-interval", "200", "demo"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunPerBenchAndCSV(t *testing.T) {
	if err := run([]string{"-trials", "0.05", "-scale", "0.5", "-bench", "gzip,mcf", "-perbench", "fig4"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-trials", "0.05", "-scale", "0.5", "-bench", "gzip", "-csv", "fig2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMetricsFlag(t *testing.T) {
	dir := t.TempDir()

	prom := filepath.Join(dir, "campaign.prom")
	args := append([]string{"-metrics", prom}, tinyArgs("fig4")...)
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(prom)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"# TYPE campaign_uarch_trials_total counter", "pipeline_rob_occupancy_bucket"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("metrics file missing %q:\n%s", want, data)
		}
	}

	// The extension selects the format; .json must parse.
	jsonPath := filepath.Join(dir, "campaign.json")
	args = append([]string{"-metrics", jsonPath}, tinyArgs("fig4")...)
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Metrics []struct {
			Name string `json:"name"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("metrics JSON does not parse: %v", err)
	}
	if len(snap.Metrics) == 0 {
		t.Error("metrics JSON has no metrics")
	}

	// An unwritable path must surface as an error, not a silent run.
	args = append([]string{"-metrics", filepath.Join(dir, "no", "such", "dir.prom")}, tinyArgs("fig4")...)
	if err := run(args); err == nil || !strings.Contains(err.Error(), "metrics") {
		t.Errorf("unwritable metrics path: err = %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("missing experiment accepted")
	}
	if err := run([]string{"frobnicate"}); err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("unknown experiment: %v", err)
	}
	if err := run([]string{"-bench", "quake", "fig2"}); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if err := run([]string{"-badflag", "fig2"}); err == nil {
		t.Error("bad flag accepted")
	}
}
