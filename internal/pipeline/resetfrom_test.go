package pipeline

import (
	"testing"

	"repro/internal/workload"
)

// ResetFrom is the clone pool's reset path: a recycled fork must be
// indistinguishable from a fresh Clone of the master, including the state
// that is NOT in the hashed state space (caches, predictors, confidence
// estimator), whose divergence would show up as timing drift.
func TestResetFromMatchesClone(t *testing.T) {
	master := newBenchPipeline(t, workload.Vortex, DefaultConfig())
	master.RunCycles(5000)

	// A stale fork: cloned earlier, run far ahead, state thoroughly dirty.
	fork := master.Clone()
	fork.RunCycles(3000)
	ref, _ := fork.State().NthBit(777)
	fork.State().Flip(ref)
	fork.Memory().WriteQ(0x10000, 0xBAD) // dirty a page too

	master.RunCycles(1000) // master moves on as well

	fork.ResetFrom(master)
	if fork.State().Hash() != master.State().Hash() {
		t.Fatal("reset fork's state hash differs from master")
	}
	if !fork.Memory().Equal(master.Memory()) {
		t.Fatal("reset fork's memory differs from master")
	}

	// The reset fork must track a genuine clone cycle for cycle: any copy
	// miss in the unhashed structures surfaces as timing divergence here.
	clone := master.Clone()
	for i := 0; i < 30; i++ {
		fork.RunCycles(100)
		clone.RunCycles(100)
		if fork.State().Hash() != clone.State().Hash() {
			t.Fatalf("reset fork diverged from clone after %d cycles", (i+1)*100)
		}
		if fork.Cycles() != clone.Cycles() || fork.Retired() != clone.Retired() {
			t.Fatalf("counters diverged after %d cycles: cycles %d/%d retired %d/%d",
				(i+1)*100, fork.Cycles(), clone.Cycles(), fork.Retired(), clone.Retired())
		}
	}
	if !fork.Memory().Equal(clone.Memory()) {
		t.Fatal("reset fork's memory diverged from clone")
	}

	// Independence: mutating the reset fork must not touch the master.
	before := master.State().Hash()
	ref2, _ := fork.State().NthBit(12345)
	fork.State().Flip(ref2)
	fork.RunCycles(50)
	if master.State().Hash() != before {
		t.Fatal("mutating the reset fork changed the master")
	}
}
