package pipeline

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/workload"
)

// conflictProgram builds a loop where a store's address resolves late (a
// multiply chain) while a younger load of the SAME location has its address
// ready immediately: a speculative load issues past the store, reads stale
// memory, and must be replayed when the store resolves.
func conflictProgram(t *testing.T) *workload.Program {
	t.Helper()
	return asm.MustAssemble("conflict", `
		.data buf 256
		.base r10 buf
		.imm  r1 3
	loop:
		mulq r1, #3, r1      ; long-latency chain...
		mulq r1, #5, r2
		mulq r2, #7, r2
		and  r2, #0, r7      ; ...producing zero, late
		addq r10, r7, r8     ; late copy of the buffer pointer
		stq  r1, 0(r8)       ; store address resolves late
		ldq  r5, 0(r10)      ; same location, address ready immediately
		addq r6, r5, r6
		br   loop
	`)
}

func TestMemOrderViolationReplay(t *testing.T) {
	prog := conflictProgram(t)
	m, err := prog.NewMemory()
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(DefaultConfig(), m, prog.Entry)
	if err != nil {
		t.Fatal(err)
	}
	lockstep(t, p, prog) // architectural correctness despite replays
	p.RunRetired(5_000, 200_000)
	if t.Failed() {
		return
	}
	s := p.Stats()
	if s.MemOrderViolations == 0 {
		t.Fatal("no memory-order violations on a crafted store-load conflict")
	}
	// The wait table must learn: without training, every one of the
	// ~500 loop iterations would violate.
	if s.MemOrderViolations > s.Retired/9/4 {
		t.Errorf("wait table did not learn: %d violations in %d insts",
			s.MemOrderViolations, s.Retired)
	}
	t.Logf("violations=%d retired=%d", s.MemOrderViolations, s.Retired)
}

func TestMemDepSpeculationHelps(t *testing.T) {
	run := func(spec bool) Stats {
		cfg := DefaultConfig()
		cfg.MemDepSpeculation = spec
		p := newBenchPipeline(t, workload.Vortex, cfg)
		p.RunRetired(60_000, 2_000_000)
		return p.Stats()
	}
	with := run(true)
	without := run(false)
	t.Logf("speculation: ipc=%.3f violations=%d; conservative: ipc=%.3f",
		with.IPC(), with.MemOrderViolations, without.IPC())
	if with.IPC() <= without.IPC() {
		t.Errorf("memory-dependence speculation did not help: %.3f vs %.3f",
			with.IPC(), without.IPC())
	}
	if without.MemOrderViolations != 0 {
		t.Error("conservative mode cannot have violations")
	}
}

func TestMemDepDisabledStillCorrect(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MemDepSpeculation = false
	prog := workload.MustGenerate(workload.Vortex, workload.Config{Seed: 42, Scale: 0.25})
	m, err := prog.NewMemory()
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(cfg, m, prog.Entry)
	if err != nil {
		t.Fatal(err)
	}
	lockstep(t, p, prog)
	p.RunRetired(20_000, 400_000)
}

func TestMemDepConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MemDepBits = 0
	if _, err := New(cfg, nil, 0); err == nil {
		t.Error("zero wait-table size accepted with speculation on")
	}
	cfg = DefaultConfig()
	cfg.MemDepDecayCycles = 0
	if _, err := New(cfg, nil, 0); err == nil {
		t.Error("zero decay period accepted with speculation on")
	}
}
