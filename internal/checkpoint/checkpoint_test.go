package checkpoint

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/mem"
)

func newMem(t *testing.T) *mem.Memory {
	t.Helper()
	m := mem.New()
	m.Map(0, 4*mem.PageSize, mem.PermRW)
	return m
}

func TestCreateAndRestoreOldest(t *testing.T) {
	m := newMem(t)
	s := NewStore(m, 2)

	var regs [32]uint64
	regs[1] = 100
	if err := m.WriteQ(0, 1); err != nil {
		t.Fatal(err)
	}
	s.Create(regs, 0x1000, 500)

	if err := m.WriteQ(0, 2); err != nil {
		t.Fatal(err)
	}
	regs[1] = 200
	s.Create(regs, 0x2000, 600)

	if err := m.WriteQ(0, 3); err != nil {
		t.Fatal(err)
	}

	cp, err := s.RestoreOldest()
	if err != nil {
		t.Fatal(err)
	}
	if cp.PC != 0x1000 || cp.Regs[1] != 100 || cp.Retired != 500 {
		t.Errorf("restored wrong checkpoint: %+v", cp)
	}
	if v, _ := m.ReadQ(0); v != 1 {
		t.Errorf("memory not unwound: %d", v)
	}
	if s.Len() != 0 {
		t.Errorf("checkpoints remain after restore: %d", s.Len())
	}
}

func TestCapacityRetiresOldest(t *testing.T) {
	m := newMem(t)
	s := NewStore(m, 2)
	var regs [32]uint64

	if err := m.WriteQ(0, 1); err != nil {
		t.Fatal(err)
	}
	s.Create(regs, 0x100, 1)
	if err := m.WriteQ(0, 2); err != nil {
		t.Fatal(err)
	}
	s.Create(regs, 0x200, 2)
	if err := m.WriteQ(0, 3); err != nil {
		t.Fatal(err)
	}
	s.Create(regs, 0x300, 3) // retires the 0x100 checkpoint

	if s.Len() != 2 {
		t.Fatalf("len = %d, want 2", s.Len())
	}
	cp, err := s.RestoreOldest()
	if err != nil {
		t.Fatal(err)
	}
	if cp.PC != 0x200 {
		t.Errorf("oldest pc = %#x, want 0x200", cp.PC)
	}
	// Memory must unwind to the state at checkpoint 0x200 (value 2), and
	// the retired checkpoint's state (value 1) must be unreachable.
	if v, _ := m.ReadQ(0); v != 2 {
		t.Errorf("memory = %d, want 2", v)
	}
}

func TestMarkRebaseAfterRetirement(t *testing.T) {
	// Regression: retiring the oldest checkpoint compacts the journal;
	// surviving marks must be rebased or restores will unwind the wrong
	// distance.
	m := newMem(t)
	s := NewStore(m, 2)
	var regs [32]uint64

	for i := uint64(1); i <= 6; i++ {
		if err := m.WriteQ(8, i*10); err != nil {
			t.Fatal(err)
		}
		s.Create(regs, 0x100*i, i)
	}
	// Live checkpoints: i=5 (mem=50) and i=6 (mem=60).
	cp, err := s.RestoreOldest()
	if err != nil {
		t.Fatal(err)
	}
	if cp.PC != 0x500 {
		t.Fatalf("oldest pc = %#x", cp.PC)
	}
	if v, _ := m.ReadQ(8); v != 50 {
		t.Errorf("memory = %d, want 50", v)
	}
}

func TestRestoreNewest(t *testing.T) {
	m := newMem(t)
	s := NewStore(m, 2)
	var regs [32]uint64

	s.Create(regs, 0x100, 1)
	if err := m.WriteQ(16, 7); err != nil {
		t.Fatal(err)
	}
	regs[2] = 9
	s.Create(regs, 0x200, 2)
	if err := m.WriteQ(16, 8); err != nil {
		t.Fatal(err)
	}

	cp, err := s.RestoreNewest()
	if err != nil {
		t.Fatal(err)
	}
	if cp.PC != 0x200 || cp.Regs[2] != 9 {
		t.Errorf("restored %+v", cp)
	}
	if v, _ := m.ReadQ(16); v != 7 {
		t.Errorf("memory = %d, want 7", v)
	}
	// The older checkpoint is still live.
	if s.Len() != 1 {
		t.Errorf("len = %d, want 1", s.Len())
	}
}

func TestEmptyStoreErrors(t *testing.T) {
	s := NewStore(newMem(t), 2)
	if _, err := s.RestoreOldest(); !errors.Is(err, ErrEmpty) {
		t.Errorf("RestoreOldest on empty = %v", err)
	}
	if _, err := s.RestoreNewest(); !errors.Is(err, ErrEmpty) {
		t.Errorf("RestoreNewest on empty = %v", err)
	}
	if _, ok := s.Oldest(); ok {
		t.Error("Oldest on empty store succeeded")
	}
	if _, ok := s.Newest(); ok {
		t.Error("Newest on empty store succeeded")
	}
}

func TestClearMakesStatePermanent(t *testing.T) {
	m := newMem(t)
	s := NewStore(m, 2)
	var regs [32]uint64
	s.Create(regs, 0x100, 1)
	if err := m.WriteQ(0, 42); err != nil {
		t.Fatal(err)
	}
	s.Clear()
	if s.Len() != 0 {
		t.Error("clear left checkpoints")
	}
	if m.JournalLen() != 0 {
		t.Error("clear left journal records")
	}
	if v, _ := m.ReadQ(0); v != 42 {
		t.Error("clear rolled back state")
	}
}

func TestOldestNewestAccessors(t *testing.T) {
	m := newMem(t)
	s := NewStore(m, 3)
	var regs [32]uint64
	s.Create(regs, 0x100, 1)
	s.Create(regs, 0x200, 2)
	old, ok := s.Oldest()
	if !ok || old.PC != 0x100 {
		t.Errorf("oldest = %+v, %v", old, ok)
	}
	newest, ok := s.Newest()
	if !ok || newest.PC != 0x200 {
		t.Errorf("newest = %+v, %v", newest, ok)
	}
	if s.Capacity() != 3 {
		t.Errorf("capacity = %d", s.Capacity())
	}
}

func TestMinimumCapacity(t *testing.T) {
	s := NewStore(newMem(t), 0)
	if s.Capacity() != 1 {
		t.Errorf("capacity = %d, want clamped to 1", s.Capacity())
	}
}

func TestClearBoundsJournalUntilNextCreate(t *testing.T) {
	// Regression: Clear used to leave journalling enabled with zero live
	// checkpoints, so a store-heavy caller that never checkpointed again
	// accrued an unbounded journal that nothing could ever roll back.
	m := newMem(t)
	s := NewStore(m, 2)
	var regs [32]uint64
	s.Create(regs, 0x100, 1)
	if err := m.WriteQ(0, 1); err != nil {
		t.Fatal(err)
	}
	s.Clear()

	for i := uint64(0); i < 64; i++ {
		if err := m.WriteQ(i*8, i); err != nil {
			t.Fatal(err)
		}
	}
	if n := m.JournalLen(); n != 0 {
		t.Fatalf("journal grew to %d records after Clear with no checkpoints", n)
	}

	// The next Create re-arms journalling and rollback works again.
	s.Create(regs, 0x200, 2)
	if err := m.WriteQ(0, 99); err != nil {
		t.Fatal(err)
	}
	if m.JournalLen() == 0 {
		t.Fatal("journalling not re-armed by Create after Clear")
	}
	if _, err := s.RestoreNewest(); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.ReadQ(0); v != 0 {
		t.Errorf("[0] = %d after restore, want 0", v)
	}
}

// TestCostingPricesSnapshots: with costing enabled every Create prices the
// register file plus the interval's journal delta through the ckptio
// encoding; repetitive store data compresses below its raw size. Costing is
// observational — restored state is identical with it on or off.
func TestCostingPricesSnapshots(t *testing.T) {
	m := newMem(t)
	s := NewStore(m, 2)
	if got := s.Cost(); got != (CostStats{}) {
		t.Fatalf("cost nonzero before enabling: %+v", got)
	}
	s.EnableCosting()
	var regs [32]uint64
	s.Create(regs, 0x100, 0)
	// A compressible interval: many zero-valued overwrites journalled.
	for i := uint64(0); i < 512; i++ {
		if err := m.WriteQ(i*8, 7); err != nil {
			t.Fatal(err)
		}
	}
	s.Create(regs, 0x200, 512)

	cost := s.Cost()
	if cost.Checkpoints != 2 {
		t.Fatalf("priced %d checkpoints, want 2", cost.Checkpoints)
	}
	// Second snapshot carries 512 journal records (17 bytes raw each).
	if cost.RawBytes < 512*17 {
		t.Fatalf("raw bytes %d too small for the journalled interval", cost.RawBytes)
	}
	if cost.StoredBytes >= cost.RawBytes || cost.Ratio() >= 1 {
		t.Fatalf("zero-heavy journal did not compress: %+v (ratio %.2f)", cost, cost.Ratio())
	}
	if bpc := cost.BytesPerCheckpoint(); bpc <= 0 {
		t.Fatalf("BytesPerCheckpoint = %g", bpc)
	}

	// Rollback behaviour is untouched by costing.
	if _, err := s.RestoreOldest(); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.ReadQ(0); v != 0 {
		t.Errorf("[0] = %d after costed rollback, want 0", v)
	}
}

// TestRestoreAfterClearStopsAtCreateBoundary pins where the rollback horizon
// lands after a Clear: exactly at the next Create, never earlier. Writes made
// while journalling was off are permanent; a full restore-oldest — even after
// a capacity retirement has rebased marks against the reset journal — must
// reproduce the state at the first post-Clear Create byte for byte.
func TestRestoreAfterClearStopsAtCreateBoundary(t *testing.T) {
	m := newMem(t)
	s := NewStore(m, 2)
	var regs [32]uint64
	s.Create(regs, 0x100, 1)
	if err := m.WriteQ(0, 11); err != nil {
		t.Fatal(err)
	}
	s.Clear()

	// Unjournalled era: these writes must survive every later rollback.
	if err := m.WriteQ(0, 22); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteQ(8, 33); err != nil {
		t.Fatal(err)
	}

	// Three checkpoints through a capacity-2 store: the first post-Clear
	// checkpoint retires, exercising the mark rebase against a journal that
	// restarted from empty.
	s.Create(regs, 0x200, 2)
	if err := m.WriteQ(0, 44); err != nil {
		t.Fatal(err)
	}
	s.Create(regs, 0x300, 3)
	if err := m.WriteQ(8, 55); err != nil {
		t.Fatal(err)
	}
	s.Create(regs, 0x400, 4)
	if err := m.WriteQ(16, 66); err != nil {
		t.Fatal(err)
	}

	cp, err := s.RestoreOldest()
	if err != nil {
		t.Fatal(err)
	}
	if cp.PC != 0x300 {
		t.Fatalf("oldest live checkpoint PC %#x, want 0x300 (0x200 retired)", cp.PC)
	}
	// State at the 0x300 Create: [0]=44 (journalled era), [8]=33 and the
	// unjournalled [0]=22 overwrite long since permanent, [16] untouched.
	for _, want := range []struct{ addr, val uint64 }{{0, 44}, {8, 33}, {16, 0}} {
		if v, _ := m.ReadQ(want.addr); v != want.val {
			t.Errorf("[%d] = %d after restore, want %d", want.addr, v, want.val)
		}
	}
}

// TestRandomizedOpsMatchReferenceModel drives the journal-based store with a
// random interleaving of Create/RestoreNewest/RestoreOldest/Clear and random
// writes, comparing every restored state against a reference model that
// checkpoints by full memory copy. This pins the DiscardTo mark-rebase
// contract: retiring the oldest checkpoint compacts the journal, and every
// surviving mark must be rebased by exactly the dropped record count or a
// later restore unwinds the wrong distance.
func TestRandomizedOpsMatchReferenceModel(t *testing.T) {
	for _, capacity := range []int{1, 2, 3} {
		capacity := capacity
		t.Run(fmt.Sprintf("cap%d", capacity), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(0xC0FFEE + capacity)))
			m := newMem(t)
			s := NewStore(m, capacity)

			// Reference model: full copies, same retirement policy.
			var refs []*mem.Memory

			write := func() {
				addr := uint64(rng.Intn(4*mem.PageSize/8)) * 8
				if err := m.WriteQ(addr, rng.Uint64()); err != nil {
					t.Fatal(err)
				}
			}
			var regs [32]uint64
			for op := 0; op < 2000; op++ {
				for i, n := 0, rng.Intn(4); i < n; i++ {
					write()
				}
				switch rng.Intn(8) {
				case 0, 1, 2, 3: // bias toward Create to exercise retirement
					s.Create(regs, uint64(op), uint64(op))
					if len(refs) == capacity {
						refs = refs[1:]
					}
					refs = append(refs, m.Clone())
				case 4, 5:
					_, err := s.RestoreNewest()
					if len(refs) == 0 {
						if err == nil {
							t.Fatalf("op %d: RestoreNewest succeeded on empty store", op)
						}
						continue
					}
					if err != nil {
						t.Fatalf("op %d: RestoreNewest: %v", op, err)
					}
					want := refs[len(refs)-1]
					refs = refs[:len(refs)-1]
					if !m.Equal(want) {
						addr, _ := m.FirstDifference(want)
						t.Fatalf("op %d: RestoreNewest state diverged at %#x", op, addr)
					}
				case 6:
					_, err := s.RestoreOldest()
					if len(refs) == 0 {
						if err == nil {
							t.Fatalf("op %d: RestoreOldest succeeded on empty store", op)
						}
						continue
					}
					if err != nil {
						t.Fatalf("op %d: RestoreOldest: %v", op, err)
					}
					want := refs[0]
					refs = refs[:0]
					if !m.Equal(want) {
						addr, _ := m.FirstDifference(want)
						t.Fatalf("op %d: RestoreOldest state diverged at %#x", op, addr)
					}
				case 7:
					s.Clear()
					refs = refs[:0]
					if m.JournalLen() != 0 {
						t.Fatalf("op %d: Clear left %d journal records", op, m.JournalLen())
					}
				}
				if s.Len() != len(refs) {
					t.Fatalf("op %d: store len %d != model len %d", op, s.Len(), len(refs))
				}
			}
		})
	}
}
