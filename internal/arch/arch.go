// Package arch implements the architectural (ISA-level) simulator: a
// functional interpreter for the instruction set in internal/isa over a
// memory image from internal/mem.
//
// The simulator plays two roles in the reproduction, mirroring Section 4 of
// the paper. First, it is the "virtual machine" used for the software-level
// fault-injection campaign of Figure 2, where faults are injected directly
// into architectural state to study error-to-symptom propagation free of any
// microarchitecture. Second, it is the golden architectural reference the
// pipeline trials are compared against: every instruction the pipeline
// commits is checked against the event the architectural simulator produces
// for the same dynamic instruction.
package arch

import (
	"errors"
	"fmt"

	"repro/internal/isa"
	"repro/internal/mem"
)

// ExceptionKind enumerates the ISA-defined exceptions, the paper's primary
// soft-error symptom (Section 3.2.1).
type ExceptionKind uint8

// Exceptions.
const (
	ExcNone ExceptionKind = iota
	// ExcAccessFault is a memory access to an unmapped or protected page,
	// including instruction fetch. The dominant symptom in the paper.
	ExcAccessFault
	// ExcAlignment is a misaligned load or store.
	ExcAlignment
	// ExcOverflow is signed overflow in a trapping arithmetic op.
	ExcOverflow
	// ExcIllegalInstruction is an undecodable instruction word.
	ExcIllegalInstruction
)

// String returns a short name for the exception kind.
func (e ExceptionKind) String() string {
	switch e {
	case ExcNone:
		return "none"
	case ExcAccessFault:
		return "access-fault"
	case ExcAlignment:
		return "alignment"
	case ExcOverflow:
		return "overflow"
	case ExcIllegalInstruction:
		return "illegal-instruction"
	}
	return fmt.Sprintf("exception(%d)", uint8(e))
}

// Event describes the architectural effects of one executed instruction. It
// carries everything a comparator needs: the instruction's identity, its
// register result, its memory effect, and its control-flow outcome.
type Event struct {
	PC   uint64
	Inst isa.Inst

	// Exception, if not ExcNone, means the instruction faulted before
	// completing; no architectural state was modified and NextPC == PC.
	Exception ExceptionKind
	ExcAddr   uint64 // faulting address for memory exceptions

	// Register result.
	DestValid bool
	Dest      isa.Reg
	DestVal   uint64

	// Memory effect.
	IsLoad    bool
	IsStore   bool
	MemAddr   uint64
	StoreVal  uint64
	StoreSize uint8

	// Control flow.
	IsBranch bool
	Taken    bool
	NextPC   uint64

	// Halted is set when the instruction was HALT.
	Halted bool
}

// ErrStopped is returned by Run when the simulator cannot make progress
// because it previously halted or faulted.
var ErrStopped = errors.New("arch: simulator stopped")

// Sim is the architectural simulator. Fields are exported so fault-injection
// campaigns can corrupt architectural state directly, which is exactly the
// Figure 2 fault model.
type Sim struct {
	Regs [isa.NumRegs]uint64
	PC   uint64
	Mem  *mem.Memory

	// InstRet counts retired (successfully executed) instructions.
	InstRet uint64
	// Halted is set once a HALT instruction executes.
	Halted bool
	// Excepted is set once an instruction faults; the simulator stops.
	Excepted bool
	// LastException records the exception that stopped the simulator.
	LastException ExceptionKind

	// DCache, when non-nil, memoises isa.Decode over the workload's
	// static code image (campaigns build it once per program). Not
	// architectural state: lookups verify the fetched word, so corrupted
	// or rewritten code decodes afresh and behaviour is unchanged.
	DCache *isa.DecodeCache
}

// New returns a simulator starting at entry over the given memory image.
func New(m *mem.Memory, entry uint64) *Sim {
	return &Sim{Mem: m, PC: entry}
}

// Reg reads an architectural register, honouring the hardwired zero.
func (s *Sim) Reg(r isa.Reg) uint64 {
	if r == isa.RegZero {
		return 0
	}
	return s.Regs[r&31]
}

// SetReg writes an architectural register; writes to the zero register are
// discarded.
func (s *Sim) SetReg(r isa.Reg, v uint64) {
	if r == isa.RegZero {
		return
	}
	s.Regs[r&31] = v
}

// Stopped reports whether the simulator can no longer step.
func (s *Sim) Stopped() bool { return s.Halted || s.Excepted }

// Step executes one instruction and returns its architectural event. On an
// exception the event records the fault, architectural state is unchanged,
// and the simulator stops (precise exception semantics: the program cannot
// continue without a handler, per Section 3.2.1).
//
// Step is the VM-level campaign's trial inner loop, annotated hot: it must
// stay allocation-free (hotpathalloc proves it; the campaign benchmarks
// pin 0 allocs/op dynamically).
//
//restorelint:hotpath
func (s *Sim) Step() Event {
	ev := Event{PC: s.PC}
	if s.Stopped() {
		ev.Exception = s.LastException
		ev.Halted = s.Halted
		return ev
	}

	word, err := s.Mem.FetchWord(s.PC)
	if err != nil {
		return s.except(ev, ExcAccessFault, s.PC)
	}
	inst, cached := isa.Inst{}, false
	if s.DCache != nil {
		inst, cached = s.DCache.Lookup(s.PC, word)
	}
	if !cached {
		inst = isa.Decode(word)
	}
	ev.Inst = inst
	nextPC := s.PC + isa.InstBytes

	switch isa.ClassOf(inst.Op) {
	case isa.ClassInvalid:
		return s.except(ev, ExcIllegalInstruction, s.PC)

	case isa.ClassNop:
		// Nothing.

	case isa.ClassHalt:
		ev.Halted = true
		s.Halted = true
		s.InstRet++
		ev.NextPC = s.PC
		return ev

	case isa.ClassALU, isa.ClassMul:
		res, exc := s.evalOperate(inst)
		if exc != ExcNone {
			return s.except(ev, exc, s.PC)
		}
		dest, _ := inst.Dest()
		write := true
		if inst.Op == isa.OpCMOVEQ || inst.Op == isa.OpCMOVNE {
			write = isa.EvalCondMove(inst.Op, s.Reg(inst.Ra))
			if write {
				res = s.operandB(inst)
			} else {
				res = s.Reg(dest) // value unchanged
			}
		}
		if write {
			s.SetReg(dest, res)
		}
		ev.DestValid = true
		ev.Dest = dest
		ev.DestVal = s.Reg(dest)

	case isa.ClassLoad:
		addr := s.Reg(inst.Rb) + uint64(int64(inst.Disp))
		ev.IsLoad = true
		ev.MemAddr = addr
		val, exc, excAddr := s.load(inst, addr)
		if exc != ExcNone {
			return s.except(ev, exc, excAddr)
		}
		s.SetReg(inst.Ra, val)
		ev.DestValid = true
		ev.Dest = inst.Ra
		ev.DestVal = s.Reg(inst.Ra)

	case isa.ClassStore:
		addr := s.Reg(inst.Rb) + uint64(int64(inst.Disp))
		val := s.Reg(inst.Ra)
		ev.IsStore = true
		ev.MemAddr = addr
		ev.StoreVal = val
		ev.StoreSize = uint8(inst.MemBytes())
		if exc, excAddr := s.store(inst, addr, val); exc != ExcNone {
			return s.except(ev, exc, excAddr)
		}

	case isa.ClassBranch:
		ev.IsBranch = true
		taken, target, link, hasLink, linkReg := s.evalBranch(inst)
		if hasLink {
			s.SetReg(linkReg, link)
			ev.DestValid = true
			ev.Dest = linkReg
			ev.DestVal = s.Reg(linkReg)
		}
		ev.Taken = taken
		if taken {
			nextPC = target
		}
	}

	s.PC = nextPC
	s.InstRet++
	ev.NextPC = nextPC
	return ev
}

func (s *Sim) except(ev Event, kind ExceptionKind, addr uint64) Event {
	ev.Exception = kind
	ev.ExcAddr = addr
	ev.NextPC = ev.PC
	s.Excepted = true
	s.LastException = kind
	return ev
}

func (s *Sim) operandB(inst isa.Inst) uint64 {
	if inst.UseLit {
		return uint64(inst.Lit)
	}
	return s.Reg(inst.Rb)
}

func (s *Sim) evalOperate(inst isa.Inst) (uint64, ExceptionKind) {
	switch inst.Op {
	case isa.OpLDA:
		return s.Reg(inst.Rb) + uint64(int64(inst.Disp)), ExcNone
	case isa.OpLDAH:
		return s.Reg(inst.Rb) + uint64(int64(inst.Disp))<<16, ExcNone
	case isa.OpCMOVEQ, isa.OpCMOVNE:
		return 0, ExcNone // handled by caller
	}
	res, overflow := isa.EvalOperate(inst.Op, s.Reg(inst.Ra), s.operandB(inst))
	if overflow && inst.TrapsOverflow() {
		return 0, ExcOverflow
	}
	return res, ExcNone
}

func (s *Sim) load(inst isa.Inst, addr uint64) (val uint64, exc ExceptionKind, excAddr uint64) {
	switch inst.Op {
	case isa.OpLDQ:
		v, err := s.Mem.ReadQ(addr)
		if err != nil {
			return 0, memExc(err), addr
		}
		return v, ExcNone, 0
	case isa.OpLDL:
		v, err := s.Mem.ReadL(addr)
		if err != nil {
			return 0, memExc(err), addr
		}
		return uint64(int64(int32(v))), ExcNone, 0
	}
	return 0, ExcIllegalInstruction, addr
}

func (s *Sim) store(inst isa.Inst, addr, val uint64) (exc ExceptionKind, excAddr uint64) {
	switch inst.Op {
	case isa.OpSTQ:
		if err := s.Mem.WriteQ(addr, val); err != nil {
			return memExc(err), addr
		}
		return ExcNone, 0
	case isa.OpSTL:
		if err := s.Mem.WriteL(addr, uint32(val)); err != nil {
			return memExc(err), addr
		}
		return ExcNone, 0
	}
	return ExcIllegalInstruction, addr
}

func (s *Sim) evalBranch(inst isa.Inst) (taken bool, target, link uint64, hasLink bool, linkReg isa.Reg) {
	retAddr := s.PC + isa.InstBytes
	switch inst.Op {
	case isa.OpBR, isa.OpBSR:
		return true, isa.BranchTarget(s.PC, inst.Disp), retAddr, true, inst.Ra
	case isa.OpJMP, isa.OpJSR, isa.OpRET:
		return true, s.Reg(inst.Rb) &^ 3, retAddr, true, inst.Rc
	default:
		taken = isa.EvalCondBranch(inst.Op, s.Reg(inst.Ra))
		return taken, isa.BranchTarget(s.PC, inst.Disp), 0, false, 0
	}
}

// MemExc converts a memory fault into its ISA exception.
func memExc(err error) ExceptionKind {
	var f *mem.Fault
	//restorelint:allowalloc -- exception path: runs only when a trial already faulted, never in steady state
	if errors.As(err, &f) && f.Kind == mem.FaultAlign {
		return ExcAlignment
	}
	return ExcAccessFault
}

// Run executes up to n instructions, stopping early on HALT or exception.
// It returns the number of instructions retired and the last event.
func (s *Sim) Run(n uint64) (uint64, Event, error) {
	if s.Stopped() {
		return 0, Event{}, ErrStopped
	}
	var (
		executed uint64
		last     Event
	)
	for executed < n {
		last = s.Step()
		if last.Exception != ExcNone {
			return executed, last, nil
		}
		executed++
		if last.Halted {
			break
		}
	}
	return executed, last, nil
}

// Snapshot captures the register state and PC (memory is snapshotted
// separately via the memory journal).
type Snapshot struct {
	Regs    [isa.NumRegs]uint64
	PC      uint64
	InstRet uint64
}

// Snapshot returns a copy of the simulator's register state.
func (s *Sim) Snapshot() Snapshot {
	return Snapshot{Regs: s.Regs, PC: s.PC, InstRet: s.InstRet}
}

// Restore resets register state to the snapshot and clears stop conditions.
func (s *Sim) Restore(snap Snapshot) {
	s.Regs = snap.Regs
	s.PC = snap.PC
	s.InstRet = snap.InstRet
	s.Halted = false
	s.Excepted = false
	s.LastException = ExcNone
}
