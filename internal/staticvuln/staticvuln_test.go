package staticvuln

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/workload"
)

func TestKbitsTransfers(t *testing.T) {
	c5 := kbConst(5)
	if !c5.ok() || c5.val() != 5 {
		t.Fatalf("kbConst(5) = %+v", c5)
	}
	cases := []struct {
		name string
		op   isa.Op
		a, b kbits
		want kbits
	}{
		{"and const", isa.OpAND, kbTop, kbConst(0xFF), kbits{zero: ^uint64(0xFF)}},
		{"bis const", isa.OpBIS, kbTop, kbConst(0xF0), kbits{one: 0xF0}},
		{"xor consts", isa.OpXOR, kbConst(0xFF), kbConst(0x0F), kbConst(0xF0)},
		{"sll", isa.OpSLL, kbits{zero: ^uint64(0xFF)}, kbConst(8), kbits{zero: ^uint64(0xFF00)}},
		{"srl", isa.OpSRL, kbTop, kbConst(48), kbits{zero: ^uint64(0xFFFF)}},
		{"cmp", isa.OpCMPEQ, kbTop, kbTop, kbits{zero: ^uint64(1)}},
		{"bic", isa.OpBIC, kbTop, kbConst(0x0F), kbits{zero: 0x0F}},
	}
	for _, tc := range cases {
		if got := kbEval(tc.op, tc.a, tc.b); got != tc.want {
			t.Errorf("%s: kbEval = %+v, want %+v", tc.name, got, tc.want)
		}
	}
	// Width-bounded addition: two values below 2^10 sum below 2^11.
	sum := kbAdd(kbits{zero: ^uint64(0x3FF)}, kbits{zero: ^uint64(0x3FF)})
	if sum.zero&(1<<5) != 0 {
		t.Errorf("kbAdd should not know low bits: %+v", sum)
	}
	if sum.zero&(1<<20) == 0 {
		t.Errorf("kbAdd should bound the width: %+v", sum)
	}
}

func TestSrcDemand(t *testing.T) {
	lit := func(op isa.Op, v uint8) isa.Inst {
		return isa.Inst{Op: op, Ra: 1, UseLit: true, Lit: v, Rc: 2}
	}
	rr := func(op isa.Op) isa.Inst { return isa.Inst{Op: op, Ra: 1, Rb: 2, Rc: 3} }

	// Addition preserves bit positions.
	if got := srcDemand(rr(isa.OpADDQ), true, 1<<40, kbTop, kbTop); got != 1<<40 {
		t.Errorf("addq demand = %#x", got)
	}
	// Multiplication scrambles them downward.
	if got := srcDemand(rr(isa.OpMULQ), true, 1<<40, kbTop, kbTop); got != (uint64(1)<<41)-1 {
		t.Errorf("mulq demand = %#x", got)
	}
	// AND with a literal mask absorbs flips of masked-out bits.
	if got := srcDemand(lit(isa.OpAND, 0xF), true, ^uint64(0), kbTop, kbConst(0xF)); got != 0xF {
		t.Errorf("and demand = %#x", got)
	}
	// AND against a value with known-zero high bits: mask-side flips of
	// those bits cannot reach the result.
	hash := kbits{zero: ^uint64(0xFFFF)}
	if got := srcDemand(rr(isa.OpAND), false, ^uint64(0), hash, kbTop); got != 0xFFFF {
		t.Errorf("and mask-side demand = %#x", got)
	}
	// OR: known-one bits of the other side dominate.
	if got := srcDemand(rr(isa.OpBIS), true, ^uint64(0), kbTop, kbits{one: 0xFF}); got != ^uint64(0xFF) {
		t.Errorf("bis demand = %#x", got)
	}
	// Shifts relocate the live window; the amount register matters mod 64.
	if got := srcDemand(lit(isa.OpSRL, 48), true, 0xFFFF, kbTop, kbConst(48)); got != 0xFFFF<<48 {
		t.Errorf("srl value demand = %#x", got)
	}
	if got := srcDemand(rr(isa.OpSLL), false, 0xFF, kbTop, kbTop); got != 0x3F {
		t.Errorf("shift amount demand = %#x", got)
	}
	// Compares collapse onto bit 0 of the result.
	if got := srcDemand(rr(isa.OpCMPEQ), true, 1, kbTop, kbTop); got != ^uint64(0) {
		t.Errorf("cmp live demand = %#x", got)
	}
	if got := srcDemand(rr(isa.OpCMPEQ), true, ^uint64(1), kbTop, kbTop); got != 0 {
		t.Errorf("cmp dead demand = %#x", got)
	}
	// 32-bit ops fold the sign-extended half back onto bit 31.
	if got := srcDemand(rr(isa.OpADDL), true, 1<<40, kbTop, kbTop); got != 1<<31 {
		t.Errorf("addl demand = %#x", got)
	}
	// Zero result-liveness always yields zero demand.
	if got := srcDemand(rr(isa.OpMULQ), true, 0, kbTop, kbTop); got != 0 {
		t.Errorf("dead result demand = %#x", got)
	}
}

const cfgProg = `
.data d 256
.base r16 d
start:
	bsr ra, f
	addq r1, #1, r1
	br start
f:
	addq zero, #5, r2
	ret (ra)
`

func TestCFGShape(t *testing.T) {
	p := asm.MustAssemble("cfgprog", cfgProg)
	g, err := buildCFG(p)
	if err != nil {
		t.Fatal(err)
	}
	// Locate blocks by their final instruction.
	var bsrBlock, retBlock, brBlock = -1, -1, -1
	for bi := range g.blocks {
		switch g.insts[g.blocks[bi].end-1].Op {
		case isa.OpBSR:
			bsrBlock = bi
		case isa.OpRET:
			retBlock = bi
		case isa.OpBR:
			brBlock = bi
		}
	}
	if bsrBlock < 0 || retBlock < 0 || brBlock < 0 {
		t.Fatalf("missing blocks: bsr=%d ret=%d br=%d", bsrBlock, retBlock, brBlock)
	}
	// A call forks to the callee and the fallthrough; a return ends its
	// block (the continuation is the caller's fallthrough edge).
	if len(g.blocks[bsrBlock].succs) != 2 {
		t.Errorf("bsr block succs = %v, want 2", g.blocks[bsrBlock].succs)
	}
	if len(g.blocks[retBlock].succs) != 0 {
		t.Errorf("ret block succs = %v, want none", g.blocks[retBlock].succs)
	}
	// The br back edge closes a natural loop around start..br; the .base
	// prologue before the start label stays outside it.
	if g.loopDepth[g.entry] != 0 {
		t.Errorf("entry (prologue) loop depth = %d, want 0", g.loopDepth[g.entry])
	}
	if g.loopDepth[bsrBlock] != 1 {
		t.Errorf("bsr block loop depth = %d, want 1", g.loopDepth[bsrBlock])
	}
	if g.loopDepth[brBlock] != 1 {
		t.Errorf("br block loop depth = %d, want 1", g.loopDepth[brBlock])
	}
}

func TestJumpTableRecovery(t *testing.T) {
	b := workload.NewBuilder("jt")
	tbl := b.AllocData("tbl", make([]byte, 64), mem.PermRead)
	b.PatchCodeAddr(tbl, 0, "case0")
	b.Label("start")
	b.LoadImm(16, tbl)
	b.Load(isa.OpLDQ, 2, 0, 16)
	b.Emit(isa.Inst{Op: isa.OpJSR, Rc: isa.RegRA, Rb: 2})
	b.Branch(isa.OpBR, isa.RegZero, "start")
	b.Label("case0")
	b.OpLit(isa.OpADDQ, isa.RegZero, 1, 1)
	b.Ret()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g, err := buildCFG(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.indirectTargets) == 0 {
		t.Fatal("jump table target not recovered from data segment")
	}
	// The jsr block must list the recovered target as a successor.
	for bi := range g.blocks {
		if g.insts[g.blocks[bi].end-1].Op != isa.OpJSR {
			continue
		}
		found := false
		for _, s := range g.blocks[bi].succs {
			for _, tgt := range g.indirectTargets {
				if s == tgt {
					found = true
				}
			}
		}
		if !found {
			t.Errorf("jsr block succs %v missing indirect target %v",
				g.blocks[bi].succs, g.indirectTargets)
		}
	}
}

// The arraysum shape: an accumulator whose only observable effect is a store
// into a result slot nobody loads. Every bit of the accumulator chain is
// un-ACE; the walking pointer is exception-ACE in its high bits but not in
// the bits that merely shift it inside its mapped segment.
const deadAccProg = `
.data d 4096
.base r16 d
start:
	bis zero, zero, r3
	addq r16, #64, r1
	addq zero, #8, r2
loop:
	ldq r4, 0(r1)
	addq r3, r4, r3
	addq r1, #8, r1
	subq r2, #1, r2
	bgt r2, loop
	stq r3, 8(r16)
	br start
`

func findInst(t *testing.T, rep *Report, match func(isa.Inst) bool) *InstReport {
	t.Helper()
	for i := range rep.Insts {
		if match(rep.Insts[i].Inst) {
			return &rep.Insts[i]
		}
	}
	t.Fatal("instruction not found")
	return nil
}

func TestDeadAccumulator(t *testing.T) {
	p := asm.MustAssemble("deadacc", deadAccProg)
	rep, err := Analyze(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	acc := findInst(t, rep, func(i isa.Inst) bool {
		return i.Op == isa.OpADDQ && !i.UseLit && i.Rc == 3
	})
	if acc.ACEMask() != 0 {
		t.Errorf("accumulator ACE mask = %#x, want 0 (store is never loaded)", acc.ACEMask())
	}
	ld := findInst(t, rep, func(i isa.Inst) bool { return i.Op == isa.OpLDQ })
	if ld.ACEMask() != 0 {
		t.Errorf("loaded value ACE mask = %#x, want 0", ld.ACEMask())
	}
	ptr := findInst(t, rep, func(i isa.Inst) bool {
		return i.Op == isa.OpADDQ && i.UseLit && i.Lit == 8 && i.Rc == 1
	})
	if ptr.Exception&(1<<63) == 0 {
		t.Errorf("pointer bit 63 not exception-ACE: %#x", ptr.Exception)
	}
	if ptr.Exception&(1<<5) != 0 {
		t.Errorf("pointer bit 5 exception-ACE despite staying in segment: %#x", ptr.Exception)
	}
	if ptr.ACEMask() == 0 {
		t.Error("pointer fully dead")
	}
	// The loop counter steers the trip count: control-flow ACE.
	ctr := findInst(t, rep, func(i isa.Inst) bool { return i.Op == isa.OpSUBQ })
	if ctr.CFV == 0 {
		t.Errorf("loop counter CFV mask = 0")
	}
}

// The branchy flag shape: a flag that can only be 0 or 1 feeds a zero-test
// branch. Only bit 0 of the flag can change the direction the analysis can
// see; known-zero bits are charged to masked.
const flagProg = `
.data d 4096
.base r16 d
start:
	ldq r5, 64(r16)
	and r5, #1, r6
	bne r6, odd
	addq r7, #1, r7
odd:
	stq r5, 64(r16)
	br start
`

func TestFlagBranchCondition(t *testing.T) {
	p := asm.MustAssemble("flag", flagProg)
	rep, err := Analyze(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	flag := findInst(t, rep, func(i isa.Inst) bool { return i.Op == isa.OpAND })
	if flag.CFV != 1 {
		t.Errorf("flag CFV mask = %#x, want bit 0 only", flag.CFV)
	}
	if flag.Latency != 1 {
		t.Errorf("flag latency = %d, want 1 (next instruction branches)", flag.Latency)
	}
	// The loaded value feeds both the flag (bit 0) and the store (live:
	// the slot is reloaded every iteration).
	ld := findInst(t, rep, func(i isa.Inst) bool { return i.Op == isa.OpLDQ })
	if ld.CFV&1 == 0 {
		t.Errorf("loaded value bit 0 should be CFV-ACE: %#x", ld.CFV)
	}
	if ld.ACEMask() == 0 {
		t.Error("stored-and-reloaded value reported dead")
	}
}

// A counter that is never rewritten from anything but itself: corruption
// persists forever, the register-divergence outcome.
const selfLiveProg = `
.data d 4096
.base r16 d
start:
	addq r9, #1, r9
	stq r9, 0(r16)
	br start
`

func TestSelfLiveCounter(t *testing.T) {
	p := asm.MustAssemble("selflive", selfLiveProg)
	rep, err := Analyze(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctr := findInst(t, rep, func(i isa.Inst) bool { return i.Op == isa.OpADDQ && i.Rc == 9 })
	if ctr.Register != ^uint64(0) {
		t.Errorf("self-perpetuating counter Register mask = %#x, want all bits", ctr.Register)
	}
	for b := uint(0); b < 64; b++ {
		if ctr.ClassOf(b) == SymMasked {
			t.Fatalf("counter bit %d classified masked", b)
		}
	}
}

func TestProfileSamplingWeights(t *testing.T) {
	p := asm.MustAssemble("prof", `
.data d 256
.base r16 d
start:
	addq zero, #1, r1
	stq r1, 0(r16)
	stq r1, 8(r16)
	addq zero, #2, r2
	halt
`)
	w, err := Profile(p, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	var first, second int = -1, -1
	for i, raw := range p.Code {
		inst := isa.Decode(raw)
		if inst.Op == isa.OpADDQ && inst.UseLit && inst.Lit == 1 && inst.Rc == 1 {
			first = i
		}
		if inst.Op == isa.OpADDQ && inst.UseLit && inst.Lit == 2 && inst.Rc == 2 {
			second = i
		}
	}
	if first < 0 || second < 0 {
		t.Fatal("markers not found")
	}
	if w[first] != 1 {
		t.Errorf("first marker weight = %d, want 1", w[first])
	}
	// The two stores write no register: their sampling mass lands on the
	// next register-writing instruction, exactly as the campaign's
	// injection-point walker behaves.
	if w[second] != 3 {
		t.Errorf("second marker weight = %d, want 3 (two stores + itself)", w[second])
	}
	if w[first+1] != 0 || w[first+2] != 0 {
		t.Errorf("store weights = %d,%d, want 0", w[first+1], w[first+2])
	}
}

func TestAnalyzeBenchmarksSane(t *testing.T) {
	for _, b := range workload.Benchmarks() {
		p := workload.MustGenerate(b, workload.Config{Seed: 7, Scale: 0.25})
		rep, err := Analyze(p, Options{})
		if err != nil {
			t.Fatalf("%s: %v", b, err)
		}
		mf := rep.MaskedFraction(false)
		if mf <= 0 || mf >= 1 {
			t.Errorf("%s: masked fraction %v out of (0,1)", b, mf)
		}
		fr := rep.SymptomFractions(false)
		sum := 0.0
		for _, v := range fr {
			if v < 0 || v > 1 {
				t.Errorf("%s: fraction %v out of range", b, v)
			}
			sum += v
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%s: symptom fractions sum to %v", b, sum)
		}
		if got := fr[SymMasked]; got != mf {
			t.Errorf("%s: SymptomFractions masked %v != MaskedFraction %v", b, got, mf)
		}
		if avf := rep.PerRegisterAVF(false); len(avf) == 0 {
			t.Errorf("%s: empty per-register AVF", b)
		}
		out := rep.Render(false)
		for _, want := range []string{"predicted masked fraction", "exception", "per-register AVF"} {
			if !strings.Contains(out, want) {
				t.Errorf("%s: Render output missing %q", b, want)
			}
		}
		// Determinism: a second analysis of the same program agrees.
		rep2, err := Analyze(p, Options{})
		if err != nil {
			t.Fatalf("%s: %v", b, err)
		}
		if rep2.MaskedFraction(false) != mf {
			t.Errorf("%s: non-deterministic masked fraction", b)
		}
	}
}

func TestLow32Restriction(t *testing.T) {
	// One instruction whose only ACE bit is bit 40: under the full 64-bit
	// flip model 63/64 of flips are masked; restricted to the low 32 bits
	// the ACE bit is out of reach and everything is masked.
	rep := &Report{
		Program: "synthetic",
		Insts: []InstReport{{
			HasDest: true, Dest: 5, Weight: 1, Exception: 1 << 40,
		}},
	}
	if got := rep.MaskedFraction(false); got != 63.0/64.0 {
		t.Errorf("full masked fraction = %v, want 63/64", got)
	}
	if got := rep.MaskedFraction(true); got != 1.0 {
		t.Errorf("low32 masked fraction = %v, want 1", got)
	}
	fr := rep.SymptomFractions(false)
	if fr[SymException] != 1.0/64.0 {
		t.Errorf("exception fraction = %v, want 1/64", fr[SymException])
	}
}

func TestAnalyzeErrors(t *testing.T) {
	if _, err := Analyze(&workload.Program{Name: "empty"}, Options{}); err == nil {
		t.Error("empty program should fail")
	}
	p := asm.MustAssemble("tiny", "start:\n\tbr start\n")
	if _, err := Analyze(p, Options{Weights: []uint64{1, 2, 3, 4, 5}}); err == nil {
		t.Error("mismatched weight vector should fail")
	}
}
