package mem

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMapAndReadWrite(t *testing.T) {
	m := New()
	m.Map(0x10000, 0x4000, PermRW)

	if err := m.WriteQ(0x10008, 0xDEADBEEFCAFEF00D); err != nil {
		t.Fatalf("WriteQ: %v", err)
	}
	got, err := m.ReadQ(0x10008)
	if err != nil {
		t.Fatalf("ReadQ: %v", err)
	}
	if got != 0xDEADBEEFCAFEF00D {
		t.Errorf("ReadQ = %#x", got)
	}

	if err := m.WriteL(0x10010, 0x12345678); err != nil {
		t.Fatalf("WriteL: %v", err)
	}
	l, err := m.ReadL(0x10010)
	if err != nil {
		t.Fatalf("ReadL: %v", err)
	}
	if l != 0x12345678 {
		t.Errorf("ReadL = %#x", l)
	}
}

func TestUnmappedAccessFaults(t *testing.T) {
	m := New()
	m.Map(0x10000, PageSize, PermRW)

	_, err := m.ReadQ(0xDEAD0000)
	var f *Fault
	if !errors.As(err, &f) || f.Kind != FaultAccess {
		t.Fatalf("expected access fault, got %v", err)
	}
	if f.Write {
		t.Error("read fault should not be marked as write")
	}

	err = m.WriteQ(0xDEAD0000, 1)
	if !errors.As(err, &f) || f.Kind != FaultAccess || !f.Write {
		t.Fatalf("expected write access fault, got %v", err)
	}
}

func TestPermissionFaults(t *testing.T) {
	m := New()
	m.Map(0x1000, PageSize, PermRead)
	if _, err := m.ReadQ(0x1000); err != nil {
		t.Errorf("read on read-only page: %v", err)
	}
	var f *Fault
	if err := m.WriteQ(0x1000, 1); !errors.As(err, &f) || f.Kind != FaultAccess {
		t.Errorf("write to read-only page should fault, got %v", err)
	}
	if _, err := m.FetchWord(0x1000); !errors.As(err, &f) || f.Kind != FaultAccess {
		t.Errorf("fetch from non-exec page should fault, got %v", err)
	}

	m.Map(0x2000, PageSize, PermRX)
	if _, err := m.FetchWord(0x2000); err != nil {
		t.Errorf("fetch from exec page: %v", err)
	}
}

func TestAlignmentFaults(t *testing.T) {
	m := New()
	m.Map(0, PageSize, PermRW)
	var f *Fault
	if _, err := m.ReadQ(4); !errors.As(err, &f) || f.Kind != FaultAlign {
		t.Errorf("misaligned ReadQ should raise alignment fault, got %v", err)
	}
	if _, err := m.ReadL(2); !errors.As(err, &f) || f.Kind != FaultAlign {
		t.Errorf("misaligned ReadL should raise alignment fault, got %v", err)
	}
	if err := m.WriteQ(12, 0); !errors.As(err, &f) || f.Kind != FaultAlign {
		t.Errorf("misaligned WriteQ should raise alignment fault, got %v", err)
	}
}

func TestFaultErrorStrings(t *testing.T) {
	e1 := (&Fault{Kind: FaultAccess, Addr: 0x10, Write: true}).Error()
	e2 := (&Fault{Kind: FaultAlign, Addr: 0x11}).Error()
	if e1 == "" || e2 == "" || e1 == e2 {
		t.Errorf("fault strings not distinguishing: %q vs %q", e1, e2)
	}
}

func TestCrossPageWriteBytes(t *testing.T) {
	m := New()
	m.Map(0, 2*PageSize, PermRW)
	data := make([]byte, 300)
	for i := range data {
		data[i] = byte(i)
	}
	if err := m.WriteBytes(PageSize-100, data); err != nil {
		t.Fatalf("WriteBytes: %v", err)
	}
	got, err := m.ReadBytes(PageSize-100, 300)
	if err != nil {
		t.Fatalf("ReadBytes: %v", err)
	}
	for i := range got {
		if got[i] != byte(i) {
			t.Fatalf("byte %d = %d", i, got[i])
		}
	}
}

func TestJournalRestore(t *testing.T) {
	m := New()
	m.Map(0, PageSize, PermRW)
	m.EnableJournal()

	if err := m.WriteQ(0, 1); err != nil {
		t.Fatal(err)
	}
	mark := m.Snapshot()
	if err := m.WriteQ(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteQ(8, 3); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteL(16, 4); err != nil {
		t.Fatal(err)
	}

	m.RestoreTo(mark)
	if v, _ := m.ReadQ(0); v != 1 {
		t.Errorf("after restore [0] = %d, want 1", v)
	}
	if v, _ := m.ReadQ(8); v != 0 {
		t.Errorf("after restore [8] = %d, want 0", v)
	}
	if v, _ := m.ReadL(16); v != 0 {
		t.Errorf("after restore [16] = %d, want 0", v)
	}
	if m.JournalLen() != int(mark) {
		t.Errorf("journal len = %d, want %d", m.JournalLen(), mark)
	}
}

func TestJournalDiscard(t *testing.T) {
	m := New()
	m.Map(0, PageSize, PermRW)
	m.EnableJournal()

	if err := m.WriteQ(0, 1); err != nil {
		t.Fatal(err)
	}
	mark := m.Snapshot()
	if err := m.WriteQ(0, 2); err != nil {
		t.Fatal(err)
	}
	if dropped := m.DiscardTo(mark); dropped != 1 {
		t.Errorf("DiscardTo dropped %d records, want 1", dropped)
	}

	// The pre-mark write (value 1) is now permanent: restoring all the
	// way back undoes only the post-mark write.
	m.RestoreTo(0)
	if v, _ := m.ReadQ(0); v != 1 {
		t.Errorf("after discard+restore [0] = %d, want 1", v)
	}

	// Discarding past the end clears the journal entirely.
	if err := m.WriteQ(0, 5); err != nil {
		t.Fatal(err)
	}
	m.DiscardTo(Mark(99))
	if m.JournalLen() != 0 {
		t.Errorf("journal len = %d after over-discard, want 0", m.JournalLen())
	}
}

func TestJournalRestoreProperty(t *testing.T) {
	// Property: any random write sequence after a snapshot is fully
	// undone by RestoreTo.
	f := func(seed int64, writes uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := New()
		m.Map(0, 4*PageSize, PermRW)
		m.EnableJournal()
		// Pre-populate.
		for i := 0; i < 64; i++ {
			if err := m.WriteQ(uint64(rng.Intn(4*PageSize/8))*8, rng.Uint64()); err != nil {
				return false
			}
		}
		before := m.Clone()
		mark := m.Snapshot()
		for i := 0; i < int(writes); i++ {
			addr := uint64(rng.Intn(4*PageSize/8)) * 8
			if rng.Intn(2) == 0 {
				if err := m.WriteQ(addr, rng.Uint64()); err != nil {
					return false
				}
			} else {
				if err := m.WriteL(addr, rng.Uint32()); err != nil {
					return false
				}
			}
		}
		m.RestoreTo(mark)
		return m.Equal(before)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := New()
	m.Map(0, PageSize, PermRW)
	if err := m.WriteQ(0, 42); err != nil {
		t.Fatal(err)
	}
	c := m.Clone()
	if err := m.WriteQ(0, 43); err != nil {
		t.Fatal(err)
	}
	if v, _ := c.ReadQ(0); v != 42 {
		t.Errorf("clone affected by original write: %d", v)
	}
	if m.Equal(c) {
		t.Error("images should differ after divergent write")
	}
}

func TestFirstDifference(t *testing.T) {
	m := New()
	m.Map(0, PageSize, PermRW)
	c := m.Clone()
	if _, diff := m.FirstDifference(c); diff {
		t.Fatal("identical images reported different")
	}
	if err := m.WriteQ(128, 7); err != nil {
		t.Fatal(err)
	}
	addr, diff := m.FirstDifference(c)
	if !diff || addr != 128 {
		t.Errorf("FirstDifference = %#x,%v want 0x80,true", addr, diff)
	}
	// Page mapped in one image only.
	c2 := m.Clone()
	c2.Map(1<<20, PageSize, PermRW)
	if _, diff := m.FirstDifference(c2); !diff {
		t.Error("extra mapping should count as difference")
	}
}

func TestHashStability(t *testing.T) {
	build := func() *Memory {
		m := New()
		m.Map(0x30000, PageSize, PermRW)
		m.Map(0x10000, PageSize, PermRX)
		_ = m.WriteBytes(0x30000, []byte{1, 2, 3})
		return m
	}
	a, b := build(), build()
	if a.Hash() != b.Hash() {
		t.Error("hash not deterministic across identical images")
	}
	if err := a.WriteQ(0x30008, 9); err != nil {
		t.Fatal(err)
	}
	if a.Hash() == b.Hash() {
		t.Error("hash did not change after write")
	}
}

func TestMappedAndFootprint(t *testing.T) {
	m := New()
	m.Map(0, 3*PageSize, PermRW)
	if !m.Mapped(2*PageSize, PermRead) {
		t.Error("expected page mapped")
	}
	if m.Mapped(3*PageSize, PermRead) {
		t.Error("expected page unmapped")
	}
	if m.Mapped(0, PermExec) {
		t.Error("RW page should not allow exec")
	}
	if m.Pages() != 3 || m.Footprint() != 3*PageSize {
		t.Errorf("pages=%d footprint=%d", m.Pages(), m.Footprint())
	}
	m.Map(0, 1, 0) // zero-length no-op
	m.Map(0, 0, PermRW)
}

func TestCopyFromMatchesClone(t *testing.T) {
	src := New()
	src.Map(0x10000, 3*PageSize, PermRW)
	src.Map(0x40000, PageSize, PermRead)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		addr := 0x10000 + uint64(rng.Intn(3*PageSize/8))*8
		if err := src.WriteQ(addr, rng.Uint64()); err != nil {
			t.Fatal(err)
		}
	}

	// The destination starts with a different layout, dirtied contents,
	// an extra page, and a live journal — all of which CopyFrom must
	// discard or overwrite.
	dst := New()
	dst.Map(0x10000, PageSize, PermRW)
	dst.Map(0x90000, PageSize, PermRW) // not mapped in src
	dst.EnableJournal()
	if err := dst.WriteQ(0x10000, 0xDEAD); err != nil {
		t.Fatal(err)
	}

	dst.CopyFrom(src)
	if !dst.Equal(src) {
		t.Fatal("CopyFrom image differs from source")
	}
	if dst.Pages() != src.Pages() {
		t.Fatalf("pages = %d, want %d (stale page not dropped)", dst.Pages(), src.Pages())
	}
	if _, err := dst.ReadQ(0x90000); err == nil {
		t.Error("page absent in source survived CopyFrom")
	}
	if err := dst.WriteQ(0x40000, 1); err == nil {
		t.Error("read-only permission not copied")
	}
	// Journal state is excluded, matching Clone.
	if dst.JournalLen() != 0 {
		t.Errorf("journal survived CopyFrom: %d records", dst.JournalLen())
	}
	if err := dst.WriteQ(0x10008, 7); err != nil {
		t.Fatal(err)
	}
	if dst.JournalLen() != 0 {
		t.Error("journalling still enabled after CopyFrom")
	}

	// Writes after the copy must not leak back into the source.
	if v, err := src.ReadQ(0x10008); err != nil || v == 7 {
		t.Errorf("source mutated through CopyFrom alias: v=%d err=%v", v, err)
	}
}

func TestRestoreToNegativeMarkClamps(t *testing.T) {
	// Regression: a Mark that went negative (e.g. rebased past zero by a
	// buggy caller) used to panic in the journal truncation. It must behave
	// like RestoreTo(0): undo everything.
	m := New()
	m.Map(0, PageSize, PermRW)
	m.EnableJournal()
	if err := m.WriteQ(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteQ(8, 2); err != nil {
		t.Fatal(err)
	}
	m.RestoreTo(Mark(-5))
	if v, _ := m.ReadQ(0); v != 0 {
		t.Errorf("[0] = %d after negative restore, want 0", v)
	}
	if v, _ := m.ReadQ(8); v != 0 {
		t.Errorf("[8] = %d after negative restore, want 0", v)
	}
	if m.JournalLen() != 0 {
		t.Errorf("journal len = %d, want 0", m.JournalLen())
	}
}

func TestRestoreToOverlongMarkIsNoop(t *testing.T) {
	// A mark beyond the journal end undoes nothing and must not panic.
	m := New()
	m.Map(0, PageSize, PermRW)
	m.EnableJournal()
	if err := m.WriteQ(0, 7); err != nil {
		t.Fatal(err)
	}
	m.RestoreTo(Mark(99))
	if v, _ := m.ReadQ(0); v != 7 {
		t.Errorf("[0] = %d, want 7 (overlong mark must not unwind)", v)
	}
}

func TestDiscardToNegativeMarkClamps(t *testing.T) {
	// Regression: DiscardTo(Mark(-1)) used to panic; it must behave like
	// DiscardTo(0) — nothing before the mark, so nothing becomes permanent
	// and the journal is untouched.
	m := New()
	m.Map(0, PageSize, PermRW)
	m.EnableJournal()
	if err := m.WriteQ(0, 3); err != nil {
		t.Fatal(err)
	}
	if dropped := m.DiscardTo(Mark(-1)); dropped != 0 {
		t.Errorf("dropped = %d, want 0", dropped)
	}
	if m.JournalLen() != 1 {
		t.Errorf("journal len = %d, want 1", m.JournalLen())
	}
	m.RestoreTo(0)
	if v, _ := m.ReadQ(0); v != 0 {
		t.Errorf("[0] = %d, want 0 (write must still be undoable)", v)
	}
}

func TestDisableJournal(t *testing.T) {
	m := New()
	m.Map(0, PageSize, PermRW)
	m.EnableJournal()
	if err := m.WriteQ(0, 1); err != nil {
		t.Fatal(err)
	}
	m.DisableJournal()
	if m.JournalLen() != 0 {
		t.Errorf("journal len = %d after disable, want 0", m.JournalLen())
	}
	// Current state is permanent, not rolled back.
	if v, _ := m.ReadQ(0); v != 1 {
		t.Errorf("[0] = %d, want 1", v)
	}
	// Further writes are not recorded.
	if err := m.WriteQ(0, 2); err != nil {
		t.Fatal(err)
	}
	if m.JournalLen() != 0 {
		t.Errorf("journal still recording after disable: %d", m.JournalLen())
	}
	// Re-enabling resumes recording from the current state.
	m.EnableJournal()
	if err := m.WriteQ(0, 9); err != nil {
		t.Fatal(err)
	}
	m.RestoreTo(0)
	if v, _ := m.ReadQ(0); v != 2 {
		t.Errorf("[0] = %d, want 2 (restore floor is the re-enable point)", v)
	}
}
