// Package asm implements a textual assembler for the Alpha-like ISA, on top
// of the workload Builder. It exists so that users of the library — and the
// fault-injection examples — can write small test programs as readable
// assembly instead of hand-constructing isa.Inst values.
//
// Syntax, one statement per line (';' or '//' starts a trailing comment;
// '#' comments a whole line, since '#' also prefixes literals):
//
//	label:                     ; define a code label
//	addq   r1, r2, r3          ; rc <- ra op rb
//	addq   r1, #10, r3         ; 8-bit literal second operand
//	lda    r2, 16(r30)         ; address calculation
//	ldq    r4, 8(r2)           ; loads/stores use disp(base)
//	stq    r4, 0(r2)
//	beq    r1, target          ; conditional branches name a label
//	br     done                ; unconditional; link register optional: br r26, f
//	jsr    r26, (r4)           ; indirect jump through a register
//	ret    (r26)
//	halt / nop
//
// Directives:
//
//	.data name size            ; allocate a zeroed RW data segment
//	.quad name offset value    ; patch a 64-bit constant into a segment
//	.base rN name              ; materialise a segment's base address in rN
//	.imm  rN value             ; materialise a 64-bit immediate in rN
//
// Register names: r0..r31, plus aliases zero (r31), sp (r30), ra (r26).
package asm

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/workload"
)

// Assemble parses source and returns a linked program named name.
func Assemble(name, source string) (*workload.Program, error) {
	a := &assembler{
		b:        workload.NewBuilder(name),
		segments: make(map[string]segment),
	}
	for i, raw := range strings.Split(source, "\n") {
		line := stripComment(raw)
		if line == "" {
			continue
		}
		if err := a.statement(line); err != nil {
			return nil, fmt.Errorf("asm: line %d: %w", i+1, err)
		}
	}
	for _, p := range a.pendingQuads {
		seg, ok := a.segments[p.seg]
		if !ok {
			return nil, fmt.Errorf("asm: .quad into unknown segment %q", p.seg)
		}
		if p.off+8 > uint64(len(seg.data)) {
			return nil, fmt.Errorf("asm: .quad offset %d outside segment %q", p.off, p.seg)
		}
		binary.LittleEndian.PutUint64(seg.data[p.off:], p.val)
	}
	return a.b.Build()
}

// MustAssemble is Assemble for programs embedded in tests and examples; it
// panics on error.
func MustAssemble(name, source string) *workload.Program {
	p, err := Assemble(name, source)
	if err != nil {
		panic(err)
	}
	return p
}

type segment struct {
	base uint64
	data []byte
}

type quadPatch struct {
	seg string
	off uint64
	val uint64
}

type assembler struct {
	b            *workload.Builder
	segments     map[string]segment
	pendingQuads []quadPatch
}

func stripComment(line string) string {
	if i := strings.Index(line, "//"); i >= 0 {
		line = line[:i]
	}
	if i := strings.IndexByte(line, ';'); i >= 0 {
		line = line[:i]
	}
	line = strings.TrimSpace(line)
	if strings.HasPrefix(line, "#") {
		return "" // whole-line comment; '#' elsewhere means a literal
	}
	return line
}

func (a *assembler) statement(line string) error {
	if strings.HasSuffix(line, ":") {
		label := strings.TrimSpace(strings.TrimSuffix(line, ":"))
		if label == "" {
			return fmt.Errorf("empty label")
		}
		a.b.Label(label)
		return nil
	}
	if strings.HasPrefix(line, ".") {
		return a.directive(line)
	}

	mnemonic, rest := splitMnemonic(line)
	ops := splitOperands(rest)
	return a.instruction(strings.ToLower(mnemonic), ops)
}

func splitMnemonic(line string) (string, string) {
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		return line[:i], strings.TrimSpace(line[i+1:])
	}
	return line, ""
}

func splitOperands(rest string) []string {
	if rest == "" {
		return nil
	}
	parts := strings.Split(rest, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func (a *assembler) directive(line string) error {
	fields := strings.Fields(line)
	switch fields[0] {
	case ".data":
		if len(fields) != 3 {
			return fmt.Errorf(".data wants: .data name size")
		}
		size, err := parseUint(fields[2])
		if err != nil {
			return err
		}
		data := make([]byte, size)
		base := a.b.AllocData(fields[1], data, mem.PermRW)
		a.segments[fields[1]] = segment{base: base, data: data}
		return nil
	case ".quad":
		if len(fields) != 4 {
			return fmt.Errorf(".quad wants: .quad segment offset value")
		}
		off, err := parseUint(fields[2])
		if err != nil {
			return err
		}
		val, err := parseUint(fields[3])
		if err != nil {
			return err
		}
		a.pendingQuads = append(a.pendingQuads, quadPatch{seg: fields[1], off: off, val: val})
		return nil
	case ".base":
		if len(fields) != 3 {
			return fmt.Errorf(".base wants: .base rN segment")
		}
		r, err := parseReg(fields[1])
		if err != nil {
			return err
		}
		seg, ok := a.segments[fields[2]]
		if !ok {
			return fmt.Errorf("unknown segment %q", fields[2])
		}
		a.b.LoadImm(r, seg.base)
		return nil
	case ".imm":
		if len(fields) != 3 {
			return fmt.Errorf(".imm wants: .imm rN value")
		}
		r, err := parseReg(fields[1])
		if err != nil {
			return err
		}
		val, err := parseUint(fields[2])
		if err != nil {
			return err
		}
		a.b.LoadImm(r, val)
		return nil
	}
	return fmt.Errorf("unknown directive %q", fields[0])
}

var operateOps = map[string]isa.Op{
	"addq": isa.OpADDQ, "subq": isa.OpSUBQ, "mulq": isa.OpMULQ,
	"addl": isa.OpADDL, "subl": isa.OpSUBL,
	"addqv": isa.OpADDQV, "subqv": isa.OpSUBQV, "mulqv": isa.OpMULQV,
	"cmpeq": isa.OpCMPEQ, "cmplt": isa.OpCMPLT, "cmple": isa.OpCMPLE,
	"cmpult": isa.OpCMPULT, "cmpule": isa.OpCMPULE,
	"and": isa.OpAND, "bis": isa.OpBIS, "or": isa.OpBIS,
	"xor": isa.OpXOR, "bic": isa.OpBIC, "ornot": isa.OpORNOT,
	"sll": isa.OpSLL, "srl": isa.OpSRL, "sra": isa.OpSRA,
	"cmoveq": isa.OpCMOVEQ, "cmovne": isa.OpCMOVNE,
}

var memOps = map[string]isa.Op{
	"ldq": isa.OpLDQ, "ldl": isa.OpLDL,
	"stq": isa.OpSTQ, "stl": isa.OpSTL,
	"lda": isa.OpLDA, "ldah": isa.OpLDAH,
}

var condBranchOps = map[string]isa.Op{
	"beq": isa.OpBEQ, "bne": isa.OpBNE, "blt": isa.OpBLT,
	"ble": isa.OpBLE, "bgt": isa.OpBGT, "bge": isa.OpBGE,
}

func (a *assembler) instruction(mn string, ops []string) error {
	switch {
	case mn == "nop":
		a.b.Nop()
		return nil
	case mn == "halt":
		a.b.Emit(isa.Inst{Op: isa.OpHALT})
		return nil
	}

	if op, ok := operateOps[mn]; ok {
		return a.operate(op, ops)
	}
	if op, ok := memOps[mn]; ok {
		return a.memory(op, ops)
	}
	if op, ok := condBranchOps[mn]; ok {
		if len(ops) != 2 {
			return fmt.Errorf("%s wants: %s rN, label", mn, mn)
		}
		r, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		a.b.Branch(op, r, ops[1])
		return nil
	}

	switch mn {
	case "br", "bsr":
		op := isa.OpBR
		if mn == "bsr" {
			op = isa.OpBSR
		}
		switch len(ops) {
		case 1: // br label
			link := isa.RegZero
			if mn == "bsr" {
				link = isa.RegRA
			}
			a.b.Branch(op, link, ops[0])
			return nil
		case 2: // br r26, label
			r, err := parseReg(ops[0])
			if err != nil {
				return err
			}
			a.b.Branch(op, r, ops[1])
			return nil
		}
		return fmt.Errorf("%s wants: %s [rN,] label", mn, mn)
	case "jmp", "jsr":
		op := isa.OpJMP
		if mn == "jsr" {
			op = isa.OpJSR
		}
		link, target := isa.RegZero, ""
		switch len(ops) {
		case 1:
			target = ops[0]
			if mn == "jsr" {
				link = isa.RegRA
			}
		case 2:
			r, err := parseReg(ops[0])
			if err != nil {
				return err
			}
			link = r
			target = ops[1]
		default:
			return fmt.Errorf("%s wants: %s [rN,] (rM)", mn, mn)
		}
		rb, err := parseIndirect(target)
		if err != nil {
			return err
		}
		a.b.Emit(isa.Inst{Op: op, Rc: link, Rb: rb})
		return nil
	case "ret":
		rb := isa.RegRA
		if len(ops) == 1 {
			r, err := parseIndirect(ops[0])
			if err != nil {
				return err
			}
			rb = r
		} else if len(ops) != 0 {
			return fmt.Errorf("ret wants: ret [(rN)]")
		}
		a.b.Emit(isa.Inst{Op: isa.OpRET, Rb: rb, Rc: isa.RegZero})
		return nil
	}
	return fmt.Errorf("unknown mnemonic %q", mn)
}

func (a *assembler) operate(op isa.Op, ops []string) error {
	if len(ops) != 3 {
		return fmt.Errorf("%v wants: op ra, rb|#lit, rc", op)
	}
	ra, err := parseReg(ops[0])
	if err != nil {
		return err
	}
	rc, err := parseReg(ops[2])
	if err != nil {
		return err
	}
	if lit, ok := strings.CutPrefix(ops[1], "#"); ok {
		v, err := parseUint(lit)
		if err != nil {
			return err
		}
		if v > 255 {
			return fmt.Errorf("literal %d exceeds 8 bits (use .imm for large constants)", v)
		}
		a.b.OpLit(op, ra, uint8(v), rc)
		return nil
	}
	rb, err := parseReg(ops[1])
	if err != nil {
		return err
	}
	a.b.Op(op, ra, rb, rc)
	return nil
}

func (a *assembler) memory(op isa.Op, ops []string) error {
	if len(ops) != 2 {
		return fmt.Errorf("%v wants: op rN, disp(rM)", op)
	}
	r, err := parseReg(ops[0])
	if err != nil {
		return err
	}
	disp, base, err := parseMemOperand(ops[1])
	if err != nil {
		return err
	}
	switch op {
	case isa.OpSTQ, isa.OpSTL:
		a.b.Store(op, r, disp, base)
	case isa.OpLDA, isa.OpLDAH:
		a.b.Emit(isa.Inst{Op: op, Ra: r, Rb: base, Disp: disp})
	default:
		a.b.Load(op, r, disp, base)
	}
	return nil
}

var regAliases = map[string]isa.Reg{
	"zero": isa.RegZero,
	"sp":   isa.RegSP,
	"ra":   isa.RegRA,
	"gp":   isa.RegGP,
	"v0":   isa.RegV0,
}

func parseReg(s string) (isa.Reg, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if r, ok := regAliases[s]; ok {
		return r, nil
	}
	num, ok := strings.CutPrefix(s, "r")
	if !ok {
		return 0, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.ParseUint(num, 10, 8)
	if err != nil || n > 31 {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return isa.Reg(n), nil
}

// parseIndirect parses "(rN)" or "rN".
func parseIndirect(s string) (isa.Reg, error) {
	s = strings.TrimSpace(s)
	s = strings.TrimSuffix(strings.TrimPrefix(s, "("), ")")
	return parseReg(s)
}

// parseMemOperand parses "disp(rN)" with optional, possibly negative disp.
func parseMemOperand(s string) (int32, isa.Reg, error) {
	open := strings.IndexByte(s, '(')
	close := strings.LastIndexByte(s, ')')
	if open < 0 || close < open {
		return 0, 0, fmt.Errorf("bad memory operand %q (want disp(rN))", s)
	}
	base, err := parseReg(s[open+1 : close])
	if err != nil {
		return 0, 0, err
	}
	dispStr := strings.TrimSpace(s[:open])
	if dispStr == "" {
		return 0, base, nil
	}
	d, err := strconv.ParseInt(dispStr, 0, 32)
	if err != nil || d < -(1<<15) || d >= 1<<15 {
		return 0, 0, fmt.Errorf("bad displacement %q", dispStr)
	}
	return int32(d), base, nil
}

func parseUint(s string) (uint64, error) {
	v, err := strconv.ParseUint(strings.TrimSpace(s), 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", s)
	}
	return v, nil
}
