package restore

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// TestRandomFaultsUnderReStore is the end-to-end property of the whole
// system: random single-bit flips anywhere in the pipeline, executed under
// a full ReStore processor, must always land in one of the architecture's
// defined outcomes — silently masked, detected-and-recovered (architectural
// state identical to a fault-free golden run), or an explicit terminal
// report (an uncovered corruption, a genuine-looking exception, a wedged
// machine). Nothing may panic, hang, or corrupt state silently while
// claiming success.
func TestRandomFaultsUnderReStore(t *testing.T) {
	const (
		trials     = 40
		warmup     = 4_000
		postInject = 30_000
	)
	rng := rand.New(rand.NewSource(99))
	prog := workload.MustGenerate(workload.Vortex, workload.Config{Seed: 9, Scale: 0.5})

	var clean, corrupt, terminal int
	for trial := 0; trial < trials; trial++ {
		m, err := prog.NewMemory()
		if err != nil {
			t.Fatal(err)
		}
		pipe, err := pipeline.New(pipeline.DefaultConfig(), m, prog.Entry)
		if err != nil {
			t.Fatal(err)
		}
		proc := New(pipe, Config{Interval: 100})
		if _, err := proc.Run(warmup, 1_000_000); err != nil {
			t.Fatal(err)
		}

		// Flip one uniformly random bit of microarchitectural state.
		space := pipe.State()
		ref, ok := space.NthBit(uint64(rng.Int63n(int64(space.TotalBits(false)))))
		if !ok {
			t.Fatal("bit sampling failed")
		}
		space.Flip(ref)

		rep, err := proc.Run(warmup+postInject, 50_000_000)
		switch {
		case err == nil:
			// Completed: compare against a fault-free golden run.
			gm, gerr := prog.NewMemory()
			if gerr != nil {
				t.Fatal(gerr)
			}
			golden := arch.New(gm, prog.Entry)
			if _, last, gerr := golden.Run(rep.Retired); gerr != nil || last.Exception != arch.ExcNone {
				t.Fatalf("golden run failed: %v %v", gerr, last.Exception)
			}
			if pipe.ArchRegs() == golden.Regs {
				clean++
			} else {
				corrupt++ // uncovered SDC: allowed, but counted
			}
		case errors.Is(err, ErrGenuineException), errors.Is(err, ErrUnrecoverable),
			errors.Is(err, ErrCycleBudget):
			terminal++
		default:
			t.Fatalf("trial %d: unexpected error %v", trial, err)
		}
	}

	t.Logf("outcomes over %d random faults: clean=%d sdc=%d terminal=%d",
		trials, clean, corrupt, terminal)
	if clean < trials*6/10 {
		t.Errorf("only %d/%d trials ended architecturally clean; masking+recovery too weak", clean, trials)
	}
	if corrupt+terminal > trials/3 {
		t.Errorf("too many unrecovered outcomes: %d", corrupt+terminal)
	}
}

// TestRepeatedRecoveryConvergence drives many sequential corruptions of the
// same live pointer through detection and recovery, verifying the machine
// never drifts from the golden execution.
func TestRepeatedRecoveryConvergence(t *testing.T) {
	proc, prog := newPointerLoopProcessor(t, Config{Interval: 100})
	target := uint64(4_000)
	for round := 0; round < 5; round++ {
		if _, err := proc.Run(target, 10_000_000); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		proc.Pipeline().CorruptArchReg(10, uint(40+round))
		target += 4_000
	}
	rep, err := proc.Run(target, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ExceptionSymptoms < 4 {
		t.Errorf("expected most corruptions to fault; got %d symptoms", rep.ExceptionSymptoms)
	}
	want, _ := goldenRegs(t, prog, rep.Retired)
	if proc.Pipeline().ArchRegs() != want {
		t.Error("state drifted from golden after repeated recoveries")
	}
}
