package inject

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// The golden-image contract: a campaign that saves the warm-up boundary to a
// golden image, and a campaign that loads it, both produce byte-identical
// trials to a campaign that warms up from scratch — on every benchmark.

func TestUArchGoldenImageEquivalence(t *testing.T) {
	for _, bench := range workload.Benchmarks() {
		bench := bench
		t.Run(string(bench), func(t *testing.T) {
			t.Parallel()
			cfg := smallUArch(bench)
			cfg.Points = 2
			cfg.TrialsPerPoint = 4
			plain, err := RunUArch(cfg)
			if err != nil {
				t.Fatal(err)
			}

			img := filepath.Join(t.TempDir(), "warm.golden")
			save := cfg
			save.GoldenImage = img
			save.Obs = obs.NewRegistry()
			saved, err := RunUArch(save)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(plain.Trials, saved.Trials) {
				t.Fatal("trials differ between warm-up and warm-up-and-save runs")
			}
			if got := save.Obs.Counter("campaign_uarch_golden_image_saved_total").Value(); got != 1 {
				t.Fatalf("saved_total = %d, want 1", got)
			}
			if save.Obs.Counter("campaign_uarch_golden_image_stored_bytes_total").Value() == 0 {
				t.Fatal("stored bytes not recorded")
			}
			if _, err := os.Stat(img); err != nil {
				t.Fatalf("golden image not written: %v", err)
			}

			load := cfg
			load.GoldenImage = img
			load.Obs = obs.NewRegistry()
			loaded, err := RunUArch(load)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(plain.Trials, loaded.Trials) {
				t.Fatal("trials differ between warm-up and golden-image runs")
			}
			if got := load.Obs.Counter("campaign_uarch_golden_image_loaded_total").Value(); got != 1 {
				t.Fatalf("loaded_total = %d, want 1", got)
			}
			if got := load.Obs.Counter("campaign_uarch_golden_image_saved_total").Value(); got != 0 {
				t.Fatalf("saved_total = %d on a load run, want 0", got)
			}
		})
	}
}

func TestVMGoldenImageEquivalence(t *testing.T) {
	for _, bench := range workload.Benchmarks() {
		bench := bench
		t.Run(string(bench), func(t *testing.T) {
			t.Parallel()
			cfg := smallVM(bench, false)
			cfg.Trials = 24
			cfg.Points = 4
			plain, err := RunVM(cfg)
			if err != nil {
				t.Fatal(err)
			}

			img := filepath.Join(t.TempDir(), "warm.golden")
			save := cfg
			save.GoldenImage = img
			save.Obs = obs.NewRegistry()
			saved, err := RunVM(save)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(plain.Trials, saved.Trials) {
				t.Fatal("trials differ between warm-up and warm-up-and-save runs")
			}
			if got := save.Obs.Counter("campaign_vm_golden_image_saved_total").Value(); got != 1 {
				t.Fatalf("saved_total = %d, want 1", got)
			}

			load := cfg
			load.GoldenImage = img
			load.Obs = obs.NewRegistry()
			loaded, err := RunVM(load)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(plain.Trials, loaded.Trials) {
				t.Fatal("trials differ between warm-up and golden-image runs")
			}
			if got := load.Obs.Counter("campaign_vm_golden_image_loaded_total").Value(); got != 1 {
				t.Fatalf("loaded_total = %d, want 1", got)
			}
		})
	}
}

// A golden image must only ever restore the warm-up it captured: loading it
// into a campaign with a different seed, scale or warm-up is refused.
func TestGoldenImageConfigMismatch(t *testing.T) {
	img := filepath.Join(t.TempDir(), "warm.golden")
	cfg := smallUArch(workload.Gzip)
	cfg.Points, cfg.TrialsPerPoint = 1, 2
	cfg.GoldenImage = img
	if _, err := RunUArch(cfg); err != nil {
		t.Fatal(err)
	}
	other := cfg
	other.Seed = 99
	if _, err := RunUArch(other); !errors.Is(err, pipeline.ErrGoldenMismatch) {
		t.Fatalf("uarch seed mismatch: got %v, want ErrGoldenMismatch", err)
	}

	vimg := filepath.Join(t.TempDir(), "vm.golden")
	vcfg := smallVM(workload.Gzip, false)
	vcfg.Trials, vcfg.Points = 8, 2
	vcfg.GoldenImage = vimg
	if _, err := RunVM(vcfg); err != nil {
		t.Fatal(err)
	}
	vother := vcfg
	vother.Warmup = vcfg.Warmup + 1
	if _, err := RunVM(vother); !errors.Is(err, pipeline.ErrGoldenMismatch) {
		t.Fatalf("vm warmup mismatch: got %v, want ErrGoldenMismatch", err)
	}
}

// Golden images compose with durable sharded campaigns: two shards sharing
// one image (the second loads what the first saved) merge into the same
// result as an unsharded run.
func TestGoldenImageWithShardedResume(t *testing.T) {
	cfg := smallVM(workload.Gzip, false)
	cfg.Trials, cfg.Points = 16, 4
	whole, err := RunVM(cfg)
	if err != nil {
		t.Fatal(err)
	}

	root := t.TempDir()
	img := filepath.Join(root, "warm.golden")
	parts := make([]*VMResult, 2)
	for i := range parts {
		sc := cfg
		sc.GoldenImage = img
		sc.ResumeFrom = filepath.Join(root, "shard", string(rune('0'+i)))
		sc.ShardIndex, sc.ShardCount = i, 2
		parts[i], err = RunVM(sc)
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
	}
	merged, err := MergeVM(cfg, []string{
		filepath.Join(root, "shard", "0"),
		filepath.Join(root, "shard", "1"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(whole.Trials, merged.Trials) {
		t.Fatal("merged sharded golden-image trials differ from one-shot run")
	}
}
