// Package fixture holds opcode switches the analyzer must accept.
package fixture

import "repro/internal/isa"

// An explicit default acknowledges partial coverage.
func latency(op isa.Op) int {
	switch op {
	case isa.OpMULQ, isa.OpMULQV:
		return 7
	case isa.OpLDQ, isa.OpLDL:
		return 3
	default:
		return 1
	}
}

// A non-constant case defeats static exhaustiveness; treated as a wildcard.
func matches(op, other isa.Op) bool {
	switch op {
	case other:
		return true
	}
	return false
}

// Switches over other integer types are out of scope.
func overInt(x int) int {
	switch x {
	case 1:
		return 10
	}
	return 0
}
