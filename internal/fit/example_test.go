package fit_test

import (
	"fmt"

	"repro/internal/fit"
)

// Reproduce the paper's headline MTBF arithmetic from its reported failure
// fractions.
func ExamplePaperModel() {
	m := fit.PaperModel()
	fmt.Printf("ReStore MTBF gain:     %.0fx\n", m.MTBFImprovement(fit.ReStore))
	fmt.Printf("lhf+ReStore MTBF gain: %.0fx\n", m.MTBFImprovement(fit.LHFReStore))
	fmt.Printf("1000-year goal:        %.0f FIT\n", fit.GoalFIT(1000))
	// Output:
	// ReStore MTBF gain:     2x
	// lhf+ReStore MTBF gain: 7x
	// 1000-year goal:        114 FIT
}

// FIT rates scale linearly with design size; the paper's Figure 8 sweeps
// doubling sizes.
func ExampleModel_FIT() {
	m := fit.PaperModel()
	for _, bits := range []float64{50_000, 100_000} {
		fmt.Printf("%.0f bits -> %.2f FIT (baseline)\n", bits, m.FIT(fit.Baseline, bits))
	}
	// Output:
	// 50000 bits -> 3.50 FIT (baseline)
	// 100000 bits -> 7.00 FIT (baseline)
}
