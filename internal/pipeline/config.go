package pipeline

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/predictor"
)

// Structure geometry. These mirror Section 4.1 and Figure 3 of the paper:
// 4-wide fetch/rename, 6-wide issue, a 32-entry scheduler, a 64-entry
// reorder buffer, and up to 132 instructions in flight across 12 stages.
// All sizes are powers of two so that corrupted index fields alias to valid
// entries instead of crashing the simulator — mirroring how real hardware
// mis-addresses a structure rather than "panicking".
const (
	FetchWidth  = 4
	IssueWidth  = 6
	CommitWidth = 6

	FQSize    = 32 // fetch queue entries
	ROBSize   = 64
	SchedSize = 32
	STQSize   = 16
	LDQSize   = 16
	PhysRegs  = 128

	// Issue ports per Figure 3: three ALUs (one handles multiplies), one
	// branch unit, two address-generation units.
	ALUPorts    = 3
	BranchPorts = 1
	AGENPorts   = 2
)

// ConfidenceKind selects the confidence estimator wired into the front end.
type ConfidenceKind uint8

// Confidence estimator choices.
const (
	// ConfidenceJRS is the paper's chosen estimator (Section 3.2.2).
	ConfidenceJRS ConfidenceKind = iota + 1
	// ConfidencePerfect labels every prediction high confidence; combined
	// with campaign-side filtering it bounds achievable coverage
	// (Section 5.2.1 ablation).
	ConfidencePerfect
	// ConfidenceNever disables misprediction symptoms entirely.
	ConfidenceNever
)

// Config parameterises a pipeline instance.
type Config struct {
	// Branch prediction.
	PredictorBits int  // log2 entries in each direction-predictor table
	HistoryBits   uint // gshare global history length
	BTBSetBits    int
	BTBWays       int
	RASDepth      int

	// Confidence estimation.
	Confidence ConfidenceKind
	JRS        predictor.JRSConfig

	// Caches and TLBs. L2 is unified and backs both L1s; its miss
	// latency is the memory round trip.
	L1I, L1D, L2, ITLB, DTLB cache.Config

	// Execution latencies in cycles.
	ALULatency int
	MulLatency int

	// RedirectPenalty is the front-end refill delay after a pipeline
	// flush, approximating the 12-stage fetch-to-execute depth.
	RedirectPenalty int

	// Memory-dependence speculation (Figure 3's Mem Dep Pred): loads
	// issue past older stores with unresolved addresses unless their PC
	// is in the wait table; violations replay and train the table.
	MemDepSpeculation bool
	MemDepBits        int    // log2 wait-table entries
	MemDepDecayCycles uint64 // wait-table aging period

	// WatchdogCycles is the commit-to-commit cycle budget before the
	// watchdog timer declares the processor deadlocked (Section 4.2).
	WatchdogCycles uint64
}

// DefaultConfig returns the configuration used throughout the reproduction.
func DefaultConfig() Config {
	return Config{
		PredictorBits:   12,
		HistoryBits:     10,
		BTBSetBits:      9,
		BTBWays:         2,
		RASDepth:        16,
		Confidence:      ConfidenceJRS,
		JRS:             predictor.JRSConfig{TableBits: 12, CounterMax: 15, Threshold: 15},
		L1I:             cache.DefaultL1I(),
		L1D:             cache.DefaultL1D(),
		L2:              cache.DefaultL2(),
		ITLB:            cache.DefaultITLB(),
		DTLB:            cache.DefaultDTLB(),
		ALULatency:      1,
		MulLatency:      7,
		RedirectPenalty: 8,
		WatchdogCycles:  2048,

		MemDepSpeculation: true,
		MemDepBits:        10,
		MemDepDecayCycles: 16384,
	}
}

func (c *Config) validate() error {
	if c.PredictorBits <= 0 || c.BTBWays <= 0 || c.RASDepth <= 0 {
		return fmt.Errorf("pipeline: invalid predictor geometry %+v", c)
	}
	if c.ALULatency <= 0 || c.MulLatency <= 0 {
		return fmt.Errorf("pipeline: invalid latencies %+v", c)
	}
	if c.WatchdogCycles == 0 {
		return fmt.Errorf("pipeline: watchdog budget must be positive")
	}
	if c.MemDepSpeculation && (c.MemDepBits <= 0 || c.MemDepDecayCycles == 0) {
		return fmt.Errorf("pipeline: invalid memory-dependence predictor config %+v", c)
	}
	switch c.Confidence {
	case ConfidenceJRS, ConfidencePerfect, ConfidenceNever:
	default:
		return fmt.Errorf("pipeline: unknown confidence kind %d", c.Confidence)
	}
	return nil
}
