# Reproduction of ReStore (Wang & Patel, DSN 2005). Plain Go, no
# dependencies; every target below is what CI runs.

GO ?= go

.PHONY: all build test race lint vet staticcheck statecheck bench clean

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The full suite under the race detector (what CI gates on).
race:
	$(GO) test -race ./...

# lint = vet + staticcheck (when installed) + the state-space registration
# linter. staticcheck is optional locally — CI installs it — so the target
# degrades gracefully on machines without it.
lint: vet staticcheck statecheck

vet:
	$(GO) vet ./...

staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

# statecheck verifies that every uint64 state word of the pipeline model is
# registered in the injectable StateSpace (tools/statecheck).
statecheck:
	$(GO) run ./tools/statecheck

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

clean:
	$(GO) clean ./...
