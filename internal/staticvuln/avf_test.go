package staticvuln_test

import (
	"testing"

	"repro/internal/inject"
	"repro/internal/staticvuln"
	"repro/internal/workload"
)

// TestStaticVsDynamicAVF cross-validates the static ACE analysis against the
// dynamic injection campaign: for every benchmark, the statically predicted
// masked fraction must land within ±10 percentage points of the measured one.
// Both sides analyse the *same* generated program (same seed and scale) —
// the workload generator derives program shape from the seed, so mismatched
// seeds would compare different programs.
func TestStaticVsDynamicAVF(t *testing.T) {
	if testing.Short() {
		t.Skip("dynamic campaign is slow; skipped in -short mode")
	}
	const (
		seed     = 7
		scale    = 0.25
		tolPP    = 10.0 // ± percentage points
		trials   = 3200
		points   = 400
		warmup   = 5000
		spread   = 60000
		windowSz = 20000
	)
	for _, b := range workload.Benchmarks() {
		b := b
		t.Run(string(b), func(t *testing.T) {
			t.Parallel()
			prog := workload.MustGenerate(b, workload.Config{Seed: seed, Scale: scale})
			rep, err := staticvuln.Analyze(prog, staticvuln.Options{})
			if err != nil {
				t.Fatalf("static analysis: %v", err)
			}
			static := rep.MaskedFraction(false)

			res, err := inject.RunVM(inject.VMConfig{
				Bench:  b,
				Seed:   seed,
				Scale:  scale,
				Trials: trials,
				Points: points,
				Warmup: warmup,
				Spread: spread,
				Window: windowSz,
			})
			if err != nil {
				t.Fatalf("dynamic campaign: %v", err)
			}
			dynamic := res.MaskedFraction()

			diff := (static - dynamic) * 100
			if diff < 0 {
				diff = -diff
			}
			t.Logf("%s: static masked %.1f%%, dynamic masked %.1f%%, |Δ| = %.1fpp",
				b, static*100, dynamic*100, diff)
			if diff > tolPP {
				t.Errorf("%s: static %.1f%% vs dynamic %.1f%% masked — |Δ| %.1fpp exceeds ±%.0fpp",
					b, static*100, dynamic*100, diff, tolPP)
			}
		})
	}
}
