package predictor

// ConfidenceEstimator assigns a high/low confidence label to each
// conditional-branch prediction. In the ReStore architecture a misprediction
// of a HIGH-confidence branch is treated as a soft-error symptom (paper
// Section 3.2.2): if the predictor was very sure and the "misprediction"
// still happened, perhaps the branch input was corrupted rather than the
// predictor wrong.
type ConfidenceEstimator interface {
	// Confident reports whether the current prediction for pc is high
	// confidence.
	Confident(pc uint64) bool
	// Update trains the estimator with whether the prediction was
	// correct.
	Update(pc uint64, correct bool)
	// Clone returns an independent deep copy (see clone.go).
	Clone() ConfidenceEstimator
}

// JRS is the Jacobsen-Rotenberg-Smith resetting-counter estimator [12]: a
// table of saturating "miss distance counters" indexed by PC XOR global
// history. A correct prediction increments the counter; a misprediction
// resets it to zero. A prediction is high confidence when the counter has
// saturated past the threshold, i.e. the branch has been predicted correctly
// many consecutive times. The paper selects JRS with a conservative
// threshold, prioritising performance (few false positives) over coverage.
type JRS struct {
	table     []uint8
	mask      uint64
	max       uint8
	threshold uint8
	hist      *Gshare // source of global history for indexing; may be nil
}

// JRSConfig parameterises the estimator.
type JRSConfig struct {
	// TableBits is log2 of the table size (default 12, 4096 entries).
	TableBits int
	// CounterMax is the saturation value (default 15, a 4-bit counter).
	CounterMax uint8
	// Threshold is the minimum counter value labelled high confidence
	// (default equal to CounterMax, the paper's conservative setting).
	Threshold uint8
}

func (c *JRSConfig) applyDefaults() {
	if c.TableBits == 0 {
		c.TableBits = 12
	}
	if c.CounterMax == 0 {
		c.CounterMax = 15
	}
	if c.Threshold == 0 {
		c.Threshold = c.CounterMax
	}
}

// NewJRS returns a JRS estimator. The optional history source lets the
// estimator share the direction predictor's global history register, as in
// the original design; pass nil for PC-only indexing.
func NewJRS(cfg JRSConfig, hist *Gshare) *JRS {
	cfg.applyDefaults()
	n := 1 << cfg.TableBits
	return &JRS{
		table:     make([]uint8, n),
		mask:      uint64(n - 1),
		max:       cfg.CounterMax,
		threshold: cfg.Threshold,
		hist:      hist,
	}
}

func (j *JRS) index(pc uint64) uint64 {
	h := uint64(0)
	if j.hist != nil {
		h = j.hist.History()
	}
	return ((pc >> 2) ^ h) & j.mask
}

// Confident reports whether the counter for pc has saturated to the
// threshold.
func (j *JRS) Confident(pc uint64) bool {
	return j.table[j.index(pc)] >= j.threshold
}

// Update increments on a correct prediction and resets on a misprediction.
func (j *JRS) Update(pc uint64, correct bool) {
	i := j.index(pc)
	if !correct {
		j.table[i] = 0
		return
	}
	if j.table[i] < j.max {
		j.table[i]++
	}
}

// Perfect is the oracle estimator used for the Section 5.2.1 ablation: it
// labels every prediction high confidence, so every genuine misprediction
// and every fault-induced one is a symptom. Combined with campaign-side
// knowledge of which mispredictions were fault-induced, it bounds the
// coverage a better confidence predictor could reach ("a perfect confidence
// predictor would yield nearly twice the error coverage").
type Perfect struct{}

// Confident always reports high confidence.
func (Perfect) Confident(uint64) bool { return true }

// Update is a no-op.
func (Perfect) Update(uint64, bool) {}

// Never is the null estimator: no misprediction is ever a symptom. Used to
// model a baseline pipeline with exception-only detection.
type Never struct{}

// Confident always reports low confidence.
func (Never) Confident(uint64) bool { return false }

// Update is a no-op.
func (Never) Update(uint64, bool) {}

// Compile-time interface checks.
var (
	_ ConfidenceEstimator = (*JRS)(nil)
	_ ConfidenceEstimator = Perfect{}
	_ ConfidenceEstimator = Never{}
)
