// Package lint is a small, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary: analyzers receive a type-checked
// package and report position-tagged diagnostics, a runner applies
// //restorelint:ignore suppression, and a loader type-checks module packages
// with nothing but the standard library (the module proxy is unavailable in
// the build environment, so x/tools itself cannot be vendored).
package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one type-checked package: the unit an Analyzer runs on.
type Package struct {
	Path  string // import path ("repro/internal/pipeline", or synthetic for fixtures)
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File // parsed with comments, non-test files only
	Types *types.Package
	Info  *types.Info

	loader *Loader // back-pointer for cross-package summaries (dataflow)
}

// LoadedImport returns the already-type-checked module-local package at the
// given import path, or nil if this loader never pulled it in. Dataflow
// summaries use it to follow calls across package boundaries without
// re-checking anything (type identity must stay unified).
func (p *Package) LoadedImport(path string) *Package {
	if p.loader == nil {
		return nil
	}
	return p.loader.pkgs[path]
}

// LoadedPackages returns every package this loader has checked so far
// (including p itself), sorted by import path. The dataflow engine walks
// them to build module-local call-graph summaries and to devirtualize
// interface calls against every known implementation.
func (p *Package) LoadedPackages() []*Package {
	if p.loader == nil {
		return []*Package{p}
	}
	out := make([]*Package, 0, len(p.loader.pkgs))
	for _, pkg := range p.loader.pkgs {
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// Loader type-checks packages of the enclosing module from source. Imports
// of sibling module packages are resolved recursively; everything else is
// delegated to the standard library's source importer.
type Loader struct {
	ModuleRoot string // directory holding go.mod
	ModulePath string // module path declared in go.mod

	fset *token.FileSet
	std  types.Importer
	pkgs map[string]*Package // import path -> checked package
}

// NewLoader locates the enclosing module starting from dir (walking up to the
// first go.mod) and returns a loader rooted there.
func NewLoader(dir string) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModuleRoot: root,
		ModulePath: modPath,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
	}, nil
}

func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, rerr := os.ReadFile(filepath.Join(d, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("go.mod in %s has no module line", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("no go.mod found above %s", abs)
		}
	}
}

// Import implements types.Importer over module-local and standard-library
// packages.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.pkgs[path]; ok {
		return pkg.Types, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		p, err := l.load(filepath.Join(l.ModuleRoot, filepath.FromSlash(rel)), path, nil)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// Load parses and type-checks the package in dir under the given import path
// (derived from the module root when empty). Test files are skipped: the
// analyzers gate simulator code, and external test packages would introduce
// import cycles into a source-level loader.
func (l *Loader) Load(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path := l.pathFor(abs)
	if pkg, ok := l.pkgs[path]; ok {
		// Already checked as a dependency of an earlier Load. Reuse it:
		// re-checking would mint a second *types.Package for the same path
		// and split type identity across importers.
		return pkg, nil
	}
	return l.load(abs, path, nil)
}

func (l *Loader) pathFor(abs string) string {
	rel, err := filepath.Rel(l.ModuleRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "lintfixture/" + filepath.Base(abs)
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel)
}

func (l *Loader) load(dir, path string, _ interface{}) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		// Ignored-by-convention and platform-suffixed files, as go build.
		if strings.HasPrefix(name, "_") || strings.HasPrefix(name, ".") || excludedByFilename(name) {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("%s: no Go files", dir)
	}
	for _, name := range names {
		full := filepath.Join(dir, name)
		src, err := os.ReadFile(full)
		if err != nil {
			return nil, err
		}
		if excludedByBuildTags(src) {
			continue
		}
		f, err := parser.ParseFile(l.fset, full, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("%s: every Go file is excluded by build constraints", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil && tpkg == nil {
		return nil, err
	}
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("%s: type errors: %v", path, typeErrs[0])
	}
	pkg := &Package{
		Path:   path,
		Dir:    dir,
		Fset:   l.fset,
		Files:  files,
		Types:  tpkg,
		Info:   info,
		loader: l,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// knownGOOS / knownGOARCH mirror the toolchain's filename-based build
// constraints: a file named x_windows.go or x_arm64.go only builds on that
// platform. The lists cover the values that appear in real trees; an
// unknown suffix is just part of the name.
var knownGOOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "js": true,
	"linux": true, "netbsd": true, "openbsd": true, "plan9": true,
	"solaris": true, "wasip1": true, "windows": true,
}

var knownGOARCH = map[string]bool{
	"386": true, "amd64": true, "arm": true, "arm64": true,
	"loong64": true, "mips": true, "mips64": true, "mips64le": true,
	"mipsle": true, "ppc64": true, "ppc64le": true, "riscv64": true,
	"s390x": true, "wasm": true,
}

// excludedByFilename applies GOOS/GOARCH filename constraints
// (name_GOOS.go, name_GOARCH.go, name_GOOS_GOARCH.go) against the host
// platform, as `go build` does.
func excludedByFilename(name string) bool {
	base := strings.TrimSuffix(name, ".go")
	parts := strings.Split(base, "_")
	// Walk the trailing _segments: an arch segment may follow an os segment.
	if len(parts) >= 2 {
		last := parts[len(parts)-1]
		if knownGOARCH[last] {
			if last != runtime.GOARCH {
				return true
			}
			parts = parts[:len(parts)-1]
		}
	}
	if len(parts) >= 2 {
		last := parts[len(parts)-1]
		if knownGOOS[last] && last != runtime.GOOS {
			return true
		}
	}
	return false
}

// excludedByBuildTags reports whether the file's build constraint (a
// //go:build line, or legacy // +build lines, before the package clause)
// excludes it from the host build. Satisfied tags are the host GOOS/GOARCH,
// "gc", and every go1.N release tag up to the running toolchain — the same
// universe `go build` would use in this environment.
func excludedByBuildTags(src []byte) bool {
	for _, line := range strings.Split(string(src), "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "package ") {
			return false // constraints must precede the package clause
		}
		if !constraint.IsGoBuild(line) && !constraint.IsPlusBuild(line) {
			continue
		}
		expr, err := constraint.Parse(line)
		if err != nil {
			continue
		}
		if !expr.Eval(buildTagSatisfied) {
			return true
		}
	}
	return false
}

func buildTagSatisfied(tag string) bool {
	switch tag {
	case runtime.GOOS, runtime.GOARCH, "gc":
		return true
	}
	if rest, ok := strings.CutPrefix(tag, "go1."); ok {
		var want int
		if _, err := fmt.Sscanf(rest, "%d", &want); err == nil {
			var have int
			if _, err := fmt.Sscanf(runtime.Version(), "go1.%d", &have); err == nil {
				return want <= have
			}
			return true // devel toolchain: assume newest
		}
	}
	return false
}
