// Package campaignio defines the durable on-disk form of a fault-injection
// campaign: a manifest identifying the trial plan plus an append-only,
// checksummed journal of per-trial results.
//
// The paper's campaigns are statistical — thousands of trials per benchmark
// (Section 5.1) — and at production scale they must survive interruption and
// spread across processes and machines. The format here is what makes that
// safe without giving up the engine's determinism contract: every trial is a
// pure function of the campaign configuration and its (point, trial) slot, so
// a journal is nothing more than a cache of slots already computed. A resumed
// or merged campaign that validates the manifest and re-runs only the missing
// slots is byte-identical to a one-shot serial run.
//
// On-disk layout of a campaign directory:
//
//	manifest.json   plan identity: format version, campaign kind, config
//	                hash, seed, benchmark, slot count, shard coordinates.
//	                Written atomically (tmp + rename + fsync) before the
//	                first trial result.
//	journal.restj   8-byte magic header, then records. Each record is
//	                slot(uint32 LE) | len(uint32 LE) | payload | crc32(IEEE,
//	                over slot+len+payload). Appended in fsync'd batches.
//
// The magic's trailing byte selects the framing. 'RSTJRNL1' holds the bare
// record stream above. 'RSTJRNL2' (Options.Compress) holds the same record
// stream cut into independently checksummed DEFLATE segments, one per
// fsync'd batch: plainLen(uint32 LE) | compLen(uint32 LE) | deflate bytes |
// crc32(IEEE, over both lengths + deflate bytes). Scans read either framing
// transparently, resume keeps whatever framing the existing file has, and
// merged output is always written in framing 1 — so the compression toggle
// never changes recovered payloads or merged bytes.
//
// Crash-consistency guarantees:
//
//   - A record is visible iff its checksum verifies. A crash mid-append
//     leaves a torn tail (a partial final record or segment); Scan detects
//     it, reports it, and resumable callers truncate it away before
//     appending — the trials it covered simply re-run. A torn tail is never
//     silently treated as data.
//   - A checksum mismatch anywhere before the tail means real corruption
//     (bit rot, concurrent writers, wrong file) and is always a hard error.
//   - The manifest is written before the journal, atomically, so a journal
//     can never exist without the plan that interprets it.
package campaignio

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// FormatVersion is the current on-disk format version; bumped on any
// incompatible change to the manifest schema or journal framing.
const FormatVersion = 1

// File names inside a campaign directory.
const (
	ManifestName = "manifest.json"
	JournalName  = "journal.restj"
)

// magic opens every journal file; the trailing byte is the framing version:
// '1' for the bare record stream, '2' for compressed segments.
var (
	magic  = [8]byte{'R', 'S', 'T', 'J', 'R', 'N', 'L', '1'}
	magic2 = [8]byte{'R', 'S', 'T', 'J', 'R', 'N', 'L', '2'}
)

// maxPayload bounds one record's payload so a corrupt length field cannot
// drive a giant allocation. Trial records are a few hundred bytes.
const maxPayload = 1 << 20

// maxSegmentPlain bounds one compressed segment's decompressed size, for the
// same reason maxPayload bounds a record. The writer cuts a new segment
// before the buffered batch would cross it, so any record that Append
// accepts always fits.
const maxSegmentPlain = 1 << 24

// Sentinel errors, matched with errors.Is by callers that distinguish
// recoverable from fatal journal damage.
var (
	// ErrCorrupt reports journal damage that resumption must not repair
	// silently: a checksum mismatch, an impossible slot or length, or a
	// bad header.
	ErrCorrupt = errors.New("campaignio: journal corrupt")
	// ErrTornTail reports a partial final record — the expected residue of
	// a crash mid-append. Resumable callers truncate it; merge refuses it.
	ErrTornTail = errors.New("campaignio: torn journal tail")
	// ErrManifestMismatch reports a manifest incompatible with the live
	// configuration or with its sibling shards.
	ErrManifestMismatch = errors.New("campaignio: manifest mismatch")
	// ErrNoCampaign reports an operation aimed at a location that holds no
	// campaign at all: an empty shard-directory list, a nonexistent
	// directory, or a directory without a manifest. The error text lists
	// what was expected versus what was actually found, so a mistyped
	// path is diagnosable from the message alone.
	ErrNoCampaign = errors.New("campaignio: no campaign found")
)

// Manifest identifies a campaign's trial plan. Two runs with equal manifests
// (shard coordinates aside) compute identical trial results for every slot,
// which is what makes resuming and merging sound.
type Manifest struct {
	Version    int    `json:"version"`
	Kind       string `json:"kind"`        // campaign type, e.g. "uarch" or "vm"
	ConfigHash string `json:"config_hash"` // fingerprint of every plan-relevant config field
	Seed       int64  `json:"seed"`
	Bench      string `json:"bench"`
	Slots      int    `json:"slots"` // total (point, trial) slots in the full plan

	// Shard coordinates: this journal holds the slots s with
	// s % ShardCount == ShardIndex. An unsharded campaign is 0 of 1.
	ShardIndex int `json:"shard_index"`
	ShardCount int `json:"shard_count"`

	// Aux carries campaign-kind-specific aggregates (for the
	// microarchitectural campaign: state-space bit counts and hardening
	// stats) so a merge can rebuild the full result without re-running
	// the simulator. Byte-equal across compatible shards.
	Aux json.RawMessage `json:"aux,omitempty"`
}

// Owns reports whether the manifest's shard is responsible for a slot.
func (m Manifest) Owns(slot int) bool {
	if m.ShardCount <= 1 {
		return true
	}
	return slot%m.ShardCount == m.ShardIndex
}

// SamePlan reports whether two manifests describe the same trial plan
// (everything but the shard index must agree, including the Aux bytes).
func (m Manifest) SamePlan(o Manifest) error {
	switch {
	case m.Version != o.Version:
		return fmt.Errorf("%w: format version %d vs %d", ErrManifestMismatch, m.Version, o.Version)
	case m.Kind != o.Kind:
		return fmt.Errorf("%w: campaign kind %q vs %q", ErrManifestMismatch, m.Kind, o.Kind)
	case m.ConfigHash != o.ConfigHash:
		return fmt.Errorf("%w: config hash %s vs %s", ErrManifestMismatch, m.ConfigHash, o.ConfigHash)
	case m.Seed != o.Seed:
		return fmt.Errorf("%w: seed %d vs %d", ErrManifestMismatch, m.Seed, o.Seed)
	case m.Bench != o.Bench:
		return fmt.Errorf("%w: benchmark %q vs %q", ErrManifestMismatch, m.Bench, o.Bench)
	case m.Slots != o.Slots:
		return fmt.Errorf("%w: %d slots vs %d", ErrManifestMismatch, m.Slots, o.Slots)
	case m.ShardCount != o.ShardCount:
		return fmt.Errorf("%w: shard count %d vs %d", ErrManifestMismatch, m.ShardCount, o.ShardCount)
	case compactJSON(m.Aux) != compactJSON(o.Aux):
		return fmt.Errorf("%w: campaign aggregates differ", ErrManifestMismatch)
	}
	return nil
}

// compactJSON normalises raw JSON for comparison: the manifest writer
// re-indents Aux, so byte equality only holds modulo whitespace.
func compactJSON(raw json.RawMessage) string {
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		return string(raw)
	}
	return buf.String()
}

// Resumable reports whether a journal written under o can be continued by a
// run configured as m: same plan AND same shard.
func (m Manifest) Resumable(o Manifest) error {
	if err := m.SamePlan(o); err != nil {
		return err
	}
	if m.ShardIndex != o.ShardIndex {
		return fmt.Errorf("%w: shard index %d vs %d", ErrManifestMismatch, m.ShardIndex, o.ShardIndex)
	}
	return nil
}

// WriteManifest writes the manifest into dir atomically: the bytes land in a
// temp file, are fsync'd, and are renamed over ManifestName so a crash never
// leaves a partial manifest. The directory is created if needed.
func WriteManifest(dir string, m Manifest) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ManifestName+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, ManifestName)); err != nil {
		return err
	}
	return syncDir(dir)
}

// ReadManifest loads dir's manifest.
func ReadManifest(dir string) (Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return Manifest{}, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, fmt.Errorf("%w: manifest: %v", ErrCorrupt, err)
	}
	if m.Version != FormatVersion {
		return Manifest{}, fmt.Errorf("%w: format version %d (this build reads %d)",
			ErrManifestMismatch, m.Version, FormatVersion)
	}
	if m.ShardCount < 1 || m.ShardIndex < 0 || m.ShardIndex >= m.ShardCount {
		return Manifest{}, fmt.Errorf("%w: shard %d of %d", ErrCorrupt, m.ShardIndex, m.ShardCount)
	}
	return m, nil
}

// HasManifest reports whether dir holds a campaign manifest.
func HasManifest(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, ManifestName))
	return err == nil
}

// ListCampaigns returns the campaign IDs — subdirectory names holding a
// manifest — under a shard or merge root, in sorted order. A nonexistent
// root is an empty listing, not an error: to a scanner it holds the same
// campaigns an empty directory does.
func ListCampaigns(root string) ([]string, error) {
	entries, err := os.ReadDir(root)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var ids []string
	for _, e := range entries {
		if e.IsDir() && HasManifest(filepath.Join(root, e.Name())) {
			ids = append(ids, e.Name())
		}
	}
	return ids, nil
}

// describeDir summarises what a manifest-less shard directory actually
// contains, for ErrNoCampaign messages.
func describeDir(dir string) string {
	entries, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return "directory does not exist"
	}
	if err != nil {
		return err.Error()
	}
	if len(entries) == 0 {
		return "directory is empty"
	}
	const maxNames = 6
	names := make([]string, 0, maxNames+1)
	for i, e := range entries {
		if i == maxNames {
			names = append(names, fmt.Sprintf("... %d more", len(entries)-maxNames))
			break
		}
		names = append(names, e.Name())
	}
	return "contains " + strings.Join(names, ", ")
}

// Record is one journaled trial result: the slot it fills and the
// campaign-kind-specific payload (JSON of the trial struct).
type Record struct {
	Slot    int
	Payload []byte
}

// ScanResult is what a journal scan recovered.
type ScanResult struct {
	Records []Record
	// ValidLen is the byte offset of the last fully verified record's
	// end — where an appending writer may safely continue after
	// truncating everything beyond it.
	ValidLen int64
	// Torn is set when bytes after ValidLen form a partial record (crash
	// mid-append). The partial record's slots are NOT in Records.
	Torn bool
}

// ScanJournal reads dir's journal, verifying every record checksum. slots
// bounds valid slot numbers (from the manifest). A missing journal file is
// an empty, clean scan. A torn tail is reported via the result, not an
// error; corruption before the tail is always an error.
func ScanJournal(dir string, slots int) (*ScanResult, error) {
	f, err := os.Open(filepath.Join(dir, JournalName))
	if errors.Is(err, os.ErrNotExist) {
		return &ScanResult{}, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()

	res := &ScanResult{}
	var hdr [8]byte
	switch _, err := io.ReadFull(f, hdr[:]); {
	case errors.Is(err, io.EOF):
		// Zero-length file: a writer was created but never flushed.
		return res, nil
	case errors.Is(err, io.ErrUnexpectedEOF):
		res.Torn = true
		return res, nil
	case err != nil:
		return nil, err
	case hdr != magic && hdr != magic2:
		return nil, fmt.Errorf("%w: bad journal magic %q", ErrCorrupt, hdr[:])
	}
	res.ValidLen = int64(len(magic))
	if hdr == magic2 {
		return scanSegments(f, slots, res)
	}

	var rec [8]byte
	for {
		if _, err := io.ReadFull(f, rec[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return res, nil // clean end on a record boundary
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				res.Torn = true
				return res, nil
			}
			return nil, err
		}
		slot := binary.LittleEndian.Uint32(rec[0:4])
		length := binary.LittleEndian.Uint32(rec[4:8])
		if length > maxPayload {
			return nil, fmt.Errorf("%w: record at offset %d: payload length %d exceeds limit",
				ErrCorrupt, res.ValidLen, length)
		}
		buf := make([]byte, int(length)+4)
		if _, err := io.ReadFull(f, buf); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				res.Torn = true
				return res, nil
			}
			return nil, err
		}
		payload := buf[:length]
		sum := binary.LittleEndian.Uint32(buf[length:])
		crc := crc32.NewIEEE()
		crc.Write(rec[:])
		crc.Write(payload)
		if sum != crc.Sum32() {
			return nil, fmt.Errorf("%w: record at offset %d: checksum mismatch", ErrCorrupt, res.ValidLen)
		}
		if int(slot) >= slots {
			return nil, fmt.Errorf("%w: record at offset %d: slot %d outside plan of %d",
				ErrCorrupt, res.ValidLen, slot, slots)
		}
		res.Records = append(res.Records, Record{Slot: int(slot), Payload: payload})
		res.ValidLen += int64(len(rec)) + int64(len(buf))
	}
}

// scanSegments continues a scan past a framing-2 header: each segment is
// verified whole (checksum over the stored lengths and deflate bytes, exact
// decompressed size), then its plaintext is parsed as the familiar record
// stream. An incomplete final segment is the torn tail; ValidLen only ever
// lands on a segment boundary, so a resuming writer appends whole segments.
func scanSegments(f *os.File, slots int, res *ScanResult) (*ScanResult, error) {
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return res, nil // clean end on a segment boundary
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				res.Torn = true
				return res, nil
			}
			return nil, err
		}
		plainLen := binary.LittleEndian.Uint32(hdr[0:4])
		compLen := binary.LittleEndian.Uint32(hdr[4:8])
		if plainLen == 0 || plainLen > maxSegmentPlain || compLen == 0 || compLen > maxSegmentPlain {
			return nil, fmt.Errorf("%w: segment at offset %d: implausible lengths %d/%d",
				ErrCorrupt, res.ValidLen, plainLen, compLen)
		}
		buf := make([]byte, int(compLen)+4)
		if _, err := io.ReadFull(f, buf); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				res.Torn = true
				return res, nil
			}
			return nil, err
		}
		comp := buf[:compLen]
		sum := binary.LittleEndian.Uint32(buf[compLen:])
		crc := crc32.NewIEEE()
		crc.Write(hdr[:])
		crc.Write(comp)
		if sum != crc.Sum32() {
			return nil, fmt.Errorf("%w: segment at offset %d: checksum mismatch", ErrCorrupt, res.ValidLen)
		}
		zr := flate.NewReader(bytes.NewReader(comp))
		plain, err := io.ReadAll(io.LimitReader(zr, int64(plainLen)+1))
		zr.Close()
		if err != nil || len(plain) != int(plainLen) {
			return nil, fmt.Errorf("%w: segment at offset %d: decompressed %d bytes, want %d",
				ErrCorrupt, res.ValidLen, len(plain), plainLen)
		}
		recs, err := parseRecords(plain, slots, res.ValidLen)
		if err != nil {
			return nil, err
		}
		res.Records = append(res.Records, recs...)
		res.ValidLen += int64(len(hdr)) + int64(len(buf))
	}
}

// parseRecords decodes a run of framing-1 records from a verified segment's
// plaintext. The segment checksum already proved the bytes intact, so any
// framing damage here is corruption, never a torn tail.
func parseRecords(data []byte, slots int, segOff int64) ([]Record, error) {
	var recs []Record
	for len(data) > 0 {
		if len(data) < 8 {
			return nil, fmt.Errorf("%w: segment at offset %d: truncated record header", ErrCorrupt, segOff)
		}
		slot := binary.LittleEndian.Uint32(data[0:4])
		length := binary.LittleEndian.Uint32(data[4:8])
		if length > maxPayload || len(data) < 8+int(length)+4 {
			return nil, fmt.Errorf("%w: segment at offset %d: impossible record length %d",
				ErrCorrupt, segOff, length)
		}
		payload := data[8 : 8+length]
		sum := binary.LittleEndian.Uint32(data[8+length:])
		crc := crc32.NewIEEE()
		crc.Write(data[:8])
		crc.Write(payload)
		if sum != crc.Sum32() {
			return nil, fmt.Errorf("%w: segment at offset %d: record checksum mismatch", ErrCorrupt, segOff)
		}
		if int(slot) >= slots {
			return nil, fmt.Errorf("%w: segment at offset %d: slot %d outside plan of %d",
				ErrCorrupt, segOff, slot, slots)
		}
		recs = append(recs, Record{Slot: int(slot), Payload: payload})
		data = data[8+length+4:]
	}
	return recs, nil
}

// Writer appends checksummed records to a journal in fsync'd batches. It is
// safe for concurrent use: campaign workers append trial results as they
// finish. A crash between flushes loses at most the unflushed batch, whose
// trials simply re-run on resume.
type Writer struct {
	mu       sync.Mutex
	f        *os.File
	buf      []byte
	pending  int
	batch    int
	compress bool
	flushes  int64
	closed   bool
}

// Options configures a journal writer beyond the defaults.
type Options struct {
	// Batch is the number of records per fsync (minimum 1).
	Batch int
	// Compress selects the framing-2 compressed-segment encoding for a
	// fresh journal: each fsync'd batch is deflated into one checksummed
	// segment. Resuming an existing journal keeps the file's own framing
	// regardless, so a campaign can toggle compression between runs.
	Compress bool
}

// OpenWriter opens dir's journal for appending at validLen (from a prior
// ScanJournal; 0 for a fresh journal), truncating any torn tail beyond it.
// batch is the number of records per fsync (minimum 1).
func OpenWriter(dir string, validLen int64, batch int) (*Writer, error) {
	return OpenWriterWith(dir, validLen, Options{Batch: batch})
}

// OpenWriterWith is OpenWriter with the full option set.
func OpenWriterWith(dir string, validLen int64, opts Options) (*Writer, error) {
	batch := opts.Batch
	if batch < 1 {
		batch = 1
	}
	f, err := os.OpenFile(filepath.Join(dir, JournalName), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	w := &Writer{f: f, batch: batch, compress: opts.Compress}
	if validLen < int64(len(magic)) {
		// Fresh (or header-torn) journal: start over with a clean header
		// in the requested framing.
		hdr := magic
		if opts.Compress {
			hdr = magic2
		}
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, err
		}
		if _, err := f.Write(hdr[:]); err != nil {
			f.Close()
			return nil, err
		}
	} else {
		// An existing journal's own header decides the framing appended
		// records use — mixing framings within one file would make half
		// the records unreadable.
		var hdr [8]byte
		if _, err := f.ReadAt(hdr[:], 0); err != nil {
			f.Close()
			return nil, err
		}
		switch hdr {
		case magic:
			w.compress = false
		case magic2:
			w.compress = true
		default:
			f.Close()
			return nil, fmt.Errorf("%w: bad journal magic %q", ErrCorrupt, hdr[:])
		}
		// Drop the torn tail, if any, and position at the clean end.
		if err := f.Truncate(validLen); err != nil {
			f.Close()
			return nil, err
		}
		if _, err := f.Seek(validLen, io.SeekStart); err != nil {
			f.Close()
			return nil, err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// Append buffers one record; every batch-th record flushes the buffer and
// fsyncs the file.
func (w *Writer) Append(slot int, payload []byte) error {
	if slot < 0 || len(payload) > maxPayload {
		return fmt.Errorf("campaignio: invalid record (slot %d, %d bytes)", slot, len(payload))
	}
	var rec [8]byte
	binary.LittleEndian.PutUint32(rec[0:4], uint32(slot))
	binary.LittleEndian.PutUint32(rec[4:8], uint32(len(payload)))
	crc := crc32.NewIEEE()
	crc.Write(rec[:])
	crc.Write(payload)

	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("campaignio: append to closed journal")
	}
	if w.compress && len(w.buf) > 0 && len(w.buf)+8+len(payload)+4 > maxSegmentPlain {
		// Records never span segments; cut one early rather than exceed
		// the scanner's decompression bound.
		if err := w.flushLocked(); err != nil {
			return err
		}
	}
	w.buf = append(w.buf, rec[:]...)
	w.buf = append(w.buf, payload...)
	w.buf = binary.LittleEndian.AppendUint32(w.buf, crc.Sum32())
	w.pending++
	if w.pending >= w.batch {
		return w.flushLocked()
	}
	return nil
}

// Flush writes and fsyncs any buffered records, leaving the journal tail
// clean on a record boundary.
func (w *Writer) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.flushLocked()
}

func (w *Writer) flushLocked() error {
	if len(w.buf) == 0 {
		return nil
	}
	out := w.buf
	if w.compress {
		seg, err := encodeSegment(w.buf)
		if err != nil {
			return err
		}
		out = seg
	}
	if _, err := w.f.Write(out); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.buf = w.buf[:0]
	w.pending = 0
	w.flushes++
	return nil
}

// encodeSegment deflates one batch of record bytes into a framing-2 segment.
// The compression level is fixed, so the stored bytes are a deterministic
// function of the records alone.
func encodeSegment(plain []byte) ([]byte, error) {
	var comp bytes.Buffer
	zw, err := flate.NewWriter(&comp, flate.BestSpeed)
	if err != nil {
		return nil, err
	}
	if _, err := zw.Write(plain); err != nil {
		return nil, err
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	seg := make([]byte, 8, 8+comp.Len()+4)
	binary.LittleEndian.PutUint32(seg[0:4], uint32(len(plain)))
	binary.LittleEndian.PutUint32(seg[4:8], uint32(comp.Len()))
	seg = append(seg, comp.Bytes()...)
	crc := crc32.NewIEEE()
	crc.Write(seg)
	return binary.LittleEndian.AppendUint32(seg, crc.Sum32()), nil
}

// Flushes returns how many fsync'd batches the writer has committed.
func (w *Writer) Flushes() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.flushes
}

// Close flushes buffered records and closes the file.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	ferr := w.flushLocked()
	cerr := w.f.Close()
	if ferr != nil {
		return ferr
	}
	return cerr
}

// MergeScan reads one campaign's shard directories and assembles the full
// result payloads. It verifies that every manifest describes the same plan,
// that the shard indices are exactly 0..n-1 for n directories, that every
// record sits in its owning shard (strays are errors), and that the recorded
// slots form a gap-free prefix of the plan (campaigns truncated by a halting
// workload journal a shorter prefix — deterministically the same one in
// every shard). A slot recorded more than once is fine as long as every copy
// carries identical bytes — the normal residue of a run interrupted after
// journalling but re-run from an older scan — and the first copy wins;
// differing copies are corruption. Torn or corrupt journals are hard errors
// here: merging repairs nothing.
//
// It returns the merged (unsharded) manifest and the payloads indexed by
// slot, len == the covered prefix.
func MergeScan(dirs []string) (Manifest, [][]byte, error) {
	if len(dirs) == 0 {
		return Manifest{}, nil, fmt.Errorf("%w: no shard directories to merge (expected at least one campaign directory)",
			ErrNoCampaign)
	}
	manifests := make([]Manifest, len(dirs))
	var noManifest []string
	for i, dir := range dirs {
		m, err := ReadManifest(dir)
		if errors.Is(err, os.ErrNotExist) {
			// Collect every manifest-less directory before failing, so one
			// error names all of them alongside what they actually hold.
			noManifest = append(noManifest, fmt.Sprintf("%s (%s)", dir, describeDir(dir)))
			continue
		}
		if err != nil {
			return Manifest{}, nil, fmt.Errorf("%s: %w", dir, err)
		}
		manifests[i] = m
	}
	if len(noManifest) > 0 {
		return Manifest{}, nil, fmt.Errorf("%w: %d of %d shard directories hold no %s: %s",
			ErrNoCampaign, len(noManifest), len(dirs), ManifestName, strings.Join(noManifest, "; "))
	}
	base := manifests[0]
	if base.ShardCount != len(dirs) {
		return Manifest{}, nil, fmt.Errorf("%w: %d shard directories for a %d-way campaign",
			ErrManifestMismatch, len(dirs), base.ShardCount)
	}
	seenShard := make([]string, base.ShardCount)
	for i, m := range manifests {
		if err := base.SamePlan(m); err != nil {
			return Manifest{}, nil, fmt.Errorf("%s: %w", dirs[i], err)
		}
		if prev := seenShard[m.ShardIndex]; prev != "" {
			return Manifest{}, nil, fmt.Errorf("%w: shard %d appears in both %s and %s",
				ErrManifestMismatch, m.ShardIndex, prev, dirs[i])
		}
		seenShard[m.ShardIndex] = dirs[i]
	}

	payloads := make([][]byte, base.Slots)
	covered := 0
	for i, dir := range dirs {
		m := manifests[i]
		scan, err := ScanJournal(dir, m.Slots)
		if err != nil {
			return Manifest{}, nil, fmt.Errorf("%s: %w", dir, err)
		}
		if scan.Torn {
			return Manifest{}, nil, fmt.Errorf("%s: %w (resume the shard to repair it before merging)",
				dir, ErrTornTail)
		}
		for _, rec := range scan.Records {
			if !m.Owns(rec.Slot) {
				return Manifest{}, nil, fmt.Errorf("%s: %w: slot %d belongs to shard %d, not %d",
					dir, ErrCorrupt, rec.Slot, rec.Slot%m.ShardCount, m.ShardIndex)
			}
			if prev := payloads[rec.Slot]; prev != nil {
				if !bytes.Equal(prev, rec.Payload) {
					return Manifest{}, nil, fmt.Errorf("%s: %w: slot %d recorded twice with differing payloads",
						dir, ErrCorrupt, rec.Slot)
				}
				continue // duplicate of an identical record: first wins
			}
			payloads[rec.Slot] = rec.Payload
			if rec.Slot >= covered {
				covered = rec.Slot + 1
			}
		}
	}
	// The covered slots must form a gap-free prefix: a hole means a shard
	// is incomplete (e.g. an interrupted run that was never resumed).
	missing := 0
	for slot := 0; slot < covered; slot++ {
		if payloads[slot] == nil {
			missing++
		}
	}
	if missing > 0 {
		return Manifest{}, nil, fmt.Errorf(
			"campaignio: %d of the first %d slots missing (shard incomplete — resume it to completion before merging)",
			missing, covered)
	}

	merged := base
	merged.ShardIndex, merged.ShardCount = 0, 1
	return merged, payloads[:covered], nil
}

// WriteMerged writes a merged campaign directory: the unsharded manifest
// plus a journal holding payloads in slot order. The result is resumable —
// a campaign pointed at it finds every slot complete and re-runs nothing.
func WriteMerged(dir string, m Manifest, payloads [][]byte) error {
	if err := WriteManifest(dir, m); err != nil {
		return err
	}
	w, err := OpenWriter(dir, 0, 256)
	if err != nil {
		return err
	}
	for slot, p := range payloads {
		if err := w.Append(slot, p); err != nil {
			w.Close()
			return err
		}
	}
	return w.Close()
}

// syncDir fsyncs a directory so a rename within it is durable. Some
// platforms cannot fsync directories; those errors are ignored.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}
