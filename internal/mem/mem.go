// Package mem implements the sparse, paged virtual memory image used by both
// the architectural simulator and the pipeline model.
//
// The address space is the full 64-bit virtual space with only explicitly
// mapped pages accessible. This sparsity is load-bearing for the paper's
// results: Section 3.1 attributes the high rate of memory-access-fault
// symptoms to the virtual address space being much larger than application
// footprints, so a randomly corrupted pointer usually lands on an unmapped
// page. Accesses to unmapped pages and misaligned accesses return typed
// faults rather than Go errors-with-strings so the simulators can convert
// them into ISA exceptions.
package mem

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
)

// PageBits is log2 of the page size.
const PageBits = 13

// PageSize is the size of a virtual page in bytes (8 KiB, as on Alpha).
const PageSize = 1 << PageBits

const offsetMask = PageSize - 1

// Perm describes the allowed access modes of a mapped page.
type Perm uint8

// Permission bits.
const (
	PermRead Perm = 1 << iota
	PermWrite
	PermExec
)

// Common permission combinations.
const (
	PermRW  = PermRead | PermWrite
	PermRX  = PermRead | PermExec
	PermRWX = PermRead | PermWrite | PermExec
)

// FaultKind distinguishes the ways a memory access can fail.
type FaultKind uint8

// Fault kinds.
const (
	// FaultAccess is an access to an unmapped page or one whose
	// permissions forbid the access (the paper's "memory access fault").
	FaultAccess FaultKind = iota + 1
	// FaultAlign is a load or store whose address is not a multiple of
	// the access size.
	FaultAlign
)

// Fault describes a failed memory access.
type Fault struct {
	Kind  FaultKind
	Addr  uint64
	Write bool
}

// Error implements the error interface.
func (f *Fault) Error() string {
	kind := "access"
	if f.Kind == FaultAlign {
		kind = "alignment"
	}
	mode := "read"
	if f.Write {
		mode = "write"
	}
	return fmt.Sprintf("mem: %s fault on %s at %#x", kind, mode, f.Addr)
}

type page struct {
	data [PageSize]byte
	perm Perm
}

// writeRecord remembers an overwritten byte range for journal undo.
type writeRecord struct {
	addr uint64
	old  [8]byte
	n    uint8
}

// Memory is a sparse paged memory image. It is not safe for concurrent use;
// each simulator owns its image. The zero value is not usable; call New.
type Memory struct {
	pages map[uint64]*page

	journalOn bool
	journal   []writeRecord
}

// New returns an empty memory image.
func New() *Memory {
	return &Memory{pages: make(map[uint64]*page)}
}

// Map makes [addr, addr+length) accessible with the given permissions,
// rounding out to page boundaries. Remapping an existing page updates its
// permissions and preserves its contents.
func (m *Memory) Map(addr, length uint64, perm Perm) {
	if length == 0 {
		return
	}
	first := addr >> PageBits
	last := (addr + length - 1) >> PageBits
	for vpn := first; ; vpn++ {
		if p, ok := m.pages[vpn]; ok {
			p.perm = perm
		} else {
			m.pages[vpn] = &page{perm: perm}
		}
		if vpn == last {
			break
		}
	}
}

// Mapped reports whether addr falls on a mapped page allowing the given
// access mode.
func (m *Memory) Mapped(addr uint64, mode Perm) bool {
	p, ok := m.pages[addr>>PageBits]
	return ok && p.perm&mode == mode
}

// Pages returns the number of mapped pages.
func (m *Memory) Pages() int { return len(m.pages) }

// Footprint returns the total mapped bytes.
func (m *Memory) Footprint() uint64 { return uint64(len(m.pages)) * PageSize }

func (m *Memory) lookup(addr uint64, mode Perm, size uint64) (*page, error) {
	if size > 1 && addr&(size-1) != 0 {
		//restorelint:allowalloc -- fault path: allocating the error ends the access; never taken in steady state
		return nil, &Fault{Kind: FaultAlign, Addr: addr, Write: mode == PermWrite}
	}
	p, ok := m.pages[addr>>PageBits]
	if !ok || p.perm&mode != mode {
		//restorelint:allowalloc -- fault path: allocating the error ends the access; never taken in steady state
		return nil, &Fault{Kind: FaultAccess, Addr: addr, Write: mode == PermWrite}
	}
	return p, nil
}

// ReadQ reads a 64-bit word.
func (m *Memory) ReadQ(addr uint64) (uint64, error) {
	p, err := m.lookup(addr, PermRead, 8)
	if err != nil {
		return 0, err
	}
	off := addr & offsetMask
	return binary.LittleEndian.Uint64(p.data[off : off+8]), nil
}

// ReadL reads a 32-bit word.
func (m *Memory) ReadL(addr uint64) (uint32, error) {
	p, err := m.lookup(addr, PermRead, 4)
	if err != nil {
		return 0, err
	}
	off := addr & offsetMask
	return binary.LittleEndian.Uint32(p.data[off : off+4]), nil
}

// WriteQ writes a 64-bit word.
func (m *Memory) WriteQ(addr, val uint64) error {
	p, err := m.lookup(addr, PermWrite, 8)
	if err != nil {
		return err
	}
	off := addr & offsetMask
	if m.journalOn {
		var rec writeRecord
		rec.addr = addr
		rec.n = 8
		copy(rec.old[:], p.data[off:off+8])
		//restorelint:allowalloc -- journal grows to steady-state capacity during warm-up; Reset keeps the backing array
		m.journal = append(m.journal, rec)
	}
	binary.LittleEndian.PutUint64(p.data[off:off+8], val)
	return nil
}

// WriteL writes a 32-bit word.
func (m *Memory) WriteL(addr uint64, val uint32) error {
	p, err := m.lookup(addr, PermWrite, 4)
	if err != nil {
		return err
	}
	off := addr & offsetMask
	if m.journalOn {
		var rec writeRecord
		rec.addr = addr
		rec.n = 4
		copy(rec.old[:], p.data[off:off+4])
		//restorelint:allowalloc -- journal grows to steady-state capacity during warm-up; Reset keeps the backing array
		m.journal = append(m.journal, rec)
	}
	binary.LittleEndian.PutUint32(p.data[off:off+4], val)
	return nil
}

// FetchWord reads a 32-bit instruction word, checking execute permission.
func (m *Memory) FetchWord(addr uint64) (uint32, error) {
	p, err := m.lookup(addr, PermExec, 4)
	if err != nil {
		return 0, err
	}
	off := addr & offsetMask
	return binary.LittleEndian.Uint32(p.data[off : off+4]), nil
}

// WriteBytes copies raw bytes into memory, ignoring write permission (used
// by loaders to populate code and read-only data). The target pages must be
// mapped.
func (m *Memory) WriteBytes(addr uint64, data []byte) error {
	for len(data) > 0 {
		p, ok := m.pages[addr>>PageBits]
		if !ok {
			return &Fault{Kind: FaultAccess, Addr: addr, Write: true}
		}
		off := addr & offsetMask
		n := copy(p.data[off:], data)
		data = data[n:]
		addr += uint64(n)
	}
	return nil
}

// ReadBytes copies length raw bytes out of memory, ignoring permissions.
func (m *Memory) ReadBytes(addr, length uint64) ([]byte, error) {
	out := make([]byte, 0, length)
	for length > 0 {
		p, ok := m.pages[addr>>PageBits]
		if !ok {
			return nil, &Fault{Kind: FaultAccess, Addr: addr}
		}
		off := addr & offsetMask
		n := PageSize - off
		if n > length {
			n = length
		}
		out = append(out, p.data[off:off+n]...)
		addr += n
		length -= n
	}
	return out, nil
}

// Mark is a journal position returned by Snapshot.
type Mark int

// EnableJournal starts recording old values on every write so the image can
// be rolled back with RestoreTo. The architectural checkpoint store uses
// this to undo memory effects of squashed checkpoint intervals.
func (m *Memory) EnableJournal() {
	m.journalOn = true
}

// DisableJournal stops recording old values and drops any accumulated
// records without undoing them (the current state becomes permanent). The
// checkpoint store uses this when it clears its checkpoints: with nothing
// live to roll back to, continuing to journal every write would grow the
// journal without bound.
func (m *Memory) DisableJournal() {
	m.journalOn = false
	m.journal = m.journal[:0]
}

// JournalLen returns the current number of journal records.
func (m *Memory) JournalLen() int { return len(m.journal) }

// Snapshot returns a mark identifying the current journal position.
// Restoring to the mark undoes every write made after this call. Requires
// EnableJournal.
func (m *Memory) Snapshot() Mark { return Mark(len(m.journal)) }

// RestoreTo rolls memory back to the state it had at the mark, undoing
// journal records newest-first. Marks clamp to the journal bounds: a
// negative mark (a stale mark rebased past a larger DiscardTo) undoes the
// whole journal rather than panicking.
func (m *Memory) RestoreTo(mark Mark) {
	if mark < 0 {
		mark = 0
	}
	for i := len(m.journal) - 1; i >= int(mark); i-- {
		rec := m.journal[i]
		p := m.pages[rec.addr>>PageBits]
		if p == nil {
			continue // page unmapped since write; cannot happen today
		}
		off := rec.addr & offsetMask
		copy(p.data[off:off+uint64(rec.n)], rec.old[:rec.n])
	}
	if int(mark) < len(m.journal) {
		m.journal = m.journal[:mark]
	}
}

// DiscardTo forgets journal records older than the mark without undoing
// them, making the state up to the mark permanent. Used when the oldest
// checkpoint is retired. It returns the number of records dropped; callers
// holding later marks must rebase them by subtracting that amount. Marks
// clamp to the journal bounds, so a negative (over-rebased) mark discards
// nothing instead of panicking.
func (m *Memory) DiscardTo(mark Mark) int {
	n := int(mark)
	if n < 0 {
		n = 0
	}
	if n > len(m.journal) {
		n = len(m.journal)
	}
	m.journal = append(m.journal[:0], m.journal[n:]...)
	return n
}

// Clone returns a deep copy of the memory image (journal state excluded).
func (m *Memory) Clone() *Memory {
	c := New()
	for vpn, p := range m.pages {
		np := &page{perm: p.perm}
		np.data = p.data
		c.pages[vpn] = np
	}
	return c
}

// CopyFrom makes m an exact copy of src's mappings and contents while
// reusing m's existing page allocations. Like Clone, journal state is not
// copied: the journal is cleared and journalling disabled. Campaign clone
// pools use this to reset a trial's dirtied image back to the master's
// without reallocating every page.
//
// CopyFrom is the clone pool's memory re-image path, annotated hot: in
// steady state m and src map identical page sets, so the loop below only
// overwrites existing page structs.
//
//restorelint:hotpath
func (m *Memory) CopyFrom(src *Memory) {
	for vpn := range m.pages {
		if _, ok := src.pages[vpn]; !ok {
			delete(m.pages, vpn)
		}
	}
	for vpn, sp := range src.pages {
		p, ok := m.pages[vpn]
		if !ok {
			//restorelint:allowalloc -- page missing from the clone: first re-image only; steady-state pools carry identical page sets
			p = &page{}
			m.pages[vpn] = p
		}
		p.perm = sp.perm
		p.data = sp.data
	}
	m.journalOn = false
	m.journal = m.journal[:0]
}

// Equal reports whether two images have identical mappings and contents.
func (m *Memory) Equal(o *Memory) bool {
	if len(m.pages) != len(o.pages) {
		return false
	}
	for vpn, p := range m.pages {
		op, ok := o.pages[vpn]
		if !ok || p.perm != op.perm || p.data != op.data {
			return false
		}
	}
	return true
}

// FirstDifference returns the lowest address whose byte differs between the
// two images, considering only pages mapped in either. The boolean is false
// when the images are identical.
func (m *Memory) FirstDifference(o *Memory) (uint64, bool) {
	vpns := make([]uint64, 0, len(m.pages))
	seen := make(map[uint64]bool, len(m.pages))
	for vpn := range m.pages {
		vpns = append(vpns, vpn)
		seen[vpn] = true
	}
	for vpn := range o.pages {
		if !seen[vpn] {
			vpns = append(vpns, vpn)
		}
	}
	sort.Slice(vpns, func(i, j int) bool { return vpns[i] < vpns[j] })
	for _, vpn := range vpns {
		p, po := m.pages[vpn], o.pages[vpn]
		switch {
		case p == nil:
			return vpn << PageBits, true
		case po == nil:
			return vpn << PageBits, true
		}
		for i := 0; i < PageSize; i++ {
			if p.data[i] != po.data[i] {
				return vpn<<PageBits | uint64(i), true
			}
		}
	}
	return 0, false
}

// Hash returns a digest of all mapped pages' contents and permissions,
// independent of map iteration order.
func (m *Memory) Hash() uint64 {
	vpns := make([]uint64, 0, len(m.pages))
	for vpn := range m.pages {
		vpns = append(vpns, vpn)
	}
	sort.Slice(vpns, func(i, j int) bool { return vpns[i] < vpns[j] })
	h := fnv.New64a()
	var buf [9]byte
	for _, vpn := range vpns {
		p := m.pages[vpn]
		binary.LittleEndian.PutUint64(buf[:8], vpn)
		buf[8] = byte(p.perm)
		h.Write(buf[:])
		h.Write(p.data[:])
	}
	return h.Sum64()
}
