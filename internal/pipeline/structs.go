package pipeline

// The stateful structures of the machine. Every word that models hardware
// state is a uint64 registered in the StateSpace, so campaigns can flip any
// bit of any structure (except caches and predictor tables, which the paper
// excludes). Index fields are masked at every use: a corrupted pointer
// aliases to a wrong-but-valid entry exactly as mis-addressed hardware
// would, and can never crash the simulator.
//
// Array-shaped state lives in slices aliased onto the StateSpace's packed
// backing array (BindArray + RegisterPacked), so hashing, snapshotting and
// ResetFrom sweep one contiguous word array instead of chasing per-element
// pointers. Element registration order is unchanged from the original
// per-field arrays: that order defines the campaign sampling space
// (NthBit), so preserving it keeps every pre-drawn pick stream — and thus
// every published campaign result — byte-identical.

// Fetch-queue pred-word bit positions (target occupies [47:0], the
// fetch-time global history [61:52]).
const (
	fqPredTaken  = 48
	fqPredConf   = 49
	fqPredBranch = 50
	fqFetchFault = 51
	fqHistShift  = 52
	fqPredBits   = 62
)

// fetchQueue sits between the fetch engine and rename (Figure 3's 32-entry
// fetch queue). Entries hold the raw instruction word — the I-latches — plus
// the front end's prediction metadata.
type fetchQueue struct {
	pc   []uint64
	word []uint64
	pred []uint64

	head  uint64
	count uint64
}

func (q *fetchQueue) register(s *StateSpace) {
	pc := s.BindArray(&q.pc, FQSize)
	word := s.BindArray(&q.word, FQSize)
	pred := s.BindArray(&q.pred, FQSize)
	for i := 0; i < FQSize; i++ {
		s.RegisterPacked("fq.pc", KindLatch, ClassControl, pc+i, 48)
		s.RegisterPacked("fq.word", KindLatch, ClassControl, word+i, 32)
		s.RegisterPacked("fq.pred", KindLatch, ClassControl, pred+i, fqPredBits)
	}
	s.Register("fq.head", KindLatch, ClassControl, &q.head, 5)
	s.Register("fq.count", KindLatch, ClassControl, &q.count, 6)
}

func (q *fetchQueue) reset() {
	clear(q.pc)
	clear(q.word)
	clear(q.pred)
	q.head, q.count = 0, 0
}

func (q *fetchQueue) full() bool  { return q.count >= FQSize }
func (q *fetchQueue) empty() bool { return q.count == 0 }

func (q *fetchQueue) push(pc, word, pred uint64) {
	if q.full() {
		return
	}
	idx := (q.head + q.count) % FQSize
	q.pc[idx] = pc
	q.word[idx] = word
	q.pred[idx] = pred
	q.count++
}

func (q *fetchQueue) pop() (pc, word, pred uint64, ok bool) {
	if q.empty() {
		return 0, 0, 0, false
	}
	idx := q.head % FQSize
	pc, word, pred = q.pc[idx], q.word[idx], q.pred[idx]
	q.head = (q.head + 1) % FQSize
	q.count--
	return pc, word, pred, true
}

// ROB flag bits.
const (
	robValid      = 1 << 0
	robCompleted  = 1 << 1
	robHasDest    = 1 << 2
	robIsStore    = 1 << 3
	robIsLoad     = 1 << 4
	robIsBranch   = 1 << 5
	robIsCond     = 1 << 6
	robPredTaken  = 1 << 7
	robActTaken   = 1 << 8
	robHighConf   = 1 << 9
	robFetchFault = 1 << 10
	robHalt       = 1 << 11
	robExcValid   = 1 << 12
	robMispredict = 1 << 13
	// bits 16..18 hold the exception kind, bits 24..33 the fetch-time
	// global branch history the prediction was made with.
	robExcShift  = 16
	robHistShift = 24
	robFlagBits  = 34
)

// reorderBuffer is the 64-entry ROB. The aux word packs the store-queue
// index (or, for loads, the STQ tail snapshot used for disambiguation) in
// its low byte and the predicted target above it.
//
// The writer list below is the audited ownership matrix of the pipeline
// stages entitled to drive ROB latches; restorelint rejects writes from
// anywhere else.
//
//restorelint:writers doRename dispatchOne doWriteback retire commitStore executeALU executeLoad executeStore executeBranch raiseAt squashToCount
type reorderBuffer struct {
	ctl      []uint64 // packed control word (decode latches)
	pc       []uint64
	flags    []uint64
	physDest []uint64
	oldPhys  []uint64
	archDest []uint64
	result   []uint64 // actual branch target / memory address / exception address
	aux      []uint64 // stq index (low 8) | predicted target << 8

	head  uint64
	count uint64
}

func (r *reorderBuffer) register(s *StateSpace) {
	ctl := s.BindArray(&r.ctl, ROBSize)
	pc := s.BindArray(&r.pc, ROBSize)
	flags := s.BindArray(&r.flags, ROBSize)
	physDest := s.BindArray(&r.physDest, ROBSize)
	oldPhys := s.BindArray(&r.oldPhys, ROBSize)
	archDest := s.BindArray(&r.archDest, ROBSize)
	result := s.BindArray(&r.result, ROBSize)
	aux := s.BindArray(&r.aux, ROBSize)
	for i := 0; i < ROBSize; i++ {
		s.RegisterPacked("rob.ctl", KindLatch, ClassControl, ctl+i, ctlBits)
		s.RegisterPacked("rob.pc", KindLatch, ClassControl, pc+i, 48)
		s.RegisterPacked("rob.flags", KindLatch, ClassControl, flags+i, robFlagBits)
		s.RegisterPacked("rob.physDest", KindLatch, ClassControl, physDest+i, 7)
		s.RegisterPacked("rob.oldPhys", KindLatch, ClassControl, oldPhys+i, 7)
		s.RegisterPacked("rob.archDest", KindLatch, ClassControl, archDest+i, 5)
		s.RegisterPacked("rob.result", KindLatch, ClassData, result+i, 48)
		s.RegisterPacked("rob.aux", KindLatch, ClassControl, aux+i, 56)
	}
	s.Register("rob.head", KindLatch, ClassControl, &r.head, 6)
	s.Register("rob.count", KindLatch, ClassControl, &r.count, 7)
}

func (r *reorderBuffer) reset() {
	clear(r.ctl)
	clear(r.pc)
	clear(r.flags)
	clear(r.physDest)
	clear(r.oldPhys)
	clear(r.archDest)
	clear(r.result)
	clear(r.aux)
	r.head, r.count = 0, 0
}

func (r *reorderBuffer) full() bool { return r.count >= ROBSize }

// pos converts a ROB slot index into its distance from the head; entries
// with pos >= count are not live.
func (r *reorderBuffer) pos(idx uint64) uint64 {
	return (idx - r.head) % ROBSize
}

func (r *reorderBuffer) alloc() (uint64, bool) {
	if r.full() {
		return 0, false
	}
	idx := (r.head + r.count) % ROBSize
	r.count++
	return idx, true
}

// Scheduler flag bits.
const (
	schValid   = 1 << 0
	schSrc1    = 1 << 1 // src1 present
	schSrc2    = 1 << 2
	schSrc3    = 1 << 3
	schIsLoad  = 1 << 4
	schIsStore = 1 << 5
	schIsBr    = 1 << 6
	schIsMul   = 1 << 7
	schFlgBits = 8
)

// scheduler is the 32-entry out-of-order issue window. Source operands are
// physical-register tags; readiness is checked against the register file's
// ready bits every cycle (the wakeup CAM).
//
//restorelint:writers fillScheduler execute executeALU executeLoad executeStore executeBranch scheduleWriteback squashToCount
type scheduler struct {
	flags  []uint64
	robIdx []uint64
	src1   []uint64
	src2   []uint64
	src3   []uint64 // previous dest mapping, for conditional moves
}

func (sc *scheduler) register(s *StateSpace) {
	flags := s.BindArray(&sc.flags, SchedSize)
	robIdx := s.BindArray(&sc.robIdx, SchedSize)
	src1 := s.BindArray(&sc.src1, SchedSize)
	src2 := s.BindArray(&sc.src2, SchedSize)
	src3 := s.BindArray(&sc.src3, SchedSize)
	for i := 0; i < SchedSize; i++ {
		s.RegisterPacked("sched.flags", KindLatch, ClassControl, flags+i, schFlgBits)
		s.RegisterPacked("sched.robIdx", KindLatch, ClassControl, robIdx+i, 6)
		s.RegisterPacked("sched.src1", KindLatch, ClassControl, src1+i, 7)
		s.RegisterPacked("sched.src2", KindLatch, ClassControl, src2+i, 7)
		s.RegisterPacked("sched.src3", KindLatch, ClassControl, src3+i, 7)
	}
}

func (sc *scheduler) reset() {
	clear(sc.flags)
	clear(sc.robIdx)
	clear(sc.src1)
	clear(sc.src2)
	clear(sc.src3)
}

func (sc *scheduler) alloc() (int, bool) {
	for i := range sc.flags {
		if sc.flags[i]&schValid == 0 {
			return i, true
		}
	}
	return 0, false
}

// STQ flag bits.
const (
	stqValid    = 1 << 0
	stqReady    = 1 << 1
	stqIsSTL    = 1 << 2
	stqExcValid = 1 << 3
	stqExcShift = 4
	stqFlgBits  = 7
)

// storeQueue holds in-flight stores in program order between rename and
// commit; committed stores drain to memory through the (journalled)
// checkpoint domain.
//
//restorelint:writers dispatchOne executeStore commitStore squashToCount
type storeQueue struct {
	addr   []uint64
	data   []uint64
	flags  []uint64
	robIdx []uint64 // owning ROB entry, for age comparison

	head  uint64
	count uint64
}

func (q *storeQueue) register(s *StateSpace) {
	addr := s.BindArray(&q.addr, STQSize)
	data := s.BindArray(&q.data, STQSize)
	flags := s.BindArray(&q.flags, STQSize)
	robIdx := s.BindArray(&q.robIdx, STQSize)
	for i := 0; i < STQSize; i++ {
		s.RegisterPacked("stq.addr", KindLatch, ClassData, addr+i, 48)
		s.RegisterPacked("stq.data", KindLatch, ClassData, data+i, 64)
		s.RegisterPacked("stq.flags", KindLatch, ClassControl, flags+i, stqFlgBits)
		s.RegisterPacked("stq.robIdx", KindLatch, ClassControl, robIdx+i, 6)
	}
	s.Register("stq.head", KindLatch, ClassControl, &q.head, 4)
	s.Register("stq.count", KindLatch, ClassControl, &q.count, 5)
}

func (q *storeQueue) reset() {
	clear(q.addr)
	clear(q.data)
	clear(q.flags)
	clear(q.robIdx)
	q.head, q.count = 0, 0
}

func (q *storeQueue) full() bool { return q.count >= STQSize }

func (q *storeQueue) alloc() (uint64, bool) {
	if q.full() {
		return 0, false
	}
	idx := (q.head + q.count) % STQSize
	q.flags[idx] = stqValid
	q.addr[idx] = 0
	q.data[idx] = 0
	q.count++
	return idx, true
}

// LDQ flag bits.
const (
	ldqValid   = 1 << 0
	ldqIssued  = 1 << 1
	ldqFwd     = 1 << 2 // value was forwarded from an older store
	ldqSize8   = 1 << 3 // 8-byte access (else 4)
	ldqFlgBits = 4
)

// loadQueue tracks in-flight loads in program order (Figure 3's LDQ). Its
// job under memory-dependence speculation is violation detection: a
// resolving store searches it for younger loads that already read the
// location.
//
//restorelint:writers dispatchOne doCommit executeLoad squashToCount
type loadQueue struct {
	addr   []uint64
	robIdx []uint64
	fwdRob []uint64 // forwarding store's ROB entry, when ldqFwd
	flags  []uint64

	head  uint64
	count uint64
}

func (q *loadQueue) register(s *StateSpace) {
	addr := s.BindArray(&q.addr, LDQSize)
	robIdx := s.BindArray(&q.robIdx, LDQSize)
	fwdRob := s.BindArray(&q.fwdRob, LDQSize)
	flags := s.BindArray(&q.flags, LDQSize)
	for i := 0; i < LDQSize; i++ {
		s.RegisterPacked("ldq.addr", KindLatch, ClassData, addr+i, 48)
		s.RegisterPacked("ldq.robIdx", KindLatch, ClassControl, robIdx+i, 6)
		s.RegisterPacked("ldq.fwdRob", KindLatch, ClassControl, fwdRob+i, 6)
		s.RegisterPacked("ldq.flags", KindLatch, ClassControl, flags+i, ldqFlgBits)
	}
	s.Register("ldq.head", KindLatch, ClassControl, &q.head, 4)
	s.Register("ldq.count", KindLatch, ClassControl, &q.count, 5)
}

func (q *loadQueue) reset() {
	clear(q.addr)
	clear(q.robIdx)
	clear(q.fwdRob)
	clear(q.flags)
	q.head, q.count = 0, 0
}

func (q *loadQueue) full() bool { return q.count >= LDQSize }

func (q *loadQueue) alloc() (uint64, bool) {
	if q.full() {
		return 0, false
	}
	idx := (q.head + q.count) % LDQSize
	q.flags[idx] = ldqValid
	q.addr[idx] = 0
	q.fwdRob[idx] = 0
	q.count++
	return idx, true
}

// regFile is the merged physical register file (Figure 3's "Register File"
// SRAM) plus its ready scoreboard.
type regFile struct {
	val   []uint64
	ready []uint64
}

func (f *regFile) register(s *StateSpace) {
	val := s.BindArray(&f.val, PhysRegs)
	ready := s.BindArray(&f.ready, PhysRegs/64)
	for i := 0; i < PhysRegs; i++ {
		s.RegisterPacked("prf.val", KindSRAM, ClassData, val+i, 64)
	}
	for i := 0; i < PhysRegs/64; i++ {
		s.RegisterPacked("prf.ready", KindLatch, ClassControl, ready+i, 64)
	}
}

func (f *regFile) isReady(tag uint64) bool {
	tag %= PhysRegs
	return f.ready[tag/64]&(1<<(tag%64)) != 0
}

func (f *regFile) setReady(tag uint64, rdy bool) {
	tag %= PhysRegs
	if rdy {
		f.ready[tag/64] |= 1 << (tag % 64)
	} else {
		f.ready[tag/64] &^= 1 << (tag % 64)
	}
}

func (f *regFile) read(tag uint64) uint64 { return f.val[tag%PhysRegs] }
func (f *regFile) write(tag, v uint64)    { f.val[tag%PhysRegs] = v }

// flipBit inverts one bit of a physical register — the fault-model entry
// point for directed corruption.
func (f *regFile) flipBit(tag uint64, bit uint) {
	f.val[tag%PhysRegs] ^= 1 << (bit % 64)
}

// aliasTable maps architectural to physical registers (the Spec/Arch RATs
// of Figure 3, SRAM arrays).
type aliasTable struct {
	m []uint64
}

func (t *aliasTable) register(s *StateSpace, name string) {
	m := s.BindArray(&t.m, 32)
	for i := 0; i < 32; i++ {
		s.RegisterPacked(name, KindSRAM, ClassControl, m+i, 7)
	}
}

func (t *aliasTable) get(r uint64) uint64 { return t.m[r%32] % PhysRegs }
func (t *aliasTable) set(r, phys uint64)  { t.m[r%32] = phys % PhysRegs }

// freeList is the physical-register free pool, stored as a bit vector
// (Figure 3's Spec/Arch free lists collapse into one recomputable pool in
// this model; recovery rebuilds it from the surviving ROB contents).
//
//restorelint:writers squashToCount
type freeList struct {
	bits []uint64
}

func (f *freeList) register(s *StateSpace) {
	bits := s.BindArray(&f.bits, PhysRegs/64)
	for i := 0; i < PhysRegs/64; i++ {
		s.RegisterPacked("freelist", KindSRAM, ClassControl, bits+i, 64)
	}
}

func (f *freeList) reset() { clear(f.bits) }

func (f *freeList) alloc() (uint64, bool) {
	for w := range f.bits {
		if f.bits[w] == 0 {
			continue
		}
		for b := 0; b < 64; b++ {
			if f.bits[w]&(1<<b) != 0 {
				f.bits[w] &^= 1 << b
				return uint64(w*64 + b), true
			}
		}
	}
	return 0, false
}

func (f *freeList) free(tag uint64) {
	tag %= PhysRegs
	f.bits[tag/64] |= 1 << (tag % 64)
}

// execWindow models the execution-unit pipeline registers: results computed
// at issue that are still in flight toward writeback. Timing metadata
// (completion cycle, busy flag) is simulator bookkeeping, but the value and
// destination tags are real latches and injectable.
const execSlots = 16

//restorelint:writers scheduleWriteback
type execWindow struct {
	val []uint64
	tag []uint64 // physical destination; bit 7 set = no destination
	rob []uint64

	busy   [execSlots]bool   // not injectable: scheduling metadata
	doneAt [execSlots]uint64 //restorelint:ignore stateregister — completion timing, scheduling metadata
}

const execNoDest = 1 << 7

func (e *execWindow) register(s *StateSpace) {
	val := s.BindArray(&e.val, execSlots)
	tag := s.BindArray(&e.tag, execSlots)
	rob := s.BindArray(&e.rob, execSlots)
	for i := 0; i < execSlots; i++ {
		s.RegisterPacked("exec.val", KindLatch, ClassData, val+i, 64)
		s.RegisterPacked("exec.tag", KindLatch, ClassControl, tag+i, 8)
		s.RegisterPacked("exec.rob", KindLatch, ClassControl, rob+i, 6)
	}
}

func (e *execWindow) reset() {
	clear(e.val)
	clear(e.tag)
	clear(e.rob)
	e.busy = [execSlots]bool{}
	e.doneAt = [execSlots]uint64{}
}

func (e *execWindow) alloc() (int, bool) {
	for i := range e.busy {
		if !e.busy[i] {
			return i, true
		}
	}
	return 0, false
}

// ---------------------------------------------------------------------------
// copyFrom: scalar/metadata state copies for Pipeline.ResetFrom. The array
// contents of every structure live in the StateSpace's packed backing and
// are re-imaged with one copy (StateSpace.copyPackedFrom); these methods
// carry only what lives outside it — head/count pointers and the exec
// window's scheduling metadata. Routing the copies through owner methods
// keeps the statemut write discipline intact: ResetFrom rewrites every
// registered word, and these are the owners entitled to do that.

func (q *fetchQueue) copyFrom(src *fetchQueue) {
	q.head, q.count = src.head, src.count
}

func (r *reorderBuffer) copyFrom(src *reorderBuffer) {
	r.head, r.count = src.head, src.count
}

func (sc *scheduler) copyFrom(src *scheduler) {}

func (q *storeQueue) copyFrom(src *storeQueue) {
	q.head, q.count = src.head, src.count
}

func (q *loadQueue) copyFrom(src *loadQueue) {
	q.head, q.count = src.head, src.count
}

func (f *regFile) copyFrom(src *regFile) {}

func (t *aliasTable) copyFrom(src *aliasTable) {}

func (f *freeList) copyFrom(src *freeList) {}

func (e *execWindow) copyFrom(src *execWindow) {
	e.busy = src.busy
	e.doneAt = src.doneAt
}
