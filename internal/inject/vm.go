package inject

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/arch"
	"repro/internal/campaignio"
	"repro/internal/harden"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/protect"
	"repro/internal/workload"
)

// VMConfig parameterises the software-level campaign of Section 3.1: the
// fault model is a single bit flip in the result of a randomly chosen
// instruction, executed on the architectural simulator ("we abstract away
// the processor implementation ... focusing on the propagation of the
// incorrect architectural state into a soft error symptom").
type VMConfig struct {
	Bench workload.Benchmark
	Seed  int64
	Scale float64 // workload scale; 0 = 1.0

	// Trials is the number of injections (paper: ~1000 per benchmark).
	Trials int
	// Points is the number of distinct injection instructions; trials
	// are spread across them with different bit positions. 0 derives
	// Trials/8.
	Points int

	// Warmup is the instruction index where injection points begin.
	Warmup uint64
	// Spread is the range of instruction indices points are drawn from.
	Spread uint64
	// Window is how many instructions each trial observes after the
	// injection (the largest finite latency bin of Figure 2).
	Window uint64

	// Low32 restricts flips to result bits 0..31, reproducing the
	// Section 3.1 sensitivity study of virtual-address-space size.
	Low32 bool

	// NoDecodeCache disables the shared pre-decoded instruction cache
	// built once per campaign from the workload's code image. The cache
	// verifies every fetched word before hitting, so it is inert: results
	// are byte-identical either way (the equivalence tests prove it), and
	// the toggle is excluded from the durable-campaign plan string.
	NoDecodeCache bool

	// NoEarlyExit keeps every trial replaying its full golden window even
	// after the faulty machine has halted behind a control-flow
	// divergence, where every remaining step is a stopped no-op. Inert by
	// construction and excluded from the plan string; exists to prove the
	// early exit sound.
	NoEarlyExit bool

	// Policy, if non-nil, applies a protection policy (internal/protect)
	// at this campaign's architectural fault model: the flipped result bit
	// lives in the physical register file, so a policy covering "prf.val"
	// absorbs every trial (ECC corrects the flip before any consumer reads
	// it; parity detects it and a flush refetches). Bit picks stay
	// pre-drawn, so trial plans are identical under every policy; the
	// policy fingerprint enters the durable-campaign plan string.
	Policy *protect.Policy

	// Workers is the number of goroutines trials fan out across; 0 (or 1)
	// runs the campaign serially on the calling goroutine. Results are
	// bit-identical for every worker count: all random bit picks are
	// pre-drawn serially and each trial writes a pre-assigned result slot.
	Workers int

	// Progress, if set, is called after each completed trial with the
	// running and total trial counts. With Workers > 1 it is invoked from
	// worker goroutines and must be safe for concurrent use. It must not
	// influence campaign state.
	Progress func(done, total int)

	// Obs, if non-nil, receives campaign telemetry (trial/outcome counts,
	// throughput, pool and queue accounting) under the campaign_vm_*
	// namespace. Purely observational: results are byte-identical with or
	// without a sink.
	Obs obs.Sink

	// ResumeFrom, if non-empty, makes the campaign durable: a manifest and
	// an append-only checksummed trial journal live in this directory
	// (internal/campaignio). Journalled slots are recovered instead of
	// re-run; results are byte-identical to a one-shot run.
	ResumeFrom string

	// ShardIndex/ShardCount partition the trial plan across processes:
	// shard i of n runs the slots s with s%n == i, journalling into its
	// own ResumeFrom directory; MergeVM reassembles the full result. Zero
	// ShardCount means unsharded. Sharding requires ResumeFrom.
	ShardIndex int
	ShardCount int

	// GoldenImage, if non-empty, is the path of a warmed-state golden
	// image (internal/ckptio). When the file exists the campaign loads it
	// instead of walking the golden simulator to the Warmup boundary; when
	// it does not, the campaign walks there normally and saves the image
	// for the next run. The image records the configuration that produced
	// it; a mismatch is an error. Results are byte-identical with or
	// without an image, so the field is excluded from the durable-campaign
	// plan string.
	GoldenImage string

	// CompressJournal selects the compressed-segment journal encoding
	// (campaignio format RSTJRNL2) for newly created durable journals.
	// Existing journals keep their own format on resume, scans read both,
	// and merged output is identical either way, so the toggle is inert
	// and excluded from the plan string.
	CompressJournal bool

	// Interrupt, if non-nil, stops the campaign cleanly when it becomes
	// readable: in-flight trials drain, the journal tail is flushed, and
	// RunVM returns ErrInterrupted.
	Interrupt <-chan struct{}
}

func (c *VMConfig) applyDefaults() {
	if c.Scale == 0 {
		c.Scale = 1.0
	}
	if c.Trials == 0 {
		c.Trials = 1000
	}
	if c.Points == 0 {
		c.Points = (c.Trials + 7) / 8
	}
	if c.Points > c.Trials {
		c.Points = c.Trials
	}
	if c.Warmup == 0 {
		c.Warmup = 5_000
	}
	if c.Spread == 0 {
		c.Spread = 200_000
	}
	if c.Window == 0 {
		c.Window = 100_000
	}
	if c.ShardCount == 0 {
		c.ShardCount = 1
	}
}

// manifest builds the durable-campaign manifest for this configuration. The
// receiver must already have defaults applied.
func (c VMConfig) manifest() campaignio.Manifest {
	shards := c.ShardCount
	if shards == 0 {
		shards = 1
	}
	return campaignio.Manifest{
		Version:    campaignio.FormatVersion,
		Kind:       "vm",
		ConfigHash: fingerprint(c.planString()),
		Seed:       c.Seed,
		Bench:      string(c.Bench),
		Slots:      c.Trials,
		ShardIndex: c.ShardIndex,
		ShardCount: shards,
	}
}

// VMResult is the outcome of one software-level campaign.
type VMResult struct {
	Config VMConfig
	Trials []VMTrial
}

// MaskedFraction returns the fraction of trials whose faults were masked.
// A campaign truncated down to zero trials (golden program halts before the
// first injection point) has no evidence either way and reports 0, not NaN
// — the same convention as FailureRate/RawFailureRate.
func (r *VMResult) MaskedFraction() float64 {
	if len(r.Trials) == 0 {
		return 0
	}
	masked := 0
	for _, t := range r.Trials {
		if t.Masked {
			masked++
		}
	}
	return float64(masked) / float64(len(r.Trials))
}

// Distribution bins the trials at one detection latency.
func (r *VMResult) Distribution(latency uint64) map[string]float64 {
	return VMDistribution(r.Trials, latency).Fraction
}

// RunVM executes the campaign. The golden execution advances through the
// program once; at each injection point the post-injection continuation is
// simulated once to record a golden event trace, then each trial replays
// the continuation with one result bit flipped, comparing event-by-event —
// serially, or fanned out across cfg.Workers goroutines with bit-identical
// results (every bit pick is pre-drawn on the dispatching goroutine and
// every trial fills a pre-assigned result slot).
//
// If the golden program halts before an injection point or inside a golden
// observation window (a short workload at small Scale), the remaining
// points are truncated and the partial result is returned.
//
// With ResumeFrom set the campaign is durable: completed trials are
// journalled and recovered on the next run (see the package comment in
// journal.go). With ShardCount > 1 only the owned slots run — the returned
// result is partial and MergeVM reassembles the full one. When Interrupt
// fires, in-flight trials drain, the journal flushes, and RunVM returns
// ErrInterrupted.
func RunVM(cfg VMConfig) (*VMResult, error) {
	cfg.applyDefaults()
	if err := validateSharding(cfg.ResumeFrom, cfg.ShardIndex, cfg.ShardCount); err != nil {
		return nil, err
	}
	prog, err := workload.Generate(cfg.Bench, workload.Config{Seed: cfg.Seed, Scale: cfg.Scale})
	if err != nil {
		return nil, err
	}
	m, err := prog.NewMemory()
	if err != nil {
		return nil, err
	}
	m.EnableJournal()
	sim := arch.New(m, prog.Entry)
	var dcache *isa.DecodeCache
	if !cfg.NoDecodeCache {
		// Decode the code image once; the golden simulator and every
		// per-trial fork share the cache read-only.
		dcache = isa.NewDecodeCache(prog.CodeBase, prog.Code)
	}
	sim.DCache = dcache
	// Walk the golden simulator to the warm-up boundary — or restore that
	// boundary from a golden image. Injection points all lie at or past
	// cfg.Warmup, so pre-walking here replays exactly the Steps the points
	// loop below would have taken; journal records written before the first
	// point's snapshot mark are never rewound, only discarded, so both paths
	// are byte-identical (TestVMGoldenImageEquivalence). The walk consumes
	// no randomness, so the RNG stream is untouched either way.
	goldenLoaded, err := loadVMGoldenIfPresent(&cfg, sim, m)
	if err != nil {
		return nil, err
	}
	if !goldenLoaded {
		for sim.InstRet < cfg.Warmup && !sim.Stopped() {
			sim.Step()
		}
		if err := saveVMGolden(&cfg, sim, m); err != nil {
			return nil, err
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5EED))

	// Injection points: sorted instruction indices. Points must land on
	// register-writing instructions; the walker skips forward to the
	// next one.
	points := make([]uint64, cfg.Points)
	for i := range points {
		points[i] = cfg.Warmup + uint64(rng.Int63n(int64(cfg.Spread)))
	}
	sort.Slice(points, func(i, j int) bool { return points[i] < points[j] })

	trialsPerPoint := cfg.Trials / len(points)
	extra := cfg.Trials - trialsPerPoint*len(points)

	// Pre-draw every trial's bit position serially, in exactly the order
	// the serial engine consumes the stream, so the parallel campaign is
	// bit-identical to the serial one.
	maxBit := 64
	if cfg.Low32 {
		maxBit = 32
	}
	bits := make([]uint8, cfg.Trials)
	for i := range bits {
		bits[i] = uint8(rng.Intn(maxBit))
	}

	result := &VMResult{Config: cfg}
	// This campaign's fault model corrupts one register-file value, so a
	// policy covering the PRF absorbs every trial at the injection site.
	// Evaluated once, against the policy itself — campaign code never reads
	// a compiled protection map directly (see consultProtection).
	prfProtected := cfg.Policy.ProtectionOf("prf.val") != harden.Unprotected
	wall := cfg.Obs.Timer("campaign_vm_wall").Start()
	eng := newEngine(cfg.Workers, cfg.Obs, "campaign_vm")
	parallel := cfg.Workers > 1
	trials := make([]VMTrial, cfg.Trials)

	// Durable campaigns: recover journalled slots into their result slots
	// up front; every bit pick is pre-drawn above, so skipping them cannot
	// perturb the RNG stream.
	var jr *campaignJournal
	doneSlots := make([]bool, cfg.Trials)
	if cfg.ResumeFrom != "" {
		var loaded [][]byte
		jr, loaded, err = openCampaignJournal(cfg.ResumeFrom, cfg.manifest(), cfg.CompressJournal)
		if err != nil {
			return nil, err
		}
		for slot, p := range loaded {
			if p == nil {
				continue
			}
			if err := json.Unmarshal(p, &trials[slot]); err != nil {
				jr.finish(nil, "")
				return nil, fmt.Errorf("inject: %s: %w: slot %d: %v",
					cfg.ResumeFrom, campaignio.ErrCorrupt, slot, err)
			}
			doneSlots[slot] = true
		}
	}
	owns := func(slot int) bool {
		return cfg.ShardCount <= 1 || slot%cfg.ShardCount == cfg.ShardIndex
	}
	totalTrials := 0
	for slot := 0; slot < cfg.Trials; slot++ {
		if owns(slot) {
			totalTrials++
		}
	}
	// Workers hold references into the golden slice while the dispatcher
	// records the next point's, so the parallel engine allocates a fresh
	// slice per point; the serial engine reuses one, as it always has.
	var golden []arch.Event
	if !parallel {
		golden = make([]arch.Event, 0, cfg.Window)
	}
	// memPool recycles per-trial memory images for the parallel engine; the
	// counters (nil without a sink) expose its recycling rate.
	var memPool sync.Pool
	poolHits := cfg.Obs.Counter("campaign_vm_mem_pool_hits_total")
	poolMisses := cfg.Obs.Counter("campaign_vm_mem_pool_misses_total")

	filled := 0
	truncated := false
	stopped := false
	for pi, point := range points {
		if interrupted(cfg.Interrupt) {
			stopped = true
			break
		}
		// Advance the golden simulator to the injection point.
		for sim.InstRet < point && !sim.Stopped() {
			sim.Step()
		}
		if sim.Excepted {
			eng.wait()
			jr.finish(cfg.Obs, "campaign_vm")
			return nil, fmt.Errorf("inject: golden run excepted at %d: %v", sim.InstRet, sim.LastException)
		}
		if sim.Halted {
			break // program over before this point: truncate
		}
		// Find the next register-writing instruction and execute it;
		// its event carries the result to corrupt. The program may halt
		// first (short workloads), which also truncates the campaign.
		var injEv arch.Event
		for {
			injEv = sim.Step()
			if injEv.Exception != arch.ExcNone {
				eng.wait()
				jr.finish(cfg.Obs, "campaign_vm")
				return nil, fmt.Errorf("inject: golden exception at %#x", injEv.PC)
			}
			if injEv.Halted {
				truncated = true
				break
			}
			if injEv.DestValid && injEv.Dest != isa.RegZero {
				break
			}
		}
		if truncated {
			break
		}

		n := trialsPerPoint
		if pi < extra {
			n++
		}

		// A point whose every slot was recovered from the journal needs
		// no golden window and no trials. Executing the injection
		// instruction above already left memory, simulator and write
		// journal exactly where the full path's final rewind leaves them.
		// Ownership alone is NOT enough to skip: recording the window is
		// what detects workload truncation, and that detection must stay
		// identical across shards (see journal.go).
		pointDone := true
		for t := 0; t < n; t++ {
			if !doneSlots[filled+t] {
				pointDone = false
				break
			}
		}
		if pointDone {
			for t := 0; t < n; t++ {
				if owns(filled + t) {
					eng.done(cfg.Progress, totalTrials)
				}
			}
			filled += n
			continue
		}

		// Record the golden continuation once.
		preRegs := sim.Snapshot()
		preMark := m.Snapshot()
		if parallel {
			golden = make([]arch.Event, 0, cfg.Window)
		} else {
			golden = golden[:0]
		}
		for i := uint64(0); i < cfg.Window; i++ {
			ev := sim.Step()
			if ev.Exception != arch.ExcNone {
				eng.wait()
				jr.finish(cfg.Obs, "campaign_vm")
				return nil, fmt.Errorf("inject: golden exception at %#x", ev.PC)
			}
			if ev.Halted {
				truncated = true
				break
			}
			golden = append(golden, ev)
		}
		if truncated {
			break // window incomplete: truncate at this point
		}
		goldenEnd := sim.Snapshot()

		if parallel {
			// Rewind the master once, then fork an independent memory
			// image and simulator per trial; the dispatcher clones (the
			// pool resets a retired image via Memory.CopyFrom) while
			// workers run behind it.
			m.RestoreTo(preMark)
			sim.Restore(preRegs)
			goldenTrace := golden
			for t := 0; t < n; t++ {
				slot := filled + t
				if !owns(slot) {
					continue // another shard's slot
				}
				if doneSlots[slot] {
					eng.done(cfg.Progress, totalTrials)
					continue // recovered from the journal
				}
				if interrupted(cfg.Interrupt) {
					stopped = true
					break
				}
				bit := bits[slot]
				if prfProtected {
					trials[slot] = protectedVMTrial(injEv.PC, bit)
					jr.record(slot, &trials[slot])
					eng.done(cfg.Progress, totalTrials)
					continue
				}
				var fm *mem.Memory
				if v := memPool.Get(); v != nil {
					poolHits.Inc()
					fm = v.(*mem.Memory)
					fm.CopyFrom(m)
				} else {
					poolMisses.Inc()
					fm = m.Clone()
				}
				fsim := arch.New(fm, prog.Entry)
				fsim.DCache = dcache
				fsim.Restore(preRegs)
				fsim.SetReg(injEv.Dest, fsim.Reg(injEv.Dest)^(1<<bit))
				injDest, injPC := injEv.Dest, injEv.PC
				eng.submit(func() {
					trial := runVMTrial(fsim, injDest, goldenTrace, goldenEnd, cfg.NoEarlyExit)
					trial.Point = injPC
					trial.Bit = bit
					trials[slot] = trial
					jr.record(slot, &trials[slot])
					memPool.Put(fm)
					eng.done(cfg.Progress, totalTrials)
				})
			}
		} else {
			for t := 0; t < n; t++ {
				slot := filled + t
				if !owns(slot) {
					continue // another shard's slot
				}
				if doneSlots[slot] {
					eng.done(cfg.Progress, totalTrials)
					continue // recovered from the journal
				}
				if interrupted(cfg.Interrupt) {
					stopped = true
					break
				}
				bit := bits[slot]
				if prfProtected {
					trials[slot] = protectedVMTrial(injEv.PC, bit)
					jr.record(slot, &trials[slot])
					eng.done(cfg.Progress, totalTrials)
					continue
				}

				// Rewind to the injection point and corrupt the result.
				m.RestoreTo(preMark)
				sim.Restore(preRegs)
				sim.SetReg(injEv.Dest, sim.Reg(injEv.Dest)^(1<<bit))

				trial := runVMTrial(sim, injEv.Dest, golden, goldenEnd, cfg.NoEarlyExit)
				trial.Point = injEv.PC
				trial.Bit = bit
				trials[slot] = trial
				jr.record(slot, &trials[slot])
				eng.done(cfg.Progress, totalTrials)
			}
		}
		if stopped {
			break
		}

		// Rewind once more and make the golden continuation permanent
		// so the walk to the next point starts clean.
		m.RestoreTo(preMark)
		sim.Restore(preRegs)
		m.DiscardTo(0)
		filled += n
	}
	eng.wait()
	if stopped {
		// Drained workers have journalled their trials; flush the tail so
		// a resumed run recovers every completed slot.
		cfg.Obs.Counter("campaign_vm_interrupted_total").Inc()
		if err := jr.finish(cfg.Obs, "campaign_vm"); err != nil {
			return nil, err
		}
		return nil, ErrInterrupted
	}
	result.Trials = trials[:filled]
	// filled < Trials covers both truncation paths (halt before a point and
	// halt inside a window).
	recordVMTelemetry(cfg.Obs, result, filled < cfg.Trials, wall.Stop())
	if err := jr.finish(cfg.Obs, "campaign_vm"); err != nil {
		return nil, err
	}
	return result, nil
}

// protectedVMTrial is the outcome of a trial absorbed by protection at the
// injection site: no fault enters the machine, so the trial is masked by
// construction, and Protected records why.
func protectedVMTrial(point uint64, bit uint8) VMTrial {
	return VMTrial{
		Point:      point,
		Bit:        bit,
		Protected:  true,
		Masked:     true,
		ExcLat:     Never,
		CFVLat:     Never,
		MemAddrLat: Never,
		MemDataLat: Never,
	}
}

// runVMTrial executes the faulty continuation against the recorded golden
// events and classifies its outcome. Once the faulty machine halts behind a
// control-flow divergence, every remaining Step is a stopped no-op that can
// no longer change the classification, so the replay stops early (unless
// noEarlyExit asks for the full-window proof mode).
func runVMTrial(sim *arch.Sim, injReg isa.Reg, golden []arch.Event, goldenEnd arch.Snapshot, noEarlyExit bool) VMTrial {
	trial := VMTrial{
		ExcLat:     Never,
		CFVLat:     Never,
		MemAddrLat: Never,
		MemDataLat: Never,
	}

	// Divergence ledgers: registers and memory addresses whose faulty
	// values currently differ from golden.
	var divergedRegs [32]bool
	divergedCount := 0
	markReg := func(r isa.Reg, diff bool) {
		if r == isa.RegZero {
			return
		}
		i := int(r) % 32
		if diff && !divergedRegs[i] {
			divergedRegs[i] = true
			divergedCount++
		} else if !diff && divergedRegs[i] {
			divergedRegs[i] = false
			divergedCount--
		}
	}
	divergedMem := make(map[uint64]bool)

	// The injected register starts diverged.
	markReg(injReg, true)
	cfv := false
	for i := range golden {
		lat := uint64(i) + 1
		g := golden[i]
		ev := sim.Step()

		if ev.Exception != arch.ExcNone {
			trial.ExcLat = lat
			trial.ExcKind = ev.Exception
			return trial // execution cannot continue (Section 3.2.1)
		}
		if cfv {
			// After control-flow divergence only exceptions are
			// meaningful; keep running the faulty path. A halted faulty
			// machine, though, steps as a stopped no-op forever — the
			// same event every time, never an exception — so nothing in
			// the remaining window can change the classification.
			if ev.Halted && !noEarlyExit {
				break
			}
			continue
		}
		if ev.PC != g.PC {
			trial.CFVLat = lat
			cfv = true
			continue
		}
		if ev.DestValid {
			markReg(ev.Dest, ev.DestVal != g.DestVal)
		}
		if ev.IsLoad || ev.IsStore {
			if ev.MemAddr != g.MemAddr {
				if trial.MemAddrLat == Never {
					trial.MemAddrLat = lat
				}
				if ev.IsStore {
					divergedMem[ev.MemAddr] = true
					divergedMem[g.MemAddr] = true
				}
			} else if ev.IsStore {
				if ev.StoreVal != g.StoreVal {
					if trial.MemDataLat == Never {
						trial.MemDataLat = lat
					}
					divergedMem[ev.MemAddr] = true
				} else {
					delete(divergedMem, ev.MemAddr)
				}
			}
		}
		if divergedCount == 0 && len(divergedMem) == 0 {
			// All architectural effects have washed out; determinism
			// guarantees the remainder of the run matches the golden
			// execution exactly.
			trial.Masked = true
			return trial
		}
	}
	if cfv {
		return trial
	}

	// Window complete without exception or control divergence: masked iff
	// all architectural effects washed out.
	if divergedCount == 0 && len(divergedMem) == 0 {
		trial.Masked = true
		// Cross-check registers against the golden end state; the
		// ledger should never disagree, but memory aliasing through
		// differing addresses is approximated, so verify cheaply.
		for r := 0; r < 31; r++ {
			if sim.Regs[r] != goldenEnd.Regs[r] {
				trial.Masked = false
				break
			}
		}
	}
	return trial
}
