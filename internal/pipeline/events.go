package pipeline

import (
	"repro/internal/arch"
	"repro/internal/isa"
)

// Status describes whether the machine can keep executing.
type Status uint8

// Pipeline states.
const (
	// StatusRunning means the pipeline can accept more cycles.
	StatusRunning Status = iota + 1
	// StatusHalted means a HALT instruction committed.
	StatusHalted
	// StatusExcepted means an ISA exception reached commit. In a plain
	// pipeline this stops the machine (an OS would take over); under
	// ReStore it triggers a checkpoint rollback instead.
	StatusExcepted
	// StatusDeadlocked means the watchdog timer saturated: no instruction
	// committed within the configured budget (Section 4.2's deadlock /
	// livelock detector).
	StatusDeadlocked
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusRunning:
		return "running"
	case StatusHalted:
		return "halted"
	case StatusExcepted:
		return "excepted"
	case StatusDeadlocked:
		return "deadlocked"
	}
	return "unknown"
}

// CommitEvent describes one retired instruction, in exactly the vocabulary
// the architectural comparator needs: identity, register result, memory
// effect, control flow, and exception.
type CommitEvent struct {
	Cycle uint64
	Index uint64 // retirement sequence number
	PC    uint64
	Inst  isa.Inst

	Exception arch.ExceptionKind
	ExcAddr   uint64

	HasDest  bool
	DestArch isa.Reg
	DestVal  uint64

	IsLoad    bool
	IsStore   bool
	MemAddr   uint64
	StoreVal  uint64
	StoreSize uint8

	IsBranch bool
	Taken    bool
	Target   uint64 // next PC after the instruction

	Halted bool
}

// BranchEvent fires when a branch resolves in the execution core. A
// mispredicted high-confidence conditional branch is the ReStore control-
// flow symptom (Section 3.2.2). Resolution can be on the wrong path of an
// earlier misprediction; symptom consumers see exactly what the hardware
// would.
type BranchEvent struct {
	Cycle        uint64
	PC           uint64
	IsCond       bool
	PredTaken    bool
	ActualTaken  bool
	PredTarget   uint64
	ActualTarget uint64
	Mispredicted bool
	HighConf     bool
}

// Symptom reports whether the event is a ReStore rollback trigger.
func (e BranchEvent) Symptom() bool {
	return e.Mispredicted && e.IsCond && e.HighConf
}

// Stats accumulates pipeline counters.
type Stats struct {
	Cycles                   uint64
	Retired                  uint64
	Fetched                  uint64
	Dispatched               uint64
	Issued                   uint64
	Branches                 uint64 // retired branches
	CondBranches             uint64 // retired conditional branches
	Mispredicts              uint64 // resolved mispredictions (including wrong path)
	CondMispredicts          uint64 // resolved conditional-branch mispredictions
	CommittedCondMispredicts uint64 // committed (genuine) conditional mispredictions
	HCMispredicts            uint64 // resolved high-confidence cond mispredictions
	Flushes                  uint64
	LoadsIssued              uint64
	StoresRetired            uint64
	ICacheMisses             uint64
	DCacheMisses             uint64
	L2Misses                 uint64
	MemOrderViolations       uint64 // speculative loads replayed past conflicting stores
}

// IPC returns retired instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Retired) / float64(s.Cycles)
}
