package trace

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/pipeline"
)

func testPipeline(t *testing.T) *pipeline.Pipeline {
	t.Helper()
	prog := asm.MustAssemble("t", `
		.data buf 128
		.base r10 buf
		.imm  r1 3
	loop:
		addq r2, r1, r2
		stq  r2, 0(r10)
		subq r1, #1, r1
		bgt  r1, loop
		halt
	`)
	m, err := prog.NewMemory()
	if err != nil {
		t.Fatal(err)
	}
	p, err := pipeline.New(pipeline.DefaultConfig(), m, prog.Entry)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestWriterTracesCommits(t *testing.T) {
	p := testPipeline(t)
	var sb strings.Builder
	tw := NewWriter(&sb, DefaultOptions())
	p.CommitHook = tw.Commit
	p.RunCycles(10_000)

	out := sb.String()
	if tw.Count() == 0 {
		t.Fatal("no events traced")
	}
	for _, want := range []string{"addq", "stq", "bgt", "halt", "taken", "r2="} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "[0x") {
		t.Errorf("store annotation missing:\n%s", out)
	}
}

func TestWriterRespectsBound(t *testing.T) {
	p := testPipeline(t)
	var sb strings.Builder
	tw := NewWriter(&sb, Options{MaxInstructions: 3})
	p.CommitHook = tw.Commit
	p.RunCycles(10_000)
	if tw.Count() != 3 {
		t.Errorf("count = %d, want 3", tw.Count())
	}
	if !tw.Done() {
		t.Error("writer should report done")
	}
	if lines := strings.Count(sb.String(), "\n"); lines != 3 {
		t.Errorf("lines = %d", lines)
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.n++
	if f.n > 1 {
		return 0, errors.New("disk full")
	}
	return len(p), nil
}

func TestWriterSurfacesErrors(t *testing.T) {
	p := testPipeline(t)
	tw := NewWriter(&failWriter{}, DefaultOptions())
	p.CommitHook = tw.Commit
	p.RunCycles(10_000)
	if tw.Err() == nil {
		t.Error("write error not surfaced")
	}
}

func TestAnnotationToggles(t *testing.T) {
	p := testPipeline(t)
	var sb strings.Builder
	tw := NewWriter(&sb, Options{}) // all annotations off
	p.CommitHook = tw.Commit
	p.RunCycles(10_000)
	out := sb.String()
	if strings.Contains(out, "r2=") || strings.Contains(out, "[0x") || strings.Contains(out, "taken") {
		t.Errorf("annotations leaked with options off:\n%s", out)
	}
}

func TestSummary(t *testing.T) {
	p := testPipeline(t)
	p.RunCycles(10_000)
	var sb strings.Builder
	if err := Summary(&sb, p.Stats()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"cycles", "retired", "IPC", "mispredicts"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	if err := Summary(&failWriter{n: 99}, p.Stats()); err == nil {
		t.Error("summary should surface write errors")
	}
}
