// Package pipeline implements the detailed processor model of the paper's
// Section 4.1: a superscalar, dynamically scheduled, 12-stage pipeline in
// the class of the Alpha 21264 / AMD Athlon, with up to 132 instructions in
// flight, a 32-entry scheduler, a 64-entry reorder buffer, register renaming
// through speculative and architectural register alias tables, a store
// queue, sophisticated branch prediction with JRS confidence estimation, and
// a watchdog timer.
//
// It replaces the authors' latch-level Verilog model. What makes it usable
// for the paper's statistical fault-injection campaigns is its explicit
// state-element model: every latch and SRAM bit of the machine is registered
// in a StateSpace that the injector can enumerate, sample uniformly, and
// flip (Section 4.2's fault model), and that golden-run comparison can hash.
package pipeline

import "fmt"

// Kind distinguishes pipeline latches from SRAM arrays. The distinction
// drives the Section 5.1.2 latch-only campaign and the Section 5.2.2
// "low-hanging fruit" hardening, which protects SRAMs with ECC and control
// latches with parity.
type Kind uint8

// State element kinds.
const (
	// KindLatch is a pipeline latch or register: state that is rewritten
	// nearly every cycle as instructions flow past.
	KindLatch Kind = iota + 1
	// KindSRAM is an SRAM array cell: register file, alias tables, and
	// similar structures with decoded read/write ports.
	KindSRAM
)

// Class distinguishes control state from data values, which determines the
// protection scheme the hardened pipeline applies (parity on control words,
// ECC on data stores).
type Class uint8

// State element classes.
const (
	// ClassControl covers decoded instruction words, flags, pointers and
	// other bookkeeping.
	ClassControl Class = iota + 1
	// ClassData covers 64-bit data values: register contents, store
	// data, addresses in flight.
	ClassData
)

// Element is one injectable state word. Bits declares how many low-order
// bits of the word are real hardware state; flips and hashes are confined to
// that width.
type Element struct {
	Name  string
	Kind  Kind
	Class Class
	Bits  uint8

	word *uint64 // live word; for packed elements, bound into packed at seal
	off  int     // offset into the packed backing array, or -1 for scalars
}

// Mask returns the valid-bit mask for the element.
func (e *Element) Mask() uint64 {
	if e.Bits >= 64 {
		return ^uint64(0)
	}
	return (1 << e.Bits) - 1
}

// binding records one structure-field slice aliased onto the packed backing
// array, so the slice can be re-pointed whenever the backing grows during
// registration.
type binding struct {
	dst *[]uint64
	off int
	n   int
}

// extent is a run of packed words sharing one valid-bit mask; the hash walks
// extents instead of elements so the inner loop is a pure sequential sweep.
type extent struct {
	off, end int
	mask     uint64
}

// StateSpace is the registry of all injectable state in one pipeline
// instance.
//
// Array-shaped structures register in two phases: BindArray carves a
// contiguous run of words out of one packed backing array and aliases the
// structure's field slice onto it, then RegisterPacked declares each word's
// element metadata (in any order — element order is what campaigns sample
// over and must stay stable independently of packing). Scalar words register
// with Register as before. The space seals on first use (reindex); further
// registration panics, because handed-out Elements()/BitRefs would silently
// go stale.
type StateSpace struct {
	elems []Element

	packed   []uint64
	bindings []binding

	totalBits      uint64
	latchBits      uint64
	cumulativeBits []uint64 // prefix sums over elems, for uniform sampling
	dirty          bool
	sealed         bool

	extents    []extent // equal-mask runs over packed, built at seal
	stragglers []int    // element indices of scalar (non-packed) words

	legacyHash bool
}

// Register adds a scalar state word. Words must stay valid for the lifetime
// of the space (they are fields of pipeline structures).
func (s *StateSpace) Register(name string, kind Kind, class Class, word *uint64, bits int) {
	if s.sealed {
		panic("pipeline: Register after StateSpace was sealed")
	}
	if bits <= 0 || bits > 64 {
		panic("pipeline: element width out of range")
	}
	s.elems = append(s.elems, Element{
		Name:  name,
		Kind:  kind,
		Class: class,
		Bits:  uint8(bits),
		word:  word,
		off:   -1,
	})
	s.dirty = true
}

// BindArray appends n words to the packed backing array, aliases *dst onto
// them, and returns the base offset for RegisterPacked calls. Because the
// backing may reallocate as it grows, every previously bound slice is
// re-pointed; after seal the backing is fixed and all bindings are final.
func (s *StateSpace) BindArray(dst *[]uint64, n int) int {
	if s.sealed {
		panic("pipeline: BindArray after StateSpace was sealed")
	}
	if n <= 0 {
		panic("pipeline: BindArray length out of range")
	}
	off := len(s.packed)
	s.packed = append(s.packed, make([]uint64, n)...)
	s.bindings = append(s.bindings, binding{dst: dst, off: off, n: n})
	for _, b := range s.bindings {
		*b.dst = s.packed[b.off : b.off+b.n : b.off+b.n]
	}
	return off
}

// RegisterPacked adds one word of a previously bound array as a state
// element. off is the BindArray base plus the index within the array.
func (s *StateSpace) RegisterPacked(name string, kind Kind, class Class, off, bits int) {
	if s.sealed {
		panic("pipeline: RegisterPacked after StateSpace was sealed")
	}
	if bits <= 0 || bits > 64 {
		panic("pipeline: element width out of range")
	}
	if off < 0 || off >= len(s.packed) {
		panic("pipeline: RegisterPacked offset outside packed backing")
	}
	s.elems = append(s.elems, Element{
		Name:  name,
		Kind:  kind,
		Class: class,
		Bits:  uint8(bits),
		off:   off,
	})
	s.dirty = true
}

// reindex builds the sampling prefix sums and, on first call, seals the
// space: packed element words are bound to their final addresses, the hash
// extents are coalesced, and all further registration panics.
func (s *StateSpace) reindex() {
	if !s.dirty {
		return
	}
	s.totalBits, s.latchBits = 0, 0
	s.cumulativeBits = make([]uint64, len(s.elems)+1)
	for i := range s.elems {
		s.cumulativeBits[i] = s.totalBits
		s.totalBits += uint64(s.elems[i].Bits)
		if s.elems[i].Kind == KindLatch {
			s.latchBits += uint64(s.elems[i].Bits)
		}
	}
	s.cumulativeBits[len(s.elems)] = s.totalBits
	s.dirty = false
	s.seal()
}

// seal freezes the space layout. Packed offsets become live word pointers
// (so Flip/Peek treat packed and scalar elements identically), runs of
// packed words with equal masks coalesce into hash extents, and scalar
// elements are listed for the hash tail walk.
func (s *StateSpace) seal() {
	if s.sealed {
		return
	}
	s.sealed = true

	masks := make([]uint64, len(s.packed))
	s.stragglers = s.stragglers[:0]
	for i := range s.elems {
		e := &s.elems[i]
		if e.off < 0 {
			s.stragglers = append(s.stragglers, i)
			continue
		}
		e.word = &s.packed[e.off]
		masks[e.off] = e.Mask()
	}
	s.extents = s.extents[:0]
	for off := 0; off < len(masks); {
		end := off + 1
		for end < len(masks) && masks[end] == masks[off] {
			end++
		}
		s.extents = append(s.extents, extent{off: off, end: end, mask: masks[off]})
		off = end
	}
}

// Elements returns the registered elements (shared slice; do not mutate).
func (s *StateSpace) Elements() []Element { return s.elems }

// TotalBits returns the number of injectable bits, optionally restricted to
// latches.
func (s *StateSpace) TotalBits(latchesOnly bool) uint64 {
	s.reindex()
	if latchesOnly {
		return s.latchBits
	}
	return s.totalBits
}

// BitRef identifies a single bit of a single element.
type BitRef struct {
	Elem int
	Bit  uint8
}

// NthBit maps a flat bit index in [0, TotalBits(false)) to a BitRef,
// enabling uniform sampling across all state.
func (s *StateSpace) NthBit(n uint64) (BitRef, bool) {
	s.reindex()
	if n >= s.totalBits {
		return BitRef{}, false
	}
	// Binary search the prefix sums.
	lo, hi := 0, len(s.elems)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.cumulativeBits[mid+1] <= n {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return BitRef{Elem: lo, Bit: uint8(n - s.cumulativeBits[lo])}, true
}

// checkRef validates a BitRef against the registered elements and their
// declared widths. A ref that escaped those bounds — a corrupted journal
// record, a hand-built ref — used to wrap silently (`Bit % 64`) and flip a
// bit outside declared hardware state that Hash then ignored, desyncing
// golden and faulty runs without a trace. Failing loudly is the fix.
func (s *StateSpace) checkRef(ref BitRef) *Element {
	if ref.Elem < 0 || ref.Elem >= len(s.elems) {
		panic(fmt.Sprintf("pipeline: BitRef element %d out of range [0,%d)", ref.Elem, len(s.elems)))
	}
	e := &s.elems[ref.Elem]
	if ref.Bit >= e.Bits {
		panic(fmt.Sprintf("pipeline: BitRef bit %d out of range for %q (%d bits)", ref.Bit, e.Name, e.Bits))
	}
	return e
}

// Flip inverts the referenced bit in place, returning the element affected.
// Out-of-range refs panic.
func (s *StateSpace) Flip(ref BitRef) *Element {
	s.reindex()
	e := s.checkRef(ref)
	*e.word ^= 1 << ref.Bit
	return e
}

// Peek reports the current value of the referenced bit. Out-of-range refs
// panic.
func (s *StateSpace) Peek(ref BitRef) bool {
	s.reindex()
	e := s.checkRef(ref)
	return *e.word&(1<<ref.Bit) != 0
}

// hashMul is the multiplicative constant of the polynomial digest (the
// golden-ratio prime, odd so multiplication is a bijection on uint64).
const hashMul = 0x9E3779B97F4A7C15

// Hash digests all registered state (masked to declared widths). Equal
// hashes on the same pipeline configuration mean — with overwhelming
// probability — equal microarchitectural state, which is how trials detect
// that an injected fault has been fully masked.
//
// The digest is a polynomial accumulator over the packed backing array,
// walked extent by extent (each extent shares one mask) with a single
// splitmix64 finalisation, plus a short tail over the scalar words. Only
// hash equality is meaningful; the values differ from the pre-packed
// per-element digest, which SetLegacyHash(true) still provides.
func (s *StateSpace) Hash() uint64 {
	s.reindex()
	if s.legacyHash {
		return s.hashLegacy()
	}
	h := uint64(hashMul)
	for _, ex := range s.extents {
		m := ex.mask
		for _, w := range s.packed[ex.off:ex.end] {
			h = (h ^ (w & m)) * hashMul
		}
	}
	for _, i := range s.stragglers {
		e := &s.elems[i]
		h = (h ^ (*e.word & e.Mask())) * hashMul
	}
	return mix64(h)
}

// hashLegacy is the original per-element digest: one splitmix64 round per
// registered word, walked in element order.
func (s *StateSpace) hashLegacy() uint64 {
	h := uint64(hashMul)
	for i := range s.elems {
		e := &s.elems[i]
		h = mix64(h ^ (*e.word & e.Mask()))
	}
	return h
}

// SetLegacyHash selects the original per-element digest instead of the
// packed extent walk. Both digests are sound (trials compare hashes for
// equality, never across digest choices); the toggle exists so equivalence
// tests can prove campaign outcomes are digest-independent.
func (s *StateSpace) SetLegacyHash(on bool) { s.legacyHash = on }

// LegacyHash reports which digest Hash uses.
func (s *StateSpace) LegacyHash() bool { return s.legacyHash }

// mix64 is the splitmix64 finaliser: full avalanche so that structured,
// mostly-zero pipeline state still hashes collision-resistantly.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Snapshot copies all state words out; Restore writes them back. Used by
// golden-trace caching to rewind a pipeline to an injection point without
// re-running from the start. The packed backing copies wholesale; scalar
// words follow in element order.
func (s *StateSpace) Snapshot() []uint64 {
	s.reindex()
	out := make([]uint64, len(s.packed)+len(s.stragglers))
	copy(out, s.packed)
	for i, idx := range s.stragglers {
		out[len(s.packed)+i] = *s.elems[idx].word
	}
	return out
}

// Restore writes a snapshot produced by Snapshot back into the live words.
func (s *StateSpace) Restore(snap []uint64) {
	s.reindex()
	if len(snap) != len(s.packed)+len(s.stragglers) {
		panic("pipeline: snapshot size mismatch")
	}
	copy(s.packed, snap)
	for i, idx := range s.stragglers {
		*s.elems[idx].word = snap[len(s.packed)+i]
	}
}

// copyPackedFrom copies the packed backing words from an identically
// registered space — the ResetFrom/Clone fast path that replaces
// per-element pointer chasing with one memmove. Scalar words are the
// caller's responsibility (they live in structure fields the caller copies
// directly).
func (s *StateSpace) copyPackedFrom(src *StateSpace) {
	if len(s.packed) != len(src.packed) {
		panic("pipeline: packed state size mismatch")
	}
	copy(s.packed, src.packed)
}
