package harden

import (
	"strings"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/workload"
)

func space(t *testing.T) *pipeline.StateSpace {
	t.Helper()
	prog := workload.MustGenerate(workload.Gzip, workload.Config{Seed: 1, Scale: 0.25})
	m, err := prog.NewMemory()
	if err != nil {
		t.Fatal(err)
	}
	p, err := pipeline.New(pipeline.DefaultConfig(), m, prog.Entry)
	if err != nil {
		t.Fatal(err)
	}
	return p.State()
}

func mustMap(t *testing.T, s *pipeline.StateSpace, scheme Scheme) *Map {
	t.Helper()
	m, err := NewMap(s, scheme)
	if err != nil {
		t.Fatalf("NewMap(%d): %v", scheme, err)
	}
	return m
}

func TestNoneSchemeProtectsNothing(t *testing.T) {
	s := space(t)
	m := mustMap(t, s, None)
	for i := range s.Elements() {
		if m.Protected(i) {
			t.Fatalf("element %d protected under None", i)
		}
	}
	st := Survey(s, m)
	if st.ECCBits != 0 || st.ParityBits != 0 || st.OverheadBits != 0 {
		t.Errorf("None scheme has overhead: %+v", st)
	}
}

func TestLowHangingFruitPlacement(t *testing.T) {
	s := space(t)
	m := mustMap(t, s, LowHangingFruit)
	elems := s.Elements()
	sawECC, sawParity, sawBare := false, false, false
	for i := range elems {
		switch elems[i].Name {
		case "prf.val", "specRAT", "archRAT":
			if m.Protection(i) != ECC {
				t.Fatalf("%s not ECC", elems[i].Name)
			}
			sawECC = true
		case "rob.ctl", "fq.word":
			if m.Protection(i) != Parity {
				t.Fatalf("%s not parity", elems[i].Name)
			}
			sawParity = true
		case "stq.data", "exec.val", "rob.result":
			if m.Protected(i) {
				t.Fatalf("%s should be unprotected (operational data in flight)", elems[i].Name)
			}
			sawBare = true
		}
	}
	if !sawECC || !sawParity || !sawBare {
		t.Fatalf("classification did not see all domains: ecc=%v parity=%v bare=%v",
			sawECC, sawParity, sawBare)
	}
}

// TestExactMatchingRejectsUnresolvedNames is the regression test for the
// prefix-matching bug: an assignment naming a renamed (or misspelled)
// element must fail loudly, never silently protect nothing. The old
// prefix matcher would have accepted "prf" below as a prefix of prf.val.
func TestExactMatchingRejectsUnresolvedNames(t *testing.T) {
	s := space(t)
	for _, name := range []string{
		"prf",          // bare prefix of prf.val / prf.ready
		"rob.ctrl",     // renamed: registered name is rob.ctl
		"fq.word.high", // over-qualified
		"no.such.elem",
	} {
		_, err := NewMapExact(s, Assignments{name: Parity, "fq.word": Parity})
		if err == nil {
			t.Fatalf("assignment with unresolved name %q built silently", name)
		}
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error for %q does not name the offender: %v", name, err)
		}
	}
	// Several unresolved names are all reported, sorted.
	_, err := NewMapExact(s, Assignments{"zzz.b": ECC, "aaa.a": Parity})
	if err == nil {
		t.Fatal("two unresolved names built silently")
	}
	if !strings.Contains(err.Error(), "aaa.a, zzz.b") {
		t.Errorf("unresolved names not sorted in error: %v", err)
	}
}

func TestNewMapExactCoversEveryWordOfAName(t *testing.T) {
	s := space(t)
	m, err := NewMapExact(s, Assignments{"prf.val": ECC})
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range s.Elements() {
		want := Unprotected
		if e.Name == "prf.val" {
			want = ECC
		}
		if m.Protection(i) != want {
			t.Fatalf("element %d (%s): protection %v, want %v", i, e.Name, m.Protection(i), want)
		}
	}
}

func TestSurveyCoverageAndOverhead(t *testing.T) {
	s := space(t)
	m := mustMap(t, s, LowHangingFruit)
	st := Survey(s, m)
	if st.TotalBits != s.TotalBits(false) {
		t.Errorf("total bits %d vs %d", st.TotalBits, s.TotalBits(false))
	}
	cov := st.CoveredFraction()
	if cov < 0.30 || cov > 0.85 {
		t.Errorf("coverage %.2f outside plausible range", cov)
	}
	// The paper quotes ~7% additional state for this placement.
	oh := st.OverheadFraction()
	if oh < 0.02 || oh > 0.15 {
		t.Errorf("overhead %.3f not in the paper's ballpark (~0.07)", oh)
	}
	t.Logf("coverage=%.1f%% overhead=%.1f%% (ecc=%d parity=%d of %d bits)",
		100*cov, 100*oh, st.ECCBits, st.ParityBits, st.TotalBits)
}

func TestProtectionBounds(t *testing.T) {
	s := space(t)
	m := mustMap(t, s, LowHangingFruit)
	if m.Protection(-1) != Unprotected || m.Protection(1<<30) != Unprotected {
		t.Error("out-of-range indices must be unprotected")
	}
}

func TestProtectionStrings(t *testing.T) {
	if Unprotected.String() == "" || Parity.String() == "" || ECC.String() == "" {
		t.Error("empty protection names")
	}
	if Parity.String() == ECC.String() {
		t.Error("indistinct protection names")
	}
	for _, p := range []Protection{Unprotected, Parity, ECC} {
		got, err := ParseProtection(p.String())
		if err != nil || got != p {
			t.Errorf("ParseProtection(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParseProtection("triple-modular"); err == nil {
		t.Error("unknown protection name parsed silently")
	}
}

func TestSECDEDWidths(t *testing.T) {
	tests := []struct {
		data uint64
		want uint64
	}{
		{8, 5}, {16, 6}, {32, 7}, {64, 8}, {7, 5},
	}
	for _, tt := range tests {
		if got := SECDEDBits(tt.data); got != tt.want {
			t.Errorf("SECDEDBits(%d) = %d, want %d", tt.data, got, tt.want)
		}
	}
}

func TestProtectionCost(t *testing.T) {
	if got := ProtectionCost(Parity, 64); got != 1 {
		t.Errorf("parity cost %d, want 1", got)
	}
	if got := ProtectionCost(ECC, 64); got != 8 {
		t.Errorf("ecc cost %d, want 8", got)
	}
	if got := ProtectionCost(Unprotected, 64); got != 0 {
		t.Errorf("unprotected cost %d, want 0", got)
	}
}
