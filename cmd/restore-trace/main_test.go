package main

import (
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestRunBenchmarkTrace(t *testing.T) {
	if err := run([]string{"-n", "10", "gzip"}, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-n", "10", "-skip", "500", "-stats-only", "mcf"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunAsmFileTrace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "prog.s")
	src := `
		.imm r1 4
	loop:
		subq r1, #1, r1
		bgt  r1, loop
		halt
	`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-n", "20", path}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunCorruptFlag(t *testing.T) {
	if err := run([]string{"-n", "5", "-skip", "2000", "-corrupt", "r9:3", "gzip"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{}, io.Discard); err == nil {
		t.Error("missing program accepted")
	}
	if err := run([]string{"nosuchbench"}, io.Discard); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if err := run([]string{"/does/not/exist.s"}, io.Discard); err == nil {
		t.Error("missing file accepted")
	}
	for _, bad := range []string{"r9", "x9:3", "r99:3", "r9:77"} {
		if err := run([]string{"-corrupt", bad, "gzip"}, io.Discard); err == nil {
			t.Errorf("bad corrupt spec %q accepted", bad)
		}
	}
}

func TestParseCorrupt(t *testing.T) {
	r, bit, err := parseCorrupt("r10:45")
	if err != nil || r != 10 || bit != 45 {
		t.Errorf("parseCorrupt = %v %v %v", r, bit, err)
	}
}
