package pipeline

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/workload"
)

func metricsTestPipeline(t *testing.T) *Pipeline {
	t.Helper()
	return newBenchPipeline(t, workload.Gzip, DefaultConfig())
}

func TestAttachObsCountsMatchStats(t *testing.T) {
	p := metricsTestPipeline(t)
	reg := obs.NewRegistry()
	p.AttachObs(reg, "pipeline")
	p.RunCycles(2000)
	s := p.Stats()

	for _, c := range []struct {
		name string
		want uint64
	}{
		{"pipeline_fetched_total", s.Fetched},
		{"pipeline_dispatched_total", s.Dispatched},
		{"pipeline_issued_total", s.Issued},
		{"pipeline_committed_total", s.Retired},
		{"pipeline_squashes_total", s.Flushes},
		{"pipeline_mispredicts_total", s.Mispredicts},
	} {
		if got := reg.Counter(c.name).Value(); got != int64(c.want) {
			t.Errorf("%s = %d, want %d (Stats delta mismatch)", c.name, got, c.want)
		}
	}
	// One occupancy sample per cycle.
	if got := reg.Hist("pipeline_rob_occupancy").Count(); got != int64(s.Cycles) {
		t.Errorf("rob occupancy samples = %d, want %d cycles", got, s.Cycles)
	}
	if reg.Hist("pipeline_sched_occupancy").Count() == 0 {
		t.Error("scheduler occupancy never sampled")
	}
}

func TestAttachObsMidRunCountsDeltasOnly(t *testing.T) {
	p := metricsTestPipeline(t)
	p.RunCycles(1000)
	warm := p.Stats()

	reg := obs.NewRegistry()
	p.AttachObs(reg, "pipeline")
	p.RunCycles(1000)
	s := p.Stats()

	want := int64(s.Retired - warm.Retired)
	if got := reg.Counter("pipeline_committed_total").Value(); got != want {
		t.Fatalf("committed after mid-run attach = %d, want delta %d", got, want)
	}
}

func TestAttachObsInert(t *testing.T) {
	plain := metricsTestPipeline(t)
	instr := metricsTestPipeline(t)
	instr.AttachObs(obs.NewRegistry(), "pipeline")

	plain.RunCycles(3000)
	instr.RunCycles(3000)

	if plain.Stats() != instr.Stats() {
		t.Fatalf("stats diverge with metrics attached:\nplain %+v\ninstr %+v", plain.Stats(), instr.Stats())
	}
	if ph, ih := plain.State().Hash(), instr.State().Hash(); ph != ih {
		t.Fatalf("state hash diverges with metrics attached: %x vs %x", ph, ih)
	}
	if plain.ArchRegs() != instr.ArchRegs() {
		t.Fatal("architectural registers diverge with metrics attached")
	}
}

func TestCloneAndResetDropObs(t *testing.T) {
	p := metricsTestPipeline(t)
	p.AttachObs(obs.NewRegistry(), "pipeline")

	c := p.Clone()
	if c.obsM != nil {
		t.Fatal("Clone copied the obs attachment")
	}
	c.AttachObs(obs.NewRegistry(), "x")
	c.ResetFrom(p)
	if c.obsM != nil {
		t.Fatal("ResetFrom kept the obs attachment")
	}
	// Detach works too.
	p.AttachObs(nil, "")
	if p.obsM != nil {
		t.Fatal("AttachObs(nil) did not detach")
	}
}
