// Package fixture holds the durable-IO shapes the analyzer must accept:
// write-sync-rename publishes (directly and through a named local), the
// buffered-writer flush pattern on a struct field, and a record scan that
// checksums before trusting.
package fixture

import (
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

type Record struct {
	Slot    int
	Payload []byte
}

func publish(dir string, data []byte) error {
	tmp, err := os.CreateTemp(dir, "m.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(dir, "manifest"))
}

func publishViaLocal(dir string, data []byte) error {
	tmp, err := os.CreateTemp(dir, "t.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	name := tmp.Name()
	return os.Rename(name, filepath.Join(dir, "final"))
}

type writer struct {
	f   *os.File
	buf []byte
}

func (w *writer) flush() error {
	if len(w.buf) == 0 {
		return nil
	}
	if _, err := w.f.Write(w.buf); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.buf = w.buf[:0]
	return nil
}

func scan(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []Record
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			return out, nil
		}
		payload := make([]byte, 16)
		if _, err := io.ReadFull(f, payload); err != nil {
			return out, nil
		}
		if crc32.ChecksumIEEE(payload) != uint32(hdr[0]) {
			return nil, os.ErrInvalid
		}
		out = append(out, Record{Slot: int(hdr[1]), Payload: payload})
	}
}
