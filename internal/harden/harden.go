// Package harden models parity/ECC protection of pipeline state, after the
// paper's Section 5.2.2 (from the authors' DSN-2004 work): parity on the
// control word latches within the pipeline and ECC on the register file and
// other key data stores (alias tables, fetch queue).
//
// The protection map classifies every element of a pipeline's state space
// into a protection domain. Fault-injection campaigns consult the map: a
// flip landing in an ECC-protected element is corrected in place, and one
// landing in a parity-protected element is detected on read and recovered
// by a pipeline flush — in both cases the fault cannot cause failure, which
// is exactly how the paper's hardened-pipeline campaign (Figure 6) treats
// them.
//
// The paper's hand-picked placement is one Assignments value
// (LowHangingFruitAssignments); internal/protect generalises placements
// into budgeted policies derived from static vulnerability analysis.
package harden

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/pipeline"
)

// Protection is the domain of one state element.
type Protection uint8

// Protection domains.
const (
	// Unprotected elements take faults at face value.
	Unprotected Protection = iota
	// Parity detects single-bit flips on read; recovery is a pipeline
	// flush (the corrupt in-flight state is discarded and refetched).
	Parity
	// ECC corrects single-bit flips on read.
	ECC
)

// String names the protection domain.
func (p Protection) String() string {
	switch p {
	case Parity:
		return "parity"
	case ECC:
		return "ecc"
	case Unprotected:
		return "unprotected"
	}
	return fmt.Sprintf("Protection(%d)", uint8(p))
}

// ParseProtection inverts String.
func ParseProtection(s string) (Protection, error) {
	switch s {
	case "parity":
		return Parity, nil
	case "ecc":
		return ECC, nil
	case "unprotected", "":
		return Unprotected, nil
	}
	return Unprotected, fmt.Errorf("harden: unknown protection %q", s)
}

// Scheme selects a placement of protection over the state space.
type Scheme uint8

// Available schemes.
const (
	// None leaves the whole pipeline unprotected (the baseline).
	None Scheme = iota
	// LowHangingFruit is the paper's Section 5.2.2 placement: ECC on the
	// SRAM arrays whose data lives long enough to protect cheaply
	// (register file, both alias tables, free list), parity on the
	// in-pipeline control word latches (decoded instructions in the ROB
	// and scheduler and the raw words in the fetch queue).
	LowHangingFruit
)

// Assignments maps registered state-element names (exact, as passed to
// StateSpace.Register) to protection domains. Names must resolve against
// the state space they are compiled for; a name that matches no registered
// element is an error, never a silent skip.
type Assignments map[string]Protection

// LowHangingFruitAssignments returns the paper's hand-picked placement as
// an explicit element-name assignment. The names are the exact registered
// StateSpace element names.
func LowHangingFruitAssignments() Assignments {
	return Assignments{
		// ECC on the long-lived SRAM stores.
		"prf.val":   ECC,
		"prf.ready": ECC,
		"specRAT":   ECC,
		"archRAT":   ECC,
		"freelist":  ECC,
		// Parity on the in-pipeline control word latches.
		"rob.ctl":      Parity,
		"fq.word":      Parity,
		"fq.pc":        Parity,
		"sched.flags":  Parity,
		"sched.robIdx": Parity,
		"sched.src1":   Parity,
		"sched.src2":   Parity,
		"sched.src3":   Parity,
	}
}

// SchemeAssignments returns the element assignment a legacy Scheme selects.
func SchemeAssignments(s Scheme) Assignments {
	if s == LowHangingFruit {
		return LowHangingFruitAssignments()
	}
	return nil
}

// Map assigns a protection domain to every element of one state space.
type Map struct {
	prot []Protection
}

// NewMap classifies the elements of the given state space under the scheme.
// It fails if the scheme's assignment names an element the space does not
// register (the scheme sets ship with the pipeline, so an error here means
// an element was renamed without updating the placement).
func NewMap(space *pipeline.StateSpace, scheme Scheme) (*Map, error) {
	return NewMapExact(space, SchemeAssignments(scheme))
}

// NewMapExact builds a protection map from an explicit element-name
// assignment. Matching is exact against the registered element names: every
// element whose name equals an assignment key receives that domain, and an
// assignment key that resolves to no registered element is an error — a
// policy naming a stale or misspelled element must fail loudly, not
// silently protect nothing.
func NewMapExact(space *pipeline.StateSpace, assign Assignments) (*Map, error) {
	elems := space.Elements()
	m := &Map{prot: make([]Protection, len(elems))}
	if len(assign) == 0 {
		return m, nil
	}
	resolved := make(map[string]bool, len(assign))
	for i := range elems {
		p, ok := assign[elems[i].Name]
		if !ok {
			continue
		}
		m.prot[i] = p
		resolved[elems[i].Name] = true
	}
	if len(resolved) != len(assign) {
		var missing []string
		for name := range assign {
			if !resolved[name] {
				missing = append(missing, name)
			}
		}
		sort.Strings(missing)
		return nil, fmt.Errorf("harden: assignment names unregistered element(s): %s",
			strings.Join(missing, ", "))
	}
	return m, nil
}

// Protection returns the domain of element index i.
func (m *Map) Protection(i int) Protection {
	if i < 0 || i >= len(m.prot) {
		return Unprotected
	}
	return m.prot[i]
}

// Protected reports whether the element is covered by parity or ECC.
func (m *Map) Protected(i int) bool { return m.prot[i] != Unprotected }

// Stats summarises a protection map over its state space.
type Stats struct {
	TotalBits    uint64
	ECCBits      uint64
	ParityBits   uint64
	OverheadBits uint64 // extra check bits the protection costs
}

// CoveredFraction returns the fraction of state bits under any protection.
func (s Stats) CoveredFraction() float64 {
	if s.TotalBits == 0 {
		return 0
	}
	return float64(s.ECCBits+s.ParityBits) / float64(s.TotalBits)
}

// OverheadFraction returns check bits relative to total state, the paper's
// "approximately 7% additional state in the execution core".
func (s Stats) OverheadFraction() float64 {
	if s.TotalBits == 0 {
		return 0
	}
	return float64(s.OverheadBits) / float64(s.TotalBits)
}

// Survey computes coverage and overhead statistics for the map over its
// space. Overhead: parity costs 1 check bit per protected word; ECC costs
// SEC-DED width (⌈log2 n⌉ + 2) per protected word.
func Survey(space *pipeline.StateSpace, m *Map) Stats {
	var s Stats
	for i, e := range space.Elements() {
		bits := uint64(e.Bits)
		s.TotalBits += bits
		switch m.Protection(i) {
		case ECC:
			s.ECCBits += bits
			s.OverheadBits += SECDEDBits(bits)
		case Parity:
			s.ParityBits += bits
			s.OverheadBits++
		case Unprotected:
		}
	}
	return s
}

// ProtectionCost returns the check-bit overhead of protecting one word of
// the given width: 1 for parity, SEC-DED width for ECC, 0 otherwise.
func ProtectionCost(p Protection, dataBits uint64) uint64 {
	switch p {
	case Parity:
		return 1
	case ECC:
		return SECDEDBits(dataBits)
	case Unprotected:
	}
	return 0
}

// SECDEDBits returns the check-bit count of a single-error-correcting,
// double-error-detecting Hamming code over dataBits data bits.
func SECDEDBits(dataBits uint64) uint64 {
	check := uint64(0)
	for (uint64(1) << check) < dataBits+check+1 {
		check++
	}
	return check + 1 // +1 for double-error detection
}
