// Package protect unifies the repository's two halves of selective
// hardening behind one abstraction: a protection Policy names the state
// elements to cover and the domain (parity or ECC) each receives, whether
// the placement was hand-picked (the paper's Section 5.2.2 "low-hanging
// fruit") or derived by the budgeted optimizer in rank.go from the static
// bit-level vulnerability analysis (internal/staticvuln) — the BEC-style
// loop: statically rank bits by proven vulnerability, spend the check-bit
// budget only where it pays.
//
// A Policy compiles onto a pipeline's StateSpace as a harden.Map, which the
// dynamic injection campaigns consult; it serializes to deterministic JSON
// for the `restore-sim protect` subcommand; and it fingerprints into the
// durable-campaign plan string, so policy-on campaigns keep the engines'
// byte-identical serial/parallel/sharded guarantee.
package protect

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/harden"
	"repro/internal/pipeline"
)

// Kind records how a policy's placement was chosen.
type Kind uint8

// Policy kinds.
const (
	// KindNone is the empty policy: the unprotected baseline.
	KindNone Kind = iota
	// KindHandPicked is a fixed, human-chosen placement (the paper's
	// low-hanging-fruit set, or any explicit assignment).
	KindHandPicked
	// KindStaticBudget is a placement derived by the budgeted optimizer
	// from a static vulnerability ranking.
	KindStaticBudget
)

// String names the policy kind.
func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindHandPicked:
		return "hand-picked"
	case KindStaticBudget:
		return "static-budget"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// ParseKind inverts String.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "none", "":
		return KindNone, nil
	case "hand-picked":
		return KindHandPicked, nil
	case "static-budget":
		return KindStaticBudget, nil
	}
	return KindNone, fmt.Errorf("protect: unknown policy kind %q", s)
}

// Assignment covers one named state element with one protection domain.
type Assignment struct {
	Elem string
	Prot harden.Protection
}

// Policy is a named protection placement over the pipeline's state space.
type Policy struct {
	Name string
	Kind Kind
	// BudgetBits is the check-bit budget the optimizer ran under; zero for
	// hand-picked and empty policies.
	BudgetBits uint64
	// Assign lists the protected elements, sorted by element name.
	Assign []Assignment
	// Predicted is the statically predicted coverage: the protected share
	// of the ranking's failure mass. Zero when no ranking produced the
	// policy.
	Predicted float64
}

// None returns the empty policy (the unprotected baseline).
func None() *Policy {
	return &Policy{Name: "none", Kind: KindNone}
}

// LowHangingFruit returns the paper's hand-picked placement as a policy.
func LowHangingFruit() *Policy {
	return fromAssignments("low-hanging-fruit", harden.LowHangingFruitAssignments())
}

// FromScheme lifts a legacy harden.Scheme into a policy.
func FromScheme(s harden.Scheme) *Policy {
	if s == harden.None {
		return None()
	}
	return LowHangingFruit()
}

func fromAssignments(name string, a harden.Assignments) *Policy {
	p := &Policy{Name: name, Kind: KindHandPicked}
	for elem, prot := range a {
		p.Assign = append(p.Assign, Assignment{Elem: elem, Prot: prot})
	}
	p.normalize()
	return p
}

// normalize sorts the assignment list by element name; every constructor
// and decoder calls it so serialization and fingerprints are deterministic.
func (p *Policy) normalize() {
	sort.Slice(p.Assign, func(i, j int) bool { return p.Assign[i].Elem < p.Assign[j].Elem })
}

// Assignments converts the policy to the exact-name assignment map
// harden.NewMapExact compiles.
func (p *Policy) Assignments() harden.Assignments {
	if p == nil || len(p.Assign) == 0 {
		return nil
	}
	out := make(harden.Assignments, len(p.Assign))
	for _, a := range p.Assign {
		out[a.Elem] = a.Prot
	}
	return out
}

// ProtectionOf returns the domain the policy assigns to a named element
// (Unprotected when the policy does not cover it).
func (p *Policy) ProtectionOf(elem string) harden.Protection {
	if p == nil {
		return harden.Unprotected
	}
	for _, a := range p.Assign {
		if a.Elem == elem {
			return a.Prot
		}
	}
	return harden.Unprotected
}

// Compile builds the protection map of this policy over a state space. An
// assignment naming an element the space does not register is an error
// (exact matching, no silent skips — see harden.NewMapExact).
func (p *Policy) Compile(space *pipeline.StateSpace) (*harden.Map, error) {
	if p == nil {
		return harden.NewMapExact(space, nil)
	}
	m, err := harden.NewMapExact(space, p.Assignments())
	if err != nil {
		return nil, fmt.Errorf("protect: policy %q: %w", p.Name, err)
	}
	return m, nil
}

// Survey compiles the policy and reports its coverage and check-bit
// overhead over a state space.
func (p *Policy) Survey(space *pipeline.StateSpace) (harden.Stats, error) {
	m, err := p.Compile(space)
	if err != nil {
		return harden.Stats{}, err
	}
	return harden.Survey(space, m), nil
}

// Fingerprint is the policy's canonical plan string: every field that
// changes which trials a policy-on campaign can absorb. It feeds the
// durable-campaign manifest hash (inject.planString), so two configurations
// share journals exactly when their policies protect the same elements.
func (p *Policy) Fingerprint() string {
	if p == nil {
		return "none"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%s/%d:", p.Name, p.Kind, p.BudgetBits)
	for i, a := range p.Assign {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%s", a.Elem, a.Prot)
	}
	return b.String()
}

// EqualBudget returns the check-bit overhead of the paper's hand-picked
// placement over a state space — the budget at which static-derived and
// hand-picked policies compare like-for-like.
func EqualBudget(space *pipeline.StateSpace) (uint64, error) {
	st, err := LowHangingFruit().Survey(space)
	if err != nil {
		return 0, err
	}
	return st.OverheadBits, nil
}

// policyJSON is the serialized form: stable field names, protection domains
// and kinds as strings, assignments in sorted element order.
type policyJSON struct {
	Name       string       `json:"name"`
	Kind       string       `json:"kind"`
	BudgetBits uint64       `json:"budget_bits,omitempty"`
	Predicted  float64      `json:"predicted_coverage,omitempty"`
	Assign     []assignJSON `json:"assignments"`
}

type assignJSON struct {
	Elem string `json:"elem"`
	Prot string `json:"protection"`
}

// MarshalJSON serializes the policy deterministically: assignments are kept
// sorted by element name, so equal policies are byte-identical.
func (p *Policy) MarshalJSON() ([]byte, error) {
	out := policyJSON{
		Name:       p.Name,
		Kind:       p.Kind.String(),
		BudgetBits: p.BudgetBits,
		Predicted:  p.Predicted,
		Assign:     make([]assignJSON, 0, len(p.Assign)),
	}
	for _, a := range p.Assign {
		out.Assign = append(out.Assign, assignJSON{Elem: a.Elem, Prot: a.Prot.String()})
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes a serialized policy, re-normalizing the assignment
// order and rejecting unknown kinds or protection domains.
func (p *Policy) UnmarshalJSON(data []byte) error {
	var in policyJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	kind, err := ParseKind(in.Kind)
	if err != nil {
		return err
	}
	assign := make([]Assignment, 0, len(in.Assign))
	for _, a := range in.Assign {
		prot, err := harden.ParseProtection(a.Prot)
		if err != nil {
			return err
		}
		assign = append(assign, Assignment{Elem: a.Elem, Prot: prot})
	}
	*p = Policy{
		Name:       in.Name,
		Kind:       kind,
		BudgetBits: in.BudgetBits,
		Predicted:  in.Predicted,
		Assign:     assign,
	}
	p.normalize()
	return nil
}
