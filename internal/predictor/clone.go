package predictor

// Clone support: fault-injection campaigns fork a warmed-up pipeline once
// per injection point and run many corrupted trials from identical state, so
// every predictor must be deep-copyable.

// Clone returns an independent copy.
func (b *Bimodal) Clone() *Bimodal {
	c := *b
	c.table = append([]counter2(nil), b.table...)
	return &c
}

// Clone returns an independent copy.
func (g *Gshare) Clone() *Gshare {
	c := *g
	c.table = append([]counter2(nil), g.table...)
	return &c
}

// Clone returns an independent copy.
func (c *Combined) Clone() *Combined {
	n := *c
	n.bimodal = c.bimodal.Clone()
	n.gshare = c.gshare.Clone()
	n.chooser = append([]counter2(nil), c.chooser...)
	return &n
}

// Clone returns an independent copy.
func (b *BTB) Clone() *BTB {
	c := *b
	c.entries = append([]btbEntry(nil), b.entries...)
	return &c
}

// Clone returns an independent copy.
func (r *RAS) Clone() *RAS {
	c := *r
	c.stack = append([]uint64(nil), r.stack...)
	return &c
}

// Clone returns an independent copy. The history source, if any, must be
// re-bound by the caller via SetHistorySource so the clone tracks its own
// pipeline's predictor rather than the original's.
func (j *JRS) Clone() ConfidenceEstimator {
	c := *j
	c.table = append([]uint8(nil), j.table...)
	return &c
}

// SetHistorySource re-points the estimator's global-history input.
func (j *JRS) SetHistorySource(hist *Gshare) { j.hist = hist }

// Clone returns the oracle itself (stateless).
func (Perfect) Clone() ConfidenceEstimator { return Perfect{} }

// Clone returns the null estimator itself (stateless).
func (Never) Clone() ConfidenceEstimator { return Never{} }

// CopyFrom support: campaign clone pools reset an already-allocated clone
// back to the master's state instead of allocating a fresh Clone per trial.
// Each CopyFrom reuses the receiver's tables when the geometries match.

func copyCounters(dst *[]counter2, src []counter2) {
	if len(*dst) != len(src) {
		//restorelint:allowalloc -- geometry mismatch only; the clone pool re-images identically-shaped predictors
		*dst = make([]counter2, len(src))
	}
	copy(*dst, src)
}

// CopyFrom makes b an exact copy of src, reusing b's table.
func (b *Bimodal) CopyFrom(src *Bimodal) {
	b.mask = src.mask
	copyCounters(&b.table, src.table)
}

// CopyFrom makes g an exact copy of src, reusing g's table.
func (g *Gshare) CopyFrom(src *Gshare) {
	g.mask = src.mask
	g.hist = src.hist
	g.histBits = src.histBits
	copyCounters(&g.table, src.table)
}

// CopyFrom makes c an exact copy of src, reusing c's tables.
func (c *Combined) CopyFrom(src *Combined) {
	c.mask = src.mask
	c.bimodal.CopyFrom(src.bimodal)
	c.gshare.CopyFrom(src.gshare)
	copyCounters(&c.chooser, src.chooser)
}

// CopyFrom makes b an exact copy of src, reusing b's entry array.
func (b *BTB) CopyFrom(src *BTB) {
	b.ways = src.ways
	b.sets = src.sets
	if len(b.entries) != len(src.entries) {
		//restorelint:allowalloc -- geometry mismatch only; the clone pool re-images identically-shaped predictors
		b.entries = make([]btbEntry, len(src.entries))
	}
	copy(b.entries, src.entries)
}

// CopyFrom makes r an exact copy of src, reusing r's stack.
func (r *RAS) CopyFrom(src *RAS) {
	r.top = src.top
	r.depth = src.depth
	if len(r.stack) != len(src.stack) {
		//restorelint:allowalloc -- geometry mismatch only; the clone pool re-images identically-shaped predictors
		r.stack = make([]uint64, len(src.stack))
	}
	copy(r.stack, src.stack)
}

// CopyFrom makes j an exact copy of src's table and thresholds, reusing j's
// table. The history source is cleared, matching Clone: the caller rebinds
// it via SetHistorySource if the estimator should track a live predictor.
func (j *JRS) CopyFrom(src *JRS) {
	j.mask = src.mask
	j.max = src.max
	j.threshold = src.threshold
	j.hist = nil
	if len(j.table) != len(src.table) {
		//restorelint:allowalloc -- geometry mismatch only; the clone pool re-images identically-shaped predictors
		j.table = make([]uint8, len(src.table))
	}
	copy(j.table, src.table)
}

// CopyFrom makes m an exact copy of src, reusing m's table.
func (m *MemDep) CopyFrom(src *MemDep) {
	m.mask = src.mask
	if len(m.table) != len(src.table) {
		//restorelint:allowalloc -- geometry mismatch only; the clone pool re-images identically-shaped predictors
		m.table = make([]uint8, len(src.table))
	}
	copy(m.table, src.table)
}
