// Durable campaigns: resuming, sharding and merging.
//
// Both campaign engines are pure functions of their configuration — every
// random decision is pre-drawn from the seed and every trial fills a
// pre-assigned (point, trial) slot. That purity is what makes durability
// cheap: a campaign directory (internal/campaignio) is nothing more than a
// cache of slots already computed, keyed by a fingerprint of every
// plan-relevant configuration field. A run pointed at the directory loads the
// cached slots, re-runs only the missing ones, and produces a result
// byte-identical to a one-shot serial run; k processes configured as shards
// k/n each own the slots s with s%n == k-1 and their merged journals
// reconstruct the same result.
//
// Truncation discipline: a workload that halts early truncates a campaign at
// a point boundary, deterministically. Golden-trace recording at a point is
// skipped only when EVERY slot of that point is journal-loaded — a shard that
// merely owns no remaining work there still records (and so still detects
// truncation at) the point, which keeps the set of journalled points
// identical across shards and makes the merge's gap-free-prefix check sound.
package inject

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"

	"repro/internal/campaignio"
	"repro/internal/obs"
	"repro/internal/pipeline"
)

// ErrInterrupted is returned by RunUArch/RunVM when the configured Interrupt
// channel fires. In-flight trials are drained and journalled first, so a
// resumed run loses no completed work.
var ErrInterrupted = errors.New("inject: campaign interrupted")

// journalBatch is the number of trial records per fsync. Small enough that an
// interruption loses at most a batch of cheap-to-recompute trials, large
// enough that the fsync cost disappears under the trial cost.
const journalBatch = 64

// fingerprint hashes the canonical form of a campaign's plan-relevant fields.
// Workers, Progress, Obs, Interrupt, the durability fields and the inert
// engine toggles (NoDecodeCache, NoEarlyExit, LegacyHash) are excluded: they
// never influence results, and a campaign journalled serially must resume
// under any worker count or engine setting.
func fingerprint(canonical string) string {
	h := fnv.New64a()
	h.Write([]byte(canonical))
	return fmt.Sprintf("%016x", h.Sum64())
}

func (c UArchConfig) planString() string {
	pcfg := pipeline.DefaultConfig()
	if c.Pipeline != nil {
		pcfg = *c.Pipeline
	}
	s := fmt.Sprintf("uarch|bench=%s|seed=%d|scale=%g|points=%d|tpp=%d|warmup=%d|spread=%d|window=%d|latches=%t|burst=%d|harden=%d|pipe=%+v",
		c.Bench, c.Seed, c.Scale, c.Points, c.TrialsPerPoint,
		c.WarmupCycles, c.SpreadCycles, c.WindowCycles,
		c.LatchesOnly, c.BurstBits, c.Harden, pcfg)
	// The policy suffix appears only when a policy is set, so campaign
	// directories journalled before policies existed stay resumable.
	if c.Policy != nil {
		s += "|policy=" + c.Policy.Fingerprint()
	}
	return s
}

func (c VMConfig) planString() string {
	s := fmt.Sprintf("vm|bench=%s|seed=%d|scale=%g|trials=%d|points=%d|warmup=%d|spread=%d|window=%d|low32=%t",
		c.Bench, c.Seed, c.Scale, c.Trials, c.Points,
		c.Warmup, c.Spread, c.Window, c.Low32)
	if c.Policy != nil {
		s += "|policy=" + c.Policy.Fingerprint()
	}
	return s
}

// CampaignID names the campaign directory for this configuration: the
// campaign kind, the benchmark, and the plan fingerprint. Two configurations
// share an ID exactly when their journals are interchangeable.
func (c UArchConfig) CampaignID() string {
	c.applyDefaults()
	return fmt.Sprintf("uarch-%s-%s", c.Bench, fingerprint(c.planString()))
}

// CampaignID names the campaign directory for this configuration.
func (c VMConfig) CampaignID() string {
	c.applyDefaults()
	return fmt.Sprintf("vm-%s-%s", c.Bench, fingerprint(c.planString()))
}

// uarchAux is the microarchitectural campaign's manifest aggregate: state
// derived from the pipeline geometry, carried in the manifest so a merge can
// rebuild the full UArchResult without constructing a pipeline.
type uarchAux struct {
	TotalBits   uint64          `json:"total_bits"`
	LatchBits   uint64          `json:"latch_bits"`
	HardenStats hardenStatsJSON `json:"harden_stats"`
}

// hardenStatsJSON mirrors harden.Stats with stable JSON names.
type hardenStatsJSON struct {
	TotalBits    uint64 `json:"total_bits"`
	ECCBits      uint64 `json:"ecc_bits"`
	ParityBits   uint64 `json:"parity_bits"`
	OverheadBits uint64 `json:"overhead_bits"`
}

// validateSharding checks the durability fields shared by both campaign
// types. shardCount == 0 means unsharded (normalised to 1 of 1).
func validateSharding(resumeFrom string, shardIndex, shardCount int) error {
	if shardCount == 0 && shardIndex == 0 {
		return nil
	}
	if shardCount < 1 || shardIndex < 0 || shardIndex >= shardCount {
		return fmt.Errorf("inject: invalid shard %d of %d", shardIndex, shardCount)
	}
	if shardCount > 1 && resumeFrom == "" {
		return fmt.Errorf("inject: a sharded campaign needs a campaign directory (ResumeFrom) to journal into")
	}
	return nil
}

// openJournals tracks every live campaignJournal so an emergency shutdown —
// a process forced to exit while campaigns are still draining — can flush
// the records of already-completed trials without waiting for the drain.
// Entries are registered by openCampaignJournal and removed by finish.
var openJournals sync.Map // *campaignJournal -> struct{}

// FlushJournals fsyncs the buffered records of every open campaign journal.
// It is the emergency half of the interruption protocol: the orderly path
// (Interrupt channel) drains in-flight trials and closes each journal via
// finish, while FlushJournals makes whatever is already journalled durable
// right now, from any goroutine, without stopping the campaigns. Records
// flushed here are exactly the completed trials a resumed run recovers.
// It returns the first flush error, if any.
func FlushJournals() error {
	var first error
	openJournals.Range(func(k, _ any) bool {
		if err := k.(*campaignJournal).w.Flush(); err != nil && first == nil {
			first = err
		}
		return true
	})
	return first
}

// campaignJournal couples a campaignio.Writer with the bookkeeping a running
// campaign needs: which slots were loaded, whether a torn tail was repaired,
// and the first append error (workers journal concurrently; the dispatcher
// surfaces the error after draining). All methods are nil-receiver-safe so
// the engines call them unconditionally.
type campaignJournal struct {
	w       *campaignio.Writer
	resumed int
	torn    bool

	mu  sync.Mutex
	err error
}

// openCampaignJournal opens (or creates) the campaign directory, validates
// its manifest against the live plan, scans the journal — truncating a torn
// tail, failing hard on any other corruption — and returns the journal plus
// the recovered payloads indexed by slot (nil where missing). compress
// selects the compressed-segment journal framing for a freshly created
// journal (an existing journal keeps its own framing).
func openCampaignJournal(dir string, want campaignio.Manifest, compress bool) (*campaignJournal, [][]byte, error) {
	if campaignio.HasManifest(dir) {
		have, err := campaignio.ReadManifest(dir)
		if err != nil {
			return nil, nil, err
		}
		if err := want.Resumable(have); err != nil {
			return nil, nil, fmt.Errorf("inject: %s is not resumable by this configuration: %w", dir, err)
		}
	} else if err := campaignio.WriteManifest(dir, want); err != nil {
		return nil, nil, err
	}
	scan, err := campaignio.ScanJournal(dir, want.Slots)
	if err != nil {
		return nil, nil, err
	}
	loaded := make([][]byte, want.Slots)
	distinct := 0
	for _, rec := range scan.Records {
		if !want.Owns(rec.Slot) {
			return nil, nil, fmt.Errorf("inject: %s: %w: slot %d belongs to another shard",
				dir, campaignio.ErrCorrupt, rec.Slot)
		}
		if prev := loaded[rec.Slot]; prev != nil {
			// A slot journalled twice with identical bytes is the benign
			// residue of an interrupted run whose batch re-ran after an
			// older scan; only differing payloads are corruption.
			if !bytes.Equal(prev, rec.Payload) {
				return nil, nil, fmt.Errorf("inject: %s: %w: slot %d recorded twice with differing payloads",
					dir, campaignio.ErrCorrupt, rec.Slot)
			}
			continue
		}
		loaded[rec.Slot] = rec.Payload
		distinct++
	}
	w, err := campaignio.OpenWriterWith(dir, scan.ValidLen, campaignio.Options{
		Batch:    journalBatch,
		Compress: compress,
	})
	if err != nil {
		return nil, nil, err
	}
	j := &campaignJournal{w: w, resumed: distinct, torn: scan.Torn}
	openJournals.Store(j, struct{}{})
	return j, loaded, nil
}

// record journals one completed trial. Called from worker goroutines as
// trials retire; marshal errors and write errors are captured for the
// dispatcher (the journal is durability bookkeeping — it must never perturb
// the trial results themselves).
func (j *campaignJournal) record(slot int, trial any) {
	if j == nil {
		return
	}
	payload, err := json.Marshal(trial)
	if err == nil {
		err = j.w.Append(slot, payload)
	}
	if err != nil {
		j.mu.Lock()
		if j.err == nil {
			j.err = err
		}
		j.mu.Unlock()
	}
}

// finish flushes and closes the journal, emits the durability telemetry, and
// returns the first error encountered anywhere in the journal's life.
func (j *campaignJournal) finish(sink obs.Sink, prefix string) error {
	if j == nil {
		return nil
	}
	openJournals.Delete(j)
	ferr := j.w.Close()
	sink.Counter(prefix + "_resumed_slots_total").Add(int64(j.resumed))
	sink.Counter(prefix + "_journal_flushes_total").Add(j.w.Flushes())
	if j.torn {
		sink.Counter(prefix + "_journal_torn_repairs_total").Inc()
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	return ferr
}

// interrupted reports whether the campaign's interrupt channel has fired.
func interrupted(ch <-chan struct{}) bool {
	if ch == nil {
		return false
	}
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

// MergeUArch merges the shard directories of a microarchitectural campaign
// into the result an unsharded run of cfg would return. Every shard manifest
// must match cfg's plan; overlapping, stray, missing or torn records are
// errors (campaignio.MergeScan) — a damaged shard is resumed, never patched
// over here.
func MergeUArch(cfg UArchConfig, dirs []string) (*UArchResult, error) {
	cfg.applyDefaults()
	man, payloads, err := campaignio.MergeScan(dirs)
	if err != nil {
		return nil, err
	}
	if err := checkMergedManifest(man, "uarch", fingerprint(cfg.planString()),
		cfg.Seed, string(cfg.Bench), cfg.Points*cfg.TrialsPerPoint); err != nil {
		return nil, err
	}
	var aux uarchAux
	if err := json.Unmarshal(man.Aux, &aux); err != nil {
		return nil, fmt.Errorf("inject: %w: campaign aggregates: %v", campaignio.ErrCorrupt, err)
	}
	res := &UArchResult{
		Config:    cfg,
		TotalBits: aux.TotalBits,
		LatchBits: aux.LatchBits,
	}
	res.HardenStats.TotalBits = aux.HardenStats.TotalBits
	res.HardenStats.ECCBits = aux.HardenStats.ECCBits
	res.HardenStats.ParityBits = aux.HardenStats.ParityBits
	res.HardenStats.OverheadBits = aux.HardenStats.OverheadBits
	res.Trials = make([]UArchTrial, len(payloads))
	for slot, p := range payloads {
		if err := json.Unmarshal(p, &res.Trials[slot]); err != nil {
			return nil, fmt.Errorf("inject: %w: slot %d: %v", campaignio.ErrCorrupt, slot, err)
		}
	}
	return res, nil
}

// MergeVM merges the shard directories of a software-level campaign into the
// result an unsharded run of cfg would return.
func MergeVM(cfg VMConfig, dirs []string) (*VMResult, error) {
	cfg.applyDefaults()
	man, payloads, err := campaignio.MergeScan(dirs)
	if err != nil {
		return nil, err
	}
	if err := checkMergedManifest(man, "vm", fingerprint(cfg.planString()),
		cfg.Seed, string(cfg.Bench), cfg.Trials); err != nil {
		return nil, err
	}
	res := &VMResult{Config: cfg}
	res.Trials = make([]VMTrial, len(payloads))
	for slot, p := range payloads {
		if err := json.Unmarshal(p, &res.Trials[slot]); err != nil {
			return nil, fmt.Errorf("inject: %w: slot %d: %v", campaignio.ErrCorrupt, slot, err)
		}
	}
	return res, nil
}

func checkMergedManifest(m campaignio.Manifest, kind, hash string, seed int64, bench string, slots int) error {
	switch {
	case m.Kind != kind:
		return fmt.Errorf("%w: campaign kind %q, expected %q", campaignio.ErrManifestMismatch, m.Kind, kind)
	case m.ConfigHash != hash:
		return fmt.Errorf("%w: config hash %s, expected %s", campaignio.ErrManifestMismatch, m.ConfigHash, hash)
	case m.Seed != seed:
		return fmt.Errorf("%w: seed %d, expected %d", campaignio.ErrManifestMismatch, m.Seed, seed)
	case m.Bench != bench:
		return fmt.Errorf("%w: benchmark %q, expected %q", campaignio.ErrManifestMismatch, m.Bench, bench)
	case m.Slots != slots:
		return fmt.Errorf("%w: %d slots, expected %d", campaignio.ErrManifestMismatch, m.Slots, slots)
	}
	return nil
}
