package main

import (
	"strings"
	"testing"
)

func TestBadFixtureFlagged(t *testing.T) {
	problems, err := checkDir("testdata/bad")
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 1 {
		t.Fatalf("problems = %v, want exactly the tail field", problems)
	}
	if !strings.Contains(problems[0], "leaky.tail") {
		t.Errorf("problem %q does not name leaky.tail", problems[0])
	}
	// The exempted and non-uint64 fields must not be flagged.
	for _, p := range problems {
		for _, clean := range []string{"cycles", "dirty", "head", "regs"} {
			if strings.Contains(p, clean) {
				t.Errorf("false positive on %s: %q", clean, p)
			}
		}
	}
}

func TestGoodFixtureClean(t *testing.T) {
	problems, err := checkDir("testdata/good")
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("unexpected problems: %v", problems)
	}
}

func TestPipelinePackageClean(t *testing.T) {
	problems, err := checkDir("../../internal/pipeline")
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("pipeline package has unregistered state: %v", problems)
	}
}

func TestMissingDir(t *testing.T) {
	if _, err := checkDir("testdata/nonexistent"); err == nil {
		t.Fatal("missing directory should error")
	}
}
