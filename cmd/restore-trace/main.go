// Command restore-trace runs a program on the detailed pipeline model and
// prints its commit trace and run statistics — a debugging lens over the
// simulator used throughout the ReStore reproduction.
//
// Usage:
//
//	restore-trace [flags] <bench-name | asm-file.s>
//
// The argument is either one of the seven synthetic benchmarks (bzip2, gap,
// gcc, gzip, mcf, parser, vortex) or a path to an assembly file in the
// internal/asm syntax.
//
// Examples:
//
//	restore-trace -n 40 gzip
//	restore-trace -n 100 -corrupt r10:45 myprog.s
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/pipeline"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "restore-trace:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("restore-trace", flag.ContinueOnError)
	var (
		n       = fs.Uint64("n", 50, "instructions to trace")
		skip    = fs.Uint64("skip", 0, "instructions to run before tracing")
		seed    = fs.Int64("seed", 42, "workload seed (benchmarks only)")
		scale   = fs.Float64("scale", 1.0, "workload data-structure scale (benchmarks only)")
		corrupt = fs.String("corrupt", "", "flip a bit before tracing, e.g. r10:45")
		quiet   = fs.Bool("stats-only", false, "suppress the trace; print statistics only")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: restore-trace [flags] <bench-name | asm-file.s>\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("exactly one program argument required")
	}

	prog, err := loadProgram(fs.Arg(0), *seed, *scale)
	if err != nil {
		return err
	}
	m, err := prog.NewMemory()
	if err != nil {
		return err
	}
	pipe, err := pipeline.New(pipeline.DefaultConfig(), m, prog.Entry)
	if err != nil {
		return err
	}

	if *skip > 0 {
		pipe.RunRetired(*skip, *skip*100+10_000)
	}
	if *corrupt != "" {
		reg, bit, err := parseCorrupt(*corrupt)
		if err != nil {
			return err
		}
		pipe.CorruptArchReg(reg, bit)
		fmt.Fprintf(stdout, "injected: bit %d of %s flipped\n", bit, reg)
	}

	tw := trace.NewWriter(stdout, trace.Options{
		MaxInstructions: *n,
		ShowStores:      true,
		ShowBranches:    true,
		ShowRegs:        true,
	})
	if !*quiet {
		pipe.CommitHook = tw.Commit
		fmt.Fprintf(stdout, "%10s  %-12s  %-24s\n", "index", "pc", "instruction")
	}
	for !tw.Done() && pipe.Status() == pipeline.StatusRunning {
		pipe.Cycle()
		if *quiet && pipe.Retired() >= *skip+*n {
			break
		}
	}
	if err := tw.Err(); err != nil {
		return err
	}
	if pipe.Status() != pipeline.StatusRunning {
		kind, pc, addr := pipe.Exception()
		fmt.Fprintf(stdout, "\npipeline stopped: %v", pipe.Status())
		if pipe.Status() == pipeline.StatusExcepted {
			fmt.Fprintf(stdout, " (%v at pc=%#x addr=%#x)", kind, pc, addr)
		}
		fmt.Fprintln(stdout)
	}

	fmt.Fprintln(stdout)
	return trace.Summary(stdout, pipe.Stats())
}

func loadProgram(name string, seed int64, scale float64) (*workload.Program, error) {
	if strings.HasSuffix(name, ".s") || strings.HasSuffix(name, ".asm") {
		src, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		return asm.Assemble(name, string(src))
	}
	return workload.Generate(workload.Benchmark(name), workload.Config{Seed: seed, Scale: scale})
}

// parseCorrupt parses "rN:bit".
func parseCorrupt(s string) (isa.Reg, uint, error) {
	reg, bitStr, ok := strings.Cut(s, ":")
	if !ok {
		return 0, 0, fmt.Errorf("bad -corrupt %q (want rN:bit)", s)
	}
	num, ok := strings.CutPrefix(strings.ToLower(reg), "r")
	if !ok {
		return 0, 0, fmt.Errorf("bad register %q", reg)
	}
	r, err := strconv.ParseUint(num, 10, 8)
	if err != nil || r > 31 {
		return 0, 0, fmt.Errorf("bad register %q", reg)
	}
	bit, err := strconv.ParseUint(bitStr, 10, 8)
	if err != nil || bit > 63 {
		return 0, 0, fmt.Errorf("bad bit %q", bitStr)
	}
	return isa.Reg(r), uint(bit), nil
}
