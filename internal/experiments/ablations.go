package experiments

import (
	"fmt"
	"math"

	"repro/internal/inject"
	"repro/internal/perf"
	"repro/internal/pipeline"
	"repro/internal/predictor"
	"repro/internal/restore"
	"repro/internal/workload"
)

// Ablation studies: the design-choice sweeps the paper gestures at without
// tabulating. Section 3.2.2 notes that "the different confidence prediction
// implementations trade off performance for error detection latency", and
// Section 5.2.3's rollback-distance arithmetic depends directly on how many
// checkpoints are live. These sweeps quantify both knobs.

// JRSAblationRow is one point of the confidence-threshold sweep.
type JRSAblationRow struct {
	Threshold uint8
	// SymptomRate is high-confidence mispredicts per retired instruction
	// on fault-free runs (the false-positive driver).
	SymptomRate float64
	// Coverage is the fraction of failing faults covered at the given
	// interval with the JRS detector at this threshold.
	Coverage float64
	// Speedup is the modelled relative performance at the interval.
	Speedup float64
}

// JRSAblationResult sweeps the JRS saturation threshold.
type JRSAblationResult struct {
	Interval uint64
	Rows     []JRSAblationRow
}

// AblateJRS sweeps the JRS confidence threshold, measuring for each setting
// the fault coverage (campaign, JRS detector), the fault-free symptom rate,
// and the modelled performance. Low thresholds flag more mispredictions as
// high confidence: more coverage, more false positives.
func AblateJRS(opts Options, thresholds []uint8, interval uint64) (*JRSAblationResult, error) {
	opts.applyDefaults()
	if len(thresholds) == 0 {
		thresholds = []uint8{4, 8, 12, 15}
	}
	if interval == 0 {
		interval = 100
	}
	res := &JRSAblationResult{Interval: interval}
	for _, th := range thresholds {
		pcfg := pipeline.DefaultConfig()
		pcfg.JRS = predictor.JRSConfig{TableBits: 12, CounterMax: 15, Threshold: th}

		var (
			trials []inject.UArchTrial
			inputs []perf.Inputs
		)
		for _, bench := range opts.Benchmarks {
			r, err := inject.RunUArch(opts.uarchCampaign(inject.UArchConfig{
				Bench:          bench,
				Seed:           opts.Seed,
				Scale:          opts.Scale,
				Points:         scaleCount(12, opts.TrialFactor, 3),
				TrialsPerPoint: scaleCount(60, opts.TrialFactor, 10),
				Pipeline:       &pcfg,
			}))
			if err != nil {
				return nil, fmt.Errorf("ablate-jrs %s threshold %d: %w", bench, th, err)
			}
			trials = append(trials, r.Trials...)

			in, err := perf.MeasureInputs(bench, opts.Seed, 100_000, pcfg)
			if err != nil {
				return nil, err
			}
			inputs = append(inputs, in)
		}

		raw := inject.RawFailureRate(trials)
		cov := 0.0
		if raw > 0 {
			cov = 1 - inject.FailureRate(trials, interval, inject.DetectorJRS)/raw
		}
		mean := perf.Average(inputs)
		res.Rows = append(res.Rows, JRSAblationRow{
			Threshold:   th,
			SymptomRate: mean.SymptomRate,
			Coverage:    cov,
			Speedup:     perf.Speedup(mean, interval, restore.PolicyImmediate),
		})
	}
	return res, nil
}

// Render formats the sweep as a table.
func (r *JRSAblationResult) Render() string {
	out := fmt.Sprintf("JRS confidence-threshold ablation (interval %d)\n", r.Interval)
	out += fmt.Sprintf("%-10s %14s %12s %10s\n", "threshold", "symptoms/kinsn", "coverage", "speedup")
	for _, row := range r.Rows {
		out += fmt.Sprintf("%-10d %14.3f %11.1f%% %10.3f\n",
			row.Threshold, 1000*row.SymptomRate, 100*row.Coverage, row.Speedup)
	}
	return out
}

// CheckpointAblationRow is one point of the checkpoint-depth sweep.
type CheckpointAblationRow struct {
	Checkpoints int
	// Reach is the guaranteed rollback distance in instructions.
	Reach uint64
	// Coverage is the fraction of failures whose symptoms land within
	// the reach (perfect cfv detection).
	Coverage float64
	// Speedup is the modelled performance with the longer mean rollback
	// re-execution this depth implies.
	Speedup float64
}

// CheckpointAblationResult sweeps the number of live checkpoints.
type CheckpointAblationResult struct {
	Interval uint64
	Rows     []CheckpointAblationRow
}

// AblateCheckpoints reuses one campaign and asks, for k live checkpoints at
// a fixed interval L: symptoms up to (k-1)·L instructions after the fault
// can still roll back to a pre-fault checkpoint, but the mean re-execution
// distance grows to (k-0.5)·L. More checkpoints buy detection-latency
// slack with re-execution time (and checkpoint storage).
func AblateCheckpoints(exp *UArchExperiment, mean perf.Inputs, interval uint64, depths []int) *CheckpointAblationResult {
	if interval == 0 {
		interval = 100
	}
	if len(depths) == 0 {
		depths = []int{1, 2, 3, 4, 8}
	}
	res := &CheckpointAblationResult{Interval: interval}
	raw := exp.RawFailureRate()
	for _, k := range depths {
		if k < 1 {
			continue
		}
		reach := uint64(k-1) * interval
		if k == 1 {
			// A single checkpoint can only help symptoms inside the
			// current interval; conservatively credit none of the
			// interval (the checkpoint may be mid-fault).
			reach = interval / 2
		}
		cov := 0.0
		if raw > 0 {
			cov = 1 - exp.FailureRateAt(reach, inject.DetectorPerfect)/raw
		}
		// Mean rollback distance (k-0.5)·L at the measured symptom rate.
		dist := (float64(k) - 0.5) * float64(interval)
		over := mean.SymptomRate * (mean.FlushPenalty + dist*mean.ReplayCPI)
		speedup := mean.BaseCPI / (mean.BaseCPI + over)
		if math.IsNaN(speedup) {
			speedup = 1
		}
		res.Rows = append(res.Rows, CheckpointAblationRow{
			Checkpoints: k,
			Reach:       reach,
			Coverage:    cov,
			Speedup:     speedup,
		})
	}
	return res
}

// Render formats the sweep as a table.
func (r *CheckpointAblationResult) Render() string {
	out := fmt.Sprintf("checkpoint-depth ablation (interval %d)\n", r.Interval)
	out += fmt.Sprintf("%-12s %10s %12s %10s\n", "checkpoints", "reach", "coverage", "speedup")
	for _, row := range r.Rows {
		out += fmt.Sprintf("%-12d %10d %11.1f%% %10.3f\n",
			row.Checkpoints, row.Reach, 100*row.Coverage, row.Speedup)
	}
	return out
}

// AblationBenchmarks is the reduced suite ablations default to (they sweep
// a config dimension, so each point re-runs a campaign).
func AblationBenchmarks() []workload.Benchmark {
	return []workload.Benchmark{workload.MCF, workload.GCC, workload.Vortex}
}
