package cache

import (
	"math/rand"
	"testing"
)

func TestHitAfterFill(t *testing.T) {
	c := New(Config{SetBits: 4, Ways: 2, LineBits: 6, HitLatency: 1, MissLatency: 10})
	hit, lat := c.Access(0x1000)
	if hit || lat != 10 {
		t.Errorf("cold access = %v,%d want miss,10", hit, lat)
	}
	hit, lat = c.Access(0x1000)
	if !hit || lat != 1 {
		t.Errorf("second access = %v,%d want hit,1", hit, lat)
	}
	// Same line, different offset.
	if hit, _ := c.Access(0x103F); !hit {
		t.Error("same-line access missed")
	}
	// Next line misses.
	if hit, _ := c.Access(0x1040); hit {
		t.Error("next-line access hit")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(Config{SetBits: 2, Ways: 2, LineBits: 6})
	// Three addresses in the same set: set stride = 4 sets * 64 B.
	a, b, d := uint64(0), uint64(256), uint64(512)
	c.Access(a)
	c.Access(b)
	c.Access(a) // b becomes LRU
	c.Access(d) // evicts b
	if !c.Probe(a) {
		t.Error("MRU line evicted")
	}
	if c.Probe(b) {
		t.Error("LRU line survived")
	}
	if !c.Probe(d) {
		t.Error("filled line absent")
	}
}

func TestProbeDoesNotFill(t *testing.T) {
	c := New(DefaultL1D())
	if c.Probe(0x4000) {
		t.Error("cold probe hit")
	}
	if hit, _ := c.Access(0x4000); hit {
		t.Error("probe must not have filled the line")
	}
	acc, miss := c.Stats()
	if acc != 1 || miss != 1 {
		t.Errorf("stats = %d,%d; probe should not count", acc, miss)
	}
}

func TestStatsAndReset(t *testing.T) {
	c := New(DefaultL1I())
	for i := 0; i < 100; i++ {
		c.Access(uint64(i) * 64)
	}
	for i := 0; i < 100; i++ {
		c.Access(uint64(i) * 64)
	}
	acc, miss := c.Stats()
	if acc != 200 || miss != 100 {
		t.Errorf("stats = %d,%d want 200,100", acc, miss)
	}
	if got := c.MissRate(); got != 0.5 {
		t.Errorf("miss rate = %v", got)
	}
	c.Reset()
	if acc, miss = c.Stats(); acc != 0 || miss != 0 {
		t.Error("reset did not clear stats")
	}
	if c.MissRate() != 0 {
		t.Error("miss rate after reset should be 0")
	}
	if c.Probe(0) {
		t.Error("reset did not invalidate entries")
	}
}

func TestTLBPageGranularity(t *testing.T) {
	tlb := New(DefaultITLB())
	tlb.Access(0x2000) // page 1 (8 KiB pages)
	if hit, _ := tlb.Access(0x3FFF); !hit {
		t.Error("same-page access missed")
	}
	if hit, _ := tlb.Access(0x4000); hit {
		t.Error("next-page access hit")
	}
}

func TestWorkingSetBehaviour(t *testing.T) {
	// A working set that fits must converge to ~zero misses; one that
	// vastly exceeds capacity must keep missing. This is the property the
	// timing model and the cache-miss-symptom analysis rely on.
	c := New(Config{SetBits: 4, Ways: 2, LineBits: 6, MissLatency: 10}) // 2 KiB
	rng := rand.New(rand.NewSource(1))

	// Fits: 16 lines in 32-line cache.
	for i := 0; i < 1000; i++ {
		c.Access(uint64(rng.Intn(16)) * 64)
	}
	c2 := New(Config{SetBits: 4, Ways: 2, LineBits: 6, MissLatency: 10})
	warm := 0
	for i := 0; i < 1000; i++ {
		addr := uint64(rng.Intn(16)) * 64
		if hit, _ := c2.Access(addr); hit {
			warm++
		}
	}
	if warm < 900 {
		t.Errorf("small working set hit only %d/1000", warm)
	}

	// Thrashes: 4096 lines through a 32-line cache.
	c3 := New(Config{SetBits: 4, Ways: 2, LineBits: 6, MissLatency: 10})
	hits := 0
	for i := 0; i < 1000; i++ {
		addr := uint64(rng.Intn(4096)) * 64
		if hit, _ := c3.Access(addr); hit {
			hits++
		}
	}
	if hits > 100 {
		t.Errorf("huge working set hit %d/1000; cache too forgiving", hits)
	}
}

func TestDefaultConfigsSane(t *testing.T) {
	for _, cfg := range []Config{DefaultL1I(), DefaultL1D(), DefaultITLB(), DefaultDTLB()} {
		if cfg.Ways <= 0 || cfg.SetBits < 0 || cfg.MissLatency <= cfg.HitLatency {
			t.Errorf("bad default config %+v", cfg)
		}
		New(cfg).Access(0) // must not panic
	}
}
