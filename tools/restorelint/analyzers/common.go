// Package analyzers holds the restorelint checks: determinism,
// opcodeswitch, statemut, bitwidth, and stateregister. Each is a
// lint.Analyzer with analysistest-style fixtures under testdata/.
package analyzers

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"repro/tools/restorelint/lint"
)

// pkgPathOf resolves expr to an imported package path when expr is a bare
// package qualifier ("rand" in rand.Intn), else "".
func pkgPathOf(info *types.Info, expr ast.Expr) string {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}

// intWidth returns the bit width and signedness of an integer type (int,
// uint, and uintptr count as 64: every supported target is 64-bit).
func intWidth(t types.Type) (width int, unsigned, ok bool) {
	b, isBasic := t.Underlying().(*types.Basic)
	if !isBasic {
		return 0, false, false
	}
	switch b.Kind() {
	case types.Int8:
		return 8, false, true
	case types.Int16:
		return 16, false, true
	case types.Int32:
		return 32, false, true
	case types.Int64, types.Int:
		return 64, false, true
	case types.Uint8:
		return 8, true, true
	case types.Uint16:
		return 16, true, true
	case types.Uint32:
		return 32, true, true
	case types.Uint64, types.Uint, types.Uintptr:
		return 64, true, true
	}
	return 0, false, false
}

// constUint evaluates expr to a non-negative constant if it is one.
func constUint(info *types.Info, expr ast.Expr) (uint64, bool) {
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v := constant.ToInt(tv.Value)
	if v.Kind() != constant.Int {
		return 0, false
	}
	u, exact := constant.Uint64Val(v)
	return u, exact
}

// fieldVarOf unwraps index and paren chains around a selector and resolves
// the struct field it names: p.rob.flags[i] -> reorderBuffer.flags.
func fieldVarOf(info *types.Info, expr ast.Expr) *types.Var {
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.SelectorExpr:
			if v, ok := info.Uses[e.Sel].(*types.Var); ok && v.IsField() {
				return v
			}
			return nil
		default:
			return nil
		}
	}
}

// stateIndex is the shared registration model: every struct field whose
// address is passed to a method named Register or BindArray (the packed
// two-phase registration: BindArray aliases a slice field onto the packed
// backing, RegisterPacked declares its words), mapped back to the named
// struct type that declares it.
type stateIndex struct {
	registered map[*types.Var]bool   // fields passed by address to Register/BindArray
	fieldOwner map[*types.Var]string // struct field -> declaring type name
	hasState   map[string]bool       // type name -> has >=1 registered field
}

// registrationCalls are the method names that mark a field as registered
// state when its address is an argument.
var registrationCalls = map[string]bool{
	"Register":  true,
	"BindArray": true,
}

// buildStateIndex scans the package for Register(&x.field, ...) and
// BindArray(&x.field, ...) calls and for the struct declarations that own
// the fields.
func buildStateIndex(pkg *lint.Package) *stateIndex {
	idx := &stateIndex{
		registered: make(map[*types.Var]bool),
		fieldOwner: make(map[*types.Var]string),
		hasState:   make(map[string]bool),
	}

	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			idx.fieldOwner[st.Field(i)] = name
		}
	}

	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !registrationCalls[sel.Sel.Name] {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				if v := fieldVarOf(pkg.Info, un.X); v != nil {
					idx.registered[v] = true
					if owner, ok := idx.fieldOwner[v]; ok {
						idx.hasState[owner] = true
					}
				}
			}
			return true
		})
	}
	return idx
}

// recvTypeName extracts the receiver's named type from a method declaration.
func recvTypeName(fd *ast.FuncDecl) string {
	if fd == nil || fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}
