package protect

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/harden"
	"repro/internal/pipeline"
	"repro/internal/staticvuln"
	"repro/internal/workload"
)

func testSpace(t *testing.T) *pipeline.StateSpace {
	t.Helper()
	prog := workload.MustGenerate("gzip", workload.Config{Seed: 3, Scale: 0.1})
	mem, err := prog.NewMemory()
	if err != nil {
		t.Fatal(err)
	}
	p, err := pipeline.New(pipeline.DefaultConfig(), mem, prog.Entry)
	if err != nil {
		t.Fatal(err)
	}
	return p.State()
}

// syntheticReport has enough ACE mass for a nonzero potency.
func syntheticReport() *staticvuln.Report {
	return &staticvuln.Report{
		Program: "synthetic",
		Insts: []staticvuln.InstReport{
			{HasDest: true, Dest: 5, Weight: 10, Exception: 0xFF, Latency: 4},
			{HasDest: true, Dest: 6, Weight: 10, CFV: 0xFF00, Latency: 8},
			{HasDest: true, Dest: 7, Weight: 10},
		},
	}
}

var testProfile = Profile{
	FetchQ: 0.5, ROB: 0.5, Sched: 0.5, STQ: 0.2,
	LDQ: 0.2, Exec: 0.1, LiveRegs: 0.5,
}

// The ranking model must cover the real state space exactly: every
// registered element ranks (a miss is a loud error in Rank), and every
// model entry names a registered element (a stale entry means the pipeline
// dropped state the model still scores).
func TestModelCoversStateSpace(t *testing.T) {
	space := testSpace(t)
	rk, err := Rank(space, syntheticReport(), testProfile)
	if err != nil {
		t.Fatalf("Rank over the real state space: %v", err)
	}
	registered := make(map[string]bool)
	for _, e := range space.Elements() {
		registered[e.Name] = true
	}
	ranked := make(map[string]bool)
	for _, er := range rk.Elems {
		ranked[er.Name] = true
		if er.CostBits == 0 {
			t.Errorf("element %s has zero protection cost", er.Name)
		}
		if er.Mass < 0 {
			t.Errorf("element %s has negative mass", er.Name)
		}
	}
	for name := range registered {
		if !ranked[name] {
			t.Errorf("registered element %s missing from ranking", name)
		}
	}
	for name := range model {
		if !registered[name] {
			t.Errorf("model entry %s names no registered element — stale coefficient", name)
		}
	}
	// The ranking is sorted by failure mass per check bit, descending.
	for i := 1; i < len(rk.Elems); i++ {
		vi := rk.Elems[i-1].Mass / float64(rk.Elems[i-1].CostBits)
		vj := rk.Elems[i].Mass / float64(rk.Elems[i].CostBits)
		if vi < vj {
			t.Fatalf("ranking out of order at %d: %s (%.4g) before %s (%.4g)",
				i, rk.Elems[i-1].Name, vi, rk.Elems[i].Name, vj)
		}
	}
}

func TestKindRuleFollowsHardware(t *testing.T) {
	space := testSpace(t)
	rk, err := Rank(space, syntheticReport(), testProfile)
	if err != nil {
		t.Fatal(err)
	}
	for _, er := range rk.Elems {
		want := harden.Parity
		if er.Kind == pipeline.KindSRAM {
			want = harden.ECC
		}
		if er.Prot != want {
			t.Errorf("%s (%v): assigned %v, want %v", er.Name, er.Kind, er.Prot, want)
		}
	}
}

func rankFor(t *testing.T) *Ranking {
	t.Helper()
	rk, err := Rank(testSpace(t), syntheticReport(), testProfile)
	if err != nil {
		t.Fatal(err)
	}
	return rk
}

func TestOptimizeBudgets(t *testing.T) {
	rk := rankFor(t)

	if p := Optimize("zero", rk, 0); len(p.Assign) != 0 || p.Predicted != 0 {
		t.Errorf("zero budget: got %d assignments, predicted %v", len(p.Assign), p.Predicted)
	}

	// The top-value element alone must be selected when the budget covers
	// exactly its cost.
	top := rk.Elems[0]
	p := Optimize("top", rk, top.CostBits)
	if got := p.ProtectionOf(top.Name); got != top.Prot {
		t.Errorf("budget %d: top element %s got %v, want %v", top.CostBits, top.Name, got, top.Prot)
	}
	if spent := rk.CostOf(p); spent > top.CostBits {
		t.Errorf("spent %d bits over budget %d", spent, top.CostBits)
	}

	// Budgets never overshoot, and a too-expensive element is skipped in
	// favor of later, cheaper ones rather than truncating the scan.
	for _, budget := range []uint64{64, 500, 1664, 10_000} {
		p := Optimize("b", rk, budget)
		if spent := rk.CostOf(p); spent > budget {
			t.Errorf("budget %d: spent %d", budget, spent)
		}
	}

	// An unbounded budget covers everything and predicts full coverage.
	var total uint64
	for _, er := range rk.Elems {
		total += er.CostBits
	}
	p = Optimize("all", rk, total)
	if len(p.Assign) != len(rk.Elems) {
		t.Errorf("full budget: %d of %d elements selected", len(p.Assign), len(rk.Elems))
	}
	if p.Predicted < 0.999 || p.Predicted > 1.001 {
		t.Errorf("full budget predicted %v, want 1", p.Predicted)
	}
}

func TestOptimizeSkipsTooExpensive(t *testing.T) {
	rk := &Ranking{
		Program: "synthetic",
		Elems: []ElemRank{
			{Name: "big", Prot: harden.ECC, Words: 10, Bits: 640, CostBits: 100, Density: 1, Mass: 640},
			{Name: "small", Prot: harden.Parity, Words: 4, Bits: 256, CostBits: 4, Density: 0.5, Mass: 128},
		},
		TotalMass: 768,
	}
	p := Optimize("skip", rk, 10)
	if p.ProtectionOf("big") != harden.Unprotected {
		t.Error("big element selected over budget")
	}
	if p.ProtectionOf("small") != harden.Parity {
		t.Error("cheap element after a too-expensive one was not selected")
	}
	if want := 128.0 / 768.0; p.Predicted != want {
		t.Errorf("predicted %v, want %v", p.Predicted, want)
	}
}

func TestEqualBudgetMatchesLowHangingFruit(t *testing.T) {
	space := testSpace(t)
	budget, err := EqualBudget(space)
	if err != nil {
		t.Fatal(err)
	}
	st, err := LowHangingFruit().Survey(space)
	if err != nil {
		t.Fatal(err)
	}
	if budget != st.OverheadBits {
		t.Errorf("EqualBudget %d != LHF overhead %d", budget, st.OverheadBits)
	}
	if budget == 0 {
		t.Error("equal budget is zero")
	}
}

func TestPolicyJSONDeterministicRoundTrip(t *testing.T) {
	p := Optimize("static-budget/gzip", rankFor(t), 1664)
	p.BudgetBits = 1664

	a, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("repeated marshal differs")
	}

	var q Policy
	if err := json.Unmarshal(a, &q); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, &q) {
		t.Fatalf("round trip changed the policy:\n%+v\n%+v", p, &q)
	}

	// Assignment order in the wire form must not matter: decode normalizes.
	var r Policy
	shuffled := `{"name":"x","kind":"static-budget","budget_bits":5,"assignments":[{"elem":"z","protection":"parity"},{"elem":"a","protection":"ecc"}]}`
	if err := json.Unmarshal([]byte(shuffled), &r); err != nil {
		t.Fatal(err)
	}
	if r.Assign[0].Elem != "a" || r.Assign[1].Elem != "z" {
		t.Errorf("decode did not normalize assignment order: %+v", r.Assign)
	}
}

func TestFingerprintStability(t *testing.T) {
	p := &Policy{Name: "x", Kind: KindStaticBudget, BudgetBits: 64,
		Assign: []Assignment{{Elem: "prf.val", Prot: harden.ECC}, {Elem: "fetchPC", Prot: harden.Parity}}}
	p.normalize()
	fp := p.Fingerprint()
	if fp != p.Fingerprint() {
		t.Fatal("fingerprint not stable")
	}
	for _, want := range []string{"x", "static-budget", "64", "fetchPC=parity", "prf.val=ecc"} {
		if !strings.Contains(fp, want) {
			t.Errorf("fingerprint %q missing %q", fp, want)
		}
	}
	q := &Policy{Name: "x", Kind: KindStaticBudget, BudgetBits: 64,
		Assign: []Assignment{{Elem: "fetchPC", Prot: harden.Parity}}}
	if q.Fingerprint() == fp {
		t.Error("different assignments share a fingerprint")
	}
}

func TestCompileRejectsUnknownElement(t *testing.T) {
	space := testSpace(t)
	p := &Policy{Name: "bogus", Kind: KindStaticBudget,
		Assign: []Assignment{{Elem: "no.such.element", Prot: harden.Parity}}}
	if _, err := p.Compile(space); err == nil {
		t.Fatal("compiling a policy naming an unregistered element succeeded")
	} else if !strings.Contains(err.Error(), "bogus") || !strings.Contains(err.Error(), "no.such.element") {
		t.Errorf("error %q names neither the policy nor the element", err)
	}
}

func TestProtectionOfNilPolicy(t *testing.T) {
	var p *Policy
	if got := p.ProtectionOf("prf.val"); got != harden.Unprotected {
		t.Errorf("nil policy ProtectionOf = %v, want Unprotected", got)
	}
	if got := None().ProtectionOf("prf.val"); got != harden.Unprotected {
		t.Errorf("empty policy ProtectionOf = %v, want Unprotected", got)
	}
}

func TestLowHangingFruitMatchesHarden(t *testing.T) {
	p := LowHangingFruit()
	want := harden.LowHangingFruitAssignments()
	got := p.Assignments()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("LHF policy assignments %v != harden %v", got, want)
	}
	if p.Kind != KindHandPicked {
		t.Errorf("LHF kind %v", p.Kind)
	}
}

func TestKindStrings(t *testing.T) {
	for _, k := range []Kind{KindNone, KindHandPicked, KindStaticBudget} {
		got, err := ParseKind(k.String())
		if err != nil {
			t.Errorf("ParseKind(%q): %v", k.String(), err)
		}
		if got != k {
			t.Errorf("ParseKind(%q) = %v, want %v", k.String(), got, k)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("ParseKind accepted garbage")
	}
}

// Derive is deterministic: same benchmark, same options, byte-identical
// serialized policy.
func TestDeriveDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("derive runs a fault-free profile window")
	}
	opt := DeriveOptions{Seed: 11, Scale: 0.25, ProfileWarmup: 2_000, ProfileWindow: 8_000}
	p1, rk1, err := Derive("mcf", opt)
	if err != nil {
		t.Fatal(err)
	}
	p2, rk2, err := Derive("mcf", opt)
	if err != nil {
		t.Fatal(err)
	}
	j1, err := json.Marshal(p1)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(p2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatalf("derived policies differ:\n%s\n%s", j1, j2)
	}
	if rk1.TotalMass != rk2.TotalMass {
		t.Errorf("rankings differ: %v vs %v", rk1.TotalMass, rk2.TotalMass)
	}
	if p1.Kind != KindStaticBudget || len(p1.Assign) == 0 {
		t.Errorf("derived policy malformed: %+v", p1)
	}
	if p1.Predicted <= 0 || p1.Predicted > 1 {
		t.Errorf("predicted coverage %v out of (0,1]", p1.Predicted)
	}
}
