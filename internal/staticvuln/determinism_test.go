package staticvuln

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/workload"
)

// diffAt reports the first byte offset where two serializations diverge,
// with a little context, so a determinism break points at the culprit
// section instead of dumping two multi-megabyte blobs.
func diffAt(a, b []byte) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo := i - 40
			if lo < 0 {
				lo = 0
			}
			return fmt.Sprintf("first divergence at byte %d: %q vs %q", i, a[lo:i+1], b[lo:i+1])
		}
	}
	return fmt.Sprintf("length mismatch: %d vs %d bytes", len(a), len(b))
}

// The serialized report must be byte-identical across repeated analyses.
// Each iteration re-generates the program and re-runs the full analysis, so
// fresh allocations reshuffle map iteration order and any map-order
// dependence in the analysis or the serializer shows up as a byte diff.
func TestReportSerializationDeterministic(t *testing.T) {
	for _, b := range workload.Benchmarks() {
		var first []byte
		var firstRender string
		for i := 0; i < 4; i++ {
			prog := workload.MustGenerate(b, workload.Config{Seed: 11, Scale: 0.25})
			rep, err := Analyze(prog, Options{})
			if err != nil {
				t.Fatalf("%s: %v", b, err)
			}
			got, err := rep.Serialize(false)
			if err != nil {
				t.Fatalf("%s: serialize: %v", b, err)
			}
			render := rep.Render(false)
			if i == 0 {
				first, firstRender = got, render
				continue
			}
			if !bytes.Equal(got, first) {
				t.Fatalf("%s: serialization differs on analysis %d: %s", b, i, diffAt(first, got))
			}
			if render != firstRender {
				t.Errorf("%s: rendered report differs on analysis %d", b, i)
			}
		}
	}
}

// Serialization of a synthetic report hits every field, so drift in the
// canonical format is a reviewed change instead of an accident.
func TestSerializeCanonicalForm(t *testing.T) {
	rep := &Report{
		Program: "synthetic",
		Insts: []InstReport{{
			Index: 3, PC: 0x40, Dest: 5, HasDest: true, Weight: 2,
			Exception: 1, CFV: 2, Mem: 4, Register: 8, Latency: 9,
		}},
	}
	got, err := rep.Serialize(false)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`"program": "synthetic"`, `"masked_fraction"`, `"symptom_fractions"`,
		`"symptom": "exception"`, `"per_register_avf"`, `"insts"`,
		`"pc": 64`, `"exception_mask": 1`, `"latency": 9`,
	} {
		if !bytes.Contains(got, []byte(want)) {
			t.Errorf("canonical serialization missing %s\ngot: %s", want, got)
		}
	}
}
