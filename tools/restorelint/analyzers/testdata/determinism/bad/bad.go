// Package fixture exercises every determinism diagnostic.
package fixture

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/obs"
)

func wallClock() (time.Time, time.Duration) {
	start := time.Now()             // want "time.Now makes simulation state depend on the wall clock"
	return start, time.Since(start) // want "time.Since makes simulation state depend on the wall clock"
}

func globalRNG() int {
	return rand.Intn(100) // want "rand.Intn uses the process-global generator"
}

func floatOverMap(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum += v // want "floating-point accumulation into sum over map iteration is order-dependent"
	}
	return sum
}

func printOverMap(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want "fmt.Printf inside map iteration emits output in nondeterministic map order"
	}
}

func appendOverMap(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append to keys inside map iteration produces nondeterministic element order"
	}
	return keys
}

func telemetryFeedback(reg *obs.Registry, c *obs.Counter, tr *obs.Trace) {
	if c.Value() > 100 { // want "obs.Counter.Value reads telemetry inside simulator code"
		return
	}
	snap := reg.Snapshot()                     // want "obs.Registry.Snapshot reads telemetry inside simulator code"
	if _, ok := snap.Get("trials_total"); ok { // want "obs.Snapshot.Get reads telemetry inside simulator code"
		_ = tr.Events() // want "obs.Trace.Events reads telemetry inside simulator code"
	}
}

func rngAcrossGoroutines(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	done := make(chan struct{})
	go func() {
		_ = rng.Intn(100) // want "goroutine closure captures the .rand.Rand .rng."
		_ = rng.Int63()   // deduplicated: one report per captured generator
		close(done)
	}()
	<-done
}
