package pipeline

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/workload"
)

// mustPanic runs fn and fails the test unless it panics with a message
// containing want.
func mustPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q, got none", want)
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, want) {
			t.Fatalf("panic = %v, want message containing %q", r, want)
		}
	}()
	fn()
}

// TestNthBitElementSeams walks every element boundary: the first and last
// bit of each element must map back to that element, and the flat index one
// past the final bit must report out of range. This pins the prefix-sum
// bookkeeping the packed layout rebuilt.
func TestNthBitElementSeams(t *testing.T) {
	p := newBenchPipeline(t, workload.Gzip, DefaultConfig())
	s := p.State()
	total := s.TotalBits(false)
	elems := s.Elements()

	var cum uint64
	for i := range elems {
		first, ok := s.NthBit(cum)
		if !ok || first.Elem != i || first.Bit != 0 {
			t.Fatalf("NthBit(%d) = %+v ok=%v, want first bit of element %d", cum, first, ok, i)
		}
		lastIdx := cum + uint64(elems[i].Bits) - 1
		last, ok := s.NthBit(lastIdx)
		if !ok || last.Elem != i || last.Bit != elems[i].Bits-1 {
			t.Fatalf("NthBit(%d) = %+v ok=%v, want last bit of element %d (%d bits)",
				lastIdx, last, ok, i, elems[i].Bits)
		}
		cum += uint64(elems[i].Bits)
	}
	if cum != total {
		t.Fatalf("element widths sum to %d, TotalBits = %d", cum, total)
	}
	if _, ok := s.NthBit(total); ok {
		t.Fatal("NthBit(TotalBits) should report out of range")
	}
	if _, ok := s.NthBit(^uint64(0)); ok {
		t.Fatal("NthBit(MaxUint64) should report out of range")
	}
}

// TestFlipPeekRejectOutOfRangeRefs is the regression test for the silent
// `Bit % 64` wrap: a BitRef past an element's declared width (or past the
// element list) used to flip a bit Hash never saw, desyncing golden and
// faulty runs with no trace. Both Flip and Peek must now fail loudly.
func TestFlipPeekRejectOutOfRangeRefs(t *testing.T) {
	p := newBenchPipeline(t, workload.Gzip, DefaultConfig())
	s := p.State()
	elems := s.Elements()

	// An element narrower than 64 bits so that Bit == Bits is representable
	// but invalid.
	narrow := -1
	for i := range elems {
		if elems[i].Bits < 64 {
			narrow = i
			break
		}
	}
	if narrow < 0 {
		t.Fatal("no narrow element found")
	}

	mustPanic(t, "out of range", func() { s.Flip(BitRef{Elem: narrow, Bit: elems[narrow].Bits}) })
	mustPanic(t, "out of range", func() { s.Peek(BitRef{Elem: narrow, Bit: elems[narrow].Bits}) })
	mustPanic(t, "out of range", func() { s.Flip(BitRef{Elem: len(elems), Bit: 0}) })
	mustPanic(t, "out of range", func() { s.Peek(BitRef{Elem: -1, Bit: 0}) })

	// In-range refs still work, and the out-of-range attempts above must
	// not have touched any state.
	h := s.Hash()
	s.Flip(BitRef{Elem: narrow, Bit: 0})
	s.Flip(BitRef{Elem: narrow, Bit: 0})
	if s.Hash() != h {
		t.Fatal("in-range double flip did not restore state")
	}
}

// TestRegistrationAfterSealPanics pins the stale-Elements bugfix: once the
// space has been indexed (any Hash/Flip/NthBit call), handed-out Elements()
// slices and BitRefs would silently go stale if registration continued, so
// all three registration paths must refuse.
func TestRegistrationAfterSealPanics(t *testing.T) {
	p := newBenchPipeline(t, workload.Gzip, DefaultConfig())
	s := p.State()
	s.Hash() // forces reindex -> seal

	var w uint64
	var arr []uint64
	mustPanic(t, "sealed", func() { s.Register("late", KindLatch, ClassControl, &w, 8) })
	mustPanic(t, "sealed", func() { s.BindArray(&arr, 4) })
	mustPanic(t, "sealed", func() { s.RegisterPacked("late", KindLatch, ClassControl, 0, 8) })
}

// TestRegistrationValidation pins the argument checks on a fresh space.
func TestRegistrationValidation(t *testing.T) {
	var s StateSpace
	var w uint64
	var arr []uint64
	mustPanic(t, "width out of range", func() { s.Register("w", KindLatch, ClassControl, &w, 0) })
	mustPanic(t, "width out of range", func() { s.Register("w", KindLatch, ClassControl, &w, 65) })
	mustPanic(t, "length out of range", func() { s.BindArray(&arr, 0) })
	off := s.BindArray(&arr, 2)
	mustPanic(t, "outside packed backing", func() { s.RegisterPacked("p", KindLatch, ClassControl, off+2, 8) })
	mustPanic(t, "outside packed backing", func() { s.RegisterPacked("p", KindLatch, ClassControl, -1, 8) })
}

// TestBindArrayRepointsEarlierSlices: the packed backing reallocates as it
// grows during registration, so slices bound early must still alias the
// final backing when the space seals.
func TestBindArrayRepointsEarlierSlices(t *testing.T) {
	var s StateSpace
	var a, b []uint64
	offA := s.BindArray(&a, 3)
	for i := 0; i < 3; i++ {
		s.RegisterPacked("a", KindLatch, ClassControl, offA+i, 64)
	}
	// Grow the backing enough to force reallocation.
	offB := s.BindArray(&b, 1024)
	for i := 0; i < 1024; i++ {
		s.RegisterPacked("b", KindSRAM, ClassData, offB+i, 64)
	}

	a[1] = 0xdead
	h1 := s.Hash()
	s.Flip(BitRef{Elem: 1, Bit: 0}) // element 1 is a[1]
	if a[1] != 0xdead^1 {
		t.Fatalf("Flip through the space did not reach the bound slice: a[1] = %#x", a[1])
	}
	if s.Hash() == h1 {
		t.Fatal("hash missed a write to an early-bound slice")
	}
}

// TestLegacyHashEquivalentSemantics: the packed extent digest and the
// original per-element digest must agree on *equality* — same flip
// detections, same restore detection — even though the values differ.
func TestLegacyHashEquivalentSemantics(t *testing.T) {
	p := newBenchPipeline(t, workload.MCF, DefaultConfig())
	p.RunCycles(2000)
	s := p.State()

	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 100; i++ {
		ref, _ := s.NthBit(uint64(rng.Int63n(int64(s.TotalBits(false)))))

		s.SetLegacyHash(false)
		packedBefore := s.Hash()
		s.SetLegacyHash(true)
		legacyBefore := s.Hash()

		s.Flip(ref)
		s.SetLegacyHash(false)
		packedChanged := s.Hash() != packedBefore
		s.SetLegacyHash(true)
		legacyChanged := s.Hash() != legacyBefore
		if !packedChanged || !legacyChanged {
			t.Fatalf("flip of %s bit %d: packed changed=%v legacy changed=%v, want both",
				s.Elements()[ref.Elem].Name, ref.Bit, packedChanged, legacyChanged)
		}

		s.Flip(ref)
		s.SetLegacyHash(false)
		if s.Hash() != packedBefore {
			t.Fatal("packed hash not restored by double flip")
		}
		s.SetLegacyHash(true)
		if s.Hash() != legacyBefore {
			t.Fatal("legacy hash not restored by double flip")
		}
	}
	s.SetLegacyHash(false)
}

// TestSnapshotRestoreSizeMismatch: Restore must refuse a snapshot from a
// differently shaped space rather than partially writing state.
func TestSnapshotRestoreSizeMismatch(t *testing.T) {
	p := newBenchPipeline(t, workload.Gzip, DefaultConfig())
	s := p.State()
	snap := s.Snapshot()
	mustPanic(t, "snapshot size mismatch", func() { s.Restore(snap[:len(snap)-1]) })
}
