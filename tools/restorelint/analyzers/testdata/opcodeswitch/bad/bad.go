// Package fixture exercises the opcodeswitch diagnostic.
package fixture

import "repro/internal/isa"

func classify(op isa.Op) int {
	switch op { // want "switch over isa.Op misses \d+ opcode\(s\)"
	case isa.OpADDQ, isa.OpSUBQ:
		return 1
	case isa.OpLDQ, isa.OpSTQ:
		return 2
	}
	return 0
}

func isBranchy(op isa.Op) bool {
	switch op { // want "switch over isa.Op misses \d+ opcode\(s\)"
	case isa.OpBR, isa.OpBSR:
		return true
	}
	return false
}
