package restore

// EventLog is the branch-outcome log of Section 3.2.3. During normal
// execution it records the outcome of every committed branch; during
// re-execution after a rollback the controller compares fresh outcomes
// against the recorded ones. A disagreement means a soft error corrupted one
// of the two executions — detection through time redundancy, paid for only
// after a symptom ("redundancy on demand"). The log also serves as the
// source of known branch outcomes that makes replayed execution effectively
// perfectly predicted.

// BranchRecord is one committed branch outcome, keyed by the architectural
// instruction index (which rewinds on rollback, so original and replay
// records of the same dynamic branch share a key).
type BranchRecord struct {
	Index  uint64
	PC     uint64
	Taken  bool
	Target uint64
}

// Equal reports whether two records describe the same outcome.
func (r BranchRecord) Equal(o BranchRecord) bool { return r == o }

// EventLog is a ring buffer of branch records indexed by architectural
// instruction index.
type EventLog struct {
	buf  []BranchRecord
	used []bool
}

// NewEventLog returns a log holding up to size records. Size must cover the
// longest rollback window (two checkpoint intervals of branches); older
// records are overwritten.
func NewEventLog(size int) *EventLog {
	if size < 1 {
		size = 1
	}
	return &EventLog{buf: make([]BranchRecord, size), used: make([]bool, size)}
}

// Append records (or overwrites) the outcome for the record's index.
func (l *EventLog) Append(rec BranchRecord) {
	slot := rec.Index % uint64(len(l.buf))
	l.buf[slot] = rec
	l.used[slot] = true
}

// Lookup returns the recorded outcome for the architectural index, if it is
// still resident.
func (l *EventLog) Lookup(index uint64) (BranchRecord, bool) {
	slot := index % uint64(len(l.buf))
	if !l.used[slot] || l.buf[slot].Index != index {
		return BranchRecord{}, false
	}
	return l.buf[slot], true
}

// Outcome returns the recorded direction and target for the branch at the
// given architectural index, for use as a replay-time perfect prediction.
func (l *EventLog) Outcome(index uint64) (taken bool, target uint64, ok bool) {
	rec, ok := l.Lookup(index)
	if !ok {
		return false, 0, false
	}
	return rec.Taken, rec.Target, true
}

// Len returns the log capacity.
func (l *EventLog) Len() int { return len(l.buf) }

// LoadRecord is one committed load outcome, keyed like BranchRecord. The
// load value queue is the paper's second event-log instance (Section 3.2.3
// cites Load Value Queues [23] for input replication); here, where memory
// rollback already replays inputs exactly, its comparison role remains: a
// load returning a different value on re-execution exposes a soft error
// that never touched a branch.
type LoadRecord struct {
	Index uint64
	Addr  uint64
	Value uint64
}

// LoadValueQueue is a ring of load records indexed by architectural
// instruction index.
type LoadValueQueue struct {
	buf  []LoadRecord
	used []bool
}

// NewLoadValueQueue returns a queue holding up to size records.
func NewLoadValueQueue(size int) *LoadValueQueue {
	if size < 1 {
		size = 1
	}
	return &LoadValueQueue{buf: make([]LoadRecord, size), used: make([]bool, size)}
}

// Append records (or overwrites) the load outcome for the record's index.
func (l *LoadValueQueue) Append(rec LoadRecord) {
	slot := rec.Index % uint64(len(l.buf))
	l.buf[slot] = rec
	l.used[slot] = true
}

// Len returns the queue capacity.
func (l *LoadValueQueue) Len() int { return len(l.buf) }

// Lookup returns the recorded load for the architectural index, if resident.
func (l *LoadValueQueue) Lookup(index uint64) (LoadRecord, bool) {
	slot := index % uint64(len(l.buf))
	if !l.used[slot] || l.buf[slot].Index != index {
		return LoadRecord{}, false
	}
	return l.buf[slot], true
}
