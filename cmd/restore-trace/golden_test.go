package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestGoldenTrace locks down the full restore-trace output — commit trace,
// stop banner, and statistics block — for a small fixed program. The trace
// is a deterministic function of the program, so any diff is either a
// deliberate format change (rerun with -update) or a simulator regression.
func TestGoldenTrace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "countdown.s")
	src := `
		.imm r1 6
		.imm r2 0
	loop:
		addq r2, r1, r2
		subq r1, #1, r1
		bgt  r1, loop
		halt
	`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := run([]string{"-n", "30", path}, &buf); err != nil {
		t.Fatal(err)
	}

	goldenPath := filepath.Join("testdata", "countdown.golden")
	if *updateGolden {
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace output diverged from golden file.\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}
