// Package staticvuln statically predicts the soft-error vulnerability of a
// program, reproducing by analysis what internal/inject measures by
// fault-injection campaign.
//
// The analysis follows the structure of the paper's Section 3: a transient
// fault in a register is architecturally masked unless the corrupted bits
// flow into an address computation (→ exception, thanks to the sparse
// address space), a branch condition or jump target (→ control-flow
// violation), a store (→ memory divergence) or long-lived architectural
// state (→ register divergence). The pipeline is
//
//	CFG construction        (cfg.go)     — basic blocks, natural loops,
//	                                       jump-table recovery
//	forward address absint  (absint.go)  — where does each load/store point,
//	                                       which address-bit flips fault
//	backward bit liveness   (liveness.go)— per-register, per-bit, per-class
//	                                       ACE facts with latency bounds
//	aggregation             (report.go)  — AVF and symptom distribution
//	                                       weighted by an execution profile
//
// A result bit that reaches no symptom class is un-ACE: the analysis
// guarantees every architectural effect of flipping it washes out, so the
// dynamic campaign must classify it as masked. Live verdicts are
// conservative approximations — a bit the analysis calls live may still be
// dynamically masked (value-dependent masking is invisible statically), so
// the static masked fraction is a lower bound that tracks the measured one.
package staticvuln

import (
	"fmt"

	"repro/internal/workload"
)

// Symptom is the statically predicted outcome class of a bit flip, matching
// the dynamic campaign's categories (inject.VMCategory).
type Symptom int

const (
	SymMasked Symptom = iota
	SymException
	SymCFV
	SymMem
	SymRegister
)

func (s Symptom) String() string {
	switch s {
	case SymMasked:
		return "masked"
	case SymException:
		return "exception"
	case SymCFV:
		return "cfv"
	case SymMem:
		return "mem"
	case SymRegister:
		return "register"
	}
	return fmt.Sprintf("Symptom(%d)", int(s))
}

// Symptom classes indexed inside liveness facts. Masked is the absence of
// all of them and needs no slot.
const (
	clsException = iota
	clsCFV
	clsMem
	clsRegister
	numClasses
)

// Options configures an analysis.
type Options struct {
	// Weights supplies per-static-instruction execution counts (e.g. from
	// Profile). When nil, a fault-free profile run is performed; when that
	// is not possible the loop-depth estimate is used.
	Weights []uint64

	// ProfileSkip/ProfileCount shape the implicit profile run. Zero values
	// select defaults matching the injection campaign's warm-up.
	ProfileSkip  uint64
	ProfileCount uint64

	// SlotArea is the per-segment byte offset below which constant-address
	// control slots are assumed not to alias indexed accesses (the kernels'
	// control-block convention). Zero selects the default of 64.
	SlotArea uint64

	// MaxRounds bounds the backward fixpoint. Zero selects 256.
	MaxRounds int
}

func (o Options) withDefaults() Options {
	if o.SlotArea == 0 {
		o.SlotArea = 64
	}
	if o.MaxRounds == 0 {
		o.MaxRounds = 256
	}
	if o.ProfileSkip == 0 {
		o.ProfileSkip = 5000
	}
	if o.ProfileCount == 0 {
		o.ProfileCount = 30000
	}
	return o
}

// Analyze runs the full static vulnerability analysis on a program.
func Analyze(p *workload.Program, opt Options) (*Report, error) {
	opt = opt.withDefaults()

	g, err := buildCFG(p)
	if err != nil {
		return nil, err
	}
	lay := newLayout(p, opt.SlotArea)
	ab := runAbsint(g, lay)

	lv := newLiveness(g, ab, opt)
	if err := lv.solve(); err != nil {
		return nil, err
	}

	weights := opt.Weights
	if weights == nil {
		weights, err = Profile(p, opt.ProfileSkip, opt.ProfileCount)
		if err != nil {
			weights = staticWeights(g, lv.reach)
		}
	}
	if len(weights) != len(g.insts) {
		return nil, fmt.Errorf("staticvuln: weight vector has %d entries for %d instructions",
			len(weights), len(g.insts))
	}

	rep := &Report{Program: p.Name, Insts: make([]InstReport, len(g.insts))}
	for i := range g.insts {
		inst := g.insts[i]
		r := InstReport{Index: i, PC: g.pc(i), Inst: inst, Weight: weights[i]}
		if d, ok := inst.Dest(); ok {
			r.Dest = d
			r.HasDest = true
			f := &lv.dest[i]
			r.Exception = f.mask[clsException]
			r.CFV = f.mask[clsCFV]
			r.Mem = f.mask[clsMem]
			r.Register = f.mask[clsRegister]
			r.Latency = f.minDist()
		}
		rep.Insts[i] = r
	}
	return rep, nil
}
