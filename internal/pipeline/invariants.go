package pipeline

import "fmt"

// CheckInvariants verifies the structural invariants that hold on every
// cycle of fault-free execution. Fault-injection trials intentionally break
// them — that is the experiment — so this is a debugging and testing aid,
// not a runtime assertion.
//
// Invariants checked:
//
//  1. occupancy counters within structure bounds;
//  2. every raw RAT entry names an in-range physical register (the access
//     paths mask with %PhysRegs so corrupted entries alias rather than
//     crash, which would silently hide the corruption from this checker);
//  3. no physical register is simultaneously free and mapped by either RAT
//     or in flight as a ROB destination;
//  4. the free list holds exactly the registers nothing maps: its
//     population count is PhysRegs minus the live set;
//  5. live ROB entries have their valid flag set;
//  6. scheduler entries reference live ROB entries;
//  7. every live store ROB entry has a valid STQ slot, and STQ occupancy
//     matches the number of live stores.
func (p *Pipeline) CheckInvariants() error {
	if p.rob.count > ROBSize {
		return fmt.Errorf("rob count %d exceeds capacity", p.rob.count)
	}
	if p.fq.count > FQSize {
		return fmt.Errorf("fetch queue count %d exceeds capacity", p.fq.count)
	}
	if p.stq.count > STQSize {
		return fmt.Errorf("stq count %d exceeds capacity", p.stq.count)
	}
	if p.ldq.count > LDQSize {
		return fmt.Errorf("ldq count %d exceeds capacity", p.ldq.count)
	}

	// Check the raw RAT words before reading them through get(), which
	// masks out-of-range tags into aliases and would mute the diagnostic.
	for r := uint64(0); r < 32; r++ {
		if raw := p.specRAT.m[r]; raw >= PhysRegs {
			return fmt.Errorf("specRAT[%d] holds out-of-range physical tag %d (PhysRegs = %d)", r, raw, PhysRegs)
		}
		if raw := p.archRAT.m[r]; raw >= PhysRegs {
			return fmt.Errorf("archRAT[%d] holds out-of-range physical tag %d (PhysRegs = %d)", r, raw, PhysRegs)
		}
	}

	// Liveness map over physical registers.
	var live [PhysRegs]bool
	for r := uint64(0); r < 32; r++ {
		live[p.specRAT.get(r)] = true
		live[p.archRAT.get(r)] = true
	}
	stores, loads := uint64(0), uint64(0)
	for i := uint64(0); i < p.rob.count; i++ {
		idx := (p.rob.head + i) % ROBSize
		f := p.rob.flags[idx]
		if f&robValid == 0 {
			return fmt.Errorf("live rob entry %d (pos %d) not valid", idx, i)
		}
		if f&robHasDest != 0 {
			live[p.rob.physDest[idx]%PhysRegs] = true
			live[p.rob.oldPhys[idx]%PhysRegs] = true
		}
		if f&robIsStore != 0 {
			stores++
			stqIdx := (p.rob.aux[idx] & 0xFF) % STQSize
			if p.stq.flags[stqIdx]&stqValid == 0 && f&robExcValid == 0 {
				return fmt.Errorf("store rob entry %d references dead stq slot %d", idx, stqIdx)
			}
		}
		if f&robIsLoad != 0 {
			loads++
			ldqIdx := (p.rob.aux[idx] & 0xFF) % LDQSize
			if p.ldq.flags[ldqIdx]&ldqValid == 0 && f&robExcValid == 0 {
				return fmt.Errorf("load rob entry %d references dead ldq slot %d", idx, ldqIdx)
			}
		}
	}
	if stores != p.stq.count {
		return fmt.Errorf("stq count %d but %d live stores in rob", p.stq.count, stores)
	}
	if loads != p.ldq.count {
		return fmt.Errorf("ldq count %d but %d live loads in rob", p.ldq.count, loads)
	}

	liveCount, freeCount := uint64(0), uint64(0)
	for tag := uint64(0); tag < PhysRegs; tag++ {
		isFree := p.free.bits[tag/64]&(1<<(tag%64)) != 0
		if isFree && live[tag] {
			return fmt.Errorf("physical register %d is both free and live", tag)
		}
		if live[tag] {
			liveCount++
		}
		if isFree {
			freeCount++
		}
	}
	if freeCount != PhysRegs-liveCount {
		return fmt.Errorf("free list holds %d registers, want %d (PhysRegs %d - %d live): a register leaked or was double-freed",
			freeCount, PhysRegs-liveCount, uint64(PhysRegs), liveCount)
	}

	for i := range p.sched.flags {
		if p.sched.flags[i]&schValid == 0 {
			continue
		}
		robIdx := p.sched.robIdx[i] % ROBSize
		if p.rob.pos(robIdx) >= p.rob.count {
			return fmt.Errorf("scheduler slot %d references dead rob entry %d", i, robIdx)
		}
	}
	return nil
}
