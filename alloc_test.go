// Allocation pins: the dynamic counterpart of restorelint's hotpathalloc
// analyzer. hotpathalloc proves statically that the //restorelint:hotpath
// functions are transitively allocation-free in steady state; the tests in
// this file pin the same property with testing.AllocsPerRun so a regression
// is caught even if it slips past the static engine (e.g. through a
// dynamic call the analyzer declines to follow).
package main

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/isa"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

func warmPipeline(t testing.TB) *pipeline.Pipeline {
	t.Helper()
	prog := workload.MustGenerate(workload.Gzip, workload.Config{Seed: 1})
	m, err := prog.NewMemory()
	if err != nil {
		t.Fatal(err)
	}
	p, err := pipeline.New(pipeline.DefaultConfig(), m, prog.Entry)
	if err != nil {
		t.Fatal(err)
	}
	p.RunCycles(5_000)
	if p.Status() != pipeline.StatusRunning {
		t.Fatal("pipeline stopped during warm-up")
	}
	return p
}

// TestPipelineStepAllocFree pins steady-state pipeline.Step at zero
// allocations per cycle. Before the scheduler's issue pass moved from
// sort.Slice to an in-place insertion sort over a fixed array, every cycle
// allocated the comparison closure; this test keeps that from coming back.
func TestPipelineStepAllocFree(t *testing.T) {
	p := warmPipeline(t)
	allocs := testing.AllocsPerRun(2_000, p.Step)
	if allocs != 0 {
		t.Fatalf("pipeline.Step allocated %.2f objects/op in steady state, want 0", allocs)
	}
}

// TestPipelineResetFromAllocFree pins the clone pool's re-image path:
// resetting a clone back to its master must not allocate once the pool is
// in steady state (every clone shaped identically to the master). The
// allocating branches inside ResetFrom fire only on shape mismatch, which
// Clone never produces.
func TestPipelineResetFromAllocFree(t *testing.T) {
	p := warmPipeline(t)
	c := p.Clone()
	c.ResetFrom(p) // first re-image settles any lazily-sized state
	allocs := testing.AllocsPerRun(100, func() { c.ResetFrom(p) })
	if allocs != 0 {
		t.Fatalf("ResetFrom allocated %.2f objects/op on an identically-shaped clone, want 0", allocs)
	}
}

// TestArchStepAllocFree pins the architectural simulator's trial inner loop
// at zero allocations per instruction.
func TestArchStepAllocFree(t *testing.T) {
	prog := workload.MustGenerate(workload.Gzip, workload.Config{Seed: 1})
	m, err := prog.NewMemory()
	if err != nil {
		t.Fatal(err)
	}
	sim := arch.New(m, prog.Entry)
	if _, _, err := sim.Run(1_000); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(2_000, func() { sim.Step() })
	if allocs != 0 {
		t.Fatalf("arch.Sim.Step allocated %.2f objects/op, want 0", allocs)
	}
}

// TestPipelineStepWithDecodeCacheAllocFree pins the campaign configuration
// of the hot path: Step with a decode cache attached must stay at zero
// allocations, since every campaign trial runs this exact shape.
func TestPipelineStepWithDecodeCacheAllocFree(t *testing.T) {
	prog := workload.MustGenerate(workload.Gzip, workload.Config{Seed: 1})
	m, err := prog.NewMemory()
	if err != nil {
		t.Fatal(err)
	}
	p, err := pipeline.New(pipeline.DefaultConfig(), m, prog.Entry)
	if err != nil {
		t.Fatal(err)
	}
	p.SetDecodeCache(isa.NewDecodeCache(prog.CodeBase, prog.Code))
	p.RunCycles(5_000)
	if p.Status() != pipeline.StatusRunning {
		t.Fatal("pipeline stopped during warm-up")
	}
	allocs := testing.AllocsPerRun(2_000, p.Step)
	if allocs != 0 {
		t.Fatalf("pipeline.Step with decode cache allocated %.2f objects/op, want 0", allocs)
	}
}

// TestStateHashAllocFree pins the masked-detection digest: after the space
// seals, Hash is a pure sweep of the packed backing and must not allocate
// in either digest mode.
func TestStateHashAllocFree(t *testing.T) {
	p := warmPipeline(t)
	s := p.State()
	var sink uint64
	for _, legacy := range []bool{false, true} {
		s.SetLegacyHash(legacy)
		allocs := testing.AllocsPerRun(1_000, func() { sink ^= s.Hash() })
		if allocs != 0 {
			t.Fatalf("Hash (legacy=%v) allocated %.2f objects/op, want 0", legacy, allocs)
		}
	}
	s.SetLegacyHash(false)
	_ = sink
}

// TestArchStepWithDecodeCacheAllocFree pins the VM-campaign shape of the
// architectural inner loop.
func TestArchStepWithDecodeCacheAllocFree(t *testing.T) {
	prog := workload.MustGenerate(workload.Gzip, workload.Config{Seed: 1})
	m, err := prog.NewMemory()
	if err != nil {
		t.Fatal(err)
	}
	sim := arch.New(m, prog.Entry)
	sim.DCache = isa.NewDecodeCache(prog.CodeBase, prog.Code)
	if _, _, err := sim.Run(1_000); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(2_000, func() { sim.Step() })
	if allocs != 0 {
		t.Fatalf("arch.Sim.Step with decode cache allocated %.2f objects/op, want 0", allocs)
	}
}
