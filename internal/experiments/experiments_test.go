package experiments

import (
	"math"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/fit"
	"repro/internal/harden"
	"repro/internal/inject"
	"repro/internal/perf"
	"repro/internal/restore"
	"repro/internal/workload"
)

// tinyOpts keeps experiment tests fast: two benchmarks, minimal trials.
func tinyOpts() Options {
	return Options{
		Seed:        42,
		Scale:       0.5,
		TrialFactor: 0.05,
		Benchmarks:  []workload.Benchmark{workload.MCF, workload.Gzip},
	}
}

func TestFig2EndToEnd(t *testing.T) {
	res, err := Fig2(tinyOpts(), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerBench) != 2 || len(res.AllTrials) == 0 {
		t.Fatalf("missing results: %d benches, %d trials", len(res.PerBench), len(res.AllTrials))
	}
	text := res.Table.Render()
	for _, want := range []string{"Figure 2", "masked", "exception", "latency"} {
		if !strings.Contains(text, want) {
			t.Errorf("table missing %q", want)
		}
	}
	// Masked fraction must be identical across latency columns.
	if res.Table.Cell("masked", "25") != res.Table.Cell("masked", "100k") {
		t.Error("masked band must be latency-independent")
	}
}

func TestCampaignAndTables(t *testing.T) {
	plain, err := Campaign(tinyOpts(), CampaignConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.AllTrials) == 0 {
		t.Fatal("no trials")
	}
	fig4 := plain.Table("Figure 4", inject.DetectorPerfect)
	fig5 := plain.Table("Figure 5", inject.DetectorJRS)
	if !strings.Contains(fig4.Render(), "interval") {
		t.Error("fig4 table malformed")
	}
	// Perfect detection covers at least as much as JRS at every interval,
	// within a small-sample tolerance: JRS fires at branch RESOLUTION
	// while the perfect detector observes committed divergence, so on a
	// handful of trials JRS can legitimately catch a fault a little
	// earlier.
	eps := 2.0 / float64(len(plain.AllTrials))
	for _, iv := range UArchIntervals {
		col := formatCount(iv)
		if fig4.Cell("cfv", col) < fig5.Cell("cfv", col)-eps {
			t.Errorf("perfect cfv < JRS cfv at interval %d", iv)
		}
		if plain.FailureRateAt(iv, inject.DetectorPerfect) > plain.FailureRateAt(iv, inject.DetectorJRS)+eps {
			t.Errorf("perfect detector left more failures at %d", iv)
		}
	}
	if rr := plain.RawFailureRate(); rr <= 0 || rr > 0.4 {
		t.Errorf("raw failure rate %.3f implausible", rr)
	}
}

func TestHardenedCampaignAndSummary(t *testing.T) {
	opts := tinyOpts()
	plain, err := Campaign(opts, CampaignConfig{})
	if err != nil {
		t.Fatal(err)
	}
	hard, err := Campaign(opts, CampaignConfig{Harden: harden.LowHangingFruit})
	if err != nil {
		t.Fatal(err)
	}
	if !hard.Hardened || plain.Hardened {
		t.Error("hardened flags wrong")
	}

	s := Summarize(plain, hard, 100)
	t.Logf("summary: %+v", s)
	if s.BaselineFailureRate <= 0 {
		t.Fatal("baseline failure rate zero")
	}
	if s.ReStoreFailureRate > s.BaselineFailureRate+1e-9 {
		t.Error("ReStore failed to reduce the failure rate")
	}
	if s.CombinedFailureRate > s.LHFFailureRate+1e-9 {
		t.Error("combined protection weaker than lhf alone")
	}
	if s.ReStoreMTBFGain < 1 {
		t.Errorf("ReStore MTBF gain %.2f < 1", s.ReStoreMTBFGain)
	}

	fig8 := Fig8(plain, hard, 100)
	if len(fig8.Series) == 0 || fig8.GoalFIT < 100 || fig8.GoalFIT > 130 {
		t.Errorf("fig8 malformed: %d series, goal %.1f", len(fig8.Series), fig8.GoalFIT)
	}
	if !strings.Contains(fig8.Table, "Figure 8") {
		t.Error("fig8 table missing title")
	}
	if fig8.Improvements[fit.Baseline] != 1.0 {
		t.Errorf("baseline improvement = %v", fig8.Improvements[fit.Baseline])
	}
}

func TestFig8PaperFallback(t *testing.T) {
	res := Fig8(nil, nil, 100)
	if math.Abs(res.Improvements[fit.ReStore]-2.0) > 1e-9 ||
		math.Abs(res.Improvements[fit.LHFReStore]-7.0) > 1e-9 {
		t.Errorf("paper fallback wrong: %+v", res.Improvements)
	}
}

func TestFig7EndToEnd(t *testing.T) {
	opts := tinyOpts()
	res, err := Fig7(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Imm.X) != len(Fig7Intervals) {
		t.Fatalf("sweep length %d", len(res.Imm.X))
	}
	for i := range res.Imm.Y {
		if res.Imm.Y[i] <= 0 || res.Imm.Y[i] > 1 {
			t.Errorf("imm speedup[%d] = %v", i, res.Imm.Y[i])
		}
	}
	if !strings.Contains(res.Table, "Figure 7") {
		t.Error("table missing title")
	}
}

func TestMeasureRestoreRun(t *testing.T) {
	rep, err := MeasureRestoreRun(workload.Gzip, 42, 10_000, restore.Config{Interval: 100})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Retired < 10_000 || rep.Checkpoints == 0 {
		t.Errorf("report: %+v", rep)
	}
}

func TestFormatCount(t *testing.T) {
	tests := []struct {
		in   uint64
		want string
	}{
		{25, "25"}, {1000, "1k"}, {2000, "2k"}, {100_000, "100k"},
		{1_000_000, "1M"}, {1500, "1500"},
	}
	for _, tt := range tests {
		if got := formatCount(tt.in); got != tt.want {
			t.Errorf("formatCount(%d) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestAblateJRS(t *testing.T) {
	opts := Options{
		Seed: 42, Scale: 0.5, TrialFactor: 0.15,
		Benchmarks: []workload.Benchmark{workload.MCF},
	}
	res, err := AblateJRS(opts, []uint8{4, 15}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	loose, strict := res.Rows[0], res.Rows[1]
	t.Logf("threshold 4: rate=%.5f cov=%.2f speedup=%.3f", loose.SymptomRate, loose.Coverage, loose.Speedup)
	t.Logf("threshold 15: rate=%.5f cov=%.2f speedup=%.3f", strict.SymptomRate, strict.Coverage, strict.Speedup)
	// A looser threshold flags at least as many symptoms and costs at
	// least as much performance.
	if loose.SymptomRate+1e-12 < strict.SymptomRate {
		t.Error("loose threshold produced fewer symptoms than strict")
	}
	if loose.Speedup > strict.Speedup+1e-9 {
		t.Error("loose threshold should not be faster")
	}
	if !strings.Contains(res.Render(), "threshold") {
		t.Error("render malformed")
	}
}

func TestAblateCheckpoints(t *testing.T) {
	opts := tinyOpts()
	exp, err := Campaign(opts, CampaignConfig{})
	if err != nil {
		t.Fatal(err)
	}
	mean := perf.Inputs{BaseCPI: 0.8, ReplayCPI: 0.7, SymptomRate: 1e-3, FlushPenalty: 20}
	res := AblateCheckpoints(exp, mean, 100, []int{1, 2, 4, 8})
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Coverage must be non-decreasing in depth; speedup non-increasing.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Coverage+1e-9 < res.Rows[i-1].Coverage {
			t.Errorf("coverage decreased at depth %d", res.Rows[i].Checkpoints)
		}
		if res.Rows[i].Speedup > res.Rows[i-1].Speedup+1e-9 {
			t.Errorf("speedup increased at depth %d", res.Rows[i].Checkpoints)
		}
	}
	if !strings.Contains(res.Render(), "checkpoints") {
		t.Error("render malformed")
	}
	if len(AblationBenchmarks()) == 0 {
		t.Error("no ablation benchmarks")
	}
}

// TestDurabilityOptionThreading pins the Options→campaign-config plumbing:
// golden-image paths, journal compression and shard assignment must reach
// both campaign kinds, and golden images must not require a CampaignRoot.
func TestDurabilityOptionThreading(t *testing.T) {
	o := Options{
		CampaignRoot:    "root",
		GoldenImageRoot: "golden",
		CompressJournal: true,
		ShardIndex:      1,
		ShardCount:      3,
	}
	vm := o.vmCampaign(inject.VMConfig{Bench: workload.Gzip, Trials: 10, Window: 1000})
	if vm.ResumeFrom != filepath.Join("root", vm.CampaignID()) {
		t.Errorf("vm ResumeFrom = %q", vm.ResumeFrom)
	}
	if !vm.CompressJournal || vm.ShardIndex != 1 || vm.ShardCount != 3 {
		t.Errorf("vm durability options not threaded: %+v", vm)
	}
	if vm.GoldenImage != filepath.Join("golden", vm.CampaignID()+".golden") {
		t.Errorf("vm GoldenImage = %q", vm.GoldenImage)
	}
	ua := o.uarchCampaign(inject.UArchConfig{Bench: workload.Gzip, Points: 2, TrialsPerPoint: 3})
	if ua.ResumeFrom != filepath.Join("root", ua.CampaignID()) {
		t.Errorf("uarch ResumeFrom = %q", ua.ResumeFrom)
	}
	if !ua.CompressJournal || ua.ShardIndex != 1 || ua.ShardCount != 3 {
		t.Errorf("uarch durability options not threaded: %+v", ua)
	}
	if ua.GoldenImage != filepath.Join("golden", ua.CampaignID()+".golden") {
		t.Errorf("uarch GoldenImage = %q", ua.GoldenImage)
	}

	// Golden images stand alone: no CampaignRoot needed.
	solo := Options{GoldenImageRoot: "g"}.vmCampaign(inject.VMConfig{Bench: workload.MCF})
	if solo.GoldenImage == "" || solo.ResumeFrom != "" {
		t.Errorf("golden-only threading wrong: %+v", solo)
	}
	// CompressJournal without a CampaignRoot is inert — there is no journal.
	if noRoot := (Options{CompressJournal: true}).vmCampaign(inject.VMConfig{}); noRoot.CompressJournal {
		t.Error("CompressJournal leaked without CampaignRoot")
	}
}

// TestFig2GoldenImageRoot runs the same experiment three times — plain, with
// a fresh GoldenImageRoot (writes the image), and again over the populated
// root (restores it) — and requires byte-identical campaign results plus one
// .golden file per benchmark.
func TestFig2GoldenImageRoot(t *testing.T) {
	opts := tinyOpts()
	opts.Benchmarks = []workload.Benchmark{workload.Gzip}
	plain, err := Fig2(opts, false)
	if err != nil {
		t.Fatal(err)
	}
	opts.GoldenImageRoot = t.TempDir()
	warm, err := Fig2(opts, false)
	if err != nil {
		t.Fatal(err)
	}
	images, err := filepath.Glob(filepath.Join(opts.GoldenImageRoot, "*.golden"))
	if err != nil || len(images) != 1 {
		t.Fatalf("golden images = %v (err %v), want exactly 1", images, err)
	}
	restored, err := Fig2(opts, false)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.AllTrials, warm.AllTrials) {
		t.Error("warm-save run diverged from plain run")
	}
	if !reflect.DeepEqual(plain.AllTrials, restored.AllTrials) {
		t.Error("golden-restored run diverged from plain run")
	}
}
