// Quickstart: build a ReStore processor, run a workload, inject a soft
// error, and watch the symptom-based detection recover it.
//
// This walks the exact scenario of the paper's introduction: a particle
// strike corrupts live machine state, the corrupted value propagates to a
// memory access fault within a few dozen instructions, and instead of
// crashing, the processor rolls back to a checkpoint taken before the fault
// and replays — recovering the error with no architectural damage.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/isa"
	"repro/internal/pipeline"
	"repro/internal/restore"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Generate a synthetic benchmark (mcf: pointer-chasing over a
	// large working set) and load it into a fresh memory image.
	prog := workload.MustGenerate(workload.MCF, workload.Config{Seed: 1})
	m, err := prog.NewMemory()
	if err != nil {
		return err
	}
	fmt.Printf("workload %s: %d instructions of code, %d data segments\n",
		prog.Name, prog.NumInsts(), len(prog.Segments))

	// 2. Build the out-of-order pipeline (Alpha-21264-class: 4-wide
	// fetch, 6-wide issue, 64-entry ROB, JRS confidence estimation) and
	// wrap it with the ReStore mechanisms: checkpoints every 100
	// instructions, two live checkpoints, all symptom detectors on.
	pipe, err := pipeline.New(pipeline.DefaultConfig(), m, prog.Entry)
	if err != nil {
		return err
	}
	proc := restore.New(pipe, restore.Config{Interval: 100})
	fmt.Printf("pipeline state space: %d injectable bits\n\n", pipe.State().TotalBits(false))

	// 3. Run fault-free for a while.
	if _, err := proc.Run(50_000, 5_000_000); err != nil {
		return err
	}
	before := proc.Report()
	fmt.Printf("after %d clean instructions: %d checkpoints, %d rollbacks\n",
		before.Retired, before.Checkpoints, before.Rollbacks)

	// 4. Strike! Flip a high bit of a live architectural register. In
	// mcf's pointer-chase loop r1 holds the list cursor, so the corrupt
	// pointer lands in unmapped space and the next dereference faults.
	pipe.CorruptArchReg(isa.Reg(1), 45)
	fmt.Println("\n*** injected: bit 45 of r1 flipped (soft error) ***")

	// 5. Keep running: ReStore detects the exception symptom, rolls back
	// to the pre-fault checkpoint, replays, and execution continues.
	rep, err := proc.Run(100_000, 10_000_000)
	if err != nil {
		return fmt.Errorf("unrecovered fault: %w", err)
	}

	fmt.Printf("\nrecovered and reached %d instructions:\n", rep.Retired)
	fmt.Printf("  exception symptoms : %d\n", rep.ExceptionSymptoms-before.ExceptionSymptoms)
	fmt.Printf("  rollbacks          : %d\n", rep.Rollbacks-before.Rollbacks)
	fmt.Printf("  vanished symptoms  : %d (fault-induced, recovered)\n", rep.VanishedSymptoms)
	fmt.Printf("  genuine exceptions : %d\n", rep.GenuineExceptions)

	if rep.VanishedSymptoms == 0 {
		// The flip may have been masked (the cursor was mid-reload).
		fmt.Println("\nNOTE: the injected fault was masked before causing a symptom —")
		fmt.Println("the paper observes this for most injections. Re-run with a")
		fmt.Println("different seed to see an exception-symptom recovery.")
	} else {
		fmt.Println("\nThe soft error was detected by its symptom and recovered by")
		fmt.Println("checkpoint rollback — no replication hardware required.")
	}
	return nil
}
