package inject

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/campaignio"
	"repro/internal/workload"
)

// journalMagic reads the 8-byte magic of a campaign directory's journal.
func journalMagic(t *testing.T, dir string) []byte {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join(dir, campaignio.JournalName))
	if err != nil {
		t.Fatal(err)
	}
	return raw[:8]
}

// The CompressJournal toggle is inert: an interrupted-then-resumed compressed
// campaign reproduces the one-shot result exactly, and a compressed shard
// merges with an uncompressed one into the same result.
func TestCompressedJournalCampaignEquivalence(t *testing.T) {
	bench := workload.Gzip
	oneShot, err := RunVM(resumeVM(bench))
	if err != nil {
		t.Fatal(err)
	}

	dir := filepath.Join(t.TempDir(), "campaign")
	cfg := resumeVM(bench)
	cfg.ResumeFrom = dir
	cfg.CompressJournal = true
	cfg.Interrupt, cfg.Progress = interruptAfter(15)
	if _, err := RunVM(cfg); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("interrupted run returned %v, want ErrInterrupted", err)
	}
	if got := journalMagic(t, dir); !bytes.Equal(got, []byte("RSTJRNL2")) {
		t.Fatalf("journal magic %q, want compressed framing", got)
	}
	cfg = resumeVM(bench)
	cfg.ResumeFrom = dir
	cfg.CompressJournal = true
	resumed, err := RunVM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sameVMResults(t, "compressed interrupt+resume", oneShot, resumed)

	// One compressed shard, one plain shard; the merge cannot tell.
	dirs := []string{filepath.Join(t.TempDir(), "s0"), filepath.Join(t.TempDir(), "s1")}
	for i, d := range dirs {
		scfg := resumeVM(bench)
		scfg.ResumeFrom = d
		scfg.ShardIndex, scfg.ShardCount = i, 2
		scfg.CompressJournal = i == 0
		if _, err := RunVM(scfg); err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
	}
	merged, err := MergeVM(resumeVM(bench), dirs)
	if err != nil {
		t.Fatal(err)
	}
	sameVMResults(t, "mixed-framing shard+merge", oneShot, merged)
}

// TestCompressedUArchResume is the microarchitectural twin, and also checks
// that resuming without the toggle keeps the journal compressed (the file's
// framing wins over the configuration).
func TestCompressedUArchResume(t *testing.T) {
	bench := workload.Gzip
	oneShot, err := RunUArch(resumeUArch(bench))
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "campaign")
	cfg := resumeUArch(bench)
	cfg.ResumeFrom = dir
	cfg.CompressJournal = true
	cfg.Interrupt, cfg.Progress = interruptAfter(8)
	if _, err := RunUArch(cfg); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("interrupted run returned %v, want ErrInterrupted", err)
	}
	cfg = resumeUArch(bench)
	cfg.ResumeFrom = dir // note: CompressJournal unset on the resuming run
	resumed, err := RunUArch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sameUArchResults(t, "compressed interrupt+resume", oneShot, resumed)
	if got := journalMagic(t, dir); !bytes.Equal(got, []byte("RSTJRNL2")) {
		t.Fatalf("resume changed journal framing to %q", got)
	}
}

// S1 regression (recovery site): a journal holding one slot twice with
// identical payloads — the residue of a crash after fsync but before the
// in-memory scan position advanced — must resume cleanly, first copy wins.
// The same slot with differing payloads stays ErrCorrupt.
func TestResumeRecoversDuplicateIdenticalSlots(t *testing.T) {
	bench := workload.Gzip
	oneShot, err := RunUArch(resumeUArch(bench))
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "campaign")
	cfg := resumeUArch(bench)
	cfg.ResumeFrom = dir
	if _, err := RunUArch(cfg); err != nil {
		t.Fatal(err)
	}

	// Re-append an exact copy of an already-journalled record.
	scan, err := campaignio.ScanJournal(dir, len(oneShot.Trials))
	if err != nil {
		t.Fatal(err)
	}
	dup := scan.Records[3]
	w, err := campaignio.OpenWriter(dir, scan.ValidLen, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(dup.Slot, dup.Payload); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	resumed, err := RunUArch(cfg)
	if err != nil {
		t.Fatalf("identical duplicate slot rejected on resume: %v", err)
	}
	sameUArchResults(t, "duplicate-slot resume", oneShot, resumed)

	// Now append the same slot with different bytes: that is corruption.
	scan, err = campaignio.ScanJournal(dir, len(oneShot.Trials))
	if err != nil {
		t.Fatal(err)
	}
	w, err = campaignio.OpenWriter(dir, scan.ValidLen, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(dup.Slot, []byte(`{"forged":true}`)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := RunUArch(cfg); !errors.Is(err, campaignio.ErrCorrupt) {
		t.Fatalf("differing duplicate slot resumed with err = %v, want ErrCorrupt", err)
	}
}
