// Package checkpoint implements the architectural checkpoint store of the
// ReStore architecture (paper Section 2): periodic snapshots of the
// architectural register file plus buffered memory updates, restorable on
// demand.
//
// Register state is checkpointed by copying (the paper notes real designs
// save RAT mappings instead; the architectural effect is identical). Memory
// is checkpointed through the write journal of the memory image, which is
// functionally the paper's gated store buffer: stores between checkpoints
// are undoable until the checkpoint that covers them is retired. As in the
// paper (Section 4.3), checkpoint creation and restoration are modelled at
// zero latency and the checkpoint storage itself is assumed ECC-protected:
// it is never a fault-injection target.
package checkpoint

import (
	"encoding/binary"
	"errors"

	"repro/internal/ckptio"
	"repro/internal/mem"
)

// Checkpoint is one architectural snapshot.
type Checkpoint struct {
	Regs    [32]uint64
	PC      uint64
	Retired uint64 // retired-instruction count at creation time
	mark    mem.Mark
}

// Store keeps the most recent checkpoints over a journalled memory image.
// The paper's evaluation keeps two, so that rollback always has a
// checkpoint at least one full interval in the past (Section 5.2.3).
type Store struct {
	mem      *mem.Memory
	capacity int
	cps      []Checkpoint

	costing bool
	cost    CostStats
}

// CostStats prices the storage traffic of the checkpoints a store has
// created, in the ckptio on-disk encoding: the register snapshot as a raw
// frame plus the interval's buffered memory updates as a compressed frame.
// The paper models checkpoint creation at zero latency; these numbers let
// internal/perf relax that assumption and charge the bytes realistically.
type CostStats struct {
	Checkpoints int64
	RawBytes    int64 // encoded size before compression
	StoredBytes int64 // encoded size after compression, as ckptio stores it
}

// Ratio returns stored/raw bytes (1.0 for an empty costing).
func (c CostStats) Ratio() float64 {
	if c.RawBytes == 0 {
		return 1
	}
	return float64(c.StoredBytes) / float64(c.RawBytes)
}

// BytesPerCheckpoint returns the mean stored size of one checkpoint.
func (c CostStats) BytesPerCheckpoint() float64 {
	if c.Checkpoints == 0 {
		return 0
	}
	return float64(c.StoredBytes) / float64(c.Checkpoints)
}

// EnableCosting makes every subsequent Create encode its snapshot through
// ckptio (in memory, nothing touches disk) and accumulate the priced sizes.
// Purely observational: checkpoint and rollback behaviour are identical with
// or without it.
func (s *Store) EnableCosting() { s.costing = true }

// Cost returns the accumulated checkpoint pricing.
func (s *Store) Cost() CostStats { return s.cost }

// ErrEmpty is returned when restoring from a store with no checkpoints.
var ErrEmpty = errors.New("checkpoint: store is empty")

// NewStore wraps the memory image (enabling its write journal) and keeps up
// to capacity checkpoints.
func NewStore(m *mem.Memory, capacity int) *Store {
	if capacity < 1 {
		capacity = 1
	}
	m.EnableJournal()
	return &Store{mem: m, capacity: capacity}
}

// Len returns the number of live checkpoints.
func (s *Store) Len() int { return len(s.cps) }

// Capacity returns the maximum number of checkpoints kept.
func (s *Store) Capacity() int { return s.capacity }

// Create snapshots the architectural state. When the store is full the
// oldest checkpoint is retired: its memory updates become permanent and can
// no longer be rolled back.
func (s *Store) Create(regs [32]uint64, pc, retired uint64) {
	// Re-arm journalling: Clear disables it (there is nothing to roll
	// back to), and the first new checkpoint is what makes writes worth
	// recording again.
	s.mem.EnableJournal()
	if s.costing {
		s.priceSnapshot(regs, pc, retired)
	}
	if len(s.cps) == s.capacity {
		dropped := s.mem.DiscardTo(s.cps[0].mark)
		s.cps = s.cps[1:]
		for i := range s.cps {
			s.cps[i].mark -= mem.Mark(dropped)
		}
	}
	s.cps = append(s.cps, Checkpoint{
		Regs:    regs,
		PC:      pc,
		Retired: retired,
		mark:    s.mem.Snapshot(),
	})
}

// priceSnapshot encodes what this Create checkpoints — the architectural
// registers plus the write-journal delta accumulated since the previous
// checkpoint — through the ckptio frame encoder, in memory, and adds the
// sizes to the running cost. Called before the capacity retirement so the
// previous checkpoint's mark is still valid.
func (s *Store) priceSnapshot(regs [32]uint64, pc, retired uint64) {
	var prev mem.Mark
	if len(s.cps) > 0 {
		prev = s.cps[len(s.cps)-1].mark
	}
	arch := make([]byte, 0, (len(regs)+2)*8)
	var u [8]byte
	for _, r := range regs {
		binary.LittleEndian.PutUint64(u[:], r)
		arch = append(arch, u[:]...)
	}
	binary.LittleEndian.PutUint64(u[:], pc)
	arch = append(arch, u[:]...)
	binary.LittleEndian.PutUint64(u[:], retired)
	arch = append(arch, u[:]...)

	w := ckptio.NewWriter()
	w.Frame(ckptio.StyleRaw).Add(arch)
	w.Frame(ckptio.StyleFlate).Add(s.mem.JournalImage(prev))
	if _, err := w.Encode(1); err != nil {
		return // cannot happen for in-memory frames; never perturb the store
	}
	st := w.Stats()
	s.cost.Checkpoints++
	s.cost.RawBytes += st.PlainBytes
	s.cost.StoredBytes += st.StoredBytes
}

// Oldest returns the oldest live checkpoint without restoring it.
func (s *Store) Oldest() (Checkpoint, bool) {
	if len(s.cps) == 0 {
		return Checkpoint{}, false
	}
	return s.cps[0], true
}

// Newest returns the most recent checkpoint.
func (s *Store) Newest() (Checkpoint, bool) {
	if len(s.cps) == 0 {
		return Checkpoint{}, false
	}
	return s.cps[len(s.cps)-1], true
}

// RestoreOldest rolls memory back to the oldest checkpoint and returns it.
// All checkpoints are consumed: after a rollback the machine re-executes
// forward and takes fresh checkpoints. This matches the paper's recovery
// flow, where rollback always targets the older of the two live checkpoints
// so the rollback distance is at least one full interval.
func (s *Store) RestoreOldest() (Checkpoint, error) {
	if len(s.cps) == 0 {
		return Checkpoint{}, ErrEmpty
	}
	cp := s.cps[0]
	s.mem.RestoreTo(cp.mark)
	s.cps = s.cps[:0]
	return cp, nil
}

// RestoreNewest rolls memory back to the most recent checkpoint only. Used
// by policies that prefer minimum re-execution when the error is known to be
// young.
func (s *Store) RestoreNewest() (Checkpoint, error) {
	if len(s.cps) == 0 {
		return Checkpoint{}, ErrEmpty
	}
	cp := s.cps[len(s.cps)-1]
	s.mem.RestoreTo(cp.mark)
	s.cps = s.cps[:len(s.cps)-1]
	return cp, nil
}

// Clear drops all checkpoints, making current memory state permanent, and
// disables write journalling until the next Create. With zero live
// checkpoints nothing can ever be rolled back, so continuing to journal
// would let a store-heavy caller that never checkpoints again accrue an
// unbounded journal; instead every write is permanent immediately.
func (s *Store) Clear() {
	s.mem.DisableJournal()
	s.cps = s.cps[:0]
}
