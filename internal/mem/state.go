package mem

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// SaveState serialises the page image for a golden checkpoint: a u64 page
// count followed by each mapped page as u64 vpn | u8 perm | PageSize data,
// sorted by vpn so the bytes are deterministic for a given image. The write
// journal is not part of the image — marks are relative to the journal
// length, so a restored image behaves identically starting from an empty
// journal.
func (m *Memory) SaveState() []byte {
	vpns := m.sortedVPNs()
	out := make([]byte, 0, 8+len(vpns)*(9+PageSize))
	var u [8]byte
	binary.LittleEndian.PutUint64(u[:], uint64(len(vpns)))
	out = append(out, u[:]...)
	for _, vpn := range vpns {
		p := m.pages[vpn]
		binary.LittleEndian.PutUint64(u[:], vpn)
		out = append(out, u[:]...)
		out = append(out, byte(p.perm))
		out = append(out, p.data[:]...)
	}
	return out
}

// LoadState replaces the page image with one serialised by SaveState. The
// write journal is cleared (there is nothing meaningful to undo into the
// new image); whether journalling is enabled is preserved, so a journalling
// memory keeps journalling from the restored state onward.
func (m *Memory) LoadState(b []byte) error {
	if len(b) < 8 {
		return fmt.Errorf("mem: state blob too short (%d bytes)", len(b))
	}
	n := binary.LittleEndian.Uint64(b[:8])
	const rec = 9 + PageSize
	if uint64(len(b)-8) != n*rec {
		return fmt.Errorf("mem: state blob %d bytes does not hold %d pages", len(b), n)
	}
	pages := make(map[uint64]*page, n)
	off := 8
	for i := uint64(0); i < n; i++ {
		vpn := binary.LittleEndian.Uint64(b[off:])
		if _, dup := pages[vpn]; dup {
			return fmt.Errorf("mem: state blob repeats page %#x", vpn)
		}
		p := &page{perm: Perm(b[off+8])}
		copy(p.data[:], b[off+9:off+rec])
		pages[vpn] = p
		off += rec
	}
	m.pages = pages
	m.journal = m.journal[:0]
	return nil
}

// JournalImage serialises the write-journal records at index from onward:
// each as u64 addr | u8 n | n overwritten bytes. This is the undo data one
// checkpoint interval pins — what the paper's gated store buffer holds — so
// its serialised size is the natural unit for pricing checkpoint storage
// traffic. Purely observational: the journal itself is untouched.
func (m *Memory) JournalImage(from Mark) []byte {
	if from < 0 {
		from = 0
	}
	if int(from) >= len(m.journal) {
		return nil
	}
	recs := m.journal[from:]
	out := make([]byte, 0, len(recs)*17)
	var u [8]byte
	for _, rec := range recs {
		binary.LittleEndian.PutUint64(u[:], rec.addr)
		out = append(out, u[:]...)
		out = append(out, rec.n)
		out = append(out, rec.old[:rec.n]...)
	}
	return out
}

// sortedVPNs returns the mapped virtual page numbers in ascending order.
func (m *Memory) sortedVPNs() []uint64 {
	vpns := make([]uint64, 0, len(m.pages))
	for vpn := range m.pages {
		vpns = append(vpns, vpn)
	}
	sort.Slice(vpns, func(i, j int) bool { return vpns[i] < vpns[j] })
	return vpns
}
