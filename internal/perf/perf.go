// Package perf implements the high-level timing model of Section 5.2.3: the
// performance cost of false-positive symptoms, i.e. checkpoint rollbacks
// triggered by genuine high-confidence branch mispredictions in the absence
// of any fault.
//
// Following the paper, the model assumes two live checkpoints (so the mean
// rollback distance is 1.5 checkpoint intervals for the immediate policy and
// 2 intervals for the delayed policy), zero-latency checkpoint creation, and
// event-log-driven re-execution with perfect control-flow prediction. Its
// inputs are measured on the detailed pipeline; the model can also be
// cross-checked against direct simulation of the ReStore processor
// (MeasureSlowdown).
package perf

import (
	"fmt"
	"math"

	"repro/internal/checkpoint"
	"repro/internal/pipeline"
	"repro/internal/restore"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Inputs are the workload-dependent parameters of the timing model.
type Inputs struct {
	// BaseCPI is cycles per retired instruction without ReStore.
	BaseCPI float64
	// ReplayCPI is cycles per instruction during event-log replay, where
	// branch outcomes are known and mispredictions vanish.
	ReplayCPI float64
	// SymptomRate is high-confidence mispredictions per retired
	// instruction (the false-positive trigger rate).
	SymptomRate float64
	// FlushPenalty is the fixed cycle cost of one rollback: pipeline
	// flush plus refetch-to-first-commit latency.
	FlushPenalty float64

	// CheckpointBytes is the mean stored size of one checkpoint snapshot
	// (checkpoint.CostStats.BytesPerCheckpoint, measured with
	// MeasureCheckpointCost) and CheckpointBandwidth the bytes per cycle
	// the checkpoint store absorbs. Together they relax the paper's
	// zero-latency checkpoint assumption: each interval is charged
	// bytes/bandwidth extra cycles. Either left zero keeps the classic
	// zero-cost model — existing numbers are unchanged.
	CheckpointBytes     float64
	CheckpointBandwidth float64
}

// MeasureInputs runs the detailed pipeline on a benchmark and derives the
// model inputs.
func MeasureInputs(bench workload.Benchmark, seed int64, insts uint64, pcfg pipeline.Config) (Inputs, error) {
	prog, err := workload.Generate(bench, workload.Config{Seed: seed})
	if err != nil {
		return Inputs{}, err
	}
	m, err := prog.NewMemory()
	if err != nil {
		return Inputs{}, err
	}
	pipe, err := pipeline.New(pcfg, m, prog.Entry)
	if err != nil {
		return Inputs{}, err
	}
	retired := pipe.RunRetired(insts, insts*40)
	if retired == 0 {
		return Inputs{}, fmt.Errorf("perf: pipeline retired nothing on %s", bench)
	}
	s := pipe.Stats()
	baseCPI := float64(s.Cycles) / float64(s.Retired)

	// Replay CPI: committed mispredictions disappear under event-log
	// prediction; each one saves roughly a redirect's worth of cycles.
	mispPenalty := float64(pcfg.RedirectPenalty) + 4 // refill to first commit
	replayCPI := baseCPI - mispPenalty*float64(s.CommittedCondMispredicts)/float64(s.Retired)
	if replayCPI < 0.3 {
		replayCPI = 0.3
	}

	return Inputs{
		BaseCPI:      baseCPI,
		ReplayCPI:    replayCPI,
		SymptomRate:  float64(s.HCMispredicts) / float64(s.Retired),
		FlushPenalty: mispPenalty + 8, // rollback also reloads architectural state
	}, nil
}

// Average combines per-benchmark inputs into suite means (the paper reports
// suite-level bars).
func Average(inputs []Inputs) Inputs {
	if len(inputs) == 0 {
		return Inputs{}
	}
	var out Inputs
	for _, in := range inputs {
		out.BaseCPI += in.BaseCPI
		out.ReplayCPI += in.ReplayCPI
		out.SymptomRate += in.SymptomRate
		out.FlushPenalty += in.FlushPenalty
		out.CheckpointBytes += in.CheckpointBytes
		out.CheckpointBandwidth += in.CheckpointBandwidth
	}
	n := float64(len(inputs))
	out.BaseCPI /= n
	out.ReplayCPI /= n
	out.SymptomRate /= n
	out.FlushPenalty /= n
	out.CheckpointBytes /= n
	out.CheckpointBandwidth /= n
	return out
}

// Overhead returns the expected extra cycles per retired instruction for a
// checkpoint interval under a rollback policy.
//
// Immediate: every symptom triggers its own rollback; with two checkpoints
// the mean rollback distance is 1.5 intervals, all re-executed at replay
// CPI. Expected overhead/inst = rate × (flush + 1.5·L·replayCPI). Multiple
// symptoms within an interval each pay (the paper's stated disadvantage).
//
// Delayed: at most one rollback per interval, taken at the interval's end
// with a full two-interval re-execution. Expected overhead/inst =
// P(≥1 symptom in L)/L × (flush + 2·L·replayCPI), with the symptom count
// per interval approximated as Poisson(rate·L).
//
// When CheckpointBytes and CheckpointBandwidth are both set, each interval
// additionally pays bytes/bandwidth cycles to drain its snapshot into the
// checkpoint store — a policy-independent bytes/bandwidth/L per instruction.
func Overhead(in Inputs, interval uint64, policy restore.Policy) float64 {
	elle := float64(interval)
	switch policy {
	case restore.PolicyDelayed:
		pAny := 1 - math.Exp(-in.SymptomRate*elle)
		return pAny/elle*(in.FlushPenalty+2*elle*in.ReplayCPI) + checkpointOverhead(in, elle)
	default: // immediate
		return in.SymptomRate*(in.FlushPenalty+1.5*elle*in.ReplayCPI) + checkpointOverhead(in, elle)
	}
}

// checkpointOverhead is the extra cycles per instruction spent writing
// checkpoint snapshots; zero unless both pricing inputs are set.
func checkpointOverhead(in Inputs, elle float64) float64 {
	if in.CheckpointBytes <= 0 || in.CheckpointBandwidth <= 0 {
		return 0
	}
	return in.CheckpointBytes / in.CheckpointBandwidth / elle
}

// Speedup returns relative performance against a baseline without
// checkpoint rollbacks (1.0 = no loss), the y-axis of Figure 7.
func Speedup(in Inputs, interval uint64, policy restore.Policy) float64 {
	return in.BaseCPI / (in.BaseCPI + Overhead(in, interval, policy))
}

// Sweep evaluates both policies over the intervals, producing the two bar
// series of Figure 7.
func Sweep(in Inputs, intervals []uint64) (imm, delayed stats.Series) {
	imm.Name, delayed.Name = "imm", "delayed"
	for _, iv := range intervals {
		imm.Add(float64(iv), Speedup(in, iv, restore.PolicyImmediate))
		delayed.Add(float64(iv), Speedup(in, iv, restore.PolicyDelayed))
	}
	return imm, delayed
}

// MeasureSweep runs MeasureSlowdown at every interval for every benchmark
// and averages, producing a directly simulated counterpart to the analytic
// Figure 7 series.
func MeasureSweep(benches []workload.Benchmark, seed int64, insts uint64,
	pcfg pipeline.Config, policy restore.Policy, intervals []uint64) (stats.Series, error) {

	s := stats.Series{Name: "simulated"}
	if policy == restore.PolicyDelayed {
		s.Name = "simulated-delayed"
	}
	if len(benches) == 0 {
		// A sweep over no benchmarks has no mean to report; returning the
		// empty series beats filling it with 0/0 = NaN points.
		return s, nil
	}
	for _, iv := range intervals {
		sum := 0.0
		for _, bench := range benches {
			v, err := MeasureSlowdown(bench, seed, insts, pcfg, restore.Config{
				Interval: iv,
				Policy:   policy,
			})
			if err != nil {
				return stats.Series{}, fmt.Errorf("measure sweep %s @%d: %w", bench, iv, err)
			}
			sum += v
		}
		s.Add(float64(iv), sum/float64(len(benches)))
	}
	return s, nil
}

// MeasureCheckpointCost runs a fault-free ReStore processor with checkpoint
// costing enabled and returns the priced snapshot traffic: how many bytes
// one checkpoint stores once the register file and the interval's buffered
// memory updates go through the ckptio encoding. Feed
// CostStats.BytesPerCheckpoint into Inputs.CheckpointBytes to price the
// traffic in the analytic model.
func MeasureCheckpointCost(bench workload.Benchmark, seed int64, insts uint64,
	pcfg pipeline.Config, rcfg restore.Config) (checkpoint.CostStats, error) {

	prog, err := workload.Generate(bench, workload.Config{Seed: seed})
	if err != nil {
		return checkpoint.CostStats{}, err
	}
	m, err := prog.NewMemory()
	if err != nil {
		return checkpoint.CostStats{}, err
	}
	pipe, err := pipeline.New(pcfg, m, prog.Entry)
	if err != nil {
		return checkpoint.CostStats{}, err
	}
	proc := restore.New(pipe, rcfg)
	proc.Store().EnableCosting()
	if _, err := proc.Run(insts, insts*400); err != nil {
		return checkpoint.CostStats{}, err
	}
	cost := proc.Store().Cost()
	if cost.Checkpoints == 0 {
		return cost, fmt.Errorf("perf: no checkpoints created on %s", bench)
	}
	return cost, nil
}

// MeasureSlowdown cross-checks the analytic model by direct simulation: it
// runs the same workload once on a bare pipeline and once under a ReStore
// processor (fault-free, so every rollback is a false positive) and returns
// the measured relative performance.
func MeasureSlowdown(bench workload.Benchmark, seed int64, insts uint64,
	pcfg pipeline.Config, rcfg restore.Config) (float64, error) {

	prog, err := workload.Generate(bench, workload.Config{Seed: seed})
	if err != nil {
		return 0, err
	}

	m1, err := prog.NewMemory()
	if err != nil {
		return 0, err
	}
	bare, err := pipeline.New(pcfg, m1, prog.Entry)
	if err != nil {
		return 0, err
	}
	retired := bare.RunRetired(insts, insts*40)
	if retired < insts {
		return 0, fmt.Errorf("perf: bare pipeline retired %d of %d", retired, insts)
	}
	baseCycles := bare.Cycles()

	m2, err := prog.NewMemory()
	if err != nil {
		return 0, err
	}
	pipe, err := pipeline.New(pcfg, m2, prog.Entry)
	if err != nil {
		return 0, err
	}
	proc := restore.New(pipe, rcfg)
	rep, err := proc.Run(insts, insts*400)
	if err != nil {
		return 0, err
	}
	if rep.Retired < insts {
		return 0, fmt.Errorf("perf: restore run retired %d of %d", rep.Retired, insts)
	}
	return float64(baseCycles) / float64(rep.Cycles), nil
}
