// Package fixture exercises every durableio diagnostic: a write path that
// renames without fsync (and never syncs the written file at all), a read
// path that trusts records without a CRC check, and a rename whose source
// cannot be traced to a synced file.
package fixture

import (
	"io"
	"os"
	"path/filepath"
)

type Record struct {
	Slot    int
	Payload []byte
}

func publishUnsynced(dir string, data []byte) error {
	tmp, err := os.CreateTemp(dir, "m.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil { // want "written but never fsynced"
		return err
	}
	tmp.Close()
	return os.Rename(tmp.Name(), filepath.Join(dir, "manifest")) // want "without an earlier Sync"
}

func readNoCRC(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []Record
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			return out, nil
		}
		out = append(out, Record{Slot: int(hdr[0])}) // want "without a CRC check"
	}
}

func renameUntraced(a, b string) error {
	return os.Rename(a, b) // want "cannot be traced"
}

// writeFramesUnsynced is the container write path with the fsync lost in a
// refactor: the loop writes land in the page cache and the rename publishes
// a possibly-empty file.
func writeFramesUnsynced(path string, frames [][]byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), "img.tmp")
	if err != nil {
		return err
	}
	for _, fr := range frames {
		if _, err := tmp.Write(fr); err != nil { // want "written but never fsynced"
			return err
		}
	}
	tmp.Close()
	return os.Rename(tmp.Name(), path) // want "without an earlier Sync"
}

// scanSegmentsNoCRC decompresses and trusts segment bytes without verifying
// the segment checksum first.
func scanSegmentsNoCRC(f *os.File) ([]Record, error) {
	var out []Record
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			return out, nil
		}
		body := make([]byte, 32)
		if _, err := io.ReadFull(f, body); err != nil {
			return out, nil
		}
		out = append(out, Record{Slot: int(hdr[0]), Payload: body}) // want "without a CRC check"
	}
}
