package pipeline

import "math/bits"

// OccupancySample is a point-in-time fill reading of the major pipeline
// structures. It exposes, read-only, the same fills the telemetry histograms
// sample (metrics.go), plus the physical-register liveness the free list
// implies. The static protection ranking (internal/protect) averages samples
// from a fault-free run into a residency profile: a structure that sits
// mostly empty contributes few vulnerable bit-cycles no matter how ACE its
// occupied words are.
type OccupancySample struct {
	FetchQ   uint64 // occupied fetch-queue entries (of FQSize)
	ROB      uint64 // occupied reorder-buffer entries (of ROBSize)
	Sched    uint64 // valid scheduler slots (of SchedSize)
	STQ      uint64 // occupied store-queue entries (of STQSize)
	LDQ      uint64 // occupied load-queue entries (of LDQSize)
	Exec     uint64 // busy execution-window slots (of execSlots)
	ExecCap  uint64 // execution-window capacity
	LiveRegs uint64 // allocated physical registers (of PhysRegs)
}

// Occupancy reads the current structure fills. Pure observation: it mutates
// nothing and has no effect on simulation results.
func (p *Pipeline) Occupancy() OccupancySample {
	s := OccupancySample{
		FetchQ:   p.fq.count,
		ROB:      p.rob.count,
		Sched:    uint64(p.schedOccupancy()),
		STQ:      p.stq.count,
		LDQ:      p.ldq.count,
		ExecCap:  execSlots,
		LiveRegs: PhysRegs,
	}
	for i := range p.exec.busy {
		if p.exec.busy[i] {
			s.Exec++
		}
	}
	for _, w := range p.free.bits {
		s.LiveRegs -= uint64(bits.OnesCount64(w))
	}
	return s
}
