package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// allEncodableOps lists every operation that has a defined encoding.
func allEncodableOps() []Op {
	var ops []Op
	for op := Op(1); op < numOps; op++ {
		if _, ok := encTable[op]; ok {
			ops = append(ops, op)
		}
	}
	return ops
}

func randomInst(rng *rand.Rand) Inst {
	ops := allEncodableOps()
	op := ops[rng.Intn(len(ops))]
	inst := Inst{Op: op}
	switch ClassOf(op) {
	case ClassLoad, ClassStore:
		inst.Ra = Reg(rng.Intn(32))
		inst.Rb = Reg(rng.Intn(32))
		inst.Disp = int32(int16(rng.Uint32()))
	case ClassALU, ClassMul:
		if op == OpLDA || op == OpLDAH {
			inst.Ra = Reg(rng.Intn(32))
			inst.Rb = Reg(rng.Intn(32))
			inst.Disp = int32(int16(rng.Uint32()))
			break
		}
		inst.Ra = Reg(rng.Intn(32))
		inst.Rc = Reg(rng.Intn(32))
		if rng.Intn(2) == 0 {
			inst.UseLit = true
			inst.Lit = uint8(rng.Uint32())
		} else {
			inst.Rb = Reg(rng.Intn(32))
		}
	case ClassBranch:
		if inst.IsIndirect() {
			inst.Rb = Reg(rng.Intn(32))
			inst.Rc = Reg(rng.Intn(32))
			break
		}
		inst.Ra = Reg(rng.Intn(32))
		inst.Disp = int32(rng.Intn(1<<21)) - (1 << 20)
	}
	return inst
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		inst := randomInst(rng)
		w := Encode(inst)
		got := Decode(w)
		if got != inst {
			t.Fatalf("round trip failed:\n give %+v\n word %08x\n got  %+v", inst, w, got)
		}
	}
}

func TestDecodeInvalidWord(t *testing.T) {
	tests := []struct {
		name string
		word uint32
	}{
		{name: "undefined primary", word: 0x07 << 26},
		{name: "undefined primary all-ones payload", word: 0x07<<26 | 0x03FFFFFF},
		{name: "undefined inta function", word: pcINTA<<26 | 0x7F<<5},
		{name: "undefined ints function", word: pcINTS<<26 | 0x60<<5},
		{name: "undefined misc function", word: pcMisc<<26 | 0x7777},
		{name: "undefined jump hint", word: pcJMP<<26 | 3<<14},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Decode(tt.word); got.Op != OpInvalid {
				t.Errorf("Decode(%08x).Op = %v, want OpInvalid", tt.word, got.Op)
			}
		})
	}
}

func TestDecodeNeverPanics(t *testing.T) {
	// Property: any 32-bit word decodes without panicking. This matters
	// because fault injection corrupts instruction latches arbitrarily.
	f := func(w uint32) bool {
		_ = Decode(w)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50000}); err != nil {
		t.Error(err)
	}
}

func TestBranchTargetRoundTrip(t *testing.T) {
	f := func(pcWords uint32, dispRaw int32) bool {
		pc := uint64(pcWords%1_000_000) * InstBytes
		disp := dispRaw % (1 << 20)
		target := BranchTarget(pc, disp)
		got, ok := BranchDisp(pc, target)
		return ok && got == disp
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBranchDispOutOfRange(t *testing.T) {
	if _, ok := BranchDisp(0, uint64(1<<21+2)*InstBytes); ok {
		t.Error("expected out-of-range displacement to be rejected")
	}
	if _, ok := BranchDisp(0, 2); ok {
		t.Error("expected misaligned target to be rejected")
	}
}

func TestEvalOperateBasics(t *testing.T) {
	tests := []struct {
		op   Op
		a, b uint64
		want uint64
	}{
		{OpADDQ, 2, 3, 5},
		{OpSUBQ, 2, 3, ^uint64(0)},
		{OpMULQ, 7, 6, 42},
		{OpADDL, 0x1_0000_0000, 1, 1},
		{OpSUBL, 0, 1, ^uint64(0)},
		{OpCMPEQ, 4, 4, 1},
		{OpCMPEQ, 4, 5, 0},
		{OpCMPLT, ^uint64(0), 0, 1}, // -1 < 0 signed
		{OpCMPULT, ^uint64(0), 0, 0},
		{OpCMPLE, 3, 3, 1},
		{OpCMPULE, 4, 3, 0},
		{OpAND, 0xF0, 0x3C, 0x30},
		{OpBIS, 0xF0, 0x0F, 0xFF},
		{OpXOR, 0xFF, 0x0F, 0xF0},
		{OpBIC, 0xFF, 0x0F, 0xF0},
		{OpORNOT, 0, 0, ^uint64(0)},
		{OpSLL, 1, 4, 16},
		{OpSRL, 16, 4, 1},
		{OpSRA, ^uint64(0), 8, ^uint64(0)},
		{OpSLL, 1, 64 + 4, 16}, // shift amounts masked to 6 bits
	}
	for _, tt := range tests {
		got, _ := EvalOperate(tt.op, tt.a, tt.b)
		if got != tt.want {
			t.Errorf("EvalOperate(%v, %#x, %#x) = %#x, want %#x", tt.op, tt.a, tt.b, got, tt.want)
		}
	}
}

func TestEvalOperateOverflow(t *testing.T) {
	const maxInt = uint64(1<<63 - 1)
	tests := []struct {
		op           Op
		a, b         uint64
		wantOverflow bool
	}{
		{OpADDQV, maxInt, 1, true},
		{OpADDQV, 1, 2, false},
		{OpADDQV, 1 << 63, 1 << 63, true}, // minInt + minInt
		{OpSUBQV, 1 << 63, 1, true},       // minInt - 1
		{OpSUBQV, 5, 3, false},
		{OpMULQV, maxInt, 2, true},
		{OpMULQV, 1 << 32, 1 << 32, true},
		{OpMULQV, 3, 4, false},
		{OpMULQV, 0, maxInt, false},
		{OpADDQ, maxInt, 1, false}, // non-trapping never reports
	}
	for _, tt := range tests {
		_, ov := EvalOperate(tt.op, tt.a, tt.b)
		if ov != tt.wantOverflow {
			t.Errorf("EvalOperate(%v, %#x, %#x) overflow = %v, want %v",
				tt.op, tt.a, tt.b, ov, tt.wantOverflow)
		}
	}
}

func TestEvalCondBranch(t *testing.T) {
	neg := ^uint64(0) // -1
	tests := []struct {
		op   Op
		a    uint64
		want bool
	}{
		{OpBEQ, 0, true}, {OpBEQ, 1, false},
		{OpBNE, 0, false}, {OpBNE, 7, true},
		{OpBLT, neg, true}, {OpBLT, 0, false},
		{OpBLE, 0, true}, {OpBLE, 1, false},
		{OpBGT, 1, true}, {OpBGT, 0, false},
		{OpBGE, 0, true}, {OpBGE, neg, false},
		{OpADDQ, 0, false}, // non-branch op: never taken
	}
	for _, tt := range tests {
		if got := EvalCondBranch(tt.op, tt.a); got != tt.want {
			t.Errorf("EvalCondBranch(%v, %#x) = %v, want %v", tt.op, tt.a, got, tt.want)
		}
	}
}

func TestEvalCondMove(t *testing.T) {
	if !EvalCondMove(OpCMOVEQ, 0) || EvalCondMove(OpCMOVEQ, 1) {
		t.Error("CMOVEQ condition wrong")
	}
	if EvalCondMove(OpCMOVNE, 0) || !EvalCondMove(OpCMOVNE, 1) {
		t.Error("CMOVNE condition wrong")
	}
	if EvalCondMove(OpADDQ, 0) {
		t.Error("non-cmov op should never move")
	}
}

func TestInstPredicates(t *testing.T) {
	tests := []struct {
		inst       Inst
		branch     bool
		condBranch bool
		indirect   bool
		call       bool
		ret        bool
		load       bool
		store      bool
	}{
		{inst: Inst{Op: OpBEQ}, branch: true, condBranch: true},
		{inst: Inst{Op: OpBR}, branch: true},
		{inst: Inst{Op: OpBSR}, branch: true, call: true},
		{inst: Inst{Op: OpJSR}, branch: true, indirect: true, call: true},
		{inst: Inst{Op: OpRET}, branch: true, indirect: true, ret: true},
		{inst: Inst{Op: OpLDQ}, load: true},
		{inst: Inst{Op: OpSTL}, store: true},
		{inst: Inst{Op: OpADDQ}},
	}
	for _, tt := range tests {
		i := tt.inst
		if i.IsBranch() != tt.branch || i.IsCondBranch() != tt.condBranch ||
			i.IsIndirect() != tt.indirect || i.IsCall() != tt.call ||
			i.IsReturn() != tt.ret || i.IsLoad() != tt.load || i.IsStore() != tt.store {
			t.Errorf("predicates wrong for %v", i.Op)
		}
	}
}

func TestDestAndSrcs(t *testing.T) {
	add := Inst{Op: OpADDQ, Ra: 1, Rb: 2, Rc: 3}
	if d, ok := add.Dest(); !ok || d != 3 {
		t.Errorf("ADDQ dest = %v,%v want r3", d, ok)
	}
	if s, n := add.Srcs(); n != 2 || s[0] != 1 || s[1] != 2 {
		t.Errorf("ADDQ srcs = %v,%d", s, n)
	}

	addLit := Inst{Op: OpADDQ, Ra: 1, UseLit: true, Lit: 9, Rc: 3}
	if s, n := addLit.Srcs(); n != 1 || s[0] != 1 {
		t.Errorf("ADDQ-lit srcs = %v,%d", s, n)
	}

	ld := Inst{Op: OpLDQ, Ra: 4, Rb: 5}
	if d, ok := ld.Dest(); !ok || d != 4 {
		t.Errorf("LDQ dest = %v,%v want r4", d, ok)
	}
	if s, n := ld.Srcs(); n != 1 || s[0] != 5 {
		t.Errorf("LDQ srcs = %v,%d", s, n)
	}

	st := Inst{Op: OpSTQ, Ra: 4, Rb: 5}
	if _, ok := st.Dest(); ok {
		t.Error("STQ should have no dest")
	}
	if s, n := st.Srcs(); n != 2 || s[0] != 5 || s[1] != 4 {
		t.Errorf("STQ srcs = %v,%d", s, n)
	}

	bsr := Inst{Op: OpBSR, Ra: 26}
	if d, ok := bsr.Dest(); !ok || d != 26 {
		t.Errorf("BSR dest = %v,%v want r26", d, ok)
	}

	beq := Inst{Op: OpBEQ, Ra: 7}
	if _, ok := beq.Dest(); ok {
		t.Error("BEQ should have no dest")
	}
	if s, n := beq.Srcs(); n != 1 || s[0] != 7 {
		t.Errorf("BEQ srcs = %v,%d", s, n)
	}

	ret := Inst{Op: OpRET, Rb: 26, Rc: 31}
	if s, n := ret.Srcs(); n != 1 || s[0] != 26 {
		t.Errorf("RET srcs = %v,%d", s, n)
	}

	lda := Inst{Op: OpLDA, Ra: 2, Rb: 30, Disp: -16}
	if d, ok := lda.Dest(); !ok || d != 2 {
		t.Errorf("LDA dest = %v,%v want r2", d, ok)
	}
	if s, n := lda.Srcs(); n != 1 || s[0] != 30 {
		t.Errorf("LDA srcs = %v,%d", s, n)
	}
}

func TestMemBytes(t *testing.T) {
	if (Inst{Op: OpLDL}).MemBytes() != 4 || (Inst{Op: OpSTQ}).MemBytes() != 8 {
		t.Error("MemBytes wrong for memory ops")
	}
	if (Inst{Op: OpADDQ}).MemBytes() != 0 {
		t.Error("MemBytes should be 0 for non-memory ops")
	}
}

func TestStringRendering(t *testing.T) {
	// Smoke test: every encodable op renders without panicking and
	// non-empty.
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		inst := randomInst(rng)
		if inst.String() == "" {
			t.Fatalf("empty rendering for %+v", inst)
		}
	}
	if Reg(31).String() != "zero" || Reg(5).String() != "r5" {
		t.Error("register rendering wrong")
	}
}
