package pipeline

import (
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/isa"
	"repro/internal/workload"
)

func newBenchPipeline(t testing.TB, bench workload.Benchmark, cfg Config) *Pipeline {
	t.Helper()
	prog := workload.MustGenerate(bench, workload.Config{Seed: 42, Scale: 0.25})
	m, err := prog.NewMemory()
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(cfg, m, prog.Entry)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// lockstep attaches an architectural golden simulator to the pipeline's
// commit stream and fails the test on the first divergence.
func lockstep(t *testing.T, p *Pipeline, prog *workload.Program) *arch.Sim {
	t.Helper()
	gm, err := prog.NewMemory()
	if err != nil {
		t.Fatal(err)
	}
	golden := arch.New(gm, prog.Entry)
	p.CommitHook = func(ev CommitEvent) {
		g := golden.Step()
		if t.Failed() {
			return
		}
		if ev.PC != g.PC {
			t.Fatalf("commit %d: pc=%#x golden=%#x", ev.Index, ev.PC, g.PC)
		}
		if ev.Exception != g.Exception {
			t.Fatalf("commit %d pc=%#x: exception=%v golden=%v",
				ev.Index, ev.PC, ev.Exception, g.Exception)
		}
		if ev.Exception != arch.ExcNone {
			return
		}
		if ev.HasDest && ev.DestArch != isa.RegZero {
			if !g.DestValid || g.Dest != ev.DestArch || g.DestVal != ev.DestVal {
				t.Fatalf("commit %d pc=%#x %v: dest r%d=%#x golden r%d=%#x (valid=%v)",
					ev.Index, ev.PC, ev.Inst, ev.DestArch, ev.DestVal, g.Dest, g.DestVal, g.DestValid)
			}
		}
		if ev.IsStore != g.IsStore {
			t.Fatalf("commit %d pc=%#x: store flag mismatch", ev.Index, ev.PC)
		}
		if ev.IsStore {
			mask := ^uint64(0)
			if ev.StoreSize == 4 {
				mask = 1<<32 - 1
			}
			if ev.MemAddr != g.MemAddr || ev.StoreVal&mask != g.StoreVal&mask {
				t.Fatalf("commit %d pc=%#x: store %#x=%#x golden %#x=%#x",
					ev.Index, ev.PC, ev.MemAddr, ev.StoreVal, g.MemAddr, g.StoreVal)
			}
		}
		if ev.Target != g.NextPC {
			t.Fatalf("commit %d pc=%#x %v: next=%#x golden=%#x",
				ev.Index, ev.PC, ev.Inst, ev.Target, g.NextPC)
		}
	}
	return golden
}

func TestLockstepAllBenchmarks(t *testing.T) {
	// The pipeline's committed instruction stream must be architecturally
	// identical to the ISA simulator on every benchmark: same PCs, same
	// results, same stores, no exceptions. This is the foundation the
	// fault-injection methodology stands on.
	for _, bench := range workload.Benchmarks() {
		bench := bench
		t.Run(string(bench), func(t *testing.T) {
			prog := workload.MustGenerate(bench, workload.Config{Seed: 42, Scale: 0.25})
			m, err := prog.NewMemory()
			if err != nil {
				t.Fatal(err)
			}
			p, err := New(DefaultConfig(), m, prog.Entry)
			if err != nil {
				t.Fatal(err)
			}
			lockstep(t, p, prog)
			retired := p.RunRetired(30_000, 400_000)
			if t.Failed() {
				return
			}
			if p.Status() != StatusRunning {
				kind, pc, addr := p.Exception()
				t.Fatalf("pipeline stopped: %v (exc=%v pc=%#x addr=%#x)",
					p.Status(), kind, pc, addr)
			}
			if retired < 30_000 {
				t.Fatalf("retired only %d instructions", retired)
			}
		})
	}
}

func TestPipelineIPCReasonable(t *testing.T) {
	p := newBenchPipeline(t, workload.Gzip, DefaultConfig())
	p.RunRetired(50_000, 500_000)
	ipc := p.Stats().IPC()
	if ipc < 0.3 || ipc > 6 {
		t.Errorf("IPC = %.2f, outside plausible [0.3, 6]", ipc)
	}
	t.Logf("gzip IPC = %.2f", ipc)
}

func TestBranchPredictionAccuracy(t *testing.T) {
	// Section 3.2.2 relies on >95%-ish predictor accuracy on these
	// workloads. Measure the committed misprediction ratio.
	for _, bench := range []workload.Benchmark{workload.Gzip, workload.GCC} {
		p := newBenchPipeline(t, bench, DefaultConfig())
		p.RunRetired(60_000, 600_000)
		s := p.Stats()
		if s.CondBranches == 0 {
			t.Fatalf("%s: no conditional branches retired", bench)
		}
		// Conditional-branch accuracy is what the paper's >95% claim
		// covers; indirect jump-table dispatch (gcc/gap interpreters)
		// legitimately mispredicts more against a plain BTB.
		condRate := float64(s.CommittedCondMispredicts) / float64(s.CondBranches)
		t.Logf("%s: branches=%d cond=%d resolvedMisp=%d committedCondRate=%.3f hc=%d",
			bench, s.Branches, s.CondBranches, s.Mispredicts, condRate, s.HCMispredicts)
		if condRate > 0.12 {
			t.Errorf("%s: committed conditional misprediction rate %.3f too high", bench, condRate)
		}
	}
}

func TestHaltStopsPipeline(t *testing.T) {
	b := workload.NewBuilder("halt")
	b.LoadImm(1, 7)
	b.Emit(isa.Inst{Op: isa.OpHALT})
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := prog.NewMemory()
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(DefaultConfig(), m, prog.Entry)
	if err != nil {
		t.Fatal(err)
	}
	p.RunCycles(1000)
	if p.Status() != StatusHalted {
		t.Fatalf("status = %v, want halted", p.Status())
	}
	if p.ArchReg(1) != 7 {
		t.Errorf("r1 = %d, want 7", p.ArchReg(1))
	}
}

func TestExceptionStopsPipeline(t *testing.T) {
	b := workload.NewBuilder("fault")
	b.LoadImm(1, 1<<40) // unmapped
	b.Load(isa.OpLDQ, 2, 0, 1)
	b.Emit(isa.Inst{Op: isa.OpHALT})
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := prog.NewMemory()
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(DefaultConfig(), m, prog.Entry)
	if err != nil {
		t.Fatal(err)
	}
	p.RunCycles(1000)
	if p.Status() != StatusExcepted {
		t.Fatalf("status = %v, want excepted", p.Status())
	}
	kind, _, addr := p.Exception()
	if kind != arch.ExcAccessFault || addr != 1<<40 {
		t.Errorf("exception = %v addr=%#x", kind, addr)
	}
}

func TestWrongPathFaultIsSquashed(t *testing.T) {
	// A load behind a mispredicted branch may access unmapped memory; its
	// fault must vanish when the branch resolves. Program: r1=0; beq r1
	// skips over a wild load. A cold predictor may predict fall-through
	// into the wild load; either way the committed stream never faults.
	b := workload.NewBuilder("wrongpath")
	b.LoadImm(1, 0)
	b.LoadImm(5, 1<<40)
	b.Label("loop")
	b.Branch(isa.OpBEQ, 1, "skip") // always taken
	b.Load(isa.OpLDQ, 2, 0, 5)     // wild load on the not-taken path
	b.Label("skip")
	b.OpLit(isa.OpADDQ, 3, 1, 3)
	b.OpLit(isa.OpCMPLT, 3, 200, 4)
	b.Branch(isa.OpBNE, 4, "loop")
	b.Emit(isa.Inst{Op: isa.OpHALT})
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := prog.NewMemory()
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(DefaultConfig(), m, prog.Entry)
	if err != nil {
		t.Fatal(err)
	}
	p.RunCycles(100_000)
	if p.Status() != StatusHalted {
		t.Fatalf("status = %v, want halted (wrong-path fault leaked?)", p.Status())
	}
	if p.ArchReg(3) != 200 {
		t.Errorf("r3 = %d, want 200", p.ArchReg(3))
	}
}

func TestStoreLoadForwarding(t *testing.T) {
	// A store immediately followed by a load of the same address must
	// forward in-flight.
	b := workload.NewBuilder("fwd")
	b.LoadImm(1, workload.DataBase)
	b.LoadImm(2, 0xABCD)
	b.Store(isa.OpSTQ, 2, 0, 1)
	b.Load(isa.OpLDQ, 3, 0, 1)
	b.OpLit(isa.OpADDQ, 3, 1, 4)
	b.Emit(isa.Inst{Op: isa.OpHALT})
	b.AllocData("d", make([]byte, 64), 0x3) // RW
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := prog.NewMemory()
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(DefaultConfig(), m, prog.Entry)
	if err != nil {
		t.Fatal(err)
	}
	p.RunCycles(1000)
	if p.Status() != StatusHalted {
		t.Fatalf("status = %v", p.Status())
	}
	if p.ArchReg(3) != 0xABCD || p.ArchReg(4) != 0xABCE {
		t.Errorf("r3=%#x r4=%#x", p.ArchReg(3), p.ArchReg(4))
	}
}

func TestDeterminism(t *testing.T) {
	a := newBenchPipeline(t, workload.Parser, DefaultConfig())
	b := newBenchPipeline(t, workload.Parser, DefaultConfig())
	for i := 0; i < 50; i++ {
		a.RunCycles(200)
		b.RunCycles(200)
		if a.State().Hash() != b.State().Hash() {
			t.Fatalf("state diverged at cycle %d", a.Cycles())
		}
	}
}

func TestCloneIndependenceAndEquality(t *testing.T) {
	p := newBenchPipeline(t, workload.Vortex, DefaultConfig())
	p.RunCycles(5000)
	c := p.Clone()
	if p.State().Hash() != c.State().Hash() {
		t.Fatal("clone hash differs immediately")
	}
	// Running both forward keeps them identical.
	for i := 0; i < 20; i++ {
		p.RunCycles(100)
		c.RunCycles(100)
		if p.State().Hash() != c.State().Hash() {
			t.Fatalf("clone diverged after %d cycles", (i+1)*100)
		}
	}
	// Mutating the clone must not touch the original.
	before := p.State().Hash()
	ref, _ := c.State().NthBit(12345)
	c.State().Flip(ref)
	if p.State().Hash() != before {
		t.Fatal("flipping clone state mutated original")
	}
}

func TestStateSpaceGeometry(t *testing.T) {
	p := newBenchPipeline(t, workload.Gzip, DefaultConfig())
	s := p.State()
	total := s.TotalBits(false)
	latches := s.TotalBits(true)
	if total < 20_000 || total > 80_000 {
		t.Errorf("total injectable bits = %d, expected tens of thousands (paper: ~46k)", total)
	}
	if latches == 0 || latches >= total {
		t.Errorf("latch bits = %d of %d", latches, total)
	}
	t.Logf("state space: %d bits total, %d latch bits, %d elements",
		total, latches, len(s.Elements()))

	// NthBit covers the full range and agrees with prefix sums.
	if _, ok := s.NthBit(total); ok {
		t.Error("NthBit(total) should be out of range")
	}
	ref, ok := s.NthBit(0)
	if !ok || ref.Elem != 0 || ref.Bit != 0 {
		t.Errorf("NthBit(0) = %+v", ref)
	}
	ref, ok = s.NthBit(total - 1)
	if !ok || ref.Elem != len(s.Elements())-1 {
		t.Errorf("NthBit(last) = %+v want last element", ref)
	}
}

func TestStateFlipChangesHashAndIsReversible(t *testing.T) {
	p := newBenchPipeline(t, workload.Gzip, DefaultConfig())
	p.RunCycles(2000)
	s := p.State()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		n := uint64(rng.Int63n(int64(s.TotalBits(false))))
		ref, ok := s.NthBit(n)
		if !ok {
			t.Fatalf("NthBit(%d) failed", n)
		}
		before := s.Hash()
		was := s.Peek(ref)
		s.Flip(ref)
		if s.Peek(ref) == was {
			t.Fatal("flip did not change the bit")
		}
		if s.Hash() == before {
			t.Fatalf("hash unchanged after flipping %s bit %d",
				s.Elements()[ref.Elem].Name, ref.Bit)
		}
		s.Flip(ref)
		if s.Hash() != before {
			t.Fatal("double flip did not restore the hash")
		}
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	p := newBenchPipeline(t, workload.Bzip2, DefaultConfig())
	p.RunCycles(3000)
	snap := p.State().Snapshot()
	h := p.State().Hash()
	// Corrupt a swath of state.
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 50; i++ {
		ref, _ := p.State().NthBit(uint64(rng.Int63n(int64(p.State().TotalBits(false)))))
		p.State().Flip(ref)
	}
	if p.State().Hash() == h {
		t.Fatal("corruption had no effect")
	}
	p.State().Restore(snap)
	if p.State().Hash() != h {
		t.Fatal("restore did not reproduce the snapshot")
	}
}

func TestRandomFlipsNeverPanic(t *testing.T) {
	// The cardinal robustness property: ANY single bit flip anywhere in
	// the state space, at any point in execution, must leave the
	// simulator panic-free (the machine may misbehave arbitrarily — that
	// is the point — but must keep simulating).
	rng := rand.New(rand.NewSource(7))
	base := newBenchPipeline(t, workload.MCF, DefaultConfig())
	base.RunCycles(3000)
	for trial := 0; trial < 60; trial++ {
		p := base.Clone()
		p.RunCycles(uint64(rng.Intn(500)))
		if p.Status() != StatusRunning {
			t.Fatalf("golden clone stopped: %v", p.Status())
		}
		n := uint64(rng.Int63n(int64(p.State().TotalBits(false))))
		ref, _ := p.State().NthBit(n)
		p.State().Flip(ref)
		p.RunCycles(2000) // any status is acceptable; no panics allowed
	}
}

func TestLatchOnlySampling(t *testing.T) {
	p := newBenchPipeline(t, workload.Gzip, DefaultConfig())
	s := p.State()
	// Walk all elements: NthBit over the latch-only prefix... latches and
	// SRAMs interleave, so instead verify classification coverage.
	var latchBits, sramBits uint64
	for _, e := range s.Elements() {
		switch e.Kind {
		case KindLatch:
			latchBits += uint64(e.Bits)
		case KindSRAM:
			sramBits += uint64(e.Bits)
		default:
			t.Fatalf("element %s has no kind", e.Name)
		}
	}
	if latchBits != s.TotalBits(true) {
		t.Errorf("latch bit accounting: %d vs %d", latchBits, s.TotalBits(true))
	}
	if sramBits == 0 {
		t.Error("no SRAM bits registered")
	}
}

func TestResetRestoresArchState(t *testing.T) {
	prog := workload.MustGenerate(workload.Gzip, workload.Config{Seed: 42, Scale: 0.25})
	m, err := prog.NewMemory()
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(DefaultConfig(), m, prog.Entry)
	if err != nil {
		t.Fatal(err)
	}
	p.RunRetired(5000, 100_000)
	regs := p.ArchRegs()
	pc := p.CommitPC()
	retired := p.Retired()

	// Run further, then roll back.
	p.RunRetired(3000, 100_000)
	p.Reset(regs, pc)
	if p.Status() != StatusRunning {
		t.Fatalf("status after reset = %v", p.Status())
	}
	got := p.ArchRegs()
	if got != regs {
		t.Fatal("architectural registers not restored")
	}
	if p.CommitPC() != pc {
		t.Fatalf("commit pc = %#x want %#x", p.CommitPC(), pc)
	}
	// The machine must be able to continue executing after reset.
	p.RunRetired(1000, 50_000)
	if p.Retired() == retired {
		t.Fatal("pipeline did not make progress after reset")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.WatchdogCycles = 0
	if _, err := New(bad, nil, 0); err == nil {
		t.Error("zero watchdog accepted")
	}
	bad = DefaultConfig()
	bad.Confidence = ConfidenceKind(99)
	if _, err := New(bad, nil, 0); err == nil {
		t.Error("bad confidence kind accepted")
	}
	bad = DefaultConfig()
	bad.ALULatency = 0
	if _, err := New(bad, nil, 0); err == nil {
		t.Error("zero ALU latency accepted")
	}
	bad = DefaultConfig()
	bad.PredictorBits = 0
	if _, err := New(bad, nil, 0); err == nil {
		t.Error("zero predictor bits accepted")
	}
}

func TestStatusStrings(t *testing.T) {
	for _, s := range []Status{StatusRunning, StatusHalted, StatusExcepted, StatusDeadlocked, Status(0)} {
		if s.String() == "" {
			t.Errorf("empty string for status %d", s)
		}
	}
}

func TestCtlPackUnpackRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ops := []isa.Op{isa.OpADDQ, isa.OpLDQ, isa.OpSTL, isa.OpBEQ, isa.OpBR,
		isa.OpJSR, isa.OpRET, isa.OpCMOVEQ, isa.OpSLL, isa.OpMULQV, isa.OpLDA}
	for i := 0; i < 5000; i++ {
		inst := isa.Inst{
			Op:   ops[rng.Intn(len(ops))],
			Ra:   isa.Reg(rng.Intn(32)),
			Rb:   isa.Reg(rng.Intn(32)),
			Rc:   isa.Reg(rng.Intn(32)),
			Disp: int32(rng.Intn(1<<21)) - 1<<20,
		}
		if rng.Intn(2) == 0 {
			inst.UseLit = true
			inst.Lit = uint8(rng.Uint32())
		}
		got := unpackCtl(packCtl(inst))
		if got != inst {
			t.Fatalf("ctl round trip: %+v -> %+v", inst, got)
		}
	}
	// Corrupted opcodes decode to OpInvalid rather than panicking.
	if unpackCtl(63).Op != isa.OpInvalid {
		t.Error("undefined opcode should unpack to OpInvalid")
	}
	if !ctlIsFetchFault(packFetchFault()) {
		t.Error("fetch-fault marker lost")
	}
}
