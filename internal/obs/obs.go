// Package obs is the simulator's observability layer: a registry of named
// counters, gauges, histograms and timers, plus a bounded trace ring for
// discrete events. Campaigns, the pipeline and the ReStore processor write
// into it; cmd/restore-sim and examples read it out as JSON, CSV or
// Prometheus text.
//
// Two properties shape the whole design:
//
//   - Inertness. Instrumentation must never change simulation results: a
//     campaign with metrics on is byte-identical to one with metrics off.
//     Simulator packages therefore only ever *write* (Inc/Add/Set/Observe);
//     reads (Value/Count/Snapshot/...) are reserved for cmd/, examples/ and
//     tests, and the restorelint determinism analyzer flags reads inside
//     simulator packages.
//
//   - Nil safety. Every handle and the registry itself are usable as nil:
//     all write methods on nil receivers are no-ops. Configs thread a
//     single `Sink` (a *Registry, possibly nil) with zero branches at the
//     instrumentation sites, so "metrics off" costs one nil check per
//     operation and nothing else.
//
// Wall-clock reads are confined to this package (the `now` variable), which
// is why obs is deliberately excluded from restorelint's determinism scope:
// timers measure the host, never the simulated machine.
package obs

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// now is the package's single wall-clock source; tests override it to make
// timer arithmetic deterministic.
var now = time.Now

// Counter is a monotonically increasing integer metric. Safe for concurrent
// use (campaign workers increment without coordination); a nil Counter
// ignores writes.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count. Simulator packages must not call this
// (restorelint's determinism analyzer enforces it); it exists for exporters
// and tests.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-write-wins float metric (e.g. trials/sec). A nil Gauge
// ignores writes.
type Gauge struct {
	bits atomic.Uint64
}

// Set records v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last value set (0 if never set). Exporter/test-only,
// like Counter.Value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histBuckets covers non-negative integer observations in power-of-two
// buckets: bucket i counts values v with 2^(i-1) <= v < 2^i (bucket 0 is
// exactly v == 0), saturating at the last bucket. 40 buckets reach ~5.5e11,
// comfortably beyond any occupancy, depth or latency the simulator emits.
const histBuckets = 40

// Hist is a fixed-bucket power-of-two histogram of non-negative integers
// (queue depths, occupancies, rollback distances). Concurrency-safe; a nil
// Hist ignores writes.
type Hist struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// Observe records one value. Negative values clamp to zero.
func (h *Hist) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	i := bits.Len64(uint64(v)) // 0 -> 0, 1 -> 1, 2..3 -> 2, 4..7 -> 3, ...
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations. Exporter/test-only.
func (h *Hist) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values. Exporter/test-only.
func (h *Hist) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Buckets returns cumulative bucket counts with their upper bounds
// (Prometheus `le` semantics; the final bound is +Inf). Exporter/test-only.
func (h *Hist) Buckets() []BucketCount {
	if h == nil {
		return nil
	}
	out := make([]BucketCount, 0, histBuckets)
	cum := int64(0)
	for i := 0; i < histBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 && i > 0 {
			continue // sparse export: only materialised buckets
		}
		cum += n
		out = append(out, BucketCount{Le: bucketBound(i), Count: cum})
	}
	return out
}

// bucketBound returns the inclusive upper bound of bucket i.
func bucketBound(i int) float64 {
	if i == 0 {
		return 0
	}
	if i >= histBuckets-1 {
		return math.Inf(1)
	}
	return float64(uint64(1)<<uint(i)) - 1
}

// BucketCount is one cumulative histogram bucket: the count of observations
// with value <= Le.
type BucketCount struct {
	Le    float64 `json:"le"`
	Count int64   `json:"count"`
}

// Timer accumulates wall-clock durations (worker busy time, campaign wall
// time). Only Observe/Start touch the clock, and only through this
// package's `now`. A nil Timer ignores writes.
type Timer struct {
	count atomic.Int64
	ns    atomic.Int64
}

// Observe records one duration.
func (t *Timer) Observe(d time.Duration) {
	if t == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	t.count.Add(1)
	t.ns.Add(int64(d))
}

// Start returns a running Stopwatch whose Stop records into t. Start on a
// nil Timer returns an inert Stopwatch (Stop returns 0 without reading the
// clock), so `defer sink.Timer(...).Start().Stop()` style code needs no
// guard.
func (t *Timer) Start() Stopwatch {
	if t == nil {
		return Stopwatch{}
	}
	return Stopwatch{t: t, start: now()}
}

// Count returns the number of recorded durations. Exporter/test-only.
func (t *Timer) Count() int64 {
	if t == nil {
		return 0
	}
	return t.count.Load()
}

// Total returns the accumulated duration. Exporter/test-only.
func (t *Timer) Total() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.ns.Load())
}

// Stopwatch is a single in-flight Timer measurement.
type Stopwatch struct {
	t     *Timer
	start time.Time
}

// Stop records the elapsed time into the parent Timer and returns it. On an
// inert Stopwatch (from a nil Timer) it returns 0.
func (s Stopwatch) Stop() time.Duration {
	if s.t == nil {
		return 0
	}
	d := now().Sub(s.start)
	s.t.Observe(d)
	return d
}

// Registry is a namespace of metrics. Lookups auto-create: asking for a
// counter that does not exist yet registers it, so instrumented code never
// pre-declares anything. Handle creation takes a mutex; the returned
// handles themselves are lock-free atomics. All methods are nil-safe and
// return nil handles (whose writes are no-ops), which is what makes a nil
// Sink equivalent to "metrics off".
type Registry struct {
	mu       sync.Mutex
	kinds    map[string]string
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Hist
	timers   map[string]*Timer
}

// Sink is what instrumented code accepts: a possibly-nil metric registry.
// It is an alias (not an interface) so nil threads through configs and
// struct fields with zero adaptation.
type Sink = *Registry

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		kinds:    make(map[string]string),
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Hist),
		timers:   make(map[string]*Timer),
	}
}

// claim records name as the given kind, panicking on a cross-kind clash —
// that is always a programming error, and silently aliasing would corrupt
// exports.
func (r *Registry) claim(name, kind string) {
	if prev, ok := r.kinds[name]; ok && prev != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, prev, kind))
	}
	r.kinds[name] = kind
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name, "counter")
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name, "gauge")
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Hist returns the named histogram, creating it on first use.
func (r *Registry) Hist(name string) *Hist {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name, "histogram")
	h := r.hists[name]
	if h == nil {
		h = &Hist{}
		r.hists[name] = h
	}
	return h
}

// Timer returns the named timer, creating it on first use.
func (r *Registry) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name, "timer")
	t := r.timers[name]
	if t == nil {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}

// names returns all registered metric names, sorted — the deterministic
// iteration order every exporter uses.
func (r *Registry) names() []string {
	out := make([]string, 0, len(r.kinds))
	for name := range r.kinds {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
