package inject

import (
	"strings"
	"time"

	"repro/internal/obs"
)

// Campaign telemetry: write-only accounting recorded AFTER the trial fan-out
// completes, on the dispatching goroutine. Classifying outcomes post-hoc
// (rather than inside workers) keeps the hot path untouched and the metric
// updates trivially deterministic; and because nothing here is ever read
// back by campaign code, results with a sink attached are byte-identical to
// results without one (TestCampaignMetricsInert, and the restorelint
// determinism analyzer's obs-read check, hold that line).

// metricName lowercases a category label into a metric-name fragment:
// "DMR detect" -> "dmr_detect".
func metricName(category string) string {
	s := strings.ToLower(category)
	s = strings.Map(func(r rune) rune {
		if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' {
			return r
		}
		return '_'
	}, s)
	return s
}

// recordCampaignCommon emits the telemetry both campaign types share.
func recordCampaignCommon(sink obs.Sink, prefix string, trials int, truncated bool, elapsed time.Duration) {
	sink.Counter(prefix + "_trials_total").Add(int64(trials))
	if truncated {
		sink.Counter(prefix + "_truncated_total").Inc()
	}
	if secs := elapsed.Seconds(); secs > 0 {
		sink.Gauge(prefix + "_trials_per_second").Set(float64(trials) / secs)
	}
}

// recordVMTelemetry accounts one finished (possibly truncated) VM campaign.
func recordVMTelemetry(sink obs.Sink, r *VMResult, truncated bool, elapsed time.Duration) {
	if sink == nil {
		return
	}
	const prefix = "campaign_vm"
	recordCampaignCommon(sink, prefix, len(r.Trials), truncated, elapsed)
	for _, t := range r.Trials {
		cat := t.CategoryAt(r.Config.Window).String()
		sink.Counter(prefix + "_outcome_" + metricName(cat) + "_total").Inc()
	}
}

// recordUArchTelemetry accounts one finished (possibly truncated)
// microarchitectural campaign. Outcomes are classified at the campaign's
// observation window under the perfect detector — the raw upset taxonomy,
// before any checkpoint-interval policy is applied.
func recordUArchTelemetry(sink obs.Sink, r *UArchResult, truncated bool, elapsed time.Duration) {
	if sink == nil {
		return
	}
	const prefix = "campaign_uarch"
	recordCampaignCommon(sink, prefix, len(r.Trials), truncated, elapsed)
	sink.Counter(prefix + "_points_total").Add(int64(len(r.Trials) / max(1, r.Config.TrialsPerPoint)))
	for _, t := range r.Trials {
		cat := t.CategoryAt(r.Config.WindowCycles, DetectorPerfect).String()
		sink.Counter(prefix + "_outcome_" + metricName(cat) + "_total").Inc()
	}
}
