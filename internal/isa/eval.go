package isa

// EvalOperate computes the result of an ALU/multiply operation given its two
// operand values (b already resolved from register or literal). The overflow
// flag is meaningful only for the trapping variants. This single evaluator is
// shared by the architectural simulator and the pipeline execute stage so
// that the two can never disagree on semantics.
func EvalOperate(op Op, a, b uint64) (result uint64, overflow bool) {
	switch op {
	case OpADDQ:
		return a + b, false
	case OpSUBQ:
		return a - b, false
	case OpMULQ:
		return a * b, false
	case OpADDL:
		return uint64(int64(int32(uint32(a) + uint32(b)))), false
	case OpSUBL:
		return uint64(int64(int32(uint32(a) - uint32(b)))), false
	case OpADDQV:
		r := a + b
		ov := (^(a ^ b) & (a ^ r) & (1 << 63)) != 0
		return r, ov
	case OpSUBQV:
		r := a - b
		ov := ((a ^ b) & (a ^ r) & (1 << 63)) != 0
		return r, ov
	case OpMULQV:
		return a * b, signedMulOverflows(int64(a), int64(b))
	case OpCMPEQ:
		return boolWord(a == b), false
	case OpCMPLT:
		return boolWord(int64(a) < int64(b)), false
	case OpCMPLE:
		return boolWord(int64(a) <= int64(b)), false
	case OpCMPULT:
		return boolWord(a < b), false
	case OpCMPULE:
		return boolWord(a <= b), false
	case OpAND:
		return a & b, false
	case OpBIS:
		return a | b, false
	case OpXOR:
		return a ^ b, false
	case OpBIC:
		return a &^ b, false
	case OpORNOT:
		return a | ^b, false
	case OpSLL:
		return a << (b & 63), false
	case OpSRL:
		return a >> (b & 63), false
	case OpSRA:
		return uint64(int64(a) >> (b & 63)), false
	}
	return 0, false
}

func signedMulOverflows(a, b int64) bool {
	if a == 0 || b == 0 {
		return false
	}
	r := a * b
	return r/b != a
}

// EvalCondBranch evaluates a conditional branch's condition against the
// value of its Ra operand.
func EvalCondBranch(op Op, a uint64) bool {
	switch op {
	case OpBEQ:
		return a == 0
	case OpBNE:
		return a != 0
	case OpBLT:
		return int64(a) < 0
	case OpBLE:
		return int64(a) <= 0
	case OpBGT:
		return int64(a) > 0
	case OpBGE:
		return int64(a) >= 0
	}
	return false
}

// EvalCondMove reports whether a conditional move's condition holds.
func EvalCondMove(op Op, a uint64) bool {
	switch op {
	case OpCMOVEQ:
		return a == 0
	case OpCMOVNE:
		return a != 0
	}
	return false
}

func boolWord(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
