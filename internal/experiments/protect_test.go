package experiments

import (
	"strings"
	"testing"

	"repro/internal/harden"
	"repro/internal/inject"
	"repro/internal/protect"
	"repro/internal/workload"
)

func TestMeasuredCoverage(t *testing.T) {
	pol := &protect.Policy{Name: "x", Kind: protect.KindStaticBudget,
		Assign: []protect.Assignment{{Elem: "fetchPC", Prot: harden.Parity}}}
	quiet := func(tr inject.UArchTrial) inject.UArchTrial {
		if tr.DeadlockLat == 0 {
			tr.DeadlockLat = inject.Never
		}
		if tr.ExcLat == 0 {
			tr.ExcLat = inject.Never
		}
		if tr.CFVLat == 0 {
			tr.CFVLat = inject.Never
		}
		return tr
	}
	trials := []inject.UArchTrial{
		quiet(inject.UArchTrial{Elem: "fetchPC", ArchCorrupt: true}), // failing, covered
		quiet(inject.UArchTrial{Elem: "rob.pc", DeadlockLat: 3}),     // failing, uncovered
		quiet(inject.UArchTrial{Elem: "fetchPC", Masked: true}),      // not failing
		quiet(inject.UArchTrial{Elem: "rob.pc", FaultStuck: true}),   // stuck in dead state: not failing
		quiet(inject.UArchTrial{Elem: "fetchPC", ExcLat: 7}),         // failing, covered
		quiet(inject.UArchTrial{Elem: "prf.val", CFVLat: 2}),         // failing, uncovered
	}
	if got, want := MeasuredCoverage(trials, pol), 2.0/4.0; got != want {
		t.Errorf("MeasuredCoverage = %v, want %v", got, want)
	}
	if got := MeasuredCoverage(nil, pol); got != 0 {
		t.Errorf("MeasuredCoverage(nil) = %v", got)
	}
	if got := MeasuredCoverage(trials, protect.None()); got != 0 {
		t.Errorf("coverage of empty policy = %v", got)
	}
}

// A bigger budget can only add protected elements (the greedy scan sees a
// larger remaining budget at every rank), so coverage — predicted and
// measured — is monotone along the sweep, and spending never overshoots.
func TestBudgetSweepMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test is slow")
	}
	budgets := []uint64{0, 200, 800, 1664, 4096}
	res, err := BudgetSweep(Options{
		TrialFactor: 0.1,
		Benchmarks:  []workload.Benchmark{"gzip", "mcf"},
	}, budgets)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(budgets) {
		t.Fatalf("%d points for %d budgets", len(res.Points), len(budgets))
	}
	for i, pt := range res.Points {
		if pt.BudgetBits != budgets[i] {
			t.Errorf("point %d: budget %d, want %d", i, pt.BudgetBits, budgets[i])
		}
		if pt.SpentBits > 2*pt.BudgetBits { // two benchmarks share the table
			t.Errorf("budget %d: suite spent %d", pt.BudgetBits, pt.SpentBits)
		}
		if i == 0 {
			continue
		}
		prev := res.Points[i-1]
		if pt.Predicted < prev.Predicted {
			t.Errorf("predicted coverage fell from %v to %v at budget %d", prev.Predicted, pt.Predicted, pt.BudgetBits)
		}
		if pt.Measured < prev.Measured {
			t.Errorf("measured coverage fell from %v to %v at budget %d", prev.Measured, pt.Measured, pt.BudgetBits)
		}
	}
	if z := res.Points[0]; z.Measured != 0 || z.Predicted != 0 || z.SpentBits != 0 {
		t.Errorf("zero budget bought coverage: %+v", z)
	}
	if !strings.Contains(res.Table, "budget") {
		t.Errorf("sweep table malformed:\n%s", res.Table)
	}
}

// TestProtectAcceptance is the PR's acceptance gate, at the calibration's
// paper scale: for every benchmark, the policy derived from static
// analysis must measure at least the hand-picked placement's coverage at
// equal check-bit budget, and its static prediction must land within ±10
// percentage points of the measurement.
func TestProtectAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale campaigns are slow")
	}
	res, err := ProtectCompare(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(workload.Benchmarks()) {
		t.Fatalf("%d rows, want one per benchmark", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Failing == 0 {
			t.Errorf("%s: no failing baseline trials; comparison is vacuous", r.Bench)
			continue
		}
		if r.Static < r.LHF {
			t.Errorf("%s: static-derived coverage %.1f%% below hand-picked %.1f%% at equal budget",
				r.Bench, 100*r.Static, 100*r.LHF)
		}
		if d := r.Predicted - r.Static; d < -0.10 || d > 0.10 {
			t.Errorf("%s: predicted %.1f%% is %+.1fpp off measured %.1f%% (gate ±10pp)",
				r.Bench, 100*r.Predicted, 100*d, 100*r.Static)
		}
		if r.SpentBits > r.BudgetBits {
			t.Errorf("%s: spent %d check bits over the %d budget", r.Bench, r.SpentBits, r.BudgetBits)
		}
		if r.Policy == nil || r.Policy.Kind != protect.KindStaticBudget {
			t.Errorf("%s: malformed policy %+v", r.Bench, r.Policy)
		}
	}
	if !strings.Contains(res.Table, "mean") {
		t.Errorf("comparison table missing mean row:\n%s", res.Table)
	}
}
