package inject

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/workload"
)

// The inertness contract: attaching an obs sink must not change campaign
// results in any way — same trials, bit for bit — while the registry ends up
// with accounting that matches the result exactly.

func TestCampaignMetricsInert(t *testing.T) {
	t.Run("uarch", func(t *testing.T) {
		bare, err := RunUArch(smallUArch(workload.Gzip))
		if err != nil {
			t.Fatal(err)
		}
		reg := obs.NewRegistry()
		cfg := smallUArch(workload.Gzip)
		cfg.Obs = reg
		instrumented, err := RunUArch(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(bare.Trials, instrumented.Trials) {
			t.Fatal("uarch trials differ with a sink attached")
		}
		assertCampaignAccounting(t, reg, "campaign_uarch", len(instrumented.Trials))
		if got := reg.Counter("campaign_uarch_points_total").Value(); got != int64(cfg.Points) {
			t.Errorf("points_total = %d, want %d", got, cfg.Points)
		}
		// The master pipeline carries the instrumentation through warm-up
		// and golden recording, so the occupancy histograms must be live.
		if m, ok := reg.Snapshot().Get("pipeline_rob_occupancy"); !ok || m.Count == 0 {
			t.Error("pipeline occupancy histogram empty on instrumented campaign")
		}
	})

	t.Run("vm", func(t *testing.T) {
		bare, err := RunVM(smallVM(workload.Gzip, false))
		if err != nil {
			t.Fatal(err)
		}
		reg := obs.NewRegistry()
		cfg := smallVM(workload.Gzip, false)
		cfg.Obs = reg
		instrumented, err := RunVM(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(bare.Trials, instrumented.Trials) {
			t.Fatal("vm trials differ with a sink attached")
		}
		assertCampaignAccounting(t, reg, "campaign_vm", len(instrumented.Trials))
	})
}

// assertCampaignAccounting checks the invariants every finished campaign's
// telemetry must satisfy: the trial counter matches the result, the
// per-outcome counters partition it, and the wall timer ran exactly once.
func assertCampaignAccounting(t *testing.T, reg *obs.Registry, prefix string, trials int) {
	t.Helper()
	if got := reg.Counter(prefix + "_trials_total").Value(); got != int64(trials) {
		t.Errorf("%s_trials_total = %d, want %d", prefix, got, trials)
	}
	var outcomes int64
	for _, m := range reg.Snapshot().Metrics {
		if strings.HasPrefix(m.Name, prefix+"_outcome_") {
			outcomes += int64(m.Value)
		}
	}
	if outcomes != int64(trials) {
		t.Errorf("%s outcome counters sum to %d, want %d", prefix, outcomes, trials)
	}
	if got := reg.Timer(prefix + "_wall").Count(); got != 1 {
		t.Errorf("%s_wall timer count = %d, want 1", prefix, got)
	}
	if reg.Gauge(prefix+"_trials_per_second").Value() <= 0 {
		t.Errorf("%s_trials_per_second not recorded", prefix)
	}
	if got := reg.Counter(prefix + "_truncated_total").Value(); got != 0 {
		t.Errorf("%s_truncated_total = %d on a complete campaign", prefix, got)
	}
}

// A parallel campaign additionally accounts for the clone pool and the task
// queue; the worker-busy timer must cover every trial.
func TestParallelCampaignPoolAccounting(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := smallUArch(workload.Gzip)
	cfg.Workers = 4
	cfg.Obs = reg
	r, err := RunUArch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	trials := int64(len(r.Trials))
	hits := reg.Counter("campaign_uarch_clone_pool_hits_total").Value()
	misses := reg.Counter("campaign_uarch_clone_pool_misses_total").Value()
	if hits+misses != trials {
		t.Errorf("pool hits(%d)+misses(%d) = %d, want %d trials", hits, misses, hits+misses, trials)
	}
	if misses == 0 {
		t.Error("a fresh pool cannot start with zero misses")
	}
	if got := reg.Timer("campaign_uarch_worker_busy").Count(); got != trials {
		t.Errorf("worker_busy count = %d, want %d", got, trials)
	}
	if reg.Hist("campaign_uarch_queue_depth").Count() != trials {
		t.Errorf("queue_depth observations = %d, want %d",
			reg.Hist("campaign_uarch_queue_depth").Count(), trials)
	}
}
