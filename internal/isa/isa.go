// Package isa defines the Alpha-like 64-bit RISC instruction set used by the
// ReStore reproduction: architectural registers, instruction formats, opcode
// and function-code assignments, and the decoded instruction representation.
//
// The instruction set is a faithful subset of what the paper's processor
// model executes (Section 4.1): integer operate, load/store, and branch
// instructions, including the overflow-trapping arithmetic variants that feed
// the paper's "arithmetic overflow" exception symptom. Floating point and
// synchronising memory operations are deliberately omitted, as in the paper.
package isa

import "fmt"

// Architectural register file geometry.
const (
	// NumRegs is the number of architectural integer registers.
	NumRegs = 32
	// WordBits is the width of an architectural register in bits.
	WordBits = 64
)

// Reg names an architectural integer register (0..31).
type Reg uint8

// Conventional register assignments, mirroring the Alpha calling convention.
const (
	RegV0   Reg = 0  // function return value
	RegRA   Reg = 26 // return address
	RegGP   Reg = 29 // global pointer
	RegSP   Reg = 30 // stack pointer
	RegZero Reg = 31 // hardwired zero
)

// String renders a register in Alpha-style "rN" notation.
func (r Reg) String() string {
	if r == RegZero {
		return "zero"
	}
	return fmt.Sprintf("r%d", uint8(r))
}

// Op identifies a decoded operation. The zero value is OpInvalid so that a
// corrupted or undecodable instruction word naturally decodes to an invalid
// operation, which the pipeline turns into an illegal-instruction exception.
type Op uint8

// Decoded operations.
const (
	OpInvalid Op = iota

	// Memory format.
	OpLDA  // rc <- rb + disp (address calculation, no memory access)
	OpLDAH // rc <- rb + disp<<16
	OpLDL  // rc <- sext32(mem32[rb+disp])
	OpLDQ  // rc <- mem64[rb+disp]
	OpSTL  // mem32[rb+disp] <- ra
	OpSTQ  // mem64[rb+disp] <- ra

	// Branch format.
	OpBR  // unconditional, ra <- return address
	OpBSR // subroutine call, ra <- return address
	OpBEQ
	OpBNE
	OpBLT
	OpBLE
	OpBGT
	OpBGE

	// Jump (memory format with hint).
	OpJMP // rc <- return address, pc <- rb
	OpJSR
	OpRET

	// Integer arithmetic.
	OpADDQ
	OpSUBQ
	OpMULQ
	OpADDL // 32-bit add, result sign-extended
	OpSUBL
	OpADDQV // overflow-trapping variants
	OpSUBQV
	OpMULQV

	// Comparisons (result 0/1).
	OpCMPEQ
	OpCMPLT
	OpCMPLE
	OpCMPULT
	OpCMPULE

	// Logical.
	OpAND
	OpBIS // inclusive or
	OpXOR
	OpBIC // and-not
	OpORNOT

	// Shifts.
	OpSLL
	OpSRL
	OpSRA

	// Conditional moves.
	OpCMOVEQ // if ra == 0 then rc <- rb
	OpCMOVNE

	// Miscellaneous.
	OpHALT
	OpNOP

	numOps // sentinel; keep last
)

var opNames = [numOps]string{
	OpInvalid: "invalid",
	OpLDA:     "lda", OpLDAH: "ldah", OpLDL: "ldl", OpLDQ: "ldq",
	OpSTL: "stl", OpSTQ: "stq",
	OpBR: "br", OpBSR: "bsr", OpBEQ: "beq", OpBNE: "bne",
	OpBLT: "blt", OpBLE: "ble", OpBGT: "bgt", OpBGE: "bge",
	OpJMP: "jmp", OpJSR: "jsr", OpRET: "ret",
	OpADDQ: "addq", OpSUBQ: "subq", OpMULQ: "mulq",
	OpADDL: "addl", OpSUBL: "subl",
	OpADDQV: "addq/v", OpSUBQV: "subq/v", OpMULQV: "mulq/v",
	OpCMPEQ: "cmpeq", OpCMPLT: "cmplt", OpCMPLE: "cmple",
	OpCMPULT: "cmpult", OpCMPULE: "cmpule",
	OpAND: "and", OpBIS: "bis", OpXOR: "xor", OpBIC: "bic", OpORNOT: "ornot",
	OpSLL: "sll", OpSRL: "srl", OpSRA: "sra",
	OpCMOVEQ: "cmoveq", OpCMOVNE: "cmovne",
	OpHALT: "halt", OpNOP: "nop",
}

// String returns the mnemonic for the operation.
func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Class partitions operations by the pipeline resources they use.
type Class uint8

// Operation classes.
const (
	ClassInvalid Class = iota
	ClassALU           // integer operate, address calc, conditional move
	ClassMul           // integer multiply (longer latency)
	ClassBranch        // control transfer
	ClassLoad
	ClassStore
	ClassHalt
	ClassNop
)

// classOf maps each operation to its class.
var classOf = [numOps]Class{
	OpInvalid: ClassInvalid,
	OpLDA:     ClassALU, OpLDAH: ClassALU,
	OpLDL: ClassLoad, OpLDQ: ClassLoad,
	OpSTL: ClassStore, OpSTQ: ClassStore,
	OpBR: ClassBranch, OpBSR: ClassBranch,
	OpBEQ: ClassBranch, OpBNE: ClassBranch,
	OpBLT: ClassBranch, OpBLE: ClassBranch,
	OpBGT: ClassBranch, OpBGE: ClassBranch,
	OpJMP: ClassBranch, OpJSR: ClassBranch, OpRET: ClassBranch,
	OpADDQ: ClassALU, OpSUBQ: ClassALU, OpMULQ: ClassMul,
	OpADDL: ClassALU, OpSUBL: ClassALU,
	OpADDQV: ClassALU, OpSUBQV: ClassALU, OpMULQV: ClassMul,
	OpCMPEQ: ClassALU, OpCMPLT: ClassALU, OpCMPLE: ClassALU,
	OpCMPULT: ClassALU, OpCMPULE: ClassALU,
	OpAND: ClassALU, OpBIS: ClassALU, OpXOR: ClassALU,
	OpBIC: ClassALU, OpORNOT: ClassALU,
	OpSLL: ClassALU, OpSRL: ClassALU, OpSRA: ClassALU,
	OpCMOVEQ: ClassALU, OpCMOVNE: ClassALU,
	OpHALT: ClassHalt, OpNOP: ClassNop,
}

// ClassOf returns the resource class for op.
func ClassOf(op Op) Class {
	if int(op) < len(classOf) {
		return classOf[op]
	}
	return ClassInvalid
}

// ValidOp reports whether the numeric value names a defined operation. The
// pipeline uses it to detect control words corrupted into undefined opcodes.
func ValidOp(op Op) bool { return op > OpInvalid && op < numOps }

// OpBits is the number of bits needed to store an Op in a packed control
// word.
const OpBits = 6

// Inst is a decoded instruction. Fields not used by the operation's format
// are zero. Register fields follow the Alpha convention: Ra and Rb are
// sources for operate instructions, Rc is the destination; memory operations
// use Rb as the base, Ra as the load destination or store source.
type Inst struct {
	Op     Op
	Ra     Reg
	Rb     Reg
	Rc     Reg
	Disp   int32 // sign-extended displacement (memory: 16-bit, branch: 21-bit)
	Lit    uint8 // 8-bit literal for operate format when UseLit is set
	UseLit bool
}

// IsBranch reports whether the instruction transfers control.
func (i Inst) IsBranch() bool { return ClassOf(i.Op) == ClassBranch }

// IsCondBranch reports whether the instruction is a conditional branch.
func (i Inst) IsCondBranch() bool {
	switch i.Op {
	case OpBEQ, OpBNE, OpBLT, OpBLE, OpBGT, OpBGE:
		return true
	}
	return false
}

// IsIndirect reports whether the branch target comes from a register.
func (i Inst) IsIndirect() bool {
	switch i.Op {
	case OpJMP, OpJSR, OpRET:
		return true
	}
	return false
}

// IsCall reports whether the instruction pushes a return address (for RAS
// maintenance in the front end).
func (i Inst) IsCall() bool { return i.Op == OpBSR || i.Op == OpJSR }

// IsReturn reports whether the instruction pops a return address.
func (i Inst) IsReturn() bool { return i.Op == OpRET }

// IsLoad reports whether the instruction reads memory.
func (i Inst) IsLoad() bool { return ClassOf(i.Op) == ClassLoad }

// IsStore reports whether the instruction writes memory.
func (i Inst) IsStore() bool { return ClassOf(i.Op) == ClassStore }

// IsMem reports whether the instruction accesses memory.
func (i Inst) IsMem() bool { return i.IsLoad() || i.IsStore() }

// MemBytes returns the access size in bytes for memory operations (0
// otherwise).
func (i Inst) MemBytes() uint64 {
	switch i.Op {
	case OpLDL, OpSTL:
		return 4
	case OpLDQ, OpSTQ:
		return 8
	}
	return 0
}

// TrapsOverflow reports whether the instruction raises an arithmetic
// overflow exception on signed overflow.
func (i Inst) TrapsOverflow() bool {
	switch i.Op {
	case OpADDQV, OpSUBQV, OpMULQV:
		return true
	}
	return false
}

// Dest returns the destination register and whether the instruction writes
// one. Writes to RegZero are discarded by the machine but still reported
// here; callers that care should check for RegZero.
func (i Inst) Dest() (Reg, bool) {
	switch ClassOf(i.Op) {
	case ClassALU, ClassMul:
		if i.Op == OpLDA || i.Op == OpLDAH {
			return i.Ra, true
		}
		return i.Rc, true
	case ClassLoad:
		return i.Ra, true
	case ClassBranch:
		switch i.Op {
		case OpBR, OpBSR:
			return i.Ra, true
		case OpJMP, OpJSR, OpRET:
			return i.Rc, true
		}
	}
	return 0, false
}

// Srcs returns the source registers read by the instruction. The second
// return value counts how many entries of the array are valid.
func (i Inst) Srcs() ([2]Reg, int) {
	var s [2]Reg
	switch ClassOf(i.Op) {
	case ClassALU, ClassMul:
		if i.Op == OpLDA || i.Op == OpLDAH {
			s[0] = i.Rb
			return s, 1
		}
		s[0] = i.Ra
		if i.UseLit {
			return s, 1
		}
		s[1] = i.Rb
		return s, 2
	case ClassLoad:
		s[0] = i.Rb
		return s, 1
	case ClassStore:
		s[0] = i.Rb // base
		s[1] = i.Ra // data
		return s, 2
	case ClassBranch:
		if i.IsCondBranch() {
			s[0] = i.Ra
			return s, 1
		}
		if i.IsIndirect() {
			s[0] = i.Rb
			return s, 1
		}
	}
	return s, 0
}

// UseKind classifies how an instruction consumes a source register. Static
// vulnerability analysis (internal/staticvuln) maps each kind to the soft
// error symptom the paper's Section 3 taxonomy predicts for a corruption
// flowing into that use: address bases surface as memory exceptions in the
// sparse address space, condition and target registers as control-flow
// violations, store data as memory corruption.
type UseKind uint8

// Use kinds.
const (
	// UseOperand is a plain ALU/data operand; corruption propagates into
	// the result value.
	UseOperand UseKind = iota + 1
	// UseAddrBase is a load/store address base register.
	UseAddrBase
	// UseStoreData is the value a store writes to memory.
	UseStoreData
	// UseCondition decides a conditional branch or conditional move.
	UseCondition
	// UseTarget supplies an indirect branch target (JMP/JSR/RET).
	UseTarget
)

// RegUse is one classified source-register read.
type RegUse struct {
	Reg  Reg
	Kind UseKind
}

// Uses returns the instruction's source-register reads with their use kinds.
// It covers the same registers as Srcs but additionally says what each read
// feeds. Reads of RegZero are included; callers that care should filter.
func (i Inst) Uses() []RegUse {
	switch ClassOf(i.Op) {
	case ClassALU, ClassMul:
		if i.Op == OpLDA || i.Op == OpLDAH {
			return []RegUse{{i.Rb, UseOperand}}
		}
		if i.Op == OpCMOVEQ || i.Op == OpCMOVNE {
			return []RegUse{{i.Ra, UseCondition}, {i.Rb, UseOperand}}
		}
		if i.UseLit {
			return []RegUse{{i.Ra, UseOperand}}
		}
		return []RegUse{{i.Ra, UseOperand}, {i.Rb, UseOperand}}
	case ClassLoad:
		return []RegUse{{i.Rb, UseAddrBase}}
	case ClassStore:
		return []RegUse{{i.Rb, UseAddrBase}, {i.Ra, UseStoreData}}
	case ClassBranch:
		if i.IsCondBranch() {
			return []RegUse{{i.Ra, UseCondition}}
		}
		if i.IsIndirect() {
			return []RegUse{{i.Rb, UseTarget}}
		}
	}
	return nil
}

// String renders the instruction in assembler-like notation.
func (i Inst) String() string {
	switch {
	case i.Op == OpNOP || i.Op == OpHALT:
		return i.Op.String()
	case i.Op == OpInvalid:
		return "invalid"
	case i.IsMem() || i.Op == OpLDA || i.Op == OpLDAH:
		dst := i.Ra
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, dst, i.Disp, i.Rb)
	case i.IsIndirect():
		return fmt.Sprintf("%s %s, (%s)", i.Op, i.Rc, i.Rb)
	case i.IsBranch():
		return fmt.Sprintf("%s %s, %d", i.Op, i.Ra, i.Disp)
	case i.UseLit:
		return fmt.Sprintf("%s %s, #%d, %s", i.Op, i.Ra, i.Lit, i.Rc)
	default:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, i.Ra, i.Rb, i.Rc)
	}
}
