// Package fixture holds registration patterns stateregister must accept.
package fixture

type StateSpace struct{}

func (s *StateSpace) Register(name string, kind, class int, word *uint64, bits int) {}

func (s *StateSpace) BindArray(dst *[]uint64, n int) int { return 0 }

func (s *StateSpace) RegisterPacked(name string, kind, class, off, bits int) {}

type queue struct {
	slots [2]uint64
	head  uint64
	// Timing bookkeeping is exempted with a justification; the legacy
	// statecheck spelling on doneAt must keep working after migration.
	stamp  uint64 //restorelint:ignore stateregister -- scheduling metadata, not a latch
	doneAt uint64 //statecheck:ignore — completion timing
	busy   bool   // non-uint64 fields carry no obligation
}

func (q *queue) register(s *StateSpace) {
	for i := range q.slots {
		s.Register("q.slots", 0, 0, &q.slots[i], 64)
	}
	s.Register("q.head", 0, 0, &q.head, 1)
}

// packedQueue uses the two-phase packed registration: BindArray aliases the
// slice onto the packed backing, RegisterPacked declares its words. The slice
// field must satisfy the obligation through BindArray alone.
type packedQueue struct {
	pc   []uint64
	word []uint64
	head uint64
}

func (q *packedQueue) register(s *StateSpace) {
	pc := s.BindArray(&q.pc, 4)
	word := s.BindArray(&q.word, 4)
	for i := 0; i < 4; i++ {
		s.RegisterPacked("pq.pc", 0, 0, pc+i, 48)
		s.RegisterPacked("pq.word", 0, 0, word+i, 32)
	}
	s.Register("pq.head", 0, 0, &q.head, 2)
}

// plain has no register method and no registered fields: no obligation.
type plain struct {
	a uint64
	b [8]uint64
	c []uint64
}
