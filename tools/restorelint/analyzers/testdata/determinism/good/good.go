// Package fixture holds determinism-clean idioms the analyzer must accept.
package fixture

import (
	"math/rand"
	"sort"
	"time"

	"repro/internal/obs"
)

// Seeded generators are reproducible; constructors are allowed.
func seededRNG(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(100)
}

// The collect-then-sort idiom restores a deterministic order.
func sortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Per-key map writes are order-independent: each key is touched once.
func normalize(m map[string]float64, n float64) {
	for k := range m {
		m[k] /= n
	}
}

// Loop-local accumulation never leaks iteration order.
func localAccum(m map[string]float64) bool {
	any := false
	for _, v := range m {
		ok := v > 0.5
		if ok {
			any = true
		}
	}
	return any
}

// The escape hatch: a justified suppression silences the diagnostic.
func timestamp() time.Time {
	return time.Now() //restorelint:ignore determinism -- log decoration only, never fed back into simulation
}

// Pre-drawn values may cross goroutine boundaries; only the generator
// itself must stay on the dispatching goroutine.
func preDrawnAcrossGoroutines(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	picks := make([]int, 8)
	for i := range picks {
		picks[i] = rng.Intn(100)
	}
	done := make(chan struct{})
	go func() {
		_ = picks[0]
		close(done)
	}()
	<-done
}

// Writing telemetry is the instrumentation itself: handle claims and every
// write method are allowed anywhere. Only reading it back is flagged.
func instrument(reg *obs.Registry, tr *obs.Trace) {
	c := reg.Counter("trials_total")
	c.Inc()
	c.Add(3)
	reg.Gauge("trials_per_second").Set(412.5)
	reg.Hist("rob_occupancy").Observe(42)
	sw := reg.Timer("worker_busy").Start()
	sw.Stop()
	tr.Emit("branch", obs.F("cycle", 1))
}

// A generator created inside the goroutine is goroutine-local.
func goroutineLocalRNG(seed int64) {
	done := make(chan struct{})
	go func() {
		local := rand.New(rand.NewSource(seed))
		_ = local.Intn(100)
		close(done)
	}()
	<-done
}
