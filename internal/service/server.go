package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"
)

// Server wraps a Service in the HTTP API:
//
//	POST /api/v1/jobs           submit a JobSpec, returns the Job
//	GET  /api/v1/jobs           list all jobs
//	GET  /api/v1/jobs/{id}      one job's state and progress
//	POST /api/v1/jobs/{id}/cancel
//	GET  /api/v1/jobs/{id}/events   SSE stream of job snapshots
//	GET  /api/v1/healthz        liveness
//	GET  /metrics               Prometheus text exposition
//
// Errors are a JSON envelope {"error": "..."} with a 4xx/5xx status.
type Server struct {
	svc *Service
	hs  *http.Server
	ln  net.Listener
	err chan error
}

// NewServer builds the HTTP front-end for a service.
func NewServer(svc *Service) *Server {
	s := &Server{svc: svc, err: make(chan error, 1)}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("POST /api/v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /api/v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /api/v1/healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.hs = &http.Server{Handler: mux}
	return s
}

// Start binds addr (":0" picks a free port), publishes the bound address in
// the service root for client discovery, and serves in the background.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	bound := ln.Addr().String()
	if err := s.svc.st.writeAddr(bound); err != nil {
		ln.Close()
		return "", err
	}
	go func() {
		if err := s.hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.err <- err
		}
		close(s.err)
	}()
	return bound, nil
}

// Wait blocks until the HTTP server stops, returning any serve error.
func (s *Server) Wait() error {
	err, ok := <-s.err
	if !ok {
		return nil
	}
	return err
}

// Shutdown stops gracefully: the service drains its shards and re-queues the
// running job, then the listener closes and the address file is withdrawn.
func (s *Server) Shutdown() error {
	svcErr := s.svc.Close()
	s.hs.Close() // SSE streams hold connections open; a drain would never end
	s.svc.st.removeAddr()
	if err := s.Wait(); err != nil {
		return err
	}
	return svcErr
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding job spec: %w", err))
		return
	}
	j, err := s.svc.Submit(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, j)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.svc.Jobs()})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.svc.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %s", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, j)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, err := s.svc.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, j)
}

// handleEvents streams job snapshots as server-sent events: one `state`
// event whenever the job's state or trial count changes, ending after the
// terminal snapshot (or on disconnect/daemon shutdown).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.svc.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %s", id))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	emit := func(j *Job) {
		data, _ := json.Marshal(j)
		fmt.Fprintf(w, "event: state\ndata: %s\n\n", data)
		fl.Flush()
	}
	emit(j)
	lastState, lastTrials := j.State, j.TrialsDone
	tick := time.NewTicker(250 * time.Millisecond)
	defer tick.Stop()
	for !lastState.Terminal() {
		select {
		case <-r.Context().Done():
			return
		case <-s.svc.ShuttingDown():
			return
		case <-tick.C:
		}
		j, ok := s.svc.Job(id)
		if !ok {
			return
		}
		if j.State != lastState || j.TrialsDone != lastTrials {
			emit(j)
			lastState, lastTrials = j.State, j.TrialsDone
		}
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "root": s.svc.Root()})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if err := s.svc.cfg.Obs.Snapshot().WritePrometheus(w); err != nil {
		writeError(w, http.StatusInternalServerError, err)
	}
}
