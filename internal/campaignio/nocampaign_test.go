package campaignio

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// MergeScan pointed at nothing must say so with ErrNoCampaign and an
// expected-vs-found message, never a bare scan failure.

func TestMergeScanZeroShards(t *testing.T) {
	for _, dirs := range [][]string{nil, {}} {
		_, _, err := MergeScan(dirs)
		if !errors.Is(err, ErrNoCampaign) {
			t.Fatalf("MergeScan(%v) = %v, want ErrNoCampaign", dirs, err)
		}
		if !strings.Contains(err.Error(), "no shard directories") {
			t.Fatalf("error does not say what was expected: %v", err)
		}
	}
}

func TestMergeScanNonexistentDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "never-created")
	_, _, err := MergeScan([]string{dir})
	if !errors.Is(err, ErrNoCampaign) {
		t.Fatalf("MergeScan(nonexistent) = %v, want ErrNoCampaign", err)
	}
	for _, want := range []string{dir, "directory does not exist", "1 of 1"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
}

func TestMergeScanEmptyDir(t *testing.T) {
	dir := t.TempDir()
	_, _, err := MergeScan([]string{dir})
	if !errors.Is(err, ErrNoCampaign) {
		t.Fatalf("MergeScan(empty dir) = %v, want ErrNoCampaign", err)
	}
	if !strings.Contains(err.Error(), "directory is empty") {
		t.Fatalf("error does not describe the empty directory: %v", err)
	}
}

func TestMergeScanMissingManifestListsContents(t *testing.T) {
	// One healthy shard, one directory holding stray files but no manifest:
	// the error must identify the broken directory and what it holds, and
	// only that directory.
	good := t.TempDir()
	writeJournal(t, good, testManifest(10, 0, 2), []int{0, 2, 4}, 1)
	bad := t.TempDir()
	for _, name := range []string{"journal.restj", "notes.txt"} {
		if err := os.WriteFile(filepath.Join(bad, name), []byte("stray"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	_, _, err := MergeScan([]string{good, bad})
	if !errors.Is(err, ErrNoCampaign) {
		t.Fatalf("MergeScan = %v, want ErrNoCampaign", err)
	}
	msg := err.Error()
	for _, want := range []string{"1 of 2", bad, "journal.restj", "notes.txt"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error %q does not mention %q", msg, want)
		}
	}
	if strings.Contains(msg, good) {
		t.Fatalf("error %q blames the healthy shard %s", msg, good)
	}
}

func TestMergeScanIgnoresStrayFilesBesideManifest(t *testing.T) {
	// Extra files next to a valid manifest+journal must not break the merge.
	a := t.TempDir()
	writeJournal(t, a, testManifest(4, 0, 2), []int{0, 2}, 1)
	b := t.TempDir()
	writeJournal(t, b, testManifest(4, 1, 2), []int{1, 3}, 1)
	if err := os.WriteFile(filepath.Join(a, "metrics.prom"), []byte("# stray"), 0o644); err != nil {
		t.Fatal(err)
	}
	man, payloads, err := MergeScan([]string{a, b})
	if err != nil {
		t.Fatalf("MergeScan with stray file: %v", err)
	}
	if man.ShardCount != 1 || len(payloads) != 4 {
		t.Fatalf("merged %d payloads (shard count %d), want 4 (1)", len(payloads), man.ShardCount)
	}
}

func TestListCampaigns(t *testing.T) {
	root := t.TempDir()
	if ids, err := ListCampaigns(filepath.Join(root, "missing")); err != nil || len(ids) != 0 {
		t.Fatalf("ListCampaigns(nonexistent) = %v, %v; want empty, nil", ids, err)
	}
	if ids, err := ListCampaigns(root); err != nil || len(ids) != 0 {
		t.Fatalf("ListCampaigns(empty) = %v, %v; want empty, nil", ids, err)
	}
	writeJournal(t, filepath.Join(root, "uarch-gzip-aa"), testManifest(4, 0, 1), []int{0}, 1)
	writeJournal(t, filepath.Join(root, "vm-mcf-bb"), testManifest(4, 0, 1), []int{0}, 1)
	// Directories without manifests and plain files are not campaigns.
	if err := os.MkdirAll(filepath.Join(root, "golden-images"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "serve.addr"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	ids, err := ListCampaigns(root)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"uarch-gzip-aa", "vm-mcf-bb"}
	if len(ids) != len(want) || ids[0] != want[0] || ids[1] != want[1] {
		t.Fatalf("ListCampaigns = %v, want %v", ids, want)
	}
}
