//go:build race

package service

// raceEnabled narrows the widest lifecycle tests when the race detector's
// ~10x slowdown applies: the kill/restart/resume test covers one benchmark
// under -race and the full suite otherwise.
const raceEnabled = true
