package workload

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"repro/internal/isa"
	"repro/internal/mem"
)

// A kernel contributes three things to a benchmark program: a one-time setup
// (data segments plus code that initialises its base register), a loop body
// that the composer may instantiate several times per outer iteration, and
// optional out-of-line functions (for the call-tree kernel).
//
// Kernels own a control block at the start of their data segment. Slot 0
// persists state across outer iterations (list cursor, PRNG state); slot 1
// receives result stores. Result slots are overwritten every outer
// iteration, which is the mechanism behind software-level masking of
// corrupted accumulators: a wrong value written there is replaced by a
// correct one on the next pass, exactly the "eventually overwritten"
// masking the paper measures.
type kernel interface {
	name() string
	setup(b *Builder, rng *rand.Rand, base isa.Reg)
	body(b *Builder, base isa.Reg, uniq func(string) string)
	functions(b *Builder)
}

// Scratch registers shared by all kernel bodies. Every body writes a
// scratch register before reading it, so values left over from earlier
// bodies are dead — another deliberate source of logical masking.
const (
	rS0 = isa.Reg(1)
	rS1 = isa.Reg(2)
	rS2 = isa.Reg(3)
	rS3 = isa.Reg(4)
	rS4 = isa.Reg(5)
	rS5 = isa.Reg(6)
	rS6 = isa.Reg(7)
	rS7 = isa.Reg(8)
)

const (
	slotState  = 0  // persistent kernel state
	slotResult = 8  // per-iteration result store
	slotAux    = 16 // second persistent slot
	dataStart  = 64 // control block size
)

func quadBytes(vals []uint64) []byte {
	buf := make([]byte, len(vals)*8)
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[i*8:], v)
	}
	return buf
}

// ---------------------------------------------------------------------------
// arraysum: streaming loads feeding an accumulator, with a dead "prefetch"
// load per iteration (paper Section 3.1 names prefetch results as a masking
// source). Models the scan phases of bzip2/gzip.

type arraySum struct {
	elems int // number of quadwords, must be even
}

func (k *arraySum) name() string { return "arraysum" }

func (k *arraySum) setup(b *Builder, rng *rand.Rand, base isa.Reg) {
	vals := make([]uint64, k.elems)
	for i := range vals {
		vals[i] = rng.Uint64() >> 16 // modest magnitudes
	}
	data := make([]byte, dataStart)
	data = append(data, quadBytes(vals)...)
	addr := b.AllocData(k.name(), data, mem.PermRW)
	b.LoadImm(base, addr)
}

func (k *arraySum) body(b *Builder, base isa.Reg, uniq func(string) string) {
	loop := uniq("loop")
	b.OpLit(isa.OpADDQ, base, dataStart, rS0) // ptr
	b.LoadImm(rS1, uint64(k.elems/2))         // counter
	b.Op(isa.OpBIS, isa.RegZero, isa.RegZero, rS2)
	b.Label(loop)
	b.Load(isa.OpLDQ, rS3, 0, rS0)
	b.Op(isa.OpADDQ, rS2, rS3, rS2)
	b.Load(isa.OpLDQ, rS4, 8, rS0)
	b.Op(isa.OpADDQ, rS2, rS4, rS2)
	b.Load(isa.OpLDQ, rS5, 16, rS0) // dead prefetch: rS5 unused
	b.OpLit(isa.OpADDQ, rS0, 16, rS0)
	b.OpLit(isa.OpSUBQ, rS1, 1, rS1)
	b.Branch(isa.OpBGT, rS1, loop)
	b.Store(isa.OpSTQ, rS2, slotResult, base)
}

func (k *arraySum) functions(*Builder) {}

// ---------------------------------------------------------------------------
// bitops: register-resident hash mixing (multiplies, shifts, xors) over a
// persistent seed. Models the compression arithmetic of bzip2/gzip and gap's
// multi-precision kernels. The masked AND steps make high-bit corruptions
// logically maskable.

type bitOps struct {
	iters int
}

func (k *bitOps) name() string { return "bitops" }

func (k *bitOps) setup(b *Builder, rng *rand.Rand, base isa.Reg) {
	data := make([]byte, dataStart)
	binary.LittleEndian.PutUint64(data[slotAux:], rng.Uint64()|1)
	addr := b.AllocData(k.name(), data, mem.PermRW)
	b.LoadImm(base, addr)
}

func (k *bitOps) body(b *Builder, base isa.Reg, uniq func(string) string) {
	loop := uniq("loop")
	// The working seed is a pure function of the iteration counter and
	// the stored constant: a corrupted seed (or a corrupted result store)
	// is recomputed correctly on the next outer iteration, so such
	// faults are ultimately masked — the transient-value behaviour real
	// compression inner loops exhibit.
	b.Load(isa.OpLDQ, rS0, slotAux, base) // per-program constant
	b.Op(isa.OpXOR, rS0, RegIter, rS0)
	b.LoadImm(rS1, uint64(k.iters))
	b.LoadImm(rS2, 0x9E3779B97F4A7C15) // golden-ratio multiplier
	b.Label(loop)
	b.Op(isa.OpMULQ, rS0, rS2, rS3)
	b.OpLit(isa.OpSRL, rS3, 29, rS4)
	b.Op(isa.OpXOR, rS3, rS4, rS0)
	b.OpLit(isa.OpSLL, rS0, 3, rS5)
	b.Op(isa.OpADDQ, rS0, rS5, rS0)
	b.OpLit(isa.OpAND, rS0, 0xFF, rS6) // narrow use: masks high corruption
	b.Op(isa.OpADDQ, rS6, rS0, rS0)
	b.OpLit(isa.OpSUBQ, rS1, 1, rS1)
	b.Branch(isa.OpBGT, rS1, loop)
	b.Store(isa.OpSTQ, rS0, slotState, base)
}

func (k *bitOps) functions(*Builder) {}

// ---------------------------------------------------------------------------
// ptrchase: walks a randomly-permuted circular linked list, the signature
// access pattern of mcf and parser. A corrupted cursor or next pointer is
// dereferenced within a handful of instructions, usually landing in the
// vast unmapped portion of the address space — the paper's dominant
// exception symptom path.

type ptrChase struct {
	nodes int // 16-byte nodes
	steps int // list steps per body
}

func (k *ptrChase) name() string { return "ptrchase" }

func (k *ptrChase) setup(b *Builder, rng *rand.Rand, base isa.Reg) {
	perm := rng.Perm(k.nodes)
	data := make([]byte, dataStart+k.nodes*16)
	// Reserve space first; compute node addresses after AllocData since we
	// need the base. AllocData copies our slice header, so writing into
	// data afterwards still works.
	addr := b.AllocData(k.name(), data, mem.PermRW)
	nodeAddr := func(i int) uint64 { return addr + dataStart + uint64(i)*16 }
	for i := 0; i < k.nodes; i++ {
		cur, next := perm[i], perm[(i+1)%k.nodes]
		binary.LittleEndian.PutUint64(data[dataStart+cur*16:], nodeAddr(next))
		binary.LittleEndian.PutUint64(data[dataStart+cur*16+8:], rng.Uint64()>>32)
	}
	binary.LittleEndian.PutUint64(data[slotState:], nodeAddr(perm[0]))
	b.LoadImm(base, addr)
}

func (k *ptrChase) body(b *Builder, base isa.Reg, uniq func(string) string) {
	loop := uniq("loop")
	b.Load(isa.OpLDQ, rS0, slotState, base) // cursor
	b.LoadImm(rS1, uint64(k.steps))
	b.Op(isa.OpBIS, isa.RegZero, isa.RegZero, rS2) // sum
	b.Label(loop)
	b.Load(isa.OpLDQ, rS3, 8, rS0) // value
	b.Op(isa.OpADDQ, rS2, rS3, rS2)
	b.Load(isa.OpLDQ, rS0, 0, rS0) // follow next
	b.OpLit(isa.OpSUBQ, rS1, 1, rS1)
	b.Branch(isa.OpBGT, rS1, loop)
	b.Store(isa.OpSTQ, rS0, slotState, base)
	b.Store(isa.OpSTQ, rS2, slotResult, base)
}

func (k *ptrChase) functions(*Builder) {}

// ---------------------------------------------------------------------------
// branchy: data-dependent branches over an array whose contents are biased,
// so the direction predictor achieves the >95 % accuracy the paper assumes
// while still suffering genuine (false-positive-relevant) mispredictions.
// Models gcc/parser scanning loops.

type branchy struct {
	elems int
	bias  float64 // probability an element takes the common path
}

func (k *branchy) name() string { return "branchy" }

func (k *branchy) setup(b *Builder, rng *rand.Rand, base isa.Reg) {
	vals := make([]uint64, k.elems)
	for i := range vals {
		v := rng.Uint64() >> 33 << 1 // even
		if rng.Float64() > k.bias {
			v |= 1 // rare path
		}
		vals[i] = v
	}
	data := make([]byte, dataStart)
	data = append(data, quadBytes(vals)...)
	addr := b.AllocData(k.name(), data, mem.PermRW)
	b.LoadImm(base, addr)
}

func (k *branchy) body(b *Builder, base isa.Reg, uniq func(string) string) {
	loop, rare, join := uniq("loop"), uniq("rare"), uniq("join")
	b.OpLit(isa.OpADDQ, base, dataStart, rS0)
	b.LoadImm(rS1, uint64(k.elems))
	b.Op(isa.OpBIS, isa.RegZero, isa.RegZero, rS2) // sum
	b.Op(isa.OpBIS, isa.RegZero, isa.RegZero, rS3) // rare count
	b.Label(loop)
	b.Load(isa.OpLDQ, rS4, 0, rS0)
	b.OpLit(isa.OpAND, rS4, 1, rS5)
	b.Branch(isa.OpBNE, rS5, rare)
	b.Op(isa.OpADDQ, rS2, rS4, rS2) // common path
	b.Branch(isa.OpBR, isa.RegZero, join)
	b.Label(rare)
	b.Op(isa.OpSUBQ, rS2, rS4, rS2)
	b.OpLit(isa.OpADDQ, rS3, 1, rS3)
	b.Label(join)
	b.OpLit(isa.OpADDQ, rS0, 8, rS0)
	b.OpLit(isa.OpSUBQ, rS1, 1, rS1)
	b.Branch(isa.OpBGT, rS1, loop)
	b.Store(isa.OpSTQ, rS2, slotResult, base)
	b.Store(isa.OpSTQ, rS3, slotAux, base)
}

func (k *branchy) functions(*Builder) {}

// ---------------------------------------------------------------------------
// hashtab: hashes keys into computed bucket addresses and updates the
// buckets, the pattern of vortex/gap symbol tables. Store and load addresses
// are data-dependent, so corrupted values become wrong addresses (mem-addr
// symptoms or faults) rather than just wrong data.

type hashTab struct {
	keys    int
	buckets int // power of two
}

func (k *hashTab) name() string { return "hashtab" }

func (k *hashTab) setup(b *Builder, rng *rand.Rand, base isa.Reg) {
	keys := make([]uint64, k.keys)
	for i := range keys {
		keys[i] = rng.Uint64()
	}
	data := make([]byte, dataStart)
	data = append(data, quadBytes(keys)...)
	// Table of 16-byte buckets follows the keys.
	data = append(data, make([]byte, k.buckets*16)...)
	addr := b.AllocData(k.name(), data, mem.PermRW)
	b.LoadImm(base, addr)
}

func (k *hashTab) body(b *Builder, base isa.Reg, uniq func(string) string) {
	loop := uniq("loop")
	tableOff := uint64(dataStart + k.keys*8)
	b.OpLit(isa.OpADDQ, base, dataStart, rS0) // key cursor
	b.LoadImm(rS1, uint64(k.keys))
	b.LoadImm(rS2, 0x9E3779B97F4A7C15)
	b.LoadImm(rS7, tableOff) // table offset from base
	b.Op(isa.OpADDQ, base, rS7, rS7)
	b.Label(loop)
	b.Load(isa.OpLDQ, rS3, 0, rS0) // key
	b.Op(isa.OpMULQ, rS3, rS2, rS4)
	b.OpLit(isa.OpSRL, rS4, 48, rS4)
	b.LoadImm(rS5, uint64(k.buckets-1))
	b.Op(isa.OpAND, rS4, rS5, rS4)
	b.OpLit(isa.OpSLL, rS4, 4, rS4)
	b.Op(isa.OpADDQ, rS7, rS4, rS4) // bucket address
	b.Load(isa.OpLDQ, rS6, 8, rS4)  // previous signature (read-modify)
	b.Op(isa.OpXOR, rS6, rS3, rS6)
	b.OpLit(isa.OpAND, rS6, 0x7F, rS6)
	b.Op(isa.OpADDQ, rS6, rS3, rS6)
	b.Store(isa.OpSTQ, rS6, 8, rS4) // idempotent given the same key set
	b.Store(isa.OpSTQ, rS3, 0, rS4) // tag
	b.OpLit(isa.OpADDQ, rS0, 8, rS0)
	b.OpLit(isa.OpSUBQ, rS1, 1, rS1)
	b.Branch(isa.OpBGT, rS1, loop)
}

func (k *hashTab) functions(*Builder) {}

// ---------------------------------------------------------------------------
// calltree: a three-deep call tree with stack-saved return addresses,
// exercising BSR/RET, the return-address stack, and making link-register
// values live data whose corruption becomes a control-flow violation.
// Models gcc/gap/vortex call-intensive phases. Functions are emitted once;
// every instance shares them.

type callTree struct {
	emitted bool
	fOuter  string
	fMid    string
	fLeaf   string
}

func (k *callTree) name() string { return "calltree" }

func (k *callTree) setup(b *Builder, rng *rand.Rand, base isa.Reg) {
	data := make([]byte, dataStart)
	binary.LittleEndian.PutUint64(data[slotAux:], rng.Uint64()>>32)
	addr := b.AllocData(k.name(), data, mem.PermRW)
	b.LoadImm(base, addr)
	k.fOuter = "calltree_outer"
	k.fMid = "calltree_mid"
	k.fLeaf = "calltree_leaf"
}

func (k *callTree) body(b *Builder, base isa.Reg, uniq func(string) string) {
	// The argument is a pure function of the iteration counter and a
	// stored constant, so corrupted call results wash out on the next
	// outer iteration.
	b.Load(isa.OpLDQ, rS0, slotAux, base)
	b.Op(isa.OpADDQ, rS0, RegIter, rS0)
	b.Call(k.fOuter)
	b.Store(isa.OpSTQ, rS0, slotResult, base)
}

func (k *callTree) functions(b *Builder) {
	if k.emitted {
		return
	}
	k.emitted = true

	// outer(x): x = mid(x) + mid(x^magic); uses stack frame.
	b.Label(k.fOuter)
	b.Emit(isa.Inst{Op: isa.OpLDA, Ra: isa.RegSP, Rb: isa.RegSP, Disp: -32})
	b.Store(isa.OpSTQ, isa.RegRA, 0, isa.RegSP)
	b.Store(isa.OpSTQ, rS4, 8, isa.RegSP)
	b.Op(isa.OpBIS, rS0, rS0, rS4) // save x
	b.Call(k.fMid)
	b.Store(isa.OpSTQ, rS0, 16, isa.RegSP) // first result
	b.OpLit(isa.OpXOR, rS4, 0x5A, rS0)
	b.Call(k.fMid)
	b.Load(isa.OpLDQ, rS1, 16, isa.RegSP)
	b.Op(isa.OpADDQ, rS0, rS1, rS0)
	b.Load(isa.OpLDQ, rS4, 8, isa.RegSP)
	b.Load(isa.OpLDQ, isa.RegRA, 0, isa.RegSP)
	b.Emit(isa.Inst{Op: isa.OpLDA, Ra: isa.RegSP, Rb: isa.RegSP, Disp: 32})
	b.Ret()

	// mid(x): leaf(x*3+1) with its own frame.
	b.Label(k.fMid)
	b.Emit(isa.Inst{Op: isa.OpLDA, Ra: isa.RegSP, Rb: isa.RegSP, Disp: -16})
	b.Store(isa.OpSTQ, isa.RegRA, 0, isa.RegSP)
	b.OpLit(isa.OpMULQ, rS0, 3, rS0)
	b.OpLit(isa.OpADDQ, rS0, 1, rS0)
	b.Call(k.fLeaf)
	b.Load(isa.OpLDQ, isa.RegRA, 0, isa.RegSP)
	b.Emit(isa.Inst{Op: isa.OpLDA, Ra: isa.RegSP, Rb: isa.RegSP, Disp: 16})
	b.Ret()

	// leaf(x): pure ALU mixing, no frame.
	b.Label(k.fLeaf)
	b.OpLit(isa.OpSRL, rS0, 7, rS1)
	b.Op(isa.OpXOR, rS0, rS1, rS0)
	b.OpLit(isa.OpSLL, rS0, 2, rS1)
	b.Op(isa.OpADDQ, rS0, rS1, rS0)
	b.OpLit(isa.OpAND, rS0, 0xFF, rS1) // dead-ish narrow value
	b.Op(isa.OpBIS, rS0, rS0, rS0)
	b.Ret()
}

// ---------------------------------------------------------------------------
// switchy: jump-table dispatch through data-dependent indirect jumps, the
// interpreter/dispatch pattern of gap and gcc. The jump table lives in data
// and is filled with code addresses at link time.

type switchy struct {
	elems    int
	emitted  bool
	caseBase string
}

func (k *switchy) name() string { return "switchy" }

const switchyCases = 8

func (k *switchy) setup(b *Builder, rng *rand.Rand, base isa.Reg) {
	vals := make([]uint64, k.elems)
	for i := range vals {
		// Biased case distribution: case 0 is common, like a dominant
		// opcode in an interpreter loop.
		if rng.Float64() < 0.5 {
			vals[i] = 0
		} else {
			vals[i] = uint64(rng.Intn(switchyCases))
		}
	}
	data := make([]byte, dataStart)
	data = append(data, quadBytes(vals)...)
	jumpTableOff := uint64(len(data))
	data = append(data, make([]byte, switchyCases*8)...)
	addr := b.AllocData(k.name(), data, mem.PermRW)
	k.caseBase = fmt.Sprintf("switchy_%x_case", addr)
	for c := 0; c < switchyCases; c++ {
		b.PatchCodeAddr(addr, jumpTableOff+uint64(c)*8, fmt.Sprintf("%s%d", k.caseBase, c))
	}
	b.LoadImm(base, addr)
}

func (k *switchy) body(b *Builder, base isa.Reg, uniq func(string) string) {
	// The case blocks are emitted once (inside functions); each body
	// dispatches through them via a shared "handler" function so multiple
	// body instances can reuse the same jump targets.
	b.Load(isa.OpLDQ, rS0, slotState, base) // cursor index
	b.LoadImm(rS1, uint64(k.elems))
	b.Op(isa.OpBIS, base, base, rS7) // handler needs base in rS7
	b.Call(k.caseBase + "driver")
	b.Store(isa.OpSTQ, rS2, slotResult, base)
}

func (k *switchy) functions(b *Builder) {
	if k.emitted {
		return
	}
	k.emitted = true
	driver, loop, join := k.caseBase+"driver", k.caseBase+"loop", k.caseBase+"join"
	jumpTableOff := uint64(dataStart + k.elems*8)

	b.Label(driver)
	b.OpLit(isa.OpADDQ, rS7, dataStart, rS0) // element cursor
	b.Op(isa.OpBIS, isa.RegZero, isa.RegZero, rS2)
	b.Label(loop)
	b.Load(isa.OpLDQ, rS3, 0, rS0) // case selector
	b.OpLit(isa.OpAND, rS3, switchyCases-1, rS3)
	b.OpLit(isa.OpSLL, rS3, 3, rS3)
	b.Op(isa.OpADDQ, rS7, rS3, rS3)
	b.LoadImm(rS4, jumpTableOff)
	b.Op(isa.OpADDQ, rS3, rS4, rS3)
	b.Load(isa.OpLDQ, rS4, 0, rS3) // target address
	b.JmpReg(rS4)
	for c := 0; c < switchyCases; c++ {
		b.Label(fmt.Sprintf("%s%d", k.caseBase, c))
		b.OpLit(isa.OpADDQ, rS2, uint8(c*3+1), rS2)
		if c%2 == 1 {
			b.OpLit(isa.OpXOR, rS2, uint8(c), rS2)
		}
		b.Branch(isa.OpBR, isa.RegZero, join)
	}
	b.Label(join)
	b.OpLit(isa.OpADDQ, rS0, 8, rS0)
	b.OpLit(isa.OpSUBQ, rS1, 1, rS1)
	b.Branch(isa.OpBGT, rS1, loop)
	b.Ret()
}

// ---------------------------------------------------------------------------
// stride: strided stores sweeping a buffer, modeling gzip/bzip2 output
// phases. Provides stores whose *data* is easily corrupted (mem-data
// symptoms) but overwritten on the next pass (masking).

type stride struct {
	elems int // 16-byte strides
}

func (k *stride) name() string { return "stride" }

func (k *stride) setup(b *Builder, rng *rand.Rand, base isa.Reg) {
	data := make([]byte, dataStart+k.elems*16)
	addr := b.AllocData(k.name(), data, mem.PermRW)
	b.LoadImm(base, addr)
}

func (k *stride) body(b *Builder, base isa.Reg, uniq func(string) string) {
	loop := uniq("loop")
	b.OpLit(isa.OpADDQ, base, dataStart, rS0)
	b.LoadImm(rS1, uint64(k.elems))
	b.Op(isa.OpBIS, RegIter, RegIter, rS2) // seed from iteration counter
	b.Label(loop)
	b.Store(isa.OpSTQ, rS2, 0, rS0)
	b.OpLit(isa.OpADDQ, rS2, 7, rS2)
	b.Store(isa.OpSTL, rS2, 8, rS0)
	b.OpLit(isa.OpADDQ, rS0, 16, rS0)
	b.OpLit(isa.OpSUBQ, rS1, 1, rS1)
	b.Branch(isa.OpBGT, rS1, loop)
}

func (k *stride) functions(*Builder) {}

// ---------------------------------------------------------------------------
// deadweight: computations whose results are never consumed — the explicit
// stand-in for the dead and transitively-dead instruction population that
// produces the paper's 59 % software masking level. All destinations are
// scratch registers that the next kernel body overwrites before reading.

type deadweight struct {
	length int
}

func (k *deadweight) name() string { return "deadweight" }

func (k *deadweight) setup(b *Builder, rng *rand.Rand, base isa.Reg) {
	vals := make([]uint64, 32)
	for i := range vals {
		vals[i] = rng.Uint64()
	}
	data := make([]byte, dataStart)
	data = append(data, quadBytes(vals)...)
	addr := b.AllocData(k.name(), data, mem.PermRW)
	b.LoadImm(base, addr)
}

func (k *deadweight) body(b *Builder, base isa.Reg, uniq func(string) string) {
	for i := 0; i < k.length; i++ {
		switch i % 4 {
		case 0:
			b.Load(isa.OpLDQ, rS5, int32(dataStart+(i%32)*8), base)
		case 1:
			b.OpLit(isa.OpMULQ, rS5, 13, rS6)
		case 2:
			b.OpLit(isa.OpXOR, rS6, 0x3C, rS5)
		case 3:
			b.OpLit(isa.OpSRL, rS5, 5, rS6)
		}
	}
}

func (k *deadweight) functions(*Builder) {}
