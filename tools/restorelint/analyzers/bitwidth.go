package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/tools/restorelint/lint"
)

// BitWidth flags bit manipulation that silently loses or invents bits. The
// simulator models 64-bit architectural words and narrower fields (a 48-bit
// PC, 16-bit watchdog counters, 8-bit opcode bytes); the classic mistakes
// are shifting a value by at least its own width (always zero in Go, never
// a rotate), masking a widened value with bits the source type cannot carry
// (the mask is dead weight or, worse, hides a truncation the author thought
// happened), sign-extending a value that was never signed, and registering
// a state element with an impossible bit count.
var BitWidth = &lint.Analyzer{
	Name: "bitwidth",
	Doc:  "flags over-wide shifts, masks exceeding the source width, bogus sign extension, and bad Register bit counts",
	Run:  runBitWidth,
}

func runBitWidth(pass *lint.Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				switch n.Op {
				case token.SHL, token.SHR:
					checkShiftWidth(pass, n)
				case token.AND:
					checkMaskWidth(pass, n)
				}
			case *ast.AssignStmt:
				if n.Tok == token.SHL_ASSIGN || n.Tok == token.SHR_ASSIGN {
					checkShiftAssign(pass, n)
				}
			case *ast.CallExpr:
				checkSignExtension(pass, n)
				checkRegisterBits(pass, n)
			}
			return true
		})
	}
}

// checkShiftWidth flags x << c and x >> c where c is a constant at least as
// wide as x's type. Constant-folded expressions (1 << 48) are exempt: the
// spec evaluates those at arbitrary precision.
func checkShiftWidth(pass *lint.Pass, be *ast.BinaryExpr) {
	info := pass.Pkg.Info
	if tv, ok := info.Types[be]; ok && tv.Value != nil {
		return // whole expression is constant: arbitrary-precision arithmetic
	}
	reportOverShift(pass, be.Pos(), be.X, be.Y, be.Op)
}

func checkShiftAssign(pass *lint.Pass, as *ast.AssignStmt) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return
	}
	op := token.SHL
	if as.Tok == token.SHR_ASSIGN {
		op = token.SHR
	}
	reportOverShift(pass, as.Pos(), as.Lhs[0], as.Rhs[0], op)
}

func reportOverShift(pass *lint.Pass, pos token.Pos, x, y ast.Expr, op token.Token) {
	info := pass.Pkg.Info
	xtv, ok := info.Types[x]
	if !ok || xtv.Value != nil {
		return // constant shifted operand adapts to context
	}
	width, _, ok := intWidth(xtv.Type)
	if !ok {
		return
	}
	count, ok := constUint(info, y)
	if !ok || count < uint64(width) {
		return
	}
	verb := "<<"
	if op == token.SHR {
		verb = ">>"
	}
	pass.Reportf(pos,
		"shift %s %d of a %d-bit value is always zero (Go shifts do not wrap); mask the shift count or widen the operand",
		verb, count, width)
}

// checkMaskWidth flags conv(x) & mask where the mask has bits set above the
// width of x's pre-conversion type: uint64(u8) & 0x100 can never be nonzero,
// and uint64(u8) & 0x1ff pretends to select bits the value cannot have.
func checkMaskWidth(pass *lint.Pass, be *ast.BinaryExpr) {
	info := pass.Pkg.Info
	check := func(convSide, maskSide ast.Expr) {
		srcWidth, ok := conversionSourceWidth(info, convSide)
		if !ok || srcWidth >= 64 {
			return
		}
		mask, ok := constUint(info, maskSide)
		if !ok {
			return
		}
		if mask>>uint(srcWidth) != 0 {
			pass.Reportf(be.Pos(),
				"mask %#x has bits above bit %d, but the masked value was widened from a %d-bit type; the high mask bits can never match",
				mask, srcWidth-1, srcWidth)
		}
	}
	check(be.X, be.Y)
	check(be.Y, be.X)
}

// conversionSourceWidth recognises T(x) where T and x are integer types and
// returns the width of x's type, i.e. the number of meaningful bits the
// converted value can carry (only for widening unsigned sources, where zero
// extension guarantees the high bits are clear).
func conversionSourceWidth(info *types.Info, expr ast.Expr) (int, bool) {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return 0, false
	}
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return 0, false
	}
	dstWidth, _, ok := intWidth(tv.Type)
	if !ok {
		return 0, false
	}
	argTV, ok := info.Types[call.Args[0]]
	if !ok || argTV.Value != nil {
		return 0, false
	}
	srcWidth, srcUnsigned, ok := intWidth(argTV.Type)
	if !ok || !srcUnsigned || srcWidth >= dstWidth {
		return 0, false
	}
	return srcWidth, true
}

// checkSignExtension flags uint64(int32(x)) and friends where x is an
// unsigned value of the inner type's width: the int32 conversion invents a
// sign bit the data never had, and the outer widening smears it across the
// top 32 bits. Alpha's LDL/sign-extension paths do this deliberately on
// *signed* data; doing it to unsigned data is a latent corruption.
func checkSignExtension(pass *lint.Pass, call *ast.CallExpr) {
	info := pass.Pkg.Info
	if len(call.Args) != 1 {
		return
	}
	outerTV, ok := info.Types[call.Fun]
	if !ok || !outerTV.IsType() {
		return
	}
	outerWidth, outerUnsigned, ok := intWidth(outerTV.Type)
	if !ok || !outerUnsigned {
		return
	}
	inner, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr)
	if !ok || len(inner.Args) != 1 {
		return
	}
	innerTV, ok := info.Types[inner.Fun]
	if !ok || !innerTV.IsType() {
		return
	}
	innerWidth, innerUnsigned, ok := intWidth(innerTV.Type)
	if !ok || innerUnsigned || innerWidth >= outerWidth {
		return
	}
	argTV, ok := info.Types[inner.Args[0]]
	if !ok || argTV.Value != nil {
		return
	}
	argWidth, argUnsigned, ok := intWidth(argTV.Type)
	if !ok || !argUnsigned || argWidth != innerWidth {
		return
	}
	pass.Reportf(call.Pos(),
		"conversion chain sign-extends an unsigned %d-bit value through %s: bit %d of the input becomes a sign bit and fills the upper bits; drop the signed intermediate or mask explicitly",
		argWidth, innerTV.Type.String(), argWidth-1)
}

// checkRegisterBits validates the bit-count argument of StateSpace.Register
// calls: Register(name, kind, class, word, bits) with bits outside [1,64]
// either truncates the element to nothing or promises bits the uint64
// backing word does not have.
func checkRegisterBits(pass *lint.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Register" || len(call.Args) != 5 {
		return
	}
	bits, ok := constUint(pass.Pkg.Info, call.Args[4])
	if !ok {
		return
	}
	if bits == 0 || bits > 64 {
		pass.Reportf(call.Args[4].Pos(),
			"Register bit count %d is outside [1,64]; a state element must occupy between 1 and 64 bits of its backing word",
			bits)
	}
}
