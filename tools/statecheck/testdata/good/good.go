// Package good is a statecheck fixture: every state word is either
// registered or explicitly exempted, so the linter must stay silent.
package good

type StateSpace struct{}

func (s *StateSpace) Register(name string, kind, class int, word *uint64, bits int) {}

type clean struct {
	regs   [4]uint64
	head   uint64
	cycles uint64 //statecheck:ignore — bookkeeping
}

func (c *clean) register(s *StateSpace) {
	for i := range c.regs {
		s.Register("clean.regs", 0, 0, &c.regs[i], 64)
	}
	s.Register("clean.head", 0, 0, &c.head, 2)
}

// unregulated has no register method at all: it models no injectable
// hardware, so statecheck does not police it.
type unregulated struct {
	scratch uint64
}
