package experiments

import (
	"fmt"
	"strings"

	"repro/internal/harden"
)

// The shardable experiments are the raw injection campaigns: their trial
// plans are pre-drawn, so slots split across shards and the journals merge
// back into the one-shot result. Derived experiments (fig8, summary, ...)
// need the full trial set and are produced from the merged directory
// instead. This table is the single registry shared by the CLI's -shard
// mode and the campaign service's job runner.
var shardableRuns = []struct {
	name string
	run  func(Options) error
}{
	{"fig2", func(o Options) error { _, err := Fig2(o, false); return err }},
	{"fig2-low32", func(o Options) error { _, err := Fig2(o, true); return err }},
	{"fig4", runPlainCampaign},
	{"fig5", runPlainCampaign},
	{"fig5-perfect", runPlainCampaign},
	{"fig4-latches", func(o Options) error {
		_, err := Campaign(o, CampaignConfig{LatchesOnly: true})
		return err
	}},
	{"fig6", func(o Options) error {
		_, err := Campaign(o, CampaignConfig{Harden: harden.LowHangingFruit})
		return err
	}},
}

// runPlainCampaign backs fig4/fig5/fig5-perfect: all three reclassify the
// same unhardened microarchitectural campaign, so their journals are one and
// the same.
func runPlainCampaign(o Options) error {
	_, err := Campaign(o, CampaignConfig{})
	return err
}

// ShardableExperiments lists the experiment names RunShardable accepts, in
// display order.
func ShardableExperiments() []string {
	names := make([]string, len(shardableRuns))
	for i, e := range shardableRuns {
		names[i] = e.name
	}
	return names
}

// RunShardable runs one campaign experiment by name under the given options,
// discarding the rendered result — the caller wants the campaign journalled
// (opts.CampaignRoot), not printed. Results for a sharded or serviced run
// are produced later from the merged campaign directory. Experiments that
// cannot shard are refused by name.
func RunShardable(name string, opts Options) error {
	for _, e := range shardableRuns {
		if e.name == name {
			return e.run(opts)
		}
	}
	return fmt.Errorf("experiment %q cannot run sharded (shardable: %s)",
		name, strings.Join(ShardableExperiments(), " "))
}
