package analyzers

import (
	"fmt"
	"go/token"

	"repro/tools/restorelint/lint"
)

// HotPathAlloc proves the trial inner loops allocation-free.
//
// Trials/sec is the simulator's currency: a microarchitectural campaign runs
// the pipeline for millions of cycles per trial, so a single allocation in
// the per-cycle path multiplies into hundreds of thousands of heap objects
// per campaign and puts the garbage collector between the paper's numbers
// and the wall clock. Functions annotated //restorelint:hotpath must be
// transitively allocation-free in steady state: every allocation fact the
// dataflow engine computes — make/new, escaping or reference-kind composite
// literals, append growth, closure creation, interface boxing,
// string<->[]byte copies — reachable through the module-local call graph is
// an error unless a //restorelint:allowalloc directive sanctions it with a
// justification (warm-up growth that reaches a steady-state fixpoint, error
// paths). A sanction without a justification is itself reported.
//
// Soundness caveats (see DESIGN.md): calls through func-typed values (the
// pipeline's observation hooks) are not followed, and interface calls are
// devirtualized against the loaded module-local implementations only.
var HotPathAlloc = &lint.Analyzer{
	Name: "hotpathalloc",
	Doc:  "functions annotated //restorelint:hotpath must be transitively allocation-free",
	Run:  runHotPathAlloc,
}

func runHotPathAlloc(pass *lint.Pass) {
	// A sanction is a claim that needs a reviewable reason.
	for _, d := range lint.AllowallocDirectives(pass.Pkg) {
		if d.Justification == "" {
			pass.Reportf(d.Pos,
				"allowalloc directive without a justification; write //restorelint:allowalloc -- <why this allocation is acceptable>")
		}
	}

	df := lint.NewDataflow(pass.Pkg)
	hot := df.HotPaths(pass.Pkg)
	if len(hot) == 0 {
		return
	}

	// One site can be reachable from several hotpath roots (Step and Cycle
	// both reach doIssue); report it once, with the first chain found.
	reported := make(map[token.Pos]bool)
	for _, root := range hot {
		for _, f := range df.TransitiveAllocs(root.Fn) {
			local := df.Summary(f.In) != nil && df.Summary(f.In).Pkg == pass.Pkg
			if local {
				if reported[f.Site.Pos] {
					continue
				}
				reported[f.Site.Pos] = true
				pass.Reportf(f.Site.Pos, "allocation in hot path: %s (reached via %s)",
					f.Site.Desc, lint.ChainString(f.Chain))
				continue
			}
			// The allocation sits in another package: anchor the finding to
			// the first cross-package call edge so the diagnostic lands in
			// the package being linted.
			key := crossPkgKey(root.Fn.Pos(), f.Site.Pos)
			if reported[key] {
				continue
			}
			reported[key] = true
			pass.Reportf(root.Decl.Name.Pos(),
				"hot path %s reaches an allocation outside this package: %s in %s (via %s)",
				root.Fn.Name(), f.Site.Desc, fnName(f), lint.ChainString(f.Chain))
		}
	}
}

// crossPkgKey folds (root, site) into one dedup key. Positions live in a
// shared FileSet, so XOR-free mixing by offsetting keeps keys distinct for
// practical file sizes.
func crossPkgKey(root, site token.Pos) token.Pos {
	return root + site<<1
}

func fnName(f lint.AllocFinding) string {
	if f.In.Pkg() != nil {
		return fmt.Sprintf("%s.%s", f.In.Pkg().Name(), f.In.Name())
	}
	return f.In.Name()
}
