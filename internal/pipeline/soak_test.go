package pipeline

import (
	"math/rand"
	"testing"

	"repro/internal/workload"
)

// TestSoakLockstep runs every benchmark in architectural lockstep for an
// extended window at full workload scale — the strongest single statement
// that the detailed pipeline implements the ISA exactly. Skipped under
// -short.
func TestSoakLockstep(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	for _, bench := range workload.Benchmarks() {
		bench := bench
		t.Run(string(bench), func(t *testing.T) {
			prog := workload.MustGenerate(bench, workload.Config{Seed: 1337})
			m, err := prog.NewMemory()
			if err != nil {
				t.Fatal(err)
			}
			p, err := New(DefaultConfig(), m, prog.Entry)
			if err != nil {
				t.Fatal(err)
			}
			lockstep(t, p, prog)
			retired := p.RunRetired(500_000, 5_000_000)
			if t.Failed() {
				return
			}
			if p.Status() != StatusRunning || retired < 500_000 {
				t.Fatalf("stopped after %d: %v", retired, p.Status())
			}
			if err := p.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			t.Logf("%s: %d insts, IPC %.2f", bench, retired, p.Stats().IPC())
		})
	}
}

// TestSoakRandomFlips hammers the no-panic property harder than the unit
// test: hundreds of flips across benchmarks. Skipped under -short.
func TestSoakRandomFlips(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	for _, bench := range []workload.Benchmark{workload.MCF, workload.GCC, workload.Bzip2} {
		base := newBenchPipeline(t, bench, DefaultConfig())
		base.RunCycles(5000)
		rng := newSeededRand(t, bench)
		for trial := 0; trial < 120; trial++ {
			p := base.Clone()
			p.RunCycles(uint64(rng.Intn(300)))
			ref, _ := p.State().NthBit(uint64(rng.Int63n(int64(p.State().TotalBits(false)))))
			p.State().Flip(ref)
			p.RunCycles(3000)
		}
	}
}

func newSeededRand(t *testing.T, bench workload.Benchmark) *rand.Rand {
	t.Helper()
	h := int64(0)
	for _, c := range string(bench) {
		h = h*31 + int64(c)
	}
	return rand.New(rand.NewSource(h))
}
