// Command statecheck enforces the fault-injection contract of the pipeline
// model: every word of simulated hardware state must be enumerable by the
// injector. Concretely, for each struct in the target packages that has a
// register(*StateSpace) method, every uint64 (or [N]uint64) field must be
// passed by address to a Register call inside that method — otherwise the
// field holds machine state that bit-flip campaigns can never reach, silently
// shrinking the sampled state space.
//
// Fields that are genuinely simulator bookkeeping (not hardware latches) are
// exempted with a trailing or preceding comment containing
// "statecheck:ignore".
//
// Usage: statecheck [package-dir ...]   (default: ./internal/pipeline)
//
// Exits non-zero and prints one line per violation when unregistered state is
// found.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

func main() {
	flag.Parse()
	dirs := flag.Args()
	if len(dirs) == 0 {
		dirs = []string{"./internal/pipeline"}
	}
	failed := false
	for _, dir := range dirs {
		problems, err := checkDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "statecheck: %s: %v\n", dir, err)
			os.Exit(2)
		}
		for _, p := range problems {
			fmt.Println(p)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// checkDir analyses one package directory and returns one message per
// unregistered state field.
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}

	type structInfo struct {
		fields map[string]token.Position // state fields needing registration
		order  []string
	}
	structs := make(map[string]*structInfo)
	registered := make(map[string]map[string]bool) // type -> field set
	hasRegister := make(map[string]bool)

	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.GenDecl:
					if d.Tok != token.TYPE {
						continue
					}
					for _, spec := range d.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok {
							continue
						}
						st, ok := ts.Type.(*ast.StructType)
						if !ok {
							continue
						}
						info := &structInfo{fields: make(map[string]token.Position)}
						for _, f := range st.Fields.List {
							if !isStateWord(f.Type) || ignored(f) {
								continue
							}
							for _, name := range f.Names {
								info.fields[name.Name] = fset.Position(name.Pos())
								info.order = append(info.order, name.Name)
							}
						}
						structs[ts.Name.Name] = info
					}
				case *ast.FuncDecl:
					if d.Name.Name != "register" || d.Recv == nil || len(d.Recv.List) == 0 {
						continue
					}
					recvType, recvName := receiver(d.Recv.List[0])
					if recvType == "" {
						continue
					}
					hasRegister[recvType] = true
					if registered[recvType] == nil {
						registered[recvType] = make(map[string]bool)
					}
					collectRegistered(d.Body, recvName, registered[recvType])
				}
			}
		}
	}

	var problems []string
	for typeName, info := range structs {
		if !hasRegister[typeName] {
			continue
		}
		for _, field := range info.order {
			if registered[typeName][field] {
				continue
			}
			pos := info.fields[field]
			problems = append(problems, fmt.Sprintf(
				"%s: %s.%s: state word not registered in StateSpace (add to register() or mark //statecheck:ignore)",
				pos, typeName, field))
		}
	}
	return problems, nil
}

// isStateWord reports whether a field type is uint64 or [N]uint64 — the two
// shapes the StateSpace can hold.
func isStateWord(expr ast.Expr) bool {
	switch t := expr.(type) {
	case *ast.Ident:
		return t.Name == "uint64"
	case *ast.ArrayType:
		if t.Len == nil { // slices are never latch arrays
			return false
		}
		id, ok := t.Elt.(*ast.Ident)
		return ok && id.Name == "uint64"
	}
	return false
}

// ignored reports whether the field carries a statecheck:ignore directive in
// its doc or trailing comment.
func ignored(f *ast.Field) bool {
	for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if strings.Contains(c.Text, "statecheck:ignore") {
				return true
			}
		}
	}
	return false
}

// receiver extracts the receiver's type and binding name from a method
// declaration ("func (q *fetchQueue) register(...)" -> "fetchQueue", "q").
func receiver(field *ast.Field) (typeName, bindName string) {
	t := field.Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	id, ok := t.(*ast.Ident)
	if !ok {
		return "", ""
	}
	if len(field.Names) > 0 {
		bindName = field.Names[0].Name
	}
	return id.Name, bindName
}

// collectRegistered walks a register method body and records every field of
// the receiver whose address is taken inside a call to a method named
// Register: s.Register(..., &recv.field, ...) or &recv.field[i].
func collectRegistered(body *ast.BlockStmt, recvName string, out map[string]bool) {
	if body == nil {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Register" {
			return true
		}
		for _, arg := range call.Args {
			un, ok := arg.(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				continue
			}
			if f := fieldOf(un.X, recvName); f != "" {
				out[f] = true
			}
		}
		return true
	})
}

// fieldOf resolves recv.field or recv.field[i] to the field name.
func fieldOf(expr ast.Expr, recvName string) string {
	if idx, ok := expr.(*ast.IndexExpr); ok {
		expr = idx.X
	}
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || id.Name != recvName {
		return ""
	}
	return sel.Sel.Name
}
