package experiments

import (
	"fmt"
	"strings"

	"repro/internal/harden"
	"repro/internal/inject"
	"repro/internal/protect"
	"repro/internal/workload"
)

// The comparisons below exploit a determinism property of the campaign
// engines: every (point, trial) bit pick is pre-drawn from the seed before
// protection is consulted, so campaigns at the same seed visit identical
// picks under every policy. The measured coverage of ANY policy — the
// fraction of baseline failures its protected elements absorb — is therefore
// computable offline from one unprotected campaign's trials, which lets one
// suite of campaigns score the static-derived policy, the hand-picked
// placement, and every budget of a sweep, like-for-like.

// MeasuredCoverage scores a policy against unprotected campaign trials: the
// fraction of failing trials whose faulted element the policy covers (those
// flips would have been corrected or flushed on a hardened pipeline).
func MeasuredCoverage(trials []inject.UArchTrial, pol *protect.Policy) float64 {
	failing, absorbed := 0, 0
	for _, t := range trials {
		if !t.Failing() {
			continue
		}
		failing++
		if pol.ProtectionOf(t.Elem) != harden.Unprotected {
			absorbed++
		}
	}
	if failing == 0 {
		return 0
	}
	return float64(absorbed) / float64(failing)
}

// ProtectRow is one benchmark's static-vs-hand-picked comparison.
type ProtectRow struct {
	Bench      workload.Benchmark
	BudgetBits uint64 // equal budget (the hand-picked placement's overhead)
	SpentBits  uint64 // check bits the static policy actually consumed
	Predicted  float64
	Static     float64 // measured coverage of the static-derived policy
	LHF        float64 // measured coverage of the hand-picked placement
	Failing    int     // baseline failing trials
	Trials     int
	Policy     *protect.Policy
}

// ProtectCompareResult is the static→hardening acceptance experiment: per
// benchmark, a budgeted policy derived from static analysis scored against
// the paper's hand-picked placement at equal check-bit budget.
type ProtectCompareResult struct {
	Rows  []ProtectRow
	Table string
}

// ProtectCompare derives a static-budget policy per benchmark (at the
// hand-picked placement's budget), runs one unprotected campaign per
// benchmark, and scores both policies against the same baseline failures.
func ProtectCompare(opts Options) (*ProtectCompareResult, error) {
	opts.applyDefaults()
	lhf := protect.LowHangingFruit()
	res := &ProtectCompareResult{}
	for _, bench := range opts.Benchmarks {
		pol, rk, err := protect.Derive(bench, protect.DeriveOptions{
			Seed: opts.Seed, Scale: opts.Scale,
		})
		if err != nil {
			return nil, fmt.Errorf("protect %s: %w", bench, err)
		}
		r, err := inject.RunUArch(opts.uarchCampaign(inject.UArchConfig{
			Bench:          bench,
			Seed:           opts.Seed,
			Scale:          opts.Scale,
			Points:         scaleCount(25, opts.TrialFactor, 4),
			TrialsPerPoint: scaleCount(70, opts.TrialFactor, 12),
			WindowCycles:   10_000,
			Pipeline:       opts.Pipeline,
			Workers:        opts.Workers,
			Progress:       opts.Progress,
			Obs:            opts.Obs,
		}))
		if err != nil {
			return nil, fmt.Errorf("protect %s: %w", bench, err)
		}
		failing := 0
		for _, t := range r.Trials {
			if t.Failing() {
				failing++
			}
		}
		res.Rows = append(res.Rows, ProtectRow{
			Bench:      bench,
			BudgetBits: pol.BudgetBits,
			SpentBits:  rk.CostOf(pol),
			Predicted:  pol.Predicted,
			Static:     MeasuredCoverage(r.Trials, pol),
			LHF:        MeasuredCoverage(r.Trials, lhf),
			Failing:    failing,
			Trials:     len(r.Trials),
			Policy:     pol,
		})
	}
	res.Table = renderProtectTable(res.Rows)
	return res, nil
}

func renderProtectTable(rows []ProtectRow) string {
	var b strings.Builder
	b.WriteString("budgeted protection: static-derived vs hand-picked placement (measured coverage of baseline failures)\n")
	fmt.Fprintf(&b, "%-10s %8s %8s %9s %9s %9s %9s\n",
		"bench", "budget", "spent", "static", "lhf", "predicted", "failing")
	var sf, sl, sp float64
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %8d %8d %8.1f%% %8.1f%% %8.1f%% %6d/%d\n",
			r.Bench, r.BudgetBits, r.SpentBits,
			100*r.Static, 100*r.LHF, 100*r.Predicted, r.Failing, r.Trials)
		sf += r.Static
		sl += r.LHF
		sp += r.Predicted
	}
	if n := float64(len(rows)); n > 0 {
		fmt.Fprintf(&b, "%-10s %8s %8s %8.1f%% %8.1f%% %8.1f%%\n",
			"mean", "", "", 100*sf/n, 100*sl/n, 100*sp/n)
	}
	return b.String()
}

// BudgetPoint is the suite-level outcome at one check-bit budget.
type BudgetPoint struct {
	BudgetBits uint64
	SpentBits  uint64 // suite total actually consumed
	Predicted  float64
	Measured   float64 // suite coverage: absorbed / failing over all trials
}

// BudgetSweepResult is the coverage-vs-budget curve of the static optimizer.
type BudgetSweepResult struct {
	Points []BudgetPoint
	Table  string
}

// BudgetSweep reuses one unprotected campaign suite (and one static
// ranking per benchmark) to measure the coverage the optimizer buys at each
// budget — the marginal-return curve of the check-bit budget.
func BudgetSweep(opts Options, budgets []uint64) (*BudgetSweepResult, error) {
	opts.applyDefaults()
	type benchState struct {
		bench  workload.Benchmark
		rk     *protect.Ranking
		trials []inject.UArchTrial
	}
	var states []benchState
	for _, bench := range opts.Benchmarks {
		_, rk, err := protect.Derive(bench, protect.DeriveOptions{
			Seed: opts.Seed, Scale: opts.Scale,
		})
		if err != nil {
			return nil, fmt.Errorf("budget-sweep %s: %w", bench, err)
		}
		r, err := inject.RunUArch(opts.uarchCampaign(inject.UArchConfig{
			Bench:          bench,
			Seed:           opts.Seed,
			Scale:          opts.Scale,
			Points:         scaleCount(25, opts.TrialFactor, 4),
			TrialsPerPoint: scaleCount(70, opts.TrialFactor, 12),
			WindowCycles:   10_000,
			Pipeline:       opts.Pipeline,
			Workers:        opts.Workers,
			Progress:       opts.Progress,
			Obs:            opts.Obs,
		}))
		if err != nil {
			return nil, fmt.Errorf("budget-sweep %s: %w", bench, err)
		}
		states = append(states, benchState{bench: bench, rk: rk, trials: r.Trials})
	}
	res := &BudgetSweepResult{}
	for _, budget := range budgets {
		pt := BudgetPoint{BudgetBits: budget}
		failing, absorbed := 0, 0
		var predSum float64
		for _, st := range states {
			pol := protect.Optimize(fmt.Sprintf("static-budget/%s", st.bench), st.rk, budget)
			pt.SpentBits += st.rk.CostOf(pol)
			predSum += pol.Predicted
			for _, t := range st.trials {
				if !t.Failing() {
					continue
				}
				failing++
				if pol.ProtectionOf(t.Elem) != harden.Unprotected {
					absorbed++
				}
			}
		}
		if len(states) > 0 {
			pt.Predicted = predSum / float64(len(states))
		}
		if failing > 0 {
			pt.Measured = float64(absorbed) / float64(failing)
		}
		res.Points = append(res.Points, pt)
	}
	var b strings.Builder
	b.WriteString("coverage vs check-bit budget (static-derived policies, suite-wide)\n")
	fmt.Fprintf(&b, "%8s %10s %9s %9s\n", "budget", "spent", "measured", "predicted")
	for _, pt := range res.Points {
		fmt.Fprintf(&b, "%8d %10d %8.1f%% %8.1f%%\n",
			pt.BudgetBits, pt.SpentBits, 100*pt.Measured, 100*pt.Predicted)
	}
	res.Table = b.String()
	return res, nil
}
