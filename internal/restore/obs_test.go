package restore

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// Symptom telemetry: every rollback emits exactly one count, one per-kind
// count, one depth/latency observation, and one trace event — and attaching
// the sink changes nothing about the run itself.
func TestObsRecordsSymptomRollbacks(t *testing.T) {
	run := func(reg obs.Sink, trace *obs.Trace) Report {
		t.Helper()
		// Oracle confidence turns every misprediction into a symptom, so a
		// fault-free run still rolls back constantly.
		pcfg := pipeline.DefaultConfig()
		pcfg.Confidence = pipeline.ConfidencePerfect
		prog := workload.MustGenerate(workload.GCC, workload.Config{Seed: 42, Scale: 0.25})
		m, err := prog.NewMemory()
		if err != nil {
			t.Fatal(err)
		}
		pipe, err := pipeline.New(pcfg, m, prog.Entry)
		if err != nil {
			t.Fatal(err)
		}
		proc := New(pipe, Config{Interval: 100, Obs: reg, Trace: trace})
		rep, err := proc.Run(15_000, 10_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	bare := run(nil, nil)
	reg := obs.NewRegistry()
	trace := obs.NewTrace(8)
	rep := run(reg, trace)

	if rep != bare {
		t.Fatalf("report changed with a sink attached:\nbare:        %+v\ninstrumented: %+v", bare, rep)
	}
	if rep.Rollbacks == 0 {
		t.Fatal("run produced no rollbacks; nothing to observe")
	}

	rollbacks := int64(rep.Rollbacks)
	if got := reg.Counter("restore_rollbacks_total").Value(); got != rollbacks {
		t.Errorf("restore_rollbacks_total = %d, want %d", got, rollbacks)
	}
	if got := reg.Counter("restore_symptom_branch_total").Value(); got == 0 {
		t.Error("no branch symptom counts under oracle confidence")
	}
	var perKind int64
	for _, kind := range []string{"branch", "exception", "deadlock", "cache_miss", "verify"} {
		perKind += reg.Counter("restore_symptom_" + kind + "_total").Value()
	}
	if perKind != rollbacks {
		t.Errorf("per-kind symptom counters sum to %d, want %d", perKind, rollbacks)
	}
	for _, hist := range []string{"restore_rollback_depth_insts", "restore_detection_latency_insts"} {
		if got := reg.Hist(hist).Count(); got != rollbacks {
			t.Errorf("%s observations = %d, want %d", hist, got, rollbacks)
		}
	}

	// One trace event per rollback; the ring keeps the newest 8.
	if got := int64(len(trace.Events())) + trace.Dropped(); got != rollbacks {
		t.Errorf("trace events+dropped = %d, want %d", got, rollbacks)
	}
	for _, ev := range trace.Events() {
		if ev.Name != "branch" {
			continue
		}
		keys := make(map[string]bool, len(ev.Fields))
		for _, f := range ev.Fields {
			keys[f.Key] = true
		}
		for _, want := range []string{"cycle", "index", "depth", "latency"} {
			if !keys[want] {
				t.Errorf("trace event missing field %q: %+v", want, ev)
			}
		}
		break
	}
}
