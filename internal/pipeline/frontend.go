package pipeline

import (
	"repro/internal/arch"
	"repro/internal/isa"
)

// ---------------------------------------------------------------------------
// Rename/dispatch: pop up to four fetch-queue entries in order, decode them
// into control words, rename their registers through the speculative RAT,
// and allocate ROB / scheduler / STQ resources.

func (p *Pipeline) doRename() {
	for n := 0; n < FetchWidth; n++ {
		if p.fq.empty() || p.rob.full() {
			return
		}
		idx := p.fq.head % FQSize
		pc, word, pred := p.fq.pc[idx], p.fq.word[idx], p.fq.pred[idx]

		if pred&(1<<fqFetchFault) != 0 {
			// Instruction fetch itself faulted: allocate a completed
			// ROB entry that raises an access fault at commit.
			robIdx, ok := p.rob.alloc()
			if !ok {
				return
			}
			p.fq.pop()
			p.rob.pc[robIdx] = pc
			p.rob.ctl[robIdx] = packFetchFault()
			p.rob.result[robIdx] = pc
			p.rob.flags[robIdx] = robValid | robCompleted | robFetchFault |
				robExcValid | uint64(arch.ExcAccessFault)<<robExcShift
			p.stats.Dispatched++
			continue
		}

		inst := p.decode(pc, uint32(word))
		if !p.dispatchOne(pc, inst, pred) {
			return // resource stall; retry next cycle
		}
		p.fq.pop()
		p.stats.Dispatched++
	}
}

// dispatchOne allocates all resources for one instruction. It returns false
// (allocating nothing) if any resource is exhausted.
func (p *Pipeline) dispatchOne(pc uint64, inst isa.Inst, pred uint64) bool {
	class := isa.ClassOf(inst.Op)
	needsSched := class != isa.ClassNop && class != isa.ClassHalt && class != isa.ClassInvalid
	isStore := inst.IsStore()

	if p.rob.full() {
		return false
	}
	schedSlot := -1
	if needsSched {
		slot, ok := p.sched.alloc()
		if !ok {
			return false
		}
		schedSlot = slot
	}
	if isStore && p.stq.full() {
		return false
	}
	if inst.IsLoad() && p.ldq.full() {
		return false
	}

	dest, hasDest := inst.Dest()
	if hasDest && dest == isa.RegZero {
		hasDest = false
	}
	var physDest, oldPhys uint64
	if hasDest {
		tag, ok := p.free.alloc()
		if !ok {
			return false // no free physical register
		}
		physDest = tag
		oldPhys = p.specRAT.get(uint64(dest))
	}

	robIdx, ok := p.rob.alloc()
	if !ok {
		if hasDest {
			p.free.free(physDest)
		}
		return false
	}

	flags := uint64(robValid)
	p.rob.pc[robIdx] = pc
	p.rob.ctl[robIdx] = packCtl(inst)
	p.rob.result[robIdx] = 0
	p.rob.aux[robIdx] = (pred & (1<<48 - 1)) << 8 // predicted target

	switch {
	case class == isa.ClassInvalid:
		flags |= robCompleted | robExcValid |
			uint64(arch.ExcIllegalInstruction)<<robExcShift
		p.rob.result[robIdx] = pc
	case class == isa.ClassNop:
		flags |= robCompleted
	case class == isa.ClassHalt:
		flags |= robCompleted | robHalt
	}
	if inst.IsLoad() {
		flags |= robIsLoad
		ldqIdx, ok := p.ldq.alloc()
		if !ok {
			// Checked above; only reachable under corrupted state.
			p.rob.flags[robIdx] = flags | robCompleted | robExcValid |
				uint64(arch.ExcAccessFault)<<robExcShift
			return true
		}
		p.ldq.robIdx[ldqIdx] = robIdx
		p.rob.aux[robIdx] = (p.rob.aux[robIdx] &^ 0xFF) | ldqIdx
	}
	if isStore {
		flags |= robIsStore
		stqIdx, ok := p.stq.alloc()
		if !ok {
			// Checked above; can only fail under corrupted state.
			p.rob.flags[robIdx] = flags | robCompleted | robExcValid |
				uint64(arch.ExcAccessFault)<<robExcShift
			return true
		}
		p.stq.robIdx[stqIdx] = robIdx
		p.rob.aux[robIdx] = (p.rob.aux[robIdx] &^ 0xFF) | stqIdx
	}
	if inst.IsBranch() {
		flags |= robIsBranch
		if inst.IsCondBranch() {
			flags |= robIsCond
		}
		if pred&(1<<fqPredTaken) != 0 {
			flags |= robPredTaken
		}
		if pred&(1<<fqPredConf) != 0 {
			flags |= robHighConf
		}
		hist := (pred >> fqHistShift) & p.histMask()
		flags |= hist << robHistShift
	}

	if hasDest {
		flags |= robHasDest
		p.rob.physDest[robIdx] = physDest
		p.rob.oldPhys[robIdx] = oldPhys
		p.rob.archDest[robIdx] = uint64(dest)
	}

	// Rename sources before updating the destination mapping (an
	// instruction may read and write the same architectural register).
	if schedSlot >= 0 {
		p.fillScheduler(schedSlot, robIdx, inst, flags, oldPhys)
	}

	if hasDest {
		p.specRAT.set(uint64(dest), physDest)
		p.prf.setReady(physDest, false)
	}

	p.rob.flags[robIdx] = flags
	return true
}

// srcTag returns the current speculative mapping of an architectural source
// register. A named method (not a closure inside fillScheduler) keeps the
// dispatch path statically allocation-free for hotpathalloc.
func (p *Pipeline) srcTag(r isa.Reg) uint64 { return p.specRAT.get(uint64(r)) }

// fillScheduler writes the scheduler entry with renamed source tags.
func (p *Pipeline) fillScheduler(slot int, robIdx uint64, inst isa.Inst, robFlags, oldPhys uint64) {
	f := uint64(schValid)
	var s1, s2, s3 uint64

	switch {
	case inst.IsLoad():
		f |= schIsLoad
		s1, f = p.srcTag(inst.Rb), f|schSrc1
	case inst.IsStore():
		f |= schIsStore
		s1, f = p.srcTag(inst.Rb), f|schSrc1 // base
		s2, f = p.srcTag(inst.Ra), f|schSrc2 // data
	case inst.IsBranch():
		f |= schIsBr
		if inst.IsCondBranch() {
			s1, f = p.srcTag(inst.Ra), f|schSrc1
		} else if inst.IsIndirect() {
			s1, f = p.srcTag(inst.Rb), f|schSrc1
		}
	case inst.Op == isa.OpLDA || inst.Op == isa.OpLDAH:
		s1, f = p.srcTag(inst.Rb), f|schSrc1
	case inst.Op == isa.OpCMOVEQ || inst.Op == isa.OpCMOVNE:
		s1, f = p.srcTag(inst.Ra), f|schSrc1
		if !inst.UseLit {
			s2, f = p.srcTag(inst.Rb), f|schSrc2
		}
		// The previous destination mapping is a genuine third source.
		s3, f = oldPhys, f|schSrc3
	case inst.Op == isa.OpInvalid:
		// Completed at dispatch with an exception; no scheduler entry
		// is reached (dispatchOne only calls us for schedulable ops),
		// but guard anyway.
	default: // operate
		if isa.ClassOf(inst.Op) == isa.ClassMul {
			f |= schIsMul
		}
		s1, f = p.srcTag(inst.Ra), f|schSrc1
		if !inst.UseLit {
			s2, f = p.srcTag(inst.Rb), f|schSrc2
		}
	}

	// Reading the zero register never waits: it is physical register 31,
	// which is permanently ready and zero.

	p.sched.flags[slot] = f
	p.sched.robIdx[slot] = robIdx
	p.sched.src1[slot] = s1
	p.sched.src2[slot] = s2
	p.sched.src3[slot] = s3
}

// ---------------------------------------------------------------------------
// Fetch: up to four sequential instructions per cycle, redirected by the
// branch predictors, BTB and RAS. Prediction metadata rides along in the
// fetch queue.

func (p *Pipeline) doFetch() {
	if p.fetchFaulted || p.cycle < p.fetchStallUntil {
		return
	}

	// I-TLB and I-cache access for this fetch group.
	if hit, lat := p.itlb.Access(p.fetchPC); !hit {
		p.fetchStallUntil = p.cycle + uint64(lat)
		return
	}
	if hit, lat := p.l1i.Access(p.fetchPC); !hit {
		p.stats.ICacheMisses++
		stall := uint64(lat)
		if l2hit, l2lat := p.l2.Access(p.fetchPC); !l2hit {
			stall += uint64(l2lat)
			p.stats.L2Misses++
		}
		p.fetchStallUntil = p.cycle + stall
		return
	}

	pc := p.fetchPC
	for n := 0; n < FetchWidth; n++ {
		if p.fq.full() {
			break
		}
		word, err := p.mem.FetchWord(pc)
		if err != nil {
			// Fetch fault: enqueue the faulting marker and stop
			// fetching until a redirect proves it was wrong-path.
			p.fq.push(pc, 0, 1<<fqFetchFault)
			p.fetchFaulted = true
			p.stats.Fetched++
			pc += isa.InstBytes
			break
		}
		inst := p.decode(pc, word)
		pred := uint64(0)
		nextPC := pc + isa.InstBytes

		if inst.IsBranch() {
			hist := p.specHist
			predTaken, predTarget, conf := p.predictBranch(pc, inst)
			pred |= 1 << fqPredBranch
			pred |= (hist & p.histMask()) << fqHistShift
			if predTaken {
				pred |= 1 << fqPredTaken
			}
			if conf {
				pred |= 1 << fqPredConf
			}
			if predTaken {
				nextPC = predTarget
			}
			pred |= nextPC & (1<<48 - 1)
			p.fq.push(pc, uint64(word), pred)
			p.stats.Fetched++
			pc = nextPC
			if predTaken {
				break // fetch group ends at a predicted-taken branch
			}
			continue
		}

		pred |= nextPC & (1<<48 - 1)
		p.fq.push(pc, uint64(word), pred)
		p.stats.Fetched++
		pc = nextPC
		if pc&(uint64(1)<<p.cfg.L1I.LineBits-1) == 0 {
			break // fetch groups do not cross cache lines
		}
	}
	p.fetchPC = pc
}

// predictBranch produces the front end's direction, target, and confidence
// for a branch at pc.
func (p *Pipeline) predictBranch(pc uint64, inst isa.Inst) (taken bool, target uint64, conf bool) {
	seq := pc + isa.InstBytes
	switch {
	case inst.Op == isa.OpBR || inst.Op == isa.OpBSR:
		if inst.Op == isa.OpBSR {
			p.ras.Push(seq)
		}
		return true, isa.BranchTarget(pc, inst.Disp), false
	case inst.IsReturn():
		if t, ok := p.ras.Pop(); ok {
			return true, t, false
		}
		if t, ok := p.btb.Lookup(pc); ok {
			return true, t, false
		}
		return false, seq, false
	case inst.IsIndirect(): // JMP/JSR
		if inst.Op == isa.OpJSR {
			p.ras.Push(seq)
		}
		if t, ok := p.btb.Lookup(pc); ok {
			return true, t, false
		}
		// No target available: predict fall-through; resolution will
		// redirect.
		return false, seq, false
	default: // conditional
		taken = p.dir.PredictH(pc, p.specHist)
		conf = p.conf.Confident(pc)
		p.specHist = p.shiftHist(p.specHist, taken)
		if taken {
			return true, isa.BranchTarget(pc, inst.Disp), conf
		}
		return false, seq, conf
	}
}
