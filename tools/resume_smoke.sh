#!/bin/sh
# Durable-campaign smoke test (make resume, CI durable-campaigns job).
#
# Proves the CLI-level durability contract end to end, against the same
# binary a user runs:
#   1. an interrupted (-stop-after) run resumed from its -out directory
#      prints byte-identical output to a one-shot run;
#   2. a run killed by a real SIGTERM resumes the same way (if the tiny
#      campaign finishes before the signal lands, the resume degrades to a
#      full journal recovery — the diff still must hold);
#   3. two shards merged with `restore-sim merge` and rerun from the merged
#      directory print byte-identical output to a one-shot run;
#   4. golden-image shards with compressed journals, one killed by SIGTERM
#      and resumed, merge to the same byte-identical output — the full
#      warm-start durability stack in one scenario;
#   5. a second SIGTERM mid-drain forces an immediate exit with the journal
#      flushed, and the resume still matches byte for byte;
#   6. the service daemon SIGKILLed mid-job restarts, auto-resumes, and
#      merges byte-identically (tools/service_smoke.sh runs the full
#      daemon matrix; this is the one-scenario version).
set -eu

workdir=$(mktemp -d)
daemon=""
cleanup() {
	[ -n "$daemon" ] && kill -9 "$daemon" 2>/dev/null || true
	rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/restore-sim" ./cmd/restore-sim
sim=$workdir/restore-sim
args="-trials 0.05 -scale 0.5 -bench gzip"

echo "== one-shot baseline"
$sim $args fig4 >"$workdir/golden.txt"

echo "== interrupt mid-campaign (-stop-after), then resume"
$sim $args -out "$workdir/resume" -stop-after 5 fig4 >/dev/null
$sim $args -out "$workdir/resume" fig4 >"$workdir/resumed.txt"
diff "$workdir/golden.txt" "$workdir/resumed.txt"

echo "== SIGTERM mid-campaign, then resume"
# A larger campaign so the signal has something to interrupt.
killargs="-trials 0.25 -scale 0.5 -bench gzip"
$sim $killargs fig4 >"$workdir/golden_kill.txt"
$sim $killargs -out "$workdir/killed" fig4 >/dev/null 2>&1 &
pid=$!
sleep 1
kill -TERM "$pid" 2>/dev/null || true
wait "$pid" || true
$sim $killargs -out "$workdir/killed" fig4 >"$workdir/killed.txt"
diff "$workdir/golden_kill.txt" "$workdir/killed.txt"

echo "== two shards, merged, rerun from the merged directory"
$sim $args -out "$workdir/s1" -shard 1/2 fig4 >/dev/null
$sim $args -out "$workdir/s2" -shard 2/2 fig4 >/dev/null
$sim -out "$workdir/merged" merge "$workdir/s1" "$workdir/s2"
$sim $args -out "$workdir/merged" fig4 >"$workdir/merged.txt"
diff "$workdir/golden.txt" "$workdir/merged.txt"

echo "== golden-image shards + compressed journals, one killed, merged"
# Shard 1 writes the golden image; shard 2 restores it. Shard 2 is killed
# mid-campaign and resumed (same flags), then the shards merge; the rerun
# from the merged directory must match the one-shot baseline byte for byte.
gargs="$killargs -golden-image $workdir/golden-images -compress-journal"
$sim $gargs -out "$workdir/g1" -shard 1/2 fig4 >/dev/null
[ -n "$(ls "$workdir/golden-images"/*.golden 2>/dev/null)" ] || {
	echo "no golden image written" >&2
	exit 1
}
$sim $gargs -out "$workdir/g2" -shard 2/2 fig4 >/dev/null 2>&1 &
pid=$!
sleep 1
kill -TERM "$pid" 2>/dev/null || true
wait "$pid" || true
$sim $gargs -out "$workdir/g2" -shard 2/2 fig4 >/dev/null
$sim -out "$workdir/gmerged" merge "$workdir/g1" "$workdir/g2"
$sim $killargs -out "$workdir/gmerged" fig4 >"$workdir/gmerged.txt"
diff "$workdir/golden_kill.txt" "$workdir/gmerged.txt"
$sim ckpt inspect "$workdir"/golden-images/*.golden >/dev/null

echo "== double SIGTERM forces an immediate exit, journal still resumes"
# The first signal starts the drain; the second refuses to wait for it. A
# forced exit reports 130; if the tiny campaign drains before the second
# signal lands the run exits normally — either way the journal must hold
# exactly the completed trials and the resume must match byte for byte.
$sim $killargs -out "$workdir/forced" fig4 >/dev/null 2>&1 &
pid=$!
sleep 1
kill -TERM "$pid" 2>/dev/null || true
sleep 0.1
kill -TERM "$pid" 2>/dev/null || true
set +e
wait "$pid"
code=$?
set -e
[ "$code" -eq 130 ] || [ "$code" -eq 0 ] || {
	echo "double-signalled run exited $code, want 130 (forced) or 0 (drained)" >&2
	exit 1
}
$sim $killargs -out "$workdir/forced" fig4 >"$workdir/forced.txt"
diff "$workdir/golden_kill.txt" "$workdir/forced.txt"

echo "== service daemon: SIGKILL mid-job, restart, auto-resume, merged byte-identical"
droot=$workdir/service
dargs="-seed 42 -scale 0.5 -trials 2 -bench gzip"
$sim $dargs -out "$workdir/daemon-oneshot" fig2 >/dev/null
$sim -root "$droot" serve >"$workdir/serve.log" 2>&1 &
daemon=$!
for _ in $(seq 100); do
	$sim -root "$droot" jobs >/dev/null 2>&1 && break
	sleep 0.1
done
$sim -root "$droot" $dargs -shards 2 submit fig2 >/dev/null
sleep 0.5
kill -9 "$daemon"
wait "$daemon" 2>/dev/null || true
$sim -root "$droot" serve >>"$workdir/serve.log" 2>&1 &
daemon=$!
for _ in $(seq 100); do
	$sim -root "$droot" jobs >/dev/null 2>&1 && break
	sleep 0.1
done
$sim -root "$droot" -wait status job-000001 >/dev/null
diff -r "$droot/jobs/job-000001/merged" "$workdir/daemon-oneshot"
kill -TERM "$daemon"
wait "$daemon" || true
daemon=""

echo "resume smoke: OK"
