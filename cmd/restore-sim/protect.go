package main

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/protect"
)

// defaultSweepBudgets spans from a fraction of the hand-picked placement's
// overhead (1664 check bits over the default space) to several times it,
// bracketing the marginal-return knee.
var defaultSweepBudgets = []uint64{0, 416, 832, 1664, 3328, 6656}

// protectPolicies derives a budgeted protection policy per benchmark from
// the static vulnerability analysis and prints each as canonical JSON with
// its predicted coverage. No fault injection runs: this is the fast, static
// side of the loop, suitable for CI smoke and for exporting policies to
// feed back into hardened campaigns.
func (c *cli) protectPolicies() error {
	fmt.Println("static-derived protection policies (no injection)")
	fmt.Printf("seed %d, scale %g, budget %s\n\n", c.opts.Seed, c.opts.Scale, budgetLabel(c.budget))
	type row struct {
		bench     string
		spent     uint64
		budget    uint64
		predicted float64
		elems     int
	}
	var rows []row
	for _, bench := range c.benchList() {
		pol, rk, err := protect.Derive(bench, protect.DeriveOptions{
			Seed: c.opts.Seed, Scale: c.opts.Scale, BudgetBits: c.budget,
		})
		if err != nil {
			return fmt.Errorf("protect %s: %w", bench, err)
		}
		out, err := json.MarshalIndent(pol, "", "  ")
		if err != nil {
			return err
		}
		fmt.Printf("=== %s\n%s\n", bench, out)
		rows = append(rows, row{
			bench:     string(bench),
			spent:     rk.CostOf(pol),
			budget:    pol.BudgetBits,
			predicted: pol.Predicted,
			elems:     len(pol.Assign),
		})
	}
	fmt.Printf("\n%-10s %8s %8s %6s %10s\n", "bench", "budget", "spent", "elems", "predicted")
	for _, r := range rows {
		fmt.Printf("%-10s %8d %8d %6d %9.1f%%\n", r.bench, r.budget, r.spent, r.elems, 100*r.predicted)
	}
	fmt.Println("\n(predicted = protected share of the modeled failure mass; measure it")
	fmt.Println(" against injection campaigns with `restore-sim protect-compare`)")
	return nil
}

// protectCompare measures the derived policies: one unprotected campaign
// per benchmark scores the static-derived placement against the paper's
// hand-picked one at equal check-bit budget.
func (c *cli) protectCompare() error {
	res, err := experiments.ProtectCompare(c.opts)
	if err != nil {
		return err
	}
	fmt.Print(res.Table)
	return nil
}

// budgetSweep traces coverage against the check-bit budget, reusing one
// campaign suite for every budget.
func (c *cli) budgetSweep() error {
	budgets := defaultSweepBudgets
	if c.budgets != "" {
		budgets = nil
		for _, f := range strings.Split(c.budgets, ",") {
			n, err := strconv.ParseUint(strings.TrimSpace(f), 10, 64)
			if err != nil {
				return fmt.Errorf("invalid -budgets entry %q: %w", f, err)
			}
			budgets = append(budgets, n)
		}
	}
	res, err := experiments.BudgetSweep(c.opts, budgets)
	if err != nil {
		return err
	}
	fmt.Print(res.Table)
	return nil
}

func budgetLabel(b uint64) string {
	if b == 0 {
		return "equal (hand-picked placement's overhead)"
	}
	return fmt.Sprintf("%d check bits", b)
}
