package protect

import (
	"fmt"
	"sort"

	"repro/internal/harden"
	"repro/internal/pipeline"
	"repro/internal/staticvuln"
	"repro/internal/workload"
)

// The optimizer predicts, per named state element, how much of a benchmark's
// failure mass a parity/ECC domain over that element would absorb, then
// spends a check-bit budget greedily by failure mass per check bit. The
// prediction factors as
//
//	density(e) = occ(e) × base(e) × dataScale        (failure prob / bit)
//	mass(e)    = density(e) × totalBits(e)
//
// where occ(e) is the benchmark's measured fault-free residency of the
// structure holding e (a mostly-empty store queue contributes few vulnerable
// bit-cycles regardless of how ACE its occupied entries are), base(e) is a
// per-element vulnerability coefficient calibrated once against the suite's
// dynamic campaigns (failure rate per occupied bit — control words that
// steer retirement fail far more often per bit than payload data), and
// dataScale adjusts ClassData elements by the benchmark's statically proven
// ACE potency from internal/staticvuln: programs whose result bits are
// mostly dead (high masked fraction, short symptom latency) leak little
// failure mass through data paths. The register file alone gets a dedicated
// two-factor model (see prfDensity) — its failure mass follows potency and
// load-queue turnover, not residency.

// Profile is a benchmark's fault-free residency: mean structure fills over a
// sampled window, each normalized to capacity.
type Profile struct {
	FetchQ   float64
	ROB      float64
	Sched    float64
	STQ      float64
	LDQ      float64
	Exec     float64
	LiveRegs float64
}

// MeasureProfile runs the benchmark fault-free and averages occupancy
// samples into a residency profile. Sampling every stride-th cycle keeps the
// cost negligible next to a campaign while covering program phases.
func MeasureProfile(prog *workload.Program, warmup, window uint64) (Profile, error) {
	mem, err := prog.NewMemory()
	if err != nil {
		return Profile{}, err
	}
	p, err := pipeline.New(pipeline.DefaultConfig(), mem, prog.Entry)
	if err != nil {
		return Profile{}, err
	}
	p.RunCycles(warmup)
	const stride = 16
	var sum pipeline.OccupancySample
	execCap := float64(p.Occupancy().ExecCap)
	for c := uint64(0); c < window && p.Status() == pipeline.StatusRunning; c += stride {
		p.RunCycles(stride)
		s := p.Occupancy()
		sum.FetchQ += s.FetchQ
		sum.ROB += s.ROB
		sum.Sched += s.Sched
		sum.STQ += s.STQ
		sum.LDQ += s.LDQ
		sum.Exec += s.Exec
		sum.LiveRegs += s.LiveRegs
	}
	n := window / stride
	if n == 0 {
		n = 1
	}
	mean := func(v uint64, cap float64) float64 { return float64(v) / float64(n) / cap }
	return Profile{
		FetchQ:   mean(sum.FetchQ, pipeline.FQSize),
		ROB:      mean(sum.ROB, pipeline.ROBSize),
		Sched:    mean(sum.Sched, pipeline.SchedSize),
		STQ:      mean(sum.STQ, pipeline.STQSize),
		LDQ:      mean(sum.LDQ, pipeline.LDQSize),
		Exec:     mean(sum.Exec, execCap),
		LiveRegs: mean(sum.LiveRegs, pipeline.PhysRegs),
	}, nil
}

// occSource selects which residency figure scales an element's density.
type occSource uint8

const (
	occOne   occSource = iota // always-live state (head pointers, RATs)
	occFQ                     // fetch-queue fill
	occROB                    // reorder-buffer fill
	occSched                  // scheduler fill
	occSTQ                    // store-queue fill
	occLDQ                    // load-queue fill
	occExec                   // execution-window fill
	occLive                   // allocated physical registers
)

func (p Profile) at(src occSource) float64 {
	switch src {
	case occOne:
		return 1
	case occFQ:
		return p.FetchQ
	case occROB:
		return p.ROB
	case occSched:
		return p.Sched
	case occSTQ:
		return p.STQ
	case occLDQ:
		return p.LDQ
	case occExec:
		return p.Exec
	case occLive:
		return p.LiveRegs
	}
	return 1
}

// coeff is one element's calibrated vulnerability model: which residency
// figure gates it and its base failure rate per occupied bit. Base values
// are calibrated against the suite-wide dynamic campaign at seed 42
// (per-element failure fraction divided by suite-mean residency); the
// ranking then re-weights them with the target benchmark's own residency
// and static ACE potency.
type coeff struct {
	src  occSource
	base float64
}

// model maps every registered state-element name to its coefficient. Rank
// fails loudly on a registered element missing here (and the unit tests
// compile the table against a real state space), so renaming or adding
// pipeline state forces this table to follow.
var model = map[string]coeff{
	"fq.pc":     {src: occFQ, base: 0.170},
	"fq.word":   {src: occFQ, base: 0.636},
	"fq.pred":   {src: occFQ, base: 0.042},
	"fq.head":   {src: occOne, base: 0.714},
	"fq.count":  {src: occOne, base: 0.200},
	"rob.ctl":   {src: occROB, base: 0.048},
	"rob.pc":    {src: occROB, base: 0.007},
	"rob.flags": {src: occROB, base: 0.183},
	// The register-renaming fields corrupt the architectural map when hit;
	// their per-bit failure rates rival the fetch path.
	"rob.physDest": {src: occROB, base: 0.366},
	"rob.oldPhys":  {src: occROB, base: 0.366},
	"rob.archDest": {src: occROB, base: 0.538},
	"rob.result":   {src: occROB, base: 0.134},
	"rob.aux":      {src: occROB, base: 0.005},
	"rob.head":     {src: occOne, base: 1.000},
	"rob.count":    {src: occOne, base: 0.700},
	"sched.flags":  {src: occSched, base: 0.574},
	"sched.robIdx": {src: occSched, base: 0.786},
	"sched.src1":   {src: occSched, base: 0.490},
	"sched.src2":   {src: occSched, base: 0.152},
	"sched.src3":   {src: occSched, base: 0.050},
	"stq.addr":     {src: occSTQ, base: 0.283},
	"stq.data":     {src: occSTQ, base: 0.142},
	"stq.flags":    {src: occSTQ, base: 0.319},
	"stq.robIdx":   {src: occSTQ, base: 0.050},
	"stq.head":     {src: occOne, base: 0.300},
	"stq.count":    {src: occOne, base: 0.300},
	"ldq.addr":     {src: occLDQ, base: 0.010},
	"ldq.robIdx":   {src: occLDQ, base: 0.050},
	"ldq.fwdRob":   {src: occLDQ, base: 0.050},
	"ldq.flags":    {src: occLDQ, base: 0.050},
	"ldq.head":     {src: occOne, base: 0.571},
	"ldq.count":    {src: occOne, base: 0.300},
	"prf.ready":    {src: occOne, base: 0.143},
	"specRAT":      {src: occOne, base: 0.204},
	"archRAT":      {src: occOne, base: 0.153},
	"freelist":     {src: occOne, base: 0.286},
	"exec.val":     {src: occExec, base: 0.214},
	"exec.tag":     {src: occExec, base: 0.549},
	"exec.rob":     {src: occExec, base: 1.000},
	"fetchPC":      {src: occOne, base: 1.000},
	"watchdog":     {src: occOne, base: 0.020},
	"specHist":     {src: occOne, base: 0.143},
	"retiredHist":  {src: occOne, base: 0.100},
}

// refPotency is the suite-mean static ACE potency (measured over the seven
// benchmarks at seed 42); a benchmark's dataScale is its own potency over
// this, so suite-average data elements keep their calibrated base rates.
const refPotency = 0.385

// The physical register file is the one structure the occupancy × base ×
// dataScale factorization cannot model: its failure mass does not track
// live-register residency (gcc parks the fewest live registers yet loses
// the largest failure share to the PRF). Its own two-factor fit against
// the suite campaigns at seed 42:
//
//	prfDensity = (prfBase + prfPotencyGain × potency) × (1 − prfLoadDiscount × ldq)
//
// The potency term captures how far a corrupted value propagates once
// read (compute-bound, long-dependency programs like gcc and gap sit
// high). The load-queue term captures turnover: a load-heavy program
// (mcf, vortex) rewrites destination registers from memory so quickly
// that a flipped value is usually dead before anything consumes it.
const (
	prfBase         = 0.053
	prfPotencyGain  = 0.170
	prfLoadDiscount = 0.61
)

// prfDensity is the register file's predicted failure probability per bit.
func prfDensity(rep *staticvuln.Report, prof Profile) float64 {
	d := (prfBase + prfPotencyGain*Potency(rep)) * (1 - prfLoadDiscount*prof.LDQ)
	if d < 0 {
		return 0
	}
	return d
}

// detectWindow is the symptom-detection window, in instructions, the
// latency factor assumes — matched to the campaigns' 10k-cycle windows.
const detectWindow = 10_000.0

// Potency condenses a static report into one scalar: the fraction of result
// bits whose corruption is statically proven to surface, with
// register-class bits (visible only through later reads) discounted by how
// much of the detection window their symptom latency consumes.
func Potency(rep *staticvuln.Report) float64 {
	fr := rep.SymptomFractions(false)
	lat := rep.MeanLatency(false)
	latFactor := detectWindow / (detectWindow + lat)
	return fr[staticvuln.SymException] + fr[staticvuln.SymCFV] + fr[staticvuln.SymMem] +
		fr[staticvuln.SymRegister]*latFactor
}

// ElemRank is one named element's predicted standing in the ranking.
type ElemRank struct {
	Name     string
	Kind     pipeline.Kind
	Prot     harden.Protection // domain the kind rule assigns if selected
	Words    uint64
	Bits     uint64 // total data bits across all words
	CostBits uint64 // check bits protecting every word would cost
	Density  float64
	Mass     float64 // Density × Bits: predicted failure mass
}

// Ranking is the per-benchmark element ranking the optimizer consumes,
// sorted by failure mass per check bit, descending (ties by name).
type Ranking struct {
	Program   string
	Elems     []ElemRank
	TotalMass float64
}

// Rank scores every element of the state space for one benchmark. The
// protection domain per element follows the hardware kind — parity on
// latches (detect + flush), SEC-DED ECC on SRAM arrays. A registered
// element the model table does not cover is an error: the model must be
// recalibrated when pipeline state changes, never silently zeroed.
func Rank(space *pipeline.StateSpace, rep *staticvuln.Report, prof Profile) (*Ranking, error) {
	type group struct {
		kind      pipeline.Kind
		class     pipeline.Class
		words     uint64
		bits      uint64
		wordWidth uint64
	}
	groups := make(map[string]*group)
	var order []string
	for _, e := range space.Elements() {
		g := groups[e.Name]
		if g == nil {
			g = &group{kind: e.Kind, class: e.Class, wordWidth: uint64(e.Bits)}
			groups[e.Name] = g
			order = append(order, e.Name)
		}
		g.words++
		g.bits += uint64(e.Bits)
	}
	dataScale := Potency(rep) / refPotency
	rk := &Ranking{Program: rep.Program}
	for _, name := range order {
		g := groups[name]
		prot := harden.Parity
		if g.kind == pipeline.KindSRAM {
			prot = harden.ECC
		}
		var density float64
		if name == "prf.val" {
			density = prfDensity(rep, prof)
		} else {
			c, ok := model[name]
			if !ok {
				return nil, fmt.Errorf("protect: element %q registered but missing from ranking model — recalibrate", name)
			}
			density = prof.at(c.src) * c.base
			if g.class == pipeline.ClassData {
				density *= dataScale
			}
		}
		er := ElemRank{
			Name:     name,
			Kind:     g.kind,
			Prot:     prot,
			Words:    g.words,
			Bits:     g.bits,
			CostBits: g.words * harden.ProtectionCost(prot, g.wordWidth),
			Density:  density,
			Mass:     density * float64(g.bits),
		}
		rk.Elems = append(rk.Elems, er)
		rk.TotalMass += er.Mass
	}
	sort.Slice(rk.Elems, func(i, j int) bool {
		vi := rk.Elems[i].Mass / float64(rk.Elems[i].CostBits)
		vj := rk.Elems[j].Mass / float64(rk.Elems[j].CostBits)
		if vi != vj {
			return vi > vj
		}
		return rk.Elems[i].Name < rk.Elems[j].Name
	})
	return rk, nil
}

// Optimize spends a check-bit budget greedily down the ranking: each
// element is taken whole (all words, at its kind's domain) when its cost
// still fits the remaining budget, skipped otherwise — later, cheaper
// elements may still fit. The result is deterministic for a given ranking.
func Optimize(name string, rk *Ranking, budgetBits uint64) *Policy {
	p := &Policy{Name: name, Kind: KindStaticBudget, BudgetBits: budgetBits}
	remaining := budgetBits
	for _, er := range rk.Elems {
		if er.CostBits == 0 || er.CostBits > remaining {
			continue
		}
		remaining -= er.CostBits
		p.Assign = append(p.Assign, Assignment{Elem: er.Name, Prot: er.Prot})
	}
	p.normalize()
	p.Predicted = PredictCoverage(rk, p)
	return p
}

// CostOf returns the check bits a policy spends over this ranking's
// elements (the budget actually consumed, as opposed to the budget given).
func (rk *Ranking) CostOf(p *Policy) uint64 {
	var spent uint64
	for _, er := range rk.Elems {
		if prot := p.ProtectionOf(er.Name); prot != harden.Unprotected {
			spent += er.Words * harden.ProtectionCost(prot, er.Bits/er.Words)
		}
	}
	return spent
}

// PredictCoverage returns the share of the ranking's failure mass the
// policy's protected elements account for — the static prediction of the
// dynamically measured coverage (absorbed fraction of baseline failures).
func PredictCoverage(rk *Ranking, p *Policy) float64 {
	if rk.TotalMass == 0 {
		return 0
	}
	var covered float64
	for _, er := range rk.Elems {
		if p.ProtectionOf(er.Name) != harden.Unprotected {
			covered += er.Mass
		}
	}
	return covered / rk.TotalMass
}

// DeriveOptions parameterizes Derive.
type DeriveOptions struct {
	Seed  int64
	Scale float64
	// BudgetBits is the check-bit budget; zero means "equal budget": the
	// overhead of the paper's hand-picked placement over the same space.
	BudgetBits uint64
	// ProfileWarmup / ProfileWindow bound the fault-free residency run
	// (cycles); zero selects defaults.
	ProfileWarmup uint64
	ProfileWindow uint64
	// Static overrides the staticvuln analysis options.
	Static staticvuln.Options
}

// Derive closes the static→hardening loop for one benchmark: analyze the
// program statically, profile its fault-free residency, rank the state
// space, and optimize a protection policy under the budget. The returned
// ranking lets callers inspect or re-budget without re-analyzing.
func Derive(bench workload.Benchmark, opt DeriveOptions) (*Policy, *Ranking, error) {
	if opt.Seed == 0 {
		opt.Seed = 42
	}
	if opt.Scale == 0 {
		opt.Scale = 1.0
	}
	if opt.ProfileWarmup == 0 {
		opt.ProfileWarmup = 10_000
	}
	if opt.ProfileWindow == 0 {
		opt.ProfileWindow = 40_000
	}
	prog, err := workload.Generate(bench, workload.Config{Seed: opt.Seed, Scale: opt.Scale})
	if err != nil {
		return nil, nil, err
	}
	rep, err := staticvuln.Analyze(prog, opt.Static)
	if err != nil {
		return nil, nil, err
	}
	prof, err := MeasureProfile(prog, opt.ProfileWarmup, opt.ProfileWindow)
	if err != nil {
		return nil, nil, err
	}
	mem, err := prog.NewMemory()
	if err != nil {
		return nil, nil, err
	}
	pl, err := pipeline.New(pipeline.DefaultConfig(), mem, prog.Entry)
	if err != nil {
		return nil, nil, err
	}
	space := pl.State()
	rk, err := Rank(space, rep, prof)
	if err != nil {
		return nil, nil, err
	}
	budget := opt.BudgetBits
	if budget == 0 {
		if budget, err = EqualBudget(space); err != nil {
			return nil, nil, err
		}
	}
	pol := Optimize(fmt.Sprintf("static-budget/%s", bench), rk, budget)
	return pol, rk, nil
}
