package pipeline

// The stateful structures of the machine. Every word that models hardware
// state is a uint64 field registered in the StateSpace, so campaigns can
// flip any bit of any structure (except caches and predictor tables, which
// the paper excludes). Index fields are masked at every use: a corrupted
// pointer aliases to a wrong-but-valid entry exactly as mis-addressed
// hardware would, and can never crash the simulator.

// Fetch-queue pred-word bit positions (target occupies [47:0], the
// fetch-time global history [61:52]).
const (
	fqPredTaken  = 48
	fqPredConf   = 49
	fqPredBranch = 50
	fqFetchFault = 51
	fqHistShift  = 52
	fqPredBits   = 62
)

// fetchQueue sits between the fetch engine and rename (Figure 3's 32-entry
// fetch queue). Entries hold the raw instruction word — the I-latches — plus
// the front end's prediction metadata.
type fetchQueue struct {
	pc   [FQSize]uint64
	word [FQSize]uint64
	pred [FQSize]uint64

	head  uint64
	count uint64
}

func (q *fetchQueue) register(s *StateSpace) {
	for i := range q.pc {
		s.Register("fq.pc", KindLatch, ClassControl, &q.pc[i], 48)
		s.Register("fq.word", KindLatch, ClassControl, &q.word[i], 32)
		s.Register("fq.pred", KindLatch, ClassControl, &q.pred[i], fqPredBits)
	}
	s.Register("fq.head", KindLatch, ClassControl, &q.head, 5)
	s.Register("fq.count", KindLatch, ClassControl, &q.count, 6)
}

func (q *fetchQueue) reset() {
	*q = fetchQueue{}
}

func (q *fetchQueue) full() bool  { return q.count >= FQSize }
func (q *fetchQueue) empty() bool { return q.count == 0 }

func (q *fetchQueue) push(pc, word, pred uint64) {
	if q.full() {
		return
	}
	idx := (q.head + q.count) % FQSize
	q.pc[idx] = pc
	q.word[idx] = word
	q.pred[idx] = pred
	q.count++
}

func (q *fetchQueue) pop() (pc, word, pred uint64, ok bool) {
	if q.empty() {
		return 0, 0, 0, false
	}
	idx := q.head % FQSize
	pc, word, pred = q.pc[idx], q.word[idx], q.pred[idx]
	q.head = (q.head + 1) % FQSize
	q.count--
	return pc, word, pred, true
}

// ROB flag bits.
const (
	robValid      = 1 << 0
	robCompleted  = 1 << 1
	robHasDest    = 1 << 2
	robIsStore    = 1 << 3
	robIsLoad     = 1 << 4
	robIsBranch   = 1 << 5
	robIsCond     = 1 << 6
	robPredTaken  = 1 << 7
	robActTaken   = 1 << 8
	robHighConf   = 1 << 9
	robFetchFault = 1 << 10
	robHalt       = 1 << 11
	robExcValid   = 1 << 12
	robMispredict = 1 << 13
	// bits 16..18 hold the exception kind, bits 24..33 the fetch-time
	// global branch history the prediction was made with.
	robExcShift  = 16
	robHistShift = 24
	robFlagBits  = 34
)

// reorderBuffer is the 64-entry ROB. The aux word packs the store-queue
// index (or, for loads, the STQ tail snapshot used for disambiguation) in
// its low byte and the predicted target above it.
//
// The writer list below is the audited ownership matrix of the pipeline
// stages entitled to drive ROB latches; restorelint rejects writes from
// anywhere else.
//
//restorelint:writers doRename dispatchOne doWriteback retire commitStore executeALU executeLoad executeStore executeBranch raiseAt squashToCount
type reorderBuffer struct {
	ctl      [ROBSize]uint64 // packed control word (decode latches)
	pc       [ROBSize]uint64
	flags    [ROBSize]uint64
	physDest [ROBSize]uint64
	oldPhys  [ROBSize]uint64
	archDest [ROBSize]uint64
	result   [ROBSize]uint64 // actual branch target / memory address / exception address
	aux      [ROBSize]uint64 // stq index (low 8) | predicted target << 8

	head  uint64
	count uint64
}

func (r *reorderBuffer) register(s *StateSpace) {
	for i := range r.ctl {
		s.Register("rob.ctl", KindLatch, ClassControl, &r.ctl[i], ctlBits)
		s.Register("rob.pc", KindLatch, ClassControl, &r.pc[i], 48)
		s.Register("rob.flags", KindLatch, ClassControl, &r.flags[i], robFlagBits)
		s.Register("rob.physDest", KindLatch, ClassControl, &r.physDest[i], 7)
		s.Register("rob.oldPhys", KindLatch, ClassControl, &r.oldPhys[i], 7)
		s.Register("rob.archDest", KindLatch, ClassControl, &r.archDest[i], 5)
		s.Register("rob.result", KindLatch, ClassData, &r.result[i], 48)
		s.Register("rob.aux", KindLatch, ClassControl, &r.aux[i], 56)
	}
	s.Register("rob.head", KindLatch, ClassControl, &r.head, 6)
	s.Register("rob.count", KindLatch, ClassControl, &r.count, 7)
}

func (r *reorderBuffer) reset() { *r = reorderBuffer{} }

func (r *reorderBuffer) full() bool { return r.count >= ROBSize }

// pos converts a ROB slot index into its distance from the head; entries
// with pos >= count are not live.
func (r *reorderBuffer) pos(idx uint64) uint64 {
	return (idx - r.head) % ROBSize
}

func (r *reorderBuffer) alloc() (uint64, bool) {
	if r.full() {
		return 0, false
	}
	idx := (r.head + r.count) % ROBSize
	r.count++
	return idx, true
}

// Scheduler flag bits.
const (
	schValid   = 1 << 0
	schSrc1    = 1 << 1 // src1 present
	schSrc2    = 1 << 2
	schSrc3    = 1 << 3
	schIsLoad  = 1 << 4
	schIsStore = 1 << 5
	schIsBr    = 1 << 6
	schIsMul   = 1 << 7
	schFlgBits = 8
)

// scheduler is the 32-entry out-of-order issue window. Source operands are
// physical-register tags; readiness is checked against the register file's
// ready bits every cycle (the wakeup CAM).
//
//restorelint:writers fillScheduler execute executeALU executeLoad executeStore executeBranch scheduleWriteback squashToCount
type scheduler struct {
	flags  [SchedSize]uint64
	robIdx [SchedSize]uint64
	src1   [SchedSize]uint64
	src2   [SchedSize]uint64
	src3   [SchedSize]uint64 // previous dest mapping, for conditional moves
}

func (sc *scheduler) register(s *StateSpace) {
	for i := range sc.flags {
		s.Register("sched.flags", KindLatch, ClassControl, &sc.flags[i], schFlgBits)
		s.Register("sched.robIdx", KindLatch, ClassControl, &sc.robIdx[i], 6)
		s.Register("sched.src1", KindLatch, ClassControl, &sc.src1[i], 7)
		s.Register("sched.src2", KindLatch, ClassControl, &sc.src2[i], 7)
		s.Register("sched.src3", KindLatch, ClassControl, &sc.src3[i], 7)
	}
}

func (sc *scheduler) reset() { *sc = scheduler{} }

func (sc *scheduler) alloc() (int, bool) {
	for i := range sc.flags {
		if sc.flags[i]&schValid == 0 {
			return i, true
		}
	}
	return 0, false
}

// STQ flag bits.
const (
	stqValid    = 1 << 0
	stqReady    = 1 << 1
	stqIsSTL    = 1 << 2
	stqExcValid = 1 << 3
	stqExcShift = 4
	stqFlgBits  = 7
)

// storeQueue holds in-flight stores in program order between rename and
// commit; committed stores drain to memory through the (journalled)
// checkpoint domain.
//
//restorelint:writers dispatchOne executeStore commitStore squashToCount
type storeQueue struct {
	addr   [STQSize]uint64
	data   [STQSize]uint64
	flags  [STQSize]uint64
	robIdx [STQSize]uint64 // owning ROB entry, for age comparison

	head  uint64
	count uint64
}

func (q *storeQueue) register(s *StateSpace) {
	for i := range q.addr {
		s.Register("stq.addr", KindLatch, ClassData, &q.addr[i], 48)
		s.Register("stq.data", KindLatch, ClassData, &q.data[i], 64)
		s.Register("stq.flags", KindLatch, ClassControl, &q.flags[i], stqFlgBits)
		s.Register("stq.robIdx", KindLatch, ClassControl, &q.robIdx[i], 6)
	}
	s.Register("stq.head", KindLatch, ClassControl, &q.head, 4)
	s.Register("stq.count", KindLatch, ClassControl, &q.count, 5)
}

func (q *storeQueue) reset() { *q = storeQueue{} }

func (q *storeQueue) full() bool { return q.count >= STQSize }

func (q *storeQueue) alloc() (uint64, bool) {
	if q.full() {
		return 0, false
	}
	idx := (q.head + q.count) % STQSize
	q.flags[idx] = stqValid
	q.addr[idx] = 0
	q.data[idx] = 0
	q.count++
	return idx, true
}

// LDQ flag bits.
const (
	ldqValid   = 1 << 0
	ldqIssued  = 1 << 1
	ldqFwd     = 1 << 2 // value was forwarded from an older store
	ldqSize8   = 1 << 3 // 8-byte access (else 4)
	ldqFlgBits = 4
)

// loadQueue tracks in-flight loads in program order (Figure 3's LDQ). Its
// job under memory-dependence speculation is violation detection: a
// resolving store searches it for younger loads that already read the
// location.
//
//restorelint:writers dispatchOne doCommit executeLoad squashToCount
type loadQueue struct {
	addr   [LDQSize]uint64
	robIdx [LDQSize]uint64
	fwdRob [LDQSize]uint64 // forwarding store's ROB entry, when ldqFwd
	flags  [LDQSize]uint64

	head  uint64
	count uint64
}

func (q *loadQueue) register(s *StateSpace) {
	for i := range q.addr {
		s.Register("ldq.addr", KindLatch, ClassData, &q.addr[i], 48)
		s.Register("ldq.robIdx", KindLatch, ClassControl, &q.robIdx[i], 6)
		s.Register("ldq.fwdRob", KindLatch, ClassControl, &q.fwdRob[i], 6)
		s.Register("ldq.flags", KindLatch, ClassControl, &q.flags[i], ldqFlgBits)
	}
	s.Register("ldq.head", KindLatch, ClassControl, &q.head, 4)
	s.Register("ldq.count", KindLatch, ClassControl, &q.count, 5)
}

func (q *loadQueue) reset() { *q = loadQueue{} }

func (q *loadQueue) full() bool { return q.count >= LDQSize }

func (q *loadQueue) alloc() (uint64, bool) {
	if q.full() {
		return 0, false
	}
	idx := (q.head + q.count) % LDQSize
	q.flags[idx] = ldqValid
	q.addr[idx] = 0
	q.fwdRob[idx] = 0
	q.count++
	return idx, true
}

// regFile is the merged physical register file (Figure 3's "Register File"
// SRAM) plus its ready scoreboard.
type regFile struct {
	val   [PhysRegs]uint64
	ready [PhysRegs / 64]uint64
}

func (f *regFile) register(s *StateSpace) {
	for i := range f.val {
		s.Register("prf.val", KindSRAM, ClassData, &f.val[i], 64)
	}
	for i := range f.ready {
		s.Register("prf.ready", KindLatch, ClassControl, &f.ready[i], 64)
	}
}

func (f *regFile) isReady(tag uint64) bool {
	tag %= PhysRegs
	return f.ready[tag/64]&(1<<(tag%64)) != 0
}

func (f *regFile) setReady(tag uint64, rdy bool) {
	tag %= PhysRegs
	if rdy {
		f.ready[tag/64] |= 1 << (tag % 64)
	} else {
		f.ready[tag/64] &^= 1 << (tag % 64)
	}
}

func (f *regFile) read(tag uint64) uint64 { return f.val[tag%PhysRegs] }
func (f *regFile) write(tag, v uint64)    { f.val[tag%PhysRegs] = v }

// flipBit inverts one bit of a physical register — the fault-model entry
// point for directed corruption.
func (f *regFile) flipBit(tag uint64, bit uint) {
	f.val[tag%PhysRegs] ^= 1 << (bit % 64)
}

// aliasTable maps architectural to physical registers (the Spec/Arch RATs
// of Figure 3, SRAM arrays).
type aliasTable struct {
	m [32]uint64
}

func (t *aliasTable) register(s *StateSpace, name string) {
	for i := range t.m {
		s.Register(name, KindSRAM, ClassControl, &t.m[i], 7)
	}
}

func (t *aliasTable) get(r uint64) uint64 { return t.m[r%32] % PhysRegs }
func (t *aliasTable) set(r, phys uint64)  { t.m[r%32] = phys % PhysRegs }

// freeList is the physical-register free pool, stored as a bit vector
// (Figure 3's Spec/Arch free lists collapse into one recomputable pool in
// this model; recovery rebuilds it from the surviving ROB contents).
//
//restorelint:writers squashToCount
type freeList struct {
	bits [PhysRegs / 64]uint64
}

func (f *freeList) register(s *StateSpace) {
	for i := range f.bits {
		s.Register("freelist", KindSRAM, ClassControl, &f.bits[i], 64)
	}
}

func (f *freeList) reset() { *f = freeList{} }

func (f *freeList) alloc() (uint64, bool) {
	for w := range f.bits {
		if f.bits[w] == 0 {
			continue
		}
		for b := 0; b < 64; b++ {
			if f.bits[w]&(1<<b) != 0 {
				f.bits[w] &^= 1 << b
				return uint64(w*64 + b), true
			}
		}
	}
	return 0, false
}

func (f *freeList) free(tag uint64) {
	tag %= PhysRegs
	f.bits[tag/64] |= 1 << (tag % 64)
}

// execWindow models the execution-unit pipeline registers: results computed
// at issue that are still in flight toward writeback. Timing metadata
// (completion cycle, busy flag) is simulator bookkeeping, but the value and
// destination tags are real latches and injectable.
const execSlots = 16

//restorelint:writers scheduleWriteback
type execWindow struct {
	val [execSlots]uint64
	tag [execSlots]uint64 // physical destination; bit 7 set = no destination
	rob [execSlots]uint64

	busy   [execSlots]bool   // not injectable: scheduling metadata
	doneAt [execSlots]uint64 //restorelint:ignore stateregister — completion timing, scheduling metadata
}

const execNoDest = 1 << 7

func (e *execWindow) register(s *StateSpace) {
	for i := range e.val {
		s.Register("exec.val", KindLatch, ClassData, &e.val[i], 64)
		s.Register("exec.tag", KindLatch, ClassControl, &e.tag[i], 8)
		s.Register("exec.rob", KindLatch, ClassControl, &e.rob[i], 6)
	}
}

func (e *execWindow) reset() { *e = execWindow{} }

func (e *execWindow) alloc() (int, bool) {
	for i := range e.busy {
		if !e.busy[i] {
			return i, true
		}
	}
	return 0, false
}

// ---------------------------------------------------------------------------
// copyFrom: wholesale state copies for Pipeline.ResetFrom. Every structure
// above is a pure value type (fixed-size arrays, no slices), so assignment
// copies all of it. Routing the copies through owner methods keeps the
// statemut write discipline intact: ResetFrom rewrites every registered
// word, and these are the owners entitled to do that.

func (q *fetchQueue) copyFrom(src *fetchQueue)       { *q = *src }
func (r *reorderBuffer) copyFrom(src *reorderBuffer) { *r = *src }
func (sc *scheduler) copyFrom(src *scheduler)        { *sc = *src }
func (q *storeQueue) copyFrom(src *storeQueue)       { *q = *src }
func (q *loadQueue) copyFrom(src *loadQueue)         { *q = *src }
func (f *regFile) copyFrom(src *regFile)             { *f = *src }
func (t *aliasTable) copyFrom(src *aliasTable)       { *t = *src }
func (f *freeList) copyFrom(src *freeList)           { *f = *src }
func (e *execWindow) copyFrom(src *execWindow)       { *e = *src }
