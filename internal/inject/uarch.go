package inject

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/arch"
	"repro/internal/campaignio"
	"repro/internal/harden"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/protect"
	"repro/internal/workload"
)

// consultProtection is the single sanctioned point where campaign code reads
// a protection map (the restorelint protectpolicy analyzer enforces this).
// Centralising the read keeps the fault-model semantics in one place: a flip
// landing in a parity domain is detected on read and recovered by flush, one
// landing in an ECC domain is corrected — either way it cannot fail.
func consultProtection(m *harden.Map, elem int) harden.Protection {
	return m.Protection(elem)
}

// UArchConfig parameterises a microarchitectural fault-injection campaign
// (Section 4.2): single bit flips into the pipeline's latches and SRAM
// cells, with caches and predictor tables excluded, at pre-selected
// injection points, each trial monitored for up to WindowCycles against a
// golden execution.
type UArchConfig struct {
	Bench workload.Benchmark
	Seed  int64
	Scale float64 // workload scale; 0 = 1.0

	// Points is the number of injection points (paper: 250-300 across
	// the campaign); TrialsPerPoint bits are flipped at each.
	Points         int
	TrialsPerPoint int

	// WarmupCycles runs the pipeline before the first point ("the model
	// was allowed to warm-up prior to each fault injection").
	WarmupCycles uint64
	// SpreadCycles is the range after warm-up that points are drawn
	// from.
	SpreadCycles uint64
	// WindowCycles is the per-trial observation window (paper: 10000).
	WindowCycles uint64

	// LatchesOnly restricts targeting to pipeline latches, excluding
	// SRAM arrays (the Section 5.1.2 campaign).
	LatchesOnly bool

	// BurstBits flips a run of adjacent bits per trial instead of one
	// (default 1). The paper's fault model is single-bit (Section 4.2);
	// this extension models the spatial multi-bit upsets that grow more
	// common as cells shrink.
	BurstBits int

	// Harden applies a protection scheme; flips landing in protected
	// elements are corrected/flushed and cannot fail (Figure 6).
	Harden harden.Scheme

	// Policy, if non-nil, overrides Harden with an explicit protection
	// policy (internal/protect) — e.g. one derived by the budgeted
	// optimizer from static vulnerability analysis. Protection is consulted
	// only after each pre-drawn bit pick, so campaigns at the same seed
	// visit identical picks under every policy; its fingerprint enters the
	// durable-campaign plan string.
	Policy *protect.Policy

	// Pipeline optionally overrides the processor configuration.
	Pipeline *pipeline.Config

	// NoDecodeCache disables the shared pre-decoded instruction cache
	// built once per campaign from the workload's code image. The cache
	// verifies every fetched word before hitting, so it is inert: results
	// are byte-identical either way (the equivalence tests prove it), and
	// the toggle is excluded from the durable-campaign plan string.
	NoDecodeCache bool

	// NoEarlyExit keeps every trial simulating to the end of its window
	// even after its outcome classification is final (terminal pipeline
	// status or masked reconvergence), instead of stopping at the
	// decision. Inert by construction — the decided classification is
	// what the trial reports either way — and excluded from the plan
	// string; exists to prove the early-exit engine sound.
	NoEarlyExit bool

	// LegacyHash selects the original per-element state digest instead of
	// the packed extent walk. Trials compare hashes only for equality
	// within one campaign, so the choice is inert and excluded from the
	// plan string; exists to prove campaign outcomes digest-independent.
	LegacyHash bool

	// Workers is the number of goroutines trials fan out across; 0 (or 1)
	// runs the campaign serially on the calling goroutine. Results are
	// bit-identical for every worker count: all random bit picks are
	// pre-drawn serially and each trial writes a pre-assigned result slot.
	Workers int

	// Progress, if set, is called after each completed trial with the
	// running and total trial counts. With Workers > 1 it is invoked from
	// worker goroutines and must be safe for concurrent use. It must not
	// influence campaign state.
	Progress func(done, total int)

	// Obs, if non-nil, receives campaign telemetry under the
	// campaign_uarch_* namespace, plus per-stage pipeline counters and
	// occupancy histograms from the master pipeline under pipeline_*.
	// Purely observational: results are byte-identical with or without a
	// sink.
	Obs obs.Sink

	// ResumeFrom, if non-empty, makes the campaign durable: a manifest and
	// an append-only checksummed trial journal live in this directory
	// (internal/campaignio). Slots already journalled are loaded instead
	// of re-run, and newly completed trials are appended, so an
	// interrupted campaign pointed back at the same directory continues
	// where it stopped — with results byte-identical to a one-shot run.
	// The manifest is validated against this configuration's plan
	// fingerprint; a mismatch is an error, never a silent overwrite.
	ResumeFrom string

	// ShardIndex/ShardCount partition the pre-drawn trial plan across
	// processes: shard i of n runs the slots s with s%n == i. Each shard
	// journals into its own ResumeFrom directory; MergeUArch (or the
	// restore-sim merge subcommand) reassembles the full result. Zero
	// ShardCount means unsharded. Sharding requires ResumeFrom.
	ShardIndex int
	ShardCount int

	// GoldenImage, if non-empty, is the path of a warmed-state golden
	// image (internal/ckptio). When the file exists the campaign loads it
	// instead of simulating WarmupCycles; when it does not, the campaign
	// warms up normally and saves the image for the next run — so N
	// sharded workers pointed at one image pay for warm-up once. The image
	// records the configuration that produced it (bench, seed, scale,
	// warm-up length, pipeline config); loading a mismatched image is an
	// error, never silently wrong state. Results are byte-identical with
	// or without an image, so — like the other inert toggles — the field
	// is excluded from the durable-campaign plan string.
	GoldenImage string

	// CompressJournal selects the compressed-segment journal encoding
	// (campaignio format RSTJRNL2) for newly created durable journals.
	// Existing journals keep their own format on resume, scans read both,
	// and merged output is identical either way, so the toggle is inert
	// and excluded from the plan string.
	CompressJournal bool

	// Interrupt, if non-nil, stops the campaign cleanly when it becomes
	// readable: in-flight trials drain, the journal tail is flushed, and
	// RunUArch returns ErrInterrupted.
	Interrupt <-chan struct{}
}

func (c *UArchConfig) applyDefaults() {
	if c.Scale == 0 {
		c.Scale = 1.0
	}
	if c.Points == 0 {
		c.Points = 25
	}
	if c.TrialsPerPoint == 0 {
		c.TrialsPerPoint = 50
	}
	if c.WarmupCycles == 0 {
		c.WarmupCycles = 10_000
	}
	if c.SpreadCycles == 0 {
		c.SpreadCycles = 40_000
	}
	if c.WindowCycles == 0 {
		c.WindowCycles = 10_000
	}
	if c.BurstBits == 0 {
		c.BurstBits = 1
	}
	if c.ShardCount == 0 {
		c.ShardCount = 1
	}
}

// UArchResult is the outcome of one microarchitectural campaign.
type UArchResult struct {
	Config      UArchConfig
	Trials      []UArchTrial
	TotalBits   uint64
	LatchBits   uint64
	HardenStats harden.Stats
}

// Distribution bins the trials at a checkpoint interval under a detector.
func (r *UArchResult) Distribution(interval uint64, det Detector) map[string]float64 {
	return UArchDistribution(r.Trials, interval, det).Fraction
}

// goldenTrace is the recorded golden continuation at one injection point.
type goldenTrace struct {
	commits []pipeline.CommitEvent
	// hashAt maps a state digest to the first cycle (relative to the
	// point) it occurred at, enabling masked detection even when the
	// faulty run lags the golden by a few cycles of timing skew.
	hashAt map[uint64]uint64
	// mispredicts is the golden run's conditional-misprediction
	// resolution schedule. Faulty-run mispredictions matching this
	// schedule are natural, not fault-induced, and do not count as
	// control-flow symptoms (the paper classifies cfv as faults that
	// CAUSED incorrect control flow).
	mispredicts []mispRec
}

type mispRec struct {
	pc       uint64
	taken    bool
	highConf bool
}

// uarchPick is one pre-drawn (point, trial) bit selection.
type uarchPick struct {
	ref     pipeline.BitRef
	isLatch bool
}

// RunUArch executes the campaign: warm up, fork a golden pipeline at each
// injection point, record its continuation, then run TrialsPerPoint
// corrupted clones against it — serially, or fanned out across cfg.Workers
// goroutines with bit-identical results (all bit picks are pre-drawn on the
// dispatching goroutine; each trial fills a pre-assigned result slot).
//
// If the golden pipeline stops during warm-up or before an injection point
// (a short workload at small Scale ends before the spread is exhausted),
// the remaining points are truncated and the partial result is returned
// with TotalBits and the completed Trials populated.
//
// With ResumeFrom set the campaign is durable: completed trials are
// journalled and recovered on the next run (see the package comment in
// journal.go). With ShardCount > 1 only the owned slots run — the returned
// result is partial (other shards' slots are zero-valued) and MergeUArch
// reassembles the full one. When Interrupt fires, in-flight trials drain,
// the journal flushes, and RunUArch returns ErrInterrupted.
func RunUArch(cfg UArchConfig) (*UArchResult, error) {
	cfg.applyDefaults()
	if err := validateSharding(cfg.ResumeFrom, cfg.ShardIndex, cfg.ShardCount); err != nil {
		return nil, err
	}
	prog, err := workload.Generate(cfg.Bench, workload.Config{Seed: cfg.Seed, Scale: cfg.Scale})
	if err != nil {
		return nil, err
	}
	m, err := prog.NewMemory()
	if err != nil {
		return nil, err
	}
	pcfg := pipeline.DefaultConfig()
	if cfg.Pipeline != nil {
		pcfg = *cfg.Pipeline
	}
	master, err := pipeline.New(pcfg, m, prog.Entry)
	if err != nil {
		return nil, err
	}
	if !cfg.NoDecodeCache {
		// Decode the code image once; every clone shares the cache
		// read-only (Clone/ResetFrom propagate the pointer).
		master.SetDecodeCache(isa.NewDecodeCache(prog.CodeBase, prog.Code))
	}
	master.State().SetLegacyHash(cfg.LegacyHash)
	// Per-stage counters and occupancy histograms track the master (warm-up
	// walk + golden recording); per-trial clones never inherit the
	// attachment (Clone/ResetFrom drop it).
	master.AttachObs(cfg.Obs, "pipeline")
	wall := cfg.Obs.Timer("campaign_uarch_wall").Start()
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x0A12C4))

	// Injection points as cycle offsets past warm-up, visited in order.
	// Drawn before the warm-up status check so a truncated campaign
	// consumes the same RNG stream as a full one.
	offsets := make([]uint64, cfg.Points)
	for i := range offsets {
		offsets[i] = uint64(rng.Int63n(int64(cfg.SpreadCycles)))
	}
	sort.Slice(offsets, func(i, j int) bool { return offsets[i] < offsets[j] })

	space := master.State()
	assign := harden.SchemeAssignments(cfg.Harden)
	if cfg.Policy != nil {
		assign = cfg.Policy.Assignments()
	}
	protMap, err := harden.NewMapExact(space, assign)
	if err != nil {
		return nil, err
	}
	result := &UArchResult{
		Config:      cfg,
		TotalBits:   space.TotalBits(false),
		LatchBits:   space.TotalBits(true),
		HardenStats: harden.Survey(space, protMap),
	}
	if cfg.LatchesOnly && result.LatchBits == 0 {
		return nil, fmt.Errorf("latch-only campaign over %d latch bits: %w",
			result.LatchBits, ErrNoEligibleBits)
	}

	// Pre-draw every (point, trial) bit pick serially, in exactly the
	// order the serial engine consumes the stream. The picks depend only
	// on the state space's fixed geometry, so drawing them up front (and
	// never handing the rand.Rand to a worker) is what makes the parallel
	// campaign bit-identical to the serial one.
	picks := make([]uarchPick, cfg.Points*cfg.TrialsPerPoint)
	for i := range picks {
		ref, isLatch, err := pickBit(space, rng, cfg.LatchesOnly)
		if err != nil {
			return nil, err
		}
		picks[i] = uarchPick{ref: ref, isLatch: isLatch}
	}

	// Durable campaigns: validate/write the manifest, recover already
	// journalled slots (decoded straight into their result slots), and
	// append every newly completed trial. All randomness is pre-drawn
	// above, so skipping recovered slots cannot perturb the RNG stream.
	var jr *campaignJournal
	trials := make([]UArchTrial, len(picks))
	done := make([]bool, len(picks))
	if cfg.ResumeFrom != "" {
		man, err := cfg.manifest(result)
		if err != nil {
			return nil, err
		}
		var loaded [][]byte
		jr, loaded, err = openCampaignJournal(cfg.ResumeFrom, man, cfg.CompressJournal)
		if err != nil {
			return nil, err
		}
		for slot, p := range loaded {
			if p == nil {
				continue
			}
			if err := json.Unmarshal(p, &trials[slot]); err != nil {
				jr.finish(nil, "")
				return nil, fmt.Errorf("inject: %s: %w: slot %d: %v",
					cfg.ResumeFrom, campaignio.ErrCorrupt, slot, err)
			}
			done[slot] = true
		}
	}
	owns := func(slot int) bool {
		return cfg.ShardCount <= 1 || slot%cfg.ShardCount == cfg.ShardIndex
	}
	// pointLoaded reports whether EVERY slot of a point was recovered from
	// the journal — only then is golden recording skippable (see journal.go
	// on why ownership alone is not enough: truncation detection must stay
	// identical across shards).
	pointLoaded := func(pi int) bool {
		for t := 0; t < cfg.TrialsPerPoint; t++ {
			if !done[pi*cfg.TrialsPerPoint+t] {
				return false
			}
		}
		return true
	}
	// totalTrials sizes the progress meter to the slots this run is
	// responsible for: owned slots, whether recovered or re-run.
	totalTrials := 0
	for slot := range picks {
		if owns(slot) {
			totalTrials++
		}
	}

	// Warm up the master — or restore the warm-up boundary from a golden
	// image. The image captures bit-identical state, so both paths produce
	// byte-identical campaigns (TestUArchGoldenImageEquivalence).
	loaded, err := loadUArchGolden(&cfg, pcfg, master)
	if err != nil {
		jr.finish(nil, "")
		return nil, err
	}
	if !loaded {
		master.RunCycles(cfg.WarmupCycles)
		if err := saveUArchGolden(&cfg, pcfg, master); err != nil {
			jr.finish(nil, "")
			return nil, err
		}
	}
	if master.Status() != pipeline.StatusRunning {
		// The program ended inside warm-up: nothing to inject into.
		result.Trials = []UArchTrial{}
		recordUArchTelemetry(cfg.Obs, result, true, wall.Stop())
		if err := jr.finish(cfg.Obs, "campaign_uarch"); err != nil {
			return nil, err
		}
		return result, nil
	}

	eng := newEngine(cfg.Workers, cfg.Obs, "campaign_uarch")
	pool := clonePool{
		hits:   cfg.Obs.Counter("campaign_uarch_clone_pool_hits_total"),
		misses: cfg.Obs.Counter("campaign_uarch_clone_pool_misses_total"),
	}
	pointsRun := 0
	stopped := false

	base := cfg.WarmupCycles
	for pi, off := range offsets {
		if interrupted(cfg.Interrupt) {
			stopped = true
			break
		}
		target := cfg.WarmupCycles + off
		if target > base {
			master.RunCycles(target - base)
			base = target
		}
		if master.Status() != pipeline.StatusRunning {
			break // program ended mid-spread: truncate remaining points
		}

		// A point whose every slot was recovered needs no golden trace
		// and no trials; the master walks on to the next point.
		if pointLoaded(pi) {
			for t := 0; t < cfg.TrialsPerPoint; t++ {
				if owns(pi*cfg.TrialsPerPoint + t) {
					eng.done(cfg.Progress, totalTrials)
				}
			}
			pointsRun = pi + 1
			continue
		}

		// Golden-trace recording stays on the dispatching goroutine;
		// the master cannot be shared with in-flight trials.
		trace, err := recordGolden(master, cfg.WindowCycles)
		if err != nil {
			eng.wait()
			jr.finish(cfg.Obs, "campaign_uarch")
			return nil, err
		}
		if trace == nil {
			break // golden continuation ended inside the window: truncate
		}

		for t := 0; t < cfg.TrialsPerPoint; t++ {
			slot := pi*cfg.TrialsPerPoint + t
			if !owns(slot) {
				continue // another shard's slot
			}
			if done[slot] {
				eng.done(cfg.Progress, totalTrials)
				continue // recovered from the journal
			}
			if interrupted(cfg.Interrupt) {
				stopped = true
				break
			}
			pick := picks[slot]
			elem := space.Elements()[pick.ref.Elem]

			trial := UArchTrial{
				PointCycle:  master.Cycles(),
				Elem:        elem.Name,
				Bit:         pick.ref.Bit,
				IsLatch:     pick.isLatch,
				DeadlockLat: Never,
				ExcLat:      Never,
				CFVLat:      Never,
				HCMispLat:   Never,
				AnyMispLat:  Never,
				DivergeLat:  Never,
			}

			if consultProtection(protMap, pick.ref.Elem) != harden.Unprotected {
				// Parity detects the flip on read (recovered by
				// flush); ECC corrects it. Either way it cannot
				// cause failure.
				trial.Protected = true
				trials[slot] = trial
				jr.record(slot, &trials[slot])
				eng.done(cfg.Progress, totalTrials)
				continue
			}

			// Clone (or pool-reset) on the dispatching goroutine,
			// while the master still sits at this point.
			faulty := pool.acquire(master)
			ref := pick.ref
			eng.submit(func() {
				runUArchTrial(faulty, ref, cfg.BurstBits, trace, cfg.WindowCycles, &trial, cfg.NoEarlyExit)
				trials[slot] = trial
				jr.record(slot, &trials[slot])
				pool.release(faulty)
				eng.done(cfg.Progress, totalTrials)
			})
		}
		if stopped {
			break
		}
		pointsRun = pi + 1
	}
	eng.wait()
	if stopped {
		// Drained workers have journalled their trials; flush the tail so
		// a resumed run recovers every completed slot.
		cfg.Obs.Counter("campaign_uarch_interrupted_total").Inc()
		if err := jr.finish(cfg.Obs, "campaign_uarch"); err != nil {
			return nil, err
		}
		return nil, ErrInterrupted
	}
	result.Trials = trials[:pointsRun*cfg.TrialsPerPoint]
	recordUArchTelemetry(cfg.Obs, result, pointsRun < cfg.Points, wall.Stop())
	if err := jr.finish(cfg.Obs, "campaign_uarch"); err != nil {
		return nil, err
	}
	return result, nil
}

// manifest builds the durable-campaign manifest for this configuration.
// result supplies the geometry aggregates (Aux) that a merge reconstructs
// without building a pipeline. The receiver must already have defaults
// applied.
func (c UArchConfig) manifest(result *UArchResult) (campaignio.Manifest, error) {
	aux, err := json.Marshal(uarchAux{
		TotalBits: result.TotalBits,
		LatchBits: result.LatchBits,
		HardenStats: hardenStatsJSON{
			TotalBits:    result.HardenStats.TotalBits,
			ECCBits:      result.HardenStats.ECCBits,
			ParityBits:   result.HardenStats.ParityBits,
			OverheadBits: result.HardenStats.OverheadBits,
		},
	})
	if err != nil {
		return campaignio.Manifest{}, err
	}
	shards := c.ShardCount
	if shards == 0 {
		shards = 1
	}
	return campaignio.Manifest{
		Version:    campaignio.FormatVersion,
		Kind:       "uarch",
		ConfigHash: fingerprint(c.planString()),
		Seed:       c.Seed,
		Bench:      string(c.Bench),
		Slots:      c.Points * c.TrialsPerPoint,
		ShardIndex: c.ShardIndex,
		ShardCount: shards,
		Aux:        aux,
	}, nil
}

// pickBitAttempts bounds the rejection sampler. Latches are the majority of
// the state space, so honest configurations terminate in a couple of draws;
// the bound exists so a degenerate state space surfaces ErrNoEligibleBits
// instead of hanging the campaign.
const pickBitAttempts = 1 << 16

// pickBit samples a uniformly random eligible bit (rejection sampling for
// the latch-only campaign). It fails with ErrNoEligibleBits when the
// constraints leave nothing to sample.
func pickBit(space *pipeline.StateSpace, rng *rand.Rand, latchesOnly bool) (pipeline.BitRef, bool, error) {
	if space.TotalBits(false) == 0 || (latchesOnly && space.TotalBits(true) == 0) {
		return pipeline.BitRef{}, false, ErrNoEligibleBits
	}
	for attempt := 0; attempt < pickBitAttempts; attempt++ {
		n := uint64(rng.Int63n(int64(space.TotalBits(false))))
		ref, ok := space.NthBit(n)
		if !ok {
			continue
		}
		isLatch := space.Elements()[ref.Elem].Kind == pipeline.KindLatch
		if latchesOnly && !isLatch {
			continue
		}
		return ref, isLatch, nil
	}
	return pipeline.BitRef{}, false, ErrNoEligibleBits
}

// recordGolden forks the master and records its continuation: per-cycle
// state digests and the committed instruction stream. A (nil, nil) return
// means the golden continuation stopped inside the observation window — the
// program is ending — and the campaign should truncate at this point rather
// than fail.
func recordGolden(master *pipeline.Pipeline, window uint64) (*goldenTrace, error) {
	g := master.Clone()
	trace := &goldenTrace{
		commits: make([]pipeline.CommitEvent, 0, window),
		hashAt:  make(map[uint64]uint64, window),
	}
	g.CommitHook = func(ev pipeline.CommitEvent) {
		trace.commits = append(trace.commits, ev)
	}
	g.BranchHook = func(ev pipeline.BranchEvent) {
		if ev.IsCond && ev.Mispredicted {
			trace.mispredicts = append(trace.mispredicts,
				mispRec{pc: ev.PC, taken: ev.ActualTaken, highConf: ev.HighConf})
		}
	}
	// Record with 25% slack so a faulty run that gets slightly ahead
	// still has golden events to compare against.
	total := window + window/4
	for c := uint64(0); c <= total; c++ {
		h := g.State().Hash()
		if _, seen := trace.hashAt[h]; !seen {
			trace.hashAt[h] = c
		}
		if c < total {
			g.Cycle()
			if g.Status() == pipeline.StatusHalted {
				return nil, nil // program ends inside the window: truncate
			}
			if g.Status() != pipeline.StatusRunning {
				return nil, fmt.Errorf("inject: golden continuation stopped: %v", g.Status())
			}
		}
	}
	return trace, nil
}

// runUArchTrial flips the bit and monitors the clone against the golden
// trace. The trial stops as soon as its classification is decided — a
// terminal pipeline status or a masked reconvergence — unless noEarlyExit
// asks for the proof mode, which freezes the decision (trialDecision), runs
// the window out, and returns the frozen record.
func runUArchTrial(f *pipeline.Pipeline, ref pipeline.BitRef, burst int, trace *goldenTrace, window uint64, trial *UArchTrial, noEarlyExit bool) {
	const hashEvery = 16

	// Flip a run of adjacent bits within the element (single-bit unless
	// the campaign models burst upsets). The run clips at the element's
	// width, as a physical strike clips at the array edge.
	width := f.State().Elements()[ref.Elem].Bits
	for b := 0; b < burst && ref.Bit+uint8(b) < width; b++ {
		f.State().Flip(pipeline.BitRef{Elem: ref.Elem, Bit: ref.Bit + uint8(b)})
	}
	flippedBit := f.State().Peek(ref)

	injRetired := f.Retired()
	var (
		commitIdx   int
		cfv         bool
		diverged    [32]bool
		divergedN   int
		divergedMem map[uint64]bool
	)
	markReg := func(r isa.Reg, diff bool) {
		if r == isa.RegZero {
			return
		}
		i := int(r) % 32
		if diff && !diverged[i] {
			diverged[i] = true
			divergedN++
		} else if !diff && diverged[i] {
			diverged[i] = false
			divergedN--
		}
	}

	latency := func() uint64 {
		lat := f.Retired() - injRetired
		if lat == 0 {
			lat = 1
		}
		return lat
	}

	f.CommitHook = func(ev pipeline.CommitEvent) {
		if cfv || commitIdx >= len(trace.commits) {
			commitIdx++
			return
		}
		g := trace.commits[commitIdx]
		commitIdx++

		if ev.Exception != arch.ExcNone {
			return // recorded via pipeline status
		}
		noteDiverge := func() {
			if trial.DivergeLat == Never {
				trial.DivergeLat = latency()
			}
		}

		// Control-flow violation detection, Table 1's two varieties:
		// legal-but-incorrect (a branch resolving to the wrong outcome)
		// and illegal (branching behaviour appearing or disappearing,
		// or the committed stream walking a different path — PC and
		// instruction both differ). A corrupted PC latch under an
		// unchanged non-branch instruction is bookkeeping damage, not a
		// violation; its real effects (wrong branch targets, wrong link
		// values) surface through these checks.
		branchChanged := ev.IsBranch != g.IsBranch ||
			(ev.IsBranch && (ev.Taken != g.Taken || ev.Target != g.Target))
		wrongPath := ev.PC != g.PC && ev.Inst != g.Inst
		if branchChanged || wrongPath {
			if trial.CFVLat == Never {
				trial.CFVLat = latency()
			}
			cfv = true
			trial.EverDiverged = true
			noteDiverge()
			return
		}

		// Register effects. When the faulty run writes a different
		// destination than the golden run, both registers diverge: the
		// one that got a wrong value and the one that missed its write.
		if ev.HasDest || g.HasDest {
			switch {
			case ev.HasDest && g.HasDest && ev.DestArch == g.DestArch:
				same := ev.DestVal == g.DestVal
				if !same {
					trial.EverDiverged = true
					noteDiverge()
				}
				markReg(ev.DestArch, !same)
			default:
				trial.EverDiverged = true
				noteDiverge()
				if ev.HasDest {
					markReg(ev.DestArch, true)
				}
				if g.HasDest {
					markReg(g.DestArch, true)
				}
			}
		}

		// Memory effects, including stores appearing or disappearing
		// under a corrupted control word.
		if ev.IsStore || g.IsStore {
			if divergedMem == nil && !(ev.IsStore && g.IsStore &&
				ev.MemAddr == g.MemAddr && ev.StoreVal == g.StoreVal) {
				divergedMem = make(map[uint64]bool)
			}
			switch {
			case ev.IsStore && !g.IsStore:
				trial.EverDiverged = true
				noteDiverge()
				divergedMem[ev.MemAddr] = true
			case !ev.IsStore && g.IsStore:
				trial.EverDiverged = true
				noteDiverge()
				divergedMem[g.MemAddr] = true
			case ev.MemAddr != g.MemAddr:
				trial.EverDiverged = true
				noteDiverge()
				divergedMem[ev.MemAddr] = true
				divergedMem[g.MemAddr] = true
			case ev.StoreVal != g.StoreVal:
				trial.EverDiverged = true
				noteDiverge()
				divergedMem[ev.MemAddr] = true
			default:
				if divergedMem != nil {
					delete(divergedMem, ev.MemAddr)
				}
			}
		}
	}
	mispIdx := 0
	f.BranchHook = func(ev pipeline.BranchEvent) {
		if !ev.Mispredicted || !ev.IsCond {
			return
		}
		// Match against the golden misprediction schedule: the k-th
		// faulty misprediction is natural iff it coincides with the
		// golden run's k-th. Any deviation — different branch, outcome
		// or confidence, or an extra event — is fault-induced.
		natural := mispIdx < len(trace.mispredicts) &&
			trace.mispredicts[mispIdx] == mispRec{pc: ev.PC, taken: ev.ActualTaken, highConf: ev.HighConf}
		mispIdx++
		if natural {
			return
		}
		if trial.AnyMispLat == Never {
			trial.AnyMispLat = latency()
		}
		if ev.HighConf && trial.HCMispLat == Never {
			trial.HCMispLat = latency()
		}
	}

	var dec trialDecision
	for c := uint64(1); c <= window; c++ {
		f.Step()
		switch f.Status() {
		case pipeline.StatusExcepted:
			if !dec.decided {
				kind, _, _ := f.Exception()
				trial.ExcLat = latency()
				trial.ExcKind = kind
				dec.decide(trial)
			}
			if !noEarlyExit {
				return
			}
		case pipeline.StatusDeadlocked:
			if !dec.decided {
				trial.DeadlockLat = latency()
				dec.decide(trial)
			}
			if !noEarlyExit {
				return
			}
		case pipeline.StatusHalted:
			// Synthetic workloads never halt; a committed HALT means
			// corrupted control flow reached a halt encoding.
			if !dec.decided {
				if trial.CFVLat == Never {
					trial.CFVLat = latency()
				}
				trial.EverDiverged = true
				dec.decide(trial)
			}
			if !noEarlyExit {
				return
			}
		}
		if c%hashEvery == 0 && !cfv && divergedN == 0 && len(divergedMem) == 0 {
			if gc, ok := trace.hashAt[f.State().Hash()]; ok && gc <= c {
				// Microarchitectural state matches the golden run
				// (possibly lagged): the fault is gone.
				if !dec.decided {
					trial.Masked = true
					dec.decide(trial)
				}
				if !noEarlyExit {
					return
				}
			}
		}
	}

	if dec.decided {
		// NoEarlyExit ran the window out past the decision; the frozen
		// classification is the result, and final classification is
		// skipped exactly as the early-exit returns skip it.
		*trial = dec.frozen
		return
	}
	trial.ArchCorrupt = cfv || divergedN > 0 || len(divergedMem) > 0
	// The fault is "stuck" when the flipped bit still holds its post-flip
	// value and nothing architectural ever diverged: it sits unread in
	// (very likely dead) state, the paper's "other" category. Bits that
	// self-heal (overwritten back) converge to the golden hash and are
	// classified masked before reaching here.
	trial.FaultStuck = f.State().Peek(ref) == flippedBit && !trial.EverDiverged
}
