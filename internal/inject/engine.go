// Campaign engine: deterministic fan-out of injection trials across a
// worker pool.
//
// The paper's campaigns are statistical — thousands of independent trials
// per benchmark — and every trial forks its own corrupted machine, so the
// work is embarrassingly parallel. What is NOT trivially parallel is the
// methodology's determinism contract: a campaign must be a pure function of
// its configuration, bit-identical however many workers run it. Two design
// moves make that hold:
//
//  1. All random decisions are pre-drawn serially. The single seeded
//     rand.Rand is consumed on the dispatching goroutine, in exactly the
//     order the serial engine consumed it, before any trial runs. Workers
//     never touch an RNG (the restorelint determinism analyzer flags a
//     *rand.Rand captured by a goroutine closure for this reason).
//
//  2. Every trial writes into a pre-sized result slot indexed by its
//     (point, trial) coordinates. Completion order affects nothing; no
//     locks are involved; the race detector sees only disjoint writes.
//
// Golden-trace recording stays on the dispatching goroutine — the golden
// pipeline advances point to point and cannot be shared — while trials fan
// out behind it. A sync.Pool of clones (reset from the master via
// Pipeline.ResetFrom / Memory.CopyFrom) recycles the per-trial fork
// allocations that otherwise dominate the campaign's profile.
package inject

import (
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/pipeline"
)

// ErrNoEligibleBits is returned when a campaign's targeting constraints
// leave no bits to flip (e.g. LatchesOnly over a state space with no latch
// bits). It is a configuration error, reported instead of letting the
// uniform bit sampler reject forever.
var ErrNoEligibleBits = errors.New("inject: no bits eligible for injection under the campaign's targeting constraints")

// engine dispatches trial closures. With workers <= 1 it degenerates to
// running every task inline on the dispatching goroutine, which preserves
// the serial engine exactly; with N > 1 it fans tasks out over N goroutines.
// The bounded task channel doubles as backpressure: the dispatcher stalls
// rather than piling up cloned pipelines (and pinned golden traces) faster
// than the workers retire them.
type engine struct {
	tasks chan func()
	wg    sync.WaitGroup

	// completed counts finished trials for progress reporting; it never
	// influences results.
	completed atomic.Int64

	// Write-only telemetry (nil handles when the campaign runs without a
	// sink): wall-clock time workers spend inside trials, and the queue
	// depth seen at each submit — together they show whether the dispatcher
	// (golden-trace recording) or the workers are the bottleneck.
	busy  *obs.Timer
	depth *obs.Hist
}

// newEngine returns an engine with the given worker count (<= 1 = serial).
// sink may be nil; prefix namespaces the engine's metrics per campaign type
// (e.g. "campaign_uarch" yields campaign_uarch_worker_busy).
func newEngine(workers int, sink obs.Sink, prefix string) *engine {
	e := &engine{
		busy:  sink.Timer(prefix + "_worker_busy"),
		depth: sink.Hist(prefix + "_queue_depth"),
	}
	if workers <= 1 {
		return e
	}
	// Workers capture the channel value, not the field: wait() nils the
	// field on the dispatching goroutine, which a late-starting worker
	// must not observe.
	tasks := make(chan func(), 2*workers)
	e.tasks = tasks
	for i := 0; i < workers; i++ {
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			for t := range tasks {
				sw := e.busy.Start()
				t()
				sw.Stop()
			}
		}()
	}
	return e
}

// submit runs t inline (serial engine) or enqueues it for a worker.
func (e *engine) submit(t func()) {
	if e.tasks == nil {
		sw := e.busy.Start()
		t()
		sw.Stop()
		return
	}
	e.depth.Observe(int64(len(e.tasks)))
	e.tasks <- t
}

// wait blocks until every submitted task has finished. It must be called
// exactly from the dispatching goroutine, and is safe to call more than
// once (error paths drain the pool before returning).
func (e *engine) wait() {
	if e.tasks == nil {
		return
	}
	close(e.tasks)
	e.tasks = nil
	e.wg.Wait()
}

// done records one finished trial and invokes the progress callback, if
// any. Under a parallel engine the callback runs on worker goroutines and
// must be safe for concurrent use.
func (e *engine) done(progress func(done, total int), total int) {
	n := e.completed.Add(1)
	if progress != nil {
		progress(int(n), total)
	}
}

// clonePool recycles per-trial pipeline forks. acquire must be called from
// the dispatching goroutine (it reads the master); release may be called
// from any worker. The hit/miss counters (nil without a sink) expose the
// recycling rate: a high miss count means workers are not returning clones
// fast enough and the pool is allocating fresh ones.
type clonePool struct {
	pool   sync.Pool
	hits   *obs.Counter
	misses *obs.Counter
}

func (cp *clonePool) acquire(master *pipeline.Pipeline) *pipeline.Pipeline {
	if v := cp.pool.Get(); v != nil {
		cp.hits.Inc()
		f := v.(*pipeline.Pipeline)
		f.ResetFrom(master)
		return f
	}
	cp.misses.Inc()
	return master.Clone()
}

func (cp *clonePool) release(f *pipeline.Pipeline) { cp.pool.Put(f) }
