# Reproduction of ReStore (Wang & Patel, DSN 2005). Plain Go, no
# dependencies; every target below is what CI runs.

GO ?= go

.PHONY: all build test race engine lint vet staticcheck restorelint fuzz bench bench-baseline bench-check telemetry resume serve serve-smoke protect clean

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The full suite under the race detector (what CI gates on).
race:
	$(GO) test -race ./...

# The campaign engine's own gate: injection + experiment packages under the
# race detector, where the parallel engine's disjoint-slot writes and the
# clone pool are checked hardest.
engine:
	$(GO) test -race ./internal/inject/... ./internal/experiments/...

# lint = vet + staticcheck (when installed) + restorelint. staticcheck is
# optional locally — CI installs it — so the target degrades gracefully on
# machines without it.
lint: vet staticcheck restorelint

vet:
	$(GO) vet ./...

staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

# restorelint is the repo's own multichecker (tools/restorelint): simulator
# determinism, isa.Op switch exhaustiveness, StateSpace mutation ownership,
# bit-width hygiene, and state-registration completeness. It subsumes the
# former tools/statecheck.
restorelint:
	$(GO) run ./tools/restorelint

# Short fuzz passes over the assembler and decoder (regression corpus plus
# 10s of new inputs each).
fuzz:
	$(GO) test ./internal/asm -run '^$$' -fuzz FuzzAssemble -fuzztime 10s
	$(GO) test ./internal/isa -run '^$$' -fuzz FuzzDecode -fuzztime 10s

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Benchmark baseline. bench-baseline regenerates the committed
# BENCH_pipeline.json from a fresh run; bench-check is what CI's bench job
# runs — the same sweep diffed against the committed baseline, failing on a
# >25% ns/op regression, a >25% campaign trials/s drop, or any allocs/op
# growth in a hot-path benchmark.
BENCHTIME ?= 0.2s

bench-baseline:
	$(GO) test -bench . -benchmem -benchtime $(BENCHTIME) -run '^$$' . | $(GO) run ./tools/benchdiff -write BENCH_pipeline.json

bench-check:
	$(GO) test -bench . -benchmem -benchtime $(BENCHTIME) -run '^$$' . | $(GO) run ./tools/benchdiff -baseline BENCH_pipeline.json

# Runs a small instrumented campaign plus a traced ReStore run and prints
# the telemetry (internal/obs); the program itself re-proves the inertness
# contract before printing anything.
telemetry:
	$(GO) run ./examples/telemetry

# Durable-campaign smoke test: interrupt/resume, SIGTERM recovery, and
# shard+merge on the built CLI, each diffed byte-for-byte against a
# one-shot run (tools/resume_smoke.sh; CI's durable-campaigns job).
resume:
	sh ./tools/resume_smoke.sh

# The campaign service daemon on a local root. Submit jobs from another
# shell: restore-sim -root $(SERVE_ROOT) submit fig2; see README.md
# ("service mode") for the HTTP API.
SERVE_ROOT ?= service-root

serve:
	$(GO) run ./cmd/restore-sim -root $(SERVE_ROOT) serve

# Campaign-service smoke test: daemon SIGKILLed mid-job, restarted, job
# auto-resumes to merged output byte-identical to a one-shot run; graceful
# and forced shutdown paths too (tools/service_smoke.sh; CI's
# campaign-service job).
serve-smoke:
	sh ./tools/service_smoke.sh

# The static→hardening loop: derive budgeted protection policies from the
# bit-level static analysis (JSON + predicted coverage, no injection), then
# measure them against the hand-picked parity/ECC placement and sweep the
# check-bit budget on small campaigns. Paper-scale measurement is the
# TestProtectAcceptance gate under `make test`.
protect:
	$(GO) run ./cmd/restore-sim protect
	$(GO) run ./cmd/restore-sim -trials 0.1 protect-compare
	$(GO) run ./cmd/restore-sim -trials 0.1 budget-sweep

clean:
	$(GO) clean ./...
