package inject

import (
	"testing"

	"repro/internal/workload"
)

// The decode cache, the early-exit trial loop and the packed state digest
// are pure speedups: each is independently toggleable, and campaign results
// must be byte-identical whichever combination is enabled, at any worker
// count. These tests pin that contract across the whole benchmark suite —
// they are the reason the toggles exist.

func sameUArchTrials(t *testing.T, name string, base, got *UArchResult) {
	t.Helper()
	if len(base.Trials) != len(got.Trials) {
		t.Fatalf("%s: trial counts differ: base=%d got=%d", name, len(base.Trials), len(got.Trials))
	}
	for i := range base.Trials {
		if base.Trials[i] != got.Trials[i] {
			t.Fatalf("%s: trial %d differs:\nbase: %+v\ngot:  %+v",
				name, i, base.Trials[i], got.Trials[i])
		}
	}
	if base.TotalBits != got.TotalBits || base.LatchBits != got.LatchBits {
		t.Errorf("%s: state-space sizes differ", name)
	}
}

func sameVMTrials(t *testing.T, name string, base, got *VMResult) {
	t.Helper()
	if len(base.Trials) != len(got.Trials) {
		t.Fatalf("%s: trial counts differ: base=%d got=%d", name, len(base.Trials), len(got.Trials))
	}
	for i := range base.Trials {
		if base.Trials[i] != got.Trials[i] {
			t.Fatalf("%s: trial %d differs:\nbase: %+v\ngot:  %+v",
				name, i, base.Trials[i], got.Trials[i])
		}
	}
}

func TestUArchSpeedupTogglesAreInert(t *testing.T) {
	for _, bench := range workload.Benchmarks() {
		bench := bench
		t.Run(string(bench), func(t *testing.T) {
			t.Parallel()
			base, err := RunUArch(smallUArch(bench))
			if err != nil {
				t.Fatal(err)
			}
			variants := []struct {
				name string
				mut  func(*UArchConfig)
			}{
				{"no-decode-cache", func(c *UArchConfig) { c.NoDecodeCache = true }},
				{"no-early-exit", func(c *UArchConfig) { c.NoEarlyExit = true }},
				{"legacy-hash", func(c *UArchConfig) { c.LegacyHash = true }},
				{"all-off-parallel4", func(c *UArchConfig) {
					c.NoDecodeCache, c.NoEarlyExit, c.LegacyHash = true, true, true
					c.Workers = 4
				}},
			}
			for _, v := range variants {
				cfg := smallUArch(bench)
				v.mut(&cfg)
				got, err := RunUArch(cfg)
				if err != nil {
					t.Fatal(err)
				}
				sameUArchTrials(t, v.name, base, got)
			}
		})
	}
}

func TestVMSpeedupTogglesAreInert(t *testing.T) {
	for _, bench := range workload.Benchmarks() {
		bench := bench
		t.Run(string(bench), func(t *testing.T) {
			t.Parallel()
			base, err := RunVM(smallVM(bench, false))
			if err != nil {
				t.Fatal(err)
			}
			variants := []struct {
				name string
				mut  func(*VMConfig)
			}{
				{"no-decode-cache", func(c *VMConfig) { c.NoDecodeCache = true }},
				{"no-early-exit", func(c *VMConfig) { c.NoEarlyExit = true }},
				{"all-off-parallel4", func(c *VMConfig) {
					c.NoDecodeCache, c.NoEarlyExit = true, true
					c.Workers = 4
				}},
			}
			for _, v := range variants {
				cfg := smallVM(bench, false)
				v.mut(&cfg)
				got, err := RunVM(cfg)
				if err != nil {
					t.Fatal(err)
				}
				sameVMTrials(t, v.name, base, got)
			}
		})
	}
}
