// Package ckptio implements the frame-based checkpoint file format used for
// simulator golden images and costed checkpoint accounting (the at_checkpt
// contract from the reference tracer: SNIPPETS.md Snippet 1).
//
// A checkpoint file is a fixed header plus zero or more independent frames.
// Each frame is either RAW or block-compressed (stdlib flate at a fixed
// level) and carries a sequence of length-prefixed, CRC32-checksummed data
// buffers. Frames occupy disjoint byte ranges and never reference each
// other, so N workers can compress (on write) or decompress (on read) the
// frames in parallel while the on-disk bytes — and the restored buffers —
// are bit-identical regardless of worker count or whether IO is streamed
// through a file or staged in memory.
//
// On-disk layout (all integers little-endian):
//
//	[0:8]    magic "RSTCKPT1"
//	[8:12]   u32 header payload length
//	header payload:
//	    u32 frame count
//	    per frame: u8 style | u32 storedLen | u32 plainLen | u32 bufCount | u32 storedCRC
//	[ .. +4] u32 CRC32 (IEEE) of the header payload
//	frames:  each frame's stored bytes, concatenated in index order
//
// A frame's plain payload is its buffers back to back, each encoded as
// u32 length | bytes | u32 CRC32 (IEEE) of the bytes. For StyleFlate frames
// the stored bytes are the flate stream of that payload; for StyleRaw they
// are the payload itself. storedCRC covers the stored bytes, so corruption
// is detected before decompression is even attempted.
//
// Every read-side failure is a typed error (ErrBadMagic, ErrTruncated,
// ErrCorrupt) — a damaged file can never restore silently wrong state.
package ckptio

import (
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Style selects a frame's on-disk encoding.
type Style uint8

// Frame styles.
const (
	// StyleRaw stores the frame payload verbatim.
	StyleRaw Style = 0
	// StyleFlate stores the payload as a stdlib flate stream at a fixed
	// compression level, so the bytes are deterministic for fixed input.
	StyleFlate Style = 1
)

// flateLevel is the fixed compression level for StyleFlate frames. It must
// never vary at runtime: the bit-identity contract (same input, same bytes,
// any worker count) depends on every writer compressing identically.
const flateLevel = flate.BestSpeed

// Typed read-side errors. Callers branch on these with errors.Is.
var (
	// ErrBadMagic means the file does not start with the ckptio magic.
	ErrBadMagic = errors.New("ckptio: bad magic")
	// ErrTruncated means the file ends before the header or a frame does.
	ErrTruncated = errors.New("ckptio: truncated file")
	// ErrCorrupt means a CRC mismatch or malformed framing inside an
	// otherwise well-delimited file.
	ErrCorrupt = errors.New("ckptio: corrupt data")
)

var magic = [8]byte{'R', 'S', 'T', 'C', 'K', 'P', 'T', '1'}

const (
	headerFixed  = 12                // magic + header length word
	frameDirSize = 1 + 4 + 4 + 4 + 4 // per-frame directory entry
	maxFrames    = 1 << 20
	maxFrameLen  = 1 << 31
)

// Stats reports what an Encode/WriteFile produced, for observability
// counters (frames written, compression ratio).
type Stats struct {
	Frames      int
	Buffers     int
	PlainBytes  int64 // frame payload bytes before compression
	StoredBytes int64 // frame bytes on disk
}

// Ratio returns stored/plain — the achieved compression ratio (1.0 = no
// savings). Zero plain bytes report 1.0.
func (s Stats) Ratio() float64 {
	if s.PlainBytes == 0 {
		return 1.0
	}
	return float64(s.StoredBytes) / float64(s.PlainBytes)
}

// FrameWriter accumulates one frame's buffers.
type FrameWriter struct {
	style Style
	bufs  [][]byte
}

// Add appends one data buffer to the frame. The slice is retained until the
// owning Writer encodes; the caller must not mutate it before then.
func (f *FrameWriter) Add(b []byte) { f.bufs = append(f.bufs, b) }

// Writer assembles a checkpoint image frame by frame.
type Writer struct {
	frames []*FrameWriter
	stats  Stats
}

// NewWriter returns an empty Writer.
func NewWriter() *Writer { return &Writer{} }

// Frame appends a new frame with the given style and returns its writer.
// Frames are encoded — and laid out on disk — in the order they are added.
func (w *Writer) Frame(style Style) *FrameWriter {
	f := &FrameWriter{style: style}
	w.frames = append(w.frames, f)
	return f
}

// Stats reports the totals of the most recent Encode/WriteFile.
func (w *Writer) Stats() Stats { return w.stats }

// encodePlain serialises a frame's buffers into its plain payload.
func encodePlain(f *FrameWriter) []byte {
	n := 0
	for _, b := range f.bufs {
		n += 8 + len(b)
	}
	out := make([]byte, 0, n)
	var u [4]byte
	for _, b := range f.bufs {
		binary.LittleEndian.PutUint32(u[:], uint32(len(b)))
		out = append(out, u[:]...)
		out = append(out, b...)
		binary.LittleEndian.PutUint32(u[:], crc32.ChecksumIEEE(b))
		out = append(out, u[:]...)
	}
	return out
}

// encodedFrame is one frame ready for layout.
type encodedFrame struct {
	style    Style
	stored   []byte
	plainLen uint32
	bufCount uint32
	crc      uint32
}

// encodeFrames encodes every frame's stored bytes, fanning the per-frame
// work across workers goroutines. Each frame is encoded independently and
// the results are assembled by index, so the output is identical for any
// worker count.
func (w *Writer) encodeFrames(workers int) ([]encodedFrame, error) {
	if workers < 1 {
		workers = 1
	}
	if workers > len(w.frames) {
		workers = len(w.frames)
	}
	out := make([]encodedFrame, len(w.frames))
	errs := make([]error, len(w.frames))
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(w.frames) {
					return
				}
				out[i], errs[i] = encodeFrame(w.frames[i])
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// encodeFrame produces one frame's stored bytes.
func encodeFrame(f *FrameWriter) (encodedFrame, error) {
	plain := encodePlain(f)
	ef := encodedFrame{
		style:    f.style,
		plainLen: uint32(len(plain)),
		bufCount: uint32(len(f.bufs)),
	}
	switch f.style {
	case StyleRaw:
		ef.stored = plain
	case StyleFlate:
		var buf sliceBuffer
		zw, err := flate.NewWriter(&buf, flateLevel)
		if err != nil {
			return ef, err
		}
		if _, err := zw.Write(plain); err != nil {
			return ef, err
		}
		if err := zw.Close(); err != nil {
			return ef, err
		}
		ef.stored = buf.b
	default:
		return ef, fmt.Errorf("ckptio: unknown frame style %d", f.style)
	}
	ef.crc = crc32.ChecksumIEEE(ef.stored)
	return ef, nil
}

// sliceBuffer is a minimal io.Writer over an append slice (bytes.Buffer
// without the ring bookkeeping).
type sliceBuffer struct{ b []byte }

func (s *sliceBuffer) Write(p []byte) (int, error) {
	s.b = append(s.b, p...)
	return len(p), nil
}

// layout assembles the header for a set of encoded frames.
func layout(frames []encodedFrame) []byte {
	payload := make([]byte, 4+len(frames)*frameDirSize)
	binary.LittleEndian.PutUint32(payload[0:4], uint32(len(frames)))
	off := 4
	for _, ef := range frames {
		payload[off] = byte(ef.style)
		binary.LittleEndian.PutUint32(payload[off+1:], uint32(len(ef.stored)))
		binary.LittleEndian.PutUint32(payload[off+5:], ef.plainLen)
		binary.LittleEndian.PutUint32(payload[off+9:], ef.bufCount)
		binary.LittleEndian.PutUint32(payload[off+13:], ef.crc)
		off += frameDirSize
	}
	head := make([]byte, 0, headerFixed+len(payload)+4)
	head = append(head, magic[:]...)
	var u [4]byte
	binary.LittleEndian.PutUint32(u[:], uint32(len(payload)))
	head = append(head, u[:]...)
	head = append(head, payload...)
	binary.LittleEndian.PutUint32(u[:], crc32.ChecksumIEEE(payload))
	head = append(head, u[:]...)
	return head
}

// tally fills the writer's stats from the encoded frames.
func (w *Writer) tally(frames []encodedFrame) {
	st := Stats{Frames: len(frames)}
	for _, ef := range frames {
		st.Buffers += int(ef.bufCount)
		st.PlainBytes += int64(ef.plainLen)
		st.StoredBytes += int64(len(ef.stored))
	}
	w.stats = st
}

// Encode serialises the image into memory. workers bounds the per-frame
// compression fan-out; the bytes are identical for every worker count.
func (w *Writer) Encode(workers int) ([]byte, error) {
	frames, err := w.encodeFrames(workers)
	if err != nil {
		return nil, err
	}
	w.tally(frames)
	head := layout(frames)
	total := len(head)
	for _, ef := range frames {
		total += len(ef.stored)
	}
	out := make([]byte, 0, total)
	out = append(out, head...)
	for _, ef := range frames {
		out = append(out, ef.stored...)
	}
	return out, nil
}

// WriteFile streams the image to path: frames are compressed in parallel,
// written in index order to a temp file in the destination directory, fsynced
// and atomically renamed into place (a crash never leaves a partial image
// under the final name). The bytes are identical to Encode's.
func (w *Writer) WriteFile(path string, workers int) error {
	frames, err := w.encodeFrames(workers)
	if err != nil {
		return err
	}
	w.tally(frames)
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(layout(frames)); err != nil {
		tmp.Close()
		return err
	}
	for _, ef := range frames {
		if _, err := tmp.Write(ef.stored); err != nil {
			tmp.Close()
			return err
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	syncDir(dir)
	return nil
}

// syncDir fsyncs a directory so a completed rename is durable. Best-effort:
// some filesystems refuse directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}

// frameInfo is one parsed directory entry plus its absolute file offset.
type frameInfo struct {
	style     Style
	storedLen uint32
	plainLen  uint32
	bufCount  uint32
	crc       uint32
	off       int64
}

// File is a parsed checkpoint image open for reading. Frames decode
// independently — ReadFrame is safe to call concurrently from any number of
// goroutines, in either IO mode.
type File struct {
	frames []frameInfo
	data   []byte   // memory mode
	f      *os.File // file mode
}

// Decode parses an in-memory image.
func Decode(data []byte) (*File, error) {
	frames, end, err := parseHeader(data)
	if err != nil {
		return nil, err
	}
	c := &File{frames: frames, data: data}
	if err := c.placeFrames(end, int64(len(data))); err != nil {
		return nil, err
	}
	return c, nil
}

// Open opens an image file for streaming reads: only the header is read up
// front, and each ReadFrame reads just its own byte range.
func Open(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	head := make([]byte, headerFixed)
	if _, err := io.ReadFull(f, head); err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: reading header", ErrTruncated)
	}
	hlen := binary.LittleEndian.Uint32(head[8:12])
	if [8]byte(head[0:8]) != magic {
		f.Close()
		return nil, ErrBadMagic
	}
	if hlen > maxFrames*frameDirSize+4 {
		f.Close()
		return nil, fmt.Errorf("%w: header length %d", ErrCorrupt, hlen)
	}
	rest := make([]byte, hlen+4)
	if _, err := io.ReadFull(f, rest); err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: reading header payload", ErrTruncated)
	}
	frames, end, err := parseHeader(append(head, rest...))
	if err != nil {
		f.Close()
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	c := &File{frames: frames, f: f}
	if err := c.placeFrames(end, st.Size()); err != nil {
		f.Close()
		return nil, err
	}
	return c, nil
}

// Close releases the underlying file (no-op in memory mode).
func (c *File) Close() error {
	if c.f != nil {
		return c.f.Close()
	}
	return nil
}

// Frames returns the number of frames in the image.
func (c *File) Frames() int { return len(c.frames) }

// FrameStyle returns frame i's encoding style.
func (c *File) FrameStyle(i int) Style { return c.frames[i].style }

// FrameStoredLen returns frame i's on-disk byte count.
func (c *File) FrameStoredLen(i int) int { return int(c.frames[i].storedLen) }

// FramePlainLen returns frame i's payload byte count before compression.
func (c *File) FramePlainLen(i int) int { return int(c.frames[i].plainLen) }

// FrameBuffers returns the number of buffers frame i decodes into.
func (c *File) FrameBuffers(i int) int { return int(c.frames[i].bufCount) }

// parseHeader validates the magic, bounds and CRC of the header and returns
// the frame directory plus the offset where frame bytes begin.
func parseHeader(data []byte) ([]frameInfo, int64, error) {
	if len(data) < headerFixed {
		return nil, 0, fmt.Errorf("%w: %d bytes", ErrTruncated, len(data))
	}
	if [8]byte(data[0:8]) != magic {
		return nil, 0, ErrBadMagic
	}
	hlen := int(binary.LittleEndian.Uint32(data[8:12]))
	if hlen < 4 || hlen > maxFrames*frameDirSize+4 {
		return nil, 0, fmt.Errorf("%w: header length %d", ErrCorrupt, hlen)
	}
	if len(data) < headerFixed+hlen+4 {
		return nil, 0, fmt.Errorf("%w: header runs past end of file", ErrTruncated)
	}
	payload := data[headerFixed : headerFixed+hlen]
	wantCRC := binary.LittleEndian.Uint32(data[headerFixed+hlen:])
	if crc32.ChecksumIEEE(payload) != wantCRC {
		return nil, 0, fmt.Errorf("%w: header CRC mismatch", ErrCorrupt)
	}
	n := int(binary.LittleEndian.Uint32(payload[0:4]))
	if n < 0 || n > maxFrames || 4+n*frameDirSize != hlen {
		return nil, 0, fmt.Errorf("%w: frame count %d does not match header length", ErrCorrupt, n)
	}
	frames := make([]frameInfo, n)
	off := 4
	for i := range frames {
		fi := &frames[i]
		fi.style = Style(payload[off])
		fi.storedLen = binary.LittleEndian.Uint32(payload[off+1:])
		fi.plainLen = binary.LittleEndian.Uint32(payload[off+5:])
		fi.bufCount = binary.LittleEndian.Uint32(payload[off+9:])
		fi.crc = binary.LittleEndian.Uint32(payload[off+13:])
		if fi.style != StyleRaw && fi.style != StyleFlate {
			return nil, 0, fmt.Errorf("%w: frame %d has unknown style %d", ErrCorrupt, i, fi.style)
		}
		if fi.storedLen > maxFrameLen || fi.plainLen > maxFrameLen {
			return nil, 0, fmt.Errorf("%w: frame %d length out of range", ErrCorrupt, i)
		}
		if fi.style == StyleRaw && fi.storedLen != fi.plainLen {
			return nil, 0, fmt.Errorf("%w: raw frame %d stored %d != plain %d", ErrCorrupt, i, fi.storedLen, fi.plainLen)
		}
		off += frameDirSize
	}
	return frames, int64(headerFixed + hlen + 4), nil
}

// placeFrames assigns absolute offsets and checks the frames exactly fill
// the file.
func (c *File) placeFrames(start, size int64) error {
	off := start
	for i := range c.frames {
		c.frames[i].off = off
		off += int64(c.frames[i].storedLen)
	}
	if off > size {
		return fmt.Errorf("%w: frames run past end of file", ErrTruncated)
	}
	if off < size {
		return fmt.Errorf("%w: %d trailing bytes after last frame", ErrCorrupt, size-off)
	}
	return nil
}

// ReadFrame decodes frame i and returns its buffers. Each call touches only
// that frame's byte range, so calls for distinct frames can run in parallel.
func (c *File) ReadFrame(i int) ([][]byte, error) {
	if i < 0 || i >= len(c.frames) {
		return nil, fmt.Errorf("ckptio: frame index %d out of range [0,%d)", i, len(c.frames))
	}
	fi := &c.frames[i]
	var stored []byte
	if c.data != nil {
		stored = c.data[fi.off : fi.off+int64(fi.storedLen)]
	} else {
		stored = make([]byte, fi.storedLen)
		if _, err := c.f.ReadAt(stored, fi.off); err != nil {
			return nil, fmt.Errorf("%w: frame %d: %v", ErrTruncated, i, err)
		}
	}
	if crc32.ChecksumIEEE(stored) != fi.crc {
		return nil, fmt.Errorf("%w: frame %d stored-CRC mismatch", ErrCorrupt, i)
	}
	plain := stored
	if fi.style == StyleFlate {
		plain = make([]byte, 0, fi.plainLen)
		zr := flate.NewReader(&byteReader{b: stored})
		buf := make([]byte, 64<<10)
		for {
			n, err := zr.Read(buf)
			plain = append(plain, buf[:n]...)
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, fmt.Errorf("%w: frame %d: %v", ErrCorrupt, i, err)
			}
			if len(plain) > int(fi.plainLen) {
				return nil, fmt.Errorf("%w: frame %d inflates past declared size", ErrCorrupt, i)
			}
		}
		zr.Close()
	}
	if len(plain) != int(fi.plainLen) {
		return nil, fmt.Errorf("%w: frame %d payload %d bytes, want %d", ErrCorrupt, i, len(plain), fi.plainLen)
	}
	bufs := make([][]byte, 0, fi.bufCount)
	off := 0
	for len(bufs) < int(fi.bufCount) {
		if off+4 > len(plain) {
			return nil, fmt.Errorf("%w: frame %d buffer %d header runs past payload", ErrCorrupt, i, len(bufs))
		}
		n := int(binary.LittleEndian.Uint32(plain[off:]))
		off += 4
		if n < 0 || off+n+4 > len(plain) {
			return nil, fmt.Errorf("%w: frame %d buffer %d length %d runs past payload", ErrCorrupt, i, len(bufs), n)
		}
		b := plain[off : off+n : off+n]
		off += n
		if crc32.ChecksumIEEE(b) != binary.LittleEndian.Uint32(plain[off:]) {
			return nil, fmt.Errorf("%w: frame %d buffer %d CRC mismatch", ErrCorrupt, i, len(bufs))
		}
		off += 4
		bufs = append(bufs, b)
	}
	if off != len(plain) {
		return nil, fmt.Errorf("%w: frame %d has %d trailing payload bytes", ErrCorrupt, i, len(plain)-off)
	}
	return bufs, nil
}

// ReadAll decodes every frame, fanning the per-frame work across workers
// goroutines, and returns the buffers by frame index. The result is
// identical for any worker count and either IO mode.
func (c *File) ReadAll(workers int) ([][][]byte, error) {
	if workers < 1 {
		workers = 1
	}
	if workers > len(c.frames) {
		workers = len(c.frames)
	}
	out := make([][][]byte, len(c.frames))
	errs := make([]error, len(c.frames))
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(c.frames) {
					return
				}
				out[i], errs[i] = c.ReadFrame(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// byteReader adapts a byte slice to the flate reader without pulling in
// bytes.Reader's seeking surface.
type byteReader struct{ b []byte }

func (r *byteReader) Read(p []byte) (int, error) {
	if len(r.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.b)
	r.b = r.b[n:]
	return n, nil
}
