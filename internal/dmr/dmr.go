// Package dmr implements the comparison point the paper positions ReStore
// against: full execution replication (Section 1's IBM S/390 G5 example and
// the "full-time redundancy" schemes of Section 6 — AR-SMT, SRT, lockstepped
// cores).
//
// A dmr.Core runs two identical pipelines and compares every committed
// instruction. Any disagreement — register result, store, control flow,
// exception — is a detected error, caught at retirement with essentially
// zero latency, and recovered by rolling both cores back to a shared
// checkpoint. Coverage is maximal; the cost is a doubled execution core,
// which is exactly the trade ReStore's "redundancy on demand" avoids.
package dmr

import (
	"errors"
	"fmt"

	"repro/internal/arch"
	"repro/internal/checkpoint"
	"repro/internal/pipeline"
)

// Config parameterises the DMR pair.
type Config struct {
	// Interval is the instruction distance between shared checkpoints
	// (default 100, matching the ReStore evaluation).
	Interval uint64
	// MaxRecoveries bounds rollbacks for the same divergence before the
	// error is declared uncorrectable (default 3; a persistent fault
	// keeps diverging).
	MaxRecoveries int
}

func (c *Config) applyDefaults() {
	if c.Interval == 0 {
		c.Interval = 100
	}
	if c.MaxRecoveries == 0 {
		c.MaxRecoveries = 3
	}
}

// Report accumulates DMR activity.
type Report struct {
	Retired        uint64
	Cycles         uint64 // per-core cycles (the cores run in parallel)
	Checkpoints    uint64
	DetectedErrors uint64
	Rollbacks      uint64
}

// ErrUncorrectable reports a divergence that persisted through rollback —
// with a single-bit-flip fault model this indicates corruption older than
// the checkpoint horizon.
var ErrUncorrectable = errors.New("dmr: persistent divergence")

// Core is a pair of lockstepped pipelines with commit comparison.
type Core struct {
	cfg    Config
	main   *pipeline.Pipeline
	shadow *pipeline.Pipeline

	mainCP   *checkpoint.Store
	shadowCP *checkpoint.Store

	mainEvents   []pipeline.CommitEvent
	shadowEvents []pipeline.CommitEvent

	archIndex  uint64
	lastNextPC uint64
	sinceCP    uint64
	halted     bool
	mismatch   bool
	recoveries int

	report Report
}

// New builds a DMR pair from a freshly constructed pipeline. The shadow
// core is a clone, so both start bit-identical.
func New(main *pipeline.Pipeline, cfg Config) *Core {
	cfg.applyDefaults()
	c := &Core{
		cfg:        cfg,
		main:       main,
		shadow:     main.Clone(),
		lastNextPC: main.CommitPC(),
	}
	c.mainCP = checkpoint.NewStore(c.main.Memory(), 2)
	c.shadowCP = checkpoint.NewStore(c.shadow.Memory(), 2)
	c.main.CommitHook = func(ev pipeline.CommitEvent) {
		c.mainEvents = append(c.mainEvents, ev)
	}
	c.shadow.CommitHook = func(ev pipeline.CommitEvent) {
		c.shadowEvents = append(c.shadowEvents, ev)
	}
	c.createCheckpoint()
	return c
}

// Main exposes the primary pipeline (the fault-injection target in tests
// and examples).
func (c *Core) Main() *pipeline.Pipeline { return c.main }

// Shadow exposes the redundant pipeline.
func (c *Core) Shadow() *pipeline.Pipeline { return c.shadow }

// MainCommitted returns the main core's architectural position: cross-
// checked commits plus those still queued for comparison. Tests compare
// golden state at this count, since the pipeline's registers reflect every
// commit it has made, not just the cross-checked ones.
func (c *Core) MainCommitted() uint64 {
	return c.archIndex + uint64(len(c.mainEvents))
}

// Report returns the activity counters.
func (c *Core) Report() Report {
	r := c.report
	r.Retired = c.archIndex
	r.Cycles = c.main.Cycles()
	return r
}

func (c *Core) createCheckpoint() {
	c.mainCP.Create(c.main.ArchRegs(), c.lastNextPC, c.archIndex)
	c.shadowCP.Create(c.shadow.ArchRegs(), c.lastNextPC, c.archIndex)
	c.report.Checkpoints++
	c.sinceCP = 0
	// A full clean interval means any prior divergence was transient.
	c.recoveries = 0
}

// eventsEqual compares the architectural content of two commit events.
func eventsEqual(a, b pipeline.CommitEvent) bool {
	if a.Inst != b.Inst || a.Exception != b.Exception || a.Halted != b.Halted {
		return false
	}
	if a.HasDest != b.HasDest || (a.HasDest && (a.DestArch != b.DestArch || a.DestVal != b.DestVal)) {
		return false
	}
	if a.IsStore != b.IsStore || (a.IsStore && (a.MemAddr != b.MemAddr || a.StoreVal != b.StoreVal)) {
		return false
	}
	if a.IsBranch != b.IsBranch || (a.IsBranch && (a.Taken != b.Taken || a.Target != b.Target)) {
		return false
	}
	return true
}

// step advances both cores one cycle each and cross-checks any commit pairs
// that are now available.
func (c *Core) step() error {
	c.main.Cycle()
	c.shadow.Cycle()

	// Let a lagging core catch up a bounded number of cycles so the
	// comparison queues stay short (cores drift when a fault perturbs
	// timing).
	for i := 0; i < 4 && len(c.shadowEvents) < len(c.mainEvents) &&
		c.shadow.Status() == pipeline.StatusRunning; i++ {
		c.shadow.Cycle()
	}
	for i := 0; i < 4 && len(c.mainEvents) < len(c.shadowEvents) &&
		c.main.Status() == pipeline.StatusRunning; i++ {
		c.main.Cycle()
	}

	n := min(len(c.mainEvents), len(c.shadowEvents))
	for i := 0; i < n; i++ {
		mev, sev := c.mainEvents[i], c.shadowEvents[i]
		if !eventsEqual(mev, sev) {
			c.mismatch = true
			c.report.DetectedErrors++
			return c.recover()
		}
		if mev.Exception != arch.ExcNone {
			// Both cores agree on the exception: architecturally
			// genuine. Surface it.
			return fmt.Errorf("dmr: genuine exception %v at %#x", mev.Exception, mev.PC)
		}
		c.archIndex++
		c.sinceCP++
		c.lastNextPC = mev.Target
		if mev.Halted {
			c.halted = true
			return nil
		}
		if c.sinceCP >= c.cfg.Interval {
			// Trim consumed events before snapshotting.
			c.consumeEvents(i + 1)
			c.createCheckpoint()
			return nil
		}
	}
	c.consumeEvents(n)

	// A deadlocked or excepted core that its twin disagrees with
	// timing-wise also counts as divergence.
	ms, ss := c.main.Status(), c.shadow.Status()
	if ms != pipeline.StatusRunning || ss != pipeline.StatusRunning {
		if ms == pipeline.StatusHalted && ss == pipeline.StatusHalted {
			c.halted = true
			return nil
		}
		c.mismatch = true
		c.report.DetectedErrors++
		return c.recover()
	}
	return nil
}

func (c *Core) consumeEvents(n int) {
	if n <= 0 {
		return
	}
	c.mainEvents = append(c.mainEvents[:0], c.mainEvents[n:]...)
	c.shadowEvents = append(c.shadowEvents[:0], c.shadowEvents[n:]...)
}

// recover rolls both cores back to the shared oldest checkpoint.
func (c *Core) recover() error {
	c.recoveries++
	if c.recoveries > c.cfg.MaxRecoveries {
		return ErrUncorrectable
	}
	mcp, err := c.mainCP.RestoreOldest()
	if err != nil {
		return fmt.Errorf("dmr recover: %w", err)
	}
	scp, err := c.shadowCP.RestoreOldest()
	if err != nil {
		return fmt.Errorf("dmr recover: %w", err)
	}
	c.main.Reset(mcp.Regs, mcp.PC)
	c.shadow.Reset(scp.Regs, scp.PC)
	c.archIndex = mcp.Retired
	c.lastNextPC = mcp.PC
	c.mainEvents = c.mainEvents[:0]
	c.shadowEvents = c.shadowEvents[:0]
	c.report.Rollbacks++
	c.mainCP.Create(mcp.Regs, mcp.PC, mcp.Retired)
	c.shadowCP.Create(scp.Regs, scp.PC, scp.Retired)
	c.report.Checkpoints++
	c.sinceCP = 0
	c.mismatch = false
	return nil
}

// Run executes until n instructions have committed and cross-checked, the
// program halts, or an unrecoverable condition arises.
func (c *Core) Run(n, maxCycles uint64) (Report, error) {
	budget := c.main.Cycles() + maxCycles
	prevIdx, stall := c.archIndex, uint64(0)
	for c.archIndex < n && !c.halted {
		if c.main.Cycles() >= budget {
			return c.Report(), fmt.Errorf("dmr: cycle budget exhausted at %d instructions", c.archIndex)
		}
		if err := c.step(); err != nil {
			return c.Report(), err
		}
		// Forward-progress guard: if the pair stops committing (e.g. a
		// fault wedges one core without tripping its watchdog yet),
		// the per-core watchdogs will eventually fire and the status
		// divergence path recovers; this guard only bounds the wait.
		if c.archIndex == prevIdx {
			stall++
			if stall > 100_000 {
				return c.Report(), ErrUncorrectable
			}
		} else {
			prevIdx, stall = c.archIndex, 0
		}
	}
	return c.Report(), nil
}
