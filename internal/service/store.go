package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// store is the service root's on-disk layout. Everything the daemon must
// survive losing lives here:
//
//	<root>/jobs/<id>/job.json      job spec + state, written atomically
//	<root>/jobs/<id>/shards/<k>/   campaign root for shard k (one
//	                               campaignio directory per campaign)
//	<root>/jobs/<id>/merged/<cid>/ merged campaign directories (done jobs)
//	<root>/golden/                 golden images shared across jobs
//	<root>/serve.addr              the listening address, for clients
//
// job.json follows the same atomic temp+fsync+rename discipline as campaign
// manifests: a crash never leaves a partial record, so restart recovery
// always reads either the old state or the new one.
type store struct {
	root string
}

// AddrFileName is the file under the service root holding the daemon's
// bound address, written on startup so clients can discover it.
const AddrFileName = "serve.addr"

func newStore(root string) (*store, error) {
	if root == "" {
		return nil, fmt.Errorf("service: empty root directory")
	}
	s := &store{root: root}
	if err := os.MkdirAll(s.jobsDir(), 0o755); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *store) jobsDir() string            { return filepath.Join(s.root, "jobs") }
func (s *store) jobDir(id string) string    { return filepath.Join(s.jobsDir(), id) }
func (s *store) jobFile(id string) string   { return filepath.Join(s.jobDir(id), "job.json") }
func (s *store) shardsDir(id string) string { return filepath.Join(s.jobDir(id), "shards") }
func (s *store) mergedDir(id string) string { return filepath.Join(s.jobDir(id), "merged") }
func (s *store) goldenRoot() string         { return filepath.Join(s.root, "golden") }
func (s *store) addrFile() string           { return filepath.Join(s.root, AddrFileName) }
func (s *store) shardRoot(id string, k int) string {
	return filepath.Join(s.shardsDir(id), strconv.Itoa(k))
}

// saveJob persists a job record atomically and durably.
func (s *store) saveJob(j *Job) error {
	dir := s.jobDir(j.ID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(j, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, "job.json.tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), s.jobFile(j.ID)); err != nil {
		return err
	}
	return syncDir(dir)
}

// loadJob reads one job record.
func (s *store) loadJob(id string) (*Job, error) {
	data, err := os.ReadFile(s.jobFile(id))
	if err != nil {
		return nil, err
	}
	var j Job
	if err := json.Unmarshal(data, &j); err != nil {
		return nil, fmt.Errorf("service: %s: %w", s.jobFile(id), err)
	}
	if j.ID != id {
		return nil, fmt.Errorf("service: %s: job id %q does not match its directory", s.jobFile(id), j.ID)
	}
	return &j, nil
}

// listJobs loads every job record under the root, in ID order. Directories
// without a job.json (a crash between MkdirAll and the first save) are
// skipped: they hold no committed submission.
func (s *store) listJobs() ([]*Job, error) {
	entries, err := os.ReadDir(s.jobsDir())
	if err != nil {
		return nil, err
	}
	var jobs []*Job
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		j, err := s.loadJob(e.Name())
		if errors.Is(err, os.ErrNotExist) {
			continue
		}
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, j)
	}
	return jobs, nil
}

// nextID allocates the next sequential job ID from what is on disk, so IDs
// stay unique across daemon restarts.
func (s *store) nextID() (string, error) {
	entries, err := os.ReadDir(s.jobsDir())
	if err != nil {
		return "", err
	}
	max := 0
	for _, e := range entries {
		n, ok := parseJobID(e.Name())
		if ok && n > max {
			max = n
		}
	}
	return fmt.Sprintf("job-%06d", max+1), nil
}

func parseJobID(name string) (int, bool) {
	num, ok := strings.CutPrefix(name, "job-")
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(num)
	if err != nil || n < 1 {
		return 0, false
	}
	return n, true
}

// writeAddr publishes the daemon's bound address for client discovery.
func (s *store) writeAddr(addr string) error {
	return os.WriteFile(s.addrFile(), []byte(addr+"\n"), 0o644)
}

// removeAddr withdraws the address on clean shutdown.
func (s *store) removeAddr() {
	_ = os.Remove(s.addrFile())
}

// ReadAddr returns the address a daemon serving root listens on.
func ReadAddr(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, AddrFileName))
	if err != nil {
		return "", fmt.Errorf("service: no daemon address under %s (is `restore-sim serve` running?): %w", root, err)
	}
	return strings.TrimSpace(string(data)), nil
}

// syncDir fsyncs a directory so a rename within it is durable; platforms
// that cannot fsync directories are tolerated.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}
