package analyzers

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"

	"repro/tools/restorelint/lint"
)

// OpcodeSwitch enforces that every switch over isa.Op either covers all
// defined opcodes or carries an explicit default clause. Without it, adding
// an instruction to internal/isa can half-land: the decoder knows the new
// opcode but an execution, liveness, or assembly switch silently falls
// through and mis-handles it. A default clause is the author's explicit
// statement that fall-through is intended for every unlisted opcode.
var OpcodeSwitch = &lint.Analyzer{
	Name: "opcodeswitch",
	Doc:  "flags non-exhaustive switches over isa.Op that lack a default case",
	Run:  runOpcodeSwitch,
}

func runOpcodeSwitch(pass *lint.Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if ok && sw.Tag != nil {
				checkOpSwitch(pass, sw)
			}
			return true
		})
	}
}

func checkOpSwitch(pass *lint.Pass, sw *ast.SwitchStmt) {
	info := pass.Pkg.Info
	tv, ok := info.Types[sw.Tag]
	if !ok {
		return
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return
	}
	obj := named.Obj()
	if obj.Name() != "Op" || obj.Pkg() == nil || obj.Pkg().Name() != "isa" {
		return
	}

	covered := make(map[uint64]bool)
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return // explicit default: partial coverage is acknowledged
		}
		for _, e := range cc.List {
			etv, ok := info.Types[e]
			if !ok || etv.Value == nil {
				// A non-constant case expression defeats static
				// exhaustiveness analysis; treat it as a wildcard.
				return
			}
			if v, exact := constant.Uint64Val(constant.ToInt(etv.Value)); exact {
				covered[v] = true
			}
		}
	}

	var missing []string
	scope := obj.Pkg().Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !c.Exported() || !types.Identical(c.Type(), tv.Type) {
			continue
		}
		v, exact := constant.Uint64Val(constant.ToInt(c.Val()))
		if exact && !covered[v] {
			missing = append(missing, name)
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	shown := missing
	if len(shown) > 6 {
		shown = append(append([]string(nil), shown[:6]...), "...")
	}
	pass.Reportf(sw.Pos(),
		"switch over isa.Op misses %d opcode(s) (%s) and has no default case; cover them or add an explicit default",
		len(missing), strings.Join(shown, ", "))
}
