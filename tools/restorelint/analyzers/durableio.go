package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/tools/restorelint/lint"
)

// DurableIO gates the campaign-persistence package's crash-consistency
// contract.
//
// campaignio promises that a crash at any instruction leaves a campaign
// directory that either resumes cleanly or fails loudly. That promise is
// carried by exactly two disciplines, both easy to lose in a refactor:
//
//  1. Write paths: bytes must reach the disk before anything points at
//     them. A file that was written must be fsynced in the same function
//     (rule B), and a rename that publishes a file must be preceded by an
//     fsync of that file (rule A) — rename-before-sync is the classic
//     "zero-length file after power loss" bug.
//  2. Read paths: a function that parses journal records out of raw file
//     bytes must verify a CRC before trusting them (rule C); torn or
//     bit-rotted records must never be silently treated as data.
//
// The checks lean on the dataflow engine's per-receiver call facts and
// use-def chains: Sync-before-Rename is an ordering query over the same
// file variable, including when the renamed name was stored in a local
// first.
var DurableIO = &lint.Analyzer{
	Name: "durableio",
	Doc:  "campaign persistence must fsync before publish and CRC-check before trust",
	Run:  runDurableIO,
}

func runDurableIO(pass *lint.Pass) {
	df := lint.NewDataflow(pass.Pkg)
	for _, s := range df.PackageSummaries(pass.Pkg) {
		checkWriteSync(pass, s)
		checkRenameSync(pass, s)
		checkReadCRC(pass, s)
	}
}

// fileWriteMethods are *os.File methods that put bytes in the page cache.
var fileWriteMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteAt": true,
}

// checkWriteSync enforces rule B: every *os.File variable written in a
// function must be fsynced later in the same function.
func checkWriteSync(pass *lint.Pass, s *lint.FuncSummary) {
	for v, calls := range s.RecvCalls {
		if !isOSFile(v.Type()) {
			continue
		}
		var firstWrite token.Pos
		var lastSync token.Pos
		for _, c := range calls {
			switch {
			case fileWriteMethods[c.Name]:
				if firstWrite == token.NoPos || c.Pos < firstWrite {
					firstWrite = c.Pos
				}
			case c.Name == "Sync":
				if c.Pos > lastSync {
					lastSync = c.Pos
				}
			}
		}
		if firstWrite == token.NoPos {
			continue
		}
		if lastSync == token.NoPos || lastSync < firstWrite {
			pass.Reportf(firstWrite,
				"file %q is written but never fsynced in %s; call Sync before the data is relied on (a crash may leave a partial or empty file)",
				v.Name(), s.Fn.Name())
		}
	}
}

// checkRenameSync enforces rule A: os.Rename's source file must have been
// fsynced earlier in the same function.
func checkRenameSync(pass *lint.Pass, s *lint.FuncSummary) {
	info := s.Pkg.Info

	// Map definition positions of string locals to their RHS, so a rename
	// of `name` resolves through `name := tmp.Name()`.
	defRHS := make(map[token.Pos]ast.Expr)
	ast.Inspect(s.Decl, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				defRHS[id.Pos()] = as.Rhs[i]
			}
		}
		return true
	})

	ast.Inspect(s.Decl, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) < 2 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Rename" {
			return true
		}
		if pkgNameOf(info, sel.X) != "os" {
			return true
		}
		src := resolveFileVar(info, s, defRHS, call.Args[0])
		if src == nil {
			pass.Reportf(call.Pos(),
				"os.Rename publishes a path whose source file cannot be traced to an fsynced file variable; rename only after Sync")
			return true
		}
		for _, c := range s.RecvCalls[src] {
			if c.Name == "Sync" && c.Pos < call.Pos() {
				return true
			}
		}
		pass.Reportf(call.Pos(),
			"os.Rename publishes %q without an earlier Sync on it; a crash after the rename can expose an unsynced (possibly empty) file",
			src.Name())
		return true
	})
}

// resolveFileVar traces a rename source argument to the *os.File variable it
// names: either `f.Name()` directly, or an identifier whose reaching
// definitions are all `f.Name()` calls.
func resolveFileVar(info *types.Info, s *lint.FuncSummary, defRHS map[token.Pos]ast.Expr, arg ast.Expr) *types.Var {
	if v := fileVarOfNameCall(info, arg); v != nil {
		return v
	}
	id, ok := arg.(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok {
		return nil
	}
	var resolved *types.Var
	for _, defPos := range s.ReachingDefs(v, id.Pos()) {
		rhs, ok := defRHS[defPos]
		if !ok {
			return nil // a def we can't see through (parameter, range var)
		}
		fv := fileVarOfNameCall(info, rhs)
		if fv == nil {
			return nil
		}
		if resolved != nil && resolved != fv {
			return nil // two defs name different files; give up soundly
		}
		resolved = fv
	}
	return resolved
}

// fileVarOfNameCall matches `f.Name()` where f is an *os.File variable.
func fileVarOfNameCall(info *types.Info, e ast.Expr) *types.Var {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Name" {
		return nil
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || !isOSFile(v.Type()) {
		return nil
	}
	return v
}

// checkReadCRC enforces rule C: a function that reads raw bytes from a file
// or reader AND constructs journal Record values must verify a checksum.
func checkReadCRC(pass *lint.Pass, s *lint.FuncSummary) {
	info := s.Pkg.Info
	var readsBytes, checksCRC bool
	var firstRecord token.Pos

	ast.Inspect(s.Decl, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			switch {
			case name == "ReadFull" && pkgNameOf(info, sel.X) == "io",
				name == "Read" || name == "ReadAt":
				readsBytes = true
			case name == "Sum32" || name == "Checksum" || name == "ChecksumIEEE" || name == "Update":
				checksCRC = true
			}
		case *ast.CompositeLit:
			tv, ok := info.Types[n]
			if !ok {
				return true
			}
			named, ok := tv.Type.(*types.Named)
			if ok && named.Obj().Name() == "Record" && firstRecord == token.NoPos {
				firstRecord = n.Pos()
			}
		}
		return true
	})

	if readsBytes && firstRecord != token.NoPos && !checksCRC {
		pass.Reportf(firstRecord,
			"%s constructs Record values from file bytes without a CRC check; verify the checksum before trusting a record",
			s.Fn.Name())
	}
}

// isOSFile matches *os.File and os.File.
func isOSFile(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "File" && obj.Pkg() != nil && obj.Pkg().Path() == "os"
}

// pkgNameOf returns the package a selector's base names ("os" in os.Rename),
// or "" when the base is not a package.
func pkgNameOf(info *types.Info, e ast.Expr) string {
	id, ok := e.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}
