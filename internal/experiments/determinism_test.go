package experiments

import (
	"testing"

	"repro/internal/pipeline"
	"repro/internal/workload"
)

// runFingerprint executes one benchmark from a cold pipeline and returns the
// quantities every campaign comparison rests on: elapsed cycles, retired
// instructions, the full state-space hash, and the architectural registers.
func runFingerprint(t *testing.T, bench workload.Benchmark, cycles uint64) (uint64, uint64, uint64, [32]uint64) {
	t.Helper()
	prog, err := workload.Generate(bench, workload.Config{Seed: 7, Scale: 0.05})
	if err != nil {
		t.Fatalf("%s: generate: %v", bench, err)
	}
	m, err := prog.NewMemory()
	if err != nil {
		t.Fatalf("%s: memory: %v", bench, err)
	}
	pipe, err := pipeline.New(pipeline.DefaultConfig(), m, prog.Entry)
	if err != nil {
		t.Fatalf("%s: pipeline: %v", bench, err)
	}
	pipe.RunCycles(cycles)
	return pipe.Cycles(), pipe.Retired(), pipe.State().Hash(), pipe.ArchRegs()
}

// TestBenchmarksDeterministic runs every benchmark twice in-process and
// requires bit-identical outcomes. This is the dynamic counterpart of the
// restorelint determinism analyzer: golden-run comparison, checkpoint
// rollback, and campaign statistics are all meaningless if two fault-free
// runs of the same seed can diverge.
func TestBenchmarksDeterministic(t *testing.T) {
	const cycles = 20_000
	for _, bench := range workload.Benchmarks() {
		bench := bench
		t.Run(string(bench), func(t *testing.T) {
			t.Parallel()
			c1, r1, h1, regs1 := runFingerprint(t, bench, cycles)
			c2, r2, h2, regs2 := runFingerprint(t, bench, cycles)
			if c1 != c2 {
				t.Errorf("cycle counts diverged: %d vs %d", c1, c2)
			}
			if r1 != r2 {
				t.Errorf("retired counts diverged: %d vs %d", r1, r2)
			}
			if h1 != h2 {
				t.Errorf("state hashes diverged: %#x vs %#x", h1, h2)
			}
			if regs1 != regs2 {
				t.Errorf("architectural registers diverged:\n  run1: %v\n  run2: %v", regs1, regs2)
			}
			if r1 == 0 {
				t.Error("benchmark retired no instructions; fingerprint is vacuous")
			}
		})
	}
}
