package pipeline

import (
	"repro/internal/arch"
	"repro/internal/isa"
	"repro/internal/mem"
)

// ---------------------------------------------------------------------------
// Writeback: completed execution-window slots broadcast their results — the
// value goes to the physical register file, the ready bit wakes dependents,
// and the ROB entry is marked complete.

func (p *Pipeline) doWriteback() {
	for i := range p.exec.busy {
		if !p.exec.busy[i] || p.exec.doneAt[i] > p.cycle {
			continue
		}
		p.exec.busy[i] = false
		tag := p.exec.tag[i]
		if tag&execNoDest == 0 {
			phys := tag % PhysRegs
			p.prf.write(phys, p.exec.val[i])
			p.prf.setReady(phys, true)
		}
		robIdx := p.exec.rob[i] % ROBSize
		if p.rob.flags[robIdx]&robValid != 0 {
			p.rob.flags[robIdx] |= robCompleted
		}
	}
}

// ---------------------------------------------------------------------------
// Issue: select ready scheduler entries oldest-first and execute them on the
// available ports (3 ALU — one of which multiplies — 1 branch, 2 AGEN).

func (p *Pipeline) doIssue() {
	// The candidate list lives in a fixed array sized by the scheduler and
	// is insertion-sorted in place: sort.Slice's func value forced a heap
	// allocation every cycle, which dominated campaign allocation profiles
	// (hundreds of thousands of objects per campaign).
	p.issueCount = 0
	for i := range p.sched.flags {
		f := p.sched.flags[i]
		if f&schValid == 0 {
			continue
		}
		if !p.srcsReady(i) {
			continue
		}
		p.issueScratch[p.issueCount] = issueCand{
			slot: i,
			pos:  p.rob.pos(p.sched.robIdx[i]),
		}
		p.issueCount++
	}
	// Insertion sort, oldest (lowest ROB position) first; ties broken by
	// slot so simulation stays deterministic even under corrupted state,
	// where equal positions can occur. At most SchedSize elements, mostly
	// ordered already — cheaper than a general sort and allocation-free.
	for i := 1; i < p.issueCount; i++ {
		c := p.issueScratch[i]
		j := i - 1
		for j >= 0 && (p.issueScratch[j].pos > c.pos ||
			(p.issueScratch[j].pos == c.pos && p.issueScratch[j].slot > c.slot)) {
			p.issueScratch[j+1] = p.issueScratch[j]
			j--
		}
		p.issueScratch[j+1] = c
	}

	alu, br, agen := ALUPorts, BranchPorts, AGENPorts
	issued := 0
	for _, cand := range p.issueScratch[:p.issueCount] {
		if issued >= IssueWidth {
			break
		}
		f := p.sched.flags[cand.slot]
		switch {
		case f&schIsBr != 0:
			if br == 0 {
				continue
			}
		case f&schIsLoad != 0 || f&schIsStore != 0:
			if agen == 0 {
				continue
			}
		default:
			if alu == 0 {
				continue
			}
		}

		ok, redirected := p.execute(cand.slot)
		if !ok {
			continue // load blocked on disambiguation; retry next cycle
		}
		issued++
		p.stats.Issued++
		switch {
		case f&schIsBr != 0:
			br--
		case f&schIsLoad != 0 || f&schIsStore != 0:
			agen--
		default:
			alu--
		}
		if redirected {
			// A mispredicted branch flushed everything younger,
			// including later candidates in this cycle's selection.
			break
		}
	}
}

func (p *Pipeline) srcsReady(slot int) bool {
	f := p.sched.flags[slot]
	if f&schSrc1 != 0 && !p.prf.isReady(p.sched.src1[slot]) {
		return false
	}
	if f&schSrc2 != 0 && !p.prf.isReady(p.sched.src2[slot]) {
		return false
	}
	if f&schSrc3 != 0 && !p.prf.isReady(p.sched.src3[slot]) {
		return false
	}
	return true
}

// execute runs the operation in the given scheduler slot. It returns ok =
// false when the op cannot issue this cycle (memory disambiguation), and
// redirected = true when a branch misprediction flushed the pipeline.
func (p *Pipeline) execute(slot int) (ok, redirected bool) {
	f := p.sched.flags[slot]
	robIdx := p.sched.robIdx[slot] % ROBSize
	if p.rob.flags[robIdx]&robValid == 0 {
		// Orphaned entry (corrupted state or stale after squash).
		p.sched.flags[slot] = 0
		return true, false
	}
	if _, free := p.exec.alloc(); !free {
		// No writeback slot: structural hazard. Retry next cycle,
		// BEFORE any side effects (branch resolution, cache fills).
		return false, false
	}
	inst := unpackCtl(p.rob.ctl[robIdx])
	pc := p.rob.pc[robIdx]

	v1 := p.prf.read(p.sched.src1[slot])
	v2 := p.prf.read(p.sched.src2[slot])
	v3 := p.prf.read(p.sched.src3[slot])
	if f&schSrc1 == 0 {
		v1 = 0
	}
	if f&schSrc2 == 0 {
		v2 = 0
	}

	switch {
	case f&schIsLoad != 0:
		return p.executeLoad(slot, robIdx, inst, v1)
	case f&schIsStore != 0:
		redirected = p.executeStore(slot, robIdx, inst, v1, v2)
		return true, redirected
	case f&schIsBr != 0:
		redirected = p.executeBranch(slot, robIdx, inst, pc, v1)
		return true, redirected
	default:
		p.executeALU(slot, robIdx, inst, v1, v2, v3)
		return true, false
	}
}

func (p *Pipeline) executeALU(slot int, robIdx uint64, inst isa.Inst, v1, v2, v3 uint64) {
	var (
		result  uint64
		excKind = arch.ExcNone
		latency = p.cfg.ALULatency
	)
	switch inst.Op {
	case isa.OpInvalid:
		excKind = arch.ExcIllegalInstruction
	case isa.OpLDA:
		result = v1 + uint64(int64(inst.Disp))
	case isa.OpLDAH:
		result = v1 + uint64(int64(inst.Disp))<<16
	case isa.OpCMOVEQ, isa.OpCMOVNE:
		if isa.EvalCondMove(inst.Op, v1) {
			result = p.operandB(inst, v2)
		} else {
			result = v3 // previous value of the destination
		}
	default:
		b := p.operandB(inst, v2)
		var overflow bool
		result, overflow = isa.EvalOperate(inst.Op, v1, b)
		if overflow && inst.TrapsOverflow() {
			excKind = arch.ExcOverflow
		}
		if isa.ClassOf(inst.Op) == isa.ClassMul {
			latency = p.cfg.MulLatency
		}
	}

	if excKind != arch.ExcNone {
		p.raiseAt(robIdx, excKind, p.rob.pc[robIdx])
		p.rob.flags[robIdx] |= robCompleted
		p.sched.flags[slot] = 0
		return
	}
	p.scheduleWriteback(slot, robIdx, result, latency)
}

func (p *Pipeline) operandB(inst isa.Inst, v2 uint64) uint64 {
	if inst.UseLit {
		return uint64(inst.Lit)
	}
	return v2
}

func (p *Pipeline) executeLoad(slot int, robIdx uint64, inst isa.Inst, base uint64) (ok, redirected bool) {
	addr := base + uint64(int64(inst.Disp))
	size := inst.MemBytes()
	if size == 0 {
		size = 8
	}

	// Memory disambiguation (Figure 3's Mem Dep Pred). By default loads
	// issue speculatively past older stores whose addresses are still
	// unknown; loads whose PC has caused a violation before — and all
	// loads, when speculation is disabled — wait conservatively. Ready
	// older stores always participate: full same-size overlap forwards,
	// partial overlap stalls until the store drains. Age is judged by
	// ROB position, which stays correct as the STQ drains.
	loadPos := p.rob.pos(robIdx)
	speculate := p.memdep != nil && !p.memdep.ShouldWait(p.rob.pc[robIdx])
	n := p.stq.count
	if n > STQSize {
		n = STQSize
	}
	var (
		forward    bool
		forwardVal uint64
		forwardRob uint64
	)
	for i := uint64(0); i < n; i++ {
		si := (p.stq.head + i) % STQSize
		sf := p.stq.flags[si]
		if sf&stqValid == 0 {
			continue
		}
		if p.rob.pos(p.stq.robIdx[si]) >= loadPos {
			continue // younger than the load
		}
		if sf&stqReady == 0 {
			if speculate {
				continue // issue past it; the store checks us later
			}
			return false, false // unknown older store address
		}
		sAddr := p.stq.addr[si]
		sSize := uint64(8)
		if sf&stqIsSTL != 0 {
			sSize = 4
		}
		if sAddr+sSize <= addr || addr+size <= sAddr {
			continue // disjoint
		}
		if sAddr == addr && sSize >= size {
			forward = true
			forwardVal = p.stq.data[si]
			forwardRob = p.stq.robIdx[si]
			continue // newest matching store wins
		}
		return false, false // partial overlap: wait for drain
	}

	var (
		val     uint64
		excKind = arch.ExcNone
	)
	latency := p.cfg.L1D.HitLatency
	switch {
	case forward:
		val = forwardVal
		if inst.Op == isa.OpLDL {
			val = uint64(int64(int32(uint32(val))))
		}
	default:
		if hit, lat := p.dtlb.Access(addr); !hit {
			latency += lat
		}
		if hit, lat := p.l1d.Access(addr); !hit {
			latency += lat
			p.stats.DCacheMisses++
			if l2hit, l2lat := p.l2.Access(addr); !l2hit {
				latency += l2lat
				p.stats.L2Misses++
			}
			if p.MissHook != nil {
				p.MissHook(addr)
			}
		}
		var err error
		switch inst.Op {
		case isa.OpLDL:
			var v32 uint32
			v32, err = p.mem.ReadL(addr)
			val = uint64(int64(int32(v32)))
		default: // LDQ, or a corrupted op treated as a quad load
			val, err = p.mem.ReadQ(addr)
		}
		if err != nil {
			// Wrong-path loads fault harmlessly; the exception is
			// only raised if this instruction commits.
			excKind = memExcKind(err)
			val = 0
		}
	}

	p.rob.result[robIdx] = addr
	p.stats.LoadsIssued++

	// Record the issued access in the LDQ for violation checks.
	li := (p.rob.aux[robIdx] & 0xFF) % LDQSize
	if p.ldq.flags[li]&ldqValid != 0 {
		p.ldq.addr[li] = addr
		f := p.ldq.flags[li] | ldqIssued
		if size == 8 {
			f |= ldqSize8
		} else {
			f &^= ldqSize8
		}
		if forward {
			f |= ldqFwd
			p.ldq.fwdRob[li] = forwardRob
		} else {
			f &^= ldqFwd
		}
		p.ldq.flags[li] = f
	}

	if excKind != arch.ExcNone {
		p.raiseAt(robIdx, excKind, addr)
		p.rob.flags[robIdx] |= robCompleted
		p.sched.flags[slot] = 0
		return true, false
	}
	if latency < 1 {
		latency = 1
	}
	p.scheduleWriteback(slot, robIdx, val, latency)
	return true, false
}

func (p *Pipeline) executeStore(slot int, robIdx uint64, inst isa.Inst, base, data uint64) (redirected bool) {
	addr := base + uint64(int64(inst.Disp))
	size := inst.MemBytes()
	if size == 0 {
		size = 8
	}
	stqIdx := (p.rob.aux[robIdx] & 0xFF) % STQSize

	excKind := arch.ExcNone
	if addr&(size-1) != 0 {
		excKind = arch.ExcAlignment
	} else if !p.mem.Mapped(addr, mem.PermWrite) {
		excKind = arch.ExcAccessFault
	}
	if hit, _ := p.dtlb.Access(addr); !hit {
		p.stats.DCacheMisses++ // TLB fill traffic; timing only
	}

	p.stq.addr[stqIdx] = addr
	p.stq.data[stqIdx] = data
	p.stq.robIdx[stqIdx] = robIdx
	flags := p.stq.flags[stqIdx] | stqReady
	if inst.Op == isa.OpSTL {
		flags |= stqIsSTL
	}
	p.stq.flags[stqIdx] = flags

	p.rob.result[robIdx] = addr
	if excKind != arch.ExcNone {
		p.raiseAt(robIdx, excKind, addr)
	}
	p.rob.flags[robIdx] |= robCompleted
	p.sched.flags[slot] = 0

	if excKind == arch.ExcNone {
		return p.checkMemOrder(robIdx, addr, size)
	}
	return false
}

// checkMemOrder searches the LDQ for younger loads that already read the
// location this store just resolved to. The oldest violator (and everything
// younger) is replayed, and its PC trains the wait table — the 21264's
// store-load order trap.
func (p *Pipeline) checkMemOrder(storeRob, addr, size uint64) (redirected bool) {
	if p.memdep == nil {
		return false
	}
	storePos := p.rob.pos(storeRob)
	victim := uint64(ROBSize) // position of the oldest violating load
	var victimRob uint64
	n := p.ldq.count
	if n > LDQSize {
		n = LDQSize
	}
	for i := uint64(0); i < n; i++ {
		li := (p.ldq.head + i) % LDQSize
		lf := p.ldq.flags[li]
		if lf&ldqValid == 0 || lf&ldqIssued == 0 {
			continue
		}
		loadRob := p.ldq.robIdx[li] % ROBSize
		loadPos := p.rob.pos(loadRob)
		if loadPos <= storePos || loadPos >= p.rob.count {
			continue // older than the store, or stale
		}
		lSize := uint64(4)
		if lf&ldqSize8 != 0 {
			lSize = 8
		}
		lAddr := p.ldq.addr[li]
		if lAddr+lSize <= addr || addr+size <= lAddr {
			continue // disjoint
		}
		if lf&ldqFwd != 0 && p.rob.pos(p.ldq.fwdRob[li]) > storePos {
			continue // forwarded from a store younger than this one
		}
		if loadPos < victim {
			victim = loadPos
			victimRob = loadRob
		}
	}
	if victim == ROBSize {
		return false
	}
	p.stats.MemOrderViolations++
	p.memdep.TrainViolation(p.rob.pc[victimRob])
	replayPC := p.rob.pc[victimRob]
	p.squashFrom(victimRob)
	p.redirect(replayPC)
	return true
}

func (p *Pipeline) executeBranch(slot int, robIdx uint64, inst isa.Inst, pc, v1 uint64) (redirected bool) {
	seq := pc + isa.InstBytes
	var (
		taken  bool
		target uint64
	)
	switch inst.Op {
	case isa.OpBR, isa.OpBSR:
		taken, target = true, isa.BranchTarget(pc, inst.Disp)
	case isa.OpJMP, isa.OpJSR, isa.OpRET:
		taken, target = true, v1&^3
	default:
		taken = isa.EvalCondBranch(inst.Op, v1)
		target = seq
		if taken {
			target = isa.BranchTarget(pc, inst.Disp)
		}
	}

	flags := p.rob.flags[robIdx]
	predTaken := flags&robPredTaken != 0
	predTarget := (p.rob.aux[robIdx] >> 8) & (1<<48 - 1)
	mispredict := target != predTarget

	if taken {
		flags |= robActTaken
	} else {
		flags &^= robActTaken
	}
	if mispredict {
		flags |= robMispredict
		p.stats.Mispredicts++
		if flags&robIsCond != 0 {
			p.stats.CondMispredicts++
		}
	}
	p.rob.result[robIdx] = target
	p.rob.flags[robIdx] = flags

	highConf := flags&robHighConf != 0
	isCond := flags&robIsCond != 0
	if mispredict && isCond && highConf {
		p.stats.HCMispredicts++
	}
	if p.BranchHook != nil {
		p.BranchHook(BranchEvent{
			Cycle:        p.cycle,
			PC:           pc,
			IsCond:       isCond,
			PredTaken:    predTaken,
			ActualTaken:  taken,
			PredTarget:   predTarget,
			ActualTarget: target,
			Mispredicted: mispredict,
			HighConf:     highConf,
		})
	}

	// Link value (BSR/JSR/RET/BR write the return address).
	if flags&robHasDest != 0 {
		p.scheduleWriteback(slot, robIdx, seq, p.cfg.ALULatency)
	} else {
		p.rob.flags[robIdx] |= robCompleted
		p.sched.flags[slot] = 0
	}

	if mispredict {
		p.squashAfter(robIdx)
		p.redirect(target)
		// Repair the speculative history: wrong-path fetches polluted
		// it. Resume from this branch's fetch-time history, extended
		// with its actual outcome if conditional.
		hist := (flags >> robHistShift) & p.histMask()
		if isCond {
			hist = p.shiftHist(hist, taken)
		}
		p.specHist = hist
		return true
	}
	return false
}

// scheduleWriteback places a computed result in the execution window. If no
// slot is free the instruction simply retries next cycle (a structural
// hazard).
func (p *Pipeline) scheduleWriteback(slot int, robIdx uint64, val uint64, latency int) {
	w, free := p.exec.alloc()
	if !free {
		return // retry: scheduler entry stays valid
	}
	p.exec.busy[w] = true
	p.exec.doneAt[w] = p.cycle + uint64(latency)
	p.exec.val[w] = val
	p.exec.rob[w] = robIdx
	if p.rob.flags[robIdx]&robHasDest != 0 {
		p.exec.tag[w] = p.rob.physDest[robIdx]
	} else {
		p.exec.tag[w] = execNoDest
	}
	p.sched.flags[slot] = 0
}

// raiseAt records an exception on a ROB entry; it is raised if and when the
// entry reaches commit (precise exceptions; wrong-path faults vanish).
func (p *Pipeline) raiseAt(robIdx uint64, kind arch.ExceptionKind, addr uint64) {
	p.rob.flags[robIdx] |= robExcValid | uint64(kind&7)<<robExcShift
	p.rob.result[robIdx] = addr
}

// ---------------------------------------------------------------------------
// Squash and redirect: recovery from a resolved misprediction. Everything
// younger than the branch is flushed; the speculative RAT is rebuilt from
// the architectural RAT plus the surviving ROB entries; the free list is
// recomputed from liveness (robust even under corrupted state).

// squashAfter flushes everything younger than robIdx (the entry itself
// survives): branch-misprediction recovery.
func (p *Pipeline) squashAfter(robIdx uint64) {
	pos := p.rob.pos(robIdx)
	if pos >= ROBSize {
		pos = ROBSize - 1
	}
	p.squashToCount(pos + 1)
}

// squashFrom flushes robIdx and everything younger: memory-order replay,
// which refetches starting at the violating load itself.
func (p *Pipeline) squashFrom(robIdx uint64) {
	p.squashToCount(p.rob.pos(robIdx))
}

// markLive records a physical-register tag in a liveness bitmap. A named
// function (not a closure inside squashToCount) keeps the squash path
// statically allocation-free for hotpathalloc.
func markLive(live *[PhysRegs / 64]uint64, tag uint64) {
	tag %= PhysRegs
	live[tag/64] |= 1 << (tag % 64)
}

func (p *Pipeline) squashToCount(newCount uint64) {
	p.stats.Flushes++
	if newCount > p.rob.count {
		newCount = p.rob.count
	}

	// Invalidate squashed ROB entries.
	for i := newCount; i < p.rob.count && i < ROBSize; i++ {
		idx := (p.rob.head + i) % ROBSize
		p.rob.flags[idx] = 0
	}
	p.rob.count = newCount

	// Rebuild the speculative RAT from the architectural RAT plus
	// surviving mappings, count surviving stores, and gather liveness.
	var live [PhysRegs / 64]uint64
	for r := uint64(0); r < 32; r++ {
		phys := p.archRAT.get(r)
		p.specRAT.set(r, phys)
		markLive(&live, phys)
	}
	stqCount, ldqCount := uint64(0), uint64(0)
	for i := uint64(0); i < newCount && i < ROBSize; i++ {
		idx := (p.rob.head + i) % ROBSize
		f := p.rob.flags[idx]
		if f&robValid == 0 {
			continue
		}
		if f&robHasDest != 0 {
			p.specRAT.set(p.rob.archDest[idx], p.rob.physDest[idx])
			markLive(&live, p.rob.physDest[idx])
			markLive(&live, p.rob.oldPhys[idx])
		}
		if f&robIsStore != 0 {
			stqCount++
		}
		if f&robIsLoad != 0 {
			ldqCount++
		}
	}
	for w := range p.free.bits {
		p.free.bits[w] = ^live[w]
	}

	// Shrink the STQ and LDQ to the surviving entries.
	if stqCount > STQSize {
		stqCount = STQSize
	}
	for i := stqCount; i < p.stq.count && i < STQSize; i++ {
		idx := (p.stq.head + i) % STQSize
		p.stq.flags[idx] = 0
	}
	p.stq.count = stqCount
	if ldqCount > LDQSize {
		ldqCount = LDQSize
	}
	for i := ldqCount; i < p.ldq.count && i < LDQSize; i++ {
		idx := (p.ldq.head + i) % LDQSize
		p.ldq.flags[idx] = 0
	}
	p.ldq.count = ldqCount

	// Drop scheduler entries and in-flight results of squashed work.
	for i := range p.sched.flags {
		if p.sched.flags[i]&schValid == 0 {
			continue
		}
		if p.rob.pos(p.sched.robIdx[i]) >= newCount {
			p.sched.flags[i] = 0
		}
	}
	for i := range p.exec.busy {
		if p.exec.busy[i] && p.rob.pos(p.exec.rob[i]) >= newCount {
			p.exec.busy[i] = false
		}
	}
}

func (p *Pipeline) redirect(target uint64) {
	p.fq.reset()
	p.fetchPC = target
	p.fetchFaulted = false
	p.fetchStallUntil = p.cycle + uint64(p.cfg.RedirectPenalty)
}
