package service

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/workload"
)

// tinySpec is a fig2 campaign scaled to the minimum trial count: fast enough
// for the race detector, big enough to interrupt mid-flight.
func tinySpec(benches ...string) JobSpec {
	return JobSpec{
		Experiment:  "fig2",
		Seed:        7,
		Scale:       0.5,
		TrialFactor: 0.01,
		Benchmarks:  benches,
		Shards:      2,
	}
}

func newTestService(t *testing.T, root string) *Service {
	t.Helper()
	svc, err := New(Config{Root: root, MaxShards: 2, Logf: t.Logf})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return svc
}

// waitTerminal polls until the job reaches a terminal state.
func waitTerminal(t *testing.T, svc *Service, id string) *Job {
	t.Helper()
	deadline := time.Now().Add(5 * time.Minute)
	for {
		j, ok := svc.Job(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if j.State.Terminal() {
			return j
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, j.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// oneShot runs the same experiment serially, unsharded, journalling under
// dir — the reference the service's merged output must match byte for byte.
func oneShot(t *testing.T, dir string, spec JobSpec) {
	t.Helper()
	benches := make([]workload.Benchmark, len(spec.Benchmarks))
	for i, b := range spec.Benchmarks {
		benches[i] = workload.Benchmark(b)
	}
	err := experiments.RunShardable(spec.Experiment, experiments.Options{
		Seed:         spec.Seed,
		Scale:        spec.Scale,
		TrialFactor:  spec.TrialFactor,
		Benchmarks:   benches,
		CampaignRoot: dir,
	})
	if err != nil {
		t.Fatalf("one-shot run: %v", err)
	}
}

// dirFiles reads every file under root, keyed by relative path.
func dirFiles(t *testing.T, root string) map[string][]byte {
	t.Helper()
	files := make(map[string][]byte)
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(root, path)
		files[rel] = data
		return nil
	})
	if err != nil {
		t.Fatalf("walking %s: %v", root, err)
	}
	return files
}

// requireByteIdentical asserts the merged job output equals the one-shot
// campaign directory file for file, byte for byte.
func requireByteIdentical(t *testing.T, mergedRoot, oneshotRoot string) {
	t.Helper()
	got, want := dirFiles(t, mergedRoot), dirFiles(t, oneshotRoot)
	if len(got) == 0 {
		t.Fatalf("no merged files under %s", mergedRoot)
	}
	for rel, w := range want {
		g, ok := got[rel]
		if !ok {
			t.Errorf("merged output missing %s", rel)
			continue
		}
		if string(g) != string(w) {
			t.Errorf("%s: merged bytes differ from one-shot (%d vs %d bytes)", rel, len(g), len(w))
		}
	}
	for rel := range got {
		if _, ok := want[rel]; !ok {
			t.Errorf("merged output has extra file %s", rel)
		}
	}
}

func TestJobRunsToMergedByteIdenticalResult(t *testing.T) {
	root := t.TempDir()
	svc := newTestService(t, root)
	defer svc.Close()

	spec := tinySpec("gzip")
	j, err := svc.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	final := waitTerminal(t, svc, j.ID)
	if final.State != StateDone {
		t.Fatalf("job ended %s (error %q), want done", final.State, final.Error)
	}
	if len(final.Campaigns) == 0 {
		t.Fatal("done job lists no merged campaigns")
	}
	if final.TrialsDone == 0 {
		t.Error("done job reports zero trials")
	}

	oneshotDir := filepath.Join(t.TempDir(), "oneshot")
	oneShot(t, oneshotDir, spec)
	requireByteIdentical(t, svc.st.mergedDir(j.ID), oneshotDir)
}

// TestKillRestartResumesByteIdentical is the headline lifecycle guarantee:
// submit, kill the daemon mid-campaign (hard crash: the job record still says
// running), restart on the same root, and the job auto-resumes from its shard
// journals to a merged result byte-identical to a serial one-shot run. The
// full seven-benchmark suite runs in normal builds; under -race one benchmark
// keeps the test inside CI budgets.
func TestKillRestartResumesByteIdentical(t *testing.T) {
	benches := []string{"gzip"}
	if !raceEnabled {
		benches = nil // all seven
	}
	spec := tinySpec(benches...)

	root := t.TempDir()
	svc := newTestService(t, root)
	j, err := svc.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}

	// Let the campaign get under way, then take the daemon down. Close is
	// the graceful half (drain, flush, re-queue durably)...
	deadline := time.Now().Add(2 * time.Minute)
	for {
		cur, _ := svc.Job(j.ID)
		if cur.TrialsDone > 0 || cur.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := svc.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	onDisk, err := svc.st.loadJob(j.ID)
	if err != nil {
		t.Fatalf("loadJob after shutdown: %v", err)
	}
	if !onDisk.State.Terminal() && onDisk.State != StateQueued {
		t.Fatalf("job persisted as %s after shutdown, want queued or terminal", onDisk.State)
	}

	// ...and rewriting the record to running simulates the hard crash: a
	// daemon SIGKILLed between starting shards and persisting any outcome.
	if onDisk.State == StateQueued {
		onDisk.State = StateRunning
		if err := svc.st.saveJob(onDisk); err != nil {
			t.Fatalf("simulating crash marker: %v", err)
		}
	}

	svc2 := newTestService(t, root)
	defer svc2.Close()
	final := waitTerminal(t, svc2, j.ID)
	if final.State != StateDone {
		t.Fatalf("resumed job ended %s (error %q), want done", final.State, final.Error)
	}

	oneshotDir := filepath.Join(t.TempDir(), "oneshot")
	oneShot(t, oneshotDir, spec)
	requireByteIdentical(t, svc2.st.mergedDir(j.ID), oneshotDir)
}

func TestCancelRunningJob(t *testing.T) {
	root := t.TempDir()
	svc := newTestService(t, root)
	defer svc.Close()

	// A bigger trial factor keeps the job running long enough to cancel.
	spec := tinySpec("gzip")
	spec.TrialFactor = 0.25
	j, err := svc.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		cur, _ := svc.Job(j.ID)
		if cur.State == StateRunning && cur.TrialsDone > 0 {
			break
		}
		if cur.State.Terminal() {
			t.Fatalf("job finished (%s) before it could be cancelled", cur.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, err := svc.Cancel(j.ID); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	final := waitTerminal(t, svc, j.ID)
	if final.State != StateCancelled {
		t.Fatalf("job ended %s, want cancelled", final.State)
	}
	onDisk, err := svc.st.loadJob(j.ID)
	if err != nil {
		t.Fatalf("loadJob: %v", err)
	}
	if onDisk.State != StateCancelled {
		t.Fatalf("persisted state %s, want cancelled", onDisk.State)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	root := t.TempDir()
	svc := newTestService(t, root)
	defer svc.Close()

	// Occupy the scheduler, then cancel a job that is still queued behind it.
	first, err := svc.Submit(tinySpec("gzip"))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	second, err := svc.Submit(tinySpec("gzip"))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	j, err := svc.Cancel(second.ID)
	if err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	if j.State != StateCancelled {
		t.Fatalf("queued job cancel left state %s", j.State)
	}
	if final := waitTerminal(t, svc, first.ID); final.State != StateDone {
		t.Fatalf("first job ended %s, want done", final.State)
	}
}

func TestSubmitValidation(t *testing.T) {
	svc := newTestService(t, t.TempDir())
	defer svc.Close()

	cases := []JobSpec{
		{Experiment: "fig8"},                                // derived, not shardable
		{Experiment: "nope"},                                // unknown
		{Experiment: "fig2", Shards: 1000},                  // over the fan-out bound
		{Experiment: "fig2", Benchmarks: []string{"spice"}}, // unknown benchmark
		{Experiment: "fig2", Workers: -2},
	}
	for _, spec := range cases {
		if _, err := svc.Submit(spec); err == nil {
			t.Errorf("Submit(%+v) accepted, want error", spec)
		}
	}
	if n := len(svc.Jobs()); n != 0 {
		t.Fatalf("%d jobs recorded after rejected submissions", n)
	}
}

func TestQueueSurvivesRestartInOrder(t *testing.T) {
	root := t.TempDir()
	svc := newTestService(t, root)
	a, err := svc.Submit(tinySpec("gzip"))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	b, err := svc.Submit(tinySpec("mcf"))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if err := svc.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	svc2 := newTestService(t, root)
	defer svc2.Close()
	jobs := svc2.Jobs()
	if len(jobs) != 2 || jobs[0].ID != a.ID || jobs[1].ID != b.ID {
		t.Fatalf("restarted queue = %v, want [%s %s]", jobs, a.ID, b.ID)
	}
	for _, id := range []string{a.ID, b.ID} {
		if final := waitTerminal(t, svc2, id); final.State != StateDone {
			t.Fatalf("job %s ended %s, want done", id, final.State)
		}
	}
	// IDs keep ascending across restarts.
	c, err := svc2.Submit(tinySpec("gzip"))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if c.ID <= b.ID {
		t.Fatalf("new job ID %s does not follow %s", c.ID, b.ID)
	}
	waitTerminal(t, svc2, c.ID)
}

func TestStoreSkipsUncommittedJobDirs(t *testing.T) {
	root := t.TempDir()
	st, err := newStore(root)
	if err != nil {
		t.Fatalf("newStore: %v", err)
	}
	// A crash between MkdirAll and the first saveJob leaves an empty dir.
	if err := os.MkdirAll(st.jobDir("job-000001"), 0o755); err != nil {
		t.Fatal(err)
	}
	jobs, err := st.listJobs()
	if err != nil {
		t.Fatalf("listJobs: %v", err)
	}
	if len(jobs) != 0 {
		t.Fatalf("listJobs found %d jobs in an uncommitted dir", len(jobs))
	}
	// And the next ID must not collide with the half-made directory.
	id, err := st.nextID()
	if err != nil {
		t.Fatalf("nextID: %v", err)
	}
	if id != "job-000002" {
		t.Fatalf("nextID = %s, want job-000002", id)
	}
}

func TestReadAddrMissing(t *testing.T) {
	_, err := ReadAddr(t.TempDir())
	if err == nil {
		t.Fatal("ReadAddr succeeded with no daemon")
	}
	if !errors.Is(err, os.ErrNotExist) || !strings.Contains(err.Error(), "restore-sim serve") {
		t.Fatalf("ReadAddr error %v, want wrapped not-exist mentioning the daemon", err)
	}
}
