package analyzers

import (
	"go/ast"
	"go/types"

	"repro/tools/restorelint/lint"
)

// StateRegister is the migrated statecheck gate: every uint64, [N]uint64 or
// []uint64 field of a stateful struct must be registered with the StateSpace
// (scalars via Register, slices via BindArray+RegisterPacked), or the
// fault-injection campaign silently skips it and the measured AVF is wrong.
//
// A struct is stateful when it participates in registration at all — it has
// a register method taking a *StateSpace, or any of its fields is passed by
// address to a Register call anywhere in the package (this second clause is
// what the old standalone statecheck missed: Pipeline registers its own
// scalars from registerState, not from a method named register).
//
// Bookkeeping words that are deliberately not fault-injection targets carry
// a `//restorelint:ignore stateregister -- why` comment on the field.
var StateRegister = &lint.Analyzer{
	Name: "stateregister",
	Doc:  "flags uint64 state-struct fields that are never registered with the StateSpace",
	Run:  runStateRegister,
}

func runStateRegister(pass *lint.Pass) {
	idx := buildStateIndex(pass.Pkg)
	stateful := statefulTypes(pass.Pkg, idx)
	if len(stateful) == 0 {
		return
	}

	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || !stateful[ts.Name.Name] {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				checkStructFields(pass, idx, ts.Name.Name, st)
			}
		}
	}
}

func checkStructFields(pass *lint.Pass, idx *stateIndex, typeName string, st *ast.StructType) {
	info := pass.Pkg.Info
	for _, field := range st.Fields.List {
		if !isWordField(info, field.Type) {
			continue
		}
		for _, name := range field.Names {
			v, ok := info.Defs[name].(*types.Var)
			if !ok || idx.registered[v] {
				continue
			}
			pass.Reportf(name.Pos(),
				"field %s.%s is %s but is never registered with the StateSpace; fault injection cannot reach it (register it, or annotate //restorelint:ignore stateregister with a reason)",
				typeName, name.Name, types.ExprString(field.Type))
		}
	}
}

// isWordField reports whether the field type is uint64, [N]uint64 or
// []uint64 — the shapes StateSpace.Register (scalar words) and
// StateSpace.BindArray (packed slices) accept backing words from.
func isWordField(info *types.Info, expr ast.Expr) bool {
	if arr, ok := expr.(*ast.ArrayType); ok {
		expr = arr.Elt
	}
	tv, ok := info.Types[expr]
	if !ok {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint64
}

// statefulTypes decides which structs the registration obligation applies
// to: those with a register(*StateSpace) method, plus those with at least
// one field already registered somewhere in the package.
func statefulTypes(pkg *lint.Package, idx *stateIndex) map[string]bool {
	out := make(map[string]bool)
	for name, has := range idx.hasState {
		if has {
			out[name] = true
		}
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Name.Name != "register" {
				continue
			}
			if !hasStateSpaceParam(pkg.Info, fd) {
				continue
			}
			if name := recvTypeName(fd); name != "" {
				out[name] = true
			}
		}
	}
	return out
}

func hasStateSpaceParam(info *types.Info, fd *ast.FuncDecl) bool {
	for _, p := range fd.Type.Params.List {
		tv, ok := info.Types[p.Type]
		if !ok {
			continue
		}
		t := tv.Type
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj().Name() == "StateSpace" {
			return true
		}
	}
	return false
}
