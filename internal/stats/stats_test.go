package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestBinomialMargin(t *testing.T) {
	// Paper: 12-13k trials give < 0.9% margin at 95% confidence.
	if m := WorstCaseMargin95(12000); m >= 0.009 {
		t.Errorf("margin for 12k trials = %.4f, want < 0.009", m)
	}
	if m := WorstCaseMargin95(13000); m >= 0.009 {
		t.Errorf("margin for 13k trials = %.4f", m)
	}
	// Fewer samples, wider margin.
	if WorstCaseMargin95(100) <= WorstCaseMargin95(10000) {
		t.Error("margin must shrink with n")
	}
	if m := BinomialMargin(0.5, 0, 1.96); m != 1 {
		t.Errorf("degenerate n margin = %v", m)
	}
}

func TestMarginProperties(t *testing.T) {
	f := func(pRaw uint16, nRaw uint16) bool {
		p := float64(pRaw) / 65535
		n := int(nRaw)%10000 + 1
		m := Margin95(p, n)
		return m >= 0 && m <= 1 && !math.IsNaN(m) &&
			m <= WorstCaseMargin95(n)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistribution(t *testing.T) {
	d := NewDistribution([]string{"a", "b"})
	d.Fraction["a"] = 0.6
	d.Fraction["b"] = 0.4
	if d.Get("a") != 0.6 || d.Get("missing") != 0 {
		t.Error("Get wrong")
	}
	if math.Abs(d.Total()-1.0) > 1e-12 {
		t.Errorf("total = %v", d.Total())
	}
}

func TestStackedTable(t *testing.T) {
	tbl := NewStackedTable("Figure X", "interval", []string{"masked", "exception"})
	d1 := NewDistribution(nil)
	d1.Fraction["masked"] = 0.9
	d1.Fraction["exception"] = 0.1
	tbl.AddColumn("100", d1)
	d2 := NewDistribution(nil)
	d2.Fraction["masked"] = 0.8
	d2.Fraction["exception"] = 0.2
	tbl.AddColumn("200", d2)

	if got := tbl.Cell("masked", "100"); got != 0.9 {
		t.Errorf("cell = %v", got)
	}
	if got := tbl.Cell("masked", "nope"); got != 0 {
		t.Errorf("missing column cell = %v", got)
	}

	text := tbl.Render()
	for _, want := range []string{"Figure X", "interval", "masked", "exception", "90.00%", "20.00%"} {
		if !strings.Contains(text, want) {
			t.Errorf("rendered table missing %q:\n%s", want, text)
		}
	}

	csv := tbl.RenderCSV()
	if !strings.Contains(csv, "interval,masked,exception") ||
		!strings.Contains(csv, "100,0.900000,0.100000") {
		t.Errorf("csv malformed:\n%s", csv)
	}
}

func TestAddColumnDuplicateLabelKeepsBothColumns(t *testing.T) {
	tbl := NewStackedTable("", "interval", []string{"masked"})
	d1 := NewDistribution(nil)
	d1.Fraction["masked"] = 0.9
	d2 := NewDistribution(nil)
	d2.Fraction["masked"] = 0.4
	tbl.AddColumn("100", d1)
	tbl.AddColumn("100", d2) // same label: must not alias the first column

	if len(tbl.Columns) != 2 {
		t.Fatalf("columns = %v, want 2 entries", tbl.Columns)
	}
	if tbl.Columns[0] != "100" || tbl.Columns[1] != "100#2" {
		t.Fatalf("columns = %v, want [100 100#2]", tbl.Columns)
	}
	if got := tbl.Cell("masked", "100"); got != 0.9 {
		t.Errorf("first column overwritten: cell = %v, want 0.9", got)
	}
	if got := tbl.Cell("masked", "100#2"); got != 0.4 {
		t.Errorf("suffixed column cell = %v, want 0.4", got)
	}

	// Before the fix, Render showed d2's value under BOTH labels; each
	// distribution must appear exactly once.
	text := tbl.Render()
	if strings.Count(text, "90.00%") != 1 || strings.Count(text, "40.00%") != 1 {
		t.Errorf("render double-counts a column:\n%s", text)
	}

	// A third collision keeps counting up.
	tbl.AddColumn("100", d1)
	if tbl.Columns[2] != "100#3" {
		t.Fatalf("third duplicate label = %q, want 100#3", tbl.Columns[2])
	}
}

func TestSeriesTable(t *testing.T) {
	var a, b Series
	a.Name, b.Name = "imm", "delayed"
	a.Add(100, 0.94)
	a.Add(200, 0.96)
	b.Add(100, 0.93)

	out := RenderSeriesTable("Figure 7", "interval", "%.3f", a, b)
	for _, want := range []string{"Figure 7", "imm", "delayed", "0.940", "0.930", "0.960"} {
		if !strings.Contains(out, want) {
			t.Errorf("series table missing %q:\n%s", want, out)
		}
	}
	// Missing cell for delayed@200 must render blank, not zero.
	if strings.Contains(out, "0.000") {
		t.Errorf("missing cell rendered as zero:\n%s", out)
	}
}
