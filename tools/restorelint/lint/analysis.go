package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one package through one analyzer and collects diagnostics.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	diags    []Diagnostic
}

// Diagnostic is one finding, positioned for editor navigation.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ignoreDirective marks one //restorelint:ignore comment: the analyzers it
// silences (empty = all) at its line.
type ignoreDirective struct {
	analyzers map[string]bool // nil = all analyzers
}

// ignoreIndex maps file -> line -> directive for one package.
type ignoreIndex map[string]map[int]ignoreDirective

func buildIgnoreIndex(pkg *Package) ignoreIndex {
	idx := make(ignoreIndex)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				dir, ok := parseIgnore(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				if idx[pos.Filename] == nil {
					idx[pos.Filename] = make(map[int]ignoreDirective)
				}
				idx[pos.Filename][pos.Line] = dir
			}
		}
	}
	return idx
}

// parseIgnore recognises "restorelint:ignore [analyzer ...]" anywhere in a
// comment, plus the legacy "statecheck:ignore" spelling (equivalent to
// "restorelint:ignore stateregister"). Text after "--" or "—" is free-form
// justification.
func parseIgnore(text string) (ignoreDirective, bool) {
	if strings.Contains(text, "statecheck:ignore") {
		return ignoreDirective{analyzers: map[string]bool{"stateregister": true}}, true
	}
	i := strings.Index(text, "restorelint:ignore")
	if i < 0 {
		return ignoreDirective{}, false
	}
	rest := text[i+len("restorelint:ignore"):]
	if j := strings.IndexAny(rest, "—"); j >= 0 {
		rest = rest[:j]
	}
	if j := strings.Index(rest, "--"); j >= 0 {
		rest = rest[:j]
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return ignoreDirective{}, true // bare directive: all analyzers
	}
	set := make(map[string]bool, len(fields))
	for _, f := range fields {
		set[strings.TrimRight(f, ",.:;")] = true
	}
	return ignoreDirective{analyzers: set}, true
}

func (idx ignoreIndex) suppresses(d Diagnostic) bool {
	lines := idx[d.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		if dir, ok := lines[line]; ok {
			if dir.analyzers == nil || dir.analyzers[d.Analyzer] {
				return true
			}
		}
	}
	return false
}

// RunAnalyzers applies analyzers to a package and returns surviving
// diagnostics, sorted by position, with ignore directives applied.
func RunAnalyzers(pkg *Package, analyzers ...*Analyzer) []Diagnostic {
	idx := buildIgnoreIndex(pkg)
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Pkg: pkg}
		a.Run(pass)
		for _, d := range pass.diags {
			if !idx.suppresses(d) {
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out
}

// EnclosingFunc returns the innermost function declaration containing pos in
// the package, or nil. Function literals are attributed to their enclosing
// declaration: ownership of a write is judged by the declared method it
// happens in.
func (pkg *Package) EnclosingFunc(pos token.Pos) *ast.FuncDecl {
	for _, f := range pkg.Files {
		if pos < f.Pos() || pos > f.End() {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Pos() <= pos && pos <= fd.End() {
				return fd
			}
		}
	}
	return nil
}
