// Package experiments orchestrates the paper's evaluation: one entry point
// per table/figure, shared by the restore-sim command and the benchmark
// harness. Each experiment returns both raw results and a rendered table so
// paper-vs-measured comparisons are mechanical.
package experiments

import (
	"fmt"
	"path/filepath"
	"strconv"

	"repro/internal/fit"
	"repro/internal/harden"
	"repro/internal/inject"
	"repro/internal/obs"
	"repro/internal/perf"
	"repro/internal/pipeline"
	"repro/internal/protect"
	"repro/internal/restore"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Options scales and seeds every experiment.
type Options struct {
	// Seed drives workload generation and injection sampling.
	Seed int64
	// Scale multiplies workload data-structure sizes (0 = 1.0).
	Scale float64
	// TrialFactor scales campaign sizes: 1.0 reproduces paper-scale
	// campaigns (~1000 software trials and ~1750 microarchitectural
	// trials per benchmark); tests use small fractions (0 = 1.0).
	TrialFactor float64
	// Benchmarks restricts the suite (nil = all seven).
	Benchmarks []workload.Benchmark
	// Workers fans each campaign's trials out across goroutines (0 =
	// serial). Campaign results are bit-identical for every worker count.
	Workers int
	// Progress, if set, receives per-trial completion ticks from each
	// campaign; with Workers > 1 it is called from worker goroutines and
	// must be safe for concurrent use.
	Progress func(done, total int)
	// Obs, if non-nil, receives campaign/pipeline telemetry from every
	// campaign an experiment runs (see internal/obs). Purely
	// observational: experiment results are byte-identical with or
	// without a sink.
	Obs obs.Sink
	// Pipeline optionally overrides the processor configuration for
	// microarchitectural campaigns (tests use a tiny WatchdogCycles to
	// force truncated campaigns; nil = pipeline.DefaultConfig).
	Pipeline *pipeline.Config
	// CampaignRoot, if non-empty, makes every injection campaign durable:
	// each campaign journals completed trials into
	// CampaignRoot/<CampaignID> (see internal/campaignio) and a rerun of
	// the same experiment resumes from the journal, re-running only the
	// missing trials. Results are byte-identical to a non-durable run.
	CampaignRoot string
	// ShardIndex and ShardCount split every campaign's trial slots across
	// cooperating processes: slot s belongs to the shard with
	// s % ShardCount == ShardIndex. Sharding requires CampaignRoot; the
	// shard journals are merged with inject.MergeUArch/MergeVM or the
	// `restore-sim merge` subcommand. Zero values mean unsharded.
	ShardIndex int
	ShardCount int
	// GoldenImageRoot, if non-empty, gives every campaign a warmed-state
	// golden image at GoldenImageRoot/<CampaignID>.golden (see
	// internal/ckptio): the first run of a campaign writes the image at the
	// warm-up boundary, later runs restore it instead of re-executing the
	// warm-up. Results are byte-identical either way.
	GoldenImageRoot string
	// CompressJournal selects the compressed-segment journal framing for
	// fresh campaign journals (no effect without CampaignRoot; an existing
	// journal keeps the framing it was created with).
	CompressJournal bool
	// Interrupt, if non-nil, stops every campaign at the next trial
	// boundary once the channel is closed. Durable campaigns drain and
	// flush their journal first; the experiment then returns an error
	// wrapping inject.ErrInterrupted.
	Interrupt <-chan struct{}
}

// vmCampaign copies the durability options into a software-level campaign
// configuration.
func (o Options) vmCampaign(cfg inject.VMConfig) inject.VMConfig {
	cfg.Interrupt = o.Interrupt
	if o.CampaignRoot != "" {
		cfg.ResumeFrom = filepath.Join(o.CampaignRoot, cfg.CampaignID())
		cfg.ShardIndex, cfg.ShardCount = o.ShardIndex, o.ShardCount
		cfg.CompressJournal = o.CompressJournal
	}
	if o.GoldenImageRoot != "" {
		cfg.GoldenImage = filepath.Join(o.GoldenImageRoot, cfg.CampaignID()+".golden")
	}
	return cfg
}

// uarchCampaign copies the durability options into a microarchitectural
// campaign configuration.
func (o Options) uarchCampaign(cfg inject.UArchConfig) inject.UArchConfig {
	cfg.Interrupt = o.Interrupt
	if o.CampaignRoot != "" {
		cfg.ResumeFrom = filepath.Join(o.CampaignRoot, cfg.CampaignID())
		cfg.ShardIndex, cfg.ShardCount = o.ShardIndex, o.ShardCount
		cfg.CompressJournal = o.CompressJournal
	}
	if o.GoldenImageRoot != "" {
		cfg.GoldenImage = filepath.Join(o.GoldenImageRoot, cfg.CampaignID()+".golden")
	}
	return cfg
}

func (o *Options) applyDefaults() {
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.Scale == 0 {
		o.Scale = 1.0
	}
	if o.TrialFactor == 0 {
		o.TrialFactor = 1.0
	}
	if len(o.Benchmarks) == 0 {
		o.Benchmarks = workload.Benchmarks()
	}
}

func scaleCount(base int, factor float64, min int) int {
	n := int(float64(base) * factor)
	if n < min {
		n = min
	}
	return n
}

// Fig2LatencyBins is the x-axis of Figure 2 (instructions from injection to
// symptom); the final bin plays the figure's "inf" column bounded by the
// observation window.
var Fig2LatencyBins = []uint64{25, 50, 100, 200, 500, 1_000, 10_000, 100_000}

// Fig2Result holds the software-level campaign for all benchmarks.
type Fig2Result struct {
	Low32     bool
	PerBench  map[workload.Benchmark]*inject.VMResult
	AllTrials []inject.VMTrial
	Table     *stats.StackedTable
}

// Fig2 runs the virtual-machine fault-injection campaign of Section 3.1.
func Fig2(opts Options, low32 bool) (*Fig2Result, error) {
	opts.applyDefaults()
	res := &Fig2Result{
		Low32:    low32,
		PerBench: make(map[workload.Benchmark]*inject.VMResult, len(opts.Benchmarks)),
	}
	for _, bench := range opts.Benchmarks {
		r, err := inject.RunVM(opts.vmCampaign(inject.VMConfig{
			Bench:    bench,
			Seed:     opts.Seed,
			Scale:    opts.Scale,
			Trials:   scaleCount(1000, opts.TrialFactor, 40),
			Window:   100_000,
			Low32:    low32,
			Workers:  opts.Workers,
			Progress: opts.Progress,
			Obs:      opts.Obs,
		}))
		if err != nil {
			return nil, fmt.Errorf("fig2 %s: %w", bench, err)
		}
		res.PerBench[bench] = r
		res.AllTrials = append(res.AllTrials, r.Trials...)
	}

	title := "Figure 2: virtual machine fault injection (symptom category vs detection latency)"
	if low32 {
		title = "Section 3.1 variant: injections restricted to result bits 0..31"
	}
	res.Table = stats.NewStackedTable(title, "latency", inject.VMCategories())
	for _, lat := range Fig2LatencyBins {
		d := inject.VMDistribution(res.AllTrials, lat)
		res.Table.AddColumn(formatCount(lat), d)
	}
	return res, nil
}

// UArchIntervals is the checkpoint-interval x-axis of Figures 4-6.
var UArchIntervals = []uint64{25, 50, 100, 200, 500, 1_000, 2_000}

// UArchExperiment holds one microarchitectural campaign across benchmarks.
// The same campaign serves Figure 4 (perfect detection), Figure 5 (JRS) and
// the Section 5.2.1 oracle-confidence ablation, because each trial records
// every symptom's latency.
type UArchExperiment struct {
	LatchesOnly bool
	Hardened    bool
	PerBench    map[workload.Benchmark]*inject.UArchResult
	AllTrials   []inject.UArchTrial
}

// CampaignConfig selects the microarchitectural campaign variant.
type CampaignConfig struct {
	LatchesOnly bool
	Harden      harden.Scheme
	// Policy, if non-nil, overrides Harden with an explicit protection
	// policy (internal/protect); see inject.UArchConfig.Policy.
	Policy *protect.Policy
}

// Campaign runs the microarchitectural injection campaign of Section 4.2.
func Campaign(opts Options, cc CampaignConfig) (*UArchExperiment, error) {
	opts.applyDefaults()
	exp := &UArchExperiment{
		LatchesOnly: cc.LatchesOnly,
		Hardened:    cc.Harden != harden.None || cc.Policy != nil,
		PerBench:    make(map[workload.Benchmark]*inject.UArchResult, len(opts.Benchmarks)),
	}
	for _, bench := range opts.Benchmarks {
		r, err := inject.RunUArch(opts.uarchCampaign(inject.UArchConfig{
			Bench:          bench,
			Seed:           opts.Seed,
			Scale:          opts.Scale,
			Points:         scaleCount(25, opts.TrialFactor, 4),
			TrialsPerPoint: scaleCount(70, opts.TrialFactor, 12),
			WindowCycles:   10_000,
			LatchesOnly:    cc.LatchesOnly,
			Harden:         cc.Harden,
			Policy:         cc.Policy,
			Pipeline:       opts.Pipeline,
			Workers:        opts.Workers,
			Progress:       opts.Progress,
			Obs:            opts.Obs,
		}))
		if err != nil {
			return nil, fmt.Errorf("uarch campaign %s: %w", bench, err)
		}
		exp.PerBench[bench] = r
		exp.AllTrials = append(exp.AllTrials, r.Trials...)
	}
	return exp, nil
}

// Table renders the campaign at every checkpoint interval under a detector:
// Figure 4 with DetectorPerfect, Figure 5 with DetectorJRS, Figure 6 is the
// hardened campaign with DetectorJRS.
func (e *UArchExperiment) Table(title string, det inject.Detector) *stats.StackedTable {
	t := stats.NewStackedTable(title, "interval", inject.UArchCategories())
	for _, iv := range UArchIntervals {
		t.AddColumn(formatCount(iv), inject.UArchDistribution(e.AllTrials, iv, det))
	}
	return t
}

// FailureRateAt returns the uncovered-failure fraction at an interval.
func (e *UArchExperiment) FailureRateAt(interval uint64, det inject.Detector) float64 {
	return inject.FailureRate(e.AllTrials, interval, det)
}

// RawFailureRate returns the baseline (no detection) failure fraction.
func (e *UArchExperiment) RawFailureRate() float64 {
	return inject.RawFailureRate(e.AllTrials)
}

// Fig7Result holds the performance-impact sweep: the analytic model's two
// policy series plus a directly simulated immediate-policy series that
// validates the model against the real ReStore processor.
type Fig7Result struct {
	PerBench  map[workload.Benchmark]perf.Inputs
	Mean      perf.Inputs
	Imm       stats.Series
	Delayed   stats.Series
	Simulated stats.Series
	Table     string
}

// Fig7Intervals is Figure 7's x-axis.
var Fig7Intervals = []uint64{50, 100, 200, 500, 1_000}

// Fig7 measures timing-model inputs on the pipeline per benchmark and
// evaluates the false-positive cost model for both rollback policies.
func Fig7(opts Options) (*Fig7Result, error) {
	opts.applyDefaults()
	res := &Fig7Result{PerBench: make(map[workload.Benchmark]perf.Inputs, len(opts.Benchmarks))}
	var all []perf.Inputs
	insts := uint64(scaleCount(200_000, opts.TrialFactor, 30_000))
	for _, bench := range opts.Benchmarks {
		in, err := perf.MeasureInputs(bench, opts.Seed, insts, pipeline.DefaultConfig())
		if err != nil {
			return nil, fmt.Errorf("fig7 %s: %w", bench, err)
		}
		res.PerBench[bench] = in
		all = append(all, in)
	}
	res.Mean = perf.Average(all)
	res.Imm, res.Delayed = perf.Sweep(res.Mean, Fig7Intervals)

	// Direct simulation of the immediate policy on a reduced window,
	// cross-checking the model.
	simInsts := uint64(scaleCount(30_000, opts.TrialFactor, 10_000))
	sim, err := perf.MeasureSweep(opts.Benchmarks, opts.Seed, simInsts,
		pipeline.DefaultConfig(), restore.PolicyImmediate, Fig7Intervals)
	if err != nil {
		return nil, err
	}
	res.Simulated = sim

	res.Table = stats.RenderSeriesTable(
		"Figure 7: performance impact of false positive symptoms (speedup vs baseline)",
		"interval", "%.4f", res.Imm, res.Delayed, res.Simulated)
	return res, nil
}

// Fig8Result holds the FIT scaling sweep.
type Fig8Result struct {
	Model        fit.Model
	Series       []stats.Series
	GoalFIT      float64
	Table        string
	Improvements map[fit.Variant]float64
}

// Fig8 builds the reliability-scaling model from measured campaign failure
// fractions (or the paper's, if given a nil measurement) and sweeps design
// size.
func Fig8(plain, hardened *UArchExperiment, interval uint64) *Fig8Result {
	model := fit.PaperModel()
	if plain != nil && hardened != nil {
		model.FailFrac = map[fit.Variant]float64{
			fit.Baseline:   plain.RawFailureRate(),
			fit.ReStore:    plain.FailureRateAt(interval, inject.DetectorJRS),
			fit.LHF:        hardened.RawFailureRate(),
			fit.LHFReStore: hardened.FailureRateAt(interval, inject.DetectorJRS),
		}
	}
	sizes := fit.DefaultSizes()
	series := model.Sweep(sizes)
	goal := fit.GoalFIT(1000)

	res := &Fig8Result{
		Model:        model,
		Series:       series,
		GoalFIT:      goal,
		Improvements: make(map[fit.Variant]float64, 4),
	}
	for _, v := range fit.Variants() {
		res.Improvements[v] = model.MTBFImprovement(v)
	}
	res.Table = stats.RenderSeriesTable(
		fmt.Sprintf("Figure 8: SDC FIT vs design size (1000-year MTBF goal = %.0f FIT)", goal),
		"bits", "%.3f", series...)
	return res
}

// Summary computes the paper's headline metrics from campaign results.
type Summary struct {
	BaselineFailureRate float64 // paper: ~0.07
	ReStoreFailureRate  float64 // paper: ~0.035 at interval 100
	LHFFailureRate      float64 // paper: ~0.03
	CombinedFailureRate float64 // paper: ~0.01
	ReStoreMTBFGain     float64 // paper: ~2x
	CombinedMTBFGain    float64 // paper: ~7x
}

// Summarize derives the headline numbers at the given checkpoint interval.
func Summarize(plain, hardened *UArchExperiment, interval uint64) Summary {
	s := Summary{
		BaselineFailureRate: plain.RawFailureRate(),
		ReStoreFailureRate:  plain.FailureRateAt(interval, inject.DetectorJRS),
		LHFFailureRate:      hardened.RawFailureRate(),
		CombinedFailureRate: hardened.FailureRateAt(interval, inject.DetectorJRS),
	}
	if s.ReStoreFailureRate > 0 {
		s.ReStoreMTBFGain = s.BaselineFailureRate / s.ReStoreFailureRate
	}
	if s.CombinedFailureRate > 0 {
		s.CombinedMTBFGain = s.BaselineFailureRate / s.CombinedFailureRate
	}
	return s
}

// MeasureRestoreRun exercises the full ReStore processor on a benchmark (a
// top-level integration helper used by examples and the CLI's demo mode).
func MeasureRestoreRun(bench workload.Benchmark, seed int64, insts uint64, cfg restore.Config) (restore.Report, error) {
	prog, err := workload.Generate(bench, workload.Config{Seed: seed})
	if err != nil {
		return restore.Report{}, err
	}
	m, err := prog.NewMemory()
	if err != nil {
		return restore.Report{}, err
	}
	pipe, err := pipeline.New(pipeline.DefaultConfig(), m, prog.Entry)
	if err != nil {
		return restore.Report{}, err
	}
	proc := restore.New(pipe, cfg)
	return proc.Run(insts, insts*400)
}

func formatCount(v uint64) string {
	switch {
	case v >= 1_000_000 && v%1_000_000 == 0:
		return strconv.FormatUint(v/1_000_000, 10) + "M"
	case v >= 1_000 && v%1_000 == 0:
		return strconv.FormatUint(v/1_000, 10) + "k"
	default:
		return strconv.FormatUint(v, 10)
	}
}
