package predictor

import "testing"

func TestMemDepLifecycle(t *testing.T) {
	m := NewMemDep(8)
	pc := uint64(0x4000)
	if m.ShouldWait(pc) {
		t.Error("cold table should not wait")
	}
	m.TrainViolation(pc)
	if !m.ShouldWait(pc) {
		t.Error("violation did not train the wait table")
	}
	// Decay eventually releases the entry.
	for i := 0; i < 3; i++ {
		if !m.ShouldWait(pc) {
			t.Fatalf("entry decayed after only %d steps", i)
		}
		m.Decay()
	}
	if m.ShouldWait(pc) {
		t.Error("entry should have fully decayed")
	}
}

func TestMemDepAliasing(t *testing.T) {
	m := NewMemDep(4) // 16 entries
	m.TrainViolation(0x1000)
	// Same index (stride 16 words): aliases share the entry, like a real
	// untagged wait table.
	if !m.ShouldWait(0x1000 + 16*4) {
		t.Error("aliased PC should share the wait entry")
	}
	if m.ShouldWait(0x1004) {
		t.Error("neighbouring PC must not wait")
	}
}

func TestMemDepClone(t *testing.T) {
	m := NewMemDep(8)
	m.TrainViolation(0x2000)
	c := m.Clone()
	if !c.ShouldWait(0x2000) {
		t.Error("clone lost training")
	}
	c.Decay()
	c.Decay()
	c.Decay()
	if m.ShouldWait(0x2000) == false {
		t.Error("decaying the clone affected the original")
	}
}
