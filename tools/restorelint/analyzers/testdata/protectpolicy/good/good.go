// Package fixture holds protection-policy usage the analyzer must accept.
package fixture

import (
	"repro/internal/harden"
	"repro/internal/protect"
)

// Exhaustive coverage of every protection domain.
func overhead(p harden.Protection) int {
	switch p {
	case harden.Unprotected:
		return 0
	case harden.Parity:
		return 1
	case harden.ECC:
		return 8
	}
	return 0
}

// An explicit default acknowledges partial coverage.
func isDerived(k protect.Kind) bool {
	switch k {
	case protect.KindStaticBudget:
		return true
	default:
		return false
	}
}

// The sanctioned consult point may read the map.
func consultProtection(m *harden.Map, elem int) harden.Protection {
	return m.Protection(elem)
}

// Campaign code goes through the consult point...
func runTrial(m *harden.Map, elem int) bool {
	return consultProtection(m, elem) == harden.Unprotected
}

// ...or asks the policy itself, which is not a compiled map read.
func absorbed(pol *protect.Policy, elem string) bool {
	return pol.ProtectionOf(elem) != harden.Unprotected
}

// Switches over other types stay out of scope.
func plain(x int) int {
	switch x {
	case 1:
		return 1
	}
	return 0
}

// The escape hatch still works for deliberate direct reads.
func surveyed(m *harden.Map) bool {
	return m.Protected(0) //restorelint:ignore protectpolicy — reporting helper, not campaign logic
}
