package pipeline

import (
	"testing"

	"repro/internal/workload"
)

func TestInvariantsHoldDuringFaultFreeRuns(t *testing.T) {
	for _, bench := range workload.Benchmarks() {
		bench := bench
		t.Run(string(bench), func(t *testing.T) {
			p := newBenchPipeline(t, bench, DefaultConfig())
			for i := 0; i < 60; i++ {
				p.RunCycles(250)
				if p.Status() != StatusRunning {
					t.Fatalf("pipeline stopped: %v", p.Status())
				}
				if err := p.CheckInvariants(); err != nil {
					t.Fatalf("cycle %d: %v", p.Cycles(), err)
				}
			}
		})
	}
}

func TestInvariantsHoldAfterReset(t *testing.T) {
	p := newBenchPipeline(t, workload.GCC, DefaultConfig())
	p.RunCycles(4000)
	regs := p.ArchRegs()
	pc := p.CommitPC()
	p.Reset(regs, pc)
	if err := p.CheckInvariants(); err != nil {
		t.Fatalf("after reset: %v", err)
	}
	p.RunCycles(4000)
	if err := p.CheckInvariants(); err != nil {
		t.Fatalf("after resumed run: %v", err)
	}
}

func TestInvariantsDetectCorruption(t *testing.T) {
	// The checker must actually catch broken structures — corrupt the
	// free list so a mapped register appears free.
	p := newBenchPipeline(t, workload.Gzip, DefaultConfig())
	p.RunCycles(2000)
	if err := p.CheckInvariants(); err != nil {
		t.Fatalf("clean state flagged: %v", err)
	}
	mapped := p.archRAT.get(1)
	p.free.free(mapped)
	if err := p.CheckInvariants(); err == nil {
		t.Fatal("free/live conflict not detected")
	}
}
