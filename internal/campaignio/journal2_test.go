package campaignio

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// writeJournal2 creates a campaign dir with a compressed-segment journal.
func writeJournal2(t *testing.T, dir string, m Manifest, slots []int, batch int) {
	t.Helper()
	if err := WriteManifest(dir, m); err != nil {
		t.Fatal(err)
	}
	w, err := OpenWriterWith(dir, 0, Options{Batch: batch, Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range slots {
		if err := w.Append(s, payload(s)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCompressedJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := testManifest(10, 0, 1)
	writeJournal2(t, dir, m, []int{0, 1, 2, 3, 4}, 2)

	raw, err := os.ReadFile(filepath.Join(dir, JournalName))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw[:8], magic2[:]) {
		t.Fatalf("journal magic %q, want framing 2", raw[:8])
	}

	scan, err := ScanJournal(dir, m.Slots)
	if err != nil {
		t.Fatal(err)
	}
	if scan.Torn {
		t.Fatal("clean compressed journal reported torn")
	}
	if len(scan.Records) != 5 {
		t.Fatalf("recovered %d records, want 5", len(scan.Records))
	}
	for i, rec := range scan.Records {
		if rec.Slot != i || !bytes.Equal(rec.Payload, payload(i)) {
			t.Fatalf("record %d = slot %d payload %q", i, rec.Slot, rec.Payload)
		}
	}
	if scan.ValidLen != int64(len(raw)) {
		t.Fatalf("ValidLen %d, want file size %d", scan.ValidLen, len(raw))
	}
}

// A compressed journal's torn tail is an incomplete trailing segment: the
// scan reports it, and a resuming writer truncates it and appends whole
// segments, exactly as framing 1 does with records.
func TestCompressedJournalTornTailDetectedAndRepaired(t *testing.T) {
	dir := t.TempDir()
	m := testManifest(10, 0, 1)
	writeJournal2(t, dir, m, []int{0, 1, 2, 3}, 2)
	path := filepath.Join(dir, JournalName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop into the final segment (two segments of two records each; any
	// cut past the first segment's end and before EOF is mid-segment).
	scanWhole, err := ScanJournal(dir, m.Slots)
	if err != nil {
		t.Fatal(err)
	}
	cut := len(raw) - 3
	if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
		t.Fatal(err)
	}

	scan, err := ScanJournal(dir, m.Slots)
	if err != nil {
		t.Fatal(err)
	}
	if !scan.Torn {
		t.Fatal("mid-segment truncation not reported as torn")
	}
	if len(scan.Records) != 2 {
		t.Fatalf("recovered %d records from the intact segment, want 2", len(scan.Records))
	}
	if scan.ValidLen >= int64(cut) || scan.ValidLen == scanWhole.ValidLen {
		t.Fatalf("ValidLen %d not at the intact segment boundary", scan.ValidLen)
	}

	// Resume: truncate the tear, append the lost records again.
	w, err := OpenWriterWith(dir, scan.ValidLen, Options{Batch: 2, Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []int{2, 3} {
		if err := w.Append(s, payload(s)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	again, err := ScanJournal(dir, m.Slots)
	if err != nil {
		t.Fatal(err)
	}
	if again.Torn || len(again.Records) != 4 {
		t.Fatalf("after repair: torn=%v records=%d", again.Torn, len(again.Records))
	}
}

func TestCompressedJournalCorruptionIsFatal(t *testing.T) {
	dir := t.TempDir()
	m := testManifest(10, 0, 1)
	writeJournal2(t, dir, m, []int{0, 1, 2, 3}, 2)
	path := filepath.Join(dir, JournalName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a bit inside the first segment's compressed body (well before
	// the tail, so this can never be read as a torn tail).
	raw[8+8+2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ScanJournal(dir, m.Slots); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt segment: got %v, want ErrCorrupt", err)
	}
}

// Resuming keeps the existing file's framing no matter what the new writer
// asks for: framing 1 journals stay framing 1 under Compress and vice versa,
// so one file never mixes framings.
func TestResumeKeepsExistingFraming(t *testing.T) {
	dir1 := t.TempDir()
	m := testManifest(10, 0, 1)
	writeJournal(t, dir1, m, []int{0, 1}, 1)
	scan, err := ScanJournal(dir1, m.Slots)
	if err != nil {
		t.Fatal(err)
	}
	w, err := OpenWriterWith(dir1, scan.ValidLen, Options{Batch: 1, Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(2, payload(2)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(filepath.Join(dir1, JournalName))
	if !bytes.Equal(raw[:8], magic[:]) {
		t.Fatal("resume under Compress rewrote a framing-1 journal")
	}
	again, err := ScanJournal(dir1, m.Slots)
	if err != nil || len(again.Records) != 3 {
		t.Fatalf("mixed-open resume: %v, %d records", err, len(again.Records))
	}

	dir2 := t.TempDir()
	writeJournal2(t, dir2, m, []int{0, 1}, 1)
	scan2, err := ScanJournal(dir2, m.Slots)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := OpenWriter(dir2, scan2.ValidLen, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Append(2, payload(2)); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	raw2, _ := os.ReadFile(filepath.Join(dir2, JournalName))
	if !bytes.Equal(raw2[:8], magic2[:]) {
		t.Fatal("plain resume rewrote a framing-2 journal")
	}
	again2, err := ScanJournal(dir2, m.Slots)
	if err != nil || len(again2.Records) != 3 {
		t.Fatalf("mixed-open resume: %v, %d records", err, len(again2.Records))
	}
}

// Merging shards journalled in different framings produces byte-identical
// merged directories: the framing is an encoding of the same record stream.
func TestMergedBytesIdenticalAcrossFramings(t *testing.T) {
	slots0, slots1 := []int{0, 2, 4, 6}, []int{1, 3, 5, 7}
	mergedDirs := make([]string, 2)
	for i, compress := range []bool{false, true} {
		root := t.TempDir()
		d0, d1 := filepath.Join(root, "s0"), filepath.Join(root, "s1")
		write := writeJournal
		if compress {
			write = writeJournal2
		}
		write(t, d0, testManifest(8, 0, 2), slots0, 3)
		write(t, d1, testManifest(8, 1, 2), slots1, 3)
		man, payloads, err := MergeScan([]string{d0, d1})
		if err != nil {
			t.Fatal(err)
		}
		out := filepath.Join(root, "merged")
		if err := WriteMerged(out, man, payloads); err != nil {
			t.Fatal(err)
		}
		mergedDirs[i] = out
	}
	for _, name := range []string{ManifestName, JournalName} {
		a, err := os.ReadFile(filepath.Join(mergedDirs[0], name))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(mergedDirs[1], name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("%s differs between plain-shard and compressed-shard merges", name)
		}
	}
}

// The compressed framing actually compresses: a journal of repetitive JSON
// records lands smaller on disk than its framing-1 twin.
func TestCompressedJournalIsSmaller(t *testing.T) {
	m := testManifest(256, 0, 1)
	slots := make([]int, 256)
	for i := range slots {
		slots[i] = i
	}
	d1, d2 := t.TempDir(), t.TempDir()
	writeJournal(t, d1, m, slots, 64)
	writeJournal2(t, d2, m, slots, 64)
	plain, _ := os.Stat(filepath.Join(d1, JournalName))
	comp, _ := os.Stat(filepath.Join(d2, JournalName))
	if comp.Size() >= plain.Size() {
		t.Fatalf("compressed journal %d bytes >= plain %d", comp.Size(), plain.Size())
	}
}

// S1 regression: a slot journalled twice with identical payloads is the
// benign residue of an interrupted run re-running a batch; merge takes the
// first copy. Differing payloads for one slot remain a hard error.
func TestMergeScanDuplicateIdenticalSlotFirstWins(t *testing.T) {
	root := t.TempDir()
	d0, d1 := filepath.Join(root, "s0"), filepath.Join(root, "s1")
	writeJournal(t, d0, testManifest(4, 0, 2), []int{0, 2, 2}, 1)
	writeJournal(t, d1, testManifest(4, 1, 2), []int{1, 3}, 1)
	man, payloads, err := MergeScan([]string{d0, d1})
	if err != nil {
		t.Fatalf("identical duplicate rejected: %v", err)
	}
	if len(payloads) != 4 {
		t.Fatalf("covered %d slots, want 4", len(payloads))
	}
	if man.ShardCount != 1 {
		t.Fatalf("merged manifest still sharded: %+v", man)
	}
	for s, p := range payloads {
		if !bytes.Equal(p, payload(s)) {
			t.Fatalf("slot %d payload %q", s, p)
		}
	}
}

func TestMergeScanDuplicateDifferingSlotIsCorrupt(t *testing.T) {
	root := t.TempDir()
	d0, d1 := filepath.Join(root, "s0"), filepath.Join(root, "s1")
	m0 := testManifest(4, 0, 2)
	if err := WriteManifest(d0, m0); err != nil {
		t.Fatal(err)
	}
	w, err := OpenWriter(d0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range []struct {
		slot int
		p    []byte
	}{{0, payload(0)}, {2, payload(2)}, {2, []byte(`{"slot":2,"differs":true}`)}} {
		if err := w.Append(rec.slot, rec.p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	writeJournal(t, d1, testManifest(4, 1, 2), []int{1, 3}, 1)
	if _, _, err := MergeScan([]string{d0, d1}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("differing duplicate: got %v, want ErrCorrupt", err)
	}
}

// S2 pin: a batch below one clamps to flush-every-record, and a zero-length
// payload is a legal record that survives the round trip in both framings.
func TestWriterBatchClampAndEmptyPayload(t *testing.T) {
	for _, compress := range []bool{false, true} {
		dir := t.TempDir()
		m := testManifest(4, 0, 1)
		if err := WriteManifest(dir, m); err != nil {
			t.Fatal(err)
		}
		w, err := OpenWriterWith(dir, 0, Options{Batch: -3, Compress: compress})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Append(0, nil); err != nil {
			t.Fatal(err)
		}
		if err := w.Append(1, []byte{}); err != nil {
			t.Fatal(err)
		}
		if err := w.Append(2, payload(2)); err != nil {
			t.Fatal(err)
		}
		if got := w.Flushes(); got != 3 {
			t.Fatalf("compress=%v: %d flushes for 3 appends at clamped batch, want 3", compress, got)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		scan, err := ScanJournal(dir, m.Slots)
		if err != nil {
			t.Fatal(err)
		}
		if scan.Torn || len(scan.Records) != 3 {
			t.Fatalf("compress=%v: torn=%v records=%d", compress, scan.Torn, len(scan.Records))
		}
		for i := 0; i < 2; i++ {
			if len(scan.Records[i].Payload) != 0 {
				t.Fatalf("compress=%v: empty payload came back as %q", compress, scan.Records[i].Payload)
			}
		}
		if !bytes.Equal(scan.Records[2].Payload, payload(2)) {
			t.Fatalf("compress=%v: payload mismatch", compress)
		}
	}
}
