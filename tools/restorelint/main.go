// Command restorelint is the repository's static-analysis gate: a
// multichecker over the simulator packages enforcing the invariants the
// fault-injection methodology depends on.
//
//	determinism    simulator output must be a pure function of its seeds
//	opcodeswitch   switches over isa.Op are exhaustive or carry a default
//	statemut       registered state is written only by its declared owners
//	bitwidth       shifts, masks, and sign extensions respect field widths
//	stateregister  every uint64 state-struct field reaches the StateSpace
//	protectpolicy  protection-domain switches are exhaustive; protection
//	               maps are consulted only through consultProtection
//	hotpathalloc   //restorelint:hotpath functions are transitively
//	               allocation-free in steady state
//	goroutineshare goroutines share mutable state only through sync
//	               primitives or the pre-assigned indexed-slot idiom
//	durableio      campaignio fsyncs before publishing and CRC-checks
//	               before trusting records
//
// Usage:
//
//	go run ./tools/restorelint [package-dir ...]
//
// With no arguments it scans every package under internal/. Exit status is
// nonzero iff any diagnostic survives //restorelint:ignore suppression.
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/tools/restorelint/analyzers"
	"repro/tools/restorelint/lint"
)

// scopes maps each analyzer to the package directories (relative to the
// module root, slash-separated) it gates. A nil list means every scanned
// package. The narrow scopes are deliberate: determinism heuristics would
// drown tools/ in noise, and statemut's ownership matrix only exists for
// the pipeline package.
var scopes = map[*lint.Analyzer][]string{
	analyzers.Determinism: {
		"internal/pipeline", "internal/inject", "internal/staticvuln",
		"internal/stats", "internal/experiments", "internal/restore",
	},
	analyzers.OpcodeSwitch: {
		"internal/pipeline", "internal/staticvuln", "internal/asm", "internal/trace",
	},
	analyzers.StateMut:      {"internal/pipeline"},
	analyzers.StateRegister: {"internal/pipeline"},
	analyzers.BitWidth:      nil,
	analyzers.ProtectPolicy: {
		"internal/harden", "internal/protect", "internal/inject",
		"internal/experiments", "internal/restore",
	},
	analyzers.HotPathAlloc: {
		"internal/pipeline", "internal/mem", "internal/arch", "internal/inject",
		"internal/cache", "internal/predictor",
	},
	analyzers.GoroutineShare: {
		"internal/inject", "internal/campaignio", "internal/experiments",
		"internal/obs", "internal/restore",
	},
	analyzers.DurableIO: {"internal/campaignio"},
}

// order fixes the reporting order of analyzers within a package.
var order = []*lint.Analyzer{
	analyzers.Determinism,
	analyzers.OpcodeSwitch,
	analyzers.StateMut,
	analyzers.BitWidth,
	analyzers.StateRegister,
	analyzers.ProtectPolicy,
	analyzers.HotPathAlloc,
	analyzers.GoroutineShare,
	analyzers.DurableIO,
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "restorelint:", err)
		os.Exit(2)
	}
}

func run(args []string) error {
	loader, err := lint.NewLoader(".")
	if err != nil {
		return err
	}

	dirs := args
	if len(dirs) == 0 {
		dirs, err = packageDirs(filepath.Join(loader.ModuleRoot, "internal"))
		if err != nil {
			return err
		}
	}

	bad := 0
	for _, dir := range dirs {
		diags, err := checkDir(loader, dir)
		if err != nil {
			return fmt.Errorf("%s: %w", dir, err)
		}
		for _, d := range diags {
			fmt.Println(d)
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "restorelint: %d diagnostic(s)\n", bad)
		os.Exit(1)
	}
	return nil
}

func checkDir(loader *lint.Loader, dir string) ([]lint.Diagnostic, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(loader.ModuleRoot, abs)
	if err != nil {
		return nil, err
	}
	rel = filepath.ToSlash(rel)

	var active []*lint.Analyzer
	for _, a := range order {
		scope := scopes[a]
		if scope == nil {
			active = append(active, a)
			continue
		}
		for _, s := range scope {
			if rel == s {
				active = append(active, a)
				break
			}
		}
	}
	if len(active) == 0 {
		return nil, nil
	}
	pkg, err := loader.Load(abs)
	if err != nil {
		return nil, err
	}
	return lint.RunAnalyzers(pkg, active...), nil
}

// packageDirs finds every directory under root with at least one non-test
// Go file, skipping testdata trees.
func packageDirs(root string) ([]string, error) {
	seen := make(map[string]bool)
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			seen[filepath.Dir(path)] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	dirs := make([]string, 0, len(seen))
	for d := range seen {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	return dirs, nil
}
