// Package fit implements the reliability-scaling model of Section 5.3
// (Figure 8): silent-data-corruption FIT rates as a function of design size
// for the baseline pipeline, ReStore, the parity/ECC "low-hanging-fruit"
// pipeline, and their combination.
//
// FIT (Failures In Time) counts failures per 10^9 device-hours. Following
// the paper, the model assumes a raw soft-error rate of 0.001 FIT per bit of
// storage [Hazucha & Svensson], scales linearly with design size, and holds
// each configuration's masking/coverage constant as the design grows.
package fit

import (
	"math"

	"repro/internal/stats"
)

// RawFITPerBit is the widely accepted per-bit SRAM FIT estimate the paper
// adopts (0.001 FIT/bit).
const RawFITPerBit = 0.001

// HoursPerYear converts MTBF between hours and years.
const HoursPerYear = 8760.0

// Variant names the processor configurations of Figure 8.
type Variant string

// Figure 8's four configurations.
const (
	Baseline   Variant = "baseline"
	ReStore    Variant = "ReStore"
	LHF        Variant = "lhf"
	LHFReStore Variant = "lhf+ReStore"
)

// Variants returns the configurations in the figure's order.
func Variants() []Variant { return []Variant{Baseline, ReStore, LHF, LHFReStore} }

// Model holds the per-configuration failure fractions: the probability that
// a raw bit upset becomes a silent data corruption. These come straight from
// the microarchitectural campaigns (RawFailureRate / FailureRate).
type Model struct {
	// RawPerBit is the raw upset rate (default RawFITPerBit).
	RawPerBit float64
	// FailFrac maps each variant to its upset-to-failure probability.
	FailFrac map[Variant]float64
}

// PaperModel returns a model populated with the paper's reported failure
// fractions (Section 5.2.2): 7% baseline, 3.5% ReStore at a 100-instruction
// interval, 3% lhf, 1% lhf+ReStore. Useful as a reference overlay next to
// measured values.
func PaperModel() Model {
	return Model{
		RawPerBit: RawFITPerBit,
		FailFrac: map[Variant]float64{
			Baseline:   0.07,
			ReStore:    0.035,
			LHF:        0.03,
			LHFReStore: 0.01,
		},
	}
}

// FIT returns the silent-data-corruption FIT rate of a design with the
// given number of vulnerable storage bits under a variant.
func (m Model) FIT(v Variant, bits float64) float64 {
	raw := m.RawPerBit
	if raw == 0 {
		raw = RawFITPerBit
	}
	return bits * raw * m.FailFrac[v]
}

// MTBFYears converts a FIT rate to mean time between failures in years.
func MTBFYears(fit float64) float64 {
	if fit <= 0 {
		return math.Inf(1)
	}
	return 1e9 / fit / HoursPerYear
}

// GoalFIT returns the FIT rate corresponding to an MTBF goal in years; the
// paper's 1000-year goal is ~115 FIT.
func GoalFIT(years float64) float64 {
	return 1e9 / (years * HoursPerYear)
}

// DefaultSizes returns Figure 8's x-axis: design sizes from 50k bits
// (roughly the paper's 46k-bit "interesting state") doubling to 25.6M bits.
func DefaultSizes() []float64 {
	var sizes []float64
	for s := 50_000.0; s <= 25_600_000; s *= 2 {
		sizes = append(sizes, s)
	}
	return sizes
}

// Sweep produces one FIT-vs-size series per variant.
func (m Model) Sweep(sizes []float64) []stats.Series {
	out := make([]stats.Series, 0, len(m.FailFrac))
	for _, v := range Variants() {
		if _, ok := m.FailFrac[v]; !ok {
			continue
		}
		s := stats.Series{Name: string(v)}
		for _, size := range sizes {
			s.Add(size, m.FIT(v, size))
		}
		out = append(out, s)
	}
	return out
}

// MaxSizeMeetingGoal returns the largest design size (in bits) whose FIT
// stays at or below the goal for a variant: the "how much bigger can the
// design grow" question Figure 8 answers. The paper's observation that
// lhf+ReStore matches the MTBF of a design 1/7th the size follows from the
// ratio of these values across variants.
func (m Model) MaxSizeMeetingGoal(v Variant, goalFIT float64) float64 {
	raw := m.RawPerBit
	if raw == 0 {
		raw = RawFITPerBit
	}
	ff := m.FailFrac[v]
	if ff <= 0 {
		return math.Inf(1)
	}
	return goalFIT / (raw * ff)
}

// MTBFImprovement returns the factor by which a variant's mean time between
// failures exceeds the baseline's at the same design size — the paper's
// headline 2x (ReStore) and 7x (lhf+ReStore).
func (m Model) MTBFImprovement(v Variant) float64 {
	base := m.FailFrac[Baseline]
	ff := m.FailFrac[v]
	if ff <= 0 || base <= 0 {
		return math.Inf(1)
	}
	return base / ff
}
