package campaignio

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func testManifest(slots, shardIdx, shardCount int) Manifest {
	return Manifest{
		Version:    FormatVersion,
		Kind:       "uarch",
		ConfigHash: "00000000deadbeef",
		Seed:       42,
		Bench:      "gzip",
		Slots:      slots,
		ShardIndex: shardIdx,
		ShardCount: shardCount,
	}
}

func payload(slot int) []byte { return []byte(fmt.Sprintf(`{"slot":%d}`, slot)) }

// writeJournal creates a campaign dir with records for the given slots.
func writeJournal(t *testing.T, dir string, m Manifest, slots []int, batch int) {
	t.Helper()
	if err := WriteManifest(dir, m); err != nil {
		t.Fatal(err)
	}
	w, err := OpenWriter(dir, 0, batch)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range slots {
		if err := w.Append(s, payload(s)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := testManifest(100, 1, 2)
	m.Aux = []byte(`{"total_bits":123}`)
	if err := WriteManifest(dir, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != m.Kind || got.ConfigHash != m.ConfigHash || got.Slots != m.Slots ||
		got.ShardIndex != 1 || got.ShardCount != 2 {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, m)
	}
	// Aux survives modulo whitespace (the writer re-indents it).
	if err := got.SamePlan(m); err != nil {
		t.Fatalf("round-tripped manifest incompatible with original: %v", err)
	}
	// Rewriting is atomic and idempotent.
	if err := WriteManifest(dir, m); err != nil {
		t.Fatal(err)
	}
	// No temp files left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("leftover files after atomic write: %v", entries)
	}
}

func TestManifestCompatibility(t *testing.T) {
	base := testManifest(100, 0, 2)
	if err := base.SamePlan(testManifest(100, 1, 2)); err != nil {
		t.Fatalf("sibling shards should share a plan: %v", err)
	}
	if err := base.Resumable(testManifest(100, 1, 2)); !errors.Is(err, ErrManifestMismatch) {
		t.Fatalf("different shard index should not be resumable, got %v", err)
	}
	diff := testManifest(100, 0, 2)
	diff.Seed = 43
	if err := base.SamePlan(diff); !errors.Is(err, ErrManifestMismatch) {
		t.Fatalf("seed mismatch undetected: %v", err)
	}
	diff = testManifest(101, 0, 2)
	if err := base.SamePlan(diff); !errors.Is(err, ErrManifestMismatch) {
		t.Fatalf("slot-count mismatch undetected: %v", err)
	}
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := testManifest(10, 0, 1)
	writeJournal(t, dir, m, []int{0, 1, 2, 3, 4}, 2)
	scan, err := ScanJournal(dir, m.Slots)
	if err != nil {
		t.Fatal(err)
	}
	if scan.Torn {
		t.Fatal("clean journal reported torn")
	}
	if len(scan.Records) != 5 {
		t.Fatalf("records = %d, want 5", len(scan.Records))
	}
	for i, rec := range scan.Records {
		if rec.Slot != i || !bytes.Equal(rec.Payload, payload(i)) {
			t.Fatalf("record %d = %d %q", i, rec.Slot, rec.Payload)
		}
	}

	// Append more after a rescan, as a resume does.
	w, err := OpenWriter(dir, scan.ValidLen, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(5, payload(5)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	scan, err = ScanJournal(dir, m.Slots)
	if err != nil {
		t.Fatal(err)
	}
	if len(scan.Records) != 6 || scan.Records[5].Slot != 5 {
		t.Fatalf("after append: %d records", len(scan.Records))
	}
}

func TestJournalMissingIsEmpty(t *testing.T) {
	scan, err := ScanJournal(t.TempDir(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if scan.Torn || len(scan.Records) != 0 || scan.ValidLen != 0 {
		t.Fatalf("missing journal: %+v", scan)
	}
}

func TestJournalTornTailDetectedAndRepaired(t *testing.T) {
	dir := t.TempDir()
	m := testManifest(10, 0, 1)
	writeJournal(t, dir, m, []int{0, 1, 2}, 1)
	path := filepath.Join(dir, JournalName)
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop 3 bytes off the final record: a crash mid-append.
	if err := os.Truncate(path, info.Size()-3); err != nil {
		t.Fatal(err)
	}
	scan, err := ScanJournal(dir, m.Slots)
	if err != nil {
		t.Fatal(err)
	}
	if !scan.Torn {
		t.Fatal("torn tail not detected")
	}
	if len(scan.Records) != 2 {
		t.Fatalf("torn scan recovered %d records, want 2", len(scan.Records))
	}

	// A writer opened at the valid length truncates the tail; the next
	// scan is clean and the re-appended record is intact.
	w, err := OpenWriter(dir, scan.ValidLen, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(2, payload(2)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	scan, err = ScanJournal(dir, m.Slots)
	if err != nil {
		t.Fatal(err)
	}
	if scan.Torn || len(scan.Records) != 3 {
		t.Fatalf("after repair: torn=%t records=%d", scan.Torn, len(scan.Records))
	}
}

func TestJournalChecksumCorruptionIsFatal(t *testing.T) {
	dir := t.TempDir()
	m := testManifest(10, 0, 1)
	writeJournal(t, dir, m, []int{0, 1, 2}, 1)
	path := filepath.Join(dir, JournalName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte in the middle record.
	data[len(magic)+8+len(payload(0))+4+8+2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ScanJournal(dir, m.Slots); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupted record: err = %v, want ErrCorrupt", err)
	}
}

func TestJournalBadMagicAndSlotBounds(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, JournalName), []byte("NOTAJRNL"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ScanJournal(dir, 10); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: err = %v", err)
	}

	dir2 := t.TempDir()
	writeJournal(t, dir2, testManifest(10, 0, 1), []int{9}, 1)
	if _, err := ScanJournal(dir2, 5); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("out-of-plan slot: err = %v", err)
	}
}

func TestMergeScanTwoWay(t *testing.T) {
	d0, d1 := t.TempDir(), t.TempDir()
	writeJournal(t, d0, testManifest(6, 0, 2), []int{0, 2, 4}, 1)
	writeJournal(t, d1, testManifest(6, 1, 2), []int{1, 3, 5}, 1)
	merged, payloads, err := MergeScan([]string{d1, d0}) // order must not matter
	if err != nil {
		t.Fatal(err)
	}
	if merged.ShardCount != 1 || merged.ShardIndex != 0 {
		t.Fatalf("merged manifest not unsharded: %+v", merged)
	}
	if len(payloads) != 6 {
		t.Fatalf("payloads = %d, want 6", len(payloads))
	}
	for i, p := range payloads {
		if !bytes.Equal(p, payload(i)) {
			t.Fatalf("slot %d payload %q", i, p)
		}
	}
}

func TestMergeScanTruncatedPrefixOK(t *testing.T) {
	// A deterministically truncated campaign journals a shorter prefix in
	// every shard; merge accepts the prefix.
	d0, d1 := t.TempDir(), t.TempDir()
	writeJournal(t, d0, testManifest(10, 0, 2), []int{0, 2}, 1)
	writeJournal(t, d1, testManifest(10, 1, 2), []int{1, 3}, 1)
	_, payloads, err := MergeScan([]string{d0, d1})
	if err != nil {
		t.Fatal(err)
	}
	if len(payloads) != 4 {
		t.Fatalf("prefix = %d, want 4", len(payloads))
	}
}

func TestMergeScanErrors(t *testing.T) {
	t.Run("missing slot", func(t *testing.T) {
		d0, d1 := t.TempDir(), t.TempDir()
		writeJournal(t, d0, testManifest(6, 0, 2), []int{0, 4}, 1) // 2 missing
		writeJournal(t, d1, testManifest(6, 1, 2), []int{1, 3, 5}, 1)
		if _, _, err := MergeScan([]string{d0, d1}); err == nil {
			t.Fatal("hole in slot coverage not detected")
		}
	})
	t.Run("overlapping shard", func(t *testing.T) {
		d0, d1 := t.TempDir(), t.TempDir()
		writeJournal(t, d0, testManifest(6, 0, 2), []int{0, 2, 4}, 1)
		writeJournal(t, d1, testManifest(6, 0, 2), []int{0, 2, 4}, 1) // same index twice
		if _, _, err := MergeScan([]string{d0, d1}); !errors.Is(err, ErrManifestMismatch) {
			t.Fatalf("duplicate shard index: err = %v", err)
		}
	})
	t.Run("stray slot", func(t *testing.T) {
		d0, d1 := t.TempDir(), t.TempDir()
		writeJournal(t, d0, testManifest(6, 0, 2), []int{0, 2, 3}, 1) // 3 belongs to shard 1
		writeJournal(t, d1, testManifest(6, 1, 2), []int{1, 5}, 1)
		if _, _, err := MergeScan([]string{d0, d1}); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("stray slot: err = %v", err)
		}
	})
	t.Run("plan mismatch", func(t *testing.T) {
		d0, d1 := t.TempDir(), t.TempDir()
		writeJournal(t, d0, testManifest(6, 0, 2), []int{0, 2, 4}, 1)
		other := testManifest(6, 1, 2)
		other.Seed = 7
		writeJournal(t, d1, other, []int{1, 3, 5}, 1)
		if _, _, err := MergeScan([]string{d0, d1}); !errors.Is(err, ErrManifestMismatch) {
			t.Fatalf("plan mismatch: err = %v", err)
		}
	})
	t.Run("torn shard refused", func(t *testing.T) {
		d0, d1 := t.TempDir(), t.TempDir()
		writeJournal(t, d0, testManifest(6, 0, 2), []int{0, 2, 4}, 1)
		writeJournal(t, d1, testManifest(6, 1, 2), []int{1, 3, 5}, 1)
		path := filepath.Join(d1, JournalName)
		info, _ := os.Stat(path)
		if err := os.Truncate(path, info.Size()-2); err != nil {
			t.Fatal(err)
		}
		if _, _, err := MergeScan([]string{d0, d1}); !errors.Is(err, ErrTornTail) {
			t.Fatalf("torn shard: err = %v", err)
		}
	})
	t.Run("wrong shard count", func(t *testing.T) {
		d0 := t.TempDir()
		writeJournal(t, d0, testManifest(6, 0, 2), []int{0, 2, 4}, 1)
		if _, _, err := MergeScan([]string{d0}); !errors.Is(err, ErrManifestMismatch) {
			t.Fatalf("one dir of a 2-way campaign: err = %v", err)
		}
	})
}

func TestWriteMergedIsResumable(t *testing.T) {
	d0, d1, out := t.TempDir(), t.TempDir(), t.TempDir()
	writeJournal(t, d0, testManifest(6, 0, 2), []int{0, 2, 4}, 1)
	writeJournal(t, d1, testManifest(6, 1, 2), []int{1, 3, 5}, 1)
	merged, payloads, err := MergeScan([]string{d0, d1})
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteMerged(out, merged, payloads); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Resumable(merged); err != nil {
		t.Fatal(err)
	}
	scan, err := ScanJournal(out, merged.Slots)
	if err != nil {
		t.Fatal(err)
	}
	if scan.Torn || len(scan.Records) != 6 {
		t.Fatalf("merged journal: torn=%t records=%d", scan.Torn, len(scan.Records))
	}
	for i, rec := range scan.Records {
		if rec.Slot != i {
			t.Fatalf("merged journal not in slot order at %d: slot %d", i, rec.Slot)
		}
	}
}

func TestWriterUnflushedBatchNotVisible(t *testing.T) {
	dir := t.TempDir()
	m := testManifest(10, 0, 1)
	if err := WriteManifest(dir, m); err != nil {
		t.Fatal(err)
	}
	w, err := OpenWriter(dir, 0, 100) // batch far larger than appends
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(0, payload(0)); err != nil {
		t.Fatal(err)
	}
	// Before a flush the record is buffered only; the on-disk tail is clean.
	scan, err := ScanJournal(dir, m.Slots)
	if err != nil {
		t.Fatal(err)
	}
	if len(scan.Records) != 0 || scan.Torn {
		t.Fatalf("unflushed batch leaked: %+v", scan)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := w.Flushes(); got != 1 {
		t.Fatalf("flushes = %d", got)
	}
	scan, err = ScanJournal(dir, m.Slots)
	if err != nil {
		t.Fatal(err)
	}
	if len(scan.Records) != 1 {
		t.Fatalf("after flush: %d records", len(scan.Records))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}
