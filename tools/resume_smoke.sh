#!/bin/sh
# Durable-campaign smoke test (make resume, CI durable-campaigns job).
#
# Proves the CLI-level durability contract end to end, against the same
# binary a user runs:
#   1. an interrupted (-stop-after) run resumed from its -out directory
#      prints byte-identical output to a one-shot run;
#   2. a run killed by a real SIGTERM resumes the same way (if the tiny
#      campaign finishes before the signal lands, the resume degrades to a
#      full journal recovery — the diff still must hold);
#   3. two shards merged with `restore-sim merge` and rerun from the merged
#      directory print byte-identical output to a one-shot run.
set -eu

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/restore-sim" ./cmd/restore-sim
sim=$workdir/restore-sim
args="-trials 0.05 -scale 0.5 -bench gzip"

echo "== one-shot baseline"
$sim $args fig4 >"$workdir/golden.txt"

echo "== interrupt mid-campaign (-stop-after), then resume"
$sim $args -out "$workdir/resume" -stop-after 5 fig4 >/dev/null
$sim $args -out "$workdir/resume" fig4 >"$workdir/resumed.txt"
diff "$workdir/golden.txt" "$workdir/resumed.txt"

echo "== SIGTERM mid-campaign, then resume"
# A larger campaign so the signal has something to interrupt.
killargs="-trials 0.25 -scale 0.5 -bench gzip"
$sim $killargs fig4 >"$workdir/golden_kill.txt"
$sim $killargs -out "$workdir/killed" fig4 >/dev/null 2>&1 &
pid=$!
sleep 1
kill -TERM "$pid" 2>/dev/null || true
wait "$pid" || true
$sim $killargs -out "$workdir/killed" fig4 >"$workdir/killed.txt"
diff "$workdir/golden_kill.txt" "$workdir/killed.txt"

echo "== two shards, merged, rerun from the merged directory"
$sim $args -out "$workdir/s1" -shard 1/2 fig4 >/dev/null
$sim $args -out "$workdir/s2" -shard 2/2 fig4 >/dev/null
$sim -out "$workdir/merged" merge "$workdir/s1" "$workdir/s2"
$sim $args -out "$workdir/merged" fig4 >"$workdir/merged.txt"
diff "$workdir/golden.txt" "$workdir/merged.txt"

echo "resume smoke: OK"
