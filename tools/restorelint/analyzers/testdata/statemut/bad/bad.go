// Package fixture exercises the statemut diagnostics.
package fixture

// StateSpace stands in for the simulator's injection registry; statemut
// keys on calls to a method named Register taking &field arguments.
type StateSpace struct{}

func (s *StateSpace) Register(name string, kind, class int, word *uint64, bits int) {}

func (s *StateSpace) BindArray(dst *[]uint64, n int) int { return 0 }

//restorelint:writers fillQueue
type queue struct {
	slots [4]uint64
	head  uint64
}

func (q *queue) register(s *StateSpace) {
	for i := range q.slots {
		s.Register("q.slots", 0, 0, &q.slots[i], 64)
	}
	s.Register("q.head", 0, 0, &q.head, 2)
}

type machine struct {
	q queue
}

// fillQueue is the declared writer: its writes are the baseline.
func fillQueue(m *machine, v uint64) {
	m.q.slots[0] = v
}

// drainQueue is NOT in the writer list.
func drainQueue(m *machine) uint64 {
	v := m.q.slots[0]
	m.q.head++ // want "write to registered state queue.head outside its owners"
	return v
}

func clobber(m *machine, v uint64) {
	m.q.slots[1] = v // want "write to registered state queue.slots outside its owners"
}

func wipe(m *machine) {
	m.q = queue{} // want "write to registered state queue.\(entire struct\) outside its owners"
}

func leak(m *machine) *uint64 {
	return &m.q.head // want "address of registered state field queue.head escapes outside its owners"
}

// pq is registered through the packed two-phase API; its slice field carries
// the same write discipline as scalar registered words.
type pq struct {
	pc []uint64
}

func (p *pq) register(s *StateSpace) {
	s.BindArray(&p.pc, 4)
}

type packedMachine struct {
	p pq
}

func pokePacked(m *packedMachine, v uint64) {
	m.p.pc[0] = v // want "write to registered state pq.pc outside its owners"
}
