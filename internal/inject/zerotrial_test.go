package inject

import (
	"math"
	"testing"
	"time"

	"repro/internal/obs"
)

// Zero-trial aggregation: a campaign truncated before its first injection
// point returns an empty trial set, and every aggregate must report a
// defined value (0, or an empty container) rather than 0/0 = NaN.

func TestZeroTrialVMAggregates(t *testing.T) {
	r := &VMResult{}
	if got := r.MaskedFraction(); got != 0 {
		t.Errorf("MaskedFraction on zero trials = %v, want 0", got)
	}
	for name, frac := range r.Distribution(100_000) {
		if math.IsNaN(frac) || frac != 0 {
			t.Errorf("Distribution[%s] = %v on zero trials", name, frac)
		}
	}
	d := VMDistribution(nil, 100)
	if got := d.Total(); got != 0 {
		t.Errorf("VMDistribution(nil).Total() = %v", got)
	}
	if len(d.Categories) == 0 {
		t.Error("empty distribution lost its category order")
	}
}

func TestZeroTrialUArchAggregates(t *testing.T) {
	if got := FailureRate(nil, 100, DetectorJRS); got != 0 {
		t.Errorf("FailureRate(nil) = %v, want 0", got)
	}
	if got := RawFailureRate(nil); got != 0 {
		t.Errorf("RawFailureRate(nil) = %v, want 0", got)
	}
	r := &UArchResult{}
	for name, frac := range r.Distribution(100, DetectorPerfect) {
		if math.IsNaN(frac) || frac != 0 {
			t.Errorf("Distribution[%s] = %v on zero trials", name, frac)
		}
	}
	if rep := VulnerabilityReport(nil, 100, DetectorJRS); len(rep) != 0 {
		t.Errorf("VulnerabilityReport(nil) has %d rows", len(rep))
	}
	var e ElemVulnerability
	if got := e.FailFraction(); got != 0 {
		t.Errorf("FailFraction on zero trials = %v, want 0", got)
	}
}

// Telemetry for a zero-trial campaign records the truncation without
// dividing by the empty trial set.
func TestZeroTrialTelemetry(t *testing.T) {
	reg := obs.NewRegistry()
	recordVMTelemetry(reg, &VMResult{}, true, time.Millisecond)
	recordUArchTelemetry(reg, &UArchResult{}, true, time.Millisecond)
	for _, prefix := range []string{"campaign_vm", "campaign_uarch"} {
		if got := reg.Counter(prefix + "_trials_total").Value(); got != 0 {
			t.Errorf("%s_trials_total = %d", prefix, got)
		}
		if got := reg.Counter(prefix + "_truncated_total").Value(); got != 1 {
			t.Errorf("%s_truncated_total = %d, want 1", prefix, got)
		}
		if v := reg.Gauge(prefix + "_trials_per_second").Value(); math.IsNaN(v) || v != 0 {
			t.Errorf("%s_trials_per_second = %v, want 0", prefix, v)
		}
	}
}

func TestMetricName(t *testing.T) {
	cases := map[string]string{
		"masked":     "masked",
		"DMR detect": "dmr_detect",
		"cache-miss": "cache_miss",
	}
	for in, want := range cases {
		if got := metricName(in); got != want {
			t.Errorf("metricName(%q) = %q, want %q", in, got, want)
		}
	}
}
