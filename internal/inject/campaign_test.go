package inject

import (
	"testing"

	"repro/internal/harden"
	"repro/internal/workload"
)

// Small campaign configurations keep the test suite fast while still
// exercising the full machinery; the cmd tool runs paper-scale campaigns.

func smallVM(bench workload.Benchmark, low32 bool) VMConfig {
	return VMConfig{
		Bench: bench, Seed: 7, Scale: 0.5,
		Trials: 160, Points: 20, Window: 20_000, Spread: 40_000,
		Low32: low32,
	}
}

func smallUArch(bench workload.Benchmark) UArchConfig {
	return UArchConfig{
		Bench: bench, Seed: 7, Scale: 0.5,
		Points: 5, TrialsPerPoint: 30,
		WarmupCycles: 5_000, SpreadCycles: 10_000, WindowCycles: 5_000,
	}
}

func TestVMCampaignBasicShape(t *testing.T) {
	r, err := RunVM(smallVM(workload.MCF, false))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Trials) != 160 {
		t.Fatalf("trials = %d", len(r.Trials))
	}
	masked := r.MaskedFraction()
	if masked < 0.30 || masked > 0.85 {
		t.Errorf("masked fraction %.2f outside plausible band (paper: ~0.59)", masked)
	}
	d := r.Distribution(100_000)
	if d["exception"] == 0 {
		t.Error("no exceptions observed; pointer corruption must fault")
	}
	// Coverage grows (weakly) with allowed latency.
	prev := 0.0
	for _, lat := range []uint64{25, 100, 1000, 10_000} {
		d := r.Distribution(lat)
		cov := d["exception"] + d["cfv"]
		if cov+1e-9 < prev {
			t.Errorf("exception+cfv coverage shrank at latency %d", lat)
		}
		prev = cov
	}
}

func TestVMCampaignDeterminism(t *testing.T) {
	a, err := RunVM(smallVM(workload.Gzip, false))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunVM(smallVM(workload.Gzip, false))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Trials) != len(b.Trials) {
		t.Fatal("trial counts differ")
	}
	for i := range a.Trials {
		if a.Trials[i] != b.Trials[i] {
			t.Fatalf("trial %d differs: %+v vs %+v", i, a.Trials[i], b.Trials[i])
		}
	}
}

func TestVMLow32ShiftsExceptions(t *testing.T) {
	// Section 3.1: restricting flips to the low 32 bits shrinks the
	// exception category (fewer wild pointers) in favour of cfv/mem-addr.
	full, err := RunVM(smallVM(workload.MCF, false))
	if err != nil {
		t.Fatal(err)
	}
	low, err := RunVM(smallVM(workload.MCF, true))
	if err != nil {
		t.Fatal(err)
	}
	fullExc := full.Distribution(100_000)["exception"]
	lowExc := low.Distribution(100_000)["exception"]
	t.Logf("exception fraction: 64-bit=%.3f low32=%.3f", fullExc, lowExc)
	if lowExc > fullExc+0.05 {
		t.Errorf("low-32 injection increased exceptions (%.3f vs %.3f)", lowExc, fullExc)
	}
}

func TestUArchCampaignBasicShape(t *testing.T) {
	r, err := RunUArch(smallUArch(workload.MCF))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Trials) != 150 {
		t.Fatalf("trials = %d", len(r.Trials))
	}
	if r.TotalBits < 20_000 {
		t.Errorf("state space too small: %d bits", r.TotalBits)
	}
	raw := RawFailureRate(r.Trials)
	if raw > 0.35 {
		t.Errorf("raw failure rate %.2f implausibly high (paper: ~0.07)", raw)
	}
	d := r.Distribution(100, DetectorPerfect)
	if d["masked"] < 0.4 {
		t.Errorf("masked %.2f too low (paper: ~0.93 incl. other)", d["masked"])
	}
	// Coverage must not decrease with interval.
	prev := 1.0
	for _, iv := range []uint64{25, 100, 500, 2000} {
		fr := FailureRate(r.Trials, iv, DetectorPerfect)
		if fr > prev+1e-9 {
			t.Errorf("failure rate grew with interval at %d", iv)
		}
		prev = fr
	}
}

func TestUArchCampaignDeterminism(t *testing.T) {
	a, err := RunUArch(smallUArch(workload.Gzip))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunUArch(smallUArch(workload.Gzip))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Trials) != len(b.Trials) {
		t.Fatal("trial counts differ")
	}
	for i := range a.Trials {
		if a.Trials[i] != b.Trials[i] {
			t.Fatalf("trial %d differs:\n%+v\n%+v", i, a.Trials[i], b.Trials[i])
		}
	}
}

func TestUArchLatchOnlyTargeting(t *testing.T) {
	cfg := smallUArch(workload.Gzip)
	cfg.LatchesOnly = true
	r, err := RunUArch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range r.Trials {
		if !tr.IsLatch {
			t.Fatalf("trial %d targeted SRAM element %s in latch-only mode", i, tr.Elem)
		}
	}
}

func TestUArchHardenedPipeline(t *testing.T) {
	plain, err := RunUArch(smallUArch(workload.Vortex))
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallUArch(workload.Vortex)
	cfg.Harden = harden.LowHangingFruit
	hard, err := RunUArch(cfg)
	if err != nil {
		t.Fatal(err)
	}

	protected := 0
	for _, tr := range hard.Trials {
		if tr.Protected {
			protected++
		}
	}
	if protected == 0 {
		t.Fatal("no trials landed in protected state")
	}
	if hard.HardenStats.OverheadBits == 0 {
		t.Error("hardened campaign reports zero overhead")
	}

	rawPlain := RawFailureRate(plain.Trials)
	rawHard := RawFailureRate(hard.Trials)
	t.Logf("raw failure: plain=%.3f hardened=%.3f (protected %d/%d trials)",
		rawPlain, rawHard, protected, len(hard.Trials))
	if rawHard > rawPlain+0.03 {
		t.Errorf("hardening increased the failure rate: %.3f vs %.3f", rawHard, rawPlain)
	}
}

func TestUArchDetectorOrdering(t *testing.T) {
	r, err := RunUArch(smallUArch(workload.MCF))
	if err != nil {
		t.Fatal(err)
	}
	const iv = 100
	frPerfect := FailureRate(r.Trials, iv, DetectorPerfect)
	frOracle := FailureRate(r.Trials, iv, DetectorOracleConfidence)
	frJRS := FailureRate(r.Trials, iv, DetectorJRS)
	frNone := FailureRate(r.Trials, iv, DetectorNone)
	t.Logf("uncovered failure rates: perfect=%.3f oracle=%.3f jrs=%.3f none=%.3f",
		frPerfect, frOracle, frJRS, frNone)
	// Stronger detectors leave (weakly) fewer uncovered failures.
	if frJRS > frNone+1e-9 {
		t.Error("JRS left more failures than no detector")
	}
	if frOracle > frJRS+1e-9 {
		t.Error("oracle confidence weaker than JRS")
	}
}

func TestVMUnknownBenchmark(t *testing.T) {
	if _, err := RunVM(VMConfig{Bench: "doom"}); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := RunUArch(UArchConfig{Bench: "doom"}); err == nil {
		t.Error("unknown benchmark accepted")
	}
}
