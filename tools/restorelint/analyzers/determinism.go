package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/tools/restorelint/lint"
)

// Determinism flags constructs that make repeated simulator runs diverge:
// wall-clock reads, the process-global math/rand generator, and map
// iteration whose order leaks into ordered output or floating-point
// accumulation. The fault-injection methodology (golden-run comparison,
// state-hash equality, byte-identical reports) is only sound when the whole
// simulator is a pure function of its seeds.
var Determinism = &lint.Analyzer{
	Name: "determinism",
	Doc:  "flags time.Now, the global math/rand RNG, RNGs shared with goroutines, order-sensitive map iteration, and telemetry read-back",
	Run:  runDeterminism,
}

func runDeterminism(pass *lint.Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkNondeterministicCall(pass, n)
				checkObsRead(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			case *ast.GoStmt:
				checkGoroutineRNGCapture(pass, n)
			}
			return true
		})
	}
}

func checkNondeterministicCall(pass *lint.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	switch pkgPathOf(pass.Pkg.Info, sel.X) {
	case "time":
		if sel.Sel.Name == "Now" || sel.Sel.Name == "Since" {
			pass.Reportf(call.Pos(),
				"time.%s makes simulation state depend on the wall clock; derive timing from cycle counts",
				sel.Sel.Name)
		}
	case "math/rand", "math/rand/v2":
		if !strings.HasPrefix(sel.Sel.Name, "New") {
			pass.Reportf(call.Pos(),
				"rand.%s uses the process-global generator, which is not reproducible across runs; use rand.New(rand.NewSource(seed))",
				sel.Sel.Name)
		}
	}
}

// checkGoroutineRNGCapture flags a goroutine closure that captures a
// *rand.Rand declared outside it. Even a seeded generator stops being
// reproducible the moment two goroutines share it: the interleaving of
// draws is scheduler-dependent (and rand.Rand is not safe for concurrent
// use at all). The campaign engine's rule is to pre-draw every random
// decision on the dispatching goroutine and hand workers plain values.
func checkGoroutineRNGCapture(pass *lint.Pass, gs *ast.GoStmt) {
	lit, ok := gs.Call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	info := pass.Pkg.Info
	seen := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := info.Uses[id].(*types.Var)
		if !ok || seen[obj] || !isSeededRNG(obj.Type()) {
			return true
		}
		if insideNode(obj.Pos(), lit) {
			return true // declared inside the closure: goroutine-local
		}
		seen[obj] = true
		pass.Reportf(id.Pos(),
			"goroutine closure captures the *rand.Rand %q, making the draw interleaving scheduler-dependent; pre-draw random values on the dispatching goroutine",
			id.Name)
		return true
	})
}

// obsReadMethods are the internal/obs accessors that read telemetry back
// out: registry snapshots, metric values, and trace contents. Write methods
// (Inc, Add, Set, Observe, Start, Stop, Emit) and handle claims (Counter,
// Gauge, Hist, Timer) are not listed — they are the instrumentation itself.
var obsReadMethods = map[string]bool{
	"Value": true, "Count": true, "Sum": true, "Total": true,
	"Buckets": true, "Snapshot": true, "Get": true, "Diff": true,
	"Events": true, "Dropped": true, "Render": true,
}

// checkObsRead flags simulator code that reads internal/obs telemetry. The
// observability layer is write-only from inside the simulator: the moment a
// metric value feeds a decision, metrics-on and metrics-off runs can
// diverge, breaking the inertness contract (campaign results must be
// byte-identical either way). Reading belongs in cmd/, examples/, and tests.
func checkObsRead(pass *lint.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !obsReadMethods[sel.Sel.Name] {
		return
	}
	selection, ok := pass.Pkg.Info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return
	}
	recv := obsTypeName(selection.Recv())
	if recv == "" {
		return
	}
	pass.Reportf(call.Pos(),
		"obs.%s.%s reads telemetry inside simulator code, so instrumentation could feed back into results; the obs layer is write-only here (metrics-on runs must be byte-identical to metrics-off)",
		recv, sel.Sel.Name)
}

// obsTypeName returns the named type behind t (derefing one pointer) if it
// lives in repro/internal/obs, and "" otherwise.
func obsTypeName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "repro/internal/obs" {
		return ""
	}
	return obj.Name()
}

// isSeededRNG reports whether t is *math/rand.Rand or *math/rand/v2.Rand.
func isSeededRNG(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "Rand" || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == "math/rand" || path == "math/rand/v2"
}

// checkMapRange inspects one range-over-map loop for order-sensitive sinks.
func checkMapRange(pass *lint.Pass, rs *ast.RangeStmt) {
	info := pass.Pkg.Info
	tv, ok := info.Types[rs.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	fn := pass.Pkg.EnclosingFunc(rs.Pos())

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, fn, rs, n)
		case *ast.CallExpr:
			if sinkName, ok := orderedOutputCall(info, n); ok {
				pass.Reportf(n.Pos(),
					"%s inside map iteration emits output in nondeterministic map order; sort the keys first",
					sinkName)
			}
		}
		return true
	})
}

func checkMapRangeAssign(pass *lint.Pass, fn *ast.FuncDecl, rs *ast.RangeStmt, as *ast.AssignStmt) {
	info := pass.Pkg.Info
	if len(as.Lhs) != 1 {
		return
	}
	lhs, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return
	}
	obj := info.ObjectOf(lhs)
	if obj == nil || insideNode(obj.Pos(), rs) {
		return // loop-local accumulation is invisible outside
	}

	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		if b, ok := obj.Type().Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
			pass.Reportf(as.Pos(),
				"floating-point accumulation into %s over map iteration is order-dependent (addition is not associative); iterate sorted keys",
				lhs.Name)
		}
	case token.ASSIGN:
		if call, ok := as.Rhs[0].(*ast.CallExpr); ok && isBuiltinAppend(info, call) {
			if !sortedAfter(info, fn, rs, obj) {
				pass.Reportf(as.Pos(),
					"append to %s inside map iteration produces nondeterministic element order; sort the keys first (or sort %s afterwards)",
					lhs.Name, lhs.Name)
			}
		}
	}
}

func insideNode(pos token.Pos, n ast.Node) bool {
	return n.Pos() <= pos && pos <= n.End()
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// orderedOutputCall recognises calls that emit ordered bytes: fmt printers
// and Write*-family methods (strings.Builder, bytes.Buffer, io.Writer).
func orderedOutputCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if pkgPathOf(info, sel.X) == "fmt" {
		if strings.HasPrefix(sel.Sel.Name, "Print") || strings.HasPrefix(sel.Sel.Name, "Fprint") {
			return "fmt." + sel.Sel.Name, true
		}
		return "", false
	}
	switch sel.Sel.Name {
	case "Write", "WriteString", "WriteByte", "WriteRune":
		// Only count receivers that are actually writers, not e.g. a map
		// store helper: a method value on a non-package receiver.
		if pkgPathOf(info, sel.X) == "" {
			return sel.Sel.Name, true
		}
	}
	return "", false
}

// sortedAfter reports whether obj is passed to a sort.* / slices.Sort* call
// after the range loop in the same function — the "collect then sort"
// idiom, which restores determinism.
func sortedAfter(info *types.Info, fn *ast.FuncDecl, rs *ast.RangeStmt, obj types.Object) bool {
	if fn == nil || fn.Body == nil {
		return false
	}
	sorted := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg := pkgPathOf(info, sel.X)
		if pkg != "sort" && pkg != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && info.ObjectOf(id) == obj {
				sorted = true
			}
		}
		return true
	})
	return sorted
}
