package predictor

import (
	"math/rand"
	"testing"
)

func TestBimodalLearnsBias(t *testing.T) {
	b := NewBimodal(10)
	pc := uint64(0x1000)
	for i := 0; i < 10; i++ {
		b.Update(pc, true)
	}
	if !b.Predict(pc) {
		t.Error("bimodal failed to learn always-taken")
	}
	for i := 0; i < 10; i++ {
		b.Update(pc, false)
	}
	if b.Predict(pc) {
		t.Error("bimodal failed to learn always-not-taken")
	}
}

func TestBimodalHysteresis(t *testing.T) {
	b := NewBimodal(10)
	pc := uint64(0x2000)
	for i := 0; i < 10; i++ {
		b.Update(pc, true)
	}
	// A single not-taken must not flip a saturated counter.
	b.Update(pc, false)
	if !b.Predict(pc) {
		t.Error("single contrary outcome flipped saturated counter")
	}
}

func TestGshareLearnsPattern(t *testing.T) {
	g := NewGshare(12, 8)
	pc := uint64(0x3000)
	// Alternating pattern T,N,T,N is history-predictable.
	taken := true
	// Train.
	for i := 0; i < 200; i++ {
		g.Update(pc, taken)
		taken = !taken
	}
	// Measure.
	correct := 0
	for i := 0; i < 100; i++ {
		if g.Predict(pc) == taken {
			correct++
		}
		g.Update(pc, taken)
		taken = !taken
	}
	if correct < 95 {
		t.Errorf("gshare predicted alternating pattern at %d%%, want >=95%%", correct)
	}
}

func TestCombinedBeatsComponentsOnMix(t *testing.T) {
	// A workload with one strongly-biased branch and one alternating
	// branch: the combiner should track both well.
	c := NewCombined(12, 8)
	pcBias, pcAlt := uint64(0x4000), uint64(0x5004)
	alt := true
	correct, total := 0, 0
	for i := 0; i < 2000; i++ {
		if c.Predict(pcBias) == true {
			correct++
		}
		total++
		c.Update(pcBias, true)

		if c.Predict(pcAlt) == alt {
			correct++
		}
		total++
		c.Update(pcAlt, alt)
		alt = !alt
	}
	acc := float64(correct) / float64(total)
	if acc < 0.95 {
		t.Errorf("combined accuracy %.3f, want >= 0.95", acc)
	}
}

func TestCombinedAccuracyOnBiasedRandom(t *testing.T) {
	// 95 % biased random branches across many PCs: expect accuracy near
	// the bias, matching the paper's ">95 % of branch instances".
	c := NewCombined(12, 10)
	rng := rand.New(rand.NewSource(5))
	correct, total := 0, 0
	for i := 0; i < 50000; i++ {
		pc := uint64(0x1000 + (rng.Intn(64) * 4))
		taken := rng.Float64() < 0.95
		if c.Predict(pc) == taken {
			correct++
		}
		total++
		c.Update(pc, taken)
	}
	acc := float64(correct) / float64(total)
	if acc < 0.90 {
		t.Errorf("combined accuracy %.3f on 95%%-biased stream, want >= 0.90", acc)
	}
}

func TestBTBHitAfterUpdate(t *testing.T) {
	b := NewBTB(6, 2)
	if _, hit := b.Lookup(0x1000); hit {
		t.Error("cold BTB hit")
	}
	b.Update(0x1000, 0x2000)
	target, hit := b.Lookup(0x1000)
	if !hit || target != 0x2000 {
		t.Errorf("lookup = %#x,%v", target, hit)
	}
	// Retarget.
	b.Update(0x1000, 0x3000)
	if target, _ := b.Lookup(0x1000); target != 0x3000 {
		t.Errorf("retarget failed: %#x", target)
	}
}

func TestBTBEviction(t *testing.T) {
	b := NewBTB(2, 2) // 4 sets, 2 ways
	// Three PCs mapping to the same set (stride = sets*4 = 16).
	pcs := []uint64{0x1000, 0x1010, 0x1020}
	b.Update(pcs[0], 1)
	b.Update(pcs[1], 2)
	// Touch pcs[0] so pcs[1] is LRU.
	if _, hit := b.Lookup(pcs[0]); !hit {
		t.Fatal("miss on resident entry")
	}
	b.Update(pcs[2], 3)
	if _, hit := b.Lookup(pcs[1]); hit {
		t.Error("LRU entry not evicted")
	}
	if _, hit := b.Lookup(pcs[0]); !hit {
		t.Error("MRU entry evicted")
	}
}

func TestRASLIFO(t *testing.T) {
	r := NewRAS(8)
	if _, ok := r.Pop(); ok {
		t.Error("pop of empty RAS succeeded")
	}
	r.Push(1)
	r.Push(2)
	r.Push(3)
	if r.Depth() != 3 {
		t.Errorf("depth = %d", r.Depth())
	}
	for want := uint64(3); want >= 1; want-- {
		got, ok := r.Pop()
		if !ok || got != want {
			t.Errorf("pop = %d,%v want %d", got, ok, want)
		}
	}
}

func TestRASWrapAround(t *testing.T) {
	r := NewRAS(4)
	for i := uint64(1); i <= 6; i++ {
		r.Push(i)
	}
	// The newest 4 survive: 6,5,4,3.
	for want := uint64(6); want >= 3; want-- {
		got, ok := r.Pop()
		if !ok || got != want {
			t.Errorf("pop = %d,%v want %d", got, ok, want)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Error("RAS deeper than capacity")
	}
}

func TestJRSConfidenceLifecycle(t *testing.T) {
	j := NewJRS(JRSConfig{TableBits: 8, CounterMax: 15, Threshold: 15}, nil)
	pc := uint64(0x1000)
	if j.Confident(pc) {
		t.Error("cold JRS reports high confidence")
	}
	for i := 0; i < 14; i++ {
		j.Update(pc, true)
	}
	if j.Confident(pc) {
		t.Error("high confidence before saturation")
	}
	j.Update(pc, true)
	if !j.Confident(pc) {
		t.Error("not confident after saturation")
	}
	// A single misprediction resets.
	j.Update(pc, false)
	if j.Confident(pc) {
		t.Error("confidence survived a misprediction")
	}
}

func TestJRSDefaults(t *testing.T) {
	j := NewJRS(JRSConfig{}, nil)
	pc := uint64(0x42000)
	for i := 0; i < 15; i++ {
		j.Update(pc, true)
	}
	if !j.Confident(pc) {
		t.Error("defaults: expected saturation at 15 correct predictions")
	}
}

func TestJRSWithHistorySharing(t *testing.T) {
	g := NewGshare(10, 6)
	j := NewJRS(JRSConfig{TableBits: 10}, g)
	pc := uint64(0x9000)
	// Just exercise the indexing path with evolving history.
	for i := 0; i < 100; i++ {
		j.Update(pc, true)
		g.Update(pc, i%2 == 0)
	}
	// With shifting history the counters spread over several entries;
	// confidence may or may not be set, but nothing should panic and
	// updates must be accepted.
	_ = j.Confident(pc)
}

func TestJRSSelectivity(t *testing.T) {
	// On a branch that mispredicts 10% of the time, the fraction of
	// predictions labelled high-confidence must be well below that of an
	// always-correct branch: that selectivity is what makes JRS
	// conservative (the paper's stated reason coverage drops in Fig 5).
	j := NewJRS(JRSConfig{TableBits: 8, CounterMax: 15, Threshold: 15}, nil)
	rng := rand.New(rand.NewSource(9))
	pcNoisy, pcClean := uint64(0x1000), uint64(0x2004) // distinct table entries
	noisyHigh, cleanHigh := 0, 0
	const n = 10000
	for i := 0; i < n; i++ {
		if j.Confident(pcNoisy) {
			noisyHigh++
		}
		j.Update(pcNoisy, rng.Float64() < 0.9)
		if j.Confident(pcClean) {
			cleanHigh++
		}
		j.Update(pcClean, true)
	}
	if cleanHigh < n*9/10 {
		t.Errorf("clean branch high-confidence rate %d/%d too low", cleanHigh, n)
	}
	if noisyHigh > n/2 {
		t.Errorf("noisy branch high-confidence rate %d/%d too high", noisyHigh, n)
	}
}

func TestOracleEstimators(t *testing.T) {
	var p Perfect
	var never Never
	if !p.Confident(0x1234) {
		t.Error("Perfect must always be confident")
	}
	if never.Confident(0x1234) {
		t.Error("Never must never be confident")
	}
	p.Update(0, false)
	never.Update(0, true)
}

func TestPredictHUpdateHConsistency(t *testing.T) {
	// External-history prediction must train the same table entries it
	// predicts with: a pattern presented under a fixed history register
	// becomes perfectly predictable.
	g := NewGshare(10, 8)
	pc := uint64(0x7000)
	hist := uint64(0xA5)
	for i := 0; i < 10; i++ {
		g.UpdateH(pc, true, hist)
	}
	if !g.PredictH(pc, hist) {
		t.Error("gshare PredictH did not learn under fixed history")
	}
	if g.PredictH(pc, hist^0xFF) == g.PredictH(pc, hist) && g.History() != 0 {
		t.Log("different histories may alias; History should be untouched")
	}
	if g.History() != 0 {
		t.Error("UpdateH must not move the internal history register")
	}

	c := NewCombined(10, 8)
	for i := 0; i < 30; i++ {
		c.UpdateH(pc, i%2 == 0, uint64(i%2))
	}
	// Pattern keyed entirely by history bit: both phases predictable.
	if !c.PredictH(pc, 0) {
		t.Error("combined PredictH(hist=0) wrong")
	}
	if c.History() != 0 {
		t.Error("combined UpdateH must not move internal history")
	}
}

func TestClones(t *testing.T) {
	b := NewBimodal(8)
	b.Update(0x100, true)
	b.Update(0x100, true)
	bc := b.Clone()
	bc.Update(0x100, false)
	bc.Update(0x100, false)
	bc.Update(0x100, false)
	if !b.Predict(0x100) || bc.Predict(0x100) {
		t.Error("bimodal clone not independent")
	}

	g := NewGshare(8, 4)
	gc := g.Clone()
	for i := 0; i < 8; i++ {
		gc.Update(0x200, true)
	}
	if g.History() == gc.History() {
		t.Error("gshare clone shares history")
	}

	c := NewCombined(8, 4)
	for i := 0; i < 8; i++ {
		c.Update(0x300, true)
	}
	cc := c.Clone()
	if cc.Predict(0x300) != c.Predict(0x300) {
		t.Error("combined clone lost state")
	}

	btb := NewBTB(4, 2)
	btb.Update(0x400, 0x500)
	btbc := btb.Clone()
	btbc.Update(0x400, 0x600)
	if tgt, _ := btb.Lookup(0x400); tgt != 0x500 {
		t.Error("btb clone not independent")
	}

	r := NewRAS(4)
	r.Push(1)
	rc := r.Clone()
	rc.Push(2)
	if r.Depth() != 1 || rc.Depth() != 2 {
		t.Error("ras clone not independent")
	}

	j := NewJRS(JRSConfig{TableBits: 6}, nil)
	for i := 0; i < 15; i++ {
		j.Update(0x700, true)
	}
	jcAny := j.Clone()
	jc, ok := jcAny.(*JRS)
	if !ok {
		t.Fatal("JRS clone has wrong type")
	}
	jc.SetHistorySource(NewGshare(4, 2))
	jc.Update(0x700, false)
	if !j.Confident(0x700) {
		t.Error("jrs clone not independent")
	}
	if _, ok := (Perfect{}).Clone().(Perfect); !ok {
		t.Error("perfect clone wrong type")
	}
	if _, ok := (Never{}).Clone().(Never); !ok {
		t.Error("never clone wrong type")
	}
}
