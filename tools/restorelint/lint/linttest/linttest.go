// Package linttest is a miniature analysistest: it loads a fixture package,
// runs one analyzer over it, and matches the diagnostics against
// `// want "regexp"` comments in the fixture sources. Fixtures must
// type-check; they may import packages of the enclosing module.
package linttest

import (
	"regexp"
	"strings"
	"testing"

	"repro/tools/restorelint/lint"
)

// expectation is one `// want "rx"` on one fixture line.
type expectation struct {
	file    string
	line    int
	rx      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)`)

// Run loads the package in dir, applies the analyzer, and requires the
// diagnostics to match the fixture's want comments exactly: every diagnostic
// must be expected, and every expectation must fire. A fixture with no want
// comments therefore asserts the analyzer stays silent ("good" fixtures).
func Run(t *testing.T, a *lint.Analyzer, dir string) {
	t.Helper()
	loader, err := lint.NewLoader(dir)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := loader.Load(dir)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}

	expects := collectWants(t, pkg)
	diags := lint.RunAnalyzers(pkg, a)

	for _, d := range diags {
		if !consume(expects, d.Pos.Filename, d.Pos.Line, d.Message) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.rx)
		}
	}
}

func consume(expects []*expectation, file string, line int, msg string) bool {
	for _, e := range expects {
		if e.matched || e.file != file || e.line != line {
			continue
		}
		if e.rx.MatchString(msg) {
			e.matched = true
			return true
		}
	}
	return false
}

func collectWants(t *testing.T, pkg *lint.Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, pat := range splitQuoted(m[1]) {
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, rx: rx})
				}
			}
		}
	}
	return out
}

// splitQuoted extracts the double-quoted segments of a want payload:
// `"a" "b"` -> a, b.
func splitQuoted(s string) []string {
	var out []string
	for {
		i := strings.IndexByte(s, '"')
		if i < 0 {
			return out
		}
		s = s[i+1:]
		j := strings.IndexByte(s, '"')
		if j < 0 {
			return out
		}
		out = append(out, s[:j])
		s = s[j+1:]
	}
}
