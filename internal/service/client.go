package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Client talks to a running daemon over the HTTP API. The CLI's submit /
// status / cancel / jobs subcommands are thin wrappers over it; tests drive
// it directly.
type Client struct {
	// Base is the daemon address, host:port or a full http:// URL.
	Base string
	// HTTPClient overrides http.DefaultClient when set.
	HTTPClient *http.Client
}

// NewClientFromRoot discovers the daemon serving a service root via its
// address file.
func NewClientFromRoot(root string) (*Client, error) {
	addr, err := ReadAddr(root)
	if err != nil {
		return nil, err
	}
	return &Client{Base: addr}, nil
}

func (c *Client) url(path string) string {
	base := c.Base
	if len(base) < 7 || base[:7] != "http://" {
		base = "http://" + base
	}
	return base + path
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// do issues one API request and decodes the JSON response (or the error
// envelope) into out.
func (c *Client) do(method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.url(path), rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 400 {
		var envelope struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &envelope) == nil && envelope.Error != "" {
			return fmt.Errorf("daemon: %s", envelope.Error)
		}
		return fmt.Errorf("daemon: %s %s: %s", method, path, resp.Status)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// Submit enqueues a job and returns its initial record.
func (c *Client) Submit(spec JobSpec) (*Job, error) {
	var j Job
	if err := c.do("POST", "/api/v1/jobs", spec, &j); err != nil {
		return nil, err
	}
	return &j, nil
}

// Job fetches one job's current state.
func (c *Client) Job(id string) (*Job, error) {
	var j Job
	if err := c.do("GET", "/api/v1/jobs/"+id, nil, &j); err != nil {
		return nil, err
	}
	return &j, nil
}

// Jobs lists every job the daemon knows, in ID order.
func (c *Client) Jobs() ([]*Job, error) {
	var resp struct {
		Jobs []*Job `json:"jobs"`
	}
	if err := c.do("GET", "/api/v1/jobs", nil, &resp); err != nil {
		return nil, err
	}
	return resp.Jobs, nil
}

// Cancel asks the daemon to stop a job.
func (c *Client) Cancel(id string) (*Job, error) {
	var j Job
	if err := c.do("POST", "/api/v1/jobs/"+id+"/cancel", nil, &j); err != nil {
		return nil, err
	}
	return &j, nil
}

// Healthy reports whether the daemon answers its liveness probe.
func (c *Client) Healthy() bool {
	return c.do("GET", "/api/v1/healthz", nil, nil) == nil
}

// Wait polls until the job reaches a terminal state (done/failed/cancelled)
// and returns its final record. onUpdate, if non-nil, sees each snapshot
// whose state or trial count changed.
func (c *Client) Wait(id string, poll time.Duration, onUpdate func(*Job)) (*Job, error) {
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}
	var lastState JobState
	var lastTrials int64
	for {
		j, err := c.Job(id)
		if err != nil {
			return nil, err
		}
		if onUpdate != nil && (j.State != lastState || j.TrialsDone != lastTrials) {
			onUpdate(j)
			lastState, lastTrials = j.State, j.TrialsDone
		}
		if j.State.Terminal() {
			return j, nil
		}
		time.Sleep(poll)
	}
}
