// Package pipeline implements the detailed processor model of the paper's
// Section 4.1: a superscalar, dynamically scheduled, 12-stage pipeline in
// the class of the Alpha 21264 / AMD Athlon, with up to 132 instructions in
// flight, a 32-entry scheduler, a 64-entry reorder buffer, register renaming
// through speculative and architectural register alias tables, a store
// queue, sophisticated branch prediction with JRS confidence estimation, and
// a watchdog timer.
//
// It replaces the authors' latch-level Verilog model. What makes it usable
// for the paper's statistical fault-injection campaigns is its explicit
// state-element model: every latch and SRAM bit of the machine is registered
// in a StateSpace that the injector can enumerate, sample uniformly, and
// flip (Section 4.2's fault model), and that golden-run comparison can hash.
package pipeline

// Kind distinguishes pipeline latches from SRAM arrays. The distinction
// drives the Section 5.1.2 latch-only campaign and the Section 5.2.2
// "low-hanging fruit" hardening, which protects SRAMs with ECC and control
// latches with parity.
type Kind uint8

// State element kinds.
const (
	// KindLatch is a pipeline latch or register: state that is rewritten
	// nearly every cycle as instructions flow past.
	KindLatch Kind = iota + 1
	// KindSRAM is an SRAM array cell: register file, alias tables, and
	// similar structures with decoded read/write ports.
	KindSRAM
)

// Class distinguishes control state from data values, which determines the
// protection scheme the hardened pipeline applies (parity on control words,
// ECC on data stores).
type Class uint8

// State element classes.
const (
	// ClassControl covers decoded instruction words, flags, pointers and
	// other bookkeeping.
	ClassControl Class = iota + 1
	// ClassData covers 64-bit data values: register contents, store
	// data, addresses in flight.
	ClassData
)

// Element is one injectable state word. Bits declares how many low-order
// bits of the word are real hardware state; flips and hashes are confined to
// that width.
type Element struct {
	Name  string
	Kind  Kind
	Class Class
	Bits  uint8

	word *uint64
}

// Mask returns the valid-bit mask for the element.
func (e *Element) Mask() uint64 {
	if e.Bits >= 64 {
		return ^uint64(0)
	}
	return (1 << e.Bits) - 1
}

// StateSpace is the registry of all injectable state in one pipeline
// instance.
type StateSpace struct {
	elems []Element

	totalBits      uint64
	latchBits      uint64
	cumulativeBits []uint64 // prefix sums over elems, for uniform sampling
	dirty          bool
}

// Register adds a state word. Words must stay valid for the lifetime of the
// space (they are fields of pipeline structures).
func (s *StateSpace) Register(name string, kind Kind, class Class, word *uint64, bits int) {
	if bits <= 0 || bits > 64 {
		panic("pipeline: element width out of range")
	}
	s.elems = append(s.elems, Element{
		Name:  name,
		Kind:  kind,
		Class: class,
		Bits:  uint8(bits),
		word:  word,
	})
	s.dirty = true
}

func (s *StateSpace) reindex() {
	if !s.dirty {
		return
	}
	s.totalBits, s.latchBits = 0, 0
	s.cumulativeBits = make([]uint64, len(s.elems)+1)
	for i := range s.elems {
		s.cumulativeBits[i] = s.totalBits
		s.totalBits += uint64(s.elems[i].Bits)
		if s.elems[i].Kind == KindLatch {
			s.latchBits += uint64(s.elems[i].Bits)
		}
	}
	s.cumulativeBits[len(s.elems)] = s.totalBits
	s.dirty = false
}

// Elements returns the registered elements (shared slice; do not mutate).
func (s *StateSpace) Elements() []Element { return s.elems }

// TotalBits returns the number of injectable bits, optionally restricted to
// latches.
func (s *StateSpace) TotalBits(latchesOnly bool) uint64 {
	s.reindex()
	if latchesOnly {
		return s.latchBits
	}
	return s.totalBits
}

// BitRef identifies a single bit of a single element.
type BitRef struct {
	Elem int
	Bit  uint8
}

// NthBit maps a flat bit index in [0, TotalBits(false)) to a BitRef,
// enabling uniform sampling across all state.
func (s *StateSpace) NthBit(n uint64) (BitRef, bool) {
	s.reindex()
	if n >= s.totalBits {
		return BitRef{}, false
	}
	// Binary search the prefix sums.
	lo, hi := 0, len(s.elems)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.cumulativeBits[mid+1] <= n {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return BitRef{Elem: lo, Bit: uint8(n - s.cumulativeBits[lo])}, true
}

// Flip inverts the referenced bit in place, returning the element affected.
func (s *StateSpace) Flip(ref BitRef) *Element {
	e := &s.elems[ref.Elem]
	*e.word ^= 1 << (ref.Bit % 64)
	return e
}

// Peek reports the current value of the referenced bit.
func (s *StateSpace) Peek(ref BitRef) bool {
	e := &s.elems[ref.Elem]
	return *e.word&(1<<(ref.Bit%64)) != 0
}

// Hash digests all registered state (masked to declared widths) with an
// FNV-style accumulator. Equal hashes on the same pipeline configuration
// mean — with overwhelming probability — equal microarchitectural state,
// which is how trials detect that an injected fault has been fully masked.
func (s *StateSpace) Hash() uint64 {
	h := uint64(0x9E3779B97F4A7C15)
	for i := range s.elems {
		e := &s.elems[i]
		h = mix64(h ^ (*e.word & e.Mask()))
	}
	return h
}

// mix64 is the splitmix64 finaliser: full avalanche per state word so that
// structured, mostly-zero pipeline state still hashes collision-resistantly.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Snapshot copies all state words out; Restore writes them back. Used by
// golden-trace caching to rewind a pipeline to an injection point without
// re-running from the start.
func (s *StateSpace) Snapshot() []uint64 {
	out := make([]uint64, len(s.elems))
	for i := range s.elems {
		out[i] = *s.elems[i].word
	}
	return out
}

// Restore writes a snapshot produced by Snapshot back into the live words.
func (s *StateSpace) Restore(snap []uint64) {
	if len(snap) != len(s.elems) {
		panic("pipeline: snapshot size mismatch")
	}
	for i := range s.elems {
		*s.elems[i].word = snap[i]
	}
}
