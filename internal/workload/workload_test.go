package workload

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/isa"
	"repro/internal/mem"
)

func TestBuilderBranchResolution(t *testing.T) {
	b := NewBuilder("t")
	b.LoadImm(1, 3)
	b.Label("loop")
	b.OpLit(isa.OpSUBQ, 1, 1, 1)
	b.Branch(isa.OpBGT, 1, "loop")
	b.Emit(isa.Inst{Op: isa.OpHALT})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.NewMemory()
	if err != nil {
		t.Fatal(err)
	}
	s := arch.New(m, p.Entry)
	if _, last, err := s.Run(100); err != nil || !last.Halted {
		t.Fatalf("loop program did not halt cleanly: %v %+v", err, last)
	}
	if s.Reg(1) != 0 {
		t.Errorf("r1 = %d, want 0", s.Reg(1))
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder("t")
	b.Branch(isa.OpBR, isa.RegZero, "nowhere")
	if _, err := b.Build(); err == nil {
		t.Fatal("expected undefined-label error")
	}
}

func TestBuilderDuplicateLabel(t *testing.T) {
	b := NewBuilder("t")
	b.Label("x")
	b.Label("x")
	if _, err := b.Build(); err == nil {
		t.Fatal("expected duplicate-label error")
	}
}

func TestBuilderDataFixupOutsideSegment(t *testing.T) {
	b := NewBuilder("t")
	addr := b.AllocData("seg", make([]byte, 8), mem.PermRW)
	b.Label("l")
	b.Nop()
	b.PatchCodeAddr(addr, 4, "l") // 4+8 > 8
	if _, err := b.Build(); err == nil {
		t.Fatal("expected out-of-segment fixup error")
	}
}

func TestBuilderPatchUnknownSegment(t *testing.T) {
	b := NewBuilder("t")
	b.PatchCodeAddr(0xDEAD, 0, "l")
	if _, err := b.Build(); err == nil {
		t.Fatal("expected unknown-segment error")
	}
}

func TestLoadImmValues(t *testing.T) {
	values := []uint64{0, 1, 255, 256, 0x1234, 0xDEADBEEF, 0x7FFF0000,
		0x0000_1000_0000, ^uint64(0), 0x8000_0000_0000_0000}
	for _, v := range values {
		b := NewBuilder("t")
		b.LoadImm(5, v)
		b.Emit(isa.Inst{Op: isa.OpHALT})
		p, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		m, err := p.NewMemory()
		if err != nil {
			t.Fatal(err)
		}
		s := arch.New(m, p.Entry)
		if _, last, err := s.Run(100); err != nil || !last.Halted {
			t.Fatalf("LoadImm(%#x) program failed: %v", v, err)
		}
		if got := s.Reg(5); got != v {
			t.Errorf("LoadImm(%#x) produced %#x", v, got)
		}
	}
}

func TestGenerateAllBenchmarksRunClean(t *testing.T) {
	// Every benchmark must run a long window with no exceptions and no
	// halt: symptom-free golden execution is the baseline every
	// fault-injection campaign compares against.
	for _, bench := range Benchmarks() {
		bench := bench
		t.Run(string(bench), func(t *testing.T) {
			p, err := Generate(bench, Config{Seed: 42, Scale: 0.25})
			if err != nil {
				t.Fatal(err)
			}
			m, err := p.NewMemory()
			if err != nil {
				t.Fatal(err)
			}
			s := arch.New(m, p.Entry)
			n, last, err := s.Run(200_000)
			if err != nil {
				t.Fatal(err)
			}
			if last.Exception != arch.ExcNone {
				t.Fatalf("golden run raised %v at pc=%#x after %d insts",
					last.Exception, last.PC, n)
			}
			if s.Halted {
				t.Fatal("program halted; must loop forever")
			}
			if n != 200_000 {
				t.Fatalf("ran only %d instructions", n)
			}
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate(MCF, Config{Seed: 7, Scale: 0.25})
	b := MustGenerate(MCF, Config{Seed: 7, Scale: 0.25})
	if len(a.Code) != len(b.Code) {
		t.Fatal("code sizes differ")
	}
	for i := range a.Code {
		if a.Code[i] != b.Code[i] {
			t.Fatalf("code differs at %d", i)
		}
	}
	if len(a.Segments) != len(b.Segments) {
		t.Fatal("segment counts differ")
	}
	for i := range a.Segments {
		as, bs := a.Segments[i], b.Segments[i]
		if as.Base != bs.Base || len(as.Data) != len(bs.Data) {
			t.Fatalf("segment %d geometry differs", i)
		}
		for j := range as.Data {
			if as.Data[j] != bs.Data[j] {
				t.Fatalf("segment %d data differs at %d", i, j)
			}
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a := MustGenerate(GCC, Config{Seed: 1, Scale: 0.25})
	b := MustGenerate(GCC, Config{Seed: 2, Scale: 0.25})
	same := len(a.Segments) == len(b.Segments)
	if same {
		diff := false
		for i := range a.Segments {
			for j := range a.Segments[i].Data {
				if j < len(b.Segments[i].Data) && a.Segments[i].Data[j] != b.Segments[i].Data[j] {
					diff = true
					break
				}
			}
		}
		if !diff {
			t.Error("different seeds produced identical data")
		}
	}
}

func TestGenerateUnknownBenchmark(t *testing.T) {
	if _, err := Generate(Benchmark("quake"), Config{}); err == nil {
		t.Fatal("expected error for unknown benchmark")
	}
}

func TestProgramStateEvolves(t *testing.T) {
	// The iteration counter and kernel state slots must change over time,
	// proving the program makes real progress rather than spinning.
	p := MustGenerate(Gzip, Config{Seed: 3, Scale: 0.25})
	m, err := p.NewMemory()
	if err != nil {
		t.Fatal(err)
	}
	s := arch.New(m, p.Entry)
	if _, _, err := s.Run(50_000); err != nil {
		t.Fatal(err)
	}
	iters, err := m.ReadQ(p.Segments[0].Base + slotState)
	if err != nil {
		t.Fatal(err)
	}
	if iters == 0 {
		t.Error("iteration counter never stored")
	}
}

func TestInstructionMix(t *testing.T) {
	// Sanity-check the dynamic instruction mix is SPECint-like: a
	// substantial branch fraction and load fraction, some stores. These
	// statistics are what the paper's coverage results ride on.
	for _, bench := range Benchmarks() {
		bench := bench
		t.Run(string(bench), func(t *testing.T) {
			p := MustGenerate(bench, Config{Seed: 11, Scale: 0.25})
			m, err := p.NewMemory()
			if err != nil {
				t.Fatal(err)
			}
			s := arch.New(m, p.Entry)
			var branches, loads, stores, total int
			for total = 0; total < 100_000; total++ {
				ev := s.Step()
				if ev.Exception != arch.ExcNone {
					t.Fatalf("exception %v at %#x", ev.Exception, ev.PC)
				}
				switch {
				case ev.IsBranch:
					branches++
				case ev.IsLoad:
					loads++
				case ev.IsStore:
					stores++
				}
			}
			bf := float64(branches) / float64(total)
			lf := float64(loads) / float64(total)
			sf := float64(stores) / float64(total)
			if bf < 0.05 || bf > 0.35 {
				t.Errorf("branch fraction %.3f outside [0.05, 0.35]", bf)
			}
			if lf < 0.08 || lf > 0.45 {
				t.Errorf("load fraction %.3f outside [0.08, 0.45]", lf)
			}
			if sf < 0.01 || sf > 0.30 {
				t.Errorf("store fraction %.3f outside [0.01, 0.30]", sf)
			}
		})
	}
}

func TestGenerateManySeedsRunClean(t *testing.T) {
	// Robustness across generation randomness: several seeds and scales
	// per benchmark must all produce symptom-free golden runs.
	for _, bench := range Benchmarks() {
		for _, seed := range []int64{1, 99, 2026} {
			p, err := Generate(bench, Config{Seed: seed, Scale: 0.25})
			if err != nil {
				t.Fatalf("%s seed %d: %v", bench, seed, err)
			}
			m, err := p.NewMemory()
			if err != nil {
				t.Fatal(err)
			}
			s := arch.New(m, p.Entry)
			n, last, err := s.Run(30_000)
			if err != nil || last.Exception != arch.ExcNone || n != 30_000 {
				t.Fatalf("%s seed %d: n=%d exc=%v err=%v", bench, seed, n, last.Exception, err)
			}
		}
	}
}
