// Package stats provides the statistical-significance machinery of the
// paper's Section 4.4 (confidence intervals over sampled fault-injection
// trials) and shared helpers for turning campaign results into the
// stacked-category tables behind Figures 2 and 4-6.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// BinomialMargin returns the half-width of the normal-approximation
// confidence interval for an observed proportion p over n samples at the
// given z-score (1.96 for 95%, the paper's setting).
func BinomialMargin(p float64, n int, z float64) float64 {
	if n <= 0 {
		return 1
	}
	return z * math.Sqrt(p*(1-p)/float64(n))
}

// Margin95 is BinomialMargin at the 95% confidence level.
func Margin95(p float64, n int) float64 { return BinomialMargin(p, n, 1.96) }

// WorstCaseMargin95 is the margin at p = 0.5, the bound the paper quotes
// ("confidence interval of less than 0.9% at a 95% confidence level" for
// 12-13k trials).
func WorstCaseMargin95(n int) float64 { return Margin95(0.5, n) }

// Distribution is a set of named category fractions that sum to ~1.
type Distribution struct {
	Categories []string
	Fraction   map[string]float64
}

// NewDistribution builds a distribution over the given category order.
func NewDistribution(categories []string) Distribution {
	return Distribution{
		Categories: append([]string(nil), categories...),
		Fraction:   make(map[string]float64, len(categories)),
	}
}

// Get returns the fraction for a category (0 if absent).
func (d Distribution) Get(cat string) float64 { return d.Fraction[cat] }

// Total returns the sum of all fractions. Summation follows the declared
// category order so the result is bit-identical across runs; float addition
// over map order is not.
func (d Distribution) Total() float64 {
	sum := 0.0
	for _, cat := range d.Categories {
		sum += d.Fraction[cat]
	}
	return sum
}

// StackedTable renders a series of distributions (one per column) as the
// textual equivalent of the paper's stacked-bar figures: rows are
// categories, columns are the sweep parameter (latency bin or checkpoint
// interval).
type StackedTable struct {
	Title      string
	ColumnName string
	Columns    []string
	Rows       []string // category order, bottom of the stack first
	cells      map[string]map[string]float64
}

// NewStackedTable creates an empty table with the given category rows.
func NewStackedTable(title, columnName string, rows []string) *StackedTable {
	return &StackedTable{
		Title:      title,
		ColumnName: columnName,
		Rows:       append([]string(nil), rows...),
		cells:      make(map[string]map[string]float64),
	}
}

// AddColumn appends a column from a distribution. A label that is already
// present gets a "#2", "#3", ... suffix: the columns are keyed by label, so
// without the suffix the second Add would alias both columns to one cell
// map and Render/RenderCSV would show that distribution twice.
func (t *StackedTable) AddColumn(label string, d Distribution) {
	if _, taken := t.cells[label]; taken {
		base := label
		for n := 2; ; n++ {
			label = fmt.Sprintf("%s#%d", base, n)
			if _, taken := t.cells[label]; !taken {
				break
			}
		}
	}
	t.Columns = append(t.Columns, label)
	col := make(map[string]float64, len(t.Rows))
	for _, r := range t.Rows {
		col[r] = d.Get(r)
	}
	t.cells[label] = col
}

// Cell returns the fraction at (row, column).
func (t *StackedTable) Cell(row, col string) float64 {
	if c, ok := t.cells[col]; ok {
		return c[row]
	}
	return 0
}

// Render produces an aligned text table with percentages.
func (t *StackedTable) Render() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	width := 10
	for _, r := range t.Rows {
		if len(r)+2 > width {
			width = len(r) + 2
		}
	}
	fmt.Fprintf(&b, "%-*s", width, t.ColumnName)
	for _, c := range t.Columns {
		fmt.Fprintf(&b, "%9s", c)
	}
	b.WriteByte('\n')
	// Render top of the stack first for readability.
	for i := len(t.Rows) - 1; i >= 0; i-- {
		r := t.Rows[i]
		fmt.Fprintf(&b, "%-*s", width, r)
		for _, c := range t.Columns {
			fmt.Fprintf(&b, "%8.2f%%", 100*t.Cell(r, c))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderCSV produces a machine-readable CSV of the same data.
func (t *StackedTable) RenderCSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s", t.ColumnName)
	for _, r := range t.Rows {
		fmt.Fprintf(&b, ",%s", r)
	}
	b.WriteByte('\n')
	for _, c := range t.Columns {
		fmt.Fprintf(&b, "%s", c)
		for _, r := range t.Rows {
			fmt.Fprintf(&b, ",%.6f", t.Cell(r, c))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Series is a simple named sequence of (x, y) points used for line-style
// figures (Figure 7's speedups, Figure 8's FIT curves).
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// RenderSeriesTable renders multiple series sharing an x-axis as an aligned
// table. Series may have different x-sets; missing cells render blank.
func RenderSeriesTable(title, xName string, format string, series ...Series) string {
	xSet := make(map[float64]bool)
	for _, s := range series {
		for _, x := range s.X {
			xSet[x] = true
		}
	}
	xs := make([]float64, 0, len(xSet))
	for x := range xSet {
		xs = append(xs, x)
	}
	sort.Float64s(xs)

	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	fmt.Fprintf(&b, "%-12s", xName)
	for _, s := range series {
		fmt.Fprintf(&b, "%14s", s.Name)
	}
	b.WriteByte('\n')
	for _, x := range xs {
		fmt.Fprintf(&b, "%-12.6g", x)
		for _, s := range series {
			cell := ""
			for i := range s.X {
				if s.X[i] == x {
					cell = fmt.Sprintf(format, s.Y[i])
					break
				}
			}
			fmt.Fprintf(&b, "%14s", cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
