// Package fixture exercises every goroutineshare diagnostic: a goroutine
// capturing a package-level variable the package mutates, writes to
// captured locals declared outside the task loop (direct, map, append, and
// slice writes at a non-per-task index), and the same through a worker-pool
// handoff.
package fixture

var counter int

func bump() { counter++ }

func spawnPkgLevel() {
	go func() {
		_ = counter // want "captures package-level variable"
	}()
	bump()
}

func spawnSharedWrite() int {
	total := 0
	for i := 0; i < 4; i++ {
		go func() {
			total++ // want "writes captured variable"
		}()
	}
	return total
}

func spawnMapWrite(m map[int]int) {
	for i := 0; i < 4; i++ {
		go func() {
			m[i] = i // want "writes shared map"
		}()
	}
}

func spawnAppendShared() []int {
	var all []int
	for i := 0; i < 4; i++ {
		go func() {
			all = append(all, i) // want "appends to shared slice"
		}()
	}
	return all
}

func spawnBadIndex(out []int) {
	idx := 3
	for i := 0; i < 4; i++ {
		go func() {
			out[idx] = i // want "not a per-task value"
		}()
	}
}

type pool struct{}

func (pool) submit(f func()) {}

func spawnHandoff(p pool) int {
	n := 0
	p.submit(func() {
		n = 1 // want "writes captured variable"
	})
	return n
}
