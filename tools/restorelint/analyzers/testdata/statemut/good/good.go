// Package fixture holds state-mutation patterns statemut must accept.
package fixture

type StateSpace struct{}

func (s *StateSpace) Register(name string, kind, class int, word *uint64, bits int) {}

//restorelint:writers advance
type counter struct {
	ticks uint64
	label string // not a state word
}

func (c *counter) register(s *StateSpace) {
	s.Register("ticks", 0, 0, &c.ticks, 64)
}

// Methods of the owning struct write freely: the struct's own discipline.
func (c *counter) reset() { c.ticks = 0 }

type machine struct {
	c counter
}

// advance is a declared writer.
func advance(m *machine) {
	m.c.ticks++
}

// Unregistered fields carry no write restriction.
func relabel(m *machine, s string) {
	m.c.label = s
}

// Short variable declarations create fresh locals, never state writes.
func snapshot(m *machine) uint64 {
	t := m.c.ticks
	return t
}

// The escape hatch works for deliberate, justified exceptions.
func hardReset(m *machine) {
	m.c.ticks = 0 //restorelint:ignore statemut -- test harness back door, not simulator code
}
