package staticvuln

import (
	"encoding/binary"
	"fmt"

	"repro/internal/isa"
	"repro/internal/workload"
)

// block is one basic block: instructions [start, end) with the CFG edges the
// final instruction induces.
type block struct {
	start, end int
	succs      []int // successor block indices
	preds      []int
}

// cfg is the control-flow graph over a decoded program.
type cfg struct {
	prog  *workload.Program
	insts []isa.Inst

	blocks    []block
	instBlock []int // instruction index -> owning block
	entry     int   // entry block index

	// loopDepth[b] counts the natural loops containing block b; it drives
	// the purely static execution-weight estimate.
	loopDepth []int

	// indirectTargets are block indices recovered from code addresses
	// embedded in data segments (jump tables); they become the successor
	// set of indirect JMP/JSR instructions.
	indirectTargets []int
}

// buildCFG decodes the program and constructs its control-flow graph.
func buildCFG(p *workload.Program) (*cfg, error) {
	if len(p.Code) == 0 {
		return nil, fmt.Errorf("staticvuln: empty program")
	}
	g := &cfg{prog: p, insts: make([]isa.Inst, len(p.Code))}
	for i, w := range p.Code {
		g.insts[i] = isa.Decode(w)
	}

	entryIdx, ok := g.indexOf(p.Entry)
	if !ok {
		return nil, fmt.Errorf("staticvuln: entry %#x outside code", p.Entry)
	}

	tableTargets := g.recoverJumpTables()

	// Leaders: entry, branch targets, instructions after control transfers.
	leader := make([]bool, len(g.insts))
	leader[entryIdx] = true
	markTarget := func(idx int) {
		if idx >= 0 && idx < len(leader) {
			leader[idx] = true
		}
	}
	for i, inst := range g.insts {
		if !inst.IsBranch() && inst.Op != isa.OpHALT && inst.Op != isa.OpInvalid {
			continue
		}
		if i+1 < len(leader) {
			leader[i+1] = true
		}
		if inst.IsBranch() && !inst.IsIndirect() {
			if t, ok := g.branchTargetIndex(i); ok {
				markTarget(t)
			}
		}
	}
	for _, t := range tableTargets {
		markTarget(t)
	}

	// Carve blocks.
	g.instBlock = make([]int, len(g.insts))
	start := 0
	flush := func(end int) {
		if end <= start {
			return
		}
		b := len(g.blocks)
		g.blocks = append(g.blocks, block{start: start, end: end})
		for i := start; i < end; i++ {
			g.instBlock[i] = b
		}
		start = end
	}
	for i := 1; i < len(g.insts); i++ {
		if leader[i] {
			flush(i)
		}
	}
	flush(len(g.insts))

	for _, t := range tableTargets {
		g.indirectTargets = append(g.indirectTargets, g.instBlock[t])
	}
	g.entry = g.instBlock[entryIdx]

	// Edges.
	for bi := range g.blocks {
		b := &g.blocks[bi]
		last := g.insts[b.end-1]
		addSucc := func(instIdx int) {
			if instIdx < 0 || instIdx >= len(g.insts) {
				return
			}
			b.succs = append(b.succs, g.instBlock[instIdx])
		}
		switch {
		case last.Op == isa.OpHALT || last.Op == isa.OpInvalid:
			// No successors.
		case last.Op == isa.OpRET:
			// Return: the continuation belongs to the caller; modelled
			// by the caller's BSR/JSR fallthrough edge.
		case last.Op == isa.OpJMP || last.Op == isa.OpJSR:
			for _, t := range g.indirectTargets {
				b.succs = append(b.succs, t)
			}
			if last.Op == isa.OpJSR {
				addSucc(b.end) // call returns to the fallthrough
			}
		case last.Op == isa.OpBR:
			if t, ok := g.branchTargetIndex(b.end - 1); ok {
				addSucc(t)
			}
		case last.Op == isa.OpBSR:
			// Calls both enter the callee and (via its eventual RET)
			// continue at the fallthrough; modelling both edges here is
			// the standard summary-free interprocedural approximation.
			if t, ok := g.branchTargetIndex(b.end - 1); ok {
				addSucc(t)
			}
			addSucc(b.end)
		case last.IsCondBranch():
			if t, ok := g.branchTargetIndex(b.end - 1); ok {
				addSucc(t)
			}
			addSucc(b.end)
		default:
			addSucc(b.end)
		}
		b.succs = dedupInts(b.succs)
	}
	for bi := range g.blocks {
		for _, s := range g.blocks[bi].succs {
			g.blocks[s].preds = append(g.blocks[s].preds, bi)
		}
	}

	g.computeLoopDepth()
	return g, nil
}

// indexOf maps a code address to its instruction index.
func (g *cfg) indexOf(addr uint64) (int, bool) {
	base := g.prog.CodeBase
	limit := base + uint64(len(g.insts))*isa.InstBytes
	if addr < base || addr >= limit || (addr-base)%isa.InstBytes != 0 {
		return 0, false
	}
	return int((addr - base) / isa.InstBytes), true
}

// pc returns the address of instruction i.
func (g *cfg) pc(i int) uint64 {
	return g.prog.CodeBase + uint64(i)*isa.InstBytes
}

func (g *cfg) branchTargetIndex(i int) (int, bool) {
	return g.indexOf(isa.BranchTarget(g.pc(i), g.insts[i].Disp))
}

// recoverJumpTables scans the data segments for 8-byte-aligned words that
// hold valid code addresses: the linker patches jump tables into data
// (workload.Builder.PatchCodeAddr), so any such word is a potential indirect
// branch target. This is classic binary-analysis jump-table recovery and
// keeps dispatch-style code (the switchy kernel) connected in the CFG.
func (g *cfg) recoverJumpTables() []int {
	var out []int
	seen := make(map[int]bool)
	for _, seg := range g.prog.Segments {
		data := seg.Data
		for off := 0; off+8 <= len(data); off += 8 {
			v := binary.LittleEndian.Uint64(data[off:])
			if idx, ok := g.indexOf(v); ok && !seen[idx] {
				seen[idx] = true
				out = append(out, idx)
			}
		}
	}
	return out
}

// computeLoopDepth identifies natural loops (via iterative dominators and
// back edges) and counts, per block, how many loops contain it.
func (g *cfg) computeLoopDepth() {
	n := len(g.blocks)
	g.loopDepth = make([]int, n)
	if n == 0 {
		return
	}

	// Iterative dominator sets over bitsets.
	words := (n + 63) / 64
	full := make([]uint64, words)
	for i := 0; i < n; i++ {
		full[i/64] |= 1 << (i % 64)
	}
	dom := make([][]uint64, n)
	for i := range dom {
		dom[i] = make([]uint64, words)
		copy(dom[i], full)
	}
	entryOnly := make([]uint64, words)
	entryOnly[g.entry/64] |= 1 << (g.entry % 64)
	copy(dom[g.entry], entryOnly)

	order := g.reversePostorder()
	for changed := true; changed; {
		changed = false
		for _, b := range order {
			if b == g.entry {
				continue
			}
			tmp := make([]uint64, words)
			copy(tmp, full)
			any := false
			for _, p := range g.blocks[b].preds {
				any = true
				for w := range tmp {
					tmp[w] &= dom[p][w]
				}
			}
			if !any {
				copy(tmp, full)
			}
			tmp[b/64] |= 1 << (b % 64)
			for w := range tmp {
				if tmp[w] != dom[b][w] {
					changed = true
				}
			}
			copy(dom[b], tmp)
		}
	}
	dominates := func(a, b int) bool { return dom[b][a/64]&(1<<(a%64)) != 0 }

	// Back edges u->h with h dominating u; collect the natural loop body
	// (nodes reaching u without passing h) and bump depths.
	for u := 0; u < n; u++ {
		for _, h := range g.blocks[u].succs {
			if !dominates(h, u) {
				continue
			}
			inLoop := make([]bool, n)
			inLoop[h] = true
			stack := []int{u}
			for len(stack) > 0 {
				v := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if inLoop[v] {
					continue
				}
				inLoop[v] = true
				stack = append(stack, g.blocks[v].preds...)
			}
			for b := 0; b < n; b++ {
				if inLoop[b] {
					g.loopDepth[b]++
				}
			}
		}
	}
}

// reversePostorder returns blocks in reverse postorder from the entry;
// unreachable blocks are appended afterwards so every block is visited.
func (g *cfg) reversePostorder() []int {
	visited := make([]bool, len(g.blocks))
	var post []int
	var dfs func(int)
	dfs = func(b int) {
		if visited[b] {
			return
		}
		visited[b] = true
		for _, s := range g.blocks[b].succs {
			dfs(s)
		}
		post = append(post, b)
	}
	dfs(g.entry)
	for b := range g.blocks {
		dfs(b)
	}
	out := make([]int, 0, len(post))
	for i := len(post) - 1; i >= 0; i-- {
		out = append(out, post[i])
	}
	return out
}

func dedupInts(in []int) []int {
	seen := make(map[int]bool, len(in))
	out := in[:0]
	for _, v := range in {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}
