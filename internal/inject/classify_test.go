package inject

import (
	"math"
	"testing"
)

func TestVMCategoryPrecedence(t *testing.T) {
	// Paper: "a trial that fits in both the exception and cfv categories
	// is placed in the exception category".
	tr := VMTrial{ExcLat: 80, CFVLat: 40, MemAddrLat: 20, MemDataLat: 10}
	tests := []struct {
		latency uint64
		want    VMCategory
	}{
		{5, VMRegister},
		{10, VMMemData},
		{20, VMMemAddr},
		{40, VMCFV},
		{80, VMException},
		{100000, VMException},
	}
	for _, tt := range tests {
		if got := tr.CategoryAt(tt.latency); got != tt.want {
			t.Errorf("CategoryAt(%d) = %v, want %v", tt.latency, got, tt.want)
		}
	}
}

func TestVMMaskedBeatsEverything(t *testing.T) {
	tr := VMTrial{Masked: true, ExcLat: 5, CFVLat: 3}
	if tr.CategoryAt(1000) != VMMasked {
		t.Error("masked trial classified as failing")
	}
}

func TestVMDistributionSumsToOne(t *testing.T) {
	trials := []VMTrial{
		{Masked: true, ExcLat: Never, CFVLat: Never, MemAddrLat: Never, MemDataLat: Never},
		{ExcLat: 50, CFVLat: Never, MemAddrLat: Never, MemDataLat: Never},
		{ExcLat: Never, CFVLat: 10, MemAddrLat: Never, MemDataLat: Never},
		{ExcLat: Never, CFVLat: Never, MemAddrLat: Never, MemDataLat: Never},
	}
	for _, lat := range []uint64{25, 100, 1000} {
		d := VMDistribution(trials, lat)
		if math.Abs(d.Total()-1.0) > 1e-9 {
			t.Errorf("distribution at %d sums to %v", lat, d.Total())
		}
	}
	d := VMDistribution(trials, 25)
	if d.Get("cfv") != 0.25 || d.Get("masked") != 0.25 || d.Get("register") != 0.5 {
		t.Errorf("distribution wrong: %+v", d.Fraction)
	}
	if VMDistribution(nil, 25).Total() != 0 {
		t.Error("empty trial set should produce empty distribution")
	}
}

func TestVMCategoryStrings(t *testing.T) {
	cats := []VMCategory{VMMasked, VMException, VMCFV, VMMemAddr, VMMemData, VMRegister, VMCategory(0)}
	seen := map[string]bool{}
	for _, c := range cats {
		s := c.String()
		if s == "" || (seen[s] && s != "unknown") {
			t.Errorf("bad name for %d: %q", c, s)
		}
		seen[s] = true
	}
	if len(VMCategories()) != 6 {
		t.Error("category list wrong")
	}
}

func newFailingTrial() UArchTrial {
	return UArchTrial{
		DeadlockLat: Never, ExcLat: Never, CFVLat: Never,
		HCMispLat: Never, AnyMispLat: Never, DivergeLat: Never,
	}
}

func TestUArchPrecedence(t *testing.T) {
	tr := newFailingTrial()
	tr.DeadlockLat = 90
	tr.ExcLat = 50
	tr.CFVLat = 20
	tr.ArchCorrupt = true

	tests := []struct {
		interval uint64
		want     UArchCategory
	}{
		{10, USDC},
		{20, UCFV},
		{50, UException},
		{90, UDeadlock},
		{5000, UDeadlock},
	}
	for _, tt := range tests {
		if got := tr.CategoryAt(tt.interval, DetectorPerfect); got != tt.want {
			t.Errorf("CategoryAt(%d) = %v, want %v", tt.interval, got, tt.want)
		}
	}
}

func TestUArchDetectorSelectsLatency(t *testing.T) {
	tr := newFailingTrial()
	tr.ArchCorrupt = true
	tr.CFVLat = 10
	tr.HCMispLat = 200
	tr.AnyMispLat = 50

	if tr.CategoryAt(100, DetectorPerfect) != UCFV {
		t.Error("perfect detector missed committed divergence")
	}
	if tr.CategoryAt(100, DetectorJRS) != USDC {
		t.Error("JRS detector should not see low-confidence mispredicts")
	}
	if tr.CategoryAt(100, DetectorOracleConfidence) != UCFV {
		t.Error("oracle confidence should cover any mispredict")
	}
	if tr.CategoryAt(100, DetectorNone) != USDC {
		t.Error("none detector should leave sdc")
	}
	if tr.CategoryAt(200, DetectorJRS) != UCFV {
		t.Error("JRS covers once latency fits the interval")
	}
}

func TestUArchNonFailingClassification(t *testing.T) {
	masked := newFailingTrial()
	masked.Masked = true
	if masked.CategoryAt(100, DetectorPerfect) != UMasked || masked.Failing() {
		t.Error("masked trial misclassified")
	}

	stuck := newFailingTrial()
	stuck.FaultStuck = true
	if stuck.CategoryAt(100, DetectorPerfect) != UOther || stuck.Failing() {
		t.Error("stuck fault should be 'other' and non-failing")
	}

	latent := newFailingTrial() // moved fault, no corruption, no symptom
	if !latent.Failing() || latent.CategoryAt(100, DetectorPerfect) != ULatent {
		t.Error("moved fault should be latent and failing")
	}

	protected := newFailingTrial()
	protected.Protected = true
	protected.ExcLat = 5 // even with symptoms recorded, protection wins
	if protected.Failing() || protected.CategoryAt(100, DetectorPerfect) != UOther {
		t.Error("protected trial must never fail")
	}
}

func TestUArchCoveredAndRates(t *testing.T) {
	trials := []UArchTrial{
		func() UArchTrial { tr := newFailingTrial(); tr.Masked = true; return tr }(),
		func() UArchTrial { tr := newFailingTrial(); tr.ExcLat = 50; return tr }(),
		func() UArchTrial { tr := newFailingTrial(); tr.ExcLat = 500; return tr }(),
		func() UArchTrial { tr := newFailingTrial(); tr.ArchCorrupt = true; return tr }(),
	}
	if got := RawFailureRate(trials); got != 0.75 {
		t.Errorf("raw failure rate = %v, want 0.75", got)
	}
	// At interval 100: only the ExcLat=50 trial is covered.
	if got := FailureRate(trials, 100, DetectorPerfect); got != 0.5 {
		t.Errorf("failure rate = %v, want 0.5", got)
	}
	if !trials[1].Covered(100, DetectorPerfect) || trials[2].Covered(100, DetectorPerfect) {
		t.Error("coverage misattributed")
	}
	if RawFailureRate(nil) != 0 || FailureRate(nil, 100, DetectorPerfect) != 0 {
		t.Error("empty sets should rate 0")
	}
}

func TestUArchDistributionSums(t *testing.T) {
	trials := []UArchTrial{
		func() UArchTrial { tr := newFailingTrial(); tr.Masked = true; return tr }(),
		func() UArchTrial { tr := newFailingTrial(); tr.DeadlockLat = 10; return tr }(),
		func() UArchTrial { tr := newFailingTrial(); tr.FaultStuck = true; return tr }(),
	}
	d := UArchDistribution(trials, 100, DetectorPerfect)
	if math.Abs(d.Total()-1.0) > 1e-9 {
		t.Errorf("sums to %v", d.Total())
	}
	if d.Get("deadlock") == 0 || d.Get("masked") == 0 || d.Get("other") == 0 {
		t.Errorf("distribution: %+v", d.Fraction)
	}
}

func TestUArchCategoryStrings(t *testing.T) {
	cats := []UArchCategory{UMasked, UOther, ULatent, USDC, UCFV, UException, UDeadlock, UArchCategory(0)}
	for _, c := range cats {
		if c.String() == "" {
			t.Errorf("empty name for %d", c)
		}
	}
	if len(UArchCategories()) != 7 {
		t.Error("category list wrong")
	}
}

func TestDMRDetectorDominates(t *testing.T) {
	// DMR sees any committed divergence, so its coverage dominates every
	// symptom-based detector on the same trial.
	tr := newFailingTrial()
	tr.ArchCorrupt = true
	tr.DivergeLat = 5
	tr.CFVLat = 60
	tr.HCMispLat = Never
	if tr.CategoryAt(10, DetectorDMR) != UCFV {
		t.Error("DMR should cover the divergence at latency 5")
	}
	if tr.CategoryAt(10, DetectorPerfect) != USDC {
		t.Error("perfect cfv detector should not cover a pure data divergence")
	}
}
