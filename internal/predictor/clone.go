package predictor

// Clone support: fault-injection campaigns fork a warmed-up pipeline once
// per injection point and run many corrupted trials from identical state, so
// every predictor must be deep-copyable.

// Clone returns an independent copy.
func (b *Bimodal) Clone() *Bimodal {
	c := *b
	c.table = append([]counter2(nil), b.table...)
	return &c
}

// Clone returns an independent copy.
func (g *Gshare) Clone() *Gshare {
	c := *g
	c.table = append([]counter2(nil), g.table...)
	return &c
}

// Clone returns an independent copy.
func (c *Combined) Clone() *Combined {
	n := *c
	n.bimodal = c.bimodal.Clone()
	n.gshare = c.gshare.Clone()
	n.chooser = append([]counter2(nil), c.chooser...)
	return &n
}

// Clone returns an independent copy.
func (b *BTB) Clone() *BTB {
	c := *b
	c.entries = append([]btbEntry(nil), b.entries...)
	return &c
}

// Clone returns an independent copy.
func (r *RAS) Clone() *RAS {
	c := *r
	c.stack = append([]uint64(nil), r.stack...)
	return &c
}

// Clone returns an independent copy. The history source, if any, must be
// re-bound by the caller via SetHistorySource so the clone tracks its own
// pipeline's predictor rather than the original's.
func (j *JRS) Clone() ConfidenceEstimator {
	c := *j
	c.table = append([]uint8(nil), j.table...)
	return &c
}

// SetHistorySource re-points the estimator's global-history input.
func (j *JRS) SetHistorySource(hist *Gshare) { j.hist = hist }

// Clone returns the oracle itself (stateless).
func (Perfect) Clone() ConfidenceEstimator { return Perfect{} }

// Clone returns the null estimator itself (stateless).
func (Never) Clone() ConfidenceEstimator { return Never{} }
