package analyzers

import (
	"testing"

	"repro/tools/restorelint/lint"
	"repro/tools/restorelint/lint/linttest"
)

// Each analyzer is checked against a bad fixture (every diagnostic marked
// with a // want comment) and a good fixture (analyzer must stay silent,
// including through the //restorelint:ignore escape hatch).
func TestAnalyzers(t *testing.T) {
	cases := []struct {
		analyzer *lint.Analyzer
		dir      string
	}{
		{Determinism, "determinism"},
		{OpcodeSwitch, "opcodeswitch"},
		{StateMut, "statemut"},
		{BitWidth, "bitwidth"},
		{StateRegister, "stateregister"},
		{ProtectPolicy, "protectpolicy"},
		{HotPathAlloc, "hotpathalloc"},
		{GoroutineShare, "goroutineshare"},
		{DurableIO, "durableio"},
	}
	for _, tc := range cases {
		for _, kind := range []string{"good", "bad"} {
			t.Run(tc.dir+"/"+kind, func(t *testing.T) {
				linttest.Run(t, tc.analyzer, "testdata/"+tc.dir+"/"+kind)
			})
		}
	}
}
