package checkpoint

import (
	"errors"
	"testing"

	"repro/internal/mem"
)

func newMem(t *testing.T) *mem.Memory {
	t.Helper()
	m := mem.New()
	m.Map(0, 4*mem.PageSize, mem.PermRW)
	return m
}

func TestCreateAndRestoreOldest(t *testing.T) {
	m := newMem(t)
	s := NewStore(m, 2)

	var regs [32]uint64
	regs[1] = 100
	if err := m.WriteQ(0, 1); err != nil {
		t.Fatal(err)
	}
	s.Create(regs, 0x1000, 500)

	if err := m.WriteQ(0, 2); err != nil {
		t.Fatal(err)
	}
	regs[1] = 200
	s.Create(regs, 0x2000, 600)

	if err := m.WriteQ(0, 3); err != nil {
		t.Fatal(err)
	}

	cp, err := s.RestoreOldest()
	if err != nil {
		t.Fatal(err)
	}
	if cp.PC != 0x1000 || cp.Regs[1] != 100 || cp.Retired != 500 {
		t.Errorf("restored wrong checkpoint: %+v", cp)
	}
	if v, _ := m.ReadQ(0); v != 1 {
		t.Errorf("memory not unwound: %d", v)
	}
	if s.Len() != 0 {
		t.Errorf("checkpoints remain after restore: %d", s.Len())
	}
}

func TestCapacityRetiresOldest(t *testing.T) {
	m := newMem(t)
	s := NewStore(m, 2)
	var regs [32]uint64

	if err := m.WriteQ(0, 1); err != nil {
		t.Fatal(err)
	}
	s.Create(regs, 0x100, 1)
	if err := m.WriteQ(0, 2); err != nil {
		t.Fatal(err)
	}
	s.Create(regs, 0x200, 2)
	if err := m.WriteQ(0, 3); err != nil {
		t.Fatal(err)
	}
	s.Create(regs, 0x300, 3) // retires the 0x100 checkpoint

	if s.Len() != 2 {
		t.Fatalf("len = %d, want 2", s.Len())
	}
	cp, err := s.RestoreOldest()
	if err != nil {
		t.Fatal(err)
	}
	if cp.PC != 0x200 {
		t.Errorf("oldest pc = %#x, want 0x200", cp.PC)
	}
	// Memory must unwind to the state at checkpoint 0x200 (value 2), and
	// the retired checkpoint's state (value 1) must be unreachable.
	if v, _ := m.ReadQ(0); v != 2 {
		t.Errorf("memory = %d, want 2", v)
	}
}

func TestMarkRebaseAfterRetirement(t *testing.T) {
	// Regression: retiring the oldest checkpoint compacts the journal;
	// surviving marks must be rebased or restores will unwind the wrong
	// distance.
	m := newMem(t)
	s := NewStore(m, 2)
	var regs [32]uint64

	for i := uint64(1); i <= 6; i++ {
		if err := m.WriteQ(8, i*10); err != nil {
			t.Fatal(err)
		}
		s.Create(regs, 0x100*i, i)
	}
	// Live checkpoints: i=5 (mem=50) and i=6 (mem=60).
	cp, err := s.RestoreOldest()
	if err != nil {
		t.Fatal(err)
	}
	if cp.PC != 0x500 {
		t.Fatalf("oldest pc = %#x", cp.PC)
	}
	if v, _ := m.ReadQ(8); v != 50 {
		t.Errorf("memory = %d, want 50", v)
	}
}

func TestRestoreNewest(t *testing.T) {
	m := newMem(t)
	s := NewStore(m, 2)
	var regs [32]uint64

	s.Create(regs, 0x100, 1)
	if err := m.WriteQ(16, 7); err != nil {
		t.Fatal(err)
	}
	regs[2] = 9
	s.Create(regs, 0x200, 2)
	if err := m.WriteQ(16, 8); err != nil {
		t.Fatal(err)
	}

	cp, err := s.RestoreNewest()
	if err != nil {
		t.Fatal(err)
	}
	if cp.PC != 0x200 || cp.Regs[2] != 9 {
		t.Errorf("restored %+v", cp)
	}
	if v, _ := m.ReadQ(16); v != 7 {
		t.Errorf("memory = %d, want 7", v)
	}
	// The older checkpoint is still live.
	if s.Len() != 1 {
		t.Errorf("len = %d, want 1", s.Len())
	}
}

func TestEmptyStoreErrors(t *testing.T) {
	s := NewStore(newMem(t), 2)
	if _, err := s.RestoreOldest(); !errors.Is(err, ErrEmpty) {
		t.Errorf("RestoreOldest on empty = %v", err)
	}
	if _, err := s.RestoreNewest(); !errors.Is(err, ErrEmpty) {
		t.Errorf("RestoreNewest on empty = %v", err)
	}
	if _, ok := s.Oldest(); ok {
		t.Error("Oldest on empty store succeeded")
	}
	if _, ok := s.Newest(); ok {
		t.Error("Newest on empty store succeeded")
	}
}

func TestClearMakesStatePermanent(t *testing.T) {
	m := newMem(t)
	s := NewStore(m, 2)
	var regs [32]uint64
	s.Create(regs, 0x100, 1)
	if err := m.WriteQ(0, 42); err != nil {
		t.Fatal(err)
	}
	s.Clear()
	if s.Len() != 0 {
		t.Error("clear left checkpoints")
	}
	if m.JournalLen() != 0 {
		t.Error("clear left journal records")
	}
	if v, _ := m.ReadQ(0); v != 42 {
		t.Error("clear rolled back state")
	}
}

func TestOldestNewestAccessors(t *testing.T) {
	m := newMem(t)
	s := NewStore(m, 3)
	var regs [32]uint64
	s.Create(regs, 0x100, 1)
	s.Create(regs, 0x200, 2)
	old, ok := s.Oldest()
	if !ok || old.PC != 0x100 {
		t.Errorf("oldest = %+v, %v", old, ok)
	}
	newest, ok := s.Newest()
	if !ok || newest.PC != 0x200 {
		t.Errorf("newest = %+v, %v", newest, ok)
	}
	if s.Capacity() != 3 {
		t.Errorf("capacity = %d", s.Capacity())
	}
}

func TestMinimumCapacity(t *testing.T) {
	s := NewStore(newMem(t), 0)
	if s.Capacity() != 1 {
		t.Errorf("capacity = %d, want clamped to 1", s.Capacity())
	}
}
