// Command benchdiff maintains and enforces the repository's committed
// benchmark baseline (BENCH_pipeline.json).
//
// It reads `go test -bench -benchmem` output on stdin in both modes:
//
//	go test -run '^$' -bench . -benchmem . | go run ./tools/benchdiff -write BENCH_pipeline.json
//	go test -run '^$' -bench . -benchmem . | go run ./tools/benchdiff -baseline BENCH_pipeline.json
//
// -write parses the benchmark results and (re)writes the baseline file.
// -baseline compares the fresh results against the committed baseline and
// exits nonzero when
//
//   - any benchmark's ns/op regresses by more than -time-tolerance
//     (default 25%), or
//   - a campaign benchmark — one reporting a trials/s custom metric —
//     loses more than -trials-tolerance of its baseline throughput
//     (default 40%: campaign iterations are long, so short CI runs see
//     few of them and more run-to-run variance than micro-benchmarks;
//     the gate still catches the multi-x regressions that matter, like
//     losing the decode cache or the early-exit path), or
//   - a hot-path benchmark — one exercising a //restorelint:hotpath
//     function — reports more allocs/op than the baseline at all. Hot-path
//     allocation counts are machine-independent, so that gate is exact.
//
// B/op drift beyond -time-tolerance is reported on every benchmark (a
// `drift` line) but is not a failure on its own: allocation volume is a
// leading indicator, and the exact hot-path allocs/op gate plus the
// throughput gates are the enforcement points.
//
// Benchmarks present in only one of the two sets are reported but do not
// fail the comparison (CI smoke runs may use a -bench filter); pass
// -require-all to make missing baseline entries fatal.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// hotpathBenches names the benchmarks whose allocs/op are pinned exactly:
// each drives a //restorelint:hotpath function in its steady state, so any
// allocation at all is a regression the static analyzer should also have
// caught.
var hotpathBenches = map[string]bool{
	"BenchmarkPipelineCycle":            true, // pipeline.Step / Cycle
	"BenchmarkPipelineCycleDecodeCache": true, // same, campaign configuration
	"BenchmarkArchSimStep":              true, // arch.Sim.Step
	"BenchmarkArchSimStepDecodeCache":   true, // same, campaign configuration
	"BenchmarkPipelineResetFrom":        true, // Pipeline.ResetFrom + mem.CopyFrom
	"BenchmarkStateHash/packed":         true, // StateSpace.Hash extent walk
	"BenchmarkStateHash/legacy":         true, // StateSpace.Hash per-element walk
}

// Result is one benchmark's measurements.
type Result struct {
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Hotpath     bool               `json:"hotpath,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Baseline is the schema of BENCH_pipeline.json.
type Baseline struct {
	Note       string            `json:"note"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

const baselineNote = "Committed benchmark baseline. Regenerate with `make bench-baseline`; " +
	"CI diffs fresh runs against this file with tools/benchdiff."

func main() {
	var (
		write      = flag.String("write", "", "write a new baseline to this file")
		baseline   = flag.String("baseline", "", "compare stdin against this baseline file")
		tolerance  = flag.Float64("time-tolerance", 0.25, "allowed fractional ns/op regression")
		trialsTol  = flag.Float64("trials-tolerance", 0.40, "allowed fractional campaign trials/s drop")
		requireAll = flag.Bool("require-all", false, "fail if a baseline benchmark is missing from stdin")
	)
	flag.Parse()

	if (*write == "") == (*baseline == "") {
		fmt.Fprintln(os.Stderr, "benchdiff: exactly one of -write or -baseline is required")
		os.Exit(2)
	}

	fresh, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if len(fresh) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no benchmark results on stdin")
		os.Exit(2)
	}

	if *write != "" {
		if err := writeBaseline(*write, fresh); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		fmt.Printf("benchdiff: wrote %d benchmarks to %s\n", len(fresh), *write)
		return
	}

	base, err := readBaseline(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	bad := compare(os.Stdout, base, fresh, *tolerance, *trialsTol, *requireAll)
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d regression(s) against %s\n", bad, *baseline)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: no regressions against %s\n", *baseline)
}

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkPipelineCycle-8   1000000   1050 ns/op   0 B/op   0 allocs/op   2.1 ipc
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

// parseBench reads `go test -bench` output and returns results keyed by
// benchmark name with the -GOMAXPROCS suffix stripped. Repeated runs of the
// same benchmark keep the last measurement.
func parseBench(r *os.File) (map[string]Result, error) {
	out := make(map[string]Result)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name, rest := m[1], strings.Fields(m[2])
		res := Result{Hotpath: hotpathBenches[name]}
		for i := 0; i+1 < len(rest); i += 2 {
			val, err := strconv.ParseFloat(rest[i], 64)
			if err != nil {
				return nil, fmt.Errorf("%s: bad value %q", name, rest[i])
			}
			switch unit := rest[i+1]; unit {
			case "ns/op":
				res.NsPerOp = val
			case "B/op":
				res.BytesPerOp = val
			case "allocs/op":
				res.AllocsPerOp = val
			default:
				if res.Metrics == nil {
					res.Metrics = make(map[string]float64)
				}
				res.Metrics[unit] = val
			}
		}
		out[name] = res
	}
	return out, sc.Err()
}

func writeBaseline(path string, results map[string]Result) error {
	data, err := json.MarshalIndent(Baseline{Note: baselineNote, Benchmarks: results}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func readBaseline(path string) (Baseline, error) {
	var b Baseline
	data, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(data, &b); err != nil {
		return b, fmt.Errorf("%s: %w", path, err)
	}
	return b, nil
}

// compare prints one line per benchmark and returns the regression count.
func compare(w *os.File, base Baseline, fresh map[string]Result, tolerance, trialsTol float64, requireAll bool) int {
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	bad := 0
	for _, name := range names {
		old := base.Benchmarks[name]
		cur, ok := fresh[name]
		if !ok {
			if requireAll {
				fmt.Fprintf(w, "FAIL %-55s missing from this run\n", name)
				bad++
			} else {
				fmt.Fprintf(w, "skip %-55s not run\n", name)
			}
			continue
		}
		delta := 0.0
		if old.NsPerOp > 0 {
			delta = cur.NsPerOp/old.NsPerOp - 1
		}
		oldTrials, curTrials := old.Metrics["trials/s"], cur.Metrics["trials/s"]
		trialsDrop := 0.0
		if oldTrials > 0 {
			trialsDrop = 1 - curTrials/oldTrials
		}
		switch {
		case old.Hotpath && cur.AllocsPerOp > old.AllocsPerOp:
			fmt.Fprintf(w, "FAIL %-55s allocs/op %.0f -> %.0f (hot path must stay allocation-free)\n",
				name, old.AllocsPerOp, cur.AllocsPerOp)
			bad++
		case trialsDrop > trialsTol:
			fmt.Fprintf(w, "FAIL %-55s trials/s %+.1f%% (%.1f -> %.1f, tolerance %.0f%%)\n",
				name, -trialsDrop*100, oldTrials, curTrials, trialsTol*100)
			bad++
		// Campaign benchmarks (oldTrials > 0) gate on trials/s alone:
		// their ns/op is the same measurement inverted, and double-gating
		// it at the tighter micro-benchmark tolerance would defeat the
		// wider campaign one.
		case oldTrials == 0 && delta > tolerance:
			fmt.Fprintf(w, "FAIL %-55s ns/op %+.1f%% (%.0f -> %.0f, tolerance %.0f%%)\n",
				name, delta*100, old.NsPerOp, cur.NsPerOp, tolerance*100)
			bad++
		default:
			if oldTrials > 0 {
				fmt.Fprintf(w, "ok   %-55s trials/s %+.1f%%\n", name, -trialsDrop*100)
			} else {
				fmt.Fprintf(w, "ok   %-55s ns/op %+.1f%%\n", name, delta*100)
			}
			if drift := bytesDrift(old.BytesPerOp, cur.BytesPerOp); drift > tolerance {
				fmt.Fprintf(w, "drift %-54s B/op %+.1f%% (%.0f -> %.0f, not gated)\n",
					name, drift*100, old.BytesPerOp, cur.BytesPerOp)
			}
		}
	}
	for name := range fresh {
		if _, ok := base.Benchmarks[name]; !ok {
			fmt.Fprintf(w, "new  %-55s not in baseline (run `make bench-baseline` to add)\n", name)
		}
	}
	return bad
}

// bytesDrift returns the fractional B/op growth, treating a zero or shrunk
// baseline as no drift (hot-path benches pin 0 B/op through the allocs gate).
func bytesDrift(old, cur float64) float64 {
	if old <= 0 || cur <= old {
		return 0
	}
	return cur/old - 1
}
