// Package fixture exercises the stateregister diagnostics.
package fixture

type StateSpace struct{}

func (s *StateSpace) Register(name string, kind, class int, word *uint64, bits int) {}

func (s *StateSpace) BindArray(dst *[]uint64, n int) int { return 0 }

// rob has a register method, so every uint64 word is under obligation.
type rob struct {
	pc    [4]uint64
	flags [4]uint64 // want "field rob.flags is \[4\]uint64 but is never registered"
	head  uint64
	count uint64 // want "field rob.count is uint64 but is never registered"
}

func (r *rob) register(s *StateSpace) {
	for i := range r.pc {
		s.Register("rob.pc", 0, 0, &r.pc[i], 48)
	}
	s.Register("rob.head", 0, 0, &r.head, 2)
}

// core has no register method, but a field registered elsewhere in the
// package makes it stateful — the case the old statecheck missed.
type core struct {
	fetchPC  uint64
	watchdog uint64 // want "field core.watchdog is uint64 but is never registered"
}

func (c *core) setup(s *StateSpace) {
	s.Register("fetchPC", 0, 0, &c.fetchPC, 48)
}

// packed binds one slice but forgets the other: []uint64 fields carry the
// same obligation as scalar words once the struct is stateful.
type packed struct {
	pc   []uint64
	word []uint64 // want "field packed.word is \[\]uint64 but is never registered"
}

func (p *packed) register(s *StateSpace) {
	s.BindArray(&p.pc, 4)
}
