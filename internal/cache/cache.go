// Package cache implements the set-associative caches and translation
// look-aside buffers of the processor model (Figure 3: L1 instruction and
// data caches, I/D TLBs).
//
// In the paper these structures are excluded from fault injection (they are
// straightforwardly protected by parity/ECC, Section 4.2) but they matter in
// two other ways: their miss latencies shape the timing model, and cache/TLB
// misses are candidate soft-error symptoms the paper discusses in Section
// 3.3 — frequent enough in error-free runs to make poor detectors, which the
// symptom-tuning example demonstrates quantitatively.
package cache

// Config describes one cache or TLB.
type Config struct {
	// SetBits is log2 of the number of sets.
	SetBits int
	// Ways is the associativity.
	Ways int
	// LineBits is log2 of the line size in bytes (page size for TLBs).
	LineBits int
	// HitLatency and MissLatency are in cycles.
	HitLatency  int
	MissLatency int
}

// Cache is a set-associative cache model with LRU replacement. It tracks
// tags only — data always comes from the backing memory image — because the
// simulators need hit/miss behaviour and timing, not a second copy of
// memory.
type Cache struct {
	cfg     Config
	sets    uint64
	entries []entry

	accesses uint64
	misses   uint64
}

type entry struct {
	valid bool
	tag   uint64
	lru   uint32
}

// New returns an empty cache.
func New(cfg Config) *Cache {
	sets := uint64(1) << cfg.SetBits
	return &Cache{
		cfg:     cfg,
		sets:    sets,
		entries: make([]entry, int(sets)*cfg.Ways),
	}
}

// DefaultL1I is a 32 KiB, 2-way, 64-byte-line instruction cache.
func DefaultL1I() Config {
	return Config{SetBits: 8, Ways: 2, LineBits: 6, HitLatency: 1, MissLatency: 12}
}

// DefaultL1D is a 32 KiB, 4-way, 64-byte-line data cache.
func DefaultL1D() Config {
	return Config{SetBits: 7, Ways: 4, LineBits: 6, HitLatency: 2, MissLatency: 14}
}

// DefaultL2 is a 512 KiB, 8-way unified second-level cache; its miss
// latency is the trip to main memory.
func DefaultL2() Config {
	return Config{SetBits: 10, Ways: 8, LineBits: 6, HitLatency: 12, MissLatency: 80}
}

// DefaultITLB is a 64-entry fully-associative-ish (16x4) instruction TLB
// over 8 KiB pages.
func DefaultITLB() Config {
	return Config{SetBits: 4, Ways: 4, LineBits: 13, HitLatency: 0, MissLatency: 20}
}

// DefaultDTLB is a 128-entry data TLB over 8 KiB pages.
func DefaultDTLB() Config {
	return Config{SetBits: 5, Ways: 4, LineBits: 13, HitLatency: 0, MissLatency: 20}
}

func (c *Cache) index(addr uint64) (set uint64, tag uint64) {
	line := addr >> c.cfg.LineBits
	return line & (c.sets - 1), line >> c.cfg.SetBits
}

// Access looks up addr, fills on miss, and returns whether it hit and the
// access latency in cycles.
func (c *Cache) Access(addr uint64) (hit bool, latency int) {
	c.accesses++
	setIdx, tag := c.index(addr)
	set := c.entries[int(setIdx)*c.cfg.Ways : int(setIdx+1)*c.cfg.Ways]
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			c.touch(set, i)
			return true, c.cfg.HitLatency
		}
	}
	c.misses++
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru > set[victim].lru {
			victim = i
		}
	}
	set[victim] = entry{valid: true, tag: tag}
	c.touch(set, victim)
	return false, c.cfg.MissLatency
}

// Probe looks up addr without filling or updating statistics.
func (c *Cache) Probe(addr uint64) bool {
	setIdx, tag := c.index(addr)
	set := c.entries[int(setIdx)*c.cfg.Ways : int(setIdx+1)*c.cfg.Ways]
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

func (c *Cache) touch(set []entry, mru int) {
	set[mru].lru = 0
	for j := range set {
		if j != mru && set[j].valid {
			set[j].lru++
		}
	}
}

// Clone returns an independent copy, including contents and statistics.
// Campaigns fork warmed-up pipelines, so cache state must be copyable.
func (c *Cache) Clone() *Cache {
	n := *c
	n.entries = append([]entry(nil), c.entries...)
	return &n
}

// CopyFrom makes c an exact copy of src (contents and statistics), reusing
// c's entry array when the geometries match. Campaign clone pools use this
// to reset a trial's caches back to the master's without reallocating.
func (c *Cache) CopyFrom(src *Cache) {
	c.cfg = src.cfg
	c.sets = src.sets
	c.accesses = src.accesses
	c.misses = src.misses
	if len(c.entries) != len(src.entries) {
		//restorelint:allowalloc -- geometry mismatch only; the clone pool re-images identically-shaped caches
		c.entries = make([]entry, len(src.entries))
	}
	copy(c.entries, src.entries)
}

// Reset invalidates all entries and clears statistics.
func (c *Cache) Reset() {
	for i := range c.entries {
		c.entries[i] = entry{}
	}
	c.accesses = 0
	c.misses = 0
}

// Stats returns accesses and misses since the last Reset.
func (c *Cache) Stats() (accesses, misses uint64) {
	return c.accesses, c.misses
}

// MissRate returns the miss ratio (0 when no accesses were made).
func (c *Cache) MissRate() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.accesses)
}
