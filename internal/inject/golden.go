package inject

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"

	"repro/internal/arch"
	"repro/internal/ckptio"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/pipeline"
)

// Golden-image support for both campaign kinds. A golden image captures the
// simulator state at the warm-up boundary so repeat runs — and sharded
// workers — skip the warm-up simulation entirely. Loading an image is
// provably inert: the restored state is bit-identical to the warmed-up one,
// so campaign results are byte-identical either way (the equivalence tests
// run all seven benchmarks through both paths).
//
// The microarchitectural image is pipeline.WriteGoldenImage's frame layout.
// The architectural (VM) image uses the same ckptio container with:
//
//	frame 0    meta (raw): the goldenKey identification string
//	frame 1    cpu (raw): 32 regs | pc | instret | halted | excepted | excKind
//	frames 2.. the memory page image in vmMemChunk-byte slices (flate)

// vmMemChunk is the memory-image slice carried per VM golden frame.
const vmMemChunk = 1 << 18

// goldenKey identifies the warm-up a uarch golden image captures: exactly
// the inputs that determine the warmed state, nothing more, so one image
// serves every campaign whose warm-up matches (different Points, trial
// counts or shard assignments included).
func (c *UArchConfig) goldenKey(pcfg pipeline.Config) string {
	return fmt.Sprintf("uarch|bench=%s|seed=%d|scale=%g|warmup=%d|pipe=%+v",
		c.Bench, c.Seed, c.Scale, c.WarmupCycles, pcfg)
}

// goldenKey identifies the warm-up boundary a VM golden image captures.
func (c *VMConfig) goldenKey() string {
	return fmt.Sprintf("vm|bench=%s|seed=%d|scale=%g|warmup=%d",
		c.Bench, c.Seed, c.Scale, c.Warmup)
}

// goldenWorkers bounds the ckptio frame fan-out by the campaign's worker
// budget. The bytes are identical at any count.
func goldenWorkers(workers int) int {
	if workers < 1 {
		return 1
	}
	return workers
}

// invalidGoldenImage reports whether a load failure means the file is not a
// structurally valid ckptio container — a torn copy, bit rot, or a file that
// was never an image. Such a file is treated exactly like an absent one: the
// campaign re-runs the warm-up and atomically rewrites the image (ckptio's
// temp+fsync+rename makes the replacement safe even against concurrent
// shards). Crucially, ckptio surfaces these errors while decoding, before a
// single word of simulator state is touched, so self-healing never runs a
// campaign from a half-restored state. A mismatch error
// (pipeline.ErrGoldenMismatch) is NOT recoverable: the file is a healthy
// image for some other configuration, and silently overwriting it would
// destroy another campaign's warm-up.
func invalidGoldenImage(err error) bool {
	return errors.Is(err, ckptio.ErrBadMagic) ||
		errors.Is(err, ckptio.ErrTruncated) ||
		errors.Is(err, ckptio.ErrCorrupt)
}

// recordGoldenSaved publishes save-side telemetry: image count, frame count
// and the plain/stored byte totals (their ratio is the compression factor).
func recordGoldenSaved(sink obs.Sink, ns string, st ckptio.Stats) {
	sink.Counter(ns + "_golden_image_saved_total").Inc()
	sink.Counter(ns + "_golden_image_frames_total").Add(int64(st.Frames))
	sink.Counter(ns + "_golden_image_plain_bytes_total").Add(st.PlainBytes)
	sink.Counter(ns + "_golden_image_stored_bytes_total").Add(st.StoredBytes)
}

// loadUArchGolden restores master from cfg.GoldenImage if the file exists.
// It returns whether the warm-up was skipped.
func loadUArchGolden(cfg *UArchConfig, pcfg pipeline.Config, master *pipeline.Pipeline) (bool, error) {
	if cfg.GoldenImage == "" {
		return false, nil
	}
	if _, err := os.Stat(cfg.GoldenImage); err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, err
	}
	if err := master.LoadGoldenImage(cfg.GoldenImage, []byte(cfg.goldenKey(pcfg)), goldenWorkers(cfg.Workers)); err != nil {
		if invalidGoldenImage(err) {
			cfg.Obs.Counter("campaign_uarch_golden_image_invalid_total").Inc()
			return false, nil // self-heal: warm up again and rewrite the image
		}
		return false, fmt.Errorf("inject: golden image %s: %w", cfg.GoldenImage, err)
	}
	cfg.Obs.Counter("campaign_uarch_golden_image_loaded_total").Inc()
	return true, nil
}

// saveUArchGolden writes the warmed master to cfg.GoldenImage.
func saveUArchGolden(cfg *UArchConfig, pcfg pipeline.Config, master *pipeline.Pipeline) error {
	if cfg.GoldenImage == "" {
		return nil
	}
	st, err := master.WriteGoldenImage(cfg.GoldenImage, []byte(cfg.goldenKey(pcfg)), goldenWorkers(cfg.Workers))
	if err != nil {
		return fmt.Errorf("inject: writing golden image %s: %w", cfg.GoldenImage, err)
	}
	recordGoldenSaved(cfg.Obs, "campaign_uarch", st)
	return nil
}

// writeVMGolden saves the architectural simulator plus its memory image.
func writeVMGolden(path string, key []byte, sim *arch.Sim, m *mem.Memory, workers int) (ckptio.Stats, error) {
	w := ckptio.NewWriter()
	w.Frame(ckptio.StyleRaw).Add(key)
	cpu := make([]byte, 0, (len(sim.Regs)+2)*8+3)
	var u [8]byte
	for _, r := range sim.Regs {
		binary.LittleEndian.PutUint64(u[:], r)
		cpu = append(cpu, u[:]...)
	}
	binary.LittleEndian.PutUint64(u[:], sim.PC)
	cpu = append(cpu, u[:]...)
	binary.LittleEndian.PutUint64(u[:], sim.InstRet)
	cpu = append(cpu, u[:]...)
	cpu = append(cpu, b2u8(sim.Halted), b2u8(sim.Excepted), byte(sim.LastException))
	w.Frame(ckptio.StyleRaw).Add(cpu)
	img := m.SaveState()
	for off := 0; off < len(img) || off == 0; off += vmMemChunk {
		end := off + vmMemChunk
		if end > len(img) {
			end = len(img)
		}
		w.Frame(ckptio.StyleFlate).Add(img[off:end])
		if end == len(img) {
			break
		}
	}
	if err := w.WriteFile(path, workers); err != nil {
		return ckptio.Stats{}, err
	}
	return w.Stats(), nil
}

// loadVMGolden restores a writeVMGolden image into sim and m.
func loadVMGolden(path string, key []byte, sim *arch.Sim, m *mem.Memory, workers int) error {
	f, err := ckptio.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	frames, err := f.ReadAll(workers)
	if err != nil {
		return err
	}
	if len(frames) < 3 || len(frames[0]) != 1 || len(frames[1]) != 1 {
		return fmt.Errorf("%w: not a vm golden image", pipeline.ErrGoldenMismatch)
	}
	if string(frames[0][0]) != string(key) {
		return fmt.Errorf("%w: image meta %q, want %q", pipeline.ErrGoldenMismatch, frames[0][0], key)
	}
	cpu := frames[1][0]
	want := (len(sim.Regs)+2)*8 + 3
	if len(cpu) != want {
		return fmt.Errorf("%w: cpu frame %d bytes, want %d", pipeline.ErrGoldenMismatch, len(cpu), want)
	}
	var img []byte
	for _, fr := range frames[2:] {
		for _, b := range fr {
			img = append(img, b...)
		}
	}
	if err := m.LoadState(img); err != nil {
		return err
	}
	for i := range sim.Regs {
		sim.Regs[i] = binary.LittleEndian.Uint64(cpu[i*8:])
	}
	n := len(sim.Regs) * 8
	sim.PC = binary.LittleEndian.Uint64(cpu[n:])
	sim.InstRet = binary.LittleEndian.Uint64(cpu[n+8:])
	sim.Halted = cpu[n+16] != 0
	sim.Excepted = cpu[n+17] != 0
	sim.LastException = arch.ExceptionKind(cpu[n+18])
	return nil
}

// loadVMGoldenIfPresent restores from cfg.GoldenImage when it exists,
// reporting whether the warm-up walk was skipped.
func loadVMGoldenIfPresent(cfg *VMConfig, sim *arch.Sim, m *mem.Memory) (bool, error) {
	if cfg.GoldenImage == "" {
		return false, nil
	}
	if _, err := os.Stat(cfg.GoldenImage); err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, err
	}
	if err := loadVMGolden(cfg.GoldenImage, []byte(cfg.goldenKey()), sim, m, goldenWorkers(cfg.Workers)); err != nil {
		if invalidGoldenImage(err) {
			cfg.Obs.Counter("campaign_vm_golden_image_invalid_total").Inc()
			return false, nil // self-heal: walk the warm-up again and rewrite
		}
		return false, fmt.Errorf("inject: golden image %s: %w", cfg.GoldenImage, err)
	}
	cfg.Obs.Counter("campaign_vm_golden_image_loaded_total").Inc()
	return true, nil
}

// saveVMGolden writes the warm-up boundary state to cfg.GoldenImage.
func saveVMGolden(cfg *VMConfig, sim *arch.Sim, m *mem.Memory) error {
	if cfg.GoldenImage == "" {
		return nil
	}
	st, err := writeVMGolden(cfg.GoldenImage, []byte(cfg.goldenKey()), sim, m, goldenWorkers(cfg.Workers))
	if err != nil {
		return fmt.Errorf("inject: writing golden image %s: %w", cfg.GoldenImage, err)
	}
	recordGoldenSaved(cfg.Obs, "campaign_vm", st)
	return nil
}

func b2u8(v bool) byte {
	if v {
		return 1
	}
	return 0
}
