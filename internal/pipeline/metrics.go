package pipeline

import "repro/internal/obs"

// pipeMetrics is the pipeline's write-only instrumentation, sampled once at
// the tail of every Cycle when attached. Throughput counters are exported
// as deltas of the Stats block (so an attach mid-run counts only what
// happens after it); occupancy histograms sample the structure fill levels
// the ReStore paper's symptom detectors ultimately perturb (ROB, LDQ, STQ,
// scheduler, fetch queue).
//
// The struct is bookkeeping, not machine state: it is never registered
// with the StateSpace, is cleared by Clone/ResetFrom, and nothing in the
// simulator ever reads it back — metrics-on and metrics-off runs are
// byte-identical (enforced by TestCampaignMetricsInert and the restorelint
// determinism analyzer's obs-read check).
type pipeMetrics struct {
	fetched     *obs.Counter
	dispatched  *obs.Counter
	issued      *obs.Counter
	committed   *obs.Counter
	squashes    *obs.Counter
	mispredicts *obs.Counter

	robOcc   *obs.Hist
	ldqOcc   *obs.Hist
	stqOcc   *obs.Hist
	schedOcc *obs.Hist
	fqOcc    *obs.Hist

	last Stats // stats at the previous sample, for delta export
}

// AttachObs hooks per-stage counters and occupancy histograms into the
// pipeline, registering them under prefix (e.g. "pipeline" yields
// pipeline_fetched_total, pipeline_rob_occupancy, ...). A nil sink
// detaches. Attachment is pure observation: it is not copied by Clone or
// ResetFrom and has no effect on simulation results.
func (p *Pipeline) AttachObs(sink obs.Sink, prefix string) {
	if sink == nil {
		p.obsM = nil
		return
	}
	name := func(s string) string {
		if prefix == "" {
			return s
		}
		return prefix + "_" + s
	}
	p.obsM = &pipeMetrics{
		fetched:     sink.Counter(name("fetched_total")),
		dispatched:  sink.Counter(name("dispatched_total")),
		issued:      sink.Counter(name("issued_total")),
		committed:   sink.Counter(name("committed_total")),
		squashes:    sink.Counter(name("squashes_total")),
		mispredicts: sink.Counter(name("mispredicts_total")),
		robOcc:      sink.Hist(name("rob_occupancy")),
		ldqOcc:      sink.Hist(name("ldq_occupancy")),
		stqOcc:      sink.Hist(name("stq_occupancy")),
		schedOcc:    sink.Hist(name("sched_occupancy")),
		fqOcc:       sink.Hist(name("fq_occupancy")),
		last:        p.Stats(),
	}
}

// sample records one cycle's worth of telemetry.
func (m *pipeMetrics) sample(p *Pipeline) {
	st := p.Stats()
	m.fetched.Add(int64(st.Fetched - m.last.Fetched))
	m.dispatched.Add(int64(st.Dispatched - m.last.Dispatched))
	m.issued.Add(int64(st.Issued - m.last.Issued))
	m.committed.Add(int64(st.Retired - m.last.Retired))
	m.squashes.Add(int64(st.Flushes - m.last.Flushes))
	m.mispredicts.Add(int64(st.Mispredicts - m.last.Mispredicts))
	m.last = st

	m.robOcc.Observe(int64(p.rob.count))
	m.ldqOcc.Observe(int64(p.ldq.count))
	m.stqOcc.Observe(int64(p.stq.count))
	m.schedOcc.Observe(int64(p.schedOccupancy()))
	m.fqOcc.Observe(int64(p.fq.count))
}

// schedOccupancy counts occupied scheduler slots (the scheduler has no
// count field: validity lives in per-slot flags).
func (p *Pipeline) schedOccupancy() int {
	n := 0
	for i := range p.sched.flags {
		if p.sched.flags[i]&schValid != 0 {
			n++
		}
	}
	return n
}
