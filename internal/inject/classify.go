// Package inject implements the paper's statistical fault-injection
// campaigns: the software-level (virtual machine) campaign behind Figure 2
// and the microarchitectural campaign behind Figures 4-6 and Section 5.1.2.
//
// Both campaigns follow Section 4.2's methodology: a single bit flip per
// trial, injection times drawn from a set of pre-selected points, the
// corrupted bit drawn uniformly over all eligible state, and trial outcomes
// classified against golden executions. Each trial records the latency from
// injection to every symptom class it exhibits, so a single campaign
// post-processes into every latency bin of Figure 2 and every checkpoint
// interval of Figures 4-6.
package inject

import (
	"repro/internal/arch"
	"repro/internal/stats"
)

// Never marks a symptom that did not occur within the observation window.
const Never = ^uint64(0)

// ---------------------------------------------------------------------------
// Software-level (virtual machine) campaign categories: Table 1.

// VMCategory classifies a software-level trial at a given detection latency.
type VMCategory uint8

// Table 1 categories, in stacking order (bottom of the bar first).
const (
	// VMMasked: the injected fault was masked (did not cause failure).
	VMMasked VMCategory = iota + 1
	// VMException: an ISA-defined exception was raised.
	VMException
	// VMCFV: a control-flow violation — the wrong instruction executed.
	VMCFV
	// VMMemAddr: the address of a memory operation was affected.
	VMMemAddr
	// VMMemData: a store wrote incorrect data to memory.
	VMMemData
	// VMRegister: only registers were corrupted (so far).
	VMRegister
)

// String names the category as in Table 1.
func (c VMCategory) String() string {
	switch c {
	case VMMasked:
		return "masked"
	case VMException:
		return "exception"
	case VMCFV:
		return "cfv"
	case VMMemAddr:
		return "mem-addr"
	case VMMemData:
		return "mem-data"
	case VMRegister:
		return "register"
	}
	return "unknown"
}

// VMCategories lists all categories in Figure 2's stacking order.
func VMCategories() []string {
	return []string{"masked", "exception", "cfv", "mem-addr", "mem-data", "register"}
}

// VMTrial is the outcome record of one software-level injection.
type VMTrial struct {
	Point uint64 // dynamic instruction index of the corrupted result
	Bit   uint8  // flipped bit position within the 64-bit result

	// Protected is set when a protection policy covered the register file:
	// the flip was corrected (or flushed) at the injection site, so the
	// trial is masked by construction.
	Protected bool

	// Masked is true when the fault never caused failure: architectural
	// state reconverged with the golden execution.
	Masked bool

	// First-occurrence latencies (retired instructions after injection);
	// Never when the symptom did not occur within the window.
	ExcLat     uint64
	CFVLat     uint64
	MemAddrLat uint64
	MemDataLat uint64

	// ExcKind records the exception raised, if any.
	ExcKind arch.ExceptionKind
}

// CategoryAt classifies the trial assuming symptoms can be observed up to
// `latency` instructions after the fault. Precedence follows the paper:
// lower (earlier-listed) categories win, so a trial that is both an
// exception and a cfv counts as an exception.
func (t VMTrial) CategoryAt(latency uint64) VMCategory {
	if t.Masked {
		return VMMasked
	}
	switch {
	case t.ExcLat <= latency:
		return VMException
	case t.CFVLat <= latency:
		return VMCFV
	case t.MemAddrLat <= latency:
		return VMMemAddr
	case t.MemDataLat <= latency:
		return VMMemData
	default:
		return VMRegister
	}
}

// VMDistribution bins a trial set at one detection latency.
func VMDistribution(trials []VMTrial, latency uint64) stats.Distribution {
	d := stats.NewDistribution(VMCategories())
	if len(trials) == 0 {
		return d
	}
	for _, t := range trials {
		d.Fraction[t.CategoryAt(latency).String()] += 1
	}
	for k := range d.Fraction {
		d.Fraction[k] /= float64(len(trials))
	}
	return d
}

// ---------------------------------------------------------------------------
// Microarchitectural campaign categories: Table 2.

// UArchCategory classifies a pipeline-level trial at a given checkpoint
// interval under a given detector.
type UArchCategory uint8

// Table 2 categories.
const (
	// UMasked: the fault was masked or overwritten (microarchitectural
	// state reconverged with the golden run).
	UMasked UArchCategory = iota + 1
	// UOther: the fault is still sitting, unread, in (very likely dead)
	// state — failure unlikely.
	UOther
	// ULatent: no failure detected yet, but the fault is still latent.
	ULatent
	// USDC: register file or memory state corruption that no symptom
	// covers within the interval.
	USDC
	// UCFV: a control-flow violation covered by the detector.
	UCFV
	// UException: an ISA-defined exception within the interval.
	UException
	// UDeadlock: watchdog-detected deadlock.
	UDeadlock
)

// String names the category as in Table 2.
func (c UArchCategory) String() string {
	switch c {
	case UMasked:
		return "masked"
	case UOther:
		return "other"
	case ULatent:
		return "latent"
	case USDC:
		return "sdc"
	case UCFV:
		return "cfv"
	case UException:
		return "exception"
	case UDeadlock:
		return "deadlock"
	}
	return "unknown"
}

// UArchCategories lists categories in Figure 4's stacking order.
func UArchCategories() []string {
	return []string{"masked", "deadlock", "exception", "cfv", "sdc", "latent", "other"}
}

// Detector selects which control-flow-violation evidence counts as a
// rollback trigger.
type Detector uint8

// Detectors.
const (
	// DetectorPerfect covers every committed control-flow divergence —
	// the "perfect identification of incorrect control flow" of Section
	// 5.1.1 (Figure 4).
	DetectorPerfect Detector = iota + 1
	// DetectorJRS covers only high-confidence conditional-branch
	// mispredictions flagged by the JRS estimator (Figure 5).
	DetectorJRS
	// DetectorOracleConfidence covers every conditional-branch
	// misprediction — the perfect-confidence-predictor ablation of
	// Section 5.2.1.
	DetectorOracleConfidence
	// DetectorNone disables control-flow symptoms (exception+deadlock
	// only).
	DetectorNone
	// DetectorDMR models full execution replication (package dmr): ANY
	// committed architectural divergence — wrong value, wrong store,
	// wrong path, exception — is caught at retirement. The coverage
	// bound ReStore trades away for its near-zero hardware cost.
	DetectorDMR
)

// UArchTrial is the outcome record of one microarchitectural injection.
type UArchTrial struct {
	PointCycle uint64 // warm-up cycle count at injection
	Elem       string // state element name
	Bit        uint8
	IsLatch    bool

	// Protected is set when the flip landed in a parity- or ECC-covered
	// element of a hardened pipeline: it is corrected or flushed away and
	// can never cause failure.
	Protected bool

	// Masked: microarchitectural state reconverged with the golden run
	// (possibly with a small timing lag) with no architectural damage.
	Masked bool
	// ArchCorrupt: committed register or memory state still differed
	// from the golden execution at the end of the window.
	ArchCorrupt bool
	// EverDiverged: some committed event mismatched the golden run at
	// any point (even if later overwritten).
	EverDiverged bool
	// FaultStuck: the flipped word still held its post-flip value at the
	// end of the window (the fault sits unread in dead state).
	FaultStuck bool

	// First-occurrence latencies in retired instructions after injection.
	DeadlockLat uint64
	ExcLat      uint64
	CFVLat      uint64 // first committed control-flow divergence
	HCMispLat   uint64 // first high-confidence cond mispredict resolution
	AnyMispLat  uint64 // first cond mispredict resolution
	DivergeLat  uint64 // first committed divergence of any kind (DMR's view)

	ExcKind arch.ExceptionKind
}

// trialDecision formalises the moment a trial's outcome classification
// becomes final: a terminal pipeline status (exception, deadlock, committed
// halt) that no further simulation can change, or a masked verdict (state
// reconverged with the golden run with no architectural damage). The
// early-exit engines stop simulating at that moment; the NoEarlyExit proof
// mode instead freezes the classification here, runs the window out, and
// returns the frozen record — byte-identical by construction, while
// exercising the post-decision cycles the fast path skips.
type trialDecision struct {
	decided bool
	frozen  UArchTrial
}

// decide freezes the trial's classification at first call; later calls (a
// later symptom under NoEarlyExit) are ignored, mirroring the fast path's
// first-decision-wins returns.
func (d *trialDecision) decide(t *UArchTrial) {
	if !d.decided {
		d.decided = true
		d.frozen = *t
	}
}

// cfvLatFor returns the control-flow symptom latency under the detector.
func (t UArchTrial) cfvLatFor(det Detector) uint64 {
	switch det {
	case DetectorPerfect:
		return t.CFVLat
	case DetectorJRS:
		return t.HCMispLat
	case DetectorOracleConfidence:
		return t.AnyMispLat
	case DetectorDMR:
		return t.DivergeLat
	default:
		return Never
	}
}

// Failing reports whether the trial is a failure per Section 4.2's
// definition: deadlock, exception, control-flow violation, persistent
// architectural corruption, or a still-latent fault.
func (t UArchTrial) Failing() bool {
	if t.Protected || t.Masked {
		return false
	}
	if t.DeadlockLat != Never || t.ExcLat != Never || t.CFVLat != Never || t.ArchCorrupt {
		return true
	}
	// No symptom and no corruption: a stuck fault in dead state is
	// "other" (not failing); a fault that moved is latent (failing).
	return !t.FaultStuck
}

// CategoryAt classifies the trial for a checkpoint interval under a
// detector, with the paper's precedence deadlock > exception > cfv > sdc.
func (t UArchTrial) CategoryAt(interval uint64, det Detector) UArchCategory {
	if t.Protected {
		// Covered by parity/ECC; the paper's Figure 6 shows these as
		// the enlarged "other" band.
		return UOther
	}
	if !t.Failing() {
		if t.Masked {
			return UMasked
		}
		return UOther
	}
	switch {
	case t.DeadlockLat <= interval:
		return UDeadlock
	case t.ExcLat <= interval:
		return UException
	case t.cfvLatFor(det) <= interval:
		return UCFV
	case t.ArchCorrupt || t.EverDiverged ||
		t.DeadlockLat != Never || t.ExcLat != Never || t.CFVLat != Never:
		return USDC
	default:
		return ULatent
	}
}

// Covered reports whether ReStore with the given interval and detector
// detects and recovers this trial's fault.
func (t UArchTrial) Covered(interval uint64, det Detector) bool {
	switch t.CategoryAt(interval, det) {
	case UDeadlock, UException, UCFV:
		return true
	}
	return false
}

// UArchDistribution bins a trial set at one checkpoint interval.
func UArchDistribution(trials []UArchTrial, interval uint64, det Detector) stats.Distribution {
	d := stats.NewDistribution(UArchCategories())
	if len(trials) == 0 {
		return d
	}
	for _, t := range trials {
		d.Fraction[t.CategoryAt(interval, det).String()] += 1
	}
	for k := range d.Fraction {
		d.Fraction[k] /= float64(len(trials))
	}
	return d
}

// FailureRate returns the fraction of trials that fail despite ReStore
// coverage at the given interval and detector — the paper's headline
// metric (7% baseline, ~3.5% ReStore, ~1% lhf+ReStore).
func FailureRate(trials []UArchTrial, interval uint64, det Detector) float64 {
	if len(trials) == 0 {
		return 0
	}
	failures := 0
	for _, t := range trials {
		if t.Failing() && !t.Covered(interval, det) {
			failures++
		}
	}
	return float64(failures) / float64(len(trials))
}

// RawFailureRate returns the fraction of failing trials with no detection
// at all (the baseline processor).
func RawFailureRate(trials []UArchTrial) float64 {
	if len(trials) == 0 {
		return 0
	}
	failures := 0
	for _, t := range trials {
		if t.Failing() {
			failures++
		}
	}
	return float64(failures) / float64(len(trials))
}
