package inject

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// The campaign engine's contract: results are a pure function of the
// configuration, bit-identical however many workers run the trials. These
// tests pin that across the whole benchmark suite for both campaign levels.
// The parallel side runs with a metrics sink attached, so every benchmark
// also witnesses the inertness contract: instrumented-parallel results must
// equal bare-serial results exactly.

func TestUArchParallelMatchesSerial(t *testing.T) {
	for _, bench := range workload.Benchmarks() {
		bench := bench
		t.Run(string(bench), func(t *testing.T) {
			t.Parallel()
			serialCfg := smallUArch(bench)
			serial, err := RunUArch(serialCfg)
			if err != nil {
				t.Fatal(err)
			}
			reg := obs.NewRegistry()
			parCfg := smallUArch(bench)
			parCfg.Workers = 8
			parCfg.Obs = reg
			par, err := RunUArch(parCfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(serial.Trials) != len(par.Trials) {
				t.Fatalf("trial counts differ: serial=%d parallel=%d",
					len(serial.Trials), len(par.Trials))
			}
			for i := range serial.Trials {
				if serial.Trials[i] != par.Trials[i] {
					t.Fatalf("trial %d differs:\nserial:   %+v\nparallel: %+v",
						i, serial.Trials[i], par.Trials[i])
				}
			}
			if serial.TotalBits != par.TotalBits || serial.LatchBits != par.LatchBits {
				t.Errorf("state-space sizes differ between engines")
			}
			if got := reg.Counter("campaign_uarch_trials_total").Value(); got != int64(len(par.Trials)) {
				t.Errorf("trials_total = %d, want %d", got, len(par.Trials))
			}
		})
	}
}

func TestVMParallelMatchesSerial(t *testing.T) {
	for _, bench := range workload.Benchmarks() {
		bench := bench
		t.Run(string(bench), func(t *testing.T) {
			t.Parallel()
			serial, err := RunVM(smallVM(bench, false))
			if err != nil {
				t.Fatal(err)
			}
			reg := obs.NewRegistry()
			parCfg := smallVM(bench, false)
			parCfg.Workers = 8
			parCfg.Obs = reg
			par, err := RunVM(parCfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(serial.Trials) != len(par.Trials) {
				t.Fatalf("trial counts differ: serial=%d parallel=%d",
					len(serial.Trials), len(par.Trials))
			}
			for i := range serial.Trials {
				if serial.Trials[i] != par.Trials[i] {
					t.Fatalf("trial %d differs:\nserial:   %+v\nparallel: %+v",
						i, serial.Trials[i], par.Trials[i])
				}
			}
			if got := reg.Counter("campaign_vm_trials_total").Value(); got != int64(len(par.Trials)) {
				t.Errorf("trials_total = %d, want %d", got, len(par.Trials))
			}
		})
	}
}

func TestUArchProgressReporting(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	lastDone, lastTotal := 0, 0
	cfg := smallUArch(workload.Gzip)
	cfg.Workers = 4
	cfg.Progress = func(done, total int) {
		mu.Lock()
		calls++
		if done > lastDone {
			lastDone = done
		}
		lastTotal = total
		mu.Unlock()
	}
	r, err := RunUArch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.Points * cfg.TrialsPerPoint
	if calls != want || lastDone != want || lastTotal != want {
		t.Errorf("progress: calls=%d lastDone=%d lastTotal=%d, want all %d",
			calls, lastDone, lastTotal, want)
	}
	if len(r.Trials) != want {
		t.Errorf("trials = %d, want %d", len(r.Trials), want)
	}
}

// TestUArchTruncatedCampaign covers the partial-result path: when the golden
// pipeline stops before the campaign completes (here forced by an aggressive
// watchdog that fires on the first long warm-up stall), RunUArch returns the
// partial result with the state-space survey populated instead of an error.
func TestUArchTruncatedCampaign(t *testing.T) {
	for _, workers := range []int{0, 8} {
		reg := obs.NewRegistry()
		cfg := smallUArch(workload.MCF)
		cfg.Workers = workers
		cfg.Obs = reg
		pcfg := pipeline.DefaultConfig()
		// Small enough that a cold-cache miss chain trips it during
		// warm-up (the suite's workloads never halt, so the watchdog is
		// the only reachable stop condition).
		pcfg.WatchdogCycles = 64
		cfg.Pipeline = &pcfg
		r, err := RunUArch(cfg)
		if err != nil {
			t.Fatalf("workers=%d: truncated campaign errored: %v", workers, err)
		}
		if r.Trials == nil {
			t.Fatalf("workers=%d: Trials is nil, want empty slice", workers)
		}
		if len(r.Trials) >= cfg.Points*cfg.TrialsPerPoint {
			t.Fatalf("workers=%d: campaign was not truncated (%d trials)", workers, len(r.Trials))
		}
		if len(r.Trials)%cfg.TrialsPerPoint != 0 {
			t.Errorf("workers=%d: partial result has a torn point: %d trials", workers, len(r.Trials))
		}
		if r.TotalBits == 0 || r.LatchBits == 0 {
			t.Errorf("workers=%d: truncated result missing state-space survey", workers)
		}
		if got := reg.Counter("campaign_uarch_truncated_total").Value(); got != 1 {
			t.Errorf("workers=%d: truncated_total = %d, want 1", workers, got)
		}
		if got := reg.Counter("campaign_uarch_trials_total").Value(); got != int64(len(r.Trials)) {
			t.Errorf("workers=%d: trials_total = %d, want %d", workers, got, len(r.Trials))
		}
	}
}

func TestPickBitNoEligibleBits(t *testing.T) {
	rng := rand.New(rand.NewSource(1))

	// An empty space has nothing to sample at all.
	if _, _, err := pickBit(&pipeline.StateSpace{}, rng, false); !errors.Is(err, ErrNoEligibleBits) {
		t.Errorf("empty space: err = %v, want ErrNoEligibleBits", err)
	}

	// A space with only SRAM elements has no latch bits: the latch-only
	// sampler must fail fast instead of rejection-sampling forever.
	var sramOnly pipeline.StateSpace
	words := make([]uint64, 4)
	for i := range words {
		sramOnly.Register("sram", pipeline.KindSRAM, pipeline.ClassData, &words[i], 64)
	}
	if _, _, err := pickBit(&sramOnly, rng, true); !errors.Is(err, ErrNoEligibleBits) {
		t.Errorf("latch-only over SRAM space: err = %v, want ErrNoEligibleBits", err)
	}
	// Unconstrained sampling over the same space still works.
	if _, _, err := pickBit(&sramOnly, rng, false); err != nil {
		t.Errorf("unconstrained pick failed: %v", err)
	}
}
