package inject

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/campaignio"
	"repro/internal/workload"
)

// resumeUArch is a deliberately small campaign: big enough to span several
// points and survive an interruption mid-run, small enough that every
// benchmark runs the one-shot / interrupted+resumed / sharded+merged trio
// quickly.
func resumeUArch(bench workload.Benchmark) UArchConfig {
	return UArchConfig{
		Bench:          bench,
		Seed:           11,
		Scale:          0.5,
		Points:         3,
		TrialsPerPoint: 10,
		WarmupCycles:   5_000,
		SpreadCycles:   10_000,
		WindowCycles:   3_000,
	}
}

func resumeVM(bench workload.Benchmark) VMConfig {
	return VMConfig{
		Bench:  bench,
		Seed:   11,
		Scale:  0.5,
		Trials: 60,
		Points: 10,
		Window: 10_000,
		Spread: 30_000,
	}
}

// interruptAfter returns an Interrupt channel wired to a Progress callback
// that fires the channel after n completed trials.
func interruptAfter(n int64) (<-chan struct{}, func(done, total int)) {
	stop := make(chan struct{})
	var once sync.Once
	var ticks atomic.Int64
	return stop, func(done, total int) {
		if ticks.Add(1) >= n {
			once.Do(func() { close(stop) })
		}
	}
}

func sameUArchResults(t *testing.T, label string, want, got *UArchResult) {
	t.Helper()
	if got.TotalBits != want.TotalBits || got.LatchBits != want.LatchBits ||
		got.HardenStats != want.HardenStats {
		t.Errorf("%s: aggregates differ: %d/%d/%+v vs %d/%d/%+v", label,
			got.TotalBits, got.LatchBits, got.HardenStats,
			want.TotalBits, want.LatchBits, want.HardenStats)
	}
	if len(got.Trials) != len(want.Trials) {
		t.Fatalf("%s: %d trials, want %d", label, len(got.Trials), len(want.Trials))
	}
	for i := range want.Trials {
		if got.Trials[i] != want.Trials[i] {
			t.Fatalf("%s: trial %d differs:\n got %+v\nwant %+v", label, i, got.Trials[i], want.Trials[i])
		}
	}
}

func sameVMResults(t *testing.T, label string, want, got *VMResult) {
	t.Helper()
	if len(got.Trials) != len(want.Trials) {
		t.Fatalf("%s: %d trials, want %d", label, len(got.Trials), len(want.Trials))
	}
	for i := range want.Trials {
		if got.Trials[i] != want.Trials[i] {
			t.Fatalf("%s: trial %d differs:\n got %+v\nwant %+v", label, i, got.Trials[i], want.Trials[i])
		}
	}
}

// TestUArchDurableEquivalence pins the durability contract on every
// benchmark: an interrupted-then-resumed campaign and a two-way
// sharded-then-merged campaign both reproduce the one-shot serial result
// exactly.
func TestUArchDurableEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("durable campaign equivalence is slow")
	}
	for _, bench := range workload.Benchmarks() {
		bench := bench
		t.Run(string(bench), func(t *testing.T) {
			t.Parallel()
			oneShot, err := RunUArch(resumeUArch(bench))
			if err != nil {
				t.Fatal(err)
			}

			// Interrupt a durable run mid-campaign, then resume it.
			dir := filepath.Join(t.TempDir(), "campaign")
			cfg := resumeUArch(bench)
			cfg.ResumeFrom = dir
			cfg.Interrupt, cfg.Progress = interruptAfter(8)
			if _, err := RunUArch(cfg); !errors.Is(err, ErrInterrupted) {
				t.Fatalf("interrupted run returned %v, want ErrInterrupted", err)
			}
			cfg = resumeUArch(bench)
			cfg.ResumeFrom = dir
			resumed, err := RunUArch(cfg)
			if err != nil {
				t.Fatal(err)
			}
			sameUArchResults(t, "interrupt+resume", oneShot, resumed)

			// A second resume finds every slot recovered and re-runs
			// nothing — it must still reproduce the result.
			again, err := RunUArch(cfg)
			if err != nil {
				t.Fatal(err)
			}
			sameUArchResults(t, "fully-recovered resume", oneShot, again)

			// Two shards in parallel-worker mode, merged.
			dirs := []string{filepath.Join(t.TempDir(), "s0"), filepath.Join(t.TempDir(), "s1")}
			for i, d := range dirs {
				scfg := resumeUArch(bench)
				scfg.ResumeFrom = d
				scfg.ShardIndex, scfg.ShardCount = i, 2
				scfg.Workers = 2
				if _, err := RunUArch(scfg); err != nil {
					t.Fatalf("shard %d: %v", i, err)
				}
			}
			merged, err := MergeUArch(resumeUArch(bench), dirs)
			if err != nil {
				t.Fatal(err)
			}
			sameUArchResults(t, "shard+merge", oneShot, merged)
		})
	}
}

// TestVMDurableEquivalence is the software-level twin of
// TestUArchDurableEquivalence.
func TestVMDurableEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("durable campaign equivalence is slow")
	}
	for _, bench := range workload.Benchmarks() {
		bench := bench
		t.Run(string(bench), func(t *testing.T) {
			t.Parallel()
			oneShot, err := RunVM(resumeVM(bench))
			if err != nil {
				t.Fatal(err)
			}

			dir := filepath.Join(t.TempDir(), "campaign")
			cfg := resumeVM(bench)
			cfg.ResumeFrom = dir
			cfg.Interrupt, cfg.Progress = interruptAfter(15)
			if _, err := RunVM(cfg); !errors.Is(err, ErrInterrupted) {
				t.Fatalf("interrupted run returned %v, want ErrInterrupted", err)
			}
			cfg = resumeVM(bench)
			cfg.ResumeFrom = dir
			resumed, err := RunVM(cfg)
			if err != nil {
				t.Fatal(err)
			}
			sameVMResults(t, "interrupt+resume", oneShot, resumed)

			dirs := []string{filepath.Join(t.TempDir(), "s0"), filepath.Join(t.TempDir(), "s1")}
			for i, d := range dirs {
				scfg := resumeVM(bench)
				scfg.ResumeFrom = d
				scfg.ShardIndex, scfg.ShardCount = i, 2
				scfg.Workers = 2
				if _, err := RunVM(scfg); err != nil {
					t.Fatalf("shard %d: %v", i, err)
				}
			}
			merged, err := MergeVM(resumeVM(bench), dirs)
			if err != nil {
				t.Fatal(err)
			}
			sameVMResults(t, "shard+merge", oneShot, merged)
		})
	}
}

// TestResumeRepairsTornTail crashes "mid-append" by truncating the journal to
// a partial final record, then resumes: the torn tail is detected, dropped,
// and the affected trials re-run.
func TestResumeRepairsTornTail(t *testing.T) {
	bench := workload.Gzip
	oneShot, err := RunUArch(resumeUArch(bench))
	if err != nil {
		t.Fatal(err)
	}

	dir := filepath.Join(t.TempDir(), "campaign")
	cfg := resumeUArch(bench)
	cfg.ResumeFrom = dir
	if _, err := RunUArch(cfg); err != nil {
		t.Fatal(err)
	}
	// Tear the tail: chop the last 5 bytes (mid-record).
	jpath := filepath.Join(dir, campaignio.JournalName)
	info, err := os.Stat(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(jpath, info.Size()-5); err != nil {
		t.Fatal(err)
	}

	resumed, err := RunUArch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sameUArchResults(t, "torn-tail resume", oneShot, resumed)
}

// TestResumeRefusesCorruption flips a byte in the middle of the journal:
// resumption must fail with ErrCorrupt, never silently re-run or accept the
// damaged record.
func TestResumeRefusesCorruption(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "campaign")
	cfg := resumeUArch(workload.Gzip)
	cfg.ResumeFrom = dir
	if _, err := RunUArch(cfg); err != nil {
		t.Fatal(err)
	}
	jpath := filepath.Join(dir, campaignio.JournalName)
	data, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(jpath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := RunUArch(cfg); !errors.Is(err, campaignio.ErrCorrupt) {
		t.Fatalf("corrupted journal resumed with err = %v, want ErrCorrupt", err)
	}
}

// TestResumeRefusesMismatchedPlan points a differently-configured campaign at
// an existing directory: the manifest check must refuse it.
func TestResumeRefusesMismatchedPlan(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "campaign")
	cfg := resumeUArch(workload.Gzip)
	cfg.ResumeFrom = dir
	if _, err := RunUArch(cfg); err != nil {
		t.Fatal(err)
	}
	other := resumeUArch(workload.Gzip)
	other.Seed = 99
	other.ResumeFrom = dir
	if _, err := RunUArch(other); !errors.Is(err, campaignio.ErrManifestMismatch) {
		t.Fatalf("mismatched plan resumed with err = %v, want ErrManifestMismatch", err)
	}
}

// TestShardValidation pins the sharding configuration errors.
func TestShardValidation(t *testing.T) {
	cfg := resumeUArch(workload.Gzip)
	cfg.ShardIndex, cfg.ShardCount = 0, 2
	if _, err := RunUArch(cfg); err == nil {
		t.Error("sharded campaign without a campaign directory was accepted")
	}
	cfg = resumeUArch(workload.Gzip)
	cfg.ResumeFrom = t.TempDir()
	cfg.ShardIndex, cfg.ShardCount = 5, 2
	if _, err := RunUArch(cfg); err == nil {
		t.Error("out-of-range shard index was accepted")
	}
	vcfg := resumeVM(workload.Gzip)
	vcfg.ShardIndex, vcfg.ShardCount = 1, 3
	if _, err := RunVM(vcfg); err == nil {
		t.Error("sharded VM campaign without a campaign directory was accepted")
	}
}

// TestMergeRefusesIncompleteShard interrupts one shard and then tries to
// merge: the gap the unfinished shard leaves must be reported, not papered
// over.
func TestMergeRefusesIncompleteShard(t *testing.T) {
	bench := workload.Gzip
	dirs := []string{filepath.Join(t.TempDir(), "s0"), filepath.Join(t.TempDir(), "s1")}
	for i, d := range dirs {
		cfg := resumeUArch(bench)
		cfg.ResumeFrom = d
		cfg.ShardIndex, cfg.ShardCount = i, 2
		if i == 1 {
			cfg.Interrupt, cfg.Progress = interruptAfter(3)
			if _, err := RunUArch(cfg); !errors.Is(err, ErrInterrupted) {
				t.Fatalf("shard 1 returned %v, want ErrInterrupted", err)
			}
			continue
		}
		if _, err := RunUArch(cfg); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := MergeUArch(resumeUArch(bench), dirs); err == nil {
		t.Fatal("merge accepted an incomplete shard")
	}

	// Completing the interrupted shard makes the merge valid.
	cfg := resumeUArch(bench)
	cfg.ResumeFrom = dirs[1]
	cfg.ShardIndex, cfg.ShardCount = 1, 2
	if _, err := RunUArch(cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := MergeUArch(resumeUArch(bench), dirs); err != nil {
		t.Fatalf("merge of completed shards failed: %v", err)
	}
}
