package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/inject"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// Truncated-campaign aggregation: when the golden pipeline halts during
// warm-up (forced here by an aggressive watchdog), campaigns return few or
// zero trials, and every table, rate, and summary an experiment derives from
// them must stay finite — the paper-facing output may be empty, never NaN.

func assertNoNaN(t *testing.T, label, text string) {
	t.Helper()
	if strings.Contains(text, "NaN") {
		t.Errorf("%s contains NaN:\n%s", label, text)
	}
}

func assertFinite(t *testing.T, label string, v float64) {
	t.Helper()
	if math.IsNaN(v) {
		t.Errorf("%s = NaN", label)
	}
}

func TestCampaignTruncatedDuringWarmup(t *testing.T) {
	pcfg := pipeline.DefaultConfig()
	// Fires on the first cold-cache miss chain, long before the warm-up
	// completes (the workloads never halt on their own).
	pcfg.WatchdogCycles = 64
	opts := Options{
		Seed:        7,
		Scale:       0.5,
		TrialFactor: 0.02,
		Benchmarks:  []workload.Benchmark{workload.MCF},
		Pipeline:    &pcfg,
	}
	exp, err := Campaign(opts, CampaignConfig{})
	if err != nil {
		t.Fatal(err)
	}
	full := scaleCount(25, opts.TrialFactor, 4) * scaleCount(70, opts.TrialFactor, 12)
	if len(exp.AllTrials) >= full {
		t.Fatalf("campaign was not truncated: %d trials", len(exp.AllTrials))
	}

	tbl := exp.Table("truncated", inject.DetectorJRS)
	assertNoNaN(t, "Table.Render", tbl.Render())
	assertNoNaN(t, "Table.RenderCSV", tbl.RenderCSV())
	assertFinite(t, "FailureRateAt", exp.FailureRateAt(100, inject.DetectorJRS))
	assertFinite(t, "RawFailureRate", exp.RawFailureRate())

	s := Summarize(exp, exp, 100)
	for label, v := range map[string]float64{
		"BaselineFailureRate": s.BaselineFailureRate,
		"ReStoreFailureRate":  s.ReStoreFailureRate,
		"LHFFailureRate":      s.LHFFailureRate,
		"CombinedFailureRate": s.CombinedFailureRate,
		"ReStoreMTBFGain":     s.ReStoreMTBFGain,
		"CombinedMTBFGain":    s.CombinedMTBFGain,
	} {
		assertFinite(t, "Summary."+label, v)
	}

	assertNoNaN(t, "Fig8.Table", Fig8(exp, exp, 100).Table)
}

// The degenerate end of the same path: an experiment with no trials at all
// (every benchmark truncated to zero).
func TestEmptyExperimentAggregates(t *testing.T) {
	empty := &UArchExperiment{}
	tbl := empty.Table("empty", inject.DetectorPerfect)
	assertNoNaN(t, "Table.Render", tbl.Render())
	assertNoNaN(t, "Table.RenderCSV", tbl.RenderCSV())
	if got := empty.FailureRateAt(100, inject.DetectorJRS); got != 0 {
		t.Errorf("FailureRateAt on empty experiment = %v, want 0", got)
	}
	if got := empty.RawFailureRate(); got != 0 {
		t.Errorf("RawFailureRate on empty experiment = %v, want 0", got)
	}
	s := Summarize(empty, empty, 100)
	if s != (Summary{}) {
		t.Errorf("Summarize on empty experiments = %+v, want zero value", s)
	}
	assertNoNaN(t, "Fig8.Table", Fig8(empty, empty, 100).Table)
}
